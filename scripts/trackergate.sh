#!/usr/bin/env bash
# trackergate.sh — benchstat-style regression gate for the residency
# tracker micros (BenchmarkAdvanceBatch, BenchmarkTwoPhaseLane), runnable
# in CI without external tooling: the comparison is plain awk over `go
# test -bench` output, taking the minimum ns/access across -count runs as
# the steady-state statistic (the same reduction scripts/bench.sh uses).
#
#   scripts/trackergate.sh            compare against scripts/tracker_baseline.txt
#   scripts/trackergate.sh -update    rewrite the baseline from this machine
#
# The micros run at -short scale so the gate stays in CI budget. A
# sub-benchmark more than TRACKERGATE_MAX_PCT (default 35) percent
# slower than its baseline fails the gate (exit 1). The threshold is
# deliberately generous — CI runner classes vary, and the minimum-of-5
# reduction already absorbs scheduler noise — so a failure means a real
# regression, not machine weather. Set TRACKERGATE_WARN_ONLY=1 to
# demote failures to ::warning annotations (the pre-PR 10 behaviour)
# when migrating runner classes or refreshing the baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="scripts/tracker_baseline.txt"
MAX_PCT="${TRACKERGATE_MAX_PCT:-35}"
RAW="$(mktemp)"
SUMMARY="$(mktemp)"
trap 'rm -f "$RAW" "$SUMMARY"' EXIT

go test -bench '^(BenchmarkAdvanceBatch|BenchmarkTwoPhaseLane)$' -short -count=5 \
  -run '^$' -timeout 20m ./internal/sharing | tee "$RAW" >&2

# best-per-name ns/access, one "name value" line per sub-benchmark.
summarize() {
  awk '
    /^Benchmark(AdvanceBatch|TwoPhaseLane)\// {
      name = $1
      sub(/^Benchmark/, "", name); sub(/-[0-9]+$/, "", name)
      v = ""
      for (i = 2; i <= NF; i++) if ($i == "ns/access") v = $(i - 1) + 0
      if (v == "") next
      if (!(name in best) || v < best[name]) best[name] = v
      if (!(name in seen)) { seen[name] = 1; order[++n] = name }
    }
    END { for (i = 1; i <= n; i++) printf "%s %g\n", order[i], best[order[i]] }
  ' "$1"
}

if [[ "${1:-}" == "-update" ]]; then
  {
    echo "# Steady-state ns/access of the tracker micros at -short scale,"
    echo "# minimum over 5 runs. Regenerate with scripts/trackergate.sh -update."
    summarize "$RAW"
  } > "$BASELINE"
  echo "wrote $BASELINE" >&2
  exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
  echo "::warning::tracker bench baseline $BASELINE missing; run scripts/trackergate.sh -update"
  exit 0
fi

summarize "$RAW" > "$SUMMARY"
fail=0
while read -r name new; do
  base="$(awk -v n="$name" '$1 == n { print $2 }' "$BASELINE")"
  if [[ -z "$base" ]]; then
    echo "::warning::tracker bench $name has no baseline entry in $BASELINE; run scripts/trackergate.sh -update"
    continue
  fi
  regressed="$(awk -v name="$name" -v new="$new" -v base="$base" -v max="$MAX_PCT" '
    BEGIN {
      pct = (new - base) / base * 100
      printf "%-28s %8.2f ns/access vs baseline %8.2f (%+.1f%%)\n", name, new, base, pct > "/dev/stderr"
      print (new > base * (1 + max / 100)) ? 1 : 0
    }')"
  if [[ "$regressed" == 1 ]]; then
    msg="tracker bench $name regressed more than ${MAX_PCT}% vs baseline ($base -> $new ns/access)"
    if [[ "${TRACKERGATE_WARN_ONLY:-}" == 1 ]]; then
      echo "::warning::$msg"
    else
      echo "::error::$msg"
      fail=1
    fi
  fi
done < "$SUMMARY"

if [[ "$fail" == 1 ]]; then
  echo "trackergate: regression beyond ${MAX_PCT}% — investigate, or rerun with TRACKERGATE_WARN_ONLY=1 / refresh the baseline with -update" >&2
  exit 1
fi
