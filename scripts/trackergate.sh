#!/usr/bin/env bash
# trackergate.sh — benchstat-style regression gate for the residency
# tracker micros (BenchmarkAdvanceBatch, BenchmarkTwoPhaseLane), runnable
# in CI without external tooling: the comparison is plain awk over `go
# test -bench` output, taking the minimum ns/access across -count runs as
# the steady-state statistic (the same reduction scripts/bench.sh uses).
#
#   scripts/trackergate.sh            compare against scripts/tracker_baseline.txt
#   scripts/trackergate.sh -update    rewrite the baseline from this machine
#
# The micros run at -short scale so the gate stays in CI budget. A
# sub-benchmark more than 20% slower than its baseline prints a GitHub
# ::warning annotation (warn, not fail: CI runner classes vary, so the
# gate flags drift for a human rather than blocking merges on machine
# noise). Exit status reflects only whether the benchmarks ran.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="scripts/tracker_baseline.txt"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -bench '^(BenchmarkAdvanceBatch|BenchmarkTwoPhaseLane)$' -short -count=5 \
  -run '^$' -timeout 20m ./internal/sharing | tee "$RAW" >&2

# best-per-name ns/access, one "name value" line per sub-benchmark.
summarize() {
  awk '
    /^Benchmark(AdvanceBatch|TwoPhaseLane)\// {
      name = $1
      sub(/^Benchmark/, "", name); sub(/-[0-9]+$/, "", name)
      v = ""
      for (i = 2; i <= NF; i++) if ($i == "ns/access") v = $(i - 1) + 0
      if (v == "") next
      if (!(name in best) || v < best[name]) best[name] = v
      if (!(name in seen)) { seen[name] = 1; order[++n] = name }
    }
    END { for (i = 1; i <= n; i++) printf "%s %g\n", order[i], best[order[i]] }
  ' "$1"
}

if [[ "${1:-}" == "-update" ]]; then
  {
    echo "# Steady-state ns/access of the tracker micros at -short scale,"
    echo "# minimum over 5 runs. Regenerate with scripts/trackergate.sh -update."
    summarize "$RAW"
  } > "$BASELINE"
  echo "wrote $BASELINE" >&2
  exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
  echo "::warning::tracker bench baseline $BASELINE missing; run scripts/trackergate.sh -update"
  exit 0
fi

summarize "$RAW" | while read -r name new; do
  base="$(awk -v n="$name" '$1 == n { print $2 }' "$BASELINE")"
  if [[ -z "$base" ]]; then
    echo "::warning::tracker bench $name has no baseline entry in $BASELINE"
    continue
  fi
  awk -v name="$name" -v new="$new" -v base="$base" '
    BEGIN {
      pct = (new - base) / base * 100
      printf "%-28s %8.2f ns/access vs baseline %8.2f (%+.1f%%)\n", name, new, base, pct > "/dev/stderr"
      if (new > base * 1.2)
        printf "::warning::tracker bench %s regressed %.1f%% vs baseline (%.2f -> %.2f ns/access)\n", name, pct, base, new
    }'
done
