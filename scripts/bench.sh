#!/usr/bin/env bash
# bench.sh — run the pinned benchmark set and record steady-state numbers
# as JSON for cross-PR regression tracking.
#
# Pinned set: the F1/F2 characterization benchmarks (the replay engine's
# hot path, full-size suite), F9 (the stream-side analyzers), the PR 4
# ComparePoliciesSuite sweep (the fused multi-policy replay) and its
# scalar twin (the batch-vs-scalar A/B), and the PR 6 BatchKernel
# probe-phase micro, five counted runs each (the steady-state statistic
# is a minimum, and on shared vCPU runners two post-cold samples were
# too few for it to settle), plus the PR 3 stream-cache
# pair (suite construction cold vs. warm). The first iteration of each
# also pays the one-time suite build (sync.Once); it is recorded
# separately as the "cold" sample so the steady-state statistics are not
# skewed by it.
#
# The PR 8 batch_kernel section records, per specialized policy, the
# steady-state ns/access of the monomorphic batch kernel and of the
# generic interface loop over the same stream (internal/policy's
# BenchmarkBatchKernel sub-benchmarks), plus the per-policy speedup.
#
# The PR 9 tracker section records the residency-tracker micros
# (internal/sharing's BenchmarkAdvanceBatch and BenchmarkTwoPhaseLane
# sub-benchmarks, ns/access): the struct layout vs both SoA demand
# levels for the advance phase, and the pipelined SoA / pipelined
# struct / serial scalar shapes of a two-phase lane, plus the headline
# speedups of each pair. PR 10 adds their SIMD-tier twins to the same
# section.
#
# The PR 10 simd section records the per-loop kernel micros
# (internal/simd's BenchmarkCountHits, BenchmarkCountLogHits,
# BenchmarkExpandCW and BenchmarkDegrees: assembly vs SWAR vs scalar
# at chunk length, MB/s), and the suite sweep gains its SIMD A/B twin
# (BenchmarkComparePoliciesSuiteNoSIMD), recorded as suite_simd_vs_off.
#
#   scripts/bench.sh [output.json] [baseline.json]
#     default output:   BENCH_PR10.json
#     default baseline: BENCH_PR9.json (skipped when absent)
#
# The PR 7 cluster section records the wall time of the fixed-catalogue
# sweep through an in-process coordinator with 1, 2 and 4 workers
# (cmd/dumprows -cluster N, which also byte-verifies the merge), so the
# JSON tracks scaling efficiency, not just per-op latency.
#
# SHARELLC_BENCH_SCALE (default 1 = full size) scales the suite used by
# the cold/warm construction benchmarks.
#
# The JSON records, next to the static seed_baseline block, the
# cumulative speedup of the steady-state F1 replay against that seed
# number — the across-PR progress figure — and prints it on stderr.
# After writing the output, the steady-state (minimum) ns/op of
# BenchmarkF1SharedHitFraction4MB is also compared against the baseline
# file; a regression of more than 20% prints a prominent warning on
# stderr.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR10.json}"
BASELINE="${2:-BENCH_PR9.json}"
BENCHES='^(BenchmarkF1SharedHitFraction4MB|BenchmarkF2SharedHitFraction8MB|BenchmarkF9SharingPhases|BenchmarkComparePoliciesSuite|BenchmarkComparePoliciesSuiteScalar|BenchmarkComparePoliciesSuiteNoSIMD)$'
SUITE_BENCHES='^(BenchmarkSuiteBuildCold|BenchmarkSuiteBuildWarm)$'
export SHARELLC_BENCH_SCALE="${SHARELLC_BENCH_SCALE:-1}"
RAW="$(mktemp)"
SUITE_RAW="$(mktemp)"
POLICY_RAW="$(mktemp)"
TRACKER_RAW="$(mktemp)"
SIMD_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$SUITE_RAW" "$POLICY_RAW" "$TRACKER_RAW" "$SIMD_RAW"' EXIT

go test -bench "$BENCHES" -benchmem -count=5 -run '^$' -timeout 60m . | tee "$RAW" >&2

# The probe-phase micro (sweep-independent baseline for SIMD work on the
# batch kernel) appends to the same raw log; the parser below is keyed by
# benchmark name, so the samples land in the same JSON array.
go test -bench '^BenchmarkBatchKernel$' -benchmem -count=5 -run '^$' -timeout 10m \
  ./internal/cache | tee -a "$RAW" >&2

# Per-policy monomorphic kernel vs generic interface loop (the PR 8
# specialization A/B), parsed into the batch_kernel JSON section below.
go test -bench '^BenchmarkBatchKernel$' -count=5 -run '^$' -timeout 30m \
  ./internal/policy | tee "$POLICY_RAW" >&2

# Residency-tracker micros (the PR 9 SoA layout and two-phase pipeline
# A/Bs, plus the PR 10 SIMD advance twins), parsed into the tracker
# JSON section below.
go test -bench '^(BenchmarkAdvanceBatch|BenchmarkTwoPhaseLane)$' -count=5 -run '^$' -timeout 30m \
  ./internal/sharing | tee "$TRACKER_RAW" >&2

# Per-loop SIMD kernel micros (assembly vs SWAR vs scalar at chunk
# length), parsed into the simd JSON section below.
go test -bench '^(BenchmarkCountHits|BenchmarkCountLogHits|BenchmarkExpandCW|BenchmarkDegrees)$' \
  -count=5 -run '^$' -timeout 10m ./internal/simd | tee "$SIMD_RAW" >&2

SIMD_JSON="$(awk '
  /^Benchmark(CountHits|CountLogHits|ExpandCW|Degrees)\// {
    name = $1
    sub(/^Benchmark/, "", name); sub(/-[0-9]+$/, "", name)
    v = ""
    for (i = 2; i <= NF; i++) if ($i == "MB/s") v = $(i - 1) + 0
    if (v == "") next
    if (!(name in best) || v > best[name]) best[name] = v
    if (!(name in seen)) { seen[name] = 1; order[++n] = name }
  }
  END {
    printf "{"
    for (i = 1; i <= n; i++) {
      if (i > 1) printf ", "
      printf "\"%s_mb_per_s\": %g", order[i], best[order[i]]
    }
    printf "}"
  }' "$SIMD_RAW")"

TRACKER_JSON="$(awk '
  /^Benchmark(AdvanceBatch|TwoPhaseLane)\// {
    name = $1
    sub(/^Benchmark/, "", name); sub(/-[0-9]+$/, "", name)
    v = ""
    for (i = 2; i <= NF; i++) if ($i == "ns/access") v = $(i - 1) + 0
    if (v == "") next
    if (!(name in best) || v < best[name]) best[name] = v
    if (!(name in seen)) { seen[name] = 1; order[++n] = name }
  }
  function ratio(a, b) {
    if (a in best && b in best && best[b] > 0) return sprintf("%.2f", best[a] / best[b])
    return "null"
  }
  END {
    printf "{"
    for (i = 1; i <= n; i++) {
      printf "\"%s\": %g, ", order[i], best[order[i]]
    }
    printf "\"advance_soa_speedup\": %s, ", ratio("AdvanceBatch/struct", "AdvanceBatch/soa-counters")
    printf "\"twophase_pipeline_speedup\": %s, ", ratio("TwoPhaseLane/scalar", "TwoPhaseLane/struct")
    printf "\"twophase_soa_speedup\": %s, ", ratio("TwoPhaseLane/scalar", "TwoPhaseLane/soa")
    printf "\"twophase_simd_speedup\": %s", ratio("TwoPhaseLane/soa-nosimd", "TwoPhaseLane/soa")
    printf "}"
  }' "$TRACKER_RAW")"

KERNEL_JSON="$(awk '
  /^BenchmarkBatchKernel\// {
    name = $1
    sub(/^BenchmarkBatchKernel\//, "", name); sub(/-[0-9]+$/, "", name)
    v = ""
    for (i = 2; i <= NF; i++) if ($i == "ns/access") v = $(i - 1) + 0
    if (v == "") next
    if (!(name in best) || v < best[name]) best[name] = v
    if (name !~ /\/generic$/ && !(name in seen)) { seen[name] = 1; order[++n] = name }
  }
  END {
    printf "{"
    for (i = 1; i <= n; i++) {
      p = order[i]
      g = best[p "/generic"]
      if (i > 1) printf ", "
      printf "\"%s\": {\"kernel_ns_per_access\": %g, \"generic_ns_per_access\": %s, \"speedup\": %s}", \
        p, best[p], (g == "" ? "null" : g "" ), \
        (g != "" && best[p] > 0 ? sprintf("%.2f", g / best[p]) : "null")
    }
    printf "}"
  }' "$POLICY_RAW")"

# The suite-construction pair runs in an isolated user cache dir so the
# warm measurement only ever sees snapshots its own cold pass wrote.
XDG_CACHE_HOME="$(mktemp -d)" \
  go test -bench "$SUITE_BENCHES" -count=1 -run '^$' -timeout 60m \
  ./internal/sim/streamcache | tee "$SUITE_RAW" >&2

# Cluster scaling: wall time of the fixed-catalogue sweep distributed
# over N in-process workers (real HTTP lease/fetch/merge path). Each run
# also byte-verifies the merged tables against the direct path — a
# failing diff fails the bench.
DUMPBIN="$(mktemp)"
go build -o "$DUMPBIN" ./cmd/dumprows
CLUSTER_JSON="{"
for n in 1 2 4; do
  start_ns="$(date +%s%N)"
  "$DUMPBIN" -cluster "$n" >&2
  end_ns="$(date +%s%N)"
  ms=$(( (end_ns - start_ns) / 1000000 ))
  echo "cluster sweep, $n worker(s): ${ms} ms" >&2
  [[ "$n" != 1 ]] && CLUSTER_JSON+=", "
  CLUSTER_JSON+="\"workers_${n}_wall_ms\": ${ms}"
done
CLUSTER_JSON+="}"
rm -f "$DUMPBIN"

awk -v scale="$SHARELLC_BENCH_SCALE" -v cluster="$CLUSTER_JSON" -v batchkernel="$KERNEL_JSON" -v tracker="$TRACKER_JSON" -v simd="$SIMD_JSON" '
  function flush_bench(    i) {
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"sample\": \"%s\"}", \
      name, ns, (bop == "" ? "null" : bop), (aop == "" ? "null" : aop), kind
  }
  /^goos:/   { goos = $2 }
  /^goarch:/ { goarch = $2 }
  /^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bop = ""; aop = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op")     ns  = $(i-1)
      if ($i == "B/op")      bop = $(i-1)
      if ($i == "allocs/op") aop = $(i-1)
    }
    if (ns == "") next
    # The first counted run of each benchmark pays one-time costs (the
    # shared suite build behind sync.Once); label it cold and keep the
    # steady-state minimum over the remaining runs.
    seen[name]++
    kind = (seen[name] == 1 ? "cold" : "steady")
    if (kind == "steady" && (!(name in steady) || ns + 0 < steady[name])) steady[name] = ns + 0
    if (FILENAME == ARGV[1]) flush_bench()
    if (name == "BenchmarkSuiteBuildCold") suite_cold = ns + 0
    if (name == "BenchmarkSuiteBuildWarm") suite_warm = ns + 0
  }
  BEGIN { print "{"; print "  \"benchmarks\": ["; first = 1 }
  END {
    print ""
    print "  ],"
    print "  \"steady_state\": {"
    sfirst = 1
    for (n in steady) {
      if (!sfirst) printf ",\n"
      sfirst = 0
      printf "    \"%s\": %g", n, steady[n]
    }
    print ""
    print "  },"
    printf "  \"suite_build\": {\"scale\": %s, ", scale
    printf "\"cold_ns_per_op\": %s, \"warm_ns_per_op\": %s, ", \
      (suite_cold == "" ? "null" : suite_cold), (suite_warm == "" ? "null" : suite_warm)
    if (suite_cold != "" && suite_warm != "" && suite_warm > 0)
      printf "\"warm_speedup\": %.2f},\n", suite_cold / suite_warm
    else
      printf "\"warm_speedup\": null},\n"
    printf "  \"cluster\": %s,\n", (cluster == "" ? "null" : cluster)
    printf "  \"batch_kernel\": %s,\n", (batchkernel == "" ? "null" : batchkernel)
    printf "  \"tracker\": %s,\n", (tracker == "" ? "null" : tracker)
    printf "  \"simd\": %s,\n", (simd == "" ? "null" : simd)
    # Suite-level batch-vs-scalar A/B from the steady-state minima.
    bs = steady["BenchmarkComparePoliciesSuite"]
    ss = steady["BenchmarkComparePoliciesSuiteScalar"]
    if (bs > 0 && ss > 0)
      printf "  \"suite_batch_vs_scalar\": {\"batch_ns_per_op\": %g, \"scalar_ns_per_op\": %g, \"speedup\": %.2f},\n", bs, ss, ss / bs
    else
      print "  \"suite_batch_vs_scalar\": null,"
    # Suite-level SIMD-vs-off A/B (the PR 10 tier) from the same minima.
    ns = steady["BenchmarkComparePoliciesSuiteNoSIMD"]
    if (bs > 0 && ns > 0)
      printf "  \"suite_simd_vs_off\": {\"simd_ns_per_op\": %g, \"off_ns_per_op\": %g, \"speedup\": %.2f},\n", bs, ns, ns / bs
    else
      print "  \"suite_simd_vs_off\": null,"
    printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\",\n", goos, goarch, cpu
    seed_ns = 3600000000
    print "  \"seed_baseline\": {"
    print "    \"note\": \"steady-state BenchmarkF1SharedHitFraction4MB at the v0 seed commit (a6b47ae), same machine class\","
    printf "    \"ns_per_op\": %.0f, \"bytes_per_op\": 688000000, \"allocs_per_op\": 5764000,\n", seed_ns
    # Cumulative speedup of the F1 replay across every PR since the seed
    # commit, from this run'\''s steady-state minimum.
    f1 = steady["BenchmarkF1SharedHitFraction4MB"]
    if (f1 > 0) {
      printf "    \"cumulative_speedup\": %.2f\n", seed_ns / f1
      printf "cumulative F1 speedup vs seed baseline: %.2fx (%.0f -> %.0f ns/op)\n", \
        seed_ns / f1, seed_ns, f1 > "/dev/stderr"
    } else {
      print "    \"cumulative_speedup\": null"
    }
    print "  }"
    print "}"
  }
' "$RAW" "$SUITE_RAW" > "$OUT"

echo "wrote $OUT" >&2

# min_f1 FILE: the steady-state ns_per_op for
# BenchmarkF1SharedHitFraction4MB in a bench JSON file. New-format files
# carry explicit "sample" labels (cold samples are excluded); older
# baselines (BENCH_PR1/PR2) have unlabeled samples, where the minimum is
# the steady state by construction.
min_f1() {
  awk '
    /"name": "BenchmarkF1SharedHitFraction4MB"/ {
      if (/"sample": "cold"/) next
      if (match($0, /"ns_per_op": [0-9.e+]+/)) {
        v = substr($0, RSTART + 13, RLENGTH - 13) + 0
        if (best == "" || v < best) best = v
      }
    }
    END { if (best != "") print best }
  ' "$1"
}

if [[ -f "$BASELINE" ]]; then
  new_ns="$(min_f1 "$OUT")"
  base_ns="$(min_f1 "$BASELINE")"
  if [[ -n "$new_ns" && -n "$base_ns" ]]; then
    awk -v new="$new_ns" -v base="$base_ns" -v baseline="$BASELINE" '
      BEGIN {
        pct = (new - base) / base * 100
        printf "F1 steady-state: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%)\n", new, base, pct > "/dev/stderr"
        if (new > base * 1.2) {
          printf "WARNING: BenchmarkF1SharedHitFraction4MB regressed more than 20%% vs %s\n", baseline > "/dev/stderr"
        }
      }'
  else
    echo "warning: could not extract F1 ns/op for baseline comparison" >&2
  fi
else
  echo "baseline $BASELINE not found; skipping regression check" >&2
fi
