#!/usr/bin/env bash
# bench.sh — run the pinned benchmark set and record steady-state numbers
# as JSON for cross-PR regression tracking.
#
# Pinned set: the F1/F2 characterization benchmarks (the replay engine's
# hot path, full-size suite) and F9 (the stream-side analyzers). Three
# counted runs each; the first F1 iteration also pays the one-time suite
# build (sync.Once), so compare steady-state lines (runs 2-3).
#
#   scripts/bench.sh [output.json] [baseline.json]
#     default output:   BENCH_PR2.json
#     default baseline: BENCH_PR1.json (skipped when absent)
#
# After writing the output, the steady-state (minimum) ns/op of
# BenchmarkF1SharedHitFraction4MB is compared against the baseline file;
# a regression of more than 20% prints a prominent warning on stderr.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR2.json}"
BASELINE="${2:-BENCH_PR1.json}"
BENCHES='^(BenchmarkF1SharedHitFraction4MB|BenchmarkF2SharedHitFraction8MB|BenchmarkF9SharingPhases)$'
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -bench "$BENCHES" -benchmem -count=3 -run '^$' -timeout 60m . | tee "$RAW" >&2

awk -v out_start=1 '
  BEGIN { print "{"; print "  \"benchmarks\": [" ; first = 1 }
  /^goos:/   { goos = $2 }
  /^goarch:/ { goarch = $2 }
  /^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bop = ""; aop = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op")     ns  = $(i-1)
      if ($i == "B/op")      bop = $(i-1)
      if ($i == "allocs/op") aop = $(i-1)
    }
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bop, aop
  }
  END {
    print ""
    print "  ],"
    printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\",\n", goos, goarch, cpu
    print "  \"seed_baseline\": {"
    print "    \"note\": \"steady-state BenchmarkF1SharedHitFraction4MB at the v0 seed commit (a6b47ae), same machine class\","
    print "    \"ns_per_op\": 3600000000, \"bytes_per_op\": 688000000, \"allocs_per_op\": 5764000"
    print "  }"
    print "}"
  }
' "$RAW" > "$OUT"

echo "wrote $OUT" >&2

# min_f1 FILE: the steady-state (minimum) ns_per_op recorded for
# BenchmarkF1SharedHitFraction4MB in a bench JSON file.
min_f1() {
  awk '
    /"name": "BenchmarkF1SharedHitFraction4MB"/ {
      if (match($0, /"ns_per_op": [0-9.e+]+/)) {
        v = substr($0, RSTART + 13, RLENGTH - 13) + 0
        if (best == "" || v < best) best = v
      }
    }
    END { if (best != "") print best }
  ' "$1"
}

if [[ -f "$BASELINE" ]]; then
  new_ns="$(min_f1 "$OUT")"
  base_ns="$(min_f1 "$BASELINE")"
  if [[ -n "$new_ns" && -n "$base_ns" ]]; then
    awk -v new="$new_ns" -v base="$base_ns" -v baseline="$BASELINE" '
      BEGIN {
        pct = (new - base) / base * 100
        printf "F1 steady-state: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%)\n", new, base, pct > "/dev/stderr"
        if (new > base * 1.2) {
          printf "WARNING: BenchmarkF1SharedHitFraction4MB regressed more than 20%% vs %s\n", baseline > "/dev/stderr"
        }
      }'
  else
    echo "warning: could not extract F1 ns/op for baseline comparison" >&2
  fi
else
  echo "baseline $BASELINE not found; skipping regression check" >&2
fi
