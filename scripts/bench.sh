#!/usr/bin/env bash
# bench.sh — run the pinned benchmark set and record steady-state numbers
# as JSON for cross-PR regression tracking.
#
# Pinned set: the F1/F2 characterization benchmarks (the replay engine's
# hot path, full-size suite) and F9 (the stream-side analyzers). Three
# counted runs each; the first F1 iteration also pays the one-time suite
# build (sync.Once), so compare steady-state lines (runs 2-3).
#
#   scripts/bench.sh [output.json]    # default output: BENCH_PR1.json
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR1.json}"
BENCHES='^(BenchmarkF1SharedHitFraction4MB|BenchmarkF2SharedHitFraction8MB|BenchmarkF9SharingPhases)$'
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -bench "$BENCHES" -benchmem -count=3 -run '^$' -timeout 60m . | tee "$RAW" >&2

awk -v out_start=1 '
  BEGIN { print "{"; print "  \"benchmarks\": [" ; first = 1 }
  /^goos:/   { goos = $2 }
  /^goarch:/ { goarch = $2 }
  /^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bop = ""; aop = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op")     ns  = $(i-1)
      if ($i == "B/op")      bop = $(i-1)
      if ($i == "allocs/op") aop = $(i-1)
    }
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bop, aop
  }
  END {
    print ""
    print "  ],"
    printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\",\n", goos, goarch, cpu
    print "  \"seed_baseline\": {"
    print "    \"note\": \"steady-state BenchmarkF1SharedHitFraction4MB at the v0 seed commit (a6b47ae), same machine class\","
    print "    \"ns_per_op\": 3600000000, \"bytes_per_op\": 688000000, \"allocs_per_op\": 5764000"
    print "  }"
    print "}"
  }
' "$RAW" > "$OUT"

echo "wrote $OUT" >&2
