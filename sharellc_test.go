package sharellc_test

import (
	"testing"

	"sharellc"
)

// apiSuite builds a tiny suite through the public facade only.
func apiSuite(t *testing.T) *sharellc.Suite {
	t.Helper()
	cfg := sharellc.Config{
		Machine: sharellc.MachineConfig{
			Cores:  8,
			L1Size: 2 * sharellc.KB, L1Ways: 2,
			L2Size: 8 * sharellc.KB, L2Ways: 4,
			LLCSize: 64 * sharellc.KB, LLCWays: 8,
		},
		Seed:   1,
		Scale:  0.02,
		Models: []sharellc.Model{sharellc.MustWorkload("canneal")},
	}
	s, err := sharellc.NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFacadeWorkloads(t *testing.T) {
	if len(sharellc.Workloads()) < 12 {
		t.Error("suite too small")
	}
	if len(sharellc.WorkloadNames()) != len(sharellc.Workloads()) {
		t.Error("WorkloadNames mismatch")
	}
	if _, err := sharellc.WorkloadByName("canneal"); err != nil {
		t.Error(err)
	}
	if _, err := sharellc.WorkloadByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustWorkload did not panic on unknown name")
		}
	}()
	sharellc.MustWorkload("nope")
}

func TestFacadePolicies(t *testing.T) {
	names := sharellc.PolicyNames()
	if len(names) != 14 {
		t.Fatalf("catalogue has %d policies", len(names))
	}
	f, err := sharellc.PolicyByName("ship", 1)
	if err != nil {
		t.Fatal(err)
	}
	if f().Name() != "ship" {
		t.Error("wrong policy built")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	s := apiSuite(t)
	st := s.Streams[0]
	lru, err := sharellc.PolicyByName("lru", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sharellc.OracleRun(st, 64*sharellc.KB, 8,
		func() sharellc.Policy { return lru() },
		sharellc.ProtectorOptions{Strength: sharellc.Full})
	if err != nil {
		t.Fatal(err)
	}
	if res.Base.Misses == 0 || res.Oracle.Misses == 0 {
		t.Error("oracle run produced empty results")
	}
}

func TestFacadeSharingAwareWrapper(t *testing.T) {
	lru, err := sharellc.PolicyByName("lru", 1)
	if err != nil {
		t.Fatal(err)
	}
	p := sharellc.NewSharingAware(lru(), sharellc.ProtectorOptions{Strength: sharellc.Full})
	if p.Name() != "lru+sa" {
		t.Errorf("wrapper name = %q", p.Name())
	}
}

func TestFacadePredictors(t *testing.T) {
	cfg := sharellc.DefaultPredictorConfig()
	if _, err := sharellc.NewAddressPredictor(cfg); err != nil {
		t.Error(err)
	}
	if _, err := sharellc.NewPCPredictor(cfg); err != nil {
		t.Error(err)
	}
	if _, err := sharellc.NewAddressPredictor(sharellc.PredictorConfig{}); err == nil {
		t.Error("zero predictor config accepted")
	}
}

func TestFacadeDefaults(t *testing.T) {
	cfg := sharellc.DefaultConfig()
	if cfg.Machine.Cores != 8 || cfg.Scale != 1 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	m := sharellc.DefaultMachine()
	if m.LLCSize != 4*sharellc.MB || m.LLCWays != 16 {
		t.Errorf("unexpected machine: %+v", m)
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}
