package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "workload", "misses", "rate")
	tb.Note = "a caption"
	tb.MustRow("canneal", "123", "0.500")
	tb.MustRow("fft", "7", "0.010")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== demo ==", "a caption", "workload", "canneal", "fft", "0.010"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Right alignment: the misses column values end at the same offset.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 6 {
		t.Fatalf("unexpected line count %d", len(lines))
	}
}

func TestAddRowArityChecked(t *testing.T) {
	tb := NewTable("x", "a", "b")
	if err := tb.AddRow("only-one"); err == nil {
		t.Error("short row accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRow did not panic on arity mismatch")
		}
	}()
	tb.MustRow("1", "2", "3")
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.MustRow("v,1", "2") // comma must be quoted
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong: %q", out)
	}
	if !strings.Contains(out, `"v,1",2`) {
		t.Errorf("CSV row not quoted: %q", out)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.Note = "caption"
	tb.MustRow("x|y", "2")
	var b strings.Builder
	if err := tb.RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"### demo", "| a | b |", "|---|---|", `x\|y`, "*caption*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if F(0.5) != "0.500" {
		t.Errorf("F = %q", F(0.5))
	}
	if N(42) != "42" {
		t.Errorf("N = %q", N(42))
	}
}

func TestEmptyTableRenders(t *testing.T) {
	tb := NewTable("", "h")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "h") {
		t.Error("header missing")
	}
}
