package report

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "workload", "misses", "rate")
	tb.Note = "a caption"
	tb.MustRow("canneal", "123", "0.500")
	tb.MustRow("fft", "7", "0.010")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== demo ==", "a caption", "workload", "canneal", "fft", "0.010"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Right alignment: the misses column values end at the same offset.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 6 {
		t.Fatalf("unexpected line count %d", len(lines))
	}
}

func TestAddRowArityChecked(t *testing.T) {
	tb := NewTable("x", "a", "b")
	if err := tb.AddRow("only-one"); err == nil {
		t.Error("short row accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRow did not panic on arity mismatch")
		}
	}()
	tb.MustRow("1", "2", "3")
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.MustRow("v,1", "2") // comma must be quoted
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong: %q", out)
	}
	if !strings.Contains(out, `"v,1",2`) {
		t.Errorf("CSV row not quoted: %q", out)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.Note = "caption"
	tb.MustRow("x|y", "2")
	var b strings.Builder
	if err := tb.RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"### demo", "| a | b |", "|---|---|", `x\|y`, "*caption*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestRenderJSON(t *testing.T) {
	tb := NewTable("demo", "workload", "rate")
	tb.Note = "a caption"
	tb.MustRow(`he said "hi", twice`, F(math.NaN()))
	var b strings.Builder
	if err := tb.RenderJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "\n") || strings.Count(out, "\n") != 1 {
		t.Errorf("RenderJSON not one newline-terminated line: %q", out)
	}
	var got struct {
		Title   string     `json:"title"`
		Note    string     `json:"note"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("output not valid JSON: %v\n%s", err, out)
	}
	if got.Title != "demo" || got.Note != "a caption" {
		t.Errorf("title/note wrong: %+v", got)
	}
	if len(got.Rows) != 1 || got.Rows[0][0] != `he said "hi", twice` {
		t.Errorf("quoted cell did not round-trip: %+v", got.Rows)
	}
	// NaN cells survive as the string fmt produced — JSON has no NaN
	// literal, so the table layer must never emit a bare one.
	if got.Rows[0][1] != "NaN" {
		t.Errorf("NaN cell = %q, want \"NaN\"", got.Rows[0][1])
	}
}

func TestRenderJSONEmptyTable(t *testing.T) {
	tb := NewTable("empty", "h")
	var b strings.Builder
	if err := tb.RenderJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "null") {
		t.Errorf("empty table encodes null somewhere: %s", out)
	}
	if !strings.Contains(out, `"rows":[]`) {
		t.Errorf("empty rows not encoded as []: %s", out)
	}
	if strings.Contains(out, `"note"`) {
		t.Errorf("empty note should be omitted: %s", out)
	}
}

func TestMarshalJSONMatchesRenderJSON(t *testing.T) {
	tb := NewTable("x", "a")
	tb.MustRow("1")
	raw, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tb.RenderJSON(&b); err != nil {
		t.Fatal(err)
	}
	if string(raw)+"\n" != b.String() {
		t.Errorf("Marshal and RenderJSON disagree:\n%s\n%s", raw, b.String())
	}
}

func TestFormatters(t *testing.T) {
	if F(0.5) != "0.500" {
		t.Errorf("F = %q", F(0.5))
	}
	if N(42) != "42" {
		t.Errorf("N = %q", N(42))
	}
}

func TestEmptyTableRenders(t *testing.T) {
	tb := NewTable("", "h")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "h") {
		t.Error("header missing")
	}
}
