// Package report renders experiment results as aligned ASCII tables (the
// repository's equivalent of the paper's figures and tables) and as CSV
// for downstream plotting.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Note    string // optional caption printed under the title
	Headers []string
	Rows    [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells beyond the header count are rejected.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Headers) {
		return fmt.Errorf("report: row has %d cells, table has %d columns", len(cells), len(t.Headers))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// MustRow is AddRow for construction sites where a mismatch is a
// programming error.
func (t *Table) MustRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// Render writes the table as aligned text. The first column is
// left-aligned (labels), the rest right-aligned (numbers).
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as a GitHub-flavoured markdown table,
// with the title as a heading and the note as a caption line.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	row := func(cells []string) {
		b.WriteByte('|')
		for _, c := range cells {
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	row(t.Headers)
	b.WriteByte('|')
	for range t.Headers {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		row(r)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Note)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// tableJSON is the canonical machine-readable encoding of a Table. The
// CLI's -json flag and the sharesimd daemon both emit it, and clients
// compare the two byte-for-byte, so every field stays lower-case and
// headers/rows are never null.
type tableJSON struct {
	Title   string     `json:"title"`
	Note    string     `json:"note,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON encodes the table in the canonical machine-readable shape.
// Cells are already formatted strings, so non-finite floats ("NaN",
// "+Inf" from fmt) pass through as ordinary JSON strings — JSON itself
// has no NaN literal to trip over.
func (t *Table) MarshalJSON() ([]byte, error) {
	j := tableJSON{Title: t.Title, Note: t.Note, Headers: t.Headers, Rows: t.Rows}
	if j.Headers == nil {
		j.Headers = []string{}
	}
	if j.Rows == nil {
		j.Rows = [][]string{}
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the canonical shape written by MarshalJSON, so a
// table can cross a process boundary (the cluster's whole-experiment
// bundles) and re-marshal byte-identically.
func (t *Table) UnmarshalJSON(data []byte) error {
	var j tableJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	t.Title, t.Note, t.Headers, t.Rows = j.Title, j.Note, j.Headers, j.Rows
	return nil
}

// RenderJSON writes the table as one compact JSON object followed by a
// newline, so multi-table runs emit newline-delimited JSON (one object
// per table).
func (t *Table) RenderJSON(w io.Writer) error {
	b, err := json.Marshal(t)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// RenderCSV writes the table as CSV (headers first, no title).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// F formats a float with 3 decimals; the house style for fractions.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// N formats an integer count.
func N(v uint64) string { return fmt.Sprintf("%d", v) }
