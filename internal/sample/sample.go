// Package sample implements interval sampling of LLC reference streams —
// the standard technique for approximating a long simulation by replaying
// only periodic excerpts. Each kept excerpt is preceded by a warmup
// prefix that is simulated but not counted (sharing.Options.Warmup does
// the non-counting), so the cache state entering every measured interval
// is realistic.
//
// Sampling is an accuracy/time trade: the validation test in this package
// (and the sampled-vs-full comparison it enables in larger setups) shows
// miss rates within a few percent of the full run at a fraction of the
// replay cost.
package sample

import (
	"fmt"

	"sharellc/internal/cache"
)

// Plan describes an interval-sampling schedule.
type Plan struct {
	// Interval is the measured excerpt length in accesses.
	Interval int
	// Period is the distance between excerpt starts; Period == Interval
	// degenerates to the full stream.
	Period int
	// Warmup is the number of accesses replayed (uncounted) before each
	// measured excerpt, taken from the stream immediately preceding it.
	Warmup int
}

// Validate reports whether the plan is usable.
func (p Plan) Validate() error {
	switch {
	case p.Interval < 1:
		return fmt.Errorf("sample: interval %d < 1", p.Interval)
	case p.Period < p.Interval:
		return fmt.Errorf("sample: period %d < interval %d", p.Period, p.Interval)
	case p.Warmup < 0:
		return fmt.Errorf("sample: negative warmup %d", p.Warmup)
	case p.Warmup > p.Period-p.Interval:
		return fmt.Errorf("sample: warmup %d overlaps the previous excerpt (period %d, interval %d)",
			p.Warmup, p.Period, p.Interval)
	}
	return nil
}

// Excerpt is one sampled slice of the stream: Accesses has contiguous
// re-assigned indices, and the first CountFrom accesses are warmup.
type Excerpt struct {
	Accesses  []cache.AccessInfo
	CountFrom int // == warmup length actually available
	Start     int // original stream position of the measured interval
}

// Take cuts the excerpts out of stream according to the plan. Accesses
// are copied and re-indexed (contiguous from 0) so each excerpt is a
// valid standalone input for sharing.Replay; next-use annotations are
// recomputed within the excerpt.
func Take(stream []cache.AccessInfo, p Plan) ([]Excerpt, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var out []Excerpt
	for start := 0; start < len(stream); start += p.Period {
		end := start + p.Interval
		if end > len(stream) {
			end = len(stream)
		}
		warm := p.Warmup
		if warm > start {
			warm = start
		}
		ex := Excerpt{
			Accesses:  make([]cache.AccessInfo, end-(start-warm)),
			CountFrom: warm,
			Start:     start,
		}
		copy(ex.Accesses, stream[start-warm:end])
		for i := range ex.Accesses {
			ex.Accesses[i].Index = int64(i)
			ex.Accesses[i].NextUse = cache.NoNextUse
		}
		cache.AnnotateNextUse(ex.Accesses)
		out = append(out, ex)
	}
	return out, nil
}

// KeptFraction returns the fraction of the stream the plan measures.
func (p Plan) KeptFraction() float64 {
	return float64(p.Interval) / float64(p.Period)
}
