package sample

import (
	"math"
	"testing"

	"sharellc/internal/cache"
	"sharellc/internal/policy"
	"sharellc/internal/rng"
	"sharellc/internal/sharing"
	"sharellc/internal/trace"
)

func TestPlanValidation(t *testing.T) {
	bad := []Plan{
		{Interval: 0, Period: 10},
		{Interval: 10, Period: 5},
		{Interval: 10, Period: 20, Warmup: -1},
		{Interval: 10, Period: 20, Warmup: 11},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated: %+v", i, p)
		}
	}
	good := Plan{Interval: 10, Period: 40, Warmup: 20}
	if err := good.Validate(); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
	if got := good.KeptFraction(); got != 0.25 {
		t.Errorf("KeptFraction = %v", got)
	}
}

func mkStream(n int, seed uint64) []cache.AccessInfo {
	rnd := rng.New(seed)
	stream := make([]cache.AccessInfo, n)
	for i := range stream {
		stream[i] = cache.AccessInfo{
			Core:  uint8(rnd.Intn(4)),
			Block: rnd.Uint64n(96),
			Index: int64(i),
		}
	}
	cache.AnnotateNextUse(stream)
	return stream
}

func TestTakeGeometry(t *testing.T) {
	stream := mkStream(1000, 1)
	p := Plan{Interval: 100, Period: 250, Warmup: 50}
	exs, err := Take(stream, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) != 4 {
		t.Fatalf("%d excerpts, want 4", len(exs))
	}
	// First excerpt starts at 0: no warmup available.
	if exs[0].CountFrom != 0 || len(exs[0].Accesses) != 100 {
		t.Errorf("excerpt 0: countFrom=%d len=%d", exs[0].CountFrom, len(exs[0].Accesses))
	}
	// Later excerpts carry the full warmup prefix.
	if exs[1].CountFrom != 50 || len(exs[1].Accesses) != 150 {
		t.Errorf("excerpt 1: countFrom=%d len=%d", exs[1].CountFrom, len(exs[1].Accesses))
	}
	if exs[1].Start != 250 {
		t.Errorf("excerpt 1 start = %d", exs[1].Start)
	}
	// Re-indexed contiguously.
	for _, ex := range exs {
		for i, a := range ex.Accesses {
			if a.Index != int64(i) {
				t.Fatalf("excerpt index %d = %d", i, a.Index)
			}
		}
	}
}

func TestFullCoveragePlanIsIdentity(t *testing.T) {
	stream := mkStream(500, 2)
	exs, err := Take(stream, Plan{Interval: 500, Period: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) != 1 || len(exs[0].Accesses) != 500 || exs[0].CountFrom != 0 {
		t.Fatalf("identity plan mangled the stream")
	}
	for i := range stream {
		a, b := stream[i], exs[0].Accesses[i]
		if a.Block != b.Block || a.Core != b.Core || a.NextUse != b.NextUse {
			t.Fatalf("identity excerpt differs at %d", i)
		}
	}
}

// TestSampledMissRateApproximatesFull is the validation experiment: a
// 25%-sampled replay with warmup lands close to the full replay's miss
// rate on a stationary stream.
func TestSampledMissRateApproximatesFull(t *testing.T) {
	const size, ways = 64 * trace.BlockSize, 4
	stream := mkStream(40000, 3)

	full, err := sharing.Replay(stream, size, ways, policy.NewLRUPolicy(), sharing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fullRate := full.MissRate()

	exs, err := Take(stream, Plan{Interval: 1000, Period: 4000, Warmup: 2000})
	if err != nil {
		t.Fatal(err)
	}
	var hits, misses uint64
	for _, ex := range exs {
		res, err := sharing.Replay(ex.Accesses, size, ways, policy.NewLRUPolicy(),
			sharing.Options{Warmup: ex.CountFrom})
		if err != nil {
			t.Fatal(err)
		}
		hits += res.Hits
		misses += res.Misses
	}
	sampledRate := float64(misses) / float64(hits+misses)
	if math.Abs(sampledRate-fullRate) > 0.05 {
		t.Errorf("sampled miss rate %.4f vs full %.4f (off by > 0.05)", sampledRate, fullRate)
	}
	// And without warmup the cold-start bias must push the rate UP.
	var coldMisses, coldHits uint64
	exsNoWarm, err := Take(stream, Plan{Interval: 1000, Period: 4000})
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range exsNoWarm {
		res, err := sharing.Replay(ex.Accesses, size, ways, policy.NewLRUPolicy(), sharing.Options{})
		if err != nil {
			t.Fatal(err)
		}
		coldHits += res.Hits
		coldMisses += res.Misses
	}
	coldRate := float64(coldMisses) / float64(coldHits+coldMisses)
	if coldRate <= sampledRate {
		t.Errorf("cold-start rate %.4f not above warmed rate %.4f; warmup does nothing?", coldRate, sampledRate)
	}
}
