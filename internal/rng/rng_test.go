package rng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 produced %d identical outputs in 100 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Error("zero seed produced stuck-at-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("parent and split child produced %d identical outputs", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared-ish sanity check: 10 buckets, 100k draws.
	s := New(99)
	const buckets = 10
	const draws = 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(buckets)]++
	}
	expect := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Errorf("bucket %d count %d too far from expected %.0f", b, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(17)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Errorf("Shuffle changed the multiset: sum %d -> %d", sum, got)
	}
}

func TestMul64MatchesBits(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		hi2, lo2 := bits.Mul64(a, b)
		return hi == hi2 && lo == lo2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nNeverGeN(t *testing.T) {
	f := func(seed, n uint64) bool {
		if n == 0 {
			n = 1
		}
		s := New(seed)
		for i := 0; i < 32; i++ {
			if s.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}
