package rng

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples from a bounded Zipf (power-law) distribution over
// [0, n): P(k) ∝ 1/(k+1)^s. Workload generators use it for the skewed
// reuse behaviour of real applications — a small hot subset of a region
// receives most of the touches.
//
// The implementation precomputes the CDF once (O(n) memory) and samples by
// binary search (O(log n) per draw), which is simple, exact and plenty
// fast for region sizes up to a few hundred thousand blocks.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a sampler over [0, n) with exponent s >= 0 drawing from
// src. s = 0 degenerates to the uniform distribution.
func NewZipf(src *Source, s float64, n int) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rng: Zipf over empty domain (n=%d)", n)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("rng: Zipf exponent %v out of range", s)
	}
	if src == nil {
		return nil, fmt.Errorf("rng: Zipf with nil source")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	inv := 1 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, src: src}, nil
}

// N returns the domain size.
func (z *Zipf) N() int { return len(z.cdf) }

// Next draws one sample in [0, N()).
func (z *Zipf) Next() int {
	u := z.src.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}
