package rng

import (
	"math"
	"testing"
)

func TestZipfValidation(t *testing.T) {
	src := New(1)
	if _, err := NewZipf(src, 1, 0); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewZipf(src, -1, 10); err == nil {
		t.Error("negative exponent accepted")
	}
	if _, err := NewZipf(src, math.NaN(), 10); err == nil {
		t.Error("NaN exponent accepted")
	}
	if _, err := NewZipf(nil, 1, 10); err == nil {
		t.Error("nil source accepted")
	}
}

func TestZipfRange(t *testing.T) {
	z, err := NewZipf(New(2), 1.2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if z.N() != 100 {
		t.Errorf("N = %d", z.N())
	}
	for i := 0; i < 10000; i++ {
		if k := z.Next(); k < 0 || k >= 100 {
			t.Fatalf("sample %d out of range", k)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(New(3), 1.0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 1000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should dominate: with s=1 over 1000 items, P(0) ≈ 1/H(1000)
	// ≈ 13%. Check it lands within a loose band and that the head of the
	// distribution outweighs the tail.
	p0 := float64(counts[0]) / draws
	if p0 < 0.10 || p0 > 0.17 {
		t.Errorf("P(rank 0) = %.3f, want ≈0.13", p0)
	}
	head, tail := 0, 0
	for k, c := range counts {
		if k < 100 {
			head += c
		} else {
			tail += c
		}
	}
	if head < tail {
		t.Errorf("head (top 10%%) drew %d < tail %d; no skew", head, tail)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z, err := NewZipf(New(4), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	for k, c := range counts {
		if math.Abs(float64(c)-draws/10) > 5*math.Sqrt(draws/10) {
			t.Errorf("s=0 bucket %d count %d not uniform", k, c)
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	mk := func() []int {
		z, err := NewZipf(New(9), 0.8, 50)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, 100)
		for i := range out {
			out[i] = z.Next()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("zipf draws diverged at %d", i)
		}
	}
}
