// Package rng provides small, fast, deterministic pseudo-random number
// generators and distributions used throughout the simulator.
//
// Everything in this repository that is stochastic — synthetic workload
// generation, the Random replacement policy, BIP/BRRIP insertion coin
// flips — draws from rng.Source streams seeded explicitly, so every
// experiment is bit-reproducible across runs and platforms.
//
// The core generator is xorshift64* (Vigna, 2016): a 64-bit state xorshift
// with a multiplicative output scrambler. It is not cryptographically
// secure, which is irrelevant here; it is fast, has a period of 2^64-1 and
// passes BigCrush on the high bits.
package rng

// Source is a deterministic 64-bit pseudo-random generator.
//
// The zero value is not usable; construct with New. Source is not safe for
// concurrent use; give each goroutine its own stream (see Split).
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has a zero fixed point.
func New(seed uint64) *Source {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15 // golden-ratio constant
	}
	s := &Source{state: seed}
	// Warm up so that low-entropy seeds (1, 2, 3, ...) decorrelate.
	for i := 0; i < 8; i++ {
		s.Uint64()
	}
	return s
}

// Split derives an independent child stream from s. The child's sequence
// is decorrelated from the parent's by hashing the parent's next output
// with a distinct odd constant, so calling Split repeatedly yields streams
// that do not overlap in practice.
func (s *Source) Split() *Source {
	x := s.Uint64()
	x ^= 0xD1B54A32D192ED03
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return New(x)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	x := s.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32 returns the next 32 uniformly distributed bits (the high half of
// Uint64, which has the best statistical quality for xorshift64*).
func (s *Source) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed uint64 in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	// Lemire's method: compute the 128-bit product x*n and keep the high
	// word, rejecting the small biased region of the low word.
	for {
		x := s.Uint64()
		hi, lo := mul64(x, n)
		if lo >= n || lo >= -n%n { // -n%n == (2^64 - n) % n
			return hi
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits → [0,1) with full double precision.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, which
// exchanges the elements at indexes i and j.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo) without
// importing math/bits at every call site (this is what bits.Mul64 does).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo32 := t & mask32
	carry := t >> 32
	t = aHi*bLo + carry
	mid1 := t & mask32
	carry = t >> 32
	t = aLo*bHi + mid1
	mid2 := t & mask32
	hi = aHi*bHi + carry + t>>32
	lo = mid2<<32 | lo32
	return hi, lo
}
