// Package stats provides the small numeric helpers the experiment layer
// uses to aggregate per-workload results into the suite-level numbers the
// paper reports (arithmetic and geometric means, ratios, percentages) and
// a fixed-bucket histogram for sharing degrees.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// clamped to a tiny epsilon (the convention replacement studies use when
// normalizing miss counts that can reach zero), and an empty slice yields 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	const eps = 1e-12
	sum := 0.0
	for _, x := range xs {
		if x < eps {
			x = eps
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Ratio returns num/den, or 0 when den is 0.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Pct formats a fraction as a fixed-width percentage, e.g. 0.0634 →
// "6.34%".
func Pct(frac float64) string { return fmt.Sprintf("%.2f%%", 100*frac) }

// DegreeBuckets are the sharing-degree groups used by the F3 experiment:
// private (1), pairwise (2), small groups (3-4) and wide sharing (5+).
var DegreeBuckets = []struct {
	Label    string
	Min, Max int
}{
	{"1", 1, 1},
	{"2", 2, 2},
	{"3-4", 3, 4},
	{"5+", 5, math.MaxInt32},
}

// BucketizeDegrees folds a per-degree count vector (index = degree) into
// the four DegreeBuckets and returns each bucket's share of the total.
// An all-zero input yields all-zero shares.
func BucketizeDegrees(byDegree []uint64) [4]float64 {
	var counts [4]uint64
	var total uint64
	for degree, n := range byDegree {
		if degree == 0 || n == 0 {
			continue
		}
		total += n
		for i, b := range DegreeBuckets {
			if degree >= b.Min && degree <= b.Max {
				counts[i] += n
				break
			}
		}
	}
	var shares [4]float64
	if total == 0 {
		return shares
	}
	for i, c := range counts {
		shares[i] = float64(c) / float64(total)
	}
	return shares
}
