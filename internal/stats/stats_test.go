package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	// Zero entries clamp, not crash.
	if got := GeoMean([]float64{0, 1}); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("GeoMean with zero = %v", got)
	}
}

func TestGeoMeanLeqMean(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			x = math.Abs(x)
			if x > 1e-6 && x < 1e6 && !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio div-by-zero not guarded")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("Ratio wrong")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.0634); got != "6.34%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestBucketizeDegrees(t *testing.T) {
	byDeg := make([]uint64, 10)
	byDeg[1] = 50
	byDeg[2] = 25
	byDeg[3] = 10
	byDeg[4] = 5
	byDeg[8] = 10
	shares := BucketizeDegrees(byDeg)
	want := [4]float64{0.5, 0.25, 0.15, 0.10}
	for i := range want {
		if math.Abs(shares[i]-want[i]) > 1e-9 {
			t.Errorf("bucket %d share = %v, want %v", i, shares[i], want[i])
		}
	}
}

func TestBucketizeEmpty(t *testing.T) {
	if BucketizeDegrees(nil) != [4]float64{} {
		t.Error("empty histogram produced shares")
	}
	if BucketizeDegrees(make([]uint64, 5)) != [4]float64{} {
		t.Error("zero histogram produced shares")
	}
}

func TestBucketSharesSumToOne(t *testing.T) {
	f := func(counts []uint64) bool {
		byDeg := make([]uint64, len(counts))
		var total uint64
		for i, c := range counts {
			c %= 1000
			byDeg[i] = c
			if i >= 1 {
				total += c
			}
		}
		shares := BucketizeDegrees(byDeg)
		sum := shares[0] + shares[1] + shares[2] + shares[3]
		if total == 0 {
			return sum == 0
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
