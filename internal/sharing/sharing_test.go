package sharing

import (
	"testing"
	"testing/quick"

	"sharellc/internal/cache"
	"sharellc/internal/rng"
	"sharellc/internal/trace"
)

// mkStream builds an annotated LLC stream from (core, block) pairs.
func mkStream(pairs [][2]uint64) []cache.AccessInfo {
	stream := make([]cache.AccessInfo, len(pairs))
	for i, p := range pairs {
		stream[i] = cache.AccessInfo{
			Core:  uint8(p[0]),
			Block: p[1],
			PC:    0x400 + p[1]*4,
			Index: int64(i),
		}
	}
	cache.AnnotateNextUse(stream)
	return stream
}

const (
	testSize = 16 * trace.BlockSize // 4 sets x 4 ways
	testWays = 4
)

func replay(t *testing.T, stream []cache.AccessInfo, opt Options) *Result {
	t.Helper()
	res, err := Replay(stream, testSize, testWays, cache.NewLRU(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPrivateResidency(t *testing.T) {
	// One core touches one block three times: 1 residency, private,
	// 2 hits.
	res := replay(t, mkStream([][2]uint64{{0, 1}, {0, 1}, {0, 1}}), Options{FillShared: true})
	if res.Accesses != 3 || res.Hits != 2 || res.Misses != 1 {
		t.Fatalf("counts = (%d,%d,%d), want (3,2,1)", res.Accesses, res.Hits, res.Misses)
	}
	if res.SharedHits != 0 || res.PrivateHits != 2 {
		t.Errorf("hit split = (%d,%d), want (0,2)", res.SharedHits, res.PrivateHits)
	}
	if res.Residencies != 1 || res.SharedResidencies != 0 {
		t.Errorf("residencies = (%d,%d), want (1,0)", res.Residencies, res.SharedResidencies)
	}
	if res.FillShared[0] {
		t.Error("private fill marked shared")
	}
}

func TestSharedResidency(t *testing.T) {
	// Core 0 fills, core 1 hits: the residency is shared, and BOTH hits
	// (including core 0's own later hit) count as shared hit volume.
	res := replay(t, mkStream([][2]uint64{{0, 1}, {1, 1}, {0, 1}}), Options{FillShared: true})
	if res.SharedHits != 2 || res.PrivateHits != 0 {
		t.Errorf("hit split = (%d,%d), want (2,0)", res.SharedHits, res.PrivateHits)
	}
	if res.SharedResidencies != 1 {
		t.Errorf("shared residencies = %d, want 1", res.SharedResidencies)
	}
	if !res.FillShared[0] {
		t.Error("shared fill not marked in FillShared")
	}
	if res.FillShared[1] || res.FillShared[2] {
		t.Error("non-fill accesses marked in FillShared")
	}
}

func TestSharingResetsAcrossResidencies(t *testing.T) {
	// Block 0 is shared in its first residency, then evicted by
	// conflicting fills, then re-filled and touched by one core only:
	// the second residency is private. Blocks 0,4,8,12,16 map to set 0.
	pairs := [][2]uint64{
		{0, 0}, {1, 0}, // residency 1 of block 0: shared
		{0, 4}, {0, 8}, {0, 12}, {0, 16}, // four fills evict block 0 (LRU)
		{0, 0}, {0, 0}, // residency 2 of block 0: private
	}
	res := replay(t, mkStream(pairs), Options{KeepResidencies: true})
	if res.Residencies < 2 {
		t.Fatalf("residencies = %d, want >= 2", res.Residencies)
	}
	var first, second *Residency
	for i := range res.ResidencyLog {
		r := &res.ResidencyLog[i]
		if r.Block == 0 {
			if first == nil {
				first = r
			} else {
				second = r
			}
		}
	}
	// The second residency of block 0 is still alive at stream end and
	// closed then; both must be present in the log.
	if first == nil || second == nil {
		t.Fatal("expected two residencies of block 0 in the log")
	}
	if !first.Shared() || first.Degree() != 2 {
		t.Errorf("first residency: shared=%v degree=%d, want true/2", first.Shared(), first.Degree())
	}
	if second.Shared() {
		t.Error("second residency inherited sharing from the first")
	}
	if !first.Evicted() {
		t.Error("first residency not marked evicted")
	}
	if second.Evicted() {
		t.Error("alive-at-end residency marked evicted")
	}
}

func TestDegreeHistogram(t *testing.T) {
	// Block 1 touched by cores 0,1,2; block 2 by core 3 only.
	pairs := [][2]uint64{{0, 1}, {1, 1}, {2, 1}, {3, 2}}
	res := replay(t, mkStream(pairs), Options{})
	if res.DegreeResidencies[3] != 1 {
		t.Errorf("degree-3 residencies = %d, want 1", res.DegreeResidencies[3])
	}
	if res.DegreeResidencies[1] != 1 {
		t.Errorf("degree-1 residencies = %d, want 1", res.DegreeResidencies[1])
	}
	if res.DegreeHits[3] != 2 {
		t.Errorf("degree-3 hits = %d, want 2", res.DegreeHits[3])
	}
}

func TestDistinctBlockCensus(t *testing.T) {
	pairs := [][2]uint64{
		{0, 1}, {1, 1}, // block 1 shared
		{0, 2}, {0, 2}, // block 2 private
		{0, 3}, // block 3 private, no reuse
	}
	res := replay(t, mkStream(pairs), Options{})
	if res.DistinctBlocks != 3 {
		t.Errorf("DistinctBlocks = %d, want 3", res.DistinctBlocks)
	}
	if res.DistinctSharedBlocks != 1 {
		t.Errorf("DistinctSharedBlocks = %d, want 1", res.DistinctSharedBlocks)
	}
}

func TestReadOnlyVsReadWriteSharing(t *testing.T) {
	// Block 1: shared, read-only. Block 2: shared, written by core 1.
	stream := []cache.AccessInfo{
		{Core: 0, Block: 1, Index: 0},
		{Core: 1, Block: 1, Index: 1},
		{Core: 0, Block: 2, Index: 2},
		{Core: 1, Block: 2, Write: true, Index: 3},
		{Core: 2, Block: 2, Index: 4},
	}
	res, err := Replay(stream, testSize, testWays, cache.NewLRU(), Options{KeepResidencies: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ROSharedResidencies != 1 || res.RWSharedResidencies != 1 {
		t.Errorf("RO/RW shared residencies = (%d,%d), want (1,1)",
			res.ROSharedResidencies, res.RWSharedResidencies)
	}
	if res.ROSharedHits != 1 || res.RWSharedHits != 2 {
		t.Errorf("RO/RW shared hits = (%d,%d), want (1,2)", res.ROSharedHits, res.RWSharedHits)
	}
	for _, r := range res.ResidencyLog {
		if r.Block == 1 && r.Written() {
			t.Error("read-only residency marked written")
		}
		if r.Block == 2 && !r.Written() {
			t.Error("written residency not marked")
		}
	}
}

func TestWrittenByFill(t *testing.T) {
	// The fill itself being a store marks the residency written.
	stream := []cache.AccessInfo{
		{Core: 0, Block: 1, Write: true, Index: 0},
		{Core: 1, Block: 1, Index: 1},
	}
	res, err := Replay(stream, testSize, testWays, cache.NewLRU(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RWSharedResidencies != 1 {
		t.Errorf("write-filled shared residency not counted as RW: %+v", res)
	}
}

func TestMakeWrittenResidency(t *testing.T) {
	r := MakeWrittenResidency(5, 0x100, 3)
	if !r.Written() || r.Degree() != 3 {
		t.Errorf("MakeWrittenResidency = written %v degree %d", r.Written(), r.Degree())
	}
	if MakeResidency(5, 0x100, 3).Written() {
		t.Error("MakeResidency marked written")
	}
}

func TestROPlusRWEqualsShared(t *testing.T) {
	f := func(seed uint64) bool {
		rnd := rng.New(seed)
		n := 500 + rnd.Intn(1000)
		stream := make([]cache.AccessInfo, n)
		for i := range stream {
			stream[i] = cache.AccessInfo{
				Core:  uint8(rnd.Intn(8)),
				Block: rnd.Uint64n(96),
				Write: rnd.Bool(0.3),
				Index: int64(i),
			}
		}
		res, err := Replay(stream, testSize, testWays, cache.NewLRU(), Options{})
		if err != nil {
			return false
		}
		return res.ROSharedResidencies+res.RWSharedResidencies == res.SharedResidencies &&
			res.ROSharedHits+res.RWSharedHits == res.SharedHits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPredictionAccounting(t *testing.T) {
	// Predict shared iff block is even. Block 2 (even) becomes shared →
	// TP. Block 4 (even) stays private → FP. Block 1 (odd) becomes
	// shared → FN. Block 3 (odd) stays private → TN.
	pairs := [][2]uint64{
		{0, 2}, {1, 2},
		{0, 4},
		{0, 1}, {1, 1},
		{0, 3},
	}
	stream := mkStream(pairs)
	opt := Options{Hooks: Hooks{
		PredictShared: func(a cache.AccessInfo) bool { return a.Block%2 == 0 },
	}}
	res := replay(t, stream, opt)
	if res.Pred.TP != 1 || res.Pred.FP != 1 || res.Pred.FN != 1 || res.Pred.TN != 1 {
		t.Errorf("PredStats = %+v, want 1 each", res.Pred)
	}
	if got := res.Pred.Accuracy(); got != 0.5 {
		t.Errorf("Accuracy = %v, want 0.5", got)
	}
	if got := res.Pred.Precision(); got != 0.5 {
		t.Errorf("Precision = %v, want 0.5", got)
	}
	if got := res.Pred.Recall(); got != 0.5 {
		t.Errorf("Recall = %v, want 0.5", got)
	}
}

func TestPredStatsEmpty(t *testing.T) {
	var p PredStats
	if p.Accuracy() != 0 || p.Precision() != 0 || p.Recall() != 0 {
		t.Error("empty PredStats returned non-zero rates")
	}
}

func TestOnResidencyEndFiresForAll(t *testing.T) {
	pairs := [][2]uint64{{0, 0}, {0, 4}, {0, 8}, {0, 12}, {0, 16}} // 5 blocks, 4 ways: 1 eviction
	var ended []Residency
	opt := Options{Hooks: Hooks{
		OnResidencyEnd: func(r Residency) { ended = append(ended, r) },
	}}
	res := replay(t, mkStream(pairs), opt)
	if uint64(len(ended)) != res.Residencies {
		t.Errorf("hook fired %d times for %d residencies", len(ended), res.Residencies)
	}
	if res.Residencies != 5 {
		t.Errorf("residencies = %d, want 5", res.Residencies)
	}
	evicted := 0
	for _, r := range ended {
		if r.Evicted() {
			evicted++
		}
	}
	if evicted != 1 {
		t.Errorf("%d residencies evicted, want 1", evicted)
	}
}

func TestOnAccessHookFiresForEveryAccess(t *testing.T) {
	pairs := [][2]uint64{{0, 1}, {1, 1}, {0, 2}, {0, 1}}
	var seen []uint64
	opt := Options{Hooks: Hooks{
		OnAccess: func(a cache.AccessInfo) { seen = append(seen, a.Block) },
	}}
	res := replay(t, mkStream(pairs), opt)
	if uint64(len(seen)) != res.Accesses {
		t.Fatalf("hook fired %d times for %d accesses", len(seen), res.Accesses)
	}
	for i, p := range pairs {
		if seen[i] != p[1] {
			t.Errorf("hook order broken at %d: got block %d want %d", i, seen[i], p[1])
		}
	}
}

func TestStreamIndexValidation(t *testing.T) {
	stream := []cache.AccessInfo{{Block: 1, Index: 7}}
	if _, err := Replay(stream, testSize, testWays, cache.NewLRU(), Options{}); err == nil {
		t.Error("misindexed stream accepted")
	}
}

func TestBadGeometryRejected(t *testing.T) {
	if _, err := Replay(nil, 63, 4, cache.NewLRU(), Options{}); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestEmptyStream(t *testing.T) {
	res := replay(t, nil, Options{})
	if res.Accesses != 0 || res.Residencies != 0 || res.MissRate() != 0 || res.SharedHitFraction() != 0 {
		t.Errorf("empty stream produced non-empty result: %+v", res)
	}
}

// Property: conservation laws hold on random streams under every metric:
// hits+misses=accesses, shared+private hits=hits, residencies=fills,
// degree histograms sum to totals, FillShared marks exactly the shared
// residencies' fills.
func TestConservationProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rnd := rng.New(seed)
		n := 500 + rnd.Intn(1500)
		pairs := make([][2]uint64, n)
		for i := range pairs {
			pairs[i] = [2]uint64{rnd.Uint64n(8), rnd.Uint64n(96)}
		}
		res := replay(t, mkStream(pairs), Options{FillShared: true})
		if res.Hits+res.Misses != res.Accesses {
			return false
		}
		if res.SharedHits+res.PrivateHits != res.Hits {
			return false
		}
		if res.Residencies != res.Misses {
			return false
		}
		var degSum, degHits, fillShared uint64
		for d, c := range res.DegreeResidencies {
			degSum += c
			degHits += res.DegreeHits[d]
			if d >= 2 {
				// shared residencies
			}
		}
		if degSum != res.Residencies || degHits != res.Hits {
			return false
		}
		for _, b := range res.FillShared {
			if b {
				fillShared++
			}
		}
		if fillShared != res.SharedResidencies {
			return false
		}
		if res.DistinctSharedBlocks > res.DistinctBlocks {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: miss counts from Replay equal miss counts from driving the
// cache directly (the tracker must not perturb replacement).
func TestReplayMatchesRawCache(t *testing.T) {
	f := func(seed uint64) bool {
		rnd := rng.New(seed)
		n := 1000
		stream := make([]cache.AccessInfo, n)
		for i := range stream {
			stream[i] = cache.AccessInfo{
				Core:  uint8(rnd.Intn(4)),
				Block: rnd.Uint64n(64),
				Index: int64(i),
			}
		}
		res, err := Replay(stream, testSize, testWays, cache.NewLRU(), Options{})
		if err != nil {
			return false
		}
		raw, err := cache.NewSetAssoc(testSize, testWays, cache.NewLRU())
		if err != nil {
			return false
		}
		var rawMisses uint64
		for _, a := range stream {
			if !raw.Access(a).Hit {
				rawMisses++
			}
		}
		return rawMisses == res.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestResidencyLogDeterministic(t *testing.T) {
	rnd := rng.New(3)
	pairs := make([][2]uint64, 2000)
	for i := range pairs {
		pairs[i] = [2]uint64{rnd.Uint64n(4), rnd.Uint64n(128)}
	}
	a := replay(t, mkStream(pairs), Options{KeepResidencies: true})
	b := replay(t, mkStream(pairs), Options{KeepResidencies: true})
	if len(a.ResidencyLog) != len(b.ResidencyLog) {
		t.Fatal("log lengths differ between identical replays")
	}
	for i := range a.ResidencyLog {
		if a.ResidencyLog[i] != b.ResidencyLog[i] {
			t.Fatalf("residency %d differs between identical replays", i)
		}
	}
}

func TestWarmupExcludesLeadingAccesses(t *testing.T) {
	// 4 accesses, warmup 2: only the last two count.
	pairs := [][2]uint64{{0, 1}, {0, 2}, {0, 1}, {0, 3}}
	stream := mkStream(pairs)
	res, err := Replay(stream, testSize, testWays, cache.NewLRU(), Options{Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 2 {
		t.Errorf("Accesses = %d, want 2", res.Accesses)
	}
	// Access 2 hits block 1 (warmed in); access 3 misses.
	if res.Hits != 1 || res.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", res.Hits, res.Misses)
	}
}

func TestWarmupKeepsOracleKnowledgeComplete(t *testing.T) {
	// A shared residency entirely inside the warmup window must still
	// mark FillShared (oracle knowledge is a stream property).
	pairs := [][2]uint64{{0, 1}, {1, 1}, {0, 9}, {0, 9}}
	stream := mkStream(pairs)
	res, err := Replay(stream, testSize, testWays, cache.NewLRU(), Options{Warmup: 4, FillShared: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FillShared[0] {
		t.Error("warmup residency lost its FillShared bit")
	}
	if res.Accesses != 0 || res.Hits != 0 {
		t.Errorf("warmup-only replay counted stats: %+v", res)
	}
}

func TestWarmupZeroIsIdentity(t *testing.T) {
	rnd := rng.New(8)
	pairs := make([][2]uint64, 3000)
	for i := range pairs {
		pairs[i] = [2]uint64{rnd.Uint64n(4), rnd.Uint64n(64)}
	}
	a := replay(t, mkStream(pairs), Options{})
	b := replay(t, mkStream(pairs), Options{Warmup: 0})
	if a.Misses != b.Misses || a.SharedHits != b.SharedHits {
		t.Error("Warmup 0 changed results")
	}
}
