package sharing

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"sharellc/internal/cache"
	"sharellc/internal/policy"
)

// multiGeometries picks the differential-test LLC geometries: the
// paper's 4 MB and 8 MB points in full runs, scaled-down equivalents in
// -short mode (same sets:ways shape, small enough for the race detector
// in CI).
func multiGeometries(t *testing.T) (sizes [2]int, ways int, stream []cache.AccessInfo) {
	if testing.Short() {
		return [2]int{64 * cache.KB, 128 * cache.KB}, 8, synthStream(40000, 3000, 8, 7)
	}
	// 150k distinct blocks overflow the 4 MB (64Ki-block) and 8 MB
	// (128Ki-block) capacities, so both geometries see real evictions.
	return [2]int{4 * cache.MB, 8 * cache.MB}, 16, synthStream(400000, 150000, 8, 7)
}

// TestReplayMultiBitIdentical fuses every registered policy at both LLC
// sizes into ONE ReplayMulti call — mixed geometries, shardable and
// sequential lanes together — and demands each lane's full Result equal
// a solo sequential ReplayParallel of the same configuration.
func TestReplayMultiBitIdentical(t *testing.T) {
	sizes, ways, stream := multiGeometries(t)
	names := policy.Names(1)
	opt := Options{KeepResidencies: true, Warmup: 500, FillShared: true}

	var configs []LLCConfig
	var want []*Result
	for _, size := range sizes {
		for _, n := range names {
			f, err := policy.ByName(n, 1)
			if err != nil {
				t.Fatal(err)
			}
			configs = append(configs, LLCConfig{Size: size, Ways: ways, NewPolicy: f})
			o := opt
			o.Shards = 1 // sequential reference
			ref, err := ReplayParallel(stream, size, ways, f, o)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, ref)
		}
	}
	got, err := ReplayMulti(stream, configs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("%s @ %d B: fused result differs from sequential\nseq: %+v\nmulti: %+v",
				configs[i].NewPolicy().Name(), configs[i].Size, want[i], got[i])
		}
	}
}

// TestReplayMultiShardsOne caps the engine at one worker (the stream is
// also short enough that the blocking heuristic keeps a single shard,
// so every lane runs as its own sequential full-stream walk) and
// demands bit-identical results there too.
func TestReplayMultiShardsOne(t *testing.T) {
	stream := synthStream(20000, 200, 8, 7)
	names := policy.Names(1)
	configs := make([]LLCConfig, len(names))
	want := make([]*Result, len(names))
	for i, n := range names {
		f, err := policy.ByName(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		configs[i] = LLCConfig{Size: testSize, Ways: testWays, NewPolicy: f}
		ref, err := Replay(stream, testSize, testWays, f(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ref
	}
	got, err := ReplayMulti(stream, configs, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("%s: shards=1 fused result differs from sequential", names[i])
		}
	}
}

// TestReplayMultiCancelMidRun cancels a fused replay in flight. Both
// walks — the sharded workers and the sequential lane walk (forced by
// the hook lane) — must notice at their next poll.
func TestReplayMultiCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	stream := cancelStream(1 << 21)
	configs := []LLCConfig{
		{Size: 64 * cache.KB, Ways: 8, NewPolicy: func() cache.Policy { return policy.NewLRUPolicy() }},
		{Size: 64 * cache.KB, Ways: 8, NewPolicy: func() cache.Policy { return policy.NewLRUPolicy() },
			Hooks: Hooks{OnAccess: func(cache.AccessInfo) {}}},
	}
	start := time.Now()
	_, err := ReplayMulti(stream, configs, Options{Ctx: ctx, Shards: 4})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v; a walk is not polling", elapsed)
	}

	// Pre-cancelled contexts abort before any lane state is built.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := ReplayMulti(stream, configs, Options{Ctx: done}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
	}
}

// TestReplayMultiValidation covers the rejection paths: global hooks,
// missing factories, and a partitioner returning a mismatched partition.
func TestReplayMultiValidation(t *testing.T) {
	stream := synthStream(2000, 50, 4, 3)
	lru := func() cache.Policy { return policy.NewLRUPolicy() }
	cfg := LLCConfig{Size: testSize, Ways: testWays, NewPolicy: lru}

	if _, err := ReplayMulti(stream, []LLCConfig{cfg},
		Options{Hooks: Hooks{OnAccess: func(cache.AccessInfo) {}}}); err == nil {
		t.Error("global Options.Hooks accepted; want per-lane-hooks error")
	}
	if _, err := ReplayMulti(stream, []LLCConfig{{Size: testSize, Ways: testWays}}, Options{}); err == nil {
		t.Error("nil NewPolicy accepted")
	}
	if _, err := ReplayMulti(stream, []LLCConfig{{Size: testSize + 1, Ways: testWays, NewPolicy: lru}}, Options{}); err == nil {
		t.Error("bad geometry accepted")
	}
	res, err := ReplayMulti(stream, nil, Options{})
	if err != nil || res != nil {
		t.Errorf("empty configs: got (%v, %v), want (nil, nil)", res, err)
	}
	bad := func(shards int) (*PartitionIndex, error) {
		return BuildPartition(stream[:1000], 2) // wrong length and likely wrong shard count
	}
	if _, err := ReplayMulti(stream, []LLCConfig{cfg}, Options{Shards: 4, Partitioner: bad}); err == nil {
		t.Error("mismatched partition accepted")
	}
}

// TestReplayMultiPartitionerReused checks that a supplied Partitioner is
// consulted instead of rebuilding, and leaves results unchanged.
func TestReplayMultiPartitionerReused(t *testing.T) {
	stream := synthStream(20000, 200, 8, 7)
	lru := func() cache.Policy { return policy.NewLRUPolicy() }
	cfg := LLCConfig{Size: testSize, Ways: testWays, NewPolicy: lru}

	want, err := ReplayMulti(stream, []LLCConfig{cfg}, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	part := func(shards int) (*PartitionIndex, error) {
		calls++
		return BuildPartition(stream, shards)
	}
	got, err := ReplayMulti(stream, []LLCConfig{cfg}, Options{Shards: 4, Partitioner: part})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("partitioner called %d times, want 1", calls)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("cached partition changed the result")
	}
}

// TestReplayMultiHookLaneFactoryOnce pins the LLCConfig contract that
// lets callers stash protector instances: a hook lane calls NewPolicy
// exactly once no matter the shard count.
func TestReplayMultiHookLaneFactoryOnce(t *testing.T) {
	stream := synthStream(20000, 200, 8, 7)
	calls := 0
	cfg := LLCConfig{Size: testSize, Ways: testWays,
		NewPolicy: func() cache.Policy { calls++; return policy.NewLRUPolicy() },
		Hooks:     Hooks{OnAccess: func(cache.AccessInfo) {}},
	}
	if _, err := ReplayMulti(stream, []LLCConfig{cfg}, Options{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("hook lane called NewPolicy %d times, want exactly 1", calls)
	}
}

// TestBuildPartitionValidation covers the partition builder's input
// checks: non-power-of-two shard counts and unordered streams.
func TestBuildPartitionValidation(t *testing.T) {
	stream := synthStream(100, 10, 2, 5)
	for _, shards := range []int{0, 1, 3, 6} {
		if _, err := BuildPartition(stream, shards); err == nil {
			t.Errorf("shards=%d accepted", shards)
		}
	}
	bad := synthStream(100, 10, 2, 5)
	bad[40].Index = 7
	if _, err := BuildPartition(bad, 4); err == nil {
		t.Error("out-of-order stream index accepted")
	}
	p, err := BuildPartition(stream, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards != 4 || len(p.Order) != len(stream) || int(p.Offs[4]) != len(stream) {
		t.Errorf("partition shape wrong: %+v", p)
	}
	seen := make([]bool, len(stream))
	for s := 0; s < 4; s++ {
		prev := int32(-1)
		for _, idx := range p.Order[p.Offs[s]:p.Offs[s+1]] {
			if stream[idx].Block&3 != uint64(s) {
				t.Fatalf("position %d in shard %d, block %d", idx, s, stream[idx].Block)
			}
			if idx <= prev {
				t.Fatal("shard positions not in stream order")
			}
			prev = idx
			seen[idx] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("position %d missing from partition", i)
		}
	}
}
