package sharing

// SIMD tier selection and the decode/probe pipeline.
//
// PR 6/8/9 shaped the replay into column loops precisely so an
// explicit data-parallel tier could drop in; this file is that tier's
// selection layer. The kernels themselves live in internal/simd
// (AVX2/NEON assembly with a portable SWAR middle tier); what sharing
// adds is (a) a -simd knob mirroring -kernel/-tracker — per-replay
// via Options.SIMD, global via the SHARELLC_SIMD env gate — resolved
// once per replay into a simdOps binding consumed by the SIMD advance
// variants (tracker.go) and the batched close drain, and (b) colPipe,
// the per-shard software pipeline that decodes chunk N+1's columns
// while chunk N is in its probe/count/advance phases.

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"sharellc/internal/cache"
	"sharellc/internal/simd"
)

// SIMD selects the data-parallel tier of the batched lane walks. The
// zero value resolves to the assembly kernels when the CPU has them
// and to the portable SWAR kernels otherwise; SIMDSWAR forces the
// SWAR tier (the cross-architecture reference); SIMDOff disables the
// tier entirely — scalar advance loops, inline eviction closes, serial
// decode — exactly the PR 9 paths, kept as the bisection escape hatch
// (the -simd flag on sharesim, sharesimd and dumprows). Results are
// bit-identical across all three. Like -tracker, it applies only
// where the batch kernel runs.
type SIMD uint8

const (
	// SIMDAuto picks assembly when available, else SWAR.
	SIMDAuto SIMD = iota
	// SIMDSWAR forces the portable SWAR kernels.
	SIMDSWAR
	// SIMDOff disables the data-parallel tier (the PR 9 scalar paths).
	SIMDOff
)

// String returns the flag spelling of s.
func (s SIMD) String() string {
	switch s {
	case SIMDAuto:
		return "auto"
	case SIMDSWAR:
		return "swar"
	case SIMDOff:
		return "off"
	}
	return fmt.Sprintf("SIMD(%d)", uint8(s))
}

// ParseSIMD resolves a -simd flag value, rejecting unknown values with
// an error enumerating the valid ones.
func ParseSIMD(s string) (SIMD, error) {
	switch s {
	case "auto":
		return SIMDAuto, nil
	case "swar":
		return SIMDSWAR, nil
	case "off":
		return SIMDOff, nil
	}
	return 0, fmt.Errorf("sharing: unknown simd tier %q (have auto, swar, off)", s)
}

// simdCap is the global tier cap, mirroring batchTrackerOn: default
// auto (no cap); SHARELLC_SIMD=swar caps every replay at the SWAR
// tier, SHARELLC_SIMD=off forces the scalar paths — both without a
// rebuild, so a bad kernel can be bisected in production. The numeric
// order auto < swar < off is "less capable", so the effective tier is
// the max of the option and the cap.
var simdCap atomic.Uint32

func init() {
	switch os.Getenv("SHARELLC_SIMD") {
	case "off":
		simdCap.Store(uint32(SIMDOff))
	case "swar":
		simdCap.Store(uint32(SIMDSWAR))
	}
}

// EnableSIMD sets the global SIMD tier cap for replays started
// afterwards, returning the previous cap.
func EnableSIMD(s SIMD) (prev SIMD) {
	return SIMD(simdCap.Swap(uint32(s)))
}

// The SIMD kernels bake in the outcome-word, outcome-log and packed
// core/write-word encodings; these pins keep the copies in
// internal/simd from drifting apart from the authoritative ones.
const (
	_ = cache.BatchHit - uint32(1)<<simd.HitShift
	_ = uint32(1)<<simd.HitShift - cache.BatchHit
	_ = simd.LogHit - logHit
	_ = logHit - simd.LogHit
	_ = simd.CWWritten - cwWritten
	_ = cwWritten - simd.CWWritten
)

// simdOps is one replay's bound kernel set — assembly or SWAR,
// resolved once per replay (resolveSIMD) the way advanceFn variants
// are bound once at lane setup. A nil *simdOps means the tier is off.
type simdOps struct {
	countHits    func([]uint32) uint64
	countLogHits func([]uint8) uint64
	expandCW     func([]uint8, []uint64)
	degrees      func([]uint64, []uint8)
}

var asmOps = simdOps{
	countHits:    simd.CountHits,
	countLogHits: simd.CountLogHits,
	expandCW:     simd.ExpandCW,
	degrees:      simd.Degrees,
}

var swarOps = simdOps{
	countHits:    simd.CountHitsSWAR,
	countLogHits: simd.CountLogHitsSWAR,
	expandCW:     simd.ExpandCWSWAR,
	degrees:      simd.DegreesSWAR,
}

// resolveSIMD combines the per-replay option with the global cap and
// hardware detection into the bound kernel set, or nil when the tier
// is off.
func resolveSIMD(opt SIMD) *simdOps {
	if c := SIMD(simdCap.Load()); c > opt {
		opt = c
	}
	switch opt {
	case SIMDAuto:
		if simd.HasAsm() {
			return &asmOps
		}
		return &swarOps
	case SIMDSWAR:
		return &swarOps
	}
	return nil
}

// pipeAhead bounds the decode producer's lookahead: it may run at most
// one full chunk past the chunk the consumer is in (decoded ≤ consumed
// + 2·batchSize covers the in-flight chunk plus one), so the pipeline
// never holds more than two chunks of freshly-decoded columns — they
// stay L1/L2-resident for the consumer — and cancellation latency
// stays one chunk.
const pipeAhead = 2 * batchSize

// colPipe is the per-shard decode pipeline: a producer goroutine
// gathers the shard's accesses and decodes their columns chunk by
// chunk, publishing a monotone watermark; the shard worker's lane
// walks wait for each chunk's range before consuming it and publish
// their own consumption watermark back, which is what bounds the
// lookahead. Same discipline as logRing: watermarks are published
// after the column bytes are written and Go's atomics order the
// stores, so a consumer that observes decoded ≥ n may read the first n
// column entries without the lock; the mutex/cond pair only parks
// whichever side arrived early. abort (consumer → producer, on error
// or cancellation) unparks the producer so it can exit; done closes
// when the producer has returned, making it safe to reuse or release
// the column scratch.
type colPipe struct {
	decoded  atomic.Int64
	consumed atomic.Int64
	aborted  atomic.Bool
	mu       sync.Mutex
	cond     sync.Cond
	done     chan struct{}
}

func newColPipe() *colPipe {
	p := &colPipe{done: make(chan struct{})}
	p.cond.L = &p.mu
	return p
}

// publish makes the first n decoded column entries visible.
func (p *colPipe) publish(n int64) {
	p.decoded.Store(n)
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// waitDecoded blocks until the first n column entries are decoded.
// The producer only exits early when aborted — and abort is only
// called after the consumer stops consuming — so a positive wait can
// always be satisfied unless this replay is already failing.
func (p *colPipe) waitDecoded(n int64) {
	if p.decoded.Load() >= n {
		return
	}
	p.mu.Lock()
	for p.decoded.Load() < n && !p.aborted.Load() {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// consume publishes the consumer's progress: column entries below n
// are no longer needed, releasing producer lookahead room. Later lane
// walks of the same shard re-walk the columns from the start; their
// re-publications of earlier watermarks are dropped (the producer has
// already run ahead and only new room can unpark it).
func (p *colPipe) consume(n int64) {
	if p.consumed.Load() >= n {
		return
	}
	p.consumed.Store(n)
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// waitRoom blocks the producer until decoding up to n stays within the
// lookahead bound, returning false when the pipe was aborted.
func (p *colPipe) waitRoom(n int64) bool {
	if p.aborted.Load() {
		return false
	}
	if n <= p.consumed.Load()+pipeAhead {
		return true
	}
	p.mu.Lock()
	for n > p.consumed.Load()+pipeAhead && !p.aborted.Load() {
		p.cond.Wait()
	}
	p.mu.Unlock()
	return !p.aborted.Load()
}

// abort unparks the producer so it exits without decoding further;
// join (below) then waits for it. Idempotent, and harmless after a
// clean finish.
func (p *colPipe) abort() {
	p.aborted.Store(true)
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// join blocks until the producer goroutine has returned. The column
// scratch must not be reused (next shard) or released (pool put) until
// then.
func (p *colPipe) join() { <-p.done }

// decodePipelined is the producer: the shard gather fused with the
// column decode, chunk by chunk, publishing after each chunk. Fusing
// the two means the 56-byte records are still hot in L1 when the
// decode re-reads them, where the serial path streams the whole shard
// buffer twice.
func decodePipelined(stream []cache.AccessInfo, order []int32, accs []cache.AccessInfo, bs *batchScratch, p *colPipe) {
	defer close(p.done)
	for lo := 0; lo < len(order); lo += batchSize {
		hi := lo + batchSize
		if hi > len(order) {
			hi = len(order)
		}
		if !p.waitRoom(int64(hi)) {
			return
		}
		for k := lo; k < hi; k++ {
			accs[k] = stream[order[k]]
		}
		decodeColumns(accs[lo:hi], bs.blk[lo:hi], bs.id[lo:hi], bs.meta[lo:hi])
		p.publish(int64(hi))
	}
}
