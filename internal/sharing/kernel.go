package sharing

// Batched SoA replay kernel.
//
// The scalar kernel advances one access at a time through step (or
// stepLogged), interleaving decode, probe, policy and tracker work in
// one branchy body per access per lane. The batch kernel restructures
// the same walk into phases over chunks of batchSize accesses:
//
//  1. decode — the gathered shard buffer is unpacked once, for every
//     lane that will walk it, into flat struct-of-arrays columns: block
//     numbers, dense BlockIDs and a one-byte core/store meta field;
//  2. probe — cache.ReplayBatchCols (or ReplayBatch for the
//     stream-order policy pass) runs the tag/victim/policy half as one
//     tight loop, emitting a packed outcome word per access;
//  3. count — hit/miss counters fold out of the outcome words in a
//     branch-free reduction;
//  4. advance — the residency tracker consumes the outcome words,
//     touching only meta bytes and outcome words on the hit majority
//     path and the full record only on fills.
//
// Each phase is a short dependence-free-per-iteration loop over L1-
// resident chunk state (batchSize is sized so the chunk columns stay
// under the L2 slice the shard walk already budgets via blockBudget),
// which is the layout explicit SIMD can later target. Outputs are
// bit-identical to the scalar kernel: the probe performs exactly the
// scalar fast-path cache transitions in the same order, and the
// advance phase performs exactly step's tracker transitions (the
// differential tests in batch_test.go hold every experiment family to
// byte equality). Hooked lanes, lanes wider than the outcome encodings
// and the plain sequential Replay always run the scalar kernel — hooks
// observe stream order access by access.

import (
	"fmt"
	"sort"

	"sharellc/internal/cache"
)

// Kernel selects the replay inner-loop implementation. The zero value
// is the batched kernel, so existing callers get the fast path; scalar
// is the escape hatch for bisecting regressions in production (the
// -kernel flag on sharesim and sharesimd).
type Kernel uint8

const (
	// KernelBatch phase-splits the fused replay into batched SoA loops.
	KernelBatch Kernel = iota
	// KernelScalar replays one access at a time (the PR 4 paths).
	KernelScalar
)

// String returns the flag spelling of k.
func (k Kernel) String() string {
	switch k {
	case KernelBatch:
		return "batch"
	case KernelScalar:
		return "scalar"
	}
	return fmt.Sprintf("Kernel(%d)", uint8(k))
}

// ParseKernel resolves a -kernel flag value, rejecting unknown values
// with an error enumerating the valid ones.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "batch":
		return KernelBatch, nil
	case "scalar":
		return KernelScalar, nil
	}
	return 0, fmt.Errorf("sharing: unknown kernel %q (have batch, scalar)", s)
}

// batchSize is the accesses decoded per chunk. The chunk's own state —
// outcome words, block/ID/meta column slices — costs ~17 bytes per
// access, so 2 Ki keeps it near 32 KiB: resident in L1 across the
// probe→count→advance phases while leaving the L2 slice the shard walk
// budgets (blockBudget) to the lane's tracker, tag and policy state.
const batchSize = 2 << 10

// metaWrite flags a store in the decoded core/store meta byte; the low
// seven bits carry the core (Residency.addCore bounds cores at 128).
const metaWrite = 0x80

// batchScratch is one worker's batch-kernel state, grabbed alongside
// the gather buffer and reused across every shard the worker claims.
// The columns span the worker's current shard; out spans one chunk.
type batchScratch struct {
	blk  []uint64
	id   []uint32
	meta []uint8
	out  []uint32
}

// decodeColumns is the decode phase: one pass over the gathered shard
// buffer unpacks the columns every lane's probe and advance loops
// consume, so the 56-byte records are streamed once per shard instead
// of once per lane per phase.
func decodeColumns(accs []cache.AccessInfo, blk []uint64, id []uint32, meta []uint8) {
	for k := range accs {
		a := &accs[k]
		blk[k] = a.Block
		id[k] = a.BlockID
		m := a.Core
		if a.Write {
			m |= metaWrite
		}
		meta[k] = m
	}
}

// warmupSplit returns the first position of accs at or past the warmup
// boundary, so chunk loops can hoist the per-access counting test of
// the scalar kernel into a per-chunk constant. Stream order within a
// shard means Index is ascending, which is what the binary search
// needs.
func warmupSplit(accs []cache.AccessInfo, warmup int) int {
	if warmup <= 0 {
		return 0
	}
	return sort.Search(len(accs), func(i int) bool { return accs[i].Index >= int64(warmup) })
}

// countBatch is the count phase: Result's access/hit/miss counters
// fold out of a chunk's outcome words as a branch-free reduction.
func countBatch(res *Result, out []uint32) {
	var hits uint64
	for _, o := range out {
		hits += uint64(o>>30) & 1 // cache.BatchHit is bit 30
	}
	n := uint64(len(out))
	res.Accesses += n
	res.Hits += hits
	res.Misses += n - hits
}

// advanceBatch is the advance phase: the residency tracker replays a
// chunk's outcome words. The hit majority path touches only the
// outcome word, the block column (a consistency check against the
// tracked residency — the batch twin of the scalar kernel's
// tracker-vs-cache cross-checks), the meta byte and the residency
// line; fills read the full record. counting is constant per chunk
// (the warmup boundary splits chunks), so the residency hit counter
// advances branch-free.
func (st *replayState) advanceBatch(blk []uint64, meta []uint8, out []uint32, accs []cache.AccessInfo, counting bool) error {
	inc := uint64(0)
	if counting {
		inc = 1
	}
	lines := st.lines
	for k, o := range out {
		li := o & cache.BatchLine
		r := &lines[li]
		if o&cache.BatchHit != 0 {
			if r.Block != blk[k] {
				return fmt.Errorf("sharing: batch hit on line %d holding block %d, want block %d", li, r.Block, blk[k])
			}
			r.Hits += inc
			m := meta[k]
			r.coreMask[(m&^metaWrite)>>6] |= 1 << (m & 63)
			if m&metaWrite != 0 {
				r.written = true
			}
			continue
		}
		a := &accs[k]
		if o&cache.BatchEvict != 0 {
			if r.EvictIndex != -1 {
				return fmt.Errorf("sharing: batch evicted line %d holds no open residency", li)
			}
			st.closeRes(r, a.Index)
		}
		*r = Residency{
			Block:      blk[k],
			FillIndex:  a.Index,
			FillCore:   a.Core,
			FillPC:     a.PC,
			id:         a.BlockID,
			written:    a.Write,
			Predicted:  a.PredictedShared,
			EvictIndex: -1,
		}
		r.addCore(a.Core)
	}
	return nil
}

// runLaneBatch walks one shardable lane over the gathered shard buffer
// in chunks: probe → count → advance. The lane's active/lineID tables
// persist across shards and workers exactly like the scalar path's
// active table (disjoint index ranges per shard); the chunk loop also
// cuts at the warmup boundary so counting stays per-chunk constant.
func runLaneBatch(llc *cache.SetAssoc, l *lane, st *replayState, bs *batchScratch, accs []cache.AccessInfo, kWarm int, opt Options) error {
	for lo := 0; lo < len(accs); {
		hi := lo + batchSize
		if hi > len(accs) {
			hi = len(accs)
		}
		if lo < kWarm && kWarm < hi {
			hi = kWarm
		}
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				return err
			}
		}
		out := bs.out[:hi-lo]
		llc.ReplayBatchCols(bs.blk[lo:hi], bs.id[lo:hi], accs[lo:hi], l.active, l.lineID, out)
		counting := lo >= kWarm
		if counting {
			countBatch(st.res, out)
		}
		if err := st.advanceBatch(bs.blk[lo:hi], bs.meta[lo:hi], out, accs[lo:hi], counting); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}

// decodeLog rebuilds a chunk's outcome words from a two-phase lane's
// one-byte outcome log: the line index comes from the block column and
// the logged way, and the hit/evict flags shift from the log's bits
// 6–7 to the outcome word's bits 30–31.
func decodeLog(log []uint8, order []int32, blk []uint64, setMask uint64, ways int, out []uint32) {
	for k := range out {
		b := log[order[k]]
		li := uint32(int(blk[k]&setMask)*ways) + uint32(b&logWayMask)
		out[k] = li | uint32(b&(logHit|logEvict))<<24
	}
}

// runPhaseLaneBatch is the tracker half of a two-phase lane over one
// shard, batched: the decode phase reconstructs outcome words from the
// policy pass's log, then count and advance run as in the shardable
// walk. The block consistency check in advanceBatch replaces the
// scalar stepLogged's log-vs-tracker cross-checks.
func runPhaseLaneBatch(l *lane, st *replayState, bs *batchScratch, accs []cache.AccessInfo, order []int32, kWarm int, opt Options) error {
	setMask := uint64(l.sets - 1)
	ways := l.cfg.Ways
	for lo := 0; lo < len(accs); {
		hi := lo + batchSize
		if hi > len(accs) {
			hi = len(accs)
		}
		if lo < kWarm && kWarm < hi {
			hi = kWarm
		}
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				return err
			}
		}
		out := bs.out[:hi-lo]
		decodeLog(l.log, order[lo:hi], bs.blk[lo:hi], setMask, ways, out)
		counting := lo >= kWarm
		if counting {
			countBatch(st.res, out)
		}
		if err := st.advanceBatch(bs.blk[lo:hi], bs.meta[lo:hi], out, accs[lo:hi], counting); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}

// runPolicyPassBatch is the batched twin of runPolicyPass: the
// stream-order cache+policy walk runs through cache.ReplayBatch chunk
// by chunk, and a compress loop folds each chunk's outcome words into
// the one-byte-per-access log the tracker phase replays. The policy
// call sequence is exactly the scalar pass's, so cross-set policy
// state (dueling counters, RNG draws, global tables) evolves
// identically.
func runPolicyPassBatch(stream []cache.AccessInfo, l *lane, opt Options) error {
	llc, err := cache.NewSetAssoc(l.cfg.Size, l.cfg.Ways, l.inst)
	if err != nil {
		return err
	}
	ways := l.cfg.Ways
	setMask := uint64(l.sets - 1)
	log := l.log
	active := l.active
	lineID := grab(&scratch.cols, l.sets*ways, false)
	out := grab(&scratch.cols, batchSize, false)
	// When the policy carries a monomorphic kernel, the pass decodes
	// block/BlockID columns chunk by chunk and probes through
	// ReplayBatchCols, so the specialized loop (not the interface walk of
	// ReplayBatch) runs the stream-order pass too — two-phase policies are
	// the lanes a sweep spends most of its time in. The call sequence into
	// cross-set policy state (RNG draws, dueling updates, SHCT training)
	// is identical either way.
	var blkCol []uint64
	var idCol []uint32
	if llc.HasBatchKernel() {
		blkCol = grab(&scratch.blks, batchSize, false)
		idCol = grab(&scratch.cols, batchSize, false)
	}
	for lo := 0; lo < len(stream); lo += batchSize {
		hi := lo + batchSize
		if hi > len(stream) {
			hi = len(stream)
		}
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				return err
			}
		}
		o := out[:hi-lo]
		chunk := stream[lo:hi]
		if blkCol != nil {
			for k := range chunk {
				blkCol[k] = chunk[k].Block
				idCol[k] = chunk[k].BlockID
			}
			llc.ReplayBatchCols(blkCol[:len(chunk)], idCol[:len(chunk)], chunk, active, lineID, o)
		} else {
			llc.ReplayBatch(chunk, active, lineID, o)
		}
		for k := range o {
			set := uint32(stream[lo+k].Block&setMask) * uint32(ways)
			log[lo+k] = uint8(o[k]&cache.BatchLine-set) | uint8(o[k]>>24&uint32(logHit|logEvict))
		}
	}
	// The words pool's at-rest invariant is all-zero; active seeds the
	// tracker phase from it. The cols pool carries no invariant, so
	// lineID and out go back as they are.
	clear(active)
	put(&scratch.cols, lineID)
	put(&scratch.cols, out)
	if blkCol != nil {
		put(&scratch.blks, blkCol)
		put(&scratch.cols, idCol)
	}
	return nil
}
