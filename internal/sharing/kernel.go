package sharing

// Batched SoA replay kernel.
//
// The scalar kernel advances one access at a time through step (or
// stepLogged), interleaving decode, probe, policy and tracker work in
// one branchy body per access per lane. The batch kernel restructures
// the same walk into phases over chunks of batchSize accesses:
//
//  1. decode — the gathered shard buffer is unpacked once, for every
//     lane that will walk it, into flat struct-of-arrays columns: block
//     numbers, dense BlockIDs and a one-byte core/store meta field;
//  2. probe — cache.ReplayBatchCols (or ReplayBatch for the
//     stream-order policy pass) runs the tag/victim/policy half as one
//     tight loop, emitting a packed outcome word per access;
//  3. count — hit/miss counters fold out of the outcome words in a
//     branch-free reduction;
//  4. advance — the residency tracker consumes the outcome words,
//     touching only meta bytes and outcome words on the hit majority
//     path and the full record only on fills.
//
// Each phase is a short dependence-free-per-iteration loop over L1-
// resident chunk state (batchSize is sized so the chunk columns stay
// under the L2 slice the shard walk already budgets via blockBudget),
// which is the layout explicit SIMD can later target. Outputs are
// bit-identical to the scalar kernel: the probe performs exactly the
// scalar fast-path cache transitions in the same order, and the
// advance phase performs exactly step's tracker transitions (the
// differential tests in batch_test.go hold every experiment family to
// byte equality). Hooked lanes, lanes wider than the outcome encodings
// and the plain sequential Replay always run the scalar kernel — hooks
// observe stream order access by access.

import (
	"fmt"
	"sort"

	"sharellc/internal/cache"
)

// Kernel selects the replay inner-loop implementation. The zero value
// is the batched kernel, so existing callers get the fast path; scalar
// is the escape hatch for bisecting regressions in production (the
// -kernel flag on sharesim and sharesimd).
type Kernel uint8

const (
	// KernelBatch phase-splits the fused replay into batched SoA loops.
	KernelBatch Kernel = iota
	// KernelScalar replays one access at a time (the PR 4 paths).
	KernelScalar
)

// String returns the flag spelling of k.
func (k Kernel) String() string {
	switch k {
	case KernelBatch:
		return "batch"
	case KernelScalar:
		return "scalar"
	}
	return fmt.Sprintf("Kernel(%d)", uint8(k))
}

// ParseKernel resolves a -kernel flag value, rejecting unknown values
// with an error enumerating the valid ones.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "batch":
		return KernelBatch, nil
	case "scalar":
		return KernelScalar, nil
	}
	return 0, fmt.Errorf("sharing: unknown kernel %q (have batch, scalar)", s)
}

// batchSize is the accesses decoded per chunk. The chunk's own state —
// outcome words, block/ID/meta column slices — costs ~17 bytes per
// access, so 2 Ki keeps it near 32 KiB: resident in L1 across the
// probe→count→advance phases while leaving the L2 slice the shard walk
// budgets (blockBudget) to the lane's tracker, tag and policy state.
const batchSize = 2 << 10

// metaWrite flags a store in the decoded core/store meta byte; the low
// seven bits carry the core (Residency.addCore bounds cores at 128).
const metaWrite = 0x80

// batchScratch is one worker's batch-kernel state, grabbed alongside
// the gather buffer and reused across every shard the worker claims.
// The columns span the worker's current shard; out spans one chunk.
// Both tracker layouts consume the packed meta byte column — the SoA
// advance loops expand it to the core/write word inline (cwWord), or
// through the SIMD tier's chunk-sized cw column below.
type batchScratch struct {
	blk  []uint64
	id   []uint32
	meta []uint8
	out  []uint32

	// Eviction-capture columns for the SoA advance loops' deferred
	// close (see flushClosed): at most one entry per access of a chunk,
	// so each is batchSize long. eidx/efill hold non-negative int64
	// values widened to uint64. Only allocated for SoA workers.
	ecw   []uint64
	ehits []uint64
	eid   []uint32
	eidx  []uint64
	efill []uint64
	eblk  []uint64
	epc   []uint64
	emeta []uint8

	// SIMD-tier state (nil ops ⟺ tier off, the PR 9 scalar paths).
	// cw is the chunk's expanded core/write words (simd.ExpandCW —
	// chunk-sized and L1-resident, unlike the shard-length column PR 9
	// measured and rejected); edeg/eord serve the batched close drain
	// (flushClosedBatched): per-entry degrees and the bucket-ordered
	// drain permutation. closeShift positions eid's top bits into
	// closeBuckets partitions (closeShiftFor). Allocated only for SoA
	// workers under an active SIMD tier.
	ops        *simdOps
	cw         []uint64
	edeg       []uint8
	eord       []uint16
	closeShift uint8
}

// decodeColumns is the decode phase: one pass over the gathered shard
// buffer unpacks the columns every lane's probe and advance loops
// consume, so the 56-byte records are streamed once per shard instead
// of once per lane per phase.
func decodeColumns(accs []cache.AccessInfo, blk []uint64, id []uint32, meta []uint8) {
	for k := range accs {
		a := &accs[k]
		blk[k] = a.Block
		id[k] = a.BlockID
		m := a.Core
		if a.Write {
			m |= metaWrite
		}
		meta[k] = m
	}
}

// warmupBoundaries returns, for every shard, the first in-shard
// position at or past the warmup boundary, so chunk loops can hoist the
// per-access counting test of the scalar kernel into a per-chunk
// constant. The boundary is a property of the access stream alone —
// not of any lane — and the partition already encodes it: Order holds
// stream indices (Index == position was validated when the partition
// was built) in ascending order within each shard. Computing all
// boundaries once per replay replaces the per-shard binary search over
// the gathered access records the shard walk used to run.
func warmupBoundaries(part *PartitionIndex, warmup int) []int32 {
	ws := make([]int32, part.Shards)
	if warmup <= 0 {
		return ws
	}
	for s := range ws {
		seg := part.Order[part.Offs[s]:part.Offs[s+1]]
		ws[s] = int32(sort.Search(len(seg), func(i int) bool { return int64(seg[i]) >= int64(warmup) }))
	}
	return ws
}

// countBatch is the count phase: Result's access/hit/miss counters
// fold out of a chunk's outcome words as a branch-free reduction.
func countBatch(res *Result, out []uint32) {
	var hits uint64
	for _, o := range out {
		hits += uint64(o>>30) & 1 // cache.BatchHit is bit 30
	}
	n := uint64(len(out))
	res.Accesses += n
	res.Hits += hits
	res.Misses += n - hits
}

// advanceBatch is the advance phase: the residency tracker replays a
// chunk's outcome words. The hit majority path touches only the
// outcome word, the block column (a consistency check against the
// tracked residency — the batch twin of the scalar kernel's
// tracker-vs-cache cross-checks), the meta byte and the residency
// line; fills read the full record. counting is constant per chunk
// (the warmup boundary splits chunks), so the residency hit counter
// advances branch-free.
func (st *replayState) advanceBatch(blk []uint64, meta []uint8, out []uint32, accs []cache.AccessInfo, counting bool) error {
	inc := uint64(0)
	if counting {
		inc = 1
	}
	lines := st.lines
	for k, o := range out {
		li := o & cache.BatchLine
		r := &lines[li]
		if o&cache.BatchHit != 0 {
			if r.Block != blk[k] {
				return fmt.Errorf("sharing: batch hit on line %d holding block %d, want block %d", li, r.Block, blk[k])
			}
			r.Hits += inc
			m := meta[k]
			r.coreMask[(m&^metaWrite)>>6] |= 1 << (m & 63)
			if m&metaWrite != 0 {
				r.written = true
			}
			continue
		}
		a := &accs[k]
		if o&cache.BatchEvict != 0 {
			if r.EvictIndex != -1 {
				return fmt.Errorf("sharing: batch evicted line %d holds no open residency", li)
			}
			st.closeRes(r, a.Index)
		}
		*r = Residency{
			Block:      blk[k],
			FillIndex:  a.Index,
			FillCore:   a.Core,
			FillPC:     a.PC,
			id:         a.BlockID,
			written:    a.Write,
			Predicted:  a.PredictedShared,
			EvictIndex: -1,
		}
		r.addCore(a.Core)
	}
	return nil
}

// runLaneBatch walks one shardable lane over the gathered shard buffer
// in chunks: probe, then the lane's bound advance variant (struct or
// SoA, counters-only or full detail — see advanceFn). The lane's
// active/lineID tables persist across shards and workers exactly like
// the scalar path's active table (disjoint index ranges per shard); the
// chunk loop also cuts at the warmup boundary so counting stays
// per-chunk constant. Under the decode pipeline (pipe non-nil) each
// chunk first waits for its columns — one atomic load once the
// producer has passed it — and publishes consumption behind itself to
// release producer lookahead.
func runLaneBatch(llc *cache.SetAssoc, l *lane, st *replayState, bs *batchScratch, accs []cache.AccessInfo, kWarm int, pipe *colPipe, opt Options) error {
	for lo := 0; lo < len(accs); {
		hi := lo + batchSize
		if hi > len(accs) {
			hi = len(accs)
		}
		if lo < kWarm && kWarm < hi {
			hi = kWarm
		}
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				return err
			}
		}
		if pipe != nil {
			pipe.waitDecoded(int64(hi))
		}
		out := bs.out[:hi-lo]
		llc.ReplayBatchCols(bs.blk[lo:hi], bs.id[lo:hi], accs[lo:hi], l.active, l.lineID, out)
		if err := l.advance(st, bs, out, accs[lo:hi], lo, lo >= kWarm); err != nil {
			return err
		}
		if pipe != nil {
			pipe.consume(int64(hi))
		}
		lo = hi
	}
	return nil
}

// The outcome log's flag bits are the outcome word's hit/evict flags
// shifted down by 24 (see cache.LogByte); these compile-time pins keep
// the two encodings from drifting apart.
const (
	_ = uint8(cache.BatchHit>>24) - logHit
	_ = logHit - uint8(cache.BatchHit>>24)
	_ = uint8(cache.BatchEvict>>24) - logEvict
	_ = logEvict - uint8(cache.BatchEvict>>24)
)

// decodeLog rebuilds a chunk's outcome words from a two-phase lane's
// one-byte outcome log: the line index comes from the block column and
// the logged way, and the hit/evict flags shift from the log's bits
// 6–7 to the outcome word's bits 30–31. log is the chunk's own slice of
// the partition-ordered log (see runPolicyPassBatch), so the read is
// sequential — the batched pass scattered each byte to its shard
// segment at write time precisely so no consumer pays a gather here.
func decodeLog(log []uint8, blk []uint64, setMask uint64, ways int, out []uint32) {
	for k := range out {
		b := log[k]
		li := uint32(int(blk[k]&setMask)*ways) + uint32(b&logWayMask)
		out[k] = li | uint32(b&(logHit|logEvict))<<24
	}
}

// runPhaseLaneBatch is the tracker half of a two-phase lane over one
// shard, batched: each log chunk runs through the lane's bound
// advanceLog variant (the fused SoA loop, or the struct path's
// decode + count + advance, kept as the bisection reference). The log
// is partition-ordered (see runPolicyPassBatch), so the shard's bytes
// sit contiguously at segBase and each chunk's slice is a sequential
// read. When the lane carries a pipeline ring, the walk first waits
// for the policy pass to have passed the chunk's last stream position
// — order is ascending within a shard, so order[hi-1] is the chunk's
// watermark, and by then the pass has scattered every log byte of the
// chunk's segment range — which is what lets the tracker replay
// overlap the pass instead of barriering behind it.
func runPhaseLaneBatch(l *lane, st *replayState, bs *batchScratch, accs []cache.AccessInfo, order []int32, segBase, kWarm int, pipe *colPipe, opt Options) error {
	for lo := 0; lo < len(accs); {
		hi := lo + batchSize
		if hi > len(accs) {
			hi = len(accs)
		}
		if lo < kWarm && kWarm < hi {
			hi = kWarm
		}
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				return err
			}
		}
		if pipe != nil {
			pipe.waitDecoded(int64(hi))
		}
		if l.ring != nil {
			if err := l.ring.wait(int64(order[hi-1]) + 1); err != nil {
				return err
			}
		}
		if err := l.advanceLog(st, l, bs, accs[lo:hi], l.log[segBase+lo:segBase+hi], lo, lo >= kWarm); err != nil {
			return err
		}
		if pipe != nil {
			pipe.consume(int64(hi))
		}
		lo = hi
	}
	return nil
}

// runPolicyPassBatch is the batched twin of runPolicyPass: the
// stream-order cache+policy walk runs through cache.ReplayBatch chunk
// by chunk, and a compress loop folds each chunk's outcome words into
// the one-byte-per-access log the tracker phase replays. The policy
// call sequence is exactly the scalar pass's, so cross-set policy
// state (dueling counters, RNG draws, global tables) evolves
// identically.
//
// The compress loop writes the log in partition order: each byte
// scatters to its block's shard segment (shard membership is the same
// Block & (Shards-1) mask the partition used, and the pass visits
// accesses in stream order, so per-segment write cursors starting at
// part.Offs reproduce exactly the partition's Order). The scatter is P
// sequential write streams for the pass — cheap — and buys every
// tracker shard a contiguous log read; a stream-ordered log would make
// each of P shards stream the whole log to gather 1/P of its bytes.
//
// Unlike the scalar pass, the batched pass owns its block → line table
// outright (a pooled grab) instead of borrowing the lane's phase-two
// active array: under the pipeline ring the tracker shards replay
// concurrently with this walk, and their closeAlive writes into the
// lane's active would race a borrowed table. Each completed chunk's
// stream position is published through the ring (when one is
// attached), which is the producer half of the overlap.
//
// passBlk/passID are the whole-stream block/BlockID columns, decoded
// once per replay (decodePassColumns) and shared read-only by every
// pass: a sweep runs one pass per two-phase lane, and letting each
// re-derive the columns from the 56-byte records would stream the whole
// record array once per lane just to recover 12 bytes per access. When
// nil (no lane's policy carries a batch kernel), the pass walks the
// records directly through the interface-based ReplayBatch.
func runPolicyPassBatch(stream []cache.AccessInfo, numBlocks int, part *PartitionIndex, passBlk []uint64, passID []uint32, l *lane, opt Options) error {
	llc, err := cache.NewSetAssoc(l.cfg.Size, l.cfg.Ways, l.inst)
	if err != nil {
		return err
	}
	ways := l.cfg.Ways
	setMask := uint64(l.sets - 1)
	cur := make([]int32, part.Shards)
	copy(cur, part.Offs[:part.Shards])
	log := l.log
	active := grab(&scratch.words, numBlocks, false)
	lineID := grab(&scratch.cols, l.sets*ways, false)
	out := grab(&scratch.cols, batchSize, false)
	// When the policy carries a monomorphic kernel, the pass probes the
	// shared columns through ReplayBatchCols, so the specialized loop
	// (not the interface walk of ReplayBatch) runs the stream-order pass
	// too — two-phase policies are the lanes a sweep spends most of its
	// time in. The call sequence into cross-set policy state (RNG draws,
	// dueling updates, SHCT training) is identical either way.
	useCols := passBlk != nil && llc.HasBatchKernel()
	for lo := 0; lo < len(stream); lo += batchSize {
		hi := lo + batchSize
		if hi > len(stream) {
			hi = len(stream)
		}
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				return err
			}
		}
		o := out[:hi-lo]
		chunk := stream[lo:hi]
		// The compress loop reads block numbers from the shared column
		// when the kernel path runs, so the 56-byte records are not
		// re-touched just to recover set and shard bits.
		if useCols {
			blkCol := passBlk[lo:hi][:len(o)]
			llc.ReplayBatchCols(blkCol, passID[lo:hi], chunk, active, lineID, o)
			for k := range o {
				b := blkCol[k]
				sh := int(b) & (len(cur) - 1)
				p := cur[sh]
				cur[sh] = p + 1
				log[p] = cache.LogByte(o[k], uint32(b&setMask)*uint32(ways))
			}
		} else {
			llc.ReplayBatch(chunk, active, lineID, o)
			for k := range o {
				b := chunk[k].Block
				sh := int(b) & (len(cur) - 1)
				p := cur[sh]
				cur[sh] = p + 1
				log[p] = cache.LogByte(o[k], uint32(b&setMask)*uint32(ways))
			}
		}
		if l.ring != nil {
			l.ring.publish(int64(hi))
		}
	}
	// The words pool's at-rest invariant is all-zero. The cols pool
	// carries no invariant, so lineID and out go back as they are.
	clear(active)
	put(&scratch.words, active)
	put(&scratch.cols, lineID)
	put(&scratch.cols, out)
	return nil
}

// decodePassColumns builds the whole-stream block/BlockID columns the
// two-phase policy passes share (see runPolicyPassBatch).
func decodePassColumns(stream []cache.AccessInfo, blk []uint64, id []uint32) {
	for i := range stream {
		blk[i] = stream[i].Block
		id[i] = stream[i].BlockID
	}
}
