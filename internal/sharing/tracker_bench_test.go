package sharing

import (
	"testing"

	"sharellc/internal/cache"
	"sharellc/internal/policy"
	"sharellc/internal/rng"
)

// benchOutcomes probes stream once through an LRU cache and returns the
// recorded outcome words plus the decoded columns, so the advance micro
// can replay the advance phase alone, repeatedly, against a consistent
// outcome sequence (every line's first event is a fill, so iterating
// over the same outcomes leaves the tracker self-consistent).
func benchOutcomes(b *testing.B, stream []cache.AccessInfo, size, ways int) (out []uint32, bs *batchScratch, lines, numBlocks int) {
	b.Helper()
	llc, err := cache.NewSetAssoc(size, ways, policy.NewLRUPolicy())
	if err != nil {
		b.Fatal(err)
	}
	for i := range stream {
		if int(stream[i].BlockID) >= numBlocks {
			numBlocks = int(stream[i].BlockID) + 1
		}
	}
	sets, _ := cache.Geometry(size, ways)
	lines = sets * ways
	n := len(stream)
	bs = &batchScratch{
		blk:        make([]uint64, n),
		id:         make([]uint32, n),
		meta:       make([]uint8, n),
		ecw:        make([]uint64, batchSize),
		ehits:      make([]uint64, batchSize),
		eid:        make([]uint32, batchSize),
		eidx:       make([]uint64, batchSize),
		efill:      make([]uint64, batchSize),
		eblk:       make([]uint64, batchSize),
		epc:        make([]uint64, batchSize),
		emeta:      make([]uint8, batchSize),
		cw:         make([]uint64, batchSize),
		edeg:       make([]uint8, batchSize),
		eord:       make([]uint16, batchSize),
		closeShift: closeShiftFor(numBlocks),
	}
	decodeColumns(stream, bs.blk, bs.id, bs.meta)
	out = make([]uint32, n)
	active := make([]uint32, numBlocks)
	lineID := make([]uint32, lines)
	for lo := 0; lo < n; lo += batchSize {
		hi := min(lo+batchSize, n)
		llc.ReplayBatchCols(bs.blk[lo:hi], bs.id[lo:hi], stream[lo:hi], active, lineID, out[lo:hi])
	}
	return out, bs, lines, numBlocks
}

// BenchmarkAdvanceBatch measures the tracker advance phase alone —
// outcome words in, residency state updated — for the struct layout
// (the PR 6 reference) and both SoA demand levels, in ns/access.
func BenchmarkAdvanceBatch(b *testing.B) {
	n := 1 << 17
	if testing.Short() {
		n = 1 << 14
	}
	stream := synthStream(n, 4000, 8, 21)
	size, ways := 64*cache.KB, 8
	out, bs, lines, numBlocks := benchOutcomes(b, stream, size, ways)

	run := func(b *testing.B, adv advanceFn, st *replayState) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for lo := 0; lo < len(stream); lo += batchSize {
				hi := min(lo+batchSize, len(stream))
				if err := adv(st, bs, out[lo:hi], stream[lo:hi], lo, true); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(stream)), "ns/access")
	}
	base := func() *replayState {
		return &replayState{res: newResult("lru", 0), blockState: make([]uint8, numBlocks)}
	}
	b.Run("struct", func(b *testing.B) {
		st := base()
		st.lines = make([]Residency, lines)
		run(b, advanceStructOut, st)
	})
	b.Run("soa-counters", func(b *testing.B) {
		st := base()
		st.cols = &soaCols{id: make([]uint32, lines), hc: make([][2]uint64, lines)}
		run(b, advanceSoACounters, st)
	})
	b.Run("soa-full", func(b *testing.B) {
		st := base()
		st.cols = &soaCols{
			id: make([]uint32, lines), hc: make([][2]uint64, lines),
			fillIdx: make([]uint64, lines), block: make([]uint64, lines),
			fillPC: make([]uint64, lines), fillMeta: make([]uint8, lines),
		}
		run(b, advanceSoAFull, st)
	})
	// The SIMD-tier twins of the three layouts above, under whatever
	// tier this machine resolves for auto (assembly where available,
	// else SWAR) — the bindings replayLanes selects by default.
	bs.ops = resolveSIMD(SIMDAuto)
	if bs.ops == nil {
		return
	}
	b.Run("struct-simd", func(b *testing.B) {
		st := base()
		st.lines = make([]Residency, lines)
		run(b, advanceStructOutSIMD, st)
	})
	b.Run("soa-counters-simd", func(b *testing.B) {
		st := base()
		st.cols = &soaCols{id: make([]uint32, lines), hc: make([][2]uint64, lines)}
		run(b, advanceSoACountersSIMD, st)
	})
	b.Run("soa-full-simd", func(b *testing.B) {
		st := base()
		st.cols = &soaCols{
			id: make([]uint32, lines), hc: make([][2]uint64, lines),
			fillIdx: make([]uint64, lines), block: make([]uint64, lines),
			fillPC: make([]uint64, lines), fillMeta: make([]uint8, lines),
		}
		run(b, advanceSoAFullSIMD, st)
	})
}

// BenchmarkTwoPhaseLane measures one two-phase lane (DRRIP: cross-set
// dueling state, so the policy pass and the sharded tracker replay
// split) end to end through ReplayMulti: the pipelined SoA path, the
// struct tracker (pipelined, columns off) and the scalar kernel (serial
// double walk — the PR 6 shape), in ns/access.
func BenchmarkTwoPhaseLane(b *testing.B) {
	n := 1 << 20
	if testing.Short() {
		n = 1 << 16
	}
	stream := synthStream(n, 20000, 8, 23)
	configs := []LLCConfig{
		{Size: 512 * cache.KB, Ways: 8, NewPolicy: func() cache.Policy { return policy.NewDRRIP(rng.New(3)) }},
	}
	run := func(b *testing.B, opt Options) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ReplayMulti(stream, configs, opt); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(stream)), "ns/access")
	}
	b.Run("soa", func(b *testing.B) {
		run(b, Options{Shards: 4, Kernel: KernelBatch, Tracker: TrackerSoA})
	})
	b.Run("soa-nosimd", func(b *testing.B) {
		run(b, Options{Shards: 4, Kernel: KernelBatch, Tracker: TrackerSoA, SIMD: SIMDOff})
	})
	b.Run("struct", func(b *testing.B) {
		run(b, Options{Shards: 4, Kernel: KernelBatch, Tracker: TrackerStruct})
	})
	b.Run("scalar", func(b *testing.B) {
		run(b, Options{Shards: 4, Kernel: KernelScalar})
	})
}
