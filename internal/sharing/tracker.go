package sharing

// Struct-of-arrays residency tracker.
//
// The batch kernel (kernel.go) turned the replay into phase loops, but
// its advance phase still walked an array of 64-byte Residency structs:
// every hit — the majority outcome of every replay — loaded and stored
// a full cache line of residency state to bump one counter and OR one
// core bit. The SoA tracker splits the residency slab into columns so
// each phase touches only the bytes it needs:
//
//   - hc [][2]uint64 — the paired hit counter (hc[li][0]) and packed
//     core/write word (hc[li][1]): bit c marks core c (c ≤ 62), bit 63
//     marks "a store touched this residency". One SWAR word replaces
//     Residency's two-word core mask plus written bool, and pairing it
//     with the hit counter keeps the whole hit path inside one 16-byte
//     aligned pair — hc[li][0] += inc; hc[li][1] |= cwWord(meta[k]) —
//     so the randomly-indexed advance touches one cache line per hit
//     where separate hits/cw columns touched two. The word doubles as
//     the liveness flag: cw == 0 ⟺ no open residency (a fill always
//     sets the filler's core bit).
//   - id []uint32 — dense BlockID, read only when a residency closes;
//   - fill detail columns (fillIdx, block, fillPC, fillMeta), allocated
//     per demand: a lane whose experiment never reads per-residency
//     detail (no KeepResidencies, no FillShared) gets a counters-only
//     tracker whose fill path writes three columns, and the advance
//     loop for that demand level is selected once at lane setup
//     (advanceFn / advanceLogFn on lane), the way cache.BatchPolicy
//     binds a monomorphic kernel at cache construction.
//
// The packed word caps usable cores at 63 (indices 0..62): streams with
// wider cores, the scalar kernel, sequential lanes and the
// SHARELLC_BATCH_TRACKER=off escape hatch all fall back to the struct
// tracker, and the differential tests in tracker_test.go hold both
// representations to byte-equal Results.

import (
	"fmt"
	"math/bits"
	"os"
	"sort"
	"sync/atomic"

	"sharellc/internal/cache"
)

// Tracker selects the residency-tracker representation of the batched
// lane walks. The zero value is the SoA tracker, so existing callers get
// the fast path; the struct tracker is the bisection escape hatch (the
// -tracker flag on sharesim and sharesimd). It applies only where the
// batch kernel runs — the scalar kernel, sequential lanes and
// wide-core streams (cores past the packed word) are struct-tracked by
// construction and ignore it. Results are bit-identical either way.
type Tracker uint8

const (
	// TrackerSoA keeps residency state in per-field columns (see the
	// package comment above).
	TrackerSoA Tracker = iota
	// TrackerStruct keeps residency state in []Residency slabs (the
	// PR 6 layout), kept as the bisection reference.
	TrackerStruct
)

// String returns the flag spelling of t.
func (t Tracker) String() string {
	switch t {
	case TrackerSoA:
		return "soa"
	case TrackerStruct:
		return "struct"
	}
	return fmt.Sprintf("Tracker(%d)", uint8(t))
}

// ParseTracker resolves a -tracker flag value, rejecting unknown values
// with an error enumerating the valid ones.
func ParseTracker(s string) (Tracker, error) {
	switch s {
	case "soa":
		return TrackerSoA, nil
	case "struct":
		return TrackerStruct, nil
	}
	return 0, fmt.Errorf("sharing: unknown tracker %q (have soa, struct)", s)
}

// batchTrackerOn gates the SoA tracker globally, mirroring
// cache.batchKernelsOn: default on; SHARELLC_BATCH_TRACKER=off (or
// EnableBatchTracker(false)) forces every replay onto the struct
// tracker without a rebuild, so a bad column specialization can be
// bisected in production the same way a bad policy kernel can.
var batchTrackerOn atomic.Bool

func init() {
	batchTrackerOn.Store(os.Getenv("SHARELLC_BATCH_TRACKER") != "off")
}

// EnableBatchTracker toggles the SoA tracker for replays started
// afterwards, returning the previous setting.
func EnableBatchTracker(on bool) (prev bool) {
	return batchTrackerOn.Swap(on)
}

const (
	// cwWritten is the store bit of the packed core/write word; bits
	// 0..62 carry cores.
	cwWritten = uint64(1) << 63
	// soaMaxCores is the widest core count the packed word encodes.
	soaMaxCores = 63
	// fmPred flags a fill-time shared prediction in the fillMeta byte;
	// the low seven bits carry the fill core.
	fmPred = uint8(0x80)
)

// soaCols is one lane's SoA residency tracker: parallel columns indexed
// by line (set*ways+way), shared across shard workers with the same
// disjoint per-shard index ownership as the []Residency slab it
// replaces. id and hc are always present; fillIdx only when the
// replay records FillShared or keeps residencies; block/fillPC/fillMeta
// only when it keeps residencies.
type soaCols struct {
	id []uint32
	hc [][2]uint64

	fillIdx  []uint64
	block    []uint64
	fillPC   []uint64
	fillMeta []uint8
}

// grabSoA builds the column set for lines line slots from the scratch
// pools. hc comes from its own pool kind whose at-rest invariant is
// all-zero (cw == 0 means "no open residency", exactly what a fresh
// replay needs, and closeAliveSoA retires the hit half along with it);
// every other column is gated by cw and may come back dirty.
func grabSoA(lines int, keep, fillShared bool) *soaCols {
	t := &soaCols{
		id: grab(&scratch.cols, lines, false),
		hc: grab(&scratch.hcs, lines, false),
	}
	if keep || fillShared {
		t.fillIdx = grab(&scratch.blks, lines, false)
	}
	if keep {
		t.block = grab(&scratch.blks, lines, false)
		t.fillPC = grab(&scratch.blks, lines, false)
		t.fillMeta = grab(&scratch.bytes, lines, false)
	}
	return t
}

// putSoA returns the columns to their pools. Call only on a replay's
// success path (closeAliveSoA has retired every open residency, so the
// hc column is back to all-zero).
func putSoA(t *soaCols) {
	put(&scratch.cols, t.id)
	put(&scratch.hcs, t.hc)
	if t.fillIdx != nil {
		put(&scratch.blks, t.fillIdx)
	}
	if t.block != nil {
		put(&scratch.blks, t.block)
		put(&scratch.blks, t.fillPC)
		put(&scratch.bytes, t.fillMeta)
	}
}

// scanCores returns 1 + the highest core number in stream — the
// fallback core-count discovery when Options.Cores carries no hint.
func scanCores(stream []cache.AccessInfo) int {
	var max uint8
	for i := range stream {
		if c := stream[i].Core; c > max {
			max = c
		}
	}
	if len(stream) == 0 {
		return 0
	}
	return int(max) + 1
}

// cwWord expands one packed meta byte (decodeColumns' core/store
// encoding) into the tracker's core/write word: bit core set, bit 63
// carrying the store flag. The expansion is a handful of ALU ops per
// access, which beats materializing a pre-shifted uint64 column at
// decode time: that column cost 8 bytes per access of decode write
// plus a re-streamed read per lane — shard-length, so pushed out of
// L2 between decode and consumption on big shards — where the meta
// byte column is an eighth the traffic and shared with the struct
// tracker's decode.
func cwWord(m uint8) uint64 {
	return uint64(1)<<(m&^metaWrite) | uint64(m&metaWrite)<<56
}

// closeLineSoA finalizes the residency open in line li at evictIndex
// (-1 = alive at stream end) and folds it into the counters — the SoA
// twin of closeRes. SoA lanes never carry hooks or fill-time
// predictions (those pin a lane to the sequential struct walk), so the
// hook and Pred branches of closeRes are absent by construction. The
// advance loops don't call this per eviction — they capture and defer
// (see flushClosed); only closeAliveSoA's end-of-replay retirement
// still closes straight off the live columns.
func (st *replayState) closeLineSoA(li uint32, evictIndex int64) {
	t := st.cols
	res := st.res
	cw := t.hc[li][1]
	deg := bits.OnesCount64(cw &^ cwWritten)
	shared := deg >= 2
	id := t.id[li]
	if shared {
		if res.FillShared != nil {
			res.FillShared[t.fillIdx[li]] = true
		}
		st.blockState[id] = blockShared
	} else if st.blockState[id] == blockUnseen {
		st.blockState[id] = blockPrivate
	}
	if evictIndex >= 0 && evictIndex < st.warmup {
		return
	}
	h := t.hc[li][0]
	res.Residencies++
	res.DegreeResidencies[deg]++
	res.DegreeHits[deg] += h
	if shared {
		res.SharedResidencies++
		res.SharedHits += h
		if cw&cwWritten != 0 {
			res.RWSharedResidencies++
			res.RWSharedHits += h
		} else {
			res.ROSharedResidencies++
			res.ROSharedHits += h
		}
	} else {
		res.PrivateHits += h
	}
	if st.keep {
		fm := t.fillMeta[li]
		r := Residency{
			Block:      t.block[li],
			FillIndex:  int64(t.fillIdx[li]),
			FillPC:     t.fillPC[li],
			Hits:       h,
			EvictIndex: evictIndex,
			id:         id,
			FillCore:   fm &^ fmPred,
			written:    cw&cwWritten != 0,
			Predicted:  fm&fmPred != 0,
		}
		// Exact because SoA lanes cap cores at 62: the packed word's
		// core bits are precisely coreMask[0], and coreMask[1] is zero.
		r.coreMask[0] = cw &^ cwWritten
		res.ResidencyLog = append(res.ResidencyLog, r)
	}
}

// flushClosed folds a chunk's captured evictions into the counters —
// closeLineSoA over the batchScratch capture columns instead of the
// live tracker state. The SoA advance loops do not close residencies
// inline: the evict branch snapshots the dying line's columns into
// bs.e* (everything closeLineSoA would read — the refill may overwrite
// the line before the close is folded) and the chunk ends with one
// tight pass here. Deferring is safe because a close touches nothing
// the rest of the chunk reads: res counters are sums, the blockState
// census is a monotonic unseen < private < shared lattice read only at
// replay end, and FillShared marks are idempotent. What it buys is the
// loop shape: the per-eviction blockState byte is a random load over a
// multi-megabyte array, and issuing those from a call-free loop lets
// the out-of-order window overlap several misses instead of
// serializing each behind a function call in the advance loop — which
// also loses its only call and keeps its column bases in registers.
// Entry order is capture order, so ResidencyLog appends land exactly
// where the inline closes would have put them.
func (st *replayState) flushClosed(bs *batchScratch, n int) {
	res := st.res
	bstate := st.blockState
	ecw := bs.ecw[:n]
	ehits := bs.ehits[:n]
	eid := bs.eid[:n]
	eidx := bs.eidx[:n]
	warm := uint64(st.warmup)
	for k := range ecw {
		cw := ecw[k]
		deg := bits.OnesCount64(cw &^ cwWritten)
		shared := deg >= 2
		id := eid[k]
		if shared {
			if res.FillShared != nil {
				res.FillShared[bs.efill[k]] = true
			}
			bstate[id] = blockShared
		} else if bstate[id] == blockUnseen {
			bstate[id] = blockPrivate
		}
		if eidx[k] < warm {
			continue
		}
		h := ehits[k]
		res.Residencies++
		res.DegreeResidencies[deg]++
		res.DegreeHits[deg] += h
		if shared {
			res.SharedResidencies++
			res.SharedHits += h
			if cw&cwWritten != 0 {
				res.RWSharedResidencies++
				res.RWSharedHits += h
			} else {
				res.ROSharedResidencies++
				res.ROSharedHits += h
			}
		} else {
			res.PrivateHits += h
		}
		if st.keep {
			fm := bs.emeta[k]
			r := Residency{
				Block:      bs.eblk[k],
				FillIndex:  int64(bs.efill[k]),
				FillPC:     bs.epc[k],
				Hits:       h,
				EvictIndex: int64(eidx[k]),
				id:         id,
				FillCore:   fm &^ fmPred,
				written:    cw&cwWritten != 0,
				Predicted:  fm&fmPred != 0,
			}
			r.coreMask[0] = cw &^ cwWritten
			res.ResidencyLog = append(res.ResidencyLog, r)
		}
	}
}

// closeAliveSoA is closeAlive for an SoA-tracked lane: survivors are the
// lines with a nonzero core/write word. Retiring a survivor zeroes its
// pair (restoring the hcs pool's all-zero at-rest invariant) and clears
// its active entry, exactly as the struct closeAlive retires slots.
func (st *replayState) closeAliveSoA(sets, ways, shards, shard int) {
	t := st.cols
	// Size for the worst case — every line of the shard's sets live —
	// so the append loop never regrows (survivors are the common case:
	// any working set larger than the LLC leaves every line holding an
	// open residency at stream end).
	alive := make([]uint32, 0, (sets-shard+shards-1)/shards*ways)
	for set := shard; set < sets; set += shards {
		base := uint32(set * ways)
		for w := 0; w < ways; w++ {
			if t.hc[base+uint32(w)][1] != 0 {
				alive = append(alive, base+uint32(w))
			}
		}
	}
	if st.keep {
		sort.Slice(alive, func(i, j int) bool { return t.fillIdx[alive[i]] < t.fillIdx[alive[j]] })
	}
	for _, li := range alive {
		st.closeLineSoA(li, -1)
		st.active[t.id[li]] = 0
		t.hc[li] = [2]uint64{}
	}
}

// advanceFn consumes one chunk's probe outcome words against the lane's
// tracker (the advance phase of a shardable lane). out and accs span
// the chunk; lo is the chunk's offset into the worker's shard columns
// (bs). The variant — struct or SoA, counters-only or full detail — is
// bound to lane.advance once per replay at lane setup.
type advanceFn func(st *replayState, bs *batchScratch, out []uint32, accs []cache.AccessInfo, lo int, counting bool) error

// advanceLogFn replays one chunk of a two-phase lane's outcome log
// against the lane's tracker (the tracker half of the split walk).
// accs and logc span the chunk — logc is the chunk's slice of the
// partition-ordered log, so log reads are sequential; lo is the
// chunk's offset into the shard columns.
type advanceLogFn func(st *replayState, l *lane, bs *batchScratch, accs []cache.AccessInfo, logc []uint8, lo int, counting bool) error

// advanceStructOut is the struct-tracker advanceFn: the branch-free
// count reduction followed by the PR 6 struct advance, kept bit-for-bit
// as the SHARELLC_BATCH_TRACKER=off bisection reference.
func advanceStructOut(st *replayState, bs *batchScratch, out []uint32, accs []cache.AccessInfo, lo int, counting bool) error {
	if counting {
		countBatch(st.res, out)
	}
	hi := lo + len(out)
	return st.advanceBatch(bs.blk[lo:hi], bs.meta[lo:hi], out, accs, counting)
}

// advanceLogStruct is the struct-tracker advanceLogFn: decode the log
// chunk into outcome words, then count and advance as the shardable
// walk does.
func advanceLogStruct(st *replayState, l *lane, bs *batchScratch, accs []cache.AccessInfo, logc []uint8, lo int, counting bool) error {
	hi := lo + len(accs)
	out := bs.out[:len(accs)]
	decodeLog(logc, bs.blk[lo:hi], uint64(l.sets-1), l.cfg.Ways, out)
	if counting {
		countBatch(st.res, out)
	}
	return st.advanceBatch(bs.blk[lo:hi], bs.meta[lo:hi], out, accs, counting)
}

// advanceSoACounters is the counters-only SoA advanceFn. The hit path
// is branch-free column arithmetic — a counter bump and a bitset OR
// inside one 16-byte hc pair, so one randomly-indexed cache line per
// hit — and the fill path writes the two always-present columns.
// Hit/miss counting is fused into the same loop (the hit branch
// already distinguishes the outcomes), so the separate count phase
// disappears; evictions capture the dying line into bs.e* and fold
// after the loop (flushClosed), which keeps the loop free of calls.
func advanceSoACounters(st *replayState, bs *batchScratch, out []uint32, accs []cache.AccessInfo, lo int, counting bool) error {
	t := st.cols
	hc, ids := t.hc, t.id
	// Reslice the chunk columns to the outcome count so the bounds
	// checks on the per-access loads fold away.
	metac := bs.meta[lo:][:len(out)]
	idc := bs.id[lo:][:len(out)]
	inc := uint64(0)
	if counting {
		inc = 1
	}
	var h uint64
	ne := 0
	for k, o := range out {
		li := o & cache.BatchLine
		p := &hc[li]
		w := cwWord(metac[k])
		if o&cache.BatchHit != 0 {
			p[0] += inc
			p[1] |= w
			h++
			continue
		}
		if o&cache.BatchEvict != 0 {
			if p[1] == 0 {
				return fmt.Errorf("sharing: batch evicted line %d holds no open residency", li)
			}
			bs.ecw[ne] = p[1]
			bs.ehits[ne] = p[0]
			bs.eid[ne] = ids[li]
			bs.eidx[ne] = uint64(accs[k].Index)
			ne++
		}
		ids[li] = idc[k]
		*p = [2]uint64{0, w}
	}
	st.flushClosed(bs, ne)
	if counting {
		n := uint64(len(out))
		st.res.Accesses += n
		st.res.Hits += h
		st.res.Misses += n - h
	}
	return nil
}

// advanceSoAFull is advanceSoACounters plus the per-demand fill detail
// columns (fill index for FillShared, plus block/PC/meta when
// residencies are kept).
func advanceSoAFull(st *replayState, bs *batchScratch, out []uint32, accs []cache.AccessInfo, lo int, counting bool) error {
	t := st.cols
	metac := bs.meta[lo:][:len(out)]
	idc := bs.id[lo:][:len(out)]
	blk := bs.blk[lo:][:len(out)]
	inc := uint64(0)
	if counting {
		inc = 1
	}
	var h uint64
	ne := 0
	for k, o := range out {
		li := o & cache.BatchLine
		p := &t.hc[li]
		w := cwWord(metac[k])
		if o&cache.BatchHit != 0 {
			p[0] += inc
			p[1] |= w
			h++
			continue
		}
		a := &accs[k]
		if o&cache.BatchEvict != 0 {
			if p[1] == 0 {
				return fmt.Errorf("sharing: batch evicted line %d holds no open residency", li)
			}
			bs.ecw[ne] = p[1]
			bs.ehits[ne] = p[0]
			bs.eid[ne] = t.id[li]
			bs.eidx[ne] = uint64(a.Index)
			bs.efill[ne] = t.fillIdx[li]
			if t.block != nil {
				bs.eblk[ne] = t.block[li]
				bs.epc[ne] = t.fillPC[li]
				bs.emeta[ne] = t.fillMeta[li]
			}
			ne++
		}
		t.id[li] = idc[k]
		*p = [2]uint64{0, w}
		t.fillIdx[li] = uint64(a.Index)
		if t.block != nil {
			t.block[li] = blk[k]
			t.fillPC[li] = a.PC
			fm := a.Core
			if a.PredictedShared {
				fm |= fmPred
			}
			t.fillMeta[li] = fm
		}
	}
	st.flushClosed(bs, ne)
	if counting {
		n := uint64(len(out))
		st.res.Accesses += n
		st.res.Hits += h
		st.res.Misses += n - h
	}
	return nil
}

// advanceLogSoACounters is the fused log-decode/count/advance loop of a
// two-phase lane under the SoA tracker: one pass over the log chunk
// computes each access's line index, counts the outcome and advances
// the tracker, with no intermediate outcome-word materialization
// (decodeLog and countBatch fold away) and no log gather (the chunk's
// bytes are contiguous in the partition-ordered log).
func advanceLogSoACounters(st *replayState, l *lane, bs *batchScratch, accs []cache.AccessInfo, logc []uint8, lo int, counting bool) error {
	t := st.cols
	setMask := uint64(l.sets - 1)
	ways := l.cfg.Ways
	logc = logc[:len(accs)]
	blk := bs.blk[lo:][:len(accs)]
	metac := bs.meta[lo:][:len(accs)]
	idc := bs.id[lo:][:len(accs)]
	inc := uint64(0)
	if counting {
		inc = 1
	}
	var h uint64
	ne := 0
	for k := range accs {
		b := logc[k]
		li := uint32(int(blk[k]&setMask)*ways) + uint32(b&logWayMask)
		p := &t.hc[li]
		w := cwWord(metac[k])
		if b&logHit != 0 {
			p[0] += inc
			p[1] |= w
			h++
			continue
		}
		if b&logEvict != 0 {
			if p[1] == 0 {
				return fmt.Errorf("sharing: logged eviction of line %d holds no open residency", li)
			}
			bs.ecw[ne] = p[1]
			bs.ehits[ne] = p[0]
			bs.eid[ne] = t.id[li]
			bs.eidx[ne] = uint64(accs[k].Index)
			ne++
		}
		t.id[li] = idc[k]
		*p = [2]uint64{0, w}
	}
	st.flushClosed(bs, ne)
	if counting {
		n := uint64(len(accs))
		st.res.Accesses += n
		st.res.Hits += h
		st.res.Misses += n - h
	}
	return nil
}

// advanceLogSoAFull is advanceLogSoACounters plus the fill detail
// columns.
func advanceLogSoAFull(st *replayState, l *lane, bs *batchScratch, accs []cache.AccessInfo, logc []uint8, lo int, counting bool) error {
	t := st.cols
	setMask := uint64(l.sets - 1)
	ways := l.cfg.Ways
	logc = logc[:len(accs)]
	blk := bs.blk[lo:][:len(accs)]
	metac := bs.meta[lo:][:len(accs)]
	idc := bs.id[lo:][:len(accs)]
	inc := uint64(0)
	if counting {
		inc = 1
	}
	var h uint64
	ne := 0
	for k := range accs {
		b := logc[k]
		li := uint32(int(blk[k]&setMask)*ways) + uint32(b&logWayMask)
		p := &t.hc[li]
		w := cwWord(metac[k])
		if b&logHit != 0 {
			p[0] += inc
			p[1] |= w
			h++
			continue
		}
		a := &accs[k]
		if b&logEvict != 0 {
			if p[1] == 0 {
				return fmt.Errorf("sharing: logged eviction of line %d holds no open residency", li)
			}
			bs.ecw[ne] = p[1]
			bs.ehits[ne] = p[0]
			bs.eid[ne] = t.id[li]
			bs.eidx[ne] = uint64(a.Index)
			bs.efill[ne] = t.fillIdx[li]
			if t.block != nil {
				bs.eblk[ne] = t.block[li]
				bs.epc[ne] = t.fillPC[li]
				bs.emeta[ne] = t.fillMeta[li]
			}
			ne++
		}
		t.id[li] = idc[k]
		*p = [2]uint64{0, w}
		t.fillIdx[li] = uint64(a.Index)
		if t.block != nil {
			t.block[li] = blk[k]
			t.fillPC[li] = a.PC
			fm := a.Core
			if a.PredictedShared {
				fm |= fmPred
			}
			t.fillMeta[li] = fm
		}
	}
	st.flushClosed(bs, ne)
	if counting {
		n := uint64(len(accs))
		st.res.Accesses += n
		st.res.Hits += h
		st.res.Misses += n - h
	}
	return nil
}

// --- SIMD-tier variants -------------------------------------------------
//
// The variants below are the data-parallel twins of the advance loops
// above, bound instead of them when the replay resolves an active SIMD
// tier (Options.SIMD / SHARELLC_SIMD — see simd.go). Differences from
// their scalar twins, each bit-identical by construction:
//
//   - the chunk's core/write words are expanded once up front into
//     bs.cw (simd.ExpandCW over the meta byte column — chunk-sized, so
//     the column stays L1-resident between the expansion and the walk,
//     unlike the shard-length column PR 9 measured and rejected), and
//     the loop reads words instead of re-deriving them per access;
//   - the struct paths count hits with the SIMD reduction instead of
//     countBatch's scalar loop (the SoA loops keep the count fused —
//     their hit branch already distinguishes the outcomes);
//   - captured evictions drain through flushClosedBatched: degrees
//     popcounted in one vectorized pass over the buffered cw column,
//     block-state writes partitioned for locality.

// closeBuckets is the partition fan-out of the batched close drain: a
// chunk's evictions are drained bucket by bucket of block-ID high
// bits, so the random blockState byte writes of one bucket land within
// a 1/closeBuckets slice of the shard's census instead of anywhere in
// it. 256 buckets cut a multi-megabyte census into KB-scale regions
// while the counting sort stays two cheap passes over at most
// batchSize entries.
const closeBuckets = 256

// closeShiftFor returns the right shift that maps a dense BlockID
// (< numBlocks) onto its close-drain bucket.
func closeShiftFor(numBlocks int) uint8 {
	if numBlocks <= closeBuckets {
		return 0
	}
	return uint8(bits.Len(uint(numBlocks-1)) - 8)
}

// flushClosedBatched is the SIMD tier's flushClosed: one vectorized
// degree pass over the captured cw column, then the drain — in
// capture order when the lane keeps residencies (ResidencyLog appends
// must land exactly where the inline closes would have put them), and
// bucket-partitioned by block ID otherwise. Reordering the drain is
// safe for everything but the log: the counters are order-independent
// sums, a chunk's captured entries close distinct residencies, the
// blockState census is a monotonic unseen < private < shared lattice
// (two writes for the same block commute: shared stores
// unconditionally, private only upgrades unseen), and FillShared marks
// are idempotent — see INTERNALS.md.
func (st *replayState) flushClosedBatched(bs *batchScratch, n int) {
	if n == 0 {
		return
	}
	bs.ops.degrees(bs.ecw[:n], bs.edeg[:n])
	if st.keep {
		st.drainClosed(bs, n, nil)
		return
	}
	eid := bs.eid[:n]
	ord := bs.eord[:n]
	sh := bs.closeShift
	var counts [closeBuckets + 1]int32
	for _, id := range eid {
		counts[(id>>sh)+1]++
	}
	for b := 0; b < closeBuckets; b++ {
		counts[b+1] += counts[b]
	}
	for k, id := range eid {
		b := id >> sh
		ord[counts[b]] = uint16(k)
		counts[b]++
	}
	st.drainClosed(bs, n, ord)
}

// drainClosed folds the first n captured evictions into the counters —
// flushClosed's body with the degree read from the precomputed edeg
// column, visiting entries in capture order (ord nil) or through the
// bucket permutation.
func (st *replayState) drainClosed(bs *batchScratch, n int, ord []uint16) {
	res := st.res
	bstate := st.blockState
	warm := uint64(st.warmup)
	for j := 0; j < n; j++ {
		k := j
		if ord != nil {
			k = int(ord[j])
		}
		cw := bs.ecw[k]
		deg := int(bs.edeg[k])
		shared := deg >= 2
		id := bs.eid[k]
		if shared {
			if res.FillShared != nil {
				res.FillShared[bs.efill[k]] = true
			}
			bstate[id] = blockShared
		} else if bstate[id] == blockUnseen {
			bstate[id] = blockPrivate
		}
		if bs.eidx[k] < warm {
			continue
		}
		h := bs.ehits[k]
		res.Residencies++
		res.DegreeResidencies[deg]++
		res.DegreeHits[deg] += h
		if shared {
			res.SharedResidencies++
			res.SharedHits += h
			if cw&cwWritten != 0 {
				res.RWSharedResidencies++
				res.RWSharedHits += h
			} else {
				res.ROSharedResidencies++
				res.ROSharedHits += h
			}
		} else {
			res.PrivateHits += h
		}
		if st.keep {
			fm := bs.emeta[k]
			r := Residency{
				Block:      bs.eblk[k],
				FillIndex:  int64(bs.efill[k]),
				FillPC:     bs.epc[k],
				Hits:       h,
				EvictIndex: int64(bs.eidx[k]),
				id:         id,
				FillCore:   fm &^ fmPred,
				written:    cw&cwWritten != 0,
				Predicted:  fm&fmPred != 0,
			}
			r.coreMask[0] = cw &^ cwWritten
			res.ResidencyLog = append(res.ResidencyLog, r)
		}
	}
}

// advanceStructOutSIMD is advanceStructOut with the SIMD hit-count
// reduction in place of countBatch's scalar loop.
func advanceStructOutSIMD(st *replayState, bs *batchScratch, out []uint32, accs []cache.AccessInfo, lo int, counting bool) error {
	if counting {
		h := bs.ops.countHits(out)
		n := uint64(len(out))
		st.res.Accesses += n
		st.res.Hits += h
		st.res.Misses += n - h
	}
	hi := lo + len(out)
	return st.advanceBatch(bs.blk[lo:hi], bs.meta[lo:hi], out, accs, counting)
}

// advanceLogStructSIMD is advanceLogStruct with the SIMD outcome-log
// hit scan in place of the decode-then-count pair.
func advanceLogStructSIMD(st *replayState, l *lane, bs *batchScratch, accs []cache.AccessInfo, logc []uint8, lo int, counting bool) error {
	hi := lo + len(accs)
	out := bs.out[:len(accs)]
	decodeLog(logc, bs.blk[lo:hi], uint64(l.sets-1), l.cfg.Ways, out)
	if counting {
		h := bs.ops.countLogHits(logc[:len(accs)])
		n := uint64(len(accs))
		st.res.Accesses += n
		st.res.Hits += h
		st.res.Misses += n - h
	}
	return st.advanceBatch(bs.blk[lo:hi], bs.meta[lo:hi], out, accs, counting)
}

// advanceSoACountersSIMD is advanceSoACounters reading the chunk's
// core/write words from the vector-expanded cw column and draining
// captures through the batched close path.
func advanceSoACountersSIMD(st *replayState, bs *batchScratch, out []uint32, accs []cache.AccessInfo, lo int, counting bool) error {
	t := st.cols
	hc, ids := t.hc, t.id
	metac := bs.meta[lo:][:len(out)]
	idc := bs.id[lo:][:len(out)]
	cwc := bs.cw[:len(out)]
	bs.ops.expandCW(metac, cwc)
	inc := uint64(0)
	if counting {
		inc = 1
	}
	var h uint64
	ne := 0
	for k, o := range out {
		li := o & cache.BatchLine
		p := &hc[li]
		w := cwc[k]
		if o&cache.BatchHit != 0 {
			p[0] += inc
			p[1] |= w
			h++
			continue
		}
		if o&cache.BatchEvict != 0 {
			if p[1] == 0 {
				return fmt.Errorf("sharing: batch evicted line %d holds no open residency", li)
			}
			bs.ecw[ne] = p[1]
			bs.ehits[ne] = p[0]
			bs.eid[ne] = ids[li]
			bs.eidx[ne] = uint64(accs[k].Index)
			ne++
		}
		ids[li] = idc[k]
		*p = [2]uint64{0, w}
	}
	st.flushClosedBatched(bs, ne)
	if counting {
		n := uint64(len(out))
		st.res.Accesses += n
		st.res.Hits += h
		st.res.Misses += n - h
	}
	return nil
}

// advanceSoAFullSIMD is advanceSoAFull on the vector-expanded cw
// column with the batched close drain.
func advanceSoAFullSIMD(st *replayState, bs *batchScratch, out []uint32, accs []cache.AccessInfo, lo int, counting bool) error {
	t := st.cols
	metac := bs.meta[lo:][:len(out)]
	idc := bs.id[lo:][:len(out)]
	blk := bs.blk[lo:][:len(out)]
	cwc := bs.cw[:len(out)]
	bs.ops.expandCW(metac, cwc)
	inc := uint64(0)
	if counting {
		inc = 1
	}
	var h uint64
	ne := 0
	for k, o := range out {
		li := o & cache.BatchLine
		p := &t.hc[li]
		w := cwc[k]
		if o&cache.BatchHit != 0 {
			p[0] += inc
			p[1] |= w
			h++
			continue
		}
		a := &accs[k]
		if o&cache.BatchEvict != 0 {
			if p[1] == 0 {
				return fmt.Errorf("sharing: batch evicted line %d holds no open residency", li)
			}
			bs.ecw[ne] = p[1]
			bs.ehits[ne] = p[0]
			bs.eid[ne] = t.id[li]
			bs.eidx[ne] = uint64(a.Index)
			bs.efill[ne] = t.fillIdx[li]
			if t.block != nil {
				bs.eblk[ne] = t.block[li]
				bs.epc[ne] = t.fillPC[li]
				bs.emeta[ne] = t.fillMeta[li]
			}
			ne++
		}
		t.id[li] = idc[k]
		*p = [2]uint64{0, w}
		t.fillIdx[li] = uint64(a.Index)
		if t.block != nil {
			t.block[li] = blk[k]
			t.fillPC[li] = a.PC
			fm := a.Core
			if a.PredictedShared {
				fm |= fmPred
			}
			t.fillMeta[li] = fm
		}
	}
	st.flushClosedBatched(bs, ne)
	if counting {
		n := uint64(len(out))
		st.res.Accesses += n
		st.res.Hits += h
		st.res.Misses += n - h
	}
	return nil
}

// advanceLogSoACountersSIMD is advanceLogSoACounters on the
// vector-expanded cw column with the batched close drain.
func advanceLogSoACountersSIMD(st *replayState, l *lane, bs *batchScratch, accs []cache.AccessInfo, logc []uint8, lo int, counting bool) error {
	t := st.cols
	setMask := uint64(l.sets - 1)
	ways := l.cfg.Ways
	logc = logc[:len(accs)]
	blk := bs.blk[lo:][:len(accs)]
	metac := bs.meta[lo:][:len(accs)]
	idc := bs.id[lo:][:len(accs)]
	cwc := bs.cw[:len(accs)]
	bs.ops.expandCW(metac, cwc)
	inc := uint64(0)
	if counting {
		inc = 1
	}
	var h uint64
	ne := 0
	for k := range accs {
		b := logc[k]
		li := uint32(int(blk[k]&setMask)*ways) + uint32(b&logWayMask)
		p := &t.hc[li]
		w := cwc[k]
		if b&logHit != 0 {
			p[0] += inc
			p[1] |= w
			h++
			continue
		}
		if b&logEvict != 0 {
			if p[1] == 0 {
				return fmt.Errorf("sharing: logged eviction of line %d holds no open residency", li)
			}
			bs.ecw[ne] = p[1]
			bs.ehits[ne] = p[0]
			bs.eid[ne] = t.id[li]
			bs.eidx[ne] = uint64(accs[k].Index)
			ne++
		}
		t.id[li] = idc[k]
		*p = [2]uint64{0, w}
	}
	st.flushClosedBatched(bs, ne)
	if counting {
		n := uint64(len(accs))
		st.res.Accesses += n
		st.res.Hits += h
		st.res.Misses += n - h
	}
	return nil
}

// advanceLogSoAFullSIMD is advanceLogSoAFull on the vector-expanded cw
// column with the batched close drain.
func advanceLogSoAFullSIMD(st *replayState, l *lane, bs *batchScratch, accs []cache.AccessInfo, logc []uint8, lo int, counting bool) error {
	t := st.cols
	setMask := uint64(l.sets - 1)
	ways := l.cfg.Ways
	logc = logc[:len(accs)]
	blk := bs.blk[lo:][:len(accs)]
	metac := bs.meta[lo:][:len(accs)]
	idc := bs.id[lo:][:len(accs)]
	cwc := bs.cw[:len(accs)]
	bs.ops.expandCW(metac, cwc)
	inc := uint64(0)
	if counting {
		inc = 1
	}
	var h uint64
	ne := 0
	for k := range accs {
		b := logc[k]
		li := uint32(int(blk[k]&setMask)*ways) + uint32(b&logWayMask)
		p := &t.hc[li]
		w := cwc[k]
		if b&logHit != 0 {
			p[0] += inc
			p[1] |= w
			h++
			continue
		}
		a := &accs[k]
		if b&logEvict != 0 {
			if p[1] == 0 {
				return fmt.Errorf("sharing: logged eviction of line %d holds no open residency", li)
			}
			bs.ecw[ne] = p[1]
			bs.ehits[ne] = p[0]
			bs.eid[ne] = t.id[li]
			bs.eidx[ne] = uint64(a.Index)
			bs.efill[ne] = t.fillIdx[li]
			if t.block != nil {
				bs.eblk[ne] = t.block[li]
				bs.epc[ne] = t.fillPC[li]
				bs.emeta[ne] = t.fillMeta[li]
			}
			ne++
		}
		t.id[li] = idc[k]
		*p = [2]uint64{0, w}
		t.fillIdx[li] = uint64(a.Index)
		if t.block != nil {
			t.block[li] = blk[k]
			t.fillPC[li] = a.PC
			fm := a.Core
			if a.PredictedShared {
				fm |= fmPred
			}
			t.fillMeta[li] = fm
		}
	}
	st.flushClosedBatched(bs, ne)
	if counting {
		n := uint64(len(accs))
		st.res.Accesses += n
		st.res.Hits += h
		st.res.Misses += n - h
	}
	return nil
}
