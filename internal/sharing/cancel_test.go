package sharing

import (
	"context"
	"errors"
	"testing"
	"time"

	"sharellc/internal/cache"
	"sharellc/internal/policy"
)

// cancelStream builds a stream long enough to straddle several cancel
// polls (cancelStride accesses apart).
func cancelStream(n int) []cache.AccessInfo {
	stream := make([]cache.AccessInfo, n)
	for i := range stream {
		blk := uint64(i % 4096)
		stream[i] = cache.AccessInfo{Block: blk, Core: uint8(i % 4), Index: int64(i)}
	}
	cache.AnnotateNextUse(stream)
	return stream
}

func TestReplayPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stream := cancelStream(1 << 16)
	_, err := Replay(stream, 64*cache.KB, 8, policy.NewLRUPolicy(), Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential replay with cancelled ctx: err = %v, want context.Canceled", err)
	}
	_, err = ReplayParallel(stream, 64*cache.KB, 8, func() cache.Policy { return policy.NewLRUPolicy() },
		Options{Ctx: ctx, Shards: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel replay with cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestReplayCancelledMidStream(t *testing.T) {
	// A context that expires while the replay is in flight: the replay
	// must notice at the next poll rather than running to completion.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	stream := cancelStream(1 << 22) // tens of ms of replay work
	start := time.Now()
	_, err := Replay(stream, 64*cache.KB, 8, policy.NewLRUPolicy(), Options{Ctx: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v; the poll stride is not being honoured", elapsed)
	}
}

func TestReplayNilCtxUnchanged(t *testing.T) {
	// Cancellation support must not perturb results: a replay with a
	// live context matches one with no context at all.
	stream := cancelStream(1 << 16)
	base, err := Replay(stream, 64*cache.KB, 8, policy.NewLRUPolicy(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Replay(stream, 64*cache.KB, 8, policy.NewLRUPolicy(), Options{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if base.Hits != got.Hits || base.Misses != got.Misses || base.SharedHits != got.SharedHits {
		t.Errorf("results diverge with ctx: %+v vs %+v", base, got)
	}
}
