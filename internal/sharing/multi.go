package sharing

// Fused multi-policy replay.
//
// The paper's headline tables are sweeps: the same prepared reference
// stream is replayed once per (policy, geometry) cell. ReplayMulti runs
// one pass over the stream that drives N independent LLC models
// ("lanes"), one per configuration. Each lane keeps its own replayState
// — shared/private residency classification depends on each lane's own
// eviction schedule, so no tracker state can be shared across lanes —
// but the shard partition is computed (or fetched from
// Options.Partitioner) once instead of once per cell, and the engine
// schedules the lanes so that the model state resident in cache at any
// moment is a small slice of the sweep's total, which is where the
// speedup over per-cell replay comes from (see the scheduling notes on
// replayLanes).
//
// Lanes split into three groups:
//
//   - shardable lanes (per-set-independent policy, no hooks) replay
//     set-shard by set-shard: a worker that claims shard s gathers s's
//     accesses into a contiguous buffer once and walks it once per
//     lane, so one shard's slice of one lane's state — a fraction of a
//     megabyte — is all that competes for cache during a walk;
//   - two-phase lanes (cross-set policy state, no hooks) split the
//     walk: a stream-order policy pass drives just the cache and
//     policy — whose state is a couple of megabytes, cache-resident —
//     and records each access's outcome in a one-byte-per-access log,
//     from which the tracker half (the multi-megabyte arrays) then
//     replays set-shard by set-shard like a shardable lane;
//   - sequential lanes (per-lane hooks, or ways beyond the outcome
//     log's 6-bit field) replay one lane at a time, each as its own
//     full-stream walk in stream order, exactly like the sequential
//     fallback of ReplayParallel. Hooks pin a lane here because a
//     fill-time prediction feeds back into the very walk that would
//     have produced the log.
//
// Every lane's Result is bit-identical to what ReplayParallel would
// return for that lane alone: per-set policies see the same per-set
// access sequences regardless of how sets are grouped into shards, and
// sequential lanes run the very walk the fallback runs.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sharellc/internal/cache"
	"sharellc/internal/mem"
)

// PartitionIndex is the counting-sort partition of a stream's positions
// by LLC set shard: Order lists every stream position grouped by shard
// (stream order within a shard), and shard s owns Order[Offs[s]:Offs[s+1]].
// Shard membership is Block & (Shards-1) — set-index bits are block
// bits, so for any cache whose set count is a multiple of Shards each
// set belongs entirely to one shard, which is what lets one partition
// serve lanes of different geometries. The partition depends only on
// (stream, Shards) and is immutable once built, so it is safe to share
// across concurrent replays.
type PartitionIndex struct {
	Shards int
	Order  []int32
	Offs   []int32
}

// Partitioner supplies the PartitionIndex for a shard count, typically
// from a per-stream cache (sim.Stream carries one).
type Partitioner func(shards int) (*PartitionIndex, error)

// BuildPartition counting-sorts the stream positions by shard so each
// shard worker can walk a contiguous index list in stream order. shards
// must be a power of two ≥ 2. The pass also validates the stream Index
// invariant (contiguous Index values starting at 0), so replays walking
// a partition need no per-access validation.
func BuildPartition(stream []cache.AccessInfo, shards int) (*PartitionIndex, error) {
	if shards < 2 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("sharing: partition shard count %d is not a power of two >= 2", shards)
	}
	mask := uint64(shards - 1)
	counts := make([]int32, shards)
	for i := range stream {
		if stream[i].Index != int64(i) {
			return nil, fmt.Errorf("sharing: stream index %d at position %d; use cache.FilterStream ordering", stream[i].Index, i)
		}
		counts[stream[i].Block&mask]++
	}
	offs := make([]int32, shards+1)
	for s := 0; s < shards; s++ {
		offs[s+1] = offs[s] + counts[s]
	}
	order := make([]int32, len(stream))
	pos := make([]int32, shards)
	copy(pos, offs[:shards])
	for i := range stream {
		s := stream[i].Block & mask
		order[pos[s]] = int32(i)
		pos[s]++
	}
	mem.Hugepages(order)
	return &PartitionIndex{Shards: shards, Order: order, Offs: offs}, nil
}

// LLCConfig describes one lane of a fused replay: an LLC geometry, a
// policy factory and optional per-lane hooks.
//
// NewPolicy must return a fresh, identically-initialized instance on
// every call (the standard policy.Factory contract): it is called once
// up front to probe per-set independence, and — for per-set-independent
// lanes replayed sharded — once more per worker. Lanes whose policy
// keeps cross-set state run exactly one stream-order walk of that probe
// instance (the policy pass of the two-phase split, or the whole lane
// when sequential), so they call NewPolicy exactly once in total. A
// lane with hooks always replays as a sequential walk, likewise one
// call in total, which is what lets callers stash the built instance
// (e.g. to read protector stats after the replay).
type LLCConfig struct {
	Size      int // LLC capacity in bytes
	Ways      int
	NewPolicy func() cache.Policy
	// Hooks observe this lane only. Lanes with any hook installed are
	// pinned to a sequential walk, exactly like the hook fallback of
	// ReplayParallel, because hooks observe stream order.
	Hooks Hooks
}

// lane is the engine-side state of one configuration.
type lane struct {
	cfg       LLCConfig
	sets      int
	inst      cache.Policy // probe instance; replays the lane when sequential
	shardable bool

	// Shared flat state of the sharded path; every index range is owned
	// by exactly one shard (lines by set, active/blockState by block,
	// fillShared by fill position), so concurrent writes never collide.
	lines      []Residency
	active     []uint32
	blockState []uint8
	fillShared []bool
	parts      []*Result // per-shard partial results

	// lineID is the batch probe's line → BlockID reverse map (the
	// inverse of active), allocated only for shardable lanes under the
	// batch kernel. Like lines, index ranges are owned per shard.
	lineID []uint32

	// log records the cache outcome of every stream access for a
	// two-phase lane; nil otherwise. The layout follows the kernel:
	// stream order under the scalar pass (runPolicyPass, indexed through
	// the partition's Order by stepLogged), partition order — shard s's
	// bytes contiguous at Offs[s], stream order within the segment —
	// under the batched pass (runPolicyPassBatch), so every tracker
	// shard reads its slice sequentially instead of gathering 1/P of the
	// bytes out of each cache line of a stream-ordered log.
	log []uint8

	// soa is the lane's SoA residency tracker, replacing lines when the
	// replay selects it (see tracker.go); the advance variants bound
	// below are the per-demand specializations picked once at lane
	// setup. ring, for a two-phase lane under the batch kernel, is the
	// chunked outcome-log pipeline between the policy pass and the
	// tracker shards.
	soa        *soaCols
	advance    advanceFn
	advanceLog advanceLogFn
	ring       *logRing

	result *Result
}

// errPolicyPassFailed is what a tracker shard waiting on a pipeline
// ring returns when the lane's policy pass died: a sentinel, so the
// replay can prefer the producer's own error over the consumers'
// echoes of it.
var errPolicyPassFailed = errors.New("sharing: policy pass failed; tracker replay aborted")

// logRing is the chunked outcome-log pipeline of one two-phase lane:
// the policy pass publishes the log watermark after each completed
// chunk, and tracker shard workers wait for their chunk's range before
// consuming it, so the two passes overlap instead of summing. The
// atomic watermark is monotonic and published after the log bytes are
// written (Go's atomics order the store), so a consumer that observes
// published ≥ n may read log[:n] without the lock; the mutex/cond pair
// only parks consumers that arrived early.
type logRing struct {
	published atomic.Int64
	failed    atomic.Bool
	mu        sync.Mutex
	cond      sync.Cond
}

func newLogRing() *logRing {
	r := &logRing{}
	r.cond.L = &r.mu
	return r
}

// publish makes log[:n] visible to waiting consumers.
func (r *logRing) publish(n int64) {
	r.published.Store(n)
	r.mu.Lock()
	r.cond.Broadcast()
	r.mu.Unlock()
}

// fail wakes every waiter without moving the watermark; their pending
// waits (and all future ones past the watermark) return
// errPolicyPassFailed. Chunks at or below the watermark stay valid —
// they were fully written before the pass died.
func (r *logRing) fail() {
	r.failed.Store(true)
	r.mu.Lock()
	r.cond.Broadcast()
	r.mu.Unlock()
}

// wait blocks until log[:n] is published, or the producer fails.
func (r *logRing) wait(n int64) error {
	if r.published.Load() >= n {
		return nil
	}
	r.mu.Lock()
	for r.published.Load() < n && !r.failed.Load() {
		r.cond.Wait()
	}
	r.mu.Unlock()
	if r.published.Load() < n {
		return errPolicyPassFailed
	}
	return nil
}

// Outcome log encoding of the two-phase split: one byte per access.
// Way numbers fit six bits (64-way is the widest supported geometry —
// wider lanes fall back to a plain sequential walk).
const (
	logWayMask = uint8(1<<6 - 1)
	logHit     = uint8(1 << 6)
	logEvict   = uint8(1 << 7)
	logMaxWays = 64
)

// laneRun is one lane's replay machinery on one worker: the LLC and
// policy instance persist across every shard the worker claims (valid
// precisely because shardable lanes are per-set independent and shards
// own disjoint sets — state the previous shard left behind is state the
// next shard never reads), while st is rebuilt per shard to produce that
// shard's partial Result.
type laneRun struct {
	llc  *cache.SetAssoc
	ways int
	st   *replayState
}

// ReplayMulti replays stream once through every configuration in
// configs and returns one Result per configuration, in order, each
// bit-identical to ReplayParallel (and therefore to sequential Replay)
// for that configuration alone with the same Options.
//
// Options.Warmup, KeepResidencies, Shards, Ctx and Partitioner apply to
// every lane; hooks are per-lane (LLCConfig.Hooks), so Options.Hooks
// must be empty. Options.Shards bounds the number of concurrent workers
// only — the set-partition granularity is picked internally for cache
// locality and never affects results.
func ReplayMulti(stream []cache.AccessInfo, configs []LLCConfig, opt Options) ([]*Result, error) {
	if opt.Hooks.any() {
		return nil, fmt.Errorf("sharing: ReplayMulti hooks are per-lane; set LLCConfig.Hooks, not Options.Hooks")
	}
	if len(configs) == 0 {
		return nil, nil
	}
	if opt.Ctx != nil {
		if err := opt.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	lanes := make([]*lane, len(configs))
	maxSets := 1
	for i, c := range configs {
		if c.NewPolicy == nil {
			return nil, fmt.Errorf("sharing: ReplayMulti config %d has no policy factory", i)
		}
		sets, err := cache.Geometry(c.Size, c.Ways)
		if err != nil {
			return nil, err
		}
		l := &lane{cfg: c, sets: sets, inst: c.NewPolicy()}
		l.shardable = !c.Hooks.any() && cache.PerSetIndependent(l.inst)
		if sets > maxSets {
			maxSets = sets
		}
		lanes[i] = l
	}
	workers := resolveShards(len(stream), maxSets, opt)
	if err := replayLanes(stream, lanes, workers, opt); err != nil {
		return nil, err
	}
	results := make([]*Result, len(lanes))
	for i, l := range lanes {
		results[i] = l.result
	}
	return results, nil
}

// blockBudget is the target size of one shard's slice of one lane's
// model state. Replay cost is dominated by dependent loads of tracker,
// tag and policy state at random set indices, so the blocking
// granularity — not stream bandwidth — decides throughput: the shard
// walk runs one lane at a time over the shard, and when that lane's
// slice fits in L2-sized cache the walk runs out of cache no matter how
// large the sweep's total state is.
const blockBudget = 512 << 10

// laneLineBytes approximates the combined tracker (Residency), tag and
// policy bytes behind one (set, way) of one lane, and laneBlockBytes
// the cache footprint behind one distinct block (its active and
// blockState entries — dense within a shard thanks to the shard-major
// ID layout of cache.AssignBlockIDs). Both are used only to pick the
// blocking granularity.
const (
	laneLineBytes  = 128
	laneBlockBytes = 8
	// accessBytes is sizeof(cache.AccessInfo), the per-access cost of
	// the gathered shard buffer.
	accessBytes = 56
)

// blockShards picks the set-partition granularity for the sharded
// lanes: enough shards that one shard's slice of the largest lane's
// model state fits blockBudget, at least the worker count so every
// worker can claim a shard, at most the smallest sharded lane's set
// count so a shard never splits a set (both bounds are powers of two,
// as is the result, so shard membership stays a mask of block bits).
// The cap matches the shard-major block-ID layout (cache.IDGroupBits):
// up to that many shards, each shard's per-block state is a few dense
// ID ranges; beyond it, the ranges would fragment again.
func blockShards(hotBytes, minSets, workers int) int {
	p := 1
	for p < 1<<cache.IDGroupBits && hotBytes/p > blockBudget {
		p <<= 1
	}
	if p < workers {
		p = workers
	}
	if p > minSets {
		p = floorPow2(minSets)
	}
	return p
}

// replayLanes is the fused engine shared by ReplayMulti and the sharded
// path of ReplayParallel. It turns the lanes into a task list — one
// full-stream walk per sequential lane, one task per set shard for the
// shardable group — and runs the tasks on `workers` concurrent workers,
// leaving each lane's merged Result in lane.result.
//
// The scheduling is chosen for memory locality, which is what replay
// throughput is bound by (the stream itself is read sequentially and is
// a minor cost next to the random-indexed model state):
//
//   - sequential lanes run lane-serial, so exactly one lane's model
//     state (a few MB) is resident per worker — interleaving them would
//     cycle every lane's state through cache between two uses of any
//     one lane's;
//   - shard tasks step all shardable lanes over one shard's accesses,
//     and a shard's slice of the combined lane state is capped near
//     blockBudget by blockShards, so the sharded walk runs out of cache
//     even when the lanes' total state is hundreds of MB. Workers reuse
//     one LLC+policy instance per lane across the shards they claim
//     (see laneRun).
//
// Sequential tasks are scheduled before shard tasks because they are
// the long ones: a full-stream walk per task, against 1/P of the stream
// per shard task.
func replayLanes(stream []cache.AccessInfo, lanes []*lane, workers int, opt Options) error {
	stream, numBlocks := ensureBlockIDs(stream, opt)
	mem.Hugepages(stream)
	// A lane can ride the set-sharded tracker walk either whole
	// (shardable: per-set-independent policy, no hooks) or split
	// (two-phase: any hook-free policy whose way numbers fit the
	// outcome log — the policy pass runs in stream order, the tracker
	// pass shards). Both kinds bound the blocking granularity.
	blocked := func(l *lane) bool {
		return l.shardable || (!l.cfg.Hooks.any() && l.cfg.Ways <= logMaxWays)
	}
	// The batch kernel's outcome word carries a 30-bit line index; a
	// geometry too large for it (over a billion lines) pins the whole
	// replay to the scalar kernel rather than mixing encodings.
	useBatch := opt.Kernel == KernelBatch
	var shardLanes, phaseLanes, seqLanes []*lane
	minSets, hotBytes := 0, 0
	for _, l := range lanes {
		if !blocked(l) {
			continue
		}
		if l.sets*l.cfg.Ways > int(cache.BatchLine)+1 {
			useBatch = false
		}
		if minSets == 0 || l.sets < minSets {
			minSets = l.sets
		}
		// One lane walk touches the lane's tracker/tag/policy lines, the
		// active/blockState entries of the shard's blocks, and the
		// shard's gathered accesses — all three shrink with the shard
		// count, so all three belong in the blocking budget.
		hb := l.sets*l.cfg.Ways*laneLineBytes + numBlocks*laneBlockBytes + len(stream)*accessBytes
		if hb > hotBytes {
			hotBytes = hb
		}
	}
	shards := 1
	if minSets > 1 {
		shards = blockShards(hotBytes, minSets, workers)
	}
	for _, l := range lanes {
		switch {
		case shards > 1 && l.shardable:
			shardLanes = append(shardLanes, l)
		case shards > 1 && blocked(l):
			phaseLanes = append(phaseLanes, l)
		default:
			seqLanes = append(seqLanes, l)
		}
	}

	var part *PartitionIndex
	var warmSplits []int32
	var passBlk []uint64
	var passID []uint32
	var ops *simdOps
	useSoA := false
	if len(shardLanes)+len(phaseLanes) > 0 {
		var err error
		if opt.Partitioner != nil {
			part, err = opt.Partitioner(shards)
			if err == nil && (part.Shards != shards || len(part.Order) != len(stream)) {
				err = fmt.Errorf("sharing: partitioner returned a partition for %d shards / %d accesses, want %d / %d",
					part.Shards, len(part.Order), shards, len(stream))
			}
		} else {
			part, err = BuildPartition(stream, shards)
		}
		if err != nil {
			return err
		}
		if useBatch {
			// The warmup boundary is a property of the stream, not of
			// any lane or shard walk: locate every shard's boundary
			// once per replay, straight from the partition.
			warmSplits = warmupBoundaries(part, opt.Warmup)
		}
		// Tracker selection: the SoA columns need the batch kernel, the
		// SHARELLC_BATCH_TRACKER gate, and cores that fit the packed
		// core/write word (Options.Cores hint, else a detection scan).
		useSoA = useBatch && opt.Tracker == TrackerSoA && batchTrackerOn.Load()
		if useSoA {
			cores := opt.Cores
			if cores == 0 {
				cores = scanCores(stream)
			}
			if cores > soaMaxCores {
				useSoA = false
			}
		}
		// SIMD tier resolution: one kernel binding (assembly, SWAR or
		// nil = off) for the whole replay, combining Options.SIMD, the
		// SHARELLC_SIMD cap and hardware detection — see simd.go. Like
		// the tracker knob it only applies where the batch kernel runs.
		if useBatch {
			ops = resolveSIMD(opt.SIMD)
		}
		// Tracker scratch comes from the pool (see scratch.go);
		// fillShared — when recorded at all — is allocated fresh
		// because it escapes into the merged Result.
		for _, l := range append(append([]*lane(nil), shardLanes...), phaseLanes...) {
			if useSoA {
				l.soa = grabSoA(l.sets*l.cfg.Ways, opt.KeepResidencies, opt.FillShared)
			} else {
				l.lines = grab(&scratch.lines, l.sets*l.cfg.Ways, false)
			}
			l.active = grab(&scratch.words, numBlocks, false)
			l.blockState = grab(&scratch.bytes, numBlocks, true)
			l.parts = make([]*Result, shards)
			if opt.FillShared {
				l.fillShared = make([]bool, len(stream))
				mem.Hugepages(l.fillShared)
			}
		}
		// Per-demand advance specialization, selected once at lane
		// setup (the way cache.BatchPolicy binds at construction): a
		// lane whose replay never reads per-residency detail gets the
		// counters-only loops.
		detail := opt.KeepResidencies || opt.FillShared
		if useBatch {
			for _, l := range shardLanes {
				l.lineID = grab(&scratch.cols, l.sets*l.cfg.Ways, false)
				switch {
				case !useSoA && ops == nil:
					l.advance = advanceStructOut
				case !useSoA:
					l.advance = advanceStructOutSIMD
				case detail && ops == nil:
					l.advance = advanceSoAFull
				case detail:
					l.advance = advanceSoAFullSIMD
				case ops == nil:
					l.advance = advanceSoACounters
				default:
					l.advance = advanceSoACountersSIMD
				}
			}
		}
		for _, l := range phaseLanes {
			l.log = grab(&scratch.bytes, len(stream), false)
			if useBatch {
				l.ring = newLogRing()
				switch {
				case !useSoA && ops == nil:
					l.advanceLog = advanceLogStruct
				case !useSoA:
					l.advanceLog = advanceLogStructSIMD
				case detail && ops == nil:
					l.advanceLog = advanceLogSoAFull
				case detail:
					l.advanceLog = advanceLogSoAFullSIMD
				case ops == nil:
					l.advanceLog = advanceLogSoACounters
				default:
					l.advanceLog = advanceLogSoACountersSIMD
				}
			}
		}
		// The batched policy passes share one whole-stream block/BlockID
		// column pair instead of each streaming the 56-byte records to
		// re-derive it (see runPolicyPassBatch).
		if useBatch && len(phaseLanes) > 0 {
			passBlk = grab(&scratch.blks, len(stream), false)
			passID = grab(&scratch.cols, len(stream), false)
			decodePassColumns(stream, passBlk, passID)
		}
	}

	// Stream-order tasks: the policy passes of the two-phase lanes come
	// first, then the sequential lanes. Under the batch kernel each
	// pass streams its log to the tracker shards through the lane's
	// ring, so shard workers start as soon as every task is claimed and
	// wait per chunk; under the scalar kernel the pass borrows the
	// lane's active table (which the tracker phase seeds from), so
	// workers block on the phase1 barrier before claiming shards, as
	// before.
	type seqTask struct {
		l      *lane
		phase1 bool
	}
	tasks := make([]seqTask, 0, len(phaseLanes)+len(seqLanes))
	for _, l := range phaseLanes {
		tasks = append(tasks, seqTask{l, true})
	}
	for _, l := range seqLanes {
		tasks = append(tasks, seqTask{l, false})
	}
	var phase1 sync.WaitGroup
	if !useBatch {
		phase1.Add(len(phaseLanes))
	}

	if workers < 1 {
		workers = 1
	}
	if n := len(tasks) + (len(shardLanes)+len(phaseLanes))*shards; workers > n {
		workers = n
	}
	var seqNext, shardNext int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				t := atomic.AddInt64(&seqNext, 1) - 1
				if t >= int64(len(tasks)) {
					break
				}
				if tk := tasks[t]; tk.phase1 {
					if useBatch {
						if errs[w] = runPolicyPassBatch(stream, numBlocks, part, passBlk, passID, tk.l, opt); errs[w] != nil {
							// Wake the tracker shards parked on this
							// lane's ring: nobody will rerun the pass,
							// and the error makes the whole replay fail.
							tk.l.ring.fail()
							return
						}
					} else {
						errs[w] = runPolicyPass(stream, tk.l, opt)
						// Done even on error: a worker that claimed a
						// phase1 task must release the barrier, or peers
						// would wait forever on a task nobody will rerun.
						// The error makes the whole replay fail, so shard
						// walks reading the unfinished log are discarded.
						phase1.Done()
						if errs[w] != nil {
							return
						}
					}
				} else if errs[w] = runSeqLane(stream, numBlocks, tk.l, opt); errs[w] != nil {
					return
				}
			}
			if len(shardLanes)+len(phaseLanes) == 0 {
				return
			}
			// Under the batch kernel the shard walk pipelines against the
			// policy passes through the rings (every pass task was claimed
			// above before any worker reaches this point, so each ring's
			// producer is guaranteed to run); the scalar kernel barriers.
			if !useBatch {
				phase1.Wait()
			}
			var runs []laneRun
			var buf []cache.AccessInfo
			var bs *batchScratch
			for {
				s := int(atomic.AddInt64(&shardNext, 1) - 1)
				if s >= shards {
					put(&scratch.accs, buf)
					if bs != nil {
						put(&scratch.blks, bs.blk)
						put(&scratch.cols, bs.id)
						put(&scratch.bytes, bs.meta)
						if bs.ecw != nil {
							put(&scratch.blks, bs.ecw)
							put(&scratch.blks, bs.ehits)
							put(&scratch.cols, bs.eid)
							put(&scratch.blks, bs.eidx)
							put(&scratch.blks, bs.efill)
							put(&scratch.blks, bs.eblk)
							put(&scratch.blks, bs.epc)
							put(&scratch.bytes, bs.emeta)
						}
						if bs.cw != nil {
							put(&scratch.blks, bs.cw)
							put(&scratch.bytes, bs.edeg)
							put(&scratch.halfs, bs.eord)
						}
						put(&scratch.cols, bs.out)
					}
					return
				}
				if runs == nil {
					runs = make([]laneRun, len(shardLanes))
					for j, l := range shardLanes {
						llc, err := cache.NewSetAssoc(l.cfg.Size, l.cfg.Ways, l.cfg.NewPolicy())
						if err != nil {
							errs[w] = err
							return
						}
						runs[j] = laneRun{llc: llc, ways: l.cfg.Ways}
					}
					max := 0
					for t := 0; t < shards; t++ {
						if n := int(part.Offs[t+1] - part.Offs[t]); n > max {
							max = n
						}
					}
					buf = grab(&scratch.accs, max, false)
					if useBatch {
						bs = &batchScratch{
							blk:  grab(&scratch.blks, max, false),
							id:   grab(&scratch.cols, max, false),
							meta: grab(&scratch.bytes, max, false),
							out:  grab(&scratch.cols, batchSize, false),
						}
						if useSoA {
							bs.ecw = grab(&scratch.blks, batchSize, false)
							bs.ehits = grab(&scratch.blks, batchSize, false)
							bs.eid = grab(&scratch.cols, batchSize, false)
							bs.eidx = grab(&scratch.blks, batchSize, false)
							bs.efill = grab(&scratch.blks, batchSize, false)
							bs.eblk = grab(&scratch.blks, batchSize, false)
							bs.epc = grab(&scratch.blks, batchSize, false)
							bs.emeta = grab(&scratch.bytes, batchSize, false)
						}
						bs.ops = ops
						if useSoA && ops != nil {
							bs.cw = grab(&scratch.blks, batchSize, false)
							bs.edeg = grab(&scratch.bytes, batchSize, false)
							bs.eord = grab(&scratch.halfs, batchSize, false)
							bs.closeShift = closeShiftFor(numBlocks)
						}
					}
				}
				if errs[w] = runShard(stream, shardLanes, phaseLanes, part, s, runs, buf, bs, warmSplits, opt); errs[w] != nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// A tracker shard that died waiting on a ring reports the sentinel;
	// the producer's own error is the useful one, so prefer any other.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, errPolicyPassFailed) {
			return err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if passBlk != nil {
		put(&scratch.blks, passBlk)
		put(&scratch.cols, passID)
	}
	for _, l := range append(append([]*lane(nil), shardLanes...), phaseLanes...) {
		l.result = mergeLane(l.inst.Name(), l.fillShared, l.parts, l.blockState, opt.KeepResidencies)
		if l.soa != nil {
			putSoA(l.soa)
		} else {
			put(&scratch.lines, l.lines)
		}
		put(&scratch.words, l.active)
		put(&scratch.bytes, l.blockState)
		if l.lineID != nil {
			put(&scratch.cols, l.lineID)
		}
		if l.log != nil {
			put(&scratch.bytes, l.log)
		}
	}
	return nil
}

// runPolicyPass is phase one of a two-phase lane: the full-stream,
// stream-order walk of the lane's cache and policy — the only part of
// the replay that genuinely needs global order when the policy keeps
// cross-set state (dueling counters, shared RNG draws, global tables).
// Its working set is just tags plus policy state; the multi-megabyte
// tracker arrays are untouched. Each access's outcome lands in l.log,
// from which the tracker half replays set-shard by set-shard (see
// stepLogged). The policy sequence is exactly the sequential replay's:
// one llc.Access per access in stream order. Stream Index validation
// happened when the partition was built (two-phase lanes exist only
// alongside a partition), so the loop carries none.
//
// Like the tracker's step, the pass keeps its own block → line slot
// table so the majority path — a hit — costs one table load and the
// policy notification instead of the cache's tag scan (the skipped
// llc.Access would only re-derive the same (set, way); its hit counter
// and dirty-bit updates are unobservable through the outcome log). The
// pass borrows the lane's phase-two active table for it, plus a pooled
// slot → block id reverse map so evictions can clear their victim's
// entry, and re-zeroes the active table before the tracker phase seeds
// from it.
func runPolicyPass(stream []cache.AccessInfo, l *lane, opt Options) error {
	llc, err := cache.NewSetAssoc(l.cfg.Size, l.cfg.Ways, l.inst)
	if err != nil {
		return err
	}
	log := l.log
	ways := l.cfg.Ways
	active := l.active
	lineID := grab(&scratch.words, l.sets*ways, false)
	pol := llc.Policy()
	for i := range stream {
		if opt.Ctx != nil && i&(cancelStride-1) == 0 {
			if err := opt.Ctx.Err(); err != nil {
				return err
			}
		}
		a := &stream[i]
		if li := active[a.BlockID]; li != 0 {
			// As in step's hit path: the set comes from the block address
			// (a mask), not a divide of li by the runtime ways value.
			set := llc.SetOf(a.Block)
			way := int(li-1) - set*ways
			pol.Hit(set, way, a)
			log[i] = uint8(way) | logHit
			continue
		}
		out := llc.FillRef(a)
		b := uint8(out.Way)
		li := out.Set*ways + out.Way
		if out.Evicted {
			b |= logEvict
			active[lineID[li]] = 0
		}
		lineID[li] = a.BlockID
		active[a.BlockID] = uint32(li + 1)
		log[i] = b
	}
	clear(active)
	// The words pool's at-rest invariant is all-zero (active tables seed
	// from it without a clearing pass), so the reverse map must not go
	// back dirty.
	clear(lineID)
	put(&scratch.words, lineID)
	return nil
}

// runSeqLane replays one sequential lane over the whole stream, exactly
// the walk sequential Replay runs (same Index validation, same hook
// dispatch in stream order), writing the finished Result to l.result.
func runSeqLane(stream []cache.AccessInfo, numBlocks int, l *lane, opt Options) error {
	llc, err := cache.NewSetAssoc(l.cfg.Size, l.cfg.Ways, l.inst)
	if err != nil {
		return err
	}
	st := &replayState{
		res:        newResult(l.inst.Name(), fillLen(opt, stream)),
		lines:      grab(&scratch.lines, l.sets*l.cfg.Ways, false),
		active:     grab(&scratch.words, numBlocks, false),
		blockState: grab(&scratch.bytes, numBlocks, true),
		warmup:     int64(opt.Warmup),
		hooks:      l.cfg.Hooks,
		hadPred:    l.cfg.Hooks.PredictShared != nil,
		keep:       opt.KeepResidencies,
		ctx:        opt.Ctx,
	}
	mem.Hugepages(st.res.FillShared)
	if err := st.run(llc, stream, nil); err != nil {
		return err
	}
	st.closeAlive(l.sets, l.cfg.Ways, 1, 0)
	census(st.res, st.blockState)
	l.result = st.res
	put(&scratch.lines, st.lines)
	put(&scratch.words, st.active)
	put(&scratch.bytes, st.blockState)
	return nil
}

// runShard walks shard s's accesses once per shardable lane and once
// per two-phase lane, one lane at a time. The shard's accesses are
// first gathered from the stream into buf (the worker's reusable
// scratch, cap ≥ any shard's length): the gather's strided loads are
// paid once per shard, and every lane then reads a contiguous,
// prefetch-friendly buffer. Walking lanes one after another — rather
// than interleaving accesses across lanes — keeps exactly one lane's
// shard slice (≈ blockBudget bytes) resident for the whole walk and
// every policy call site monomorphic; re-reading the buffer per lane is
// sequential and nearly free by comparison. Lane state slices are
// shared across workers with disjoint ownership (see lane); the LLC and
// policy instances in runs belong to the calling worker and carry over
// from the shards it processed before. Two-phase lanes have no cache or
// policy here at all: their walk is the tracker half only, re-enacting
// the outcome log their policy pass recorded (see stepLogged).
func runShard(stream []cache.AccessInfo, lanes, phaseLanes []*lane, part *PartitionIndex, s int, runs []laneRun, buf []cache.AccessInfo, bs *batchScratch, warmSplits []int32, opt Options) error {
	for j, l := range lanes {
		res := newResult(l.inst.Name(), 0)
		res.FillShared = l.fillShared
		runs[j].st = &replayState{
			res:        res,
			lines:      l.lines,
			cols:       l.soa,
			active:     l.active,
			blockState: l.blockState,
			warmup:     int64(opt.Warmup),
			keep:       opt.KeepResidencies,
		}
	}
	order := part.Order[part.Offs[s]:part.Offs[s+1]]
	accs := buf[:len(order)]
	// Batch kernel: the decode phase runs once per shard (the columns
	// serve every lane's walk) and the warmup boundary was located once
	// per replay (warmupBoundaries), so the chunk loops carry neither
	// test. Both tracker layouts consume the packed 1-byte meta column;
	// the SoA advance loops expand it to the core/write word via the
	// SIMD tier's chunk prepass (or inline under SIMDOff — either way a
	// few ALU ops per access beats re-streaming a shard-length uint64
	// column through the cache once per lane). Under the SIMD tier the
	// gather+decode runs as a pipelined producer goroutine, one chunk
	// ahead of the first lane's probe loop (see colPipe); the producer
	// must be aborted and joined before the shard's columns are reused
	// or released, including on error returns.
	kWarm := 0
	var pipe *colPipe
	if bs != nil {
		kWarm = int(warmSplits[s])
		if bs.ops != nil && len(order) > 0 {
			pipe = newColPipe()
			go decodePipelined(stream, order, accs, bs, pipe)
			defer func() {
				pipe.abort()
				pipe.join()
			}()
		} else {
			for k, idx := range order {
				accs[k] = stream[idx]
			}
			decodeColumns(accs, bs.blk, bs.id, bs.meta)
		}
	} else {
		for k, idx := range order {
			accs[k] = stream[idx]
		}
	}
	for j := range runs {
		llc, ways, st := runs[j].llc, runs[j].ways, runs[j].st
		if bs != nil {
			if err := runLaneBatch(llc, lanes[j], st, bs, accs, kWarm, pipe, opt); err != nil {
				return err
			}
			continue
		}
		var acc, hits uint64
		for i := range accs {
			if opt.Ctx != nil && i&(cancelStride-1) == 0 {
				if err := opt.Ctx.Err(); err != nil {
					return err
				}
			}
			hit, err := st.step(llc, ways, &accs[i])
			if err != nil {
				return err
			}
			if accs[i].Index >= st.warmup {
				acc++
				if hit {
					hits++
				}
			}
		}
		st.flushCounts(acc, hits)
	}
	for j, l := range lanes {
		runs[j].st.closeAlive(l.sets, l.cfg.Ways, part.Shards, s)
		l.parts[s] = runs[j].st.res
	}
	for _, l := range phaseLanes {
		res := newResult(l.inst.Name(), 0)
		res.FillShared = l.fillShared
		st := &replayState{
			res:        res,
			lines:      l.lines,
			cols:       l.soa,
			active:     l.active,
			blockState: l.blockState,
			warmup:     int64(opt.Warmup),
			keep:       opt.KeepResidencies,
		}
		setMask := uint64(l.sets - 1)
		ways := l.cfg.Ways
		if bs != nil {
			if err := runPhaseLaneBatch(l, st, bs, accs, order, int(part.Offs[s]), kWarm, pipe, opt); err != nil {
				return err
			}
			st.closeAlive(l.sets, ways, part.Shards, s)
			l.parts[s] = res
			continue
		}
		var acc, hits uint64
		for i := range accs {
			if opt.Ctx != nil && i&(cancelStride-1) == 0 {
				if err := opt.Ctx.Err(); err != nil {
					return err
				}
			}
			hit, err := st.stepLogged(l.log[order[i]], setMask, ways, &accs[i])
			if err != nil {
				return err
			}
			if accs[i].Index >= st.warmup {
				acc++
				if hit {
					hits++
				}
			}
		}
		st.flushCounts(acc, hits)
		st.closeAlive(l.sets, ways, part.Shards, s)
		l.parts[s] = res
	}
	return nil
}
