package sharing

import (
	"reflect"
	"strings"
	"testing"

	"sharellc/internal/cache"
	"sharellc/internal/policy"
	"sharellc/internal/rng"
	"sharellc/internal/trace"
)

func TestParseKernel(t *testing.T) {
	for s, want := range map[string]Kernel{"batch": KernelBatch, "scalar": KernelScalar} {
		k, err := ParseKernel(s)
		if err != nil || k != want {
			t.Errorf("ParseKernel(%q) = %v, %v; want %v", s, k, err, want)
		}
		if k.String() != s {
			t.Errorf("Kernel(%v).String() = %q, want %q", k, k.String(), s)
		}
	}
	_, err := ParseKernel("vector")
	if err == nil {
		t.Fatal("ParseKernel accepted an unknown kernel")
	}
	for _, want := range []string{"vector", "batch", "scalar"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("ParseKernel error %q does not mention %q", err, want)
		}
	}
}

// batchTestConfigs builds one lane per experiment family: every
// registered policy (covering the shardable and two-phase groups), a
// hooked lane (pinned to the sequential walk) and a 128-way lane (past
// the outcome log's 6-bit way field, the other sequential fallback).
func batchTestConfigs(t *testing.T, size, ways int, hookCount *int) []LLCConfig {
	t.Helper()
	var configs []LLCConfig
	for _, n := range policy.Names(1) {
		f, err := policy.ByName(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		configs = append(configs, LLCConfig{Size: size, Ways: ways, NewPolicy: f})
	}
	lru := func() cache.Policy { return policy.NewLRUPolicy() }
	configs = append(configs, LLCConfig{Size: size, Ways: ways, NewPolicy: lru,
		Hooks: Hooks{OnAccess: func(cache.AccessInfo) { *hookCount++ }}})
	configs = append(configs, LLCConfig{Size: size, Ways: 128, NewPolicy: lru})
	return configs
}

// TestKernelBatchVsScalar replays every experiment family — the full
// policy catalogue, a hooked lane and the 128-way sequential fallback —
// under both kernels and demands byte-equal Results, including the
// residency logs, degree histograms and oracle bit vectors.
func TestKernelBatchVsScalar(t *testing.T) {
	stream := synthStream(40000, 3000, 8, 7)
	size, ways := 64*cache.KB, 8
	opt := Options{KeepResidencies: true, Warmup: 500, FillShared: true, Shards: 4}

	var hooksB, hooksS int
	cfgB := batchTestConfigs(t, size, ways, &hooksB)
	cfgS := batchTestConfigs(t, size, ways, &hooksS)

	optB := opt
	optB.Kernel = KernelBatch
	batch, err := ReplayMulti(stream, cfgB, optB)
	if err != nil {
		t.Fatal(err)
	}
	optS := opt
	optS.Kernel = KernelScalar
	scalar, err := ReplayMulti(stream, cfgS, optS)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(scalar) {
		t.Fatalf("got %d batch results, %d scalar", len(batch), len(scalar))
	}
	for i := range scalar {
		if !reflect.DeepEqual(batch[i], scalar[i]) {
			t.Errorf("config %d (%s @ %d ways): batch result differs from scalar\nbatch:  %+v\nscalar: %+v",
				i, cfgB[i].NewPolicy().Name(), cfgB[i].Ways, batch[i], scalar[i])
		}
	}
	if hooksB != len(stream) || hooksS != len(stream) {
		t.Errorf("hooked lane saw %d/%d accesses under batch/scalar, want %d both", hooksB, hooksS, len(stream))
	}
}

// kernelsAgree replays stream under both kernels (one shardable and one
// two-phase lane) and reports a fatal difference. Shards is forced past
// one so the lane engine — not the sequential fallback — runs.
func kernelsAgree(t *testing.T, stream []cache.AccessInfo, size, ways int) {
	t.Helper()
	configsAgree(t, stream, []LLCConfig{
		{Size: size, Ways: ways, NewPolicy: func() cache.Policy { return policy.NewLRUPolicy() }},
		{Size: size, Ways: ways, NewPolicy: func() cache.Policy { return policy.NewDRRIP(rng.New(3)) }},
	})
}

// configsAgree is kernelsAgree over caller-chosen lane configs.
func configsAgree(t *testing.T, stream []cache.AccessInfo, configs []LLCConfig) {
	t.Helper()
	opt := Options{KeepResidencies: true, Warmup: 100, Shards: 4}
	optB, optS := opt, opt
	optB.Kernel = KernelBatch
	optS.Kernel = KernelScalar
	batch, err := ReplayMulti(stream, configs, optB)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := ReplayMulti(stream, configs, optS)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scalar {
		if !reflect.DeepEqual(batch[i], scalar[i]) {
			t.Fatalf("len %d, config %d: batch result differs from scalar\nbatch:  %+v\nscalar: %+v",
				len(stream), i, batch[i], scalar[i])
		}
	}
}

// TestKernelBoundaryLengths pins the chunk-loop edges: streams of
// exactly batchSize−1, batchSize and batchSize+1 accesses (the chunk
// boundary), empty and single-access streams, and a length that leaves
// a short scalar-tail chunk.
func TestKernelBoundaryLengths(t *testing.T) {
	for _, n := range []int{0, 1, batchSize - 1, batchSize, batchSize + 1, 2*batchSize + 37} {
		stream := synthStream(n, 300, 4, uint64(n)+3)
		kernelsAgree(t, stream, 16*1024, 4)
	}
}

// FuzzKernelBoundary fuzzes stream length, block population, warmup
// interactions around the batch boundaries AND the policy running the
// lane: pol selects one specialized policy from the realistic
// catalogue, so the fuzzer explores every monomorphic kernel (shardable
// and two-phase alike) against the scalar replay, which runs no kernel
// at all. Every case must replay bit-identically under both kernels.
func FuzzKernelBoundary(f *testing.F) {
	var kernelPolicies []string
	for _, n := range policy.Names(1) {
		if policy.Realistic(n) {
			kernelPolicies = append(kernelPolicies, n)
		}
	}
	for i, n := range []uint16{0, 1, batchSize - 1, batchSize, batchSize + 1} {
		f.Add(n, uint64(i+1), uint8(i))
	}
	f.Add(uint16(3000), uint64(9), uint8(len(kernelPolicies)-1))
	f.Fuzz(func(t *testing.T, n uint16, seed uint64, pol uint8) {
		stream := synthStream(int(n), 200, 4, seed)
		kernelsAgree(t, stream, 16*1024, 4)
		name := kernelPolicies[int(pol)%len(kernelPolicies)]
		fac, err := policy.ByName(name, seed|1)
		if err != nil {
			t.Fatal(err)
		}
		configsAgree(t, stream, []LLCConfig{
			{Size: 16 * 1024, Ways: 4, NewPolicy: func() cache.Policy { return fac() }},
		})
	})
}

// TestReplayMultiAllocSteady asserts the fused replay's hot loops stay
// allocation-free: once the scratch pool is warm, a whole ReplayMulti
// sweep allocates only per-lane/per-shard bookkeeping (results, partial
// counters, goroutines) — a count independent of stream length, orders
// of magnitude below one allocation per access. Wired into CI via
// `go test -run Alloc`.
func TestReplayMultiAllocSteady(t *testing.T) {
	stream := synthStream(60000, 3000, 8, 7)
	configs := []LLCConfig{
		{Size: 64 * cache.KB, Ways: 8, NewPolicy: func() cache.Policy { return policy.NewLRUPolicy() }},
		{Size: 64 * cache.KB, Ways: 8, NewPolicy: func() cache.Policy { return policy.NewDRRIP(rng.New(3)) }},
	}
	opt := Options{Shards: 2}
	run := func() {
		if _, err := ReplayMulti(stream, configs, opt); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch pool
	allocs := testing.AllocsPerRun(3, run)
	// ~60k accesses × 2 lanes: anything near one alloc per access means
	// a hot loop started allocating. A warm sweep measures ~150 objects
	// of per-sweep bookkeeping (degree histograms per shard partial,
	// goroutine stacks, result structs); the budget leaves room for
	// scheduler variance while still tripping on any per-chunk leak.
	if allocs > 400 {
		t.Errorf("ReplayMulti allocated %.0f objects per sweep; hot loop is allocating (budget 400)", allocs)
	}
}

// TestBatchKernelLargeWarmup exercises the warmup boundary landing
// mid-stream so batch chunks are split at the boundary: counters must
// match the scalar kernel exactly.
func TestBatchKernelLargeWarmup(t *testing.T) {
	stream := synthStream(3*batchSize, 500, 4, 11)
	for _, warmup := range []int{1, batchSize, batchSize + 1, 3*batchSize - 1} {
		configs := []LLCConfig{
			{Size: 16 * trace.BlockSize * 4, Ways: 4, NewPolicy: func() cache.Policy { return policy.NewLRUPolicy() }},
		}
		optB := Options{Warmup: warmup, Shards: 4, Kernel: KernelBatch}
		optS := Options{Warmup: warmup, Shards: 4, Kernel: KernelScalar}
		batch, err := ReplayMulti(stream, configs, optB)
		if err != nil {
			t.Fatal(err)
		}
		scalar, err := ReplayMulti(stream, configs, optS)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[0], scalar[0]) {
			t.Errorf("warmup %d: batch result differs from scalar", warmup)
		}
	}
}
