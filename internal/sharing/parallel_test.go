package sharing

import (
	"reflect"
	"testing"

	"sharellc/internal/cache"
	"sharellc/internal/policy"
	"sharellc/internal/rng"
	"sharellc/internal/trace"
)

// synthStream builds a pseudo-random annotated stream with enough blocks
// and cores to populate every set of the test cache and produce both
// shared and private residencies.
func synthStream(n int, blocks uint64, cores uint8, seed uint64) []cache.AccessInfo {
	r := rng.New(seed)
	stream := make([]cache.AccessInfo, n)
	for i := range stream {
		b := uint64(r.Intn(int(blocks)))
		stream[i] = cache.AccessInfo{
			Core:  uint8(r.Intn(int(cores))),
			Block: b,
			PC:    0x400 + (b%7)*4,
			Write: r.Intn(5) == 0,
			Index: int64(i),
		}
	}
	cache.AnnotateNextUse(stream)
	return stream
}

// perSetFactories are the policies that take the sharded path.
func perSetFactories() map[string]func() cache.Policy {
	return map[string]func() cache.Policy{
		"lru":   func() cache.Policy { return policy.NewLRUPolicy() },
		"fifo":  func() cache.Policy { return policy.NewFIFO() },
		"nru":   func() cache.Policy { return policy.NewNRU() },
		"plru":  func() cache.Policy { return policy.NewPLRU() },
		"lip":   func() cache.Policy { return policy.NewLIP() },
		"srrip": func() cache.Policy { return policy.NewSRRIP() },
		"opt":   func() cache.Policy { return policy.NewOPT() },
	}
}

// TestReplayParallelBitIdentical replays the same stream sequentially and
// at several forced shard counts under every per-set policy, demanding
// the full Result — counters, degree histograms, oracle bits and the
// complete residency log — be identical.
func TestReplayParallelBitIdentical(t *testing.T) {
	stream := synthStream(20000, 200, 8, 7)
	opt := Options{KeepResidencies: true, Warmup: 500}
	for name, f := range perSetFactories() {
		t.Run(name, func(t *testing.T) {
			want, err := Replay(stream, testSize, testWays, f(), opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 4} {
				o := opt
				o.Shards = shards
				got, err := ReplayParallel(stream, testSize, testWays, f, o)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("shards=%d: result differs from sequential\nseq: %+v\npar: %+v", shards, want, got)
				}
			}
		})
	}
}

// TestReplayParallelFallbacks checks that ineligible configurations fall
// back to the sequential path and still return correct results: policies
// with cross-set state, replays with hooks installed, and explicit
// single-shard requests.
func TestReplayParallelFallbacks(t *testing.T) {
	stream := synthStream(5000, 100, 4, 11)

	// DRRIP duels sets against each other: not per-set independent.
	drrip := func() cache.Policy { return policy.NewDRRIP(rng.New(3)) }
	want, err := Replay(stream, testSize, testWays, drrip(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReplayParallel(stream, testSize, testWays, drrip, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("non-per-set policy: parallel entry point differs from sequential")
	}

	// Hooks observe stream order; a shard request must not break them.
	var seen int
	hooked := Options{Shards: 4, Hooks: Hooks{OnAccess: func(cache.AccessInfo) { seen++ }}}
	if _, err := ReplayParallel(stream, testSize, testWays,
		func() cache.Policy { return policy.NewLRUPolicy() }, hooked); err != nil {
		t.Fatal(err)
	}
	if seen != len(stream) {
		t.Errorf("OnAccess fired %d times, want %d", seen, len(stream))
	}

	// Shards=1 is an explicit sequential request.
	seq, err := ReplayParallel(stream, testSize, testWays,
		func() cache.Policy { return policy.NewLRUPolicy() }, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Replay(stream, testSize, testWays, policy.NewLRUPolicy(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, seq) {
		t.Error("Shards=1 differs from sequential Replay")
	}
}

// TestReplayUnassignedBlockIDs checks the EnsureBlockIDs fallback: a
// stream filtered without annotation (all BlockIDs zero) must replay
// correctly without mutating the caller's slice.
func TestReplayUnassignedBlockIDs(t *testing.T) {
	annotated := synthStream(2000, 50, 4, 13)
	raw := make([]cache.AccessInfo, len(annotated))
	for i, a := range annotated {
		a.BlockID = 0
		a.NextUse = 0
		raw[i] = a
	}
	want, err := Replay(annotated, testSize, testWays, policy.NewLRUPolicy(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Replay(raw, testSize, testWays, policy.NewLRUPolicy(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Hits != want.Hits || got.Misses != want.Misses ||
		got.SharedHits != want.SharedHits || got.DistinctBlocks != want.DistinctBlocks {
		t.Errorf("unassigned-ID replay differs: %+v vs %+v", got, want)
	}
	for i := range raw {
		if raw[i].BlockID != 0 {
			t.Fatal("Replay mutated the caller's stream")
		}
	}
	pgot, err := ReplayParallel(raw, testSize, testWays,
		func() cache.Policy { return policy.NewLRUPolicy() }, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pgot.Hits != want.Hits || pgot.Misses != want.Misses {
		t.Errorf("unassigned-ID parallel replay differs: %+v vs %+v", pgot, want)
	}
}

// TestGeometryHelper pins cache.Geometry against NewSetAssoc.
func TestGeometryHelper(t *testing.T) {
	sets, err := cache.Geometry(testSize, testWays)
	if err != nil {
		t.Fatal(err)
	}
	if sets != testSize/trace.BlockSize/testWays {
		t.Errorf("sets = %d", sets)
	}
	if _, err := cache.Geometry(testSize+1, testWays); err == nil {
		t.Error("fractional geometry accepted")
	}
}
