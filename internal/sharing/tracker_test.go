package sharing

import (
	"context"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"sharellc/internal/cache"
	"sharellc/internal/policy"
	"sharellc/internal/rng"
)

func TestParseTracker(t *testing.T) {
	for s, want := range map[string]Tracker{"soa": TrackerSoA, "struct": TrackerStruct} {
		tr, err := ParseTracker(s)
		if err != nil || tr != want {
			t.Errorf("ParseTracker(%q) = %v, %v; want %v", s, tr, err, want)
		}
		if tr.String() != s {
			t.Errorf("Tracker(%v).String() = %q, want %q", tr, tr.String(), s)
		}
	}
	_, err := ParseTracker("aos")
	if err == nil {
		t.Fatal("ParseTracker accepted an unknown tracker")
	}
	for _, want := range []string{"aos", "soa", "struct"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("ParseTracker error %q does not mention %q", err, want)
		}
	}
}

// trackersAgree replays stream through configs under the batch kernel
// with both tracker representations and demands byte-equal Results —
// counters, degree histograms, residency logs and oracle bit vectors
// alike. opt.Tracker is overridden per run.
func trackersAgree(t *testing.T, stream []cache.AccessInfo, configs []LLCConfig, opt Options) {
	t.Helper()
	optA, optB := opt, opt
	optA.Kernel, optA.Tracker = KernelBatch, TrackerSoA
	optB.Kernel, optB.Tracker = KernelBatch, TrackerStruct
	soa, err := ReplayMulti(stream, configs, optA)
	if err != nil {
		t.Fatal(err)
	}
	structs, err := ReplayMulti(stream, configs, optB)
	if err != nil {
		t.Fatal(err)
	}
	for i := range structs {
		if !reflect.DeepEqual(soa[i], structs[i]) {
			t.Errorf("config %d (%s @ %d ways): SoA result differs from struct tracker\nsoa:    %+v\nstruct: %+v",
				i, configs[i].NewPolicy().Name(), configs[i].Ways, soa[i], structs[i])
		}
	}
}

// TestTrackerSoAVsStruct replays every experiment family — the full
// policy catalogue (shardable and two-phase lanes), a hooked lane and
// the 128-way sequential fallback — with the SoA and struct trackers
// and demands byte-equal Results, at both detail demands (counters-only
// and full residency detail).
func TestTrackerSoAVsStruct(t *testing.T) {
	stream := synthStream(40000, 3000, 8, 7)
	var hooks int
	configs := batchTestConfigs(t, 64*cache.KB, 8, &hooks)
	trackersAgree(t, stream, configs, Options{KeepResidencies: true, Warmup: 500, FillShared: true, Shards: 4})
	trackersAgree(t, stream, configs, Options{Warmup: 500, Shards: 4})
}

// TestTrackerEnvGate pins the SHARELLC_BATCH_TRACKER escape hatch:
// with the gate off, a TrackerSoA replay runs the struct tracker and
// still produces identical Results.
func TestTrackerEnvGate(t *testing.T) {
	if !batchTrackerOn.Load() {
		t.Skip("SHARELLC_BATCH_TRACKER=off in the environment")
	}
	stream := synthStream(20000, 1500, 8, 9)
	configs := []LLCConfig{
		{Size: 32 * cache.KB, Ways: 8, NewPolicy: func() cache.Policy { return policy.NewLRUPolicy() }},
		{Size: 32 * cache.KB, Ways: 8, NewPolicy: func() cache.Policy { return policy.NewDRRIP(rng.New(3)) }},
	}
	opt := Options{KeepResidencies: true, Warmup: 100, Shards: 4, Kernel: KernelBatch}
	on, err := ReplayMulti(stream, configs, opt)
	if err != nil {
		t.Fatal(err)
	}
	prev := EnableBatchTracker(false)
	defer EnableBatchTracker(prev)
	off, err := ReplayMulti(stream, configs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range on {
		if !reflect.DeepEqual(on[i], off[i]) {
			t.Errorf("config %d: gated-off replay differs from SoA replay", i)
		}
	}
}

// TestTrackerWideCoreFallback streams cores past the packed word's 63
// (indices 0..62): the SoA request must silently fall back to the
// struct tracker and still match it, with and without an Options.Cores
// hint. A 63-core stream (the widest that fits) stays on the SoA path.
func TestTrackerWideCoreFallback(t *testing.T) {
	for _, cores := range []uint8{63, 64, 100} {
		stream := synthStream(15000, 1200, cores, uint64(cores))
		configs := []LLCConfig{
			{Size: 32 * cache.KB, Ways: 8, NewPolicy: func() cache.Policy { return policy.NewLRUPolicy() }},
			{Size: 32 * cache.KB, Ways: 8, NewPolicy: func() cache.Policy { return policy.NewDRRIP(rng.New(5)) }},
		}
		opt := Options{KeepResidencies: true, Warmup: 100, Shards: 4}
		trackersAgree(t, stream, configs, opt)
		opt.Cores = int(cores)
		trackersAgree(t, stream, configs, opt)
	}
}

// FuzzTrackerLog fuzzes the fused log-decode/advance loop of the
// two-phase lanes: stream length and warmup around the chunk
// boundaries, a cross-set policy (so the lane takes the outcome-log
// path), at fuzzer-chosen detail demand. SoA and struct replays must
// stay bit-identical.
func FuzzTrackerLog(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint64(1), false)
	f.Add(uint16(batchSize-1), uint16(100), uint64(2), true)
	f.Add(uint16(batchSize), uint16(batchSize), uint64(3), false)
	f.Add(uint16(batchSize+1), uint16(1), uint64(4), true)
	f.Add(uint16(3000), uint16(2999), uint64(5), true)
	f.Fuzz(func(t *testing.T, n, warmup uint16, seed uint64, keep bool) {
		stream := synthStream(int(n), 200, 8, seed)
		configs := []LLCConfig{
			{Size: 16 * 1024, Ways: 4, NewPolicy: func() cache.Policy { return policy.NewDRRIP(rng.New(seed | 1)) }},
			{Size: 16 * 1024, Ways: 4, NewPolicy: func() cache.Policy { return policy.NewSHiP() }},
		}
		opt := Options{Warmup: int(warmup), Shards: 4, KeepResidencies: keep, FillShared: keep}
		trackersAgree(t, stream, configs, opt)
	})
}

// countingCtx is a context whose Err() starts failing after a fixed
// number of polls — a deterministic way to kill a replay mid-run.
type countingCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *countingCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestTrackerPipelineCancel kills the replay partway through via a
// context that starts failing after a few polls: the policy pass dies,
// its ring must wake the tracker shards (no deadlock), and the replay
// must surface a real error — the context's, not the ring's internal
// sentinel.
func TestTrackerPipelineCancel(t *testing.T) {
	stream := synthStream(4*batchSize, 800, 8, 13)
	configs := []LLCConfig{
		{Size: 32 * cache.KB, Ways: 8, NewPolicy: func() cache.Policy { return policy.NewDRRIP(rng.New(3)) }},
		{Size: 32 * cache.KB, Ways: 8, NewPolicy: func() cache.Policy { return policy.NewLRUPolicy() }},
	}
	for _, after := range []int64{0, 1, 2, 5, 8} {
		ctx := &countingCtx{Context: context.Background(), after: after}
		_, err := ReplayMulti(stream, configs, Options{Shards: 4, Kernel: KernelBatch, Ctx: ctx})
		if err == nil {
			t.Fatalf("after=%d: replay succeeded under a cancelled context", after)
		}
		if err == errPolicyPassFailed {
			t.Fatalf("after=%d: replay surfaced the internal ring sentinel instead of the cause", after)
		}
	}
}

// TestLogRing pins the ring's watermark and failure semantics directly:
// waits at or below the watermark return immediately, a parked wait
// wakes on publish, and fail() releases waiters past the watermark with
// the sentinel while chunks at or below it stay readable.
func TestLogRing(t *testing.T) {
	r := newLogRing()
	if err := r.wait(0); err != nil {
		t.Fatalf("wait(0) on a fresh ring: %v", err)
	}
	r.publish(10)
	if err := r.wait(10); err != nil {
		t.Fatalf("wait(10) after publish(10): %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- r.wait(20) }()
	r.publish(20)
	if err := <-done; err != nil {
		t.Fatalf("parked wait(20) after publish(20): %v", err)
	}
	go func() { done <- r.wait(30) }()
	r.fail()
	if err := <-done; err != errPolicyPassFailed {
		t.Fatalf("wait(30) after fail() = %v, want errPolicyPassFailed", err)
	}
	if err := r.wait(15); err != nil {
		t.Fatalf("wait(15) below the watermark after fail(): %v", err)
	}
}

// TestTrackerPipelineStress drives many two-phase lanes through the
// pipelined ring with more shards than workers, so publishes and waits
// interleave heavily; run under -race in CI. Results must match the
// barriered struct replay.
func TestTrackerPipelineStress(t *testing.T) {
	stream := synthStream(30000, 2000, 8, 17)
	var configs []LLCConfig
	for i := 0; i < 6; i++ {
		seed := uint64(i + 1)
		configs = append(configs, LLCConfig{Size: 32 * cache.KB, Ways: 8,
			NewPolicy: func() cache.Policy { return policy.NewDRRIP(rng.New(seed)) }})
	}
	trackersAgree(t, stream, configs, Options{KeepResidencies: true, Warmup: 300, FillShared: true, Shards: 8})
}
