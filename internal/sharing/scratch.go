package sharing

// Scratch pooling for the replay engine's flat per-lane arrays.
//
// A sweep calls ReplayMulti once per workload, and every call used to
// allocate the same few hundred megabytes of tracker state — residency
// slabs, active tables, block censuses, outcome logs, gather buffers —
// only for the garbage collector to reclaim them moments later. The
// allocations themselves are cheap; what is not is everything riding on
// them: the runtime zeroing each array, the page faults of touching
// fresh spans, and re-collapsing those spans into huge pages
// (mem.Hugepages) on every single replay.
//
// The pool removes all three by recycling the arrays across replays.
// Most kinds need no clearing at all, because a finished replay leaves
// them satisfying the invariants a fresh replay needs:
//
//   - lines ([]Residency): a replay reads a slot only after filling it,
//     except closeAlive, which treats a slot as live iff EvictIndex is
//     -1. Closed slots keep their evicting index and closeAlive retires
//     survivors to evictRetired, so a recycled slab contains no slot
//     claiming an open residency; untouched capacity is still zero from
//     make (EvictIndex 0 — also dead).
//   - active ([]uint32): entries are cleared when their residency
//     closes, and closeAlive clears the survivors', so the table
//     returns to all-zero — exactly the fresh state.
//   - outcome logs ([]uint8): phase one overwrites every byte before
//     phase two reads it.
//   - gather buffers ([]cache.AccessInfo): fully overwritten per shard.
//   - batch columns (cols []uint32, blks []uint64): no at-rest
//     invariant at all. The decode phase overwrites the consumed prefix
//     per shard, outcome words are overwritten per chunk, and the
//     probe's lineID reverse map is written for every way of a set
//     before any eviction in that set can read it — so unlike the
//     active tables of the words pool, these go back dirty.
//   - paired hit/core-write words (hcs [][2]uint64): all-zero at rest,
//     like active. The SoA tracker treats cw == 0 as "no open
//     residency" and every other column is gated by it, so
//     closeAliveSoA retiring survivors to a zero pair is what lets the
//     tracker's id/fill columns recycle dirty through the
//     cols/blks/bytes pools.
//
// Only blockState needs an explicit clear on reuse (the census values
// of the previous replay are meaningless for the next stream); that
// clear costs the same as the allocator's zeroing it replaces, and the
// faults and madvise calls are still saved.
//
// Arrays are grabbed best-fit by capacity and returned to the pool only
// on a replay's success path — an aborted replay abandons its scratch
// mid-invariant, and the pool never sees it. Result.FillShared is never
// pooled: it escapes into the returned Result. The pool retains at most
// scratchKeep entries per kind, so its footprint tracks one sweep's
// working set (the suite's largest workload), not the sum of history.

import (
	"sync"

	"sharellc/internal/cache"
	"sharellc/internal/mem"
)

// evictRetired marks a line slot whose survivor residency was already
// closed by closeAlive: the slot is dead for every later scan, unlike
// the public -1 ("alive at stream end") its logged copy keeps.
const evictRetired = -2

// scratchKeep bounds the retained entries per kind: enough for every
// lane of the widest sweep plus worker gather buffers.
const scratchKeep = 64

var scratch struct {
	mu    sync.Mutex
	lines [][]Residency
	words [][]uint32
	cols  [][]uint32
	blks  [][]uint64
	hcs   [][][2]uint64
	bytes [][]uint8
	halfs [][]uint16
	accs  [][]cache.AccessInfo
}

// grab returns a slice of length n from pool (best capacity fit), or a
// fresh huge-page-backed allocation on a miss. zero forces a clear of
// the reused prefix for arrays whose old content carries no reusable
// invariant (blockState). pool must be one of the scratch fields.
func grab[T any](pool *[][]T, n int, zero bool) []T {
	scratch.mu.Lock()
	best := -1
	for i, s := range *pool {
		if cap(s) >= n && (best < 0 || cap(s) < cap((*pool)[best])) {
			best = i
		}
	}
	var s []T
	if best >= 0 {
		last := len(*pool) - 1
		s = (*pool)[best][:n]
		(*pool)[best] = (*pool)[last]
		(*pool)[last] = nil
		*pool = (*pool)[:last]
	}
	scratch.mu.Unlock()
	if s == nil {
		s = make([]T, n)
		mem.Hugepages(s)
		return s
	}
	if zero {
		clear(s)
	}
	return s
}

// put returns a slice to pool, restored to full capacity so a later
// grab sees everything the allocation can hold. Call only when the
// replay that used it finished cleanly (see the package comment).
func put[T any](pool *[][]T, s []T) {
	if cap(s) == 0 {
		return
	}
	scratch.mu.Lock()
	if len(*pool) < scratchKeep {
		*pool = append(*pool, s[:cap(s)])
	}
	scratch.mu.Unlock()
}
