// Package sharing implements the paper's characterization substrate: it
// replays an LLC reference stream through a cache under a chosen
// replacement policy and tracks, for every block *residency* (fill →
// eviction), which cores touched the block while it was resident.
//
// A residency is **shared** when at least two distinct cores access the
// block at the LLC during the residency (the fill access counts); it is
// **private** otherwise. This is the classification the paper uses to
// split LLC hit volume into shared and private contributions and to define
// the target of the fill-time sharing oracle and predictors.
//
// The replay engine keys every per-block structure by the dense
// cache.AccessInfo.BlockID instead of hashing the sparse 64-bit block
// number, so the hot loop indexes flat slices. For per-set-independent
// policies ReplayParallel additionally shards the stream by LLC set index
// and replays the shards concurrently, merging into a result bit-identical
// to the sequential Replay.
package sharing

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sort"

	"sharellc/internal/cache"
	"sharellc/internal/mem"
)

// Residency records one block's stay in the LLC.
// Field order packs the struct into exactly 64 bytes (one cache line):
// the replay's hot path loads and stores millions of Residencies at
// random line indices, and at 64 bytes each such touch costs one cache
// line instead of the two a padded layout straddles.
type Residency struct {
	Block      uint64
	FillIndex  int64  // stream index of the access that filled the block
	FillPC     uint64 // PC that triggered the fill
	Hits       uint64 // hits received during the residency
	EvictIndex int64  // stream index of the evicting access, or -1 if alive at stream end
	coreMask   [2]uint64
	id         uint32 // dense BlockID of Block within the replayed stream
	FillCore   uint8  // core that triggered the fill
	written    bool   // any store touched the residency (fill included)
	Predicted  bool   // the PredictShared hint attached at fill time
}

// addCore marks core as having touched the residency.
func (r *Residency) addCore(core uint8) {
	r.coreMask[core>>6] |= 1 << (core & 63)
}

// Written reports whether any access of the residency was a store. A
// shared residency with Written is read-write (communication) sharing; a
// shared residency without is read-only sharing.
func (r Residency) Written() bool { return r.written }

// Degree returns the number of distinct cores that accessed the block
// during the residency (at least 1: the filler).
func (r Residency) Degree() int {
	return bits.OnesCount64(r.coreMask[0]) + bits.OnesCount64(r.coreMask[1])
}

// Shared reports whether the residency was accessed by ≥ 2 distinct cores.
func (r Residency) Shared() bool { return r.Degree() >= 2 }

// Evicted reports whether the residency ended by eviction rather than by
// the stream running out.
func (r Residency) Evicted() bool { return r.EvictIndex >= 0 }

// MakeResidency constructs a synthetic residency of block, filled by PC
// fillPC on core 0 and touched by degree distinct cores (clamped to
// [1,128]). It exists so predictor training and tests can fabricate
// ground-truth outcomes without running a replay.
func MakeResidency(block, fillPC uint64, degree int) Residency {
	if degree < 1 {
		degree = 1
	}
	if degree > 128 {
		degree = 128
	}
	r := Residency{Block: block, FillPC: fillPC, EvictIndex: -1}
	for c := 0; c < degree; c++ {
		r.addCore(uint8(c))
	}
	return r
}

// MakeWrittenResidency is MakeResidency with the store bit set.
func MakeWrittenResidency(block, fillPC uint64, degree int) Residency {
	r := MakeResidency(block, fillPC, degree)
	r.written = true
	return r
}

// Hooks lets callers observe and steer the replay. Either field may be nil.
type Hooks struct {
	// PredictShared is consulted at fill time; its result is attached to
	// the fill access as cache.AccessInfo.PredictedShared (the input of
	// the sharing-aware protection wrapper) and recorded on the
	// residency for accuracy accounting.
	PredictShared func(a cache.AccessInfo) bool
	// OnResidencyEnd fires when a residency closes, either on eviction
	// or at end of stream. Predictors use it as their training signal.
	OnResidencyEnd func(r Residency)
	// OnAccess fires for every stream access, before the cache acts on
	// it. Observers that maintain their own per-block state (e.g. the
	// coherence directory feeding the coherence-assisted predictor) hang
	// off this hook.
	OnAccess func(a cache.AccessInfo)
}

// any reports whether at least one hook is installed. Hooks observe the
// replay in stream order, so their presence forces a sequential replay.
func (h Hooks) any() bool {
	return h.PredictShared != nil || h.OnResidencyEnd != nil || h.OnAccess != nil
}

// Options configures a Replay.
type Options struct {
	// KeepResidencies retains every closed residency in Result for
	// detailed offline analysis. Costs memory proportional to fills.
	KeepResidencies bool
	// Warmup is the number of leading accesses that are simulated (so
	// cache and predictor state warms up) but excluded from every
	// counter in Result — the standard discipline for sampled
	// simulation. Residencies are counted when they close at or after
	// the warmup boundary.
	Warmup int
	Hooks  Hooks

	// Shards bounds the parallelism of ReplayParallel and ReplayMulti:
	// 0 picks a worker count automatically (GOMAXPROCS, capped), 1
	// forces the plain sequential replay in ReplayParallel (a single
	// worker in ReplayMulti), and n > 1 allows up to n concurrent
	// workers (rounded down to a power of two and clamped to the set
	// count). It never affects results — the set-partition granularity
	// of the sharded walk is picked separately for cache locality (see
	// blockShards). Sequential Replay ignores it.
	Shards int

	// Ctx, when non-nil, makes the replay cancellable: the hot loop
	// polls Ctx.Err() every cancelStride accesses (per shard in the
	// parallel replay) and returns it, so a multi-second replay stops
	// within microseconds of cancellation. A nil Ctx replays to
	// completion. Partial counters from an aborted replay are discarded
	// by every caller, so cancellation cannot corrupt results.
	Ctx context.Context

	// Partitioner, when non-nil, supplies the counting-sort shard
	// partition of the stream (see PartitionIndex) for the requested
	// shard count instead of rebuilding it inside the replay. The
	// partition depends only on (stream, shard count), so one cached
	// instance serves every lane of every experiment on the same
	// stream; sim.Stream attaches exactly such a cache. A partitioner
	// returning a partition for the wrong shard count or stream length
	// is a programming error and fails the replay.
	Partitioner Partitioner

	// FillShared records the oracle bit vector Result.FillShared (one
	// bool per stream access). Off by default: the vector costs a
	// stream-length allocation per replayed lane and nothing in the
	// experiment pipeline consumes it — the oracle derives its hints
	// from the stream itself (oracle.SharedHints), not from a prior
	// replay's Result.
	FillShared bool

	// Kernel selects the fused-replay inner loop: the batched SoA
	// kernel (the zero value; see kernel.go) or the scalar per-access
	// walk, kept as the bisection escape hatch. Results are
	// bit-identical either way. It applies wherever the lane engine
	// runs (ReplayMulti and the sharded path of ReplayParallel);
	// sequential walks — plain Replay, hooked lanes, lanes wider than
	// the outcome encodings — are scalar by construction and ignore it.
	Kernel Kernel

	// Tracker selects the residency-tracker representation of the
	// batched lane walks: the SoA column tracker (the zero value; see
	// tracker.go) or the struct-slab tracker, kept as the bisection
	// escape hatch. Results are bit-identical either way. It applies
	// only where the batch kernel runs; scalar replays, sequential
	// lanes and streams whose cores exceed the packed core/write word
	// are struct-tracked regardless.
	Tracker Tracker

	// SIMD selects the data-parallel tier of the batched lane walks:
	// auto (the zero value; assembly kernels when the CPU has them,
	// portable SWAR otherwise), swar (force the cross-architecture
	// reference kernels), or off — the scalar PR 9 paths, kept as the
	// bisection escape hatch. Results are bit-identical across all
	// three. The SHARELLC_SIMD environment variable caps every replay's
	// tier without a rebuild (see EnableSIMD). Like Tracker, it applies
	// only where the batch kernel runs.
	SIMD SIMD

	// Cores, when positive, asserts that every access's Core is below
	// Cores. It only steers tracker selection (the SoA tracker needs
	// cores to fit its packed word), so a missing hint costs a
	// detection scan per replay, and a wrong low value would corrupt
	// sharing classification exactly like a wrong NumBlocks corrupts
	// indexing — sim.Stream records the true count and passes it here.
	// Zero means "unknown": the replay scans.
	Cores int

	// NumBlocks, when positive, asserts that the stream already carries
	// dense BlockIDs in [0, NumBlocks) (cache.AssignBlockIDs), letting
	// the replay skip the full-stream detection scan of
	// cache.EnsureBlockIDs — a measurable saving when many experiments
	// replay the same cached stream. sim.Stream records the count at
	// build time and passes it here. Zero means "unknown": the replay
	// scans and, if needed, annotates a copy. A wrong positive count is
	// a programming error: too small panics on the first out-of-range
	// ID (the per-block arrays are sized by it), too large only wastes
	// memory. Sequential Replay honours it too.
	NumBlocks int
}

// cancelStride is how many accesses a replay processes between context
// polls — frequent enough for sub-millisecond cancellation latency,
// rare enough (one atomic load per 8K accesses) to stay invisible in
// profiles. Must be a power of two.
const cancelStride = 1 << 13

// PredStats accumulates fill-time prediction outcomes against residency
// ground truth (positive class = shared).
type PredStats struct {
	TP, FP, TN, FN uint64
}

// Total returns the number of classified residencies.
func (p PredStats) Total() uint64 { return p.TP + p.FP + p.TN + p.FN }

// Accuracy returns (TP+TN)/total, or 0 when empty.
func (p PredStats) Accuracy() float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return float64(p.TP+p.TN) / float64(t)
}

// Precision returns TP/(TP+FP), or 0 when no positive predictions.
func (p PredStats) Precision() float64 {
	if p.TP+p.FP == 0 {
		return 0
	}
	return float64(p.TP) / float64(p.TP+p.FP)
}

// Recall returns TP/(TP+FN) — the fraction of truly shared residencies
// the predictor caught — or 0 when no positives exist.
func (p PredStats) Recall() float64 {
	if p.TP+p.FN == 0 {
		return 0
	}
	return float64(p.TP) / float64(p.TP+p.FN)
}

// Result aggregates one replay.
type Result struct {
	Policy   string
	Accesses uint64
	Hits     uint64
	Misses   uint64

	// Hit volume split by the final classification of the residency the
	// hit landed in (the paper's F1/F2 metric).
	SharedHits  uint64
	PrivateHits uint64

	// Residency population.
	Residencies       uint64
	SharedResidencies uint64

	// Shared residencies and their hits split by write behaviour:
	// read-only sharing (no store during the residency) vs. read-write
	// sharing (actively communicated data).
	ROSharedResidencies uint64
	RWSharedResidencies uint64
	ROSharedHits        uint64
	RWSharedHits        uint64

	// DegreeResidencies[d] counts residencies of sharing degree d;
	// DegreeHits[d] counts the hits those residencies received.
	// Index 0 is unused (degree starts at 1).
	DegreeResidencies []uint64
	DegreeHits        []uint64

	// Block-population view: distinct blocks seen at the LLC and the
	// subset that was shared in at least one residency.
	DistinctBlocks       uint64
	DistinctSharedBlocks uint64

	// FillShared[i] is true iff stream access i triggered a fill whose
	// residency became shared. This is the oracle's knowledge. Recorded
	// only with Options.FillShared; nil otherwise.
	FillShared []bool

	// Pred accumulates fill-time prediction outcomes when a
	// PredictShared hook was installed.
	Pred PredStats

	// Kept residencies (only with Options.KeepResidencies).
	ResidencyLog []Residency
}

// MissRate returns misses/accesses, or 0 for an empty stream.
func (r *Result) MissRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Accesses)
}

// SharedHitFraction returns the fraction of all hits that landed in
// shared residencies, or 0 when there were no hits.
func (r *Result) SharedHitFraction() float64 {
	if r.Hits == 0 {
		return 0
	}
	return float64(r.SharedHits) / float64(r.Hits)
}

// Block census states, kept in a flat per-BlockID array instead of the
// map[block]bool the tracker previously hashed into.
const (
	blockUnseen  = uint8(0)
	blockPrivate = uint8(1)
	blockShared  = uint8(2)
)

// replayState is the residency tracker behind Replay and each shard of
// ReplayParallel. All per-block structures are flat slices indexed by the
// dense BlockID or by the cache's (set, way) geometry; in the sharded
// replay the slices are shared between shards, whose index ranges are
// disjoint by construction (a block, and therefore its set and its ID,
// belongs to exactly one shard).
type replayState struct {
	res *Result

	// lines shadows the cache's line array (sets*ways, row-major by
	// set): lines[set*ways+way] is the open residency of the block
	// currently cached there.
	lines []Residency
	// active maps BlockID → 1 + its line index while the block is
	// resident; 0 means not resident.
	active []uint32
	// blockState is the block census: blockUnseen, blockPrivate (seen,
	// never shared) or blockShared (shared in ≥1 residency).
	blockState []uint8
	// cols, when non-nil, is the lane's SoA residency tracker and
	// replaces lines entirely (see tracker.go); only batched lane walks
	// set it.
	cols *soaCols

	warmup  int64
	hooks   Hooks
	hadPred bool
	keep    bool
	ctx     context.Context // nil = not cancellable
}

// closeRes finalizes a residency at evictIndex (-1 = alive at stream end)
// and folds it into the counters.
func (st *replayState) closeRes(r *Residency, evictIndex int64) {
	res := st.res
	r.EvictIndex = evictIndex
	deg := r.Degree()
	shared := deg >= 2
	if shared {
		// FillShared and the block census stay complete even for
		// warmup residencies: the oracle and block-population view
		// are stream properties, not sampled statistics.
		if res.FillShared != nil {
			res.FillShared[r.FillIndex] = true
		}
		st.blockState[r.id] = blockShared
	} else if st.blockState[r.id] == blockUnseen {
		st.blockState[r.id] = blockPrivate
	}
	counted := evictIndex < 0 || evictIndex >= st.warmup
	if !counted {
		if st.hooks.OnResidencyEnd != nil {
			st.hooks.OnResidencyEnd(*r)
		}
		return
	}
	res.Residencies++
	res.DegreeResidencies[deg]++
	res.DegreeHits[deg] += r.Hits
	if shared {
		res.SharedResidencies++
		res.SharedHits += r.Hits
		if r.written {
			res.RWSharedResidencies++
			res.RWSharedHits += r.Hits
		} else {
			res.ROSharedResidencies++
			res.ROSharedHits += r.Hits
		}
	} else {
		res.PrivateHits += r.Hits
	}
	if st.hadPred {
		switch {
		case r.Predicted && shared:
			res.Pred.TP++
		case r.Predicted && !shared:
			res.Pred.FP++
		case !r.Predicted && shared:
			res.Pred.FN++
		default:
			res.Pred.TN++
		}
	}
	if st.hooks.OnResidencyEnd != nil {
		st.hooks.OnResidencyEnd(*r)
	}
	if st.keep {
		res.ResidencyLog = append(res.ResidencyLog, *r)
	}
}

// step advances the tracker by one access: hook dispatch, hit/fill
// bookkeeping and residency maintenance. a points into the caller's
// stream and is never written through — a fused sweep calls step once
// per lane per access, so the multi-word record travels by reference;
// when a fill-time prediction must be attached, it is attached to a
// local copy before that copy reaches the cache. It is the shared
// per-access body of the sequential replay, the shard workers and the
// fused multi-lane replay (ReplayMulti).
//
// step reports whether the access hit but does not touch the
// aggregate Accesses/Hits/Misses counters: those are three dependent
// read-modify-writes through the heap per access, so every caller
// accumulates them in register-resident locals and flushes once per
// loop (flushCounts) — same sums, no per-access store traffic. The
// per-residency Hits counter stays here: it is residency state, not an
// aggregate.
func (st *replayState) step(llc *cache.SetAssoc, ways int, a *cache.AccessInfo) (bool, error) {
	if st.hooks.OnAccess != nil {
		st.hooks.OnAccess(*a)
	}
	counting := a.Index >= st.warmup
	id := a.BlockID
	if li := st.active[id]; li != 0 {
		r := &st.lines[li-1]
		// The tracker already knows this is a hit and exactly which
		// (set, way) holds the block, so the policy is notified
		// directly and the cache's tag scan — a redundant dependent
		// load at a random set index, on the majority path of every
		// replay — is skipped. The skipped llc.Access would only have
		// re-derived the same (set, way) and updated state that is
		// not observable through Result: the LLC's own hit counters
		// and the line dirty bit (dirtiness feeds writeback modelling
		// in the private hierarchy, not the policy study). The miss
		// path trusts the tracker symmetrically (cache.FillRef skips
		// the tag scan re-confirming absence); what remains checked
		// every eviction is that the cache's victim matches the
		// tracker's open residency for that line.
		// SetOf is a mask of the block address — recovering the set from
		// li would be a hardware divide by the runtime ways value, on the
		// majority path of every lane-step.
		set := llc.SetOf(a.Block)
		llc.Policy().Hit(set, int(li-1)-set*ways, a)
		if counting {
			r.Hits++
		}
		r.addCore(a.Core)
		if a.Write {
			r.written = true
		}
		return true, nil
	}
	pred := a.PredictedShared
	var out cache.Result
	if st.hadPred {
		pred = st.hooks.PredictShared(*a)
		ac := *a
		ac.PredictedShared = pred
		out = llc.FillRef(&ac)
	} else {
		out = llc.FillRef(a)
	}
	li := out.Set*ways + out.Way
	if out.Evicted {
		victim := &st.lines[li]
		if victim.Block != out.Victim || st.active[victim.id] != uint32(li+1) {
			return false, fmt.Errorf("sharing: evicted block %d has no tracked residency", out.Victim)
		}
		st.active[victim.id] = 0
		st.closeRes(victim, a.Index)
	}
	st.lines[li] = Residency{
		Block:      a.Block,
		FillIndex:  a.Index,
		FillCore:   a.Core,
		FillPC:     a.PC,
		id:         id,
		written:    a.Write,
		Predicted:  pred,
		EvictIndex: -1,
	}
	st.lines[li].addCore(a.Core)
	st.active[id] = uint32(li + 1)
	return false, nil
}

// flushCounts folds a caller's per-loop access/hit accumulators into
// the aggregate result counters — the once-per-loop counterpart of the
// per-access counting that step and stepLogged no longer do.
func (st *replayState) flushCounts(accesses, hits uint64) {
	st.res.Accesses += accesses
	st.res.Hits += hits
	st.res.Misses += accesses - hits
}

// stepLogged advances the tracker by one access whose cache outcome was
// already recorded by a policy pass (see runPolicyPass in multi.go): b
// encodes the way plus hit/evicted flags, so the tracker needs neither
// the cache nor the policy — exactly the state split that lets the
// tracker half of a cross-set-policy lane replay set-shard by set-shard
// while the policy half runs in stream order. Two-phase lanes never
// carry hooks or fill-time predictions (a prediction would feed back
// into the walk that produced the log), so the hook dispatch of step is
// absent, and the tracker-vs-cache cross-checks become tracker-vs-log
// checks in both directions. Like step it reports the hit and leaves
// the aggregate counters to the caller's flushCounts.
func (st *replayState) stepLogged(b uint8, setMask uint64, ways int, a *cache.AccessInfo) (bool, error) {
	counting := a.Index >= st.warmup
	id := a.BlockID
	li := st.active[id]
	if b&logHit != 0 {
		if li == 0 {
			return false, fmt.Errorf("sharing: policy pass hit block %d the tracker has as absent", a.Block)
		}
		r := &st.lines[li-1]
		if counting {
			r.Hits++
		}
		r.addCore(a.Core)
		if a.Write {
			r.written = true
		}
		return true, nil
	}
	if li != 0 {
		return false, fmt.Errorf("sharing: policy pass missed block %d the tracker has as resident", a.Block)
	}
	idx := int(a.Block&setMask)*ways + int(b&logWayMask)
	if b&logEvict != 0 {
		victim := &st.lines[idx]
		if st.active[victim.id] != uint32(idx+1) {
			return false, fmt.Errorf("sharing: evicted line (set %d way %d) holds no tracked residency", idx/ways, idx%ways)
		}
		st.active[victim.id] = 0
		st.closeRes(victim, a.Index)
	}
	st.lines[idx] = Residency{
		Block:      a.Block,
		FillIndex:  a.Index,
		FillCore:   a.Core,
		FillPC:     a.PC,
		id:         id,
		written:    a.Write,
		Predicted:  a.PredictedShared,
		EvictIndex: -1,
	}
	st.lines[idx].addCore(a.Core)
	st.active[id] = uint32(idx + 1)
	return false, nil
}

// run replays accesses through llc. With order == nil the whole stream is
// replayed in place (validating the Index invariant); otherwise only the
// stream positions listed in order are replayed, in that order — the
// shard path, whose caller has already validated indices.
func (st *replayState) run(llc *cache.SetAssoc, stream []cache.AccessInfo, order []int32) error {
	ways := llc.Ways()
	n := len(stream)
	if order != nil {
		n = len(order)
	}
	var acc, hits uint64
	for k := 0; k < n; k++ {
		if st.ctx != nil && k&(cancelStride-1) == 0 {
			if err := st.ctx.Err(); err != nil {
				return err
			}
		}
		i := k
		if order != nil {
			i = int(order[k])
		}
		if order == nil && stream[i].Index != int64(i) {
			return fmt.Errorf("sharing: stream index %d at position %d; use cache.FilterStream ordering", stream[i].Index, i)
		}
		hit, err := st.step(llc, ways, &stream[i])
		if err != nil {
			return err
		}
		if stream[i].Index >= st.warmup {
			acc++
			if hit {
				hits++
			}
		}
	}
	st.flushCounts(acc, hits)
	return nil
}

// closeAlive closes residencies still alive at stream end. It scans
// only the caller's own set range (sets ≡ shard mod shards; the
// sequential replay passes shards=1 to scan everything): in the sharded
// replay other shards may still be replaying, so reading any state
// outside the range would race. A line holds an open residency iff its
// EvictIndex is -1 — closed residencies are immediately overwritten by
// the fill that evicted them, and never-filled lines hold the zero value.
//
// Closure order is observable only through the OnResidencyEnd hook and
// the kept residency log (counters are order-independent sums, FillShared
// writes are per-residency, and the block census transitions are sticky),
// so only those replays pay for sorting the survivors into fill order.
// At stream end the survivors are the cache's full occupancy — sorting
// them for every (lane, shard) of a sweep is measurable.
//
// After closing, each survivor's slot is retired (EvictIndex set to
// evictRetired — the logged/hooked copies keep the public -1 "alive at
// stream end" value) and its active entry cleared. That restores the
// scratch invariants the pool relies on (see scratch.go): no line slot
// claims an open residency and the active table is all zero, so both
// arrays can seed the next replay without a clearing pass.
func (st *replayState) closeAlive(sets, ways, shards, shard int) {
	if st.cols != nil {
		st.closeAliveSoA(sets, ways, shards, shard)
		return
	}
	alive := make([]*Residency, 0, 64)
	for set := shard; set < sets; set += shards {
		base := set * ways
		for w := 0; w < ways; w++ {
			if r := &st.lines[base+w]; r.EvictIndex == -1 {
				alive = append(alive, r)
			}
		}
	}
	if st.keep || st.hooks.OnResidencyEnd != nil {
		sort.Slice(alive, func(i, j int) bool { return alive[i].FillIndex < alive[j].FillIndex })
	}
	for _, r := range alive {
		st.closeRes(r, -1)
		st.active[r.id] = 0
		r.EvictIndex = evictRetired
	}
}

// census folds the block-population view of blockState into res.
func census(res *Result, blockState []uint8) {
	for _, s := range blockState {
		if s == blockUnseen {
			continue
		}
		res.DistinctBlocks++
		if s == blockShared {
			res.DistinctSharedBlocks++
		}
	}
}

// maxDegree bounds the degree histograms (the paper's machine models top
// out at far fewer cores; 128 matches the Residency core mask width).
const maxDegree = 128

// newResult builds an empty Result; fillLen > 0 (the stream length,
// when Options.FillShared is set) additionally allocates the oracle bit
// vector.
func newResult(policy string, fillLen int) *Result {
	res := &Result{
		Policy:            policy,
		DegreeResidencies: make([]uint64, maxDegree+1),
		DegreeHits:        make([]uint64, maxDegree+1),
	}
	if fillLen > 0 {
		res.FillShared = make([]bool, fillLen)
	}
	return res
}

// fillLen is the FillShared vector length a replay of stream should
// allocate under opt: the stream length when recording is on, else 0
// (leave Result.FillShared nil).
func fillLen(opt Options, stream []cache.AccessInfo) int {
	if opt.FillShared {
		return len(stream)
	}
	return 0
}

// ensureBlockIDs resolves the stream's dense-ID annotation: an
// Options.NumBlocks assertion skips the detection scan entirely,
// otherwise cache.EnsureBlockIDs scans (and annotates a copy if the
// stream was hand-built).
func ensureBlockIDs(stream []cache.AccessInfo, opt Options) ([]cache.AccessInfo, int) {
	if opt.NumBlocks > 0 {
		return stream, opt.NumBlocks
	}
	return cache.EnsureBlockIDs(stream)
}

// Replay runs stream through a fresh cache of llcSize bytes and llcWays
// associativity under policy p, tracking residencies.
//
// The stream must have contiguous Index values starting at 0 (as produced
// by cache.FilterStream); Replay validates this because the oracle keys
// its knowledge by stream index. Streams whose BlockIDs were never
// assigned (hand-built, or filtered without annotation) are copied and
// assigned on the fly; streams from the standard pipeline replay with no
// extra pass.
func Replay(stream []cache.AccessInfo, llcSize, llcWays int, p cache.Policy, opt Options) (*Result, error) {
	llc, err := cache.NewSetAssoc(llcSize, llcWays, p)
	if err != nil {
		return nil, err
	}
	stream, numBlocks := ensureBlockIDs(stream, opt)
	res := newResult(p.Name(), fillLen(opt, stream))
	st := &replayState{
		res:        res,
		lines:      grab(&scratch.lines, llc.Sets()*llc.Ways(), false),
		active:     grab(&scratch.words, numBlocks, false),
		blockState: grab(&scratch.bytes, numBlocks, true),
		warmup:     int64(opt.Warmup),
		hooks:      opt.Hooks,
		hadPred:    opt.Hooks.PredictShared != nil,
		keep:       opt.KeepResidencies,
		ctx:        opt.Ctx,
	}
	mem.Hugepages(res.FillShared)
	if err := st.run(llc, stream, nil); err != nil {
		return nil, err
	}
	st.closeAlive(llc.Sets(), llc.Ways(), 1, 0)
	census(res, st.blockState)
	put(&scratch.lines, st.lines)
	put(&scratch.words, st.active)
	put(&scratch.bytes, st.blockState)
	return res, nil
}

// autoShards picks the automatic shard count for ReplayParallel: one
// worker per available CPU (capped), and none at all for streams too
// short to amortize the partitioning pass.
func autoShards(streamLen int) int {
	if streamLen < 1<<15 {
		return 1
	}
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	return n
}

// floorPow2 rounds n down to a power of two (n must be ≥ 1).
func floorPow2(n int) int {
	for n&(n-1) != 0 {
		n &= n - 1
	}
	return n
}

// resolveShards turns an Options.Shards request into the effective
// worker count for a replay over streamLen accesses against a cache
// with sets sets: 0 picks automatically, and the result is clamped to
// the set count and rounded down to a power of two. It is the single
// clamping rule shared by ReplayParallel and ReplayMulti (sequential
// Replay has nothing to clamp), so the two entry points can never
// disagree about what a shard request means.
func resolveShards(streamLen, sets int, opt Options) int {
	shards := opt.Shards
	if shards == 0 {
		shards = autoShards(streamLen)
	}
	if shards > sets {
		shards = sets
	}
	if shards > 1 {
		shards = floorPow2(shards)
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// ReplayParallel is Replay with intra-workload parallelism: when the
// policy built by newPolicy declares itself per-set independent (see
// cache.PerSetIndependent) and no hooks are installed, the stream is
// partitioned by LLC set index into 2^k shards (set bits are block bits,
// so shard s owns exactly the blocks with block & (shards-1) == s), each
// shard is replayed concurrently against its own cache and policy
// instance, and the per-shard results are merged deterministically. The
// merged Result is bit-identical to the sequential Replay: per-set
// policies see the same per-set access sequences either way, counters are
// order-independent sums, and the residency log is re-sorted into the
// sequential closure order (evictions by evicting index, then
// stream-end survivors by fill index — an access closes at most one
// residency, so the order is total).
//
// Policies with cross-set state (set dueling, shared RNG draws, global
// prediction tables) and replays with hooks fall back to the sequential
// path, as does Shards == 1 — the documented way to request the plain
// sequential replay, which the differential tests use as the reference
// implementation. Any other setting routes through the lane engine,
// which picks the set-partition granularity for cache locality on its
// own (a long replay is sharded even when only one worker runs, because
// walking the stream shard by shard keeps 1/P of the model state
// resident instead of all of it; see replayLanes).
func ReplayParallel(stream []cache.AccessInfo, llcSize, llcWays int, newPolicy func() cache.Policy, opt Options) (*Result, error) {
	sets, err := cache.Geometry(llcSize, llcWays)
	if err != nil {
		return nil, err
	}
	p := newPolicy()
	if opt.Shards == 1 || opt.Hooks.any() || !cache.PerSetIndependent(p) {
		return Replay(stream, llcSize, llcWays, p, opt)
	}
	l := &lane{
		cfg:       LLCConfig{Size: llcSize, Ways: llcWays, NewPolicy: newPolicy},
		sets:      sets,
		inst:      p,
		shardable: true,
	}
	if err := replayLanes(stream, []*lane{l}, resolveShards(len(stream), sets, opt), opt); err != nil {
		return nil, err
	}
	return l.result, nil
}

// mergeLane folds the per-shard partial results of one lane into its
// final Result, bit-identical to the sequential replay: counters are
// order-independent sums, the block census comes from the shared
// blockState array, and the residency log is re-sorted into the
// sequential closure order (evictions by evicting index, then
// stream-end survivors by fill index — an access closes at most one
// residency, so the order is total).
func mergeLane(policyName string, fillShared []bool, parts []*Result, blockState []uint8, keep bool) *Result {
	merged := newResult(policyName, 0)
	merged.FillShared = fillShared
	for _, r := range parts {
		merged.Accesses += r.Accesses
		merged.Hits += r.Hits
		merged.Misses += r.Misses
		merged.SharedHits += r.SharedHits
		merged.PrivateHits += r.PrivateHits
		merged.Residencies += r.Residencies
		merged.SharedResidencies += r.SharedResidencies
		merged.ROSharedResidencies += r.ROSharedResidencies
		merged.RWSharedResidencies += r.RWSharedResidencies
		merged.ROSharedHits += r.ROSharedHits
		merged.RWSharedHits += r.RWSharedHits
		for d := range r.DegreeResidencies {
			merged.DegreeResidencies[d] += r.DegreeResidencies[d]
			merged.DegreeHits[d] += r.DegreeHits[d]
		}
		merged.ResidencyLog = append(merged.ResidencyLog, r.ResidencyLog...)
	}
	census(merged, blockState)
	if keep {
		log := merged.ResidencyLog
		sort.Slice(log, func(i, j int) bool {
			ei, ej := log[i].EvictIndex, log[j].EvictIndex
			if (ei >= 0) != (ej >= 0) {
				return ei >= 0
			}
			if ei >= 0 {
				return ei < ej
			}
			return log[i].FillIndex < log[j].FillIndex
		})
	}
	return merged
}
