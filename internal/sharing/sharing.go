// Package sharing implements the paper's characterization substrate: it
// replays an LLC reference stream through a cache under a chosen
// replacement policy and tracks, for every block *residency* (fill →
// eviction), which cores touched the block while it was resident.
//
// A residency is **shared** when at least two distinct cores access the
// block at the LLC during the residency (the fill access counts); it is
// **private** otherwise. This is the classification the paper uses to
// split LLC hit volume into shared and private contributions and to define
// the target of the fill-time sharing oracle and predictors.
package sharing

import (
	"fmt"
	"math/bits"
	"sort"

	"sharellc/internal/cache"
)

// Residency records one block's stay in the LLC.
type Residency struct {
	Block      uint64
	FillIndex  int64  // stream index of the access that filled the block
	FillCore   uint8  // core that triggered the fill
	FillPC     uint64 // PC that triggered the fill
	Hits       uint64 // hits received during the residency
	coreMask   [2]uint64
	written    bool  // any store touched the residency (fill included)
	Predicted  bool  // the PredictShared hint attached at fill time
	EvictIndex int64 // stream index of the evicting access, or -1 if alive at stream end
}

// addCore marks core as having touched the residency.
func (r *Residency) addCore(core uint8) {
	r.coreMask[core>>6] |= 1 << (core & 63)
}

// Written reports whether any access of the residency was a store. A
// shared residency with Written is read-write (communication) sharing; a
// shared residency without is read-only sharing.
func (r Residency) Written() bool { return r.written }

// Degree returns the number of distinct cores that accessed the block
// during the residency (at least 1: the filler).
func (r Residency) Degree() int {
	return bits.OnesCount64(r.coreMask[0]) + bits.OnesCount64(r.coreMask[1])
}

// Shared reports whether the residency was accessed by ≥ 2 distinct cores.
func (r Residency) Shared() bool { return r.Degree() >= 2 }

// Evicted reports whether the residency ended by eviction rather than by
// the stream running out.
func (r Residency) Evicted() bool { return r.EvictIndex >= 0 }

// MakeResidency constructs a synthetic residency of block, filled by PC
// fillPC on core 0 and touched by degree distinct cores (clamped to
// [1,128]). It exists so predictor training and tests can fabricate
// ground-truth outcomes without running a replay.
func MakeResidency(block, fillPC uint64, degree int) Residency {
	if degree < 1 {
		degree = 1
	}
	if degree > 128 {
		degree = 128
	}
	r := Residency{Block: block, FillPC: fillPC, EvictIndex: -1}
	for c := 0; c < degree; c++ {
		r.addCore(uint8(c))
	}
	return r
}

// MakeWrittenResidency is MakeResidency with the store bit set.
func MakeWrittenResidency(block, fillPC uint64, degree int) Residency {
	r := MakeResidency(block, fillPC, degree)
	r.written = true
	return r
}

// Hooks lets callers observe and steer the replay. Either field may be nil.
type Hooks struct {
	// PredictShared is consulted at fill time; its result is attached to
	// the fill access as cache.AccessInfo.PredictedShared (the input of
	// the sharing-aware protection wrapper) and recorded on the
	// residency for accuracy accounting.
	PredictShared func(a cache.AccessInfo) bool
	// OnResidencyEnd fires when a residency closes, either on eviction
	// or at end of stream. Predictors use it as their training signal.
	OnResidencyEnd func(r Residency)
	// OnAccess fires for every stream access, before the cache acts on
	// it. Observers that maintain their own per-block state (e.g. the
	// coherence directory feeding the coherence-assisted predictor) hang
	// off this hook.
	OnAccess func(a cache.AccessInfo)
}

// Options configures a Replay.
type Options struct {
	// KeepResidencies retains every closed residency in Result for
	// detailed offline analysis. Costs memory proportional to fills.
	KeepResidencies bool
	// Warmup is the number of leading accesses that are simulated (so
	// cache and predictor state warms up) but excluded from every
	// counter in Result — the standard discipline for sampled
	// simulation. Residencies are counted when they close at or after
	// the warmup boundary.
	Warmup int
	Hooks  Hooks
}

// PredStats accumulates fill-time prediction outcomes against residency
// ground truth (positive class = shared).
type PredStats struct {
	TP, FP, TN, FN uint64
}

// Total returns the number of classified residencies.
func (p PredStats) Total() uint64 { return p.TP + p.FP + p.TN + p.FN }

// Accuracy returns (TP+TN)/total, or 0 when empty.
func (p PredStats) Accuracy() float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return float64(p.TP+p.TN) / float64(t)
}

// Precision returns TP/(TP+FP), or 0 when no positive predictions.
func (p PredStats) Precision() float64 {
	if p.TP+p.FP == 0 {
		return 0
	}
	return float64(p.TP) / float64(p.TP+p.FP)
}

// Recall returns TP/(TP+FN) — the fraction of truly shared residencies
// the predictor caught — or 0 when no positives exist.
func (p PredStats) Recall() float64 {
	if p.TP+p.FN == 0 {
		return 0
	}
	return float64(p.TP) / float64(p.TP+p.FN)
}

// Result aggregates one replay.
type Result struct {
	Policy   string
	Accesses uint64
	Hits     uint64
	Misses   uint64

	// Hit volume split by the final classification of the residency the
	// hit landed in (the paper's F1/F2 metric).
	SharedHits  uint64
	PrivateHits uint64

	// Residency population.
	Residencies       uint64
	SharedResidencies uint64

	// Shared residencies and their hits split by write behaviour:
	// read-only sharing (no store during the residency) vs. read-write
	// sharing (actively communicated data).
	ROSharedResidencies uint64
	RWSharedResidencies uint64
	ROSharedHits        uint64
	RWSharedHits        uint64

	// DegreeResidencies[d] counts residencies of sharing degree d;
	// DegreeHits[d] counts the hits those residencies received.
	// Index 0 is unused (degree starts at 1).
	DegreeResidencies []uint64
	DegreeHits        []uint64

	// Block-population view: distinct blocks seen at the LLC and the
	// subset that was shared in at least one residency.
	DistinctBlocks       uint64
	DistinctSharedBlocks uint64

	// FillShared[i] is true iff stream access i triggered a fill whose
	// residency became shared. This is the oracle's knowledge.
	FillShared []bool

	// Pred accumulates fill-time prediction outcomes when a
	// PredictShared hook was installed.
	Pred PredStats

	// Kept residencies (only with Options.KeepResidencies).
	ResidencyLog []Residency
}

// MissRate returns misses/accesses, or 0 for an empty stream.
func (r *Result) MissRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Accesses)
}

// SharedHitFraction returns the fraction of all hits that landed in
// shared residencies, or 0 when there were no hits.
func (r *Result) SharedHitFraction() float64 {
	if r.Hits == 0 {
		return 0
	}
	return float64(r.SharedHits) / float64(r.Hits)
}

// Replay runs stream through a fresh cache of llcSize bytes and llcWays
// associativity under policy p, tracking residencies.
//
// The stream must have contiguous Index values starting at 0 (as produced
// by cache.FilterStream); Replay validates this because the oracle keys
// its knowledge by stream index.
func Replay(stream []cache.AccessInfo, llcSize, llcWays int, p cache.Policy, opt Options) (*Result, error) {
	llc, err := cache.NewSetAssoc(llcSize, llcWays, p)
	if err != nil {
		return nil, err
	}
	maxDegree := 128
	res := &Result{
		Policy:            p.Name(),
		DegreeResidencies: make([]uint64, maxDegree+1),
		DegreeHits:        make([]uint64, maxDegree+1),
		FillShared:        make([]bool, len(stream)),
	}
	active := make(map[uint64]*Residency, llcSize/64)
	blockSeen := make(map[uint64]bool, 1<<16) // block → ever shared
	hadPred := opt.Hooks.PredictShared != nil

	closeRes := func(r *Residency, evictIndex int64) {
		r.EvictIndex = evictIndex
		shared := r.Shared()
		if shared {
			// FillShared and the block census stay complete even for
			// warmup residencies: the oracle and block-population view
			// are stream properties, not sampled statistics.
			res.FillShared[r.FillIndex] = true
			blockSeen[r.Block] = true
		} else if _, ok := blockSeen[r.Block]; !ok {
			blockSeen[r.Block] = false
		}
		counted := evictIndex < 0 || evictIndex >= int64(opt.Warmup)
		if !counted {
			if opt.Hooks.OnResidencyEnd != nil {
				opt.Hooks.OnResidencyEnd(*r)
			}
			return
		}
		res.Residencies++
		deg := r.Degree()
		res.DegreeResidencies[deg]++
		res.DegreeHits[deg] += r.Hits
		if shared {
			res.SharedResidencies++
			res.SharedHits += r.Hits
			if r.written {
				res.RWSharedResidencies++
				res.RWSharedHits += r.Hits
			} else {
				res.ROSharedResidencies++
				res.ROSharedHits += r.Hits
			}
		} else {
			res.PrivateHits += r.Hits
		}
		if hadPred {
			switch {
			case r.Predicted && shared:
				res.Pred.TP++
			case r.Predicted && !shared:
				res.Pred.FP++
			case !r.Predicted && shared:
				res.Pred.FN++
			default:
				res.Pred.TN++
			}
		}
		if opt.Hooks.OnResidencyEnd != nil {
			opt.Hooks.OnResidencyEnd(*r)
		}
		if opt.KeepResidencies {
			res.ResidencyLog = append(res.ResidencyLog, *r)
		}
	}

	for i := range stream {
		a := stream[i]
		if a.Index != int64(i) {
			return nil, fmt.Errorf("sharing: stream index %d at position %d; use cache.FilterStream ordering", a.Index, i)
		}
		if opt.Hooks.OnAccess != nil {
			opt.Hooks.OnAccess(a)
		}
		counting := i >= opt.Warmup
		if counting {
			res.Accesses++
		}
		if r, ok := active[a.Block]; ok {
			// Hit path mirrors the cache's own lookup; assert agreement.
			out := llc.Access(a)
			if !out.Hit {
				return nil, fmt.Errorf("sharing: tracker and cache disagree: block %d tracked resident but missed", a.Block)
			}
			if counting {
				res.Hits++
				r.Hits++
			}
			r.addCore(a.Core)
			if a.Write {
				r.written = true
			}
			continue
		}
		if hadPred {
			a.PredictedShared = opt.Hooks.PredictShared(a)
		}
		out := llc.Access(a)
		if out.Hit {
			return nil, fmt.Errorf("sharing: tracker and cache disagree: block %d untracked but hit", a.Block)
		}
		if counting {
			res.Misses++
		}
		if out.Evicted {
			victim, ok := active[out.Victim]
			if !ok {
				return nil, fmt.Errorf("sharing: evicted block %d has no tracked residency", out.Victim)
			}
			closeRes(victim, int64(i))
			delete(active, out.Victim)
		}
		nr := &Residency{
			Block:      a.Block,
			FillIndex:  int64(i),
			FillCore:   a.Core,
			FillPC:     a.PC,
			written:    a.Write,
			Predicted:  a.PredictedShared,
			EvictIndex: -1,
		}
		nr.addCore(a.Core)
		active[a.Block] = nr
	}
	// Close residencies still alive at stream end, in fill order so hook
	// invocation and the residency log stay deterministic (map iteration
	// order is not).
	alive := make([]*Residency, 0, len(active))
	for _, r := range active {
		alive = append(alive, r)
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].FillIndex < alive[j].FillIndex })
	for _, r := range alive {
		closeRes(r, -1)
	}
	for _, shared := range blockSeen {
		res.DistinctBlocks++
		if shared {
			res.DistinctSharedBlocks++
		}
	}
	return res, nil
}
