package sharing

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"sharellc/internal/cache"
)

func TestParseSIMD(t *testing.T) {
	for s, want := range map[string]SIMD{"auto": SIMDAuto, "swar": SIMDSWAR, "off": SIMDOff} {
		v, err := ParseSIMD(s)
		if err != nil || v != want {
			t.Errorf("ParseSIMD(%q) = %v, %v; want %v", s, v, err, want)
		}
		if v.String() != s {
			t.Errorf("SIMD(%v).String() = %q, want %q", v, v.String(), s)
		}
	}
	_, err := ParseSIMD("avx2")
	if err == nil {
		t.Fatal("ParseSIMD accepted an unknown tier")
	}
	for _, want := range []string{"avx2", "auto", "swar", "off"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("ParseSIMD error %q does not mention %q", err, want)
		}
	}
}

// simdTiersAgree replays stream through configs at every SIMD tier —
// off (the PR 9 scalar paths, the reference), swar and auto — and
// demands byte-equal Results across all three.
func simdTiersAgree(t *testing.T, stream []cache.AccessInfo, configs []LLCConfig, opt Options) {
	t.Helper()
	optRef := opt
	optRef.Kernel, optRef.SIMD = KernelBatch, SIMDOff
	ref, err := ReplayMulti(stream, configs, optRef)
	if err != nil {
		t.Fatal(err)
	}
	for _, tier := range []SIMD{SIMDSWAR, SIMDAuto} {
		optT := opt
		optT.Kernel, optT.SIMD = KernelBatch, tier
		got, err := ReplayMulti(stream, configs, optT)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if !reflect.DeepEqual(got[i], ref[i]) {
				t.Errorf("config %d (%s @ %d ways), tier %v: result differs from scalar\ngot: %+v\nref: %+v",
					i, configs[i].NewPolicy().Name(), configs[i].Ways, tier, got[i], ref[i])
			}
		}
	}
}

// TestSIMDTiersBitIdentical replays every experiment family — the full
// policy catalogue (shardable and two-phase lanes), a hooked lane and
// the 128-way sequential fallback — at all three SIMD tiers and both
// tracker representations, and demands byte-equal Results at both
// detail demands.
func TestSIMDTiersBitIdentical(t *testing.T) {
	stream := synthStream(40000, 3000, 8, 21)
	var hooks int
	configs := batchTestConfigs(t, 64*cache.KB, 8, &hooks)
	for _, tr := range []Tracker{TrackerSoA, TrackerStruct} {
		simdTiersAgree(t, stream, configs, Options{Tracker: tr, KeepResidencies: true, Warmup: 500, FillShared: true, Shards: 4})
		simdTiersAgree(t, stream, configs, Options{Tracker: tr, Warmup: 500, Shards: 4})
	}
}

// TestSIMDEnvCap pins the EnableSIMD cap (the SHARELLC_SIMD escape
// hatch): with the cap at off, a SIMDAuto replay runs the scalar paths
// and still produces identical Results; the cap never lowers an
// already-stricter option.
func TestSIMDEnvCap(t *testing.T) {
	if SIMD(simdCap.Load()) != SIMDAuto {
		t.Skip("SHARELLC_SIMD set in the environment")
	}
	stream := synthStream(20000, 1500, 8, 23)
	var hooks int
	configs := batchTestConfigs(t, 32*cache.KB, 8, &hooks)[:2]
	opt := Options{KeepResidencies: true, Warmup: 100, Shards: 4, Kernel: KernelBatch}
	auto, err := ReplayMulti(stream, configs, opt)
	if err != nil {
		t.Fatal(err)
	}
	prev := EnableSIMD(SIMDOff)
	defer EnableSIMD(prev)
	if got := resolveSIMD(SIMDAuto); got != nil {
		t.Fatal("cap off: resolveSIMD(auto) still returned kernels")
	}
	if got := resolveSIMD(SIMDSWAR); got != nil {
		t.Fatal("cap off: resolveSIMD(swar) still returned kernels")
	}
	capped, err := ReplayMulti(stream, configs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range auto {
		if !reflect.DeepEqual(auto[i], capped[i]) {
			t.Errorf("config %d: capped-off replay differs from auto replay", i)
		}
	}
	EnableSIMD(SIMDSWAR)
	if got := resolveSIMD(SIMDOff); got != nil {
		t.Fatal("cap swar: resolveSIMD(off) returned kernels (cap must not raise the tier)")
	}
	if got := resolveSIMD(SIMDAuto); got != &swarOps {
		t.Fatal("cap swar: resolveSIMD(auto) did not return the SWAR kernels")
	}
}

// closeDrainScratch builds a batchScratch holding n synthetic captured
// evictions drawn from rng over numBlocks blocks, shared by both drain
// paths under test.
func closeDrainScratch(rng *rand.Rand, n, numBlocks int) *batchScratch {
	bs := &batchScratch{
		ecw:        make([]uint64, batchSize),
		ehits:      make([]uint64, batchSize),
		eid:        make([]uint32, batchSize),
		eidx:       make([]uint64, batchSize),
		efill:      make([]uint64, batchSize),
		eblk:       make([]uint64, batchSize),
		epc:        make([]uint64, batchSize),
		emeta:      make([]uint8, batchSize),
		cw:         make([]uint64, batchSize),
		edeg:       make([]uint8, batchSize),
		eord:       make([]uint16, batchSize),
		ops:        &swarOps,
		closeShift: closeShiftFor(numBlocks),
	}
	for k := 0; k < n; k++ {
		// Core/write words with 0–3 core bits (degrees 0..3 cover the
		// private/shared and RO/RW branches) plus a random store flag.
		var cw uint64
		for b := rng.Intn(4); b > 0; b-- {
			cw |= uint64(1) << rng.Intn(soaMaxCores)
		}
		if rng.Intn(2) == 1 {
			cw |= cwWritten
		}
		bs.ecw[k] = cw
		bs.ehits[k] = uint64(rng.Intn(100))
		bs.eid[k] = uint32(rng.Intn(numBlocks))
		bs.eidx[k] = uint64(rng.Intn(4000))
		bs.efill[k] = uint64(rng.Intn(4000))
		bs.eblk[k] = rng.Uint64()
		bs.epc[k] = rng.Uint64()
		bs.emeta[k] = uint8(rng.Intn(64)) | uint8(rng.Intn(2))<<7
	}
	return bs
}

// closeDrainState builds a replayState with a fresh result and block
// census for the drain comparison.
func closeDrainState(numBlocks, fill int, warmup uint64, keep bool) *replayState {
	return &replayState{
		res:        newResult("drain", fill),
		blockState: make([]uint8, numBlocks),
		warmup:     int64(warmup),
		keep:       keep,
	}
}

// FuzzCloseDrain fuzzes the batched close drain directly against the
// inline flushClosed on identical capture columns: entry counts at and
// around the chunk boundary (zero evictions, a full chunk of them),
// census sizes straddling the bucket-shift boundary, warmup splitting
// the entries, and both detail demands. Counters, census bytes,
// FillShared marks and residency logs must come out identical — the
// bucket permutation must be invisible.
func FuzzCloseDrain(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint64(1), false)
	f.Add(uint16(1), uint16(0), uint64(2), true)
	f.Add(uint16(batchSize), uint16(2000), uint64(3), false)
	f.Add(uint16(batchSize-1), uint16(4000), uint64(4), true)
	f.Add(uint16(100), uint16(50), uint64(5), false)
	f.Fuzz(func(t *testing.T, nRaw, warmup uint16, seed uint64, keep bool) {
		n := int(nRaw)
		if n > batchSize {
			n = batchSize
		}
		for _, numBlocks := range []int{closeBuckets - 1, closeBuckets * 40} {
			rng := rand.New(rand.NewSource(int64(seed)))
			bs := closeDrainScratch(rng, n, numBlocks)
			ref := closeDrainState(numBlocks, 4000, uint64(warmup), keep)
			got := closeDrainState(numBlocks, 4000, uint64(warmup), keep)
			ref.flushClosed(bs, n)
			got.flushClosedBatched(bs, n)
			if !reflect.DeepEqual(ref.res, got.res) {
				t.Errorf("numBlocks=%d n=%d keep=%v: batched drain result differs\nref: %+v\ngot: %+v",
					numBlocks, n, keep, ref.res, got.res)
			}
			if !reflect.DeepEqual(ref.blockState, got.blockState) {
				t.Errorf("numBlocks=%d n=%d: batched drain census differs", numBlocks, n)
			}
		}
	})
}
