package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text trace format: one access per line,
//
//	<core> <R|W> <pc-hex> <addr-hex>
//
// e.g. "3 W 0x401a2c 0x7ffe9040". Lines starting with '#' and blank lines
// are ignored. The format is meant for interoperability with external
// tools and for hand-written test fixtures; the binary codec (codec.go)
// is ~10x smaller and faster.

// WriteText drains r into w in the text trace format and returns the
// number of accesses written.
func WriteText(w io.Writer, r Reader) (uint64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n uint64
	for {
		a, ok := r.Next()
		if !ok {
			break
		}
		op := byte('R')
		if a.Write {
			op = 'W'
		}
		if _, err := fmt.Fprintf(bw, "%d %c %#x %#x\n", a.Core, op, a.PC, uint64(a.Addr)); err != nil {
			return n, err
		}
		n++
	}
	if err := r.Err(); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// TextReader decodes the text trace format.
type TextReader struct {
	sc   *bufio.Scanner
	line int
	err  error
	done bool
}

// NewTextReader returns a Reader over the text trace in r.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	return &TextReader{sc: sc}
}

// Next implements Reader.
func (tr *TextReader) Next() (Access, bool) {
	if tr.done {
		return Access{}, false
	}
	for tr.sc.Scan() {
		tr.line++
		text := strings.TrimSpace(tr.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		a, err := parseTextLine(text)
		if err != nil {
			tr.fail(fmt.Errorf("trace: line %d: %w", tr.line, err))
			return Access{}, false
		}
		return a, true
	}
	tr.done = true
	if err := tr.sc.Err(); err != nil {
		tr.err = err
	}
	return Access{}, false
}

func (tr *TextReader) fail(err error) {
	tr.done = true
	tr.err = err
}

// Err implements Reader.
func (tr *TextReader) Err() error { return tr.err }

// parseTextLine decodes one "<core> <R|W> <pc> <addr>" record.
func parseTextLine(line string) (Access, error) {
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return Access{}, fmt.Errorf("want 4 fields, have %d", len(fields))
	}
	core, err := strconv.ParseUint(fields[0], 10, 8)
	if err != nil || core > maxCore {
		return Access{}, fmt.Errorf("bad core %q", fields[0])
	}
	var write bool
	switch fields[1] {
	case "R", "r":
		write = false
	case "W", "w":
		write = true
	default:
		return Access{}, fmt.Errorf("bad op %q (want R or W)", fields[1])
	}
	pc, err := strconv.ParseUint(fields[2], 0, 64)
	if err != nil {
		return Access{}, fmt.Errorf("bad pc %q", fields[2])
	}
	addr, err := strconv.ParseUint(fields[3], 0, 64)
	if err != nil {
		return Access{}, fmt.Errorf("bad addr %q", fields[3])
	}
	return Access{Core: uint8(core), Write: write, PC: pc, Addr: Addr(addr)}, nil
}
