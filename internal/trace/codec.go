package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The on-disk trace format:
//
//	magic   [8]byte  "SHLLCTR1"
//	records repeated until EOF, each:
//	  flags   1 byte   bit0 = write, bits1..7 = core
//	  pcDelta varint   zig-zag delta from previous record's PC
//	  adDelta varint   zig-zag delta from previous record's Addr
//
// Delta + zig-zag + varint keeps typical synthetic traces at 3-6 bytes per
// record instead of 17. The format is strictly sequential; there is no
// index, because simulations always consume traces front to back.

// magic identifies trace files; the trailing digit is the format version.
const magic = "SHLLCTR1"

// ErrBadMagic is returned by NewFileReader when the input does not start
// with the trace file magic.
var ErrBadMagic = errors.New("trace: bad magic (not a trace file or wrong version)")

// maxCore is the largest core id the 7-bit flags field can carry.
const maxCore = 127

// Writer encodes accesses to an io.Writer in the binary trace format.
type Writer struct {
	w      *bufio.Writer
	prevPC uint64
	prevAd uint64
	count  uint64
	err    error
}

// NewWriter returns a Writer that emits the file header immediately.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriterSize(w, 1<<16)
	tw := &Writer{w: bw}
	if _, err := bw.WriteString(magic); err != nil {
		tw.err = err
	}
	return tw
}

// Write appends one access to the stream.
func (w *Writer) Write(a Access) error {
	if w.err != nil {
		return w.err
	}
	if a.Core > maxCore {
		w.err = fmt.Errorf("trace: core %d exceeds maximum %d", a.Core, maxCore)
		return w.err
	}
	flags := byte(a.Core) << 1
	if a.Write {
		flags |= 1
	}
	var buf [1 + 2*binary.MaxVarintLen64]byte
	buf[0] = flags
	n := 1
	n += binary.PutUvarint(buf[n:], zigzag(int64(a.PC)-int64(w.prevPC)))
	n += binary.PutUvarint(buf[n:], zigzag(int64(a.Addr)-int64(w.prevAd)))
	if _, err := w.w.Write(buf[:n]); err != nil {
		w.err = err
		return err
	}
	w.prevPC = a.PC
	w.prevAd = uint64(a.Addr)
	w.count++
	return nil
}

// Count reports how many accesses have been written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush writes any buffered data to the underlying io.Writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// FileReader decodes a binary trace stream produced by Writer.
type FileReader struct {
	r      *bufio.Reader
	prevPC uint64
	prevAd uint64
	err    error
	done   bool
}

// NewFileReader validates the header and returns a Reader over r.
func NewFileReader(r io.Reader) (*FileReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr) != magic {
		return nil, ErrBadMagic
	}
	return &FileReader{r: br}, nil
}

// Next implements Reader.
func (fr *FileReader) Next() (Access, bool) {
	if fr.done {
		return Access{}, false
	}
	flags, err := fr.r.ReadByte()
	if err != nil {
		fr.done = true
		if err != io.EOF {
			fr.err = err
		}
		return Access{}, false
	}
	pcd, err := binary.ReadUvarint(fr.r)
	if err != nil {
		fr.fail(err)
		return Access{}, false
	}
	add, err := binary.ReadUvarint(fr.r)
	if err != nil {
		fr.fail(err)
		return Access{}, false
	}
	fr.prevPC = uint64(int64(fr.prevPC) + unzigzag(pcd))
	fr.prevAd = uint64(int64(fr.prevAd) + unzigzag(add))
	return Access{
		Core:  flags >> 1,
		Write: flags&1 != 0,
		PC:    fr.prevPC,
		Addr:  Addr(fr.prevAd),
	}, true
}

// fail records a mid-record decoding error; truncation inside a record is
// always an error, unlike a clean EOF at a record boundary.
func (fr *FileReader) fail(err error) {
	fr.done = true
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	fr.err = fmt.Errorf("trace: corrupt record: %w", err)
}

// Err implements Reader.
func (fr *FileReader) Err() error { return fr.err }

// Zigzag maps a signed delta onto an unsigned varint-friendly value
// (small magnitudes of either sign encode short). Exported so the other
// delta codecs of the repository — the stream-snapshot encoding in
// internal/cache reuses exactly this transform — stay bit-compatible
// with the trace format's convention.
func Zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func zigzag(v int64) uint64   { return Zigzag(v) }
func unzigzag(u uint64) int64 { return Unzigzag(u) }
