package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestTextRoundTrip(t *testing.T) {
	accs := []Access{
		{Core: 0, Write: false, PC: 0x400000, Addr: 0x7fff0000},
		{Core: 127, Write: true, PC: 0, Addr: 0},
		{Core: 5, Write: false, PC: 1 << 62, Addr: 1 << 47},
	}
	var buf bytes.Buffer
	n, err := WriteText(&buf, NewSliceReader(accs))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("wrote %d records", n)
	}
	out, err := Collect(NewTextReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(accs) {
		t.Fatalf("decoded %d records", len(out))
	}
	for i := range accs {
		if out[i] != accs[i] {
			t.Errorf("record %d: got %+v want %+v", i, out[i], accs[i])
		}
	}
}

func TestTextRoundTripProperty(t *testing.T) {
	f := func(cores []uint8, pcs, addrs []uint64, writes []bool) bool {
		n := len(cores)
		for _, s := range []int{len(pcs), len(addrs), len(writes)} {
			if s < n {
				n = s
			}
		}
		accs := make([]Access, n)
		for i := 0; i < n; i++ {
			accs[i] = Access{Core: cores[i] & maxCore, Write: writes[i], PC: pcs[i], Addr: Addr(addrs[i])}
		}
		var buf bytes.Buffer
		if _, err := WriteText(&buf, NewSliceReader(accs)); err != nil {
			return false
		}
		out, err := Collect(NewTextReader(&buf))
		if err != nil || len(out) != n {
			return false
		}
		for i := range accs {
			if out[i] != accs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := "# header comment\n\n 1 W 0x10 0x40 \n\n# tail\n0 R 16 64\n"
	out, err := Collect(NewTextReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("decoded %d records, want 2", len(out))
	}
	if out[0] != (Access{Core: 1, Write: true, PC: 0x10, Addr: 0x40}) {
		t.Errorf("record 0 = %+v", out[0])
	}
	// Decimal and hex are both accepted (ParseUint base 0).
	if out[1] != (Access{Core: 0, PC: 16, Addr: 64}) {
		t.Errorf("record 1 = %+v", out[1])
	}
}

func TestTextErrors(t *testing.T) {
	cases := []string{
		"1 W 0x10",            // missing field
		"1 W 0x10 0x40 extra", // extra field
		"999 W 0x10 0x40",     // core out of range
		"200 W 0x10 0x40",     // core > maxCore
		"1 X 0x10 0x40",       // bad op
		"1 W zz 0x40",         // bad pc
		"1 W 0x10 zz",         // bad addr
	}
	for _, in := range cases {
		r := NewTextReader(strings.NewReader(in))
		if _, ok := r.Next(); ok {
			t.Errorf("line %q decoded successfully", in)
			continue
		}
		if r.Err() == nil {
			t.Errorf("line %q produced no error", in)
		}
	}
}

func TestTextCleanEOF(t *testing.T) {
	r := NewTextReader(strings.NewReader("0 R 0x1 0x40\n"))
	if _, ok := r.Next(); !ok {
		t.Fatal("record missing")
	}
	if _, ok := r.Next(); ok {
		t.Fatal("phantom record")
	}
	if r.Err() != nil {
		t.Errorf("clean EOF errored: %v", r.Err())
	}
}
