package trace

import "sharellc/internal/rng"

// Interleaver merges per-thread access streams into a single global order,
// modelling the nondeterministic scheduling of a real CMP. Each step it
// picks a still-live thread and takes a short burst of accesses from it.
//
// Two knobs shape the interleaving:
//
//   - Burst: the mean number of consecutive accesses taken from one thread
//     before switching. Real cores issue runs of references between
//     scheduling points; a burst of 1 gives fine round-robin-like mixing,
//     large bursts approximate coarse time-slicing.
//   - rng: thread choice and burst length are drawn from a seeded Source,
//     so the interleaving is deterministic per seed.
type Interleaver struct {
	streams []Reader
	live    []bool
	nLive   int
	burst   int
	rnd     *rng.Source
	cur     int // stream currently being drained
	left    int // accesses left in the current burst
	err     error
}

// NewInterleaver merges streams with mean burst length burst (values < 1
// are treated as 1) using rnd for scheduling decisions.
func NewInterleaver(streams []Reader, burst int, rnd *rng.Source) *Interleaver {
	if burst < 1 {
		burst = 1
	}
	il := &Interleaver{
		streams: streams,
		live:    make([]bool, len(streams)),
		nLive:   len(streams),
		burst:   burst,
		rnd:     rnd,
		cur:     -1,
	}
	for i := range il.live {
		il.live[i] = true
	}
	return il
}

// Next implements Reader. It returns accesses until every input stream is
// exhausted.
func (il *Interleaver) Next() (Access, bool) {
	for il.nLive > 0 {
		if il.cur < 0 || il.left <= 0 || !il.live[il.cur] {
			il.pick()
			if il.cur < 0 {
				break
			}
		}
		a, ok := il.streams[il.cur].Next()
		if !ok {
			if err := il.streams[il.cur].Err(); err != nil && il.err == nil {
				il.err = err
			}
			il.live[il.cur] = false
			il.nLive--
			il.cur = -1
			continue
		}
		il.left--
		return a, true
	}
	return Access{}, false
}

// pick selects the next live stream and a geometric-ish burst length.
func (il *Interleaver) pick() {
	il.cur = -1
	if il.nLive == 0 {
		return
	}
	// Choose uniformly among live streams.
	k := il.rnd.Intn(il.nLive)
	for i, alive := range il.live {
		if !alive {
			continue
		}
		if k == 0 {
			il.cur = i
			break
		}
		k--
	}
	// Burst length uniform in [1, 2*burst-1] → mean ≈ burst.
	il.left = 1 + il.rnd.Intn(2*il.burst-1)
}

// Err implements Reader, reporting the first error from any input stream.
func (il *Interleaver) Err() error { return il.err }
