package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"sharellc/internal/rng"
)

func TestAddrBlock(t *testing.T) {
	cases := []struct {
		addr  Addr
		block Addr
		id    uint64
	}{
		{0, 0, 0},
		{1, 0, 0},
		{63, 0, 0},
		{64, 64, 1},
		{65, 64, 1},
		{0xDEADBEEF, 0xDEADBEC0, 0xDEADBEEF >> 6},
	}
	for _, c := range cases {
		if got := c.addr.Block(); got != c.block {
			t.Errorf("Addr(%#x).Block() = %#x, want %#x", uint64(c.addr), uint64(got), uint64(c.block))
		}
		if got := c.addr.BlockID(); got != c.id {
			t.Errorf("Addr(%#x).BlockID() = %d, want %d", uint64(c.addr), got, c.id)
		}
	}
}

func TestAccessString(t *testing.T) {
	a := Access{Core: 3, Write: true, PC: 0x400, Addr: 0x1000}
	s := a.String()
	for _, want := range []string{"c3", "W", "0x400", "0x1000"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	a.Write = false
	if !strings.Contains(a.String(), "R") {
		t.Errorf("read access String() = %q missing R", a.String())
	}
}

func TestSliceReader(t *testing.T) {
	in := []Access{
		{Core: 0, Addr: 64},
		{Core: 1, Addr: 128, Write: true},
	}
	r := NewSliceReader(in)
	out, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Errorf("Collect = %v, want %v", out, in)
	}
	if _, ok := r.Next(); ok {
		t.Error("exhausted reader returned an access")
	}
	r.Reset()
	if a, ok := r.Next(); !ok || a != in[0] {
		t.Error("Reset did not rewind")
	}
}

func TestFuncReader(t *testing.T) {
	i := 0
	r := NewFuncReader(func() (Access, bool) {
		if i >= 3 {
			return Access{}, false
		}
		i++
		return Access{Addr: Addr(i * 64)}, true
	})
	out, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d accesses, want 3", len(out))
	}
}

func TestCodecRoundTrip(t *testing.T) {
	accs := []Access{
		{Core: 0, Write: false, PC: 0x400000, Addr: 0x7fff0000},
		{Core: 1, Write: true, PC: 0x400004, Addr: 0x7fff0040},
		{Core: 127, Write: true, PC: 0, Addr: 0},
		{Core: 5, Write: false, PC: 1 << 62, Addr: 1 << 47},
		{Core: 5, Write: false, PC: 1, Addr: 3},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(accs)) {
		t.Errorf("Count = %d, want %d", w.Count(), len(accs))
	}

	fr, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(fr)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(accs) {
		t.Fatalf("decoded %d records, want %d", len(out), len(accs))
	}
	for i := range accs {
		if out[i] != accs[i] {
			t.Errorf("record %d: got %+v want %+v", i, out[i], accs[i])
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(cores []uint8, pcs, addrs []uint64, writes []bool) bool {
		n := len(cores)
		for _, s := range []int{len(pcs), len(addrs), len(writes)} {
			if s < n {
				n = s
			}
		}
		accs := make([]Access, n)
		for i := 0; i < n; i++ {
			accs[i] = Access{
				Core:  cores[i] & maxCore,
				Write: writes[i],
				PC:    pcs[i],
				Addr:  Addr(addrs[i]),
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, a := range accs {
			if err := w.Write(a); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		fr, err := NewFileReader(&buf)
		if err != nil {
			return false
		}
		out, err := Collect(fr)
		if err != nil {
			return false
		}
		if len(out) != n {
			return false
		}
		for i := range accs {
			if out[i] != accs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWriterRejectsHugeCore(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Access{Core: 128}); err == nil {
		t.Error("Write accepted core 128")
	}
	// Writer stays failed.
	if err := w.Write(Access{Core: 0}); err == nil {
		t.Error("failed writer accepted further records")
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewFileReader(bytes.NewReader([]byte("NOTATRACE..."))); err != ErrBadMagic {
		t.Errorf("got err %v, want ErrBadMagic", err)
	}
}

func TestReaderRejectsShortHeader(t *testing.T) {
	if _, err := NewFileReader(bytes.NewReader([]byte("SH"))); err == nil {
		t.Error("short header accepted")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Access{Core: 1, PC: 1 << 40, Addr: 1 << 40}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Chop the last byte off: mid-record truncation must surface as Err.
	raw := buf.Bytes()
	fr, err := NewFileReader(bytes.NewReader(raw[:len(raw)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fr.Next(); ok {
		t.Error("truncated record decoded successfully")
	}
	if fr.Err() == nil {
		t.Error("truncated record did not set Err")
	}
}

func TestCleanEOFNoError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Access{Addr: 64}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	fr, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fr.Next(); !ok {
		t.Fatal("first record missing")
	}
	if _, ok := fr.Next(); ok {
		t.Fatal("phantom second record")
	}
	if fr.Err() != nil {
		t.Errorf("clean EOF produced error %v", fr.Err())
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterleaverPreservesPerStreamOrder(t *testing.T) {
	mk := func(core uint8, n int) []Access {
		out := make([]Access, n)
		for i := range out {
			out[i] = Access{Core: core, Addr: Addr(i * BlockSize)}
		}
		return out
	}
	s0, s1, s2 := mk(0, 50), mk(1, 30), mk(2, 70)
	il := NewInterleaver([]Reader{
		NewSliceReader(s0), NewSliceReader(s1), NewSliceReader(s2),
	}, 4, rng.New(1))
	out, err := Collect(il)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 150 {
		t.Fatalf("interleaved %d accesses, want 150", len(out))
	}
	next := map[uint8]Addr{}
	counts := map[uint8]int{}
	for _, a := range out {
		if a.Addr != next[a.Core] {
			t.Fatalf("core %d out of order: got addr %#x want %#x", a.Core, uint64(a.Addr), uint64(next[a.Core]))
		}
		next[a.Core] += BlockSize
		counts[a.Core]++
	}
	if counts[0] != 50 || counts[1] != 30 || counts[2] != 70 {
		t.Errorf("per-core counts = %v", counts)
	}
}

func TestInterleaverDeterministic(t *testing.T) {
	mk := func() []Reader {
		var rs []Reader
		for c := uint8(0); c < 4; c++ {
			accs := make([]Access, 100)
			for i := range accs {
				accs[i] = Access{Core: c, Addr: Addr(i * 64)}
			}
			rs = append(rs, NewSliceReader(accs))
		}
		return rs
	}
	a, err := Collect(NewInterleaver(mk(), 8, rng.New(99)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(NewInterleaver(mk(), 8, rng.New(99)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleavings diverged at %d", i)
		}
	}
}

func TestInterleaverActuallyMixes(t *testing.T) {
	mk := func() []Reader {
		var rs []Reader
		for c := uint8(0); c < 2; c++ {
			accs := make([]Access, 200)
			for i := range accs {
				accs[i] = Access{Core: c}
			}
			rs = append(rs, NewSliceReader(accs))
		}
		return rs
	}
	out, err := Collect(NewInterleaver(mk(), 2, rng.New(5)))
	if err != nil {
		t.Fatal(err)
	}
	switches := 0
	for i := 1; i < len(out); i++ {
		if out[i].Core != out[i-1].Core {
			switches++
		}
	}
	if switches < 10 {
		t.Errorf("only %d core switches in 400 accesses; interleaver is not mixing", switches)
	}
}

func TestInterleaverEmptyStreams(t *testing.T) {
	il := NewInterleaver([]Reader{
		NewSliceReader(nil),
		NewSliceReader([]Access{{Core: 1, Addr: 64}}),
	}, 1, rng.New(1))
	out, err := Collect(il)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("got %d accesses, want 1", len(out))
	}
}
