// Package trace defines the memory-access trace model that all simulations
// consume, together with a compact binary codec for storing traces on disk.
//
// A trace is an ordered sequence of Access records. Each record carries the
// issuing core, the program counter of the instruction, the virtual byte
// address touched, and whether the access is a write. The order of records
// in a trace is the global interleaving observed by the memory system.
//
// Traces come from two places: the synthetic workload generators in
// internal/workloads, and files previously written with Writer (see codec.go).
package trace

import "fmt"

// BlockShift is log2 of the cache block size. Every cache in the simulated
// hierarchy uses 64-byte blocks, matching the paper's configuration.
const BlockShift = 6

// BlockSize is the cache block size in bytes.
const BlockSize = 1 << BlockShift

// Addr is a virtual byte address.
type Addr uint64

// Block returns the cache-block address (byte address with the offset bits
// stripped), which is the unit of cache residency and sharing.
func (a Addr) Block() Addr { return a >> BlockShift << BlockShift }

// BlockID returns the block number (address divided by the block size).
func (a Addr) BlockID() uint64 { return uint64(a) >> BlockShift }

// Access is one memory reference in a trace.
type Access struct {
	Core  uint8  // issuing core, 0-based
	Write bool   // true for stores, false for loads
	PC    uint64 // program counter of the triggering instruction
	Addr  Addr   // virtual byte address
}

// String renders the access in a compact human-readable form.
func (a Access) String() string {
	op := "R"
	if a.Write {
		op = "W"
	}
	return fmt.Sprintf("c%d %s pc=%#x addr=%#x", a.Core, op, a.PC, uint64(a.Addr))
}

// Reader yields a stream of accesses. Next returns the next access and
// true, or a zero Access and false when the stream is exhausted. Err
// reports any error encountered (io failures, corrupt encoding); a stream
// that ends cleanly has a nil Err.
type Reader interface {
	Next() (Access, bool)
	Err() error
}

// SliceReader adapts an in-memory []Access to the Reader interface.
type SliceReader struct {
	accesses []Access
	pos      int
}

// NewSliceReader returns a Reader over accesses. The slice is not copied;
// callers must not mutate it while reading.
func NewSliceReader(accesses []Access) *SliceReader {
	return &SliceReader{accesses: accesses}
}

// Next implements Reader.
func (r *SliceReader) Next() (Access, bool) {
	if r.pos >= len(r.accesses) {
		return Access{}, false
	}
	a := r.accesses[r.pos]
	r.pos++
	return a, true
}

// Err implements Reader. A slice never fails.
func (r *SliceReader) Err() error { return nil }

// Reset rewinds the reader to the beginning of the slice.
func (r *SliceReader) Reset() { r.pos = 0 }

// Collect drains r into a slice. It is mainly a convenience for tests and
// for experiment passes that need random access to the stream.
func Collect(r Reader) ([]Access, error) {
	var out []Access
	for {
		a, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	return out, r.Err()
}

// FuncReader adapts a generator function to the Reader interface. The
// function returns the next access and true, or false at end of stream.
type FuncReader struct {
	fn  func() (Access, bool)
	err error
}

// NewFuncReader wraps fn as a Reader.
func NewFuncReader(fn func() (Access, bool)) *FuncReader {
	return &FuncReader{fn: fn}
}

// Next implements Reader.
func (r *FuncReader) Next() (Access, bool) { return r.fn() }

// Err implements Reader.
func (r *FuncReader) Err() error { return r.err }
