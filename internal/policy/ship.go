package policy

import (
	"sharellc/internal/cache"
	"sharellc/internal/mem"
)

// SHiP (signature-based hit prediction, Wu et al. MICRO'11) augments
// SRRIP with a table of saturating counters indexed by a signature of the
// fill-triggering instruction's PC. Signatures whose past fills tended to
// die without reuse insert at distant re-reference; the rest insert at
// long re-reference, as SRRIP does.
//
// SHiP is the closest published relative of the paper's PC-indexed sharing
// predictor — both bet that the fill PC predicts a block's future — which
// is exactly why the paper includes it in the sharing-awareness
// comparison.
type SHiP struct {
	rripCore
	shct     []uint8 // signature history counter table
	lineSig  []uint16
	lineUsed []bool
}

// shipTableBits sizes the SHCT at 16K entries, as in the original paper.
const shipTableBits = 14

// shipCounterMax is the saturating-counter ceiling (3-bit counters).
const shipCounterMax = 7

// NewSHiP returns a SHiP-PC policy.
func NewSHiP() *SHiP { return &SHiP{} }

// Name implements cache.Policy.
func (p *SHiP) Name() string { return "ship" }

// Attach implements cache.Policy.
func (p *SHiP) Attach(sets, ways int) {
	p.rripCore.Attach(sets, ways)
	p.shct = make([]uint8, 1<<shipTableBits)
	// Start weakly reusable so cold signatures behave like SRRIP.
	for i := range p.shct {
		p.shct[i] = 1
	}
	p.lineSig = make([]uint16, sets*ways)
	p.lineUsed = make([]bool, sets*ways)
	mem.Hugepages(p.lineSig)
	mem.Hugepages(p.lineUsed)
}

// Signature hashes a PC into an SHCT index. Exported for the predictor
// study, which reuses the same signature construction.
func Signature(pc uint64) uint16 {
	// Fold the PC down; drop the low 2 bits (instruction alignment).
	x := pc >> 2
	x ^= x >> shipTableBits
	x ^= x >> (2 * shipTableBits)
	return uint16(x & (1<<shipTableBits - 1))
}

// Hit implements cache.Policy: promote and mark the line's signature as
// reused (SHCT increments once per residency, on first reuse).
func (p *SHiP) Hit(set, way int, a *cache.AccessInfo) {
	p.rripCore.Hit(set, way, a)
	idx := set*p.ways + way
	if !p.lineUsed[idx] {
		p.lineUsed[idx] = true
		if c := p.shct[p.lineSig[idx]]; c < shipCounterMax {
			p.shct[p.lineSig[idx]] = c + 1
		}
	}
}

// Victim implements cache.Policy: before the line chosen by the RRIP
// search is displaced, a dead-on-eviction residency trains its signature
// down.
func (p *SHiP) Victim(set int, a *cache.AccessInfo) int {
	way := p.rripCore.Victim(set, a)
	p.ObserveEvict(set, way)
	return way
}

// ObserveEvict trains the SHCT when a line leaves the cache without reuse.
// It is called by Victim, and directly by wrappers (core.Protector) that
// choose the victim from RankVictims instead of via Victim.
func (p *SHiP) ObserveEvict(set, way int) {
	idx := set*p.ways + way
	if !p.lineUsed[idx] {
		if c := p.shct[p.lineSig[idx]]; c > 0 {
			p.shct[p.lineSig[idx]] = c - 1
		}
	}
}

// Fill implements cache.Policy.
func (p *SHiP) Fill(set, way int, a *cache.AccessInfo) {
	sig := Signature(a.PC)
	idx := set*p.ways + way
	p.lineSig[idx] = sig
	p.lineUsed[idx] = false
	if p.shct[sig] == 0 {
		p.insert(set, way, rripMax) // predicted dead: distant
	} else {
		p.insert(set, way, rripMax-1) // SRRIP default: long
	}
}

// SHiPS ("SHiP-S") is the sharing-aware SHiP variant this paper's
// characterization motivates — a concrete instance of its future-work
// direction. The SHCT trains on *cross-core* reuse: a hit from a core
// other than the filler counts double, so fill sites that produce shared
// blocks saturate toward protected insertion while sites producing
// single-use private streams train toward distant insertion. Confident
// sharing sites additionally insert at RRPV 0.
type SHiPS struct {
	SHiP
	lineCore []uint8
}

// NewSHiPS returns the sharing-aware SHiP variant.
func NewSHiPS() *SHiPS { return &SHiPS{} }

// Name implements cache.Policy.
func (p *SHiPS) Name() string { return "ship-s" }

// Attach implements cache.Policy.
func (p *SHiPS) Attach(sets, ways int) {
	p.SHiP.Attach(sets, ways)
	p.lineCore = make([]uint8, sets*ways)
	mem.Hugepages(p.lineCore)
}

// Hit implements cache.Policy: cross-core reuse trains the signature a
// second step.
func (p *SHiPS) Hit(set, way int, a *cache.AccessInfo) {
	idx := set*p.ways + way
	firstReuse := !p.lineUsed[idx]
	p.SHiP.Hit(set, way, a)
	if firstReuse && a.Core != p.lineCore[idx] {
		if c := p.shct[p.lineSig[idx]]; c < shipCounterMax {
			p.shct[p.lineSig[idx]] = c + 1
		}
	}
}

// Fill implements cache.Policy: remember the filler and let confident
// sharing sites insert at the most-protected position.
func (p *SHiPS) Fill(set, way int, a *cache.AccessInfo) {
	p.SHiP.Fill(set, way, a)
	idx := set*p.ways + way
	p.lineCore[idx] = a.Core
	if p.shct[p.lineSig[idx]] >= shipCounterMax-1 {
		p.insert(set, way, 0) // confident sharing site: near-immediate
	}
}
