package policy

import (
	"sharellc/internal/cache"
	"sharellc/internal/mem"
	"sharellc/internal/rng"
)

// LRUPolicy wraps cache.LRU (which lives in package cache so the private
// levels can use it without importing the catalogue) and adds victim
// ranking for the protection wrapper.
type LRUPolicy struct {
	cache.LRU
	rankBuf []int
}

// NewLRUPolicy returns the LRU baseline.
func NewLRUPolicy() *LRUPolicy { return &LRUPolicy{} }

// RankVictims implements VictimRanker: least-recent first.
func (p *LRUPolicy) RankVictims(set int, _ *cache.AccessInfo) []int {
	ways := p.Ways()
	p.rankBuf = rankByKey(ways, func(w int) int64 {
		// Lower stamp = older = better victim, so negate.
		return -int64(p.Stamp(set, w))
	}, p.rankBuf)
	return p.rankBuf
}

// Random evicts a uniformly random way. It is the weakest reference point
// in the catalogue and a sanity check for the experiment harness.
type Random struct {
	ways int
	rnd  *rng.Source
}

// NewRandom returns a Random policy drawing from rnd.
func NewRandom(rnd *rng.Source) *Random { return &Random{rnd: rnd} }

// Name implements cache.Policy.
func (p *Random) Name() string { return "random" }

// Attach implements cache.Policy.
func (p *Random) Attach(sets, ways int) { p.ways = ways }

// Hit implements cache.Policy.
func (p *Random) Hit(int, int, *cache.AccessInfo) {}

// Fill implements cache.Policy.
func (p *Random) Fill(int, int, *cache.AccessInfo) {}

// Victim implements cache.Policy.
func (p *Random) Victim(int, *cache.AccessInfo) int { return p.rnd.Intn(p.ways) }

// FIFO evicts in fill order, ignoring hits.
type FIFO struct {
	ways    int
	stamp   []int64
	clock   int64
	rankBuf []int
}

// NewFIFO returns a FIFO policy.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements cache.Policy.
func (p *FIFO) Name() string { return "fifo" }

// Attach implements cache.Policy.
func (p *FIFO) Attach(sets, ways int) {
	p.ways = ways
	p.stamp = make([]int64, sets*ways)
	mem.Hugepages(p.stamp)
	p.clock = 0
}

// Hit implements cache.Policy. FIFO ignores hits.
func (p *FIFO) Hit(int, int, *cache.AccessInfo) {}

// Fill implements cache.Policy.
func (p *FIFO) Fill(set, way int, _ *cache.AccessInfo) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

// Demote moves way to the front of the eviction queue (core.Demoter).
func (p *FIFO) Demote(set, way int) {
	base := set * p.ways
	min := p.stamp[base]
	for w := 1; w < p.ways; w++ {
		if s := p.stamp[base+w]; s < min {
			min = s
		}
	}
	p.stamp[set*p.ways+way] = min - 1
}

// Victim implements cache.Policy: the oldest fill.
func (p *FIFO) Victim(set int, _ *cache.AccessInfo) int {
	base := set * p.ways
	victim, min := 0, p.stamp[base]
	for w := 1; w < p.ways; w++ {
		if s := p.stamp[base+w]; s < min {
			victim, min = w, s
		}
	}
	return victim
}

// PerSetIndependent reports that FIFO qualifies for set-sharded replay:
// within-set stamp order is independent of cross-set interleaving.
func (p *FIFO) PerSetIndependent() bool { return true }

// RankVictims implements VictimRanker: oldest fill first.
func (p *FIFO) RankVictims(set int, _ *cache.AccessInfo) []int {
	p.rankBuf = rankByKey(p.ways, func(w int) int64 {
		return -p.stamp[set*p.ways+w]
	}, p.rankBuf)
	return p.rankBuf
}

// NRU is the not-recently-used policy found in commercial LLCs: one
// reference bit per line. Fills and hits set the bit; the victim is the
// lowest-numbered way with a clear bit, and when all bits in a set are set
// they are cleared (except the just-used way's semantics follow the usual
// formulation: clear all, then pick way 0).
// Reference "bits" are one byte per line (0 = clear, 1 = set): flat by
// line index so the batch kernel updates them without recomputing the
// set, and byte-wide so its victim search can scan eight ways per
// machine word (see NewBatchKernel).
type NRU struct {
	ways    int
	ref     []uint8
	rankBuf []int
}

// NewNRU returns an NRU policy.
func NewNRU() *NRU { return &NRU{} }

// Name implements cache.Policy.
func (p *NRU) Name() string { return "nru" }

// Attach implements cache.Policy.
func (p *NRU) Attach(sets, ways int) {
	p.ways = ways
	p.ref = make([]uint8, sets*ways)
	mem.Hugepages(p.ref)
}

// Hit implements cache.Policy.
func (p *NRU) Hit(set, way int, _ *cache.AccessInfo) { p.ref[set*p.ways+way] = 1 }

// Fill implements cache.Policy.
func (p *NRU) Fill(set, way int, _ *cache.AccessInfo) { p.ref[set*p.ways+way] = 1 }

// Demote clears way's reference bit, making it a preferred victim
// (core.Demoter).
func (p *NRU) Demote(set, way int) { p.ref[set*p.ways+way] = 0 }

// Victim implements cache.Policy.
func (p *NRU) Victim(set int, _ *cache.AccessInfo) int {
	base := set * p.ways
	for w := 0; w < p.ways; w++ {
		if p.ref[base+w] == 0 {
			return w
		}
	}
	// All recently used: age the whole set and take way 0.
	for w := 0; w < p.ways; w++ {
		p.ref[base+w] = 0
	}
	return 0
}

// PerSetIndependent reports that NRU qualifies for set-sharded replay: its
// reference bits are pure per-set state.
func (p *NRU) PerSetIndependent() bool { return true }

// RankVictims implements VictimRanker: clear-bit ways first (ascending
// way), then set-bit ways.
func (p *NRU) RankVictims(set int, _ *cache.AccessInfo) []int {
	p.rankBuf = rankByKey(p.ways, func(w int) int64 {
		return 1 - int64(p.ref[set*p.ways+w])
	}, p.rankBuf)
	return p.rankBuf
}

// lipCore is the shared machinery of LIP and BIP: LRU stamps with
// configurable insertion position.
type lipCore struct {
	ways    int
	stamp   []int64
	clock   int64
	rankBuf []int
}

func (p *lipCore) Attach(sets, ways int) {
	p.ways = ways
	p.stamp = make([]int64, sets*ways)
	mem.Hugepages(p.stamp)
	// Start above zero so insertAtLRU's min-1 never collides with the
	// zero stamps of untouched ways in other sets.
	p.clock = 1 << 32
}

func (p *lipCore) Hit(set, way int, _ *cache.AccessInfo) { p.touchMRU(set, way) }

// Promote moves way to MRU (core.Promoter).
func (p *lipCore) Promote(set, way int) { p.touchMRU(set, way) }

// Demote moves way to the LRU position (core.Demoter).
func (p *lipCore) Demote(set, way int) { p.insertAtLRU(set, way) }

func (p *lipCore) touchMRU(set, way int) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

// insertAtLRU gives way the smallest stamp in its set, making it the next
// victim unless it is re-referenced first.
func (p *lipCore) insertAtLRU(set, way int) {
	base := set * p.ways
	min := p.stamp[base]
	for w := 1; w < p.ways; w++ {
		if s := p.stamp[base+w]; s < min {
			min = s
		}
	}
	p.stamp[base+way] = min - 1
}

func (p *lipCore) Victim(set int, _ *cache.AccessInfo) int {
	base := set * p.ways
	victim, min := 0, p.stamp[base]
	for w := 1; w < p.ways; w++ {
		if s := p.stamp[base+w]; s < min {
			victim, min = w, s
		}
	}
	return victim
}

func (p *lipCore) RankVictims(set int, _ *cache.AccessInfo) []int {
	p.rankBuf = rankByKey(p.ways, func(w int) int64 {
		return -p.stamp[set*p.ways+w]
	}, p.rankBuf)
	return p.rankBuf
}

// LIP (LRU-insertion policy, Qureshi et al. ISCA'07) inserts fills at the
// LRU position so single-use blocks fall out immediately; a hit promotes
// to MRU.
type LIP struct{ lipCore }

// NewLIP returns a LIP policy.
func NewLIP() *LIP { return &LIP{} }

// Name implements cache.Policy.
func (p *LIP) Name() string { return "lip" }

// Fill implements cache.Policy.
func (p *LIP) Fill(set, way int, _ *cache.AccessInfo) { p.insertAtLRU(set, way) }

// PerSetIndependent reports that LIP qualifies for set-sharded replay.
// Declared on LIP (not lipCore) deliberately: BIP and DIP embed lipCore
// but draw on a shared RNG / dueling selector and must not inherit it.
func (p *LIP) PerSetIndependent() bool { return true }

// BIP (bimodal insertion policy) is LIP that inserts at MRU with a small
// probability epsilon (1/32), letting it adapt to slowly-changing working
// sets.
type BIP struct {
	lipCore
	rnd *rng.Source
}

// bipEpsilon is the probability BIP inserts at MRU.
const bipEpsilon = 1.0 / 32

// NewBIP returns a BIP policy drawing its insertion coin from rnd.
func NewBIP(rnd *rng.Source) *BIP { return &BIP{rnd: rnd} }

// Name implements cache.Policy.
func (p *BIP) Name() string { return "bip" }

// Fill implements cache.Policy.
func (p *BIP) Fill(set, way int, _ *cache.AccessInfo) {
	if p.rnd.Bool(bipEpsilon) {
		p.touchMRU(set, way)
	} else {
		p.insertAtLRU(set, way)
	}
}

// DIP (dynamic insertion policy) set-duels LRU against BIP: a few leader
// sets always run one constituent, a saturating counter tracks which
// leader group misses less, and follower sets adopt the winner.
type DIP struct {
	lipCore
	rnd  *rng.Source
	duel duel
}

// NewDIP returns a DIP policy.
func NewDIP(rnd *rng.Source) *DIP { return &DIP{rnd: rnd} }

// Name implements cache.Policy.
func (p *DIP) Name() string { return "dip" }

// Attach implements cache.Policy.
func (p *DIP) Attach(sets, ways int) {
	p.lipCore.Attach(sets, ways)
	p.duel.init(sets)
}

// Fill implements cache.Policy.
func (p *DIP) Fill(set, way int, a *cache.AccessInfo) {
	p.duel.observeMiss(set)
	if p.duel.useA(set) { // constituent A = LRU
		p.touchMRU(set, way)
		return
	}
	// Constituent B = BIP.
	if p.rnd.Bool(bipEpsilon) {
		p.touchMRU(set, way)
	} else {
		p.insertAtLRU(set, way)
	}
}

// duel implements set-dueling (Qureshi et al.): leader sets for
// constituents A and B and a 10-bit policy-selection counter that counts
// misses in A-leaders up and misses in B-leaders down. Followers use A
// while the counter is below the midpoint.
type duel struct {
	period int // leader spacing
	psel   int
	max    int
}

func (d *duel) init(sets int) {
	d.period = 64
	if sets < d.period {
		d.period = sets // degenerate small caches: every set duels
	}
	d.max = 1 << 10
	d.psel = d.max / 2
}

// kind reports the role of set: +1 A-leader, -1 B-leader, 0 follower.
func (d *duel) kind(set int) int {
	switch set % d.period {
	case 0:
		return +1
	case d.period/2 + 1:
		return -1
	default:
		return 0
	}
}

// observeMiss updates the selector when a miss (fill) happens in a leader.
func (d *duel) observeMiss(set int) {
	switch d.kind(set) {
	case +1:
		if d.psel < d.max-1 {
			d.psel++
		}
	case -1:
		if d.psel > 0 {
			d.psel--
		}
	}
}

// useA reports whether set should run constituent A.
func (d *duel) useA(set int) bool {
	switch d.kind(set) {
	case +1:
		return true
	case -1:
		return false
	default:
		return d.psel < d.max/2
	}
}
