package policy

import (
	"testing"
	"testing/quick"

	"sharellc/internal/cache"
	"sharellc/internal/rng"
	"sharellc/internal/trace"
)

func TestCatalogueNamesUniqueAndStable(t *testing.T) {
	names := Names(1)
	want := []string{"lru", "random", "fifo", "nru", "plru", "lip", "bip", "dip", "srrip", "brrip", "drrip", "ship", "ship-s", "opt"}
	if len(names) != len(want) {
		t.Fatalf("catalogue has %d policies, want %d: %v", len(names), len(want), names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("catalogue[%d] = %q, want %q", i, names[i], n)
		}
	}
}

func TestByName(t *testing.T) {
	f, err := ByName("srrip", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := f().Name(); got != "srrip" {
		t.Errorf("ByName(srrip) built %q", got)
	}
	if _, err := ByName("nonesuch", 1); err == nil {
		t.Error("unknown policy name accepted")
	}
}

func TestRealistic(t *testing.T) {
	if Realistic("opt") {
		t.Error("opt marked realistic")
	}
	if !Realistic("lru") || !Realistic("ship") {
		t.Error("hardware policy marked unrealistic")
	}
}

// newCache builds a small 4-set cache with the given policy.
func newCache(t *testing.T, p cache.Policy, ways int) *cache.SetAssoc {
	t.Helper()
	c, err := cache.NewSetAssoc(4*ways*trace.BlockSize, ways, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func ai(block uint64) cache.AccessInfo { return cache.AccessInfo{Block: block} }

// TestAllPoliciesValidVictims drives every catalogue policy with a random
// conflict-heavy stream and checks the cache invariants hold (the cache
// panics on out-of-range victims, so survival is the assertion).
func TestAllPoliciesValidVictims(t *testing.T) {
	for _, f := range Catalogue(7) {
		p := f()
		name := p.Name()
		t.Run(name, func(t *testing.T) {
			c := newCache(t, p, 4)
			rnd := rng.New(11)
			for i := 0; i < 20000; i++ {
				b := rnd.Uint64n(64) // 64 blocks over 16 lines: heavy conflicts
				c.Access(cache.AccessInfo{Block: b, PC: 0x400 + b*4, Core: uint8(rnd.Intn(4))})
			}
			if got := len(c.Contents()); got > 16 {
				t.Errorf("%s: %d resident blocks exceed capacity 16", name, got)
			}
			accesses, hits, fills, _ := c.Stats()
			if accesses != 20000 || hits+fills != accesses {
				t.Errorf("%s: inconsistent stats: accesses=%d hits=%d fills=%d", name, accesses, hits, fills)
			}
		})
	}
}

// TestRankVictimsIsPermutation checks every VictimRanker returns a true
// permutation of the ways and that its first element matches Victim for
// deterministic policies.
func TestRankVictimsIsPermutation(t *testing.T) {
	for _, f := range Catalogue(3) {
		p := f()
		r, ok := p.(VictimRanker)
		if !ok {
			continue
		}
		name := p.Name()
		t.Run(name, func(t *testing.T) {
			const ways = 8
			c := newCache(t, p, ways)
			rnd := rng.New(5)
			for i := 0; i < 5000; i++ {
				c.Access(cache.AccessInfo{Block: rnd.Uint64n(256), PC: rnd.Uint64() & 0xFFFF})
			}
			for set := 0; set < 4; set++ {
				rank := r.RankVictims(set, &cache.AccessInfo{})
				if len(rank) != ways {
					t.Fatalf("%s: rank has %d entries, want %d", name, len(rank), ways)
				}
				seen := make([]bool, ways)
				for _, w := range rank {
					if w < 0 || w >= ways || seen[w] {
						t.Fatalf("%s: rank %v is not a permutation", name, rank)
					}
					seen[w] = true
				}
			}
		})
	}
}

func TestRankVictimsHeadAgreesWithVictim(t *testing.T) {
	// Deterministic policies whose Victim has no training side effects.
	for _, mk := range []Factory{
		func() cache.Policy { return NewLRUPolicy() },
		func() cache.Policy { return NewFIFO() },
		func() cache.Policy { return NewLIP() },
		func() cache.Policy { return NewOPT() },
		func() cache.Policy { return NewNRU() },
	} {
		p := mk()
		name := p.Name()
		c := newCache(t, p, 4)
		rnd := rng.New(9)
		for i := 0; i < 2000; i++ {
			c.Access(cache.AccessInfo{Block: rnd.Uint64n(64), NextUse: int64(i) + int64(rnd.Intn(100))})
		}
		r := p.(VictimRanker)
		for set := 0; set < 4; set++ {
			rank := r.RankVictims(set, &cache.AccessInfo{})
			// NRU's Victim can mutate state (mass clear); call it last.
			v := p.Victim(set, &cache.AccessInfo{})
			if rank[0] != v {
				t.Errorf("%s set %d: RankVictims head %d != Victim %d", name, set, rank[0], v)
			}
		}
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	p := NewLRUPolicy()
	c := newCache(t, p, 4) // set 0: blocks 0,4,8,12,16...
	for _, b := range []uint64{0, 4, 8, 12} {
		c.Access(ai(b))
	}
	c.Access(ai(0)) // 4 becomes LRU
	if r := c.Access(ai(16)); r.Victim != 4 {
		t.Errorf("victim = %d, want 4", r.Victim)
	}
}

func TestFIFOIgnoresHits(t *testing.T) {
	p := NewFIFO()
	c := newCache(t, p, 2)
	c.Access(ai(0))
	c.Access(ai(4))
	c.Access(ai(0)) // hit; FIFO must NOT promote
	if r := c.Access(ai(8)); r.Victim != 0 {
		t.Errorf("FIFO victim = %d, want 0 (oldest fill)", r.Victim)
	}
}

func TestNRUVictimPrefersColdBit(t *testing.T) {
	p := NewNRU()
	p.Attach(1, 4)
	for w := 0; w < 4; w++ {
		p.Fill(0, w, &cache.AccessInfo{})
	}
	// All bits set: Victim clears the set and returns way 0.
	if v := p.Victim(0, &cache.AccessInfo{}); v != 0 {
		t.Fatalf("saturated-set victim = %d, want 0", v)
	}
	// Now all bits are clear; touch way 0 and 1, victim must be 2.
	p.Hit(0, 0, &cache.AccessInfo{})
	p.Hit(0, 1, &cache.AccessInfo{})
	if v := p.Victim(0, &cache.AccessInfo{}); v != 2 {
		t.Errorf("victim = %d, want 2 (first clear bit)", v)
	}
}

func TestLIPDropsSingleUseBlocks(t *testing.T) {
	p := NewLIP()
	c := newCache(t, p, 4)
	// Establish a hot working set of 3 blocks in set 0 and re-touch them
	// so they hold MRU positions.
	hot := []uint64{0, 4, 8}
	for _, b := range hot {
		c.Access(ai(b))
	}
	for _, b := range hot {
		c.Access(ai(b)) // promote to MRU
	}
	// Stream 100 single-use blocks through the same set: each is
	// inserted at LRU and must evict only its predecessor stream block,
	// never the hot set.
	for i := uint64(0); i < 100; i++ {
		c.Access(ai(12 + 4*i + 4))
	}
	for _, b := range hot {
		if !c.Access(ai(b)).Hit {
			t.Errorf("hot block %d was evicted by single-use stream under LIP", b)
		}
	}
}

func TestBIPMostlyInsertsAtLRU(t *testing.T) {
	p := NewBIP(rng.New(1))
	c := newCache(t, p, 4)
	hot := []uint64{0, 4, 8}
	for _, b := range hot {
		c.Access(ai(b))
		c.Access(ai(b))
	}
	surviving := 0
	for i := uint64(0); i < 50; i++ {
		c.Access(ai(16 + 4*i))
	}
	for _, b := range hot {
		if c.Access(ai(b)).Hit {
			surviving++
		}
	}
	// epsilon=1/32 means a few MRU insertions may displace one hot block,
	// but most of the hot set must survive.
	if surviving < 2 {
		t.Errorf("only %d/3 hot blocks survived a scan under BIP", surviving)
	}
}

func TestSRRIPScanResistance(t *testing.T) {
	// SRRIP: hot blocks at RRPV 0, scan blocks inserted at rripMax-1.
	// A one-pass scan should not wipe a re-referenced working set the way
	// it does under LRU.
	lruMisses := missesUnderPolicy(t, NewLRUPolicy(), scanWorkload())
	srripMisses := missesUnderPolicy(t, NewSRRIP(), scanWorkload())
	if srripMisses >= lruMisses {
		t.Errorf("SRRIP misses %d >= LRU misses %d on mixed scan workload", srripMisses, lruMisses)
	}
}

// scanWorkload interleaves a small hot set with long scans through set 0
// of a 4-set, 4-way cache.
func scanWorkload() []cache.AccessInfo {
	var out []cache.AccessInfo
	hot := []uint64{0, 4}
	scan := uint64(400)
	for round := 0; round < 200; round++ {
		for rep := 0; rep < 3; rep++ {
			for _, b := range hot {
				out = append(out, ai(b))
			}
		}
		for i := uint64(0); i < 6; i++ { // scan burst through the same set
			out = append(out, ai(scan))
			scan += 4
		}
	}
	return out
}

func missesUnderPolicy(t *testing.T, p cache.Policy, stream []cache.AccessInfo) uint64 {
	t.Helper()
	c, err := cache.NewSetAssoc(4*4*trace.BlockSize, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	var misses uint64
	for _, a := range stream {
		if !c.Access(a).Hit {
			misses++
		}
	}
	return misses
}

func TestDRRIPNotWorseThanWorstConstituent(t *testing.T) {
	stream := scanWorkload()
	s := missesUnderPolicy(t, NewSRRIP(), stream)
	b := missesUnderPolicy(t, NewBRRIP(rng.New(2)), stream)
	d := missesUnderPolicy(t, NewDRRIP(rng.New(2)), stream)
	worst := s
	if b > worst {
		worst = b
	}
	// Set-dueling guarantees near-best, allow 10% slack over the worst
	// constituent to absorb leader-set overhead on this tiny cache.
	if float64(d) > 1.1*float64(worst) {
		t.Errorf("DRRIP misses %d far exceed both constituents (srrip %d, brrip %d)", d, s, b)
	}
}

func TestDIPNotWorseThanWorstConstituent(t *testing.T) {
	stream := scanWorkload()
	lru := missesUnderPolicy(t, NewLRUPolicy(), stream)
	bip := missesUnderPolicy(t, NewBIP(rng.New(4)), stream)
	dip := missesUnderPolicy(t, NewDIP(rng.New(4)), stream)
	worst := lru
	if bip > worst {
		worst = bip
	}
	if float64(dip) > 1.1*float64(worst) {
		t.Errorf("DIP misses %d far exceed both constituents (lru %d, bip %d)", dip, lru, bip)
	}
}

func TestBRRIPThrashResistance(t *testing.T) {
	// Cyclic working set of assoc+2 blocks: SRRIP thrashes like LRU,
	// BRRIP's mostly-distant insertion keeps a subset resident.
	var stream []cache.AccessInfo
	blocks := []uint64{0, 4, 8, 12, 16, 20} // 6 blocks, 4 ways, set 0
	for round := 0; round < 300; round++ {
		for _, b := range blocks {
			stream = append(stream, ai(b))
		}
	}
	srrip := missesUnderPolicy(t, NewSRRIP(), stream)
	brrip := missesUnderPolicy(t, NewBRRIP(rng.New(6)), stream)
	if brrip >= srrip {
		t.Errorf("BRRIP misses %d >= SRRIP misses %d on cyclic overflow", brrip, srrip)
	}
}

func TestSHiPLearnsDeadPC(t *testing.T) {
	// One PC fills blocks that are never reused; another fills blocks
	// that are always reused. After training, dead-PC fills must insert
	// at distant RRPV.
	p := NewSHiP()
	p.Attach(4, 4)
	const deadPC, livePC = 0x1000, 0x2000
	// Train the dead PC: keep set 0 full of dead-PC fills and let the
	// victim search evict them unused, decrementing the signature.
	for w := 0; w < 4; w++ {
		p.Fill(0, w, &cache.AccessInfo{PC: deadPC})
	}
	for i := 0; i < 50; i++ {
		v := p.Victim(0, &cache.AccessInfo{}) // evicted unused → decrement
		p.Fill(0, v, &cache.AccessInfo{PC: deadPC})
	}
	// Train the live PC: every residency sees a reuse.
	for i := 0; i < 50; i++ {
		p.Fill(1, 0, &cache.AccessInfo{PC: livePC})
		p.Hit(1, 0, &cache.AccessInfo{}) // reused → increment
	}
	p.Fill(2, 0, &cache.AccessInfo{PC: deadPC})
	p.Fill(2, 1, &cache.AccessInfo{PC: livePC})
	if p.rrpv[2*4+0] != rripMax {
		t.Errorf("dead-PC fill RRPV = %d, want %d (distant)", p.rrpv[2*4+0], rripMax)
	}
	if p.rrpv[2*4+1] != rripMax-1 {
		t.Errorf("live-PC fill RRPV = %d, want %d (long)", p.rrpv[2*4+1], rripMax-1)
	}
}

func TestSignatureStableAndBounded(t *testing.T) {
	f := func(pc uint64) bool {
		s := Signature(pc)
		return s == Signature(pc) && int(s) < 1<<shipTableBits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Signature(0x400000) == Signature(0x400004) {
		t.Error("adjacent instructions collide; signature ignores low PC bits poorly")
	}
}

func TestOPTBeatsLRUOnCyclicSet(t *testing.T) {
	// The classic case: cyclic reuse over assoc+1 blocks. LRU gets 0%
	// hits, OPT keeps ways-1 of them resident.
	var stream []cache.AccessInfo
	blocks := []uint64{0, 4, 8, 12, 16} // 5 blocks, 4 ways, all set 0
	for round := 0; round < 100; round++ {
		for _, b := range blocks {
			stream = append(stream, ai(b))
		}
	}
	annotate(stream)
	lru := missesUnderPolicy(t, NewLRUPolicy(), stream)
	opt := missesUnderPolicy(t, NewOPT(), stream)
	if lru != uint64(len(stream)) {
		t.Errorf("LRU misses = %d, want %d (total thrash)", lru, len(stream))
	}
	if opt >= lru/2 {
		t.Errorf("OPT misses = %d, not substantially better than LRU %d", opt, lru)
	}
}

// annotate fills NextUse like cache.AnnotateNextUse but for AccessInfo
// slices built directly in tests.
func annotate(stream []cache.AccessInfo) {
	next := map[uint64]int64{}
	for i := len(stream) - 1; i >= 0; i-- {
		stream[i].Index = int64(i)
		if n, ok := next[stream[i].Block]; ok {
			stream[i].NextUse = n
		} else {
			stream[i].NextUse = cache.NoNextUse
		}
		next[stream[i].Block] = int64(i)
	}
}

// TestOPTIsLowerBound is the core property test of the policy package:
// on random streams, OPT never incurs more misses than any other policy.
func TestOPTIsLowerBound(t *testing.T) {
	f := func(seed uint64) bool {
		rnd := rng.New(seed)
		n := 2000 + rnd.Intn(2000)
		stream := make([]cache.AccessInfo, n)
		for i := range stream {
			stream[i] = cache.AccessInfo{
				Block: rnd.Uint64n(96),
				PC:    0x400 + rnd.Uint64n(32)*4,
			}
		}
		annotate(stream)
		opt := missesUnderPolicy(t, NewOPT(), stream)
		for _, mk := range Catalogue(seed) {
			p := mk()
			if p.Name() == "opt" {
				continue
			}
			if missesUnderPolicy(t, p, stream) < opt {
				t.Logf("policy %s beat OPT on seed %d", p.Name(), seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPoliciesDeterministic(t *testing.T) {
	stream := scanWorkload()
	for _, name := range Names(42) {
		mk := func() cache.Policy {
			f, err := ByName(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			return f()
		}
		a := missesUnderPolicy(t, mk(), stream)
		b := missesUnderPolicy(t, mk(), stream)
		if a != b {
			t.Errorf("%s: runs with identical seeds diverged (%d vs %d misses)", name, a, b)
		}
	}
}

func TestDuelRoles(t *testing.T) {
	var d duel
	d.init(1024)
	aLeaders, bLeaders := 0, 0
	for s := 0; s < 1024; s++ {
		switch d.kind(s) {
		case +1:
			aLeaders++
		case -1:
			bLeaders++
		}
	}
	if aLeaders != 16 || bLeaders != 16 {
		t.Errorf("leader counts = (%d,%d), want (16,16)", aLeaders, bLeaders)
	}
	// A-leaders always run A, B-leaders always run B, regardless of PSEL.
	for i := 0; i < 2000; i++ {
		d.observeMiss(0) // A leader misses → psel rises → followers pick B
	}
	if !d.useA(0) {
		t.Error("A leader stopped using A")
	}
	if d.useA(d.period/2 + 1) {
		t.Error("B leader used A")
	}
	if d.useA(1) {
		t.Error("follower chose A despite A-leader misses saturating PSEL")
	}
}

func TestDuelTinyCache(t *testing.T) {
	var d duel
	d.init(4) // fewer sets than the leader period
	// Must not panic and must still classify sets.
	for s := 0; s < 4; s++ {
		d.observeMiss(s)
		d.useA(s)
	}
}
