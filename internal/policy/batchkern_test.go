package policy

import (
	"fmt"
	"reflect"
	"testing"

	"sharellc/internal/cache"
	"sharellc/internal/rng"
	"sharellc/internal/trace"
)

// kernelNames lists the catalogue policies that carry a monomorphic
// batch kernel: every realistic policy (OPT stays on the generic loop
// by design — see batchkern.go).
func kernelNames() []string {
	var names []string
	for _, n := range Names(1) {
		if Realistic(n) {
			names = append(names, n)
		}
	}
	return names
}

// kernStream builds a deterministic stream with a hot working set (so
// hits dominate, as in real replay), several cores and a small PC pool
// (so SHiP's SHCT trains and SHiP-S sees cross-core reuse), and a store
// mix (so the dirty-fill path runs).
func kernStream(n, blocks int, seed uint64) []cache.AccessInfo {
	rnd := rng.New(seed)
	stream := make([]cache.AccessInfo, n)
	for i := range stream {
		b := uint64(rnd.Intn(blocks))
		if rnd.Bool(0.5) {
			b = uint64(rnd.Intn(blocks / 8))
		}
		stream[i] = cache.AccessInfo{
			Block: b,
			Core:  uint8(rnd.Intn(4)),
			PC:    0x400000 + uint64(rnd.Intn(96))*12,
			Write: rnd.Bool(0.2),
			Index: int64(i),
		}
	}
	cache.AssignBlockIDs(stream)
	return stream
}

// numBlocksOf returns the dense BlockID space size of stream.
func numBlocksOf(stream []cache.AccessInfo) int {
	n := 0
	for i := range stream {
		if int(stream[i].BlockID) >= n {
			n = int(stream[i].BlockID) + 1
		}
	}
	return n
}

// replayCols drives stream through c.ReplayBatchCols in deliberately
// uneven chunks, returning the outcome words.
func replayCols(c *cache.SetAssoc, stream []cache.AccessInfo, numBlocks, chunk int) []uint32 {
	blk := make([]uint64, len(stream))
	id := make([]uint32, len(stream))
	for i := range stream {
		blk[i] = stream[i].Block
		id[i] = stream[i].BlockID
	}
	active := make([]uint32, numBlocks)
	lineID := make([]uint32, c.Sets()*c.Ways())
	out := make([]uint32, len(stream))
	for lo := 0; lo < len(stream); lo += chunk {
		hi := lo + chunk
		if hi > len(stream) {
			hi = len(stream)
		}
		c.ReplayBatchCols(blk[lo:hi], id[lo:hi], stream[lo:hi], active, lineID, out[lo:hi])
	}
	return out
}

// TestBatchPolicyVsGeneric replays every specialized policy through its
// monomorphic kernel and through the generic interface loop (kernels
// disabled at construction) and demands byte-equal outcome words,
// identical cache counters and contents, and deeply equal final policy
// state — including RNG cursors, dueling counters and SHCT tables. Both
// a SWAR-eligible associativity (16) and a scalar-search one (4) run;
// PLRU covers both since they are powers of two.
func TestBatchPolicyVsGeneric(t *testing.T) {
	const seed = 0x5eed
	stream := kernStream(60000, 4096, 11)
	numBlocks := numBlocksOf(stream)
	for _, ways := range []int{4, 16} {
		sizeBytes := 64 * ways * trace.BlockSize // 64 sets
		for _, name := range kernelNames() {
			t.Run(fmt.Sprintf("%s/ways%d", name, ways), func(t *testing.T) {
				fac, err := ByName(name, seed)
				if err != nil {
					t.Fatal(err)
				}
				specPol, genPol := fac(), fac()
				spec, err := cache.NewSetAssoc(sizeBytes, ways, specPol)
				if err != nil {
					t.Fatal(err)
				}
				prev := cache.EnableBatchKernels(false)
				gen, err := cache.NewSetAssoc(sizeBytes, ways, genPol)
				cache.EnableBatchKernels(prev)
				if err != nil {
					t.Fatal(err)
				}
				if !spec.HasBatchKernel() {
					t.Fatalf("policy %s: no batch kernel bound", name)
				}
				if gen.HasBatchKernel() {
					t.Fatal("generic twin bound a kernel despite EnableBatchKernels(false)")
				}
				outSpec := replayCols(spec, stream, numBlocks, 777)
				outGen := replayCols(gen, stream, numBlocks, 777)
				for k := range outSpec {
					if outSpec[k] != outGen[k] {
						t.Fatalf("access %d (block %d): kernel outcome %#x, generic %#x",
							k, stream[k].Block, outSpec[k], outGen[k])
					}
				}
				sa, sh, sf, se := spec.Stats()
				ga, gh, gf, ge := gen.Stats()
				if sa != ga || sh != gh || sf != gf || se != ge {
					t.Fatalf("stats diverge: kernel (%d %d %d %d), generic (%d %d %d %d)",
						sa, sh, sf, se, ga, gh, gf, ge)
				}
				if sh == 0 || se == 0 {
					t.Fatalf("degenerate stream: hits=%d evicts=%d", sh, se)
				}
				if !reflect.DeepEqual(spec.Contents(), gen.Contents()) {
					t.Fatal("cache contents diverge")
				}
				if !reflect.DeepEqual(specPol, genPol) {
					t.Fatalf("final policy state diverges:\nkernel:  %+v\ngeneric: %+v", specPol, genPol)
				}
			})
		}
	}
}

// TestBatchKernelToggle pins the SHARELLC_BATCH_POLICY escape hatch's
// programmatic form: construction honors the global toggle at bind time
// and existing caches keep the kernel they were built with.
func TestBatchKernelToggle(t *testing.T) {
	mk := func() *cache.SetAssoc {
		c, err := cache.NewSetAssoc(64*16*trace.BlockSize, 16, NewLRUPolicy())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	on := mk()
	if !on.HasBatchKernel() {
		t.Fatal("kernel not bound with specialization enabled")
	}
	prev := cache.EnableBatchKernels(false)
	defer cache.EnableBatchKernels(prev)
	if off := mk(); off.HasBatchKernel() {
		t.Fatal("kernel bound with specialization disabled")
	}
	if !on.HasBatchKernel() {
		t.Fatal("existing cache lost its kernel when the toggle flipped")
	}
}

// BenchmarkBatchKernel measures the monomorphic probe of every
// specialized policy (plus each policy's generic interface loop under
// /generic) in ns per access over a hit-heavy stream: the per-policy
// section of scripts/bench.sh's BENCH_PR8.json.
func BenchmarkBatchKernel(b *testing.B) {
	const (
		seed  = 0xbe4c
		ways  = 16
		nAccs = 1 << 16
	)
	stream := kernStream(nAccs, 1<<13, 23)
	numBlocks := numBlocksOf(stream)
	blk := make([]uint64, len(stream))
	id := make([]uint32, len(stream))
	for i := range stream {
		blk[i] = stream[i].Block
		id[i] = stream[i].BlockID
	}
	run := func(b *testing.B, name string, specialized bool) {
		fac, err := ByName(name, seed)
		if err != nil {
			b.Fatal(err)
		}
		prev := cache.EnableBatchKernels(specialized)
		c, err := cache.NewSetAssoc(256*ways*trace.BlockSize, ways, fac())
		cache.EnableBatchKernels(prev)
		if err != nil {
			b.Fatal(err)
		}
		if c.HasBatchKernel() != specialized {
			b.Fatalf("kernel bound = %v, want %v", c.HasBatchKernel(), specialized)
		}
		active := make([]uint32, numBlocks)
		lineID := make([]uint32, c.Sets()*ways)
		out := make([]uint32, batchChunk)
		b.SetBytes(int64(len(stream)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for lo := 0; lo < len(stream); lo += batchChunk {
				hi := lo + batchChunk
				if hi > len(stream) {
					hi = len(stream)
				}
				c.ReplayBatchCols(blk[lo:hi], id[lo:hi], stream[lo:hi], active, lineID, out[:hi-lo])
			}
		}
		b.StopTimer()
		nsPerAccess := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(stream))
		b.ReportMetric(nsPerAccess, "ns/access")
	}
	for _, name := range kernelNames() {
		b.Run(name, func(b *testing.B) { run(b, name, true) })
	}
	for _, name := range kernelNames() {
		b.Run(name+"/generic", func(b *testing.B) { run(b, name, false) })
	}
}

// batchChunk mirrors internal/sharing's batchSize (not importable here:
// sharing imports policy).
const batchChunk = 2 << 10
