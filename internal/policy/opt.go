package policy

import (
	"sharellc/internal/cache"
	"sharellc/internal/mem"
)

// OPT is Belady's offline-optimal replacement policy: evict the resident
// block whose next reference lies farthest in the future (preferring
// blocks that are never referenced again). It is exact when the replayed
// stream carries precomputed next-use indices (cache.AnnotateNextUse);
// accesses lacking annotation are treated as never-reused.
//
// OPT is the paper's yardstick for how much room any realistic policy —
// sharing-aware or not — has left.
type OPT struct {
	ways    int
	nextUse []int64
	rankBuf []int
}

// NewOPT returns a Belady OPT policy.
func NewOPT() *OPT { return &OPT{} }

// Name implements cache.Policy.
func (p *OPT) Name() string { return "opt" }

// Attach implements cache.Policy.
func (p *OPT) Attach(sets, ways int) {
	p.ways = ways
	p.nextUse = make([]int64, sets*ways)
	mem.Hugepages(p.nextUse)
	for i := range p.nextUse {
		p.nextUse[i] = cache.NoNextUse
	}
}

// Hit implements cache.Policy: the line's horizon advances to the
// access's own next use.
func (p *OPT) Hit(set, way int, a *cache.AccessInfo) {
	p.nextUse[set*p.ways+way] = a.NextUse
}

// Fill implements cache.Policy.
func (p *OPT) Fill(set, way int, a *cache.AccessInfo) {
	p.nextUse[set*p.ways+way] = a.NextUse
}

// Victim implements cache.Policy: farthest next use wins; never-reused
// lines (NoNextUse) beat everything. Ties go to the lowest way.
func (p *OPT) Victim(set int, _ *cache.AccessInfo) int {
	base := set * p.ways
	victim, best := 0, p.horizonAt(base)
	for w := 1; w < p.ways; w++ {
		if h := p.horizonAt(base + w); h > best {
			victim, best = w, h
		}
	}
	return victim
}

// RankVictims implements VictimRanker: farthest next use first.
func (p *OPT) RankVictims(set int, _ *cache.AccessInfo) []int {
	base := set * p.ways
	p.rankBuf = rankByKey(p.ways, func(w int) int64 {
		return p.horizonAt(base + w)
	}, p.rankBuf)
	return p.rankBuf
}

// PerSetIndependent reports that OPT qualifies for set-sharded replay: its
// per-line next-use horizons are global stream indices that do not depend
// on how accesses to other sets interleave.
func (p *OPT) PerSetIndependent() bool { return true }

// horizonAt maps NoNextUse to a value beyond any real stream index so
// never-reused lines always rank first.
func (p *OPT) horizonAt(idx int) int64 {
	if h := p.nextUse[idx]; h != cache.NoNextUse {
		return h
	}
	return 1 << 62
}
