package policy

import (
	"testing"

	"sharellc/internal/cache"
	"sharellc/internal/rng"
	"sharellc/internal/trace"
)

func TestSHiPSTrainsDoubleOnCrossCoreReuse(t *testing.T) {
	p := NewSHiPS()
	p.Attach(4, 4)
	const pc = 0x3000
	sig := Signature(pc)
	start := p.shct[sig]
	// One residency with a cross-core first reuse: +2 total.
	p.Fill(0, 0, &cache.AccessInfo{PC: pc, Core: 0})
	p.Hit(0, 0, &cache.AccessInfo{Core: 1})
	if got := p.shct[sig]; got != start+2 {
		t.Errorf("cross-core reuse trained %d→%d, want +2", start, got)
	}
	// Same-core first reuse: +1 only.
	p2 := NewSHiPS()
	p2.Attach(4, 4)
	p2.Fill(0, 0, &cache.AccessInfo{PC: pc, Core: 0})
	p2.Hit(0, 0, &cache.AccessInfo{Core: 0})
	if got := p2.shct[sig]; got != start+1 {
		t.Errorf("same-core reuse trained %d→%d, want +1", start, got)
	}
}

func TestSHiPSConfidentSiteInsertsAtZero(t *testing.T) {
	p := NewSHiPS()
	p.Attach(4, 4)
	const pc = 0x5000
	sig := Signature(pc)
	p.shct[sig] = shipCounterMax // fully confident sharing site
	p.Fill(1, 2, &cache.AccessInfo{PC: pc, Core: 3})
	if got := p.rrpv[1*4+2]; got != 0 {
		t.Errorf("confident-site fill RRPV = %d, want 0", got)
	}
	// An unconfident site inserts like SHiP (long or distant).
	p.shct[Signature(0x6000)] = 1
	p.Fill(1, 3, &cache.AccessInfo{PC: 0x6000, Core: 3})
	if got := p.rrpv[1*4+3]; got != rripMax-1 {
		t.Errorf("weak-site fill RRPV = %d, want %d", got, rripMax-1)
	}
}

func TestSHiPSBeatsSHiPOnSharedReuse(t *testing.T) {
	// A stream where one PC fills blocks with cross-core reuse just past
	// what plain SRRIP-insertion survives, and another PC streams
	// single-use blocks. SHiP-S protects the sharing site harder.
	var stream []cache.AccessInfo
	add := func(core uint8, block uint64, pc uint64) {
		stream = append(stream, cache.AccessInfo{Core: core, Block: block, PC: pc, Index: int64(len(stream))})
	}
	const sharePC, streamPC = 0x100, 0x200
	next := uint64(1000)
	for round := 0; round < 400; round++ {
		b := uint64(round % 3) // 3 hot shared blocks in set 0 (block*4)
		add(0, b*4, sharePC)
		add(1, b*4, sharePC)
		for i := 0; i < 5; i++ { // single-use churn through the same set
			add(2, next*4, streamPC)
			next++
		}
	}
	cache.AnnotateNextUse(stream)
	run := func(p cache.Policy) uint64 {
		c, err := cache.NewSetAssoc(4*4*trace.BlockSize, 4, p)
		if err != nil {
			t.Fatal(err)
		}
		var misses uint64
		for _, a := range stream {
			if !c.Access(a).Hit {
				misses++
			}
		}
		return misses
	}
	ship := run(NewSHiP())
	ships := run(NewSHiPS())
	if ships > ship {
		t.Errorf("SHiP-S misses %d > SHiP misses %d on shared-reuse workload", ships, ship)
	}
}

func TestSHiPSValidUnderFuzz(t *testing.T) {
	c, err := cache.NewSetAssoc(16*trace.BlockSize, 4, NewSHiPS())
	if err != nil {
		t.Fatal(err)
	}
	rnd := rng.New(31)
	for i := 0; i < 20000; i++ {
		c.Access(cache.AccessInfo{
			Block: rnd.Uint64n(64),
			Core:  uint8(rnd.Intn(8)),
			PC:    0x400 + rnd.Uint64n(16)*4,
			Write: rnd.Bool(0.3),
		})
	}
	if got := len(c.Contents()); got > 16 {
		t.Errorf("%d resident blocks exceed capacity", got)
	}
}
