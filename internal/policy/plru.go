package policy

import (
	"math/bits"

	"sharellc/internal/cache"
	"sharellc/internal/mem"
)

// PLRU is tree-based pseudo-LRU, the approximation of LRU that commercial
// caches actually implement: a binary tree of direction bits per set,
// flipped away from a way on every touch, followed toward the "cold" side
// on victim selection. State is ways-1 bits per set instead of full
// recency ordering.
//
// PLRU requires a power-of-two associativity.
type PLRU struct {
	ways    int
	levels  int
	tree    []uint64 // one bitset of ways-1 direction bits per set
	rankBuf []int
}

// NewPLRU returns a tree pseudo-LRU policy.
func NewPLRU() *PLRU { return &PLRU{} }

// Name implements cache.Policy.
func (p *PLRU) Name() string { return "plru" }

// Attach implements cache.Policy. It panics on non-power-of-two
// associativity (a configuration error, like a bad cache geometry).
func (p *PLRU) Attach(sets, ways int) {
	if ways <= 0 || ways&(ways-1) != 0 {
		panic("policy: PLRU requires power-of-two associativity")
	}
	if ways > 64 {
		panic("policy: PLRU supports at most 64 ways")
	}
	p.ways = ways
	p.levels = bits.TrailingZeros(uint(ways))
	p.tree = make([]uint64, sets)
	mem.Hugepages(p.tree)
}

// touch flips every tree node on the path to way so the path points away
// from it.
func (p *PLRU) touch(set, way int) {
	if p.levels == 0 {
		return
	}
	node := 0 // root at index 0; children of n are 2n+1, 2n+2
	for level := p.levels - 1; level >= 0; level-- {
		goRight := way>>level&1 == 1
		if goRight {
			// Point the node LEFT (away from the touched way).
			p.tree[set] &^= 1 << node
			node = 2*node + 2
		} else {
			p.tree[set] |= 1 << node
			node = 2*node + 1
		}
	}
}

// Hit implements cache.Policy.
func (p *PLRU) Hit(set, way int, _ *cache.AccessInfo) { p.touch(set, way) }

// Fill implements cache.Policy.
func (p *PLRU) Fill(set, way int, _ *cache.AccessInfo) { p.touch(set, way) }

// Promote implements core.Promoter.
func (p *PLRU) Promote(set, way int) { p.touch(set, way) }

// PerSetIndependent reports that PLRU qualifies for set-sharded replay:
// its direction-bit trees are pure per-set state.
func (p *PLRU) PerSetIndependent() bool { return true }

// Demote points the whole path at way, making it the next victim
// (core.Demoter).
func (p *PLRU) Demote(set, way int) {
	node := 0
	for level := p.levels - 1; level >= 0; level-- {
		goRight := way>>level&1 == 1
		if goRight {
			p.tree[set] |= 1 << node
			node = 2*node + 2
		} else {
			p.tree[set] &^= 1 << node
			node = 2*node + 1
		}
	}
}

// Victim implements cache.Policy: follow the direction bits from the root
// (bit set = go right).
func (p *PLRU) Victim(set int, _ *cache.AccessInfo) int {
	node, way := 0, 0
	for level := 0; level < p.levels; level++ {
		if p.tree[set]>>node&1 == 1 {
			way = way<<1 | 1
			node = 2*node + 2
		} else {
			way <<= 1
			node = 2*node + 1
		}
	}
	return way
}

// RankVictims implements VictimRanker: ways ordered by how many direction
// bits along their path currently point at them (victim path first). Ties
// break by way index.
func (p *PLRU) RankVictims(set int, _ *cache.AccessInfo) []int {
	p.rankBuf = rankByKey(p.ways, func(w int) int64 {
		score := int64(0)
		node := 0
		for level := p.levels - 1; level >= 0; level-- {
			goRight := w>>level&1 == 1
			bit := p.tree[set]>>node&1 == 1
			if goRight == bit {
				score++ // this node points toward w
			}
			if goRight {
				node = 2*node + 2
			} else {
				node = 2*node + 1
			}
		}
		return score
	}, p.rankBuf)
	return p.rankBuf
}
