package policy

import (
	"sharellc/internal/cache"
	"sharellc/internal/mem"
	"sharellc/internal/rng"
)

// rripBits is the RRPV width used by the RRIP family (2 bits, as in the
// original ISCA'10 proposal and in the paper's policy comparison).
const rripBits = 2

// rripMax is the "distant re-reference" RRPV value.
const rripMax = 1<<rripBits - 1

// rripCore holds the per-line re-reference prediction values and the
// shared victim search of SRRIP/BRRIP/DRRIP/SHiP.
type rripCore struct {
	ways    int
	rrpv    []uint8
	rankBuf []int
}

func (p *rripCore) Attach(sets, ways int) {
	p.ways = ways
	p.rrpv = make([]uint8, sets*ways)
	mem.Hugepages(p.rrpv)
	// Empty ways start at distant so cold sets fill predictably, though
	// the cache fills invalid ways without consulting the policy anyway.
	for i := range p.rrpv {
		p.rrpv[i] = rripMax
	}
}

// hit promotes the line to near-immediate re-reference (hit priority HP).
func (p *rripCore) Hit(set, way int, _ *cache.AccessInfo) {
	p.rrpv[set*p.ways+way] = 0
}

// Victim implements the standard RRIP search: find a way at rripMax,
// aging the whole set until one appears.
func (p *rripCore) Victim(set int, _ *cache.AccessInfo) int {
	base := set * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] == rripMax {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
	}
}

// RankVictims implements VictimRanker: higher RRPV first.
func (p *rripCore) RankVictims(set int, _ *cache.AccessInfo) []int {
	p.rankBuf = rankByKey(p.ways, func(w int) int64 {
		return int64(p.rrpv[set*p.ways+w])
	}, p.rankBuf)
	return p.rankBuf
}

// insert sets the fill RRPV of way.
func (p *rripCore) insert(set, way int, v uint8) { p.rrpv[set*p.ways+way] = v }

// Promote moves way to near-immediate re-reference without touching any
// training state (core.Promoter).
func (p *rripCore) Promote(set, way int) { p.rrpv[set*p.ways+way] = 0 }

// Demote moves way to distant re-reference (core.Demoter).
func (p *rripCore) Demote(set, way int) { p.rrpv[set*p.ways+way] = rripMax }

// SRRIP (static RRIP, Jaleel et al. ISCA'10) inserts fills at RRPV
// max-1 ("long re-reference interval") and promotes hits to 0.
type SRRIP struct{ rripCore }

// NewSRRIP returns an SRRIP policy.
func NewSRRIP() *SRRIP { return &SRRIP{} }

// Name implements cache.Policy.
func (p *SRRIP) Name() string { return "srrip" }

// Fill implements cache.Policy.
func (p *SRRIP) Fill(set, way int, _ *cache.AccessInfo) { p.insert(set, way, rripMax-1) }

// PerSetIndependent reports that SRRIP qualifies for set-sharded replay.
// Declared on SRRIP (not rripCore) deliberately: BRRIP, DRRIP and SHiP
// embed rripCore but carry cross-set state and must not inherit it.
func (p *SRRIP) PerSetIndependent() bool { return true }

// brripEpsilon is the probability BRRIP inserts at long (rather than
// distant) re-reference.
const brripEpsilon = 1.0 / 32

// BRRIP (bimodal RRIP) inserts at distant re-reference most of the time,
// giving thrash resistance analogous to BIP.
type BRRIP struct {
	rripCore
	rnd *rng.Source
}

// NewBRRIP returns a BRRIP policy drawing its insertion coin from rnd.
func NewBRRIP(rnd *rng.Source) *BRRIP { return &BRRIP{rnd: rnd} }

// Name implements cache.Policy.
func (p *BRRIP) Name() string { return "brrip" }

// Fill implements cache.Policy.
func (p *BRRIP) Fill(set, way int, _ *cache.AccessInfo) {
	if p.rnd.Bool(brripEpsilon) {
		p.insert(set, way, rripMax-1)
	} else {
		p.insert(set, way, rripMax)
	}
}

// DRRIP set-duels SRRIP against BRRIP, the strongest of the paper's
// "recent proposals" that uses no auxiliary prediction table.
type DRRIP struct {
	rripCore
	rnd  *rng.Source
	duel duel
}

// NewDRRIP returns a DRRIP policy.
func NewDRRIP(rnd *rng.Source) *DRRIP { return &DRRIP{rnd: rnd} }

// Name implements cache.Policy.
func (p *DRRIP) Name() string { return "drrip" }

// Attach implements cache.Policy.
func (p *DRRIP) Attach(sets, ways int) {
	p.rripCore.Attach(sets, ways)
	p.duel.init(sets)
}

// Fill implements cache.Policy.
func (p *DRRIP) Fill(set, way int, _ *cache.AccessInfo) {
	p.duel.observeMiss(set)
	if p.duel.useA(set) { // A = SRRIP
		p.insert(set, way, rripMax-1)
		return
	}
	if p.rnd.Bool(brripEpsilon) { // B = BRRIP
		p.insert(set, way, rripMax-1)
	} else {
		p.insert(set, way, rripMax)
	}
}
