// Package policy implements the LLC replacement policies studied by the
// paper: the LRU baseline, a catalogue of "recent proposals" from the
// 2008-2013 literature (NRU, LIP/BIP/DIP, SRRIP/BRRIP/DRRIP, SHiP), simple
// references (Random, FIFO) and the offline-optimal Belady OPT policy.
//
// Every policy implements cache.Policy. Policies that can enumerate their
// eviction preference order additionally implement VictimRanker, which the
// sharing-aware protection wrapper in internal/core uses to skip protected
// blocks while otherwise honouring the base policy's ordering.
package policy

import (
	"fmt"
	"sort"

	"sharellc/internal/cache"
	"sharellc/internal/rng"
)

// VictimRanker is implemented by policies that can rank every way of a set
// from most-preferred victim to least-preferred. The returned slice has
// one entry per way and is valid until the next call.
type VictimRanker interface {
	RankVictims(set int, a *cache.AccessInfo) []int
}

// Factory constructs a fresh policy instance. Policies carry per-cache
// state, so each simulated cache needs its own instance; experiments pass
// factories around instead of instances.
type Factory func() cache.Policy

// Catalogue returns the named policy factories in presentation order:
// baselines first, then the recent proposals, then OPT.
//
// Policies that flip coins (Random, BIP, BRRIP, DRRIP) are seeded from
// seed so that whole experiments stay deterministic.
func Catalogue(seed uint64) []Factory {
	return []Factory{
		func() cache.Policy { return NewLRUPolicy() },
		func() cache.Policy { return NewRandom(rng.New(seed ^ 0x1)) },
		func() cache.Policy { return NewFIFO() },
		func() cache.Policy { return NewNRU() },
		func() cache.Policy { return NewPLRU() },
		func() cache.Policy { return NewLIP() },
		func() cache.Policy { return NewBIP(rng.New(seed ^ 0x2)) },
		func() cache.Policy { return NewDIP(rng.New(seed ^ 0x3)) },
		func() cache.Policy { return NewSRRIP() },
		func() cache.Policy { return NewBRRIP(rng.New(seed ^ 0x4)) },
		func() cache.Policy { return NewDRRIP(rng.New(seed ^ 0x5)) },
		func() cache.Policy { return NewSHiP() },
		func() cache.Policy { return NewSHiPS() },
		func() cache.Policy { return NewOPT() },
	}
}

// ByName returns a factory for the named policy, or an error listing the
// valid names. Names match Policy.Name values.
func ByName(name string, seed uint64) (Factory, error) {
	for _, f := range Catalogue(seed) {
		if f().Name() == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("policy: unknown policy %q (have %v)", name, Names(seed))
}

// Names lists the catalogue policy names in order.
func Names(seed uint64) []string {
	var names []string
	for _, f := range Catalogue(seed) {
		names = append(names, f().Name())
	}
	return names
}

// Realistic reports whether the named policy is implementable in hardware
// (everything except Belady OPT).
func Realistic(name string) bool { return name != "opt" }

// PerSet reports whether p's replacement decisions in one set depend only
// on the accesses to that set, making it eligible for set-sharded replay
// (sharing.ReplayParallel). LRU, FIFO, NRU, PLRU, LIP, SRRIP and OPT
// qualify; policies with cross-set state — shared RNG draws (Random, BIP,
// BRRIP), set-dueling selectors (DIP, DRRIP) or global prediction tables
// (SHiP) — do not, and fall back to the sequential replay path.
func PerSet(p cache.Policy) bool { return cache.PerSetIndependent(p) }

// rankByKey is a helper for VictimRanker implementations: it returns way
// indices sorted by descending key (higher key = better victim), breaking
// ties by ascending way index for determinism.
func rankByKey(ways int, key func(way int) int64, buf []int) []int {
	if cap(buf) < ways {
		buf = make([]int, ways)
	}
	buf = buf[:ways]
	for i := range buf {
		buf[i] = i
	}
	sort.SliceStable(buf, func(i, j int) bool {
		ki, kj := key(buf[i]), key(buf[j])
		if ki != kj {
			return ki > kj
		}
		return buf[i] < buf[j]
	})
	return buf
}
