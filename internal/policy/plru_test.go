package policy

import (
	"testing"
	"testing/quick"

	"sharellc/internal/cache"
	"sharellc/internal/rng"
	"sharellc/internal/trace"
)

func TestPLRUPanicsOnBadWays(t *testing.T) {
	for _, ways := range []int{3, 6, 0, 128} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Attach(1, %d) did not panic", ways)
				}
			}()
			NewPLRU().Attach(1, ways)
		}()
	}
}

func TestPLRUDirectMapped(t *testing.T) {
	// 1-way PLRU degenerates to "always way 0" and must not panic.
	p := NewPLRU()
	p.Attach(4, 1)
	p.Fill(0, 0, &cache.AccessInfo{})
	if v := p.Victim(0, &cache.AccessInfo{}); v != 0 {
		t.Errorf("victim = %d", v)
	}
}

func TestPLRUVictimNeverMostRecent(t *testing.T) {
	// Core guarantee of tree PLRU: the victim is never the most recently
	// touched way.
	f := func(seed uint64) bool {
		rnd := rng.New(seed)
		p := NewPLRU()
		p.Attach(1, 8)
		last := -1
		for i := 0; i < 500; i++ {
			w := rnd.Intn(8)
			p.Hit(0, w, &cache.AccessInfo{})
			last = w
			if p.Victim(0, &cache.AccessInfo{}) == last {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPLRURetainsFittingWorkingSet(t *testing.T) {
	// Like true LRU, tree PLRU keeps a working set equal to the
	// associativity resident under cyclic access.
	c, err := cache.NewSetAssoc(8*trace.BlockSize, 8, NewPLRU())
	if err != nil {
		t.Fatal(err)
	}
	blocks := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
	for _, b := range blocks {
		c.Access(cache.AccessInfo{Block: b})
	}
	for round := 0; round < 3; round++ {
		for _, b := range blocks {
			if !c.Access(cache.AccessInfo{Block: b}).Hit {
				t.Fatalf("round %d: block %d missed", round, b)
			}
		}
	}
}

func TestPLRUApproximatesLRU(t *testing.T) {
	// On a random skewed stream PLRU should land within a few percent of
	// true LRU's miss count.
	rnd := rng.New(77)
	stream := make([]cache.AccessInfo, 30000)
	z, err := rng.NewZipf(rnd.Split(), 0.9, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stream {
		stream[i] = cache.AccessInfo{Block: uint64(z.Next())}
	}
	run := func(p cache.Policy) uint64 {
		c, err := cache.NewSetAssoc(16*8*trace.BlockSize, 8, p)
		if err != nil {
			t.Fatal(err)
		}
		var misses uint64
		for _, a := range stream {
			if !c.Access(a).Hit {
				misses++
			}
		}
		return misses
	}
	lru := run(NewLRUPolicy())
	plru := run(NewPLRU())
	if float64(plru) > 1.10*float64(lru) {
		t.Errorf("PLRU misses %d exceed LRU %d by more than 10%%", plru, lru)
	}
}

func TestPLRUDemotePointsVictim(t *testing.T) {
	p := NewPLRU()
	p.Attach(1, 8)
	for w := 0; w < 8; w++ {
		p.Fill(0, w, &cache.AccessInfo{})
	}
	for w := 0; w < 8; w++ {
		p.Demote(0, w)
		if v := p.Victim(0, &cache.AccessInfo{}); v != w {
			t.Errorf("after Demote(%d) victim = %d", w, v)
		}
	}
}

func TestPLRURankHeadMatchesVictim(t *testing.T) {
	p := NewPLRU()
	p.Attach(2, 8)
	rnd := rng.New(3)
	for i := 0; i < 1000; i++ {
		p.Hit(rnd.Intn(2), rnd.Intn(8), &cache.AccessInfo{})
		for set := 0; set < 2; set++ {
			rank := p.RankVictims(set, &cache.AccessInfo{})
			if rank[0] != p.Victim(set, &cache.AccessInfo{}) {
				t.Fatalf("rank head %d != victim %d", rank[0], p.Victim(set, &cache.AccessInfo{}))
			}
		}
	}
}
