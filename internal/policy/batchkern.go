package policy

// Monomorphic batch kernels (cache.BatchPolicy) for the realistic
// policy catalogue.
//
// The generic batch probe of internal/cache pays three non-inlinable
// dynamic dispatches per access — Policy.Hit on the hit majority path,
// Victim and Fill on misses — inside the tightest loop of the repo.
// Every kernel below is that same loop specialized to one concrete
// policy type, selected once by NewSetAssoc's type assertion, so the
// policy-state update inlines into the chunk body and runs in the same
// pass that maintains the caller's active/lineID residency tables.
//
// Shared structure (the cache-side transitions are the generic loop's,
// verbatim, in the same order — TestBatchPolicyVsGeneric holds every
// kernel to byte-equal outcomes, counters and final policy state):
//
//	hit:  load active[id] → update policy state at line li-1 → out word.
//	      The per-set state is flat by line index, so the hit path never
//	      recomputes the set from the block address at all.
//	miss: set from blk&mask → victim search (full set) or cold fill →
//	      clear the victim's active entry → store the tag line → policy
//	      insertion state → residency tables → out word.
//
// Policies whose state is one byte per way (the RRIP family's RRPVs,
// NRU's reference bytes) get a SWAR victim search when the
// associativity is a multiple of eight: eight ways are scanned per
// 64-bit word and RRIP aging increments eight RRPVs per add (byte
// values stay ≤ rripMax, so carries never cross byte lanes). The
// lowest matching byte of the zero-byte finder is always exact, which
// matches the scalar scan's lowest-way tie-break. Other geometries
// keep the scalar search inside the specialized loop.
//
// OPT stays on the generic path on purpose: it is the one catalogue
// policy that reads per-access annotations (NextUse) on every call,
// and as the offline yardstick it is not a target the harness needs to
// make fast. Wrapped policies (core.Protector) never reach a kernel —
// the wrapper holds its base as an interface field, so it does not
// re-export the capability.

import (
	"encoding/binary"
	"math/bits"

	"sharellc/internal/cache"
	"sharellc/internal/rng"
)

// SWAR byte-lane constants of the victim searches.
const (
	lowBytes  = 0x0101010101010101
	highBits  = 0x8080808080808080
	rripWide  = rripMax * lowBytes
	laneWidth = 8 // ways scanned per SWAR word
)

// zeroByte returns a mask whose lowest set 0x80 bit marks the lowest
// zero byte of w, or 0 when no byte is zero. Borrows propagate only
// upward, so bits below the first zero byte are never false positives.
func zeroByte(w uint64) uint64 { return (w - lowBytes) &^ w & highBits }

// rripVictim is the standard RRIP victim search — lowest way at
// rripMax, aging every RRPV in the set until one appears — over the
// flat RRPV bytes of one set, eight ways per word when wide.
//
//go:noinline
func rripVictim(rrpv []uint8, base, ways int, wide bool) int {
	set := rrpv[base : base+ways]
	if wide {
		for {
			for off := 0; off < len(set); off += laneWidth {
				if m := zeroByte(binary.LittleEndian.Uint64(set[off:]) ^ rripWide); m != 0 {
					return off + bits.TrailingZeros64(m)>>3
				}
			}
			for off := 0; off < len(set); off += laneWidth {
				binary.LittleEndian.PutUint64(set[off:], binary.LittleEndian.Uint64(set[off:])+lowBytes)
			}
		}
	}
	for {
		for w := 0; w < len(set); w++ {
			if set[w] == rripMax {
				return w
			}
		}
		for w := 0; w < len(set); w++ {
			set[w]++
		}
	}
}

// nruVictim is NRU's search — lowest way with a clear reference byte,
// else clear the whole set and take way 0 — eight ways per word when
// wide.
//
//go:noinline
func nruVictim(ref []uint8, base, ways int, wide bool) int {
	set := ref[base : base+ways]
	if wide {
		for off := 0; off < len(set); off += laneWidth {
			if m := zeroByte(binary.LittleEndian.Uint64(set[off:])); m != 0 {
				return off + bits.TrailingZeros64(m)>>3
			}
		}
		for off := 0; off < len(set); off += laneWidth {
			binary.LittleEndian.PutUint64(set[off:], 0)
		}
		return 0
	}
	for w := 0; w < len(set); w++ {
		if set[w] == 0 {
			return w
		}
	}
	for w := 0; w < len(set); w++ {
		set[w] = 0
	}
	return 0
}

// stampVictim is the min-stamp scan shared by the LRU-stack family
// (FIFO and the LIP/BIP/DIP core; cache.LRU carries its own copy on
// uint64 stamps).
//
//go:noinline
func stampVictim(stamp []int64, base, ways int) int {
	victim, min := 0, stamp[base]
	for w := 1; w < ways; w++ {
		if s := stamp[base+w]; s < min {
			victim, min = w, s
		}
	}
	return victim
}

// stampMin is insertAtLRU's scan half: the smallest stamp in the set.
//
//go:noinline
func stampMin(stamp []int64, base, ways int) int64 {
	min := stamp[base]
	for w := 1; w < ways; w++ {
		if s := stamp[base+w]; s < min {
			min = s
		}
	}
	return min
}

// NewBatchKernel implements cache.BatchPolicy: FIFO's hit path is pure
// bookkeeping (hits change nothing), fills stamp the insertion clock.
func (p *FIFO) NewBatchKernel(c *cache.SetAssoc) cache.BatchKernel {
	mask, ways := c.KernelGeom()
	valid := c.KernelValid()
	stamp := p.stamp
	return func(blk []uint64, id []uint32, accs []cache.AccessInfo, active, lineID, out []uint32) {
		clock := p.clock
		var hits, fills, evicts uint64
		for k := range blk {
			if li := active[id[k]]; li != 0 {
				out[k] = (li - 1) | cache.BatchHit
				hits++
				continue
			}
			set := int(blk[k] & mask)
			var li, o uint32
			if int(valid[set]) == ways {
				base := set * ways
				li, o = uint32(base+stampVictim(stamp, base, ways)), cache.BatchEvict
				active[lineID[li]] = 0
				evicts++
			} else {
				li = c.KernelColdWay(set)
			}
			c.KernelStoreLine(li, blk[k], accs[k].Write)
			clock++
			stamp[li] = clock
			lineID[li] = id[k]
			active[id[k]] = li + 1
			out[k] = li | o
			fills++
		}
		p.clock = clock
		c.KernelCommit(hits, fills, evicts)
	}
}

// NewBatchKernel implements cache.BatchPolicy: Random keeps no state at
// all; the kernel draws the same victim sequence from the shared RNG
// the interface path would.
func (p *Random) NewBatchKernel(c *cache.SetAssoc) cache.BatchKernel {
	mask, ways := c.KernelGeom()
	valid := c.KernelValid()
	rnd := p.rnd
	return func(blk []uint64, id []uint32, accs []cache.AccessInfo, active, lineID, out []uint32) {
		var hits, fills, evicts uint64
		for k := range blk {
			if li := active[id[k]]; li != 0 {
				out[k] = (li - 1) | cache.BatchHit
				hits++
				continue
			}
			set := int(blk[k] & mask)
			var li, o uint32
			if int(valid[set]) == ways {
				li, o = uint32(set*ways+rnd.Intn(ways)), cache.BatchEvict
				active[lineID[li]] = 0
				evicts++
			} else {
				li = c.KernelColdWay(set)
			}
			c.KernelStoreLine(li, blk[k], accs[k].Write)
			lineID[li] = id[k]
			active[id[k]] = li + 1
			out[k] = li | o
			fills++
		}
		c.KernelCommit(hits, fills, evicts)
	}
}

// NewBatchKernel implements cache.BatchPolicy: NRU's reference byte at
// li-1 is the whole hit-path update; victims come from nruVictim.
func (p *NRU) NewBatchKernel(c *cache.SetAssoc) cache.BatchKernel {
	mask, ways := c.KernelGeom()
	valid := c.KernelValid()
	ref := p.ref
	wide := ways%laneWidth == 0
	return func(blk []uint64, id []uint32, accs []cache.AccessInfo, active, lineID, out []uint32) {
		var hits, fills, evicts uint64
		for k := range blk {
			if li := active[id[k]]; li != 0 {
				ref[li-1] = 1
				out[k] = (li - 1) | cache.BatchHit
				hits++
				continue
			}
			set := int(blk[k] & mask)
			var li, o uint32
			if int(valid[set]) == ways {
				base := set * ways
				li, o = uint32(base+nruVictim(ref, base, ways, wide)), cache.BatchEvict
				active[lineID[li]] = 0
				evicts++
			} else {
				li = c.KernelColdWay(set)
			}
			c.KernelStoreLine(li, blk[k], accs[k].Write)
			ref[li] = 1
			lineID[li] = id[k]
			active[id[k]] = li + 1
			out[k] = li | o
			fills++
		}
		c.KernelCommit(hits, fills, evicts)
	}
}

// NewBatchKernel implements cache.BatchPolicy: a touch becomes two
// table lookups instead of a tree walk. Which nodes a way's path
// clears and which it sets depends only on the way, so the kernel
// precomputes one clear mask and one set mask per way and a touch is
// tree[set] = tree[set]&^clear[way] | set[way] — branch-free where the
// interface path walks `levels` conditional node updates per touch.
// PLRU's power-of-two associativity means set and way fall out of the
// line index by shifting — the hit path never reads the block column.
func (p *PLRU) NewBatchKernel(c *cache.SetAssoc) cache.BatchKernel {
	mask, ways := c.KernelGeom()
	valid := c.KernelValid()
	tree := p.tree
	levels := p.levels
	wayMask := uint32(ways - 1)
	clearM := make([]uint64, ways)
	setM := make([]uint64, ways)
	for w := 0; w < ways; w++ {
		node := 0
		for level := levels - 1; level >= 0; level-- {
			if w>>level&1 == 1 {
				clearM[w] |= 1 << node // point the node left, away from w
				node = 2*node + 2
			} else {
				setM[w] |= 1 << node
				node = 2*node + 1
			}
		}
	}
	return func(blk []uint64, id []uint32, accs []cache.AccessInfo, active, lineID, out []uint32) {
		var hits, fills, evicts uint64
		for k := range blk {
			if li := active[id[k]]; li != 0 {
				idx := li - 1
				set := idx >> levels
				way := idx & wayMask
				tree[set] = tree[set]&^clearM[way] | setM[way]
				out[k] = idx | cache.BatchHit
				hits++
				continue
			}
			set := int(blk[k] & mask)
			var li, o uint32
			if int(valid[set]) == ways {
				t := tree[set]
				node, way := 0, uint32(0)
				for level := 0; level < levels; level++ {
					if t>>node&1 == 1 {
						way = way<<1 | 1
						node = 2*node + 2
					} else {
						way <<= 1
						node = 2*node + 1
					}
				}
				li, o = uint32(set*ways)+way, cache.BatchEvict
				active[lineID[li]] = 0
				evicts++
			} else {
				li = c.KernelColdWay(set)
			}
			c.KernelStoreLine(li, blk[k], accs[k].Write)
			way := li & wayMask
			tree[li>>levels] = tree[li>>levels]&^clearM[way] | setM[way]
			lineID[li] = id[k]
			active[id[k]] = li + 1
			out[k] = li | o
			fills++
		}
		c.KernelCommit(hits, fills, evicts)
	}
}

// Insertion modes of the shared LRU-stack (LIP/BIP/DIP) and RRIP
// (SRRIP/BRRIP/DRRIP) kernels. The mode is a captured constant, so the
// per-fill switch predicts perfectly; sharing one loop per family keeps
// the kernel bodies from tripling.
const (
	insertStatic = iota // LIP at-LRU / SRRIP at long
	insertCoin          // BIP / BRRIP: MRU-or-long with probability epsilon
	insertDuel          // DIP / DRRIP: set-dueling selector picks per fill
)

// lipKernel is the monomorphic loop of the LIP/BIP/DIP family: LRU
// stamps flat by line index, hits touch MRU, fills insert per mode.
func lipKernel(p *lipCore, c *cache.SetAssoc, mode int, rnd *rng.Source, d *duel) cache.BatchKernel {
	mask, ways := c.KernelGeom()
	valid := c.KernelValid()
	stamp := p.stamp
	return func(blk []uint64, id []uint32, accs []cache.AccessInfo, active, lineID, out []uint32) {
		clock := p.clock
		var hits, fills, evicts uint64
		for k := range blk {
			if li := active[id[k]]; li != 0 {
				clock++
				stamp[li-1] = clock
				out[k] = (li - 1) | cache.BatchHit
				hits++
				continue
			}
			set := int(blk[k] & mask)
			base := set * ways
			var li, o uint32
			if int(valid[set]) == ways {
				li, o = uint32(base+stampVictim(stamp, base, ways)), cache.BatchEvict
				active[lineID[li]] = 0
				evicts++
			} else {
				li = c.KernelColdWay(set)
			}
			c.KernelStoreLine(li, blk[k], accs[k].Write)
			atMRU := false
			switch mode {
			case insertCoin:
				atMRU = rnd.Bool(bipEpsilon)
			case insertDuel:
				d.observeMiss(set)
				atMRU = d.useA(set) || rnd.Bool(bipEpsilon)
			}
			if atMRU {
				clock++
				stamp[li] = clock
			} else {
				stamp[li] = stampMin(stamp, base, ways) - 1
			}
			lineID[li] = id[k]
			active[id[k]] = li + 1
			out[k] = li | o
			fills++
		}
		p.clock = clock
		c.KernelCommit(hits, fills, evicts)
	}
}

// NewBatchKernel implements cache.BatchPolicy for LIP.
func (p *LIP) NewBatchKernel(c *cache.SetAssoc) cache.BatchKernel {
	return lipKernel(&p.lipCore, c, insertStatic, nil, nil)
}

// NewBatchKernel implements cache.BatchPolicy for BIP.
func (p *BIP) NewBatchKernel(c *cache.SetAssoc) cache.BatchKernel {
	return lipKernel(&p.lipCore, c, insertCoin, p.rnd, nil)
}

// NewBatchKernel implements cache.BatchPolicy for DIP.
func (p *DIP) NewBatchKernel(c *cache.SetAssoc) cache.BatchKernel {
	return lipKernel(&p.lipCore, c, insertDuel, p.rnd, &p.duel)
}

// rripKernel is the monomorphic loop of the SRRIP/BRRIP/DRRIP family:
// flat RRPV bytes, hits promote to 0, fills insert at long or distant
// re-reference per mode, victims from the (SWAR when possible) RRIP
// search.
func rripKernel(p *rripCore, c *cache.SetAssoc, mode int, rnd *rng.Source, d *duel) cache.BatchKernel {
	mask, ways := c.KernelGeom()
	valid := c.KernelValid()
	rrpv := p.rrpv
	wide := ways%laneWidth == 0
	return func(blk []uint64, id []uint32, accs []cache.AccessInfo, active, lineID, out []uint32) {
		var hits, fills, evicts uint64
		for k := range blk {
			if li := active[id[k]]; li != 0 {
				rrpv[li-1] = 0
				out[k] = (li - 1) | cache.BatchHit
				hits++
				continue
			}
			set := int(blk[k] & mask)
			var li, o uint32
			if int(valid[set]) == ways {
				base := set * ways
				li, o = uint32(base+rripVictim(rrpv, base, ways, wide)), cache.BatchEvict
				active[lineID[li]] = 0
				evicts++
			} else {
				li = c.KernelColdWay(set)
			}
			c.KernelStoreLine(li, blk[k], accs[k].Write)
			long := true
			switch mode {
			case insertCoin:
				long = rnd.Bool(brripEpsilon)
			case insertDuel:
				d.observeMiss(set)
				long = d.useA(set) || rnd.Bool(brripEpsilon)
			}
			if long {
				rrpv[li] = rripMax - 1
			} else {
				rrpv[li] = rripMax
			}
			lineID[li] = id[k]
			active[id[k]] = li + 1
			out[k] = li | o
			fills++
		}
		c.KernelCommit(hits, fills, evicts)
	}
}

// NewBatchKernel implements cache.BatchPolicy for SRRIP.
func (p *SRRIP) NewBatchKernel(c *cache.SetAssoc) cache.BatchKernel {
	return rripKernel(&p.rripCore, c, insertStatic, nil, nil)
}

// NewBatchKernel implements cache.BatchPolicy for BRRIP.
func (p *BRRIP) NewBatchKernel(c *cache.SetAssoc) cache.BatchKernel {
	return rripKernel(&p.rripCore, c, insertCoin, p.rnd, nil)
}

// NewBatchKernel implements cache.BatchPolicy for DRRIP.
func (p *DRRIP) NewBatchKernel(c *cache.SetAssoc) cache.BatchKernel {
	return rripKernel(&p.rripCore, c, insertDuel, p.rnd, &p.duel)
}

// NewBatchKernel implements cache.BatchPolicy for SHiP: the RRIP loop
// plus first-reuse SHCT training on hits, dead-on-eviction training in
// the victim search, and the PC-signature insertion on fills (the one
// record field this kernel reads besides the Write bit).
func (p *SHiP) NewBatchKernel(c *cache.SetAssoc) cache.BatchKernel {
	mask, ways := c.KernelGeom()
	valid := c.KernelValid()
	rrpv, shct, lineSig, lineUsed := p.rrpv, p.shct, p.lineSig, p.lineUsed
	wide := ways%laneWidth == 0
	return func(blk []uint64, id []uint32, accs []cache.AccessInfo, active, lineID, out []uint32) {
		var hits, fills, evicts uint64
		for k := range blk {
			if li := active[id[k]]; li != 0 {
				idx := li - 1
				rrpv[idx] = 0
				if !lineUsed[idx] {
					lineUsed[idx] = true
					if cnt := shct[lineSig[idx]]; cnt < shipCounterMax {
						shct[lineSig[idx]] = cnt + 1
					}
				}
				out[k] = idx | cache.BatchHit
				hits++
				continue
			}
			set := int(blk[k] & mask)
			var li, o uint32
			if int(valid[set]) == ways {
				base := set * ways
				w := rripVictim(rrpv, base, ways, wide)
				li, o = uint32(base+w), cache.BatchEvict
				if !lineUsed[li] {
					if cnt := shct[lineSig[li]]; cnt > 0 {
						shct[lineSig[li]] = cnt - 1
					}
				}
				active[lineID[li]] = 0
				evicts++
			} else {
				li = c.KernelColdWay(set)
			}
			c.KernelStoreLine(li, blk[k], accs[k].Write)
			sig := Signature(accs[k].PC)
			lineSig[li] = sig
			lineUsed[li] = false
			if shct[sig] == 0 {
				rrpv[li] = rripMax
			} else {
				rrpv[li] = rripMax - 1
			}
			lineID[li] = id[k]
			active[id[k]] = li + 1
			out[k] = li | o
			fills++
		}
		c.KernelCommit(hits, fills, evicts)
	}
}

// NewBatchKernel implements cache.BatchPolicy for SHiP-S, overriding
// the kernel SHiPS would otherwise inherit from the embedded SHiP: the
// sharing-aware variant trains a second SHCT step on cross-core first
// reuse and promotes confident sharing sites to RRPV 0 on fill.
func (p *SHiPS) NewBatchKernel(c *cache.SetAssoc) cache.BatchKernel {
	mask, ways := c.KernelGeom()
	valid := c.KernelValid()
	rrpv, shct, lineSig, lineUsed, lineCore := p.rrpv, p.shct, p.lineSig, p.lineUsed, p.lineCore
	wide := ways%laneWidth == 0
	return func(blk []uint64, id []uint32, accs []cache.AccessInfo, active, lineID, out []uint32) {
		var hits, fills, evicts uint64
		for k := range blk {
			if li := active[id[k]]; li != 0 {
				idx := li - 1
				firstReuse := !lineUsed[idx]
				rrpv[idx] = 0
				if firstReuse {
					lineUsed[idx] = true
					if cnt := shct[lineSig[idx]]; cnt < shipCounterMax {
						shct[lineSig[idx]] = cnt + 1
					}
					if accs[k].Core != lineCore[idx] {
						if cnt := shct[lineSig[idx]]; cnt < shipCounterMax {
							shct[lineSig[idx]] = cnt + 1
						}
					}
				}
				out[k] = idx | cache.BatchHit
				hits++
				continue
			}
			set := int(blk[k] & mask)
			var li, o uint32
			if int(valid[set]) == ways {
				base := set * ways
				w := rripVictim(rrpv, base, ways, wide)
				li, o = uint32(base+w), cache.BatchEvict
				if !lineUsed[li] {
					if cnt := shct[lineSig[li]]; cnt > 0 {
						shct[lineSig[li]] = cnt - 1
					}
				}
				active[lineID[li]] = 0
				evicts++
			} else {
				li = c.KernelColdWay(set)
			}
			c.KernelStoreLine(li, blk[k], accs[k].Write)
			sig := Signature(accs[k].PC)
			lineSig[li] = sig
			lineUsed[li] = false
			if shct[sig] == 0 {
				rrpv[li] = rripMax
			} else {
				rrpv[li] = rripMax - 1
			}
			lineCore[li] = accs[k].Core
			if shct[sig] >= shipCounterMax-1 {
				rrpv[li] = 0
			}
			lineID[li] = id[k]
			active[id[k]] = li + 1
			out[k] = li | o
			fills++
		}
		c.KernelCommit(hits, fills, evicts)
	}
}
