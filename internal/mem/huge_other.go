//go:build !linux

package mem

// Hugepages is a no-op outside Linux: transparent-huge-page madvise is a
// Linux interface, and the hint is never a dependency of any result.
func Hugepages[T any](s []T) {}
