//go:build linux

package mem

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

// anonHugeKB parses AnonHugePages from the process's smaps rollup.
func anonHugeKB(t *testing.T) int {
	t.Helper()
	b, err := os.ReadFile("/proc/self/smaps_rollup")
	if err != nil {
		t.Skipf("no smaps_rollup: %v", err)
	}
	for _, l := range strings.Split(string(b), "\n") {
		if f := strings.Fields(l); len(f) == 3 && f[0] == "AnonHugePages:" {
			kb, _ := strconv.Atoi(f[1])
			return kb
		}
	}
	t.Skip("no AnonHugePages line")
	return 0
}

// TestHugepagesBestEffort exercises Hugepages on an already-faulted
// slice. The call is a hint, so the test only fails when the hint is
// demonstrably broken on a machine where THP is known to work: if the
// kernel reports zero huge pages before AND after, THP is unavailable
// here (disabled policy, old kernel) and the test skips.
func TestHugepagesBestEffort(t *testing.T) {
	s := make([]uint64, (32<<20)/8)
	for i := 0; i < len(s); i += 512 {
		s[i] = 1 // fault every small page
	}
	before := anonHugeKB(t)
	Hugepages(s)
	after := anonHugeKB(t)
	t.Logf("AnonHugePages: %d kB -> %d kB", before, after)
	if after == 0 && before == 0 {
		t.Skip("THP unavailable on this machine; hint had no observable effect")
	}
	if after < before {
		t.Fatalf("AnonHugePages shrank after Hugepages: %d -> %d kB", before, after)
	}
}

// TestHugepagesDegenerate makes sure the degenerate inputs never panic.
func TestHugepagesDegenerate(t *testing.T) {
	Hugepages([]byte(nil))
	Hugepages(make([]byte, 1))
	Hugepages(make([]struct{}, 1<<20))
	Hugepages(make([]uint64, minHugify/8)) // exactly at threshold
}
