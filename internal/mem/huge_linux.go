//go:build linux

// Package mem provides best-effort memory-placement hints for the large
// flat arrays of the replay engine.
//
// The replay's throughput is bound by dependent loads at random indices
// into multi-megabyte arrays (residency trackers, tag arrays, per-block
// maps). On 4 KiB pages those arrays span thousands of TLB entries —
// far beyond the second-level dTLB — so a large share of the loads pays
// a page walk on top of the cache miss, and under virtualization each
// walk is a nested (two-dimensional) one. Backing the arrays with 2 MiB
// transparent huge pages cuts the entry count by 512×.
//
// The Go runtime does not madvise its heap, so under the kernel's
// default "madvise" THP policy a Go process runs entirely on small
// pages. Hugepages opts individual allocations in after the fact:
// MADV_HUGEPAGE marks the range eligible and MADV_COLLAPSE (Linux 6.1+)
// synchronously collapses already-faulted small pages in place. Both are
// strictly hints — on kernels without MADV_COLLAPSE, or with THP
// disabled, the calls fail and the program runs exactly as before, just
// on small pages. No result of any computation ever depends on them.
package mem

import (
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

const (
	madvHugepage = 14      // MADV_HUGEPAGE
	madvCollapse = 25      // MADV_COLLAPSE, Linux 6.1+
	hugeSize     = 2 << 20 // x86-64 PMD huge page

	prSetTHPDisable = 41 // PR_SET_THP_DISABLE

	// minHugify is the smallest slice worth the madvise round trips.
	// Arrays below it fit a handful of TLB entries anyway.
	minHugify = 64 << 10

	// collapseGiveUp is how many collapse attempts may fail — with none
	// ever succeeding — before collapse attempts stop for the life of
	// the process. On hosts where huge pages simply never materialize
	// (old kernels, THP disabled by the hypervisor, memory too
	// fragmented to compact), MADV_COLLAPSE is not a cheap no-op: it
	// walks the range and, under a defrag policy like "madvise", runs
	// direct compaction before failing. The latch keeps the hint a
	// hint. The first successful collapse pins attempts on permanently,
	// so machines where THP works never stop collapsing.
	collapseGiveUp = 16
)

var (
	collapseWorks atomic.Bool
	collapseFails atomic.Int32
)

// No attempt is made to remember which regions were already collapsed:
// the runtime's scavenger returns idle spans to the kernel between
// replays, which splits their huge pages back into small ones, so a
// region that was huge a replay ago often is not by the time the next
// replay's arrays land in it. Re-collapsing is measurably worth its
// syscall time (skipping collapse for already-eligible regions and
// leaving khugepaged to re-assemble them asynchronously costs over a
// second per full-suite sweep on the bench host — the background
// daemon does not keep up with the allocation churn).

// enableTHP clears the process's PR_SET_THP_DISABLE flag once. Container
// runtimes and init systems commonly set the flag (it is inherited across
// fork/exec), and while it is set every THP path — fault-time allocation
// and MADV_COLLAPSE alike — is silently dead, no matter what the sysfs
// policy says. Clearing it is unprivileged and affects only this process.
var enableTHP = sync.OnceFunc(func() {
	syscall.Syscall(syscall.SYS_PRCTL, prSetTHPDisable, 0, 0)
})

// Hugepages asks the kernel to back s's memory with transparent huge
// pages, best effort. It first tries the outward-aligned huge-page range
// covering the whole slice — neighbouring heap memory inside the same
// 2 MiB regions is collapsed along with it, which is harmless (the pages
// stay transparent) and usually desirable (adjacent allocations are
// typically the same replay's other arrays). If that fails (e.g. the
// range leaves the mapped heap arena), it falls back to the huge-page
// regions fully interior to the slice. Errors are ignored throughout:
// this is a hint, never a dependency.
func Hugepages[T any](s []T) {
	if len(s) == 0 {
		return
	}
	var zero T
	elem := unsafe.Sizeof(zero)
	size := uintptr(len(s)) * elem
	if size < minHugify {
		return
	}
	enableTHP()
	addr := uintptr(unsafe.Pointer(unsafe.SliceData(s)))
	lo := addr &^ (hugeSize - 1)
	hi := (addr + size + hugeSize - 1) &^ (hugeSize - 1)
	if !advise(lo, hi-lo) {
		lo = (addr + hugeSize - 1) &^ (hugeSize - 1)
		hi = (addr + size) &^ (hugeSize - 1)
		if hi > lo {
			advise(lo, hi-lo)
		}
	}
	runtime.KeepAlive(s)
}

// advise marks [addr, addr+n) huge-page eligible and synchronously
// collapses it, reporting whether MADV_HUGEPAGE took (the signal
// Hugepages' range fallback keys on: the flag fails precisely when the
// range leaves the mapped arena, which an interior retry can fix; a
// failed collapse on a mapped range cannot be retried into success).
// Collapse is skipped once the give-up latch has concluded this host
// never grants huge pages.
func advise(addr, n uintptr) bool {
	if n == 0 {
		return true
	}
	if _, _, e := syscall.Syscall(syscall.SYS_MADVISE, addr, n, madvHugepage); e != 0 {
		return false
	}
	if collapseWorks.Load() || collapseFails.Load() < collapseGiveUp {
		if _, _, errno := syscall.Syscall(syscall.SYS_MADVISE, addr, n, madvCollapse); errno == 0 {
			collapseWorks.Store(true)
		} else {
			collapseFails.Add(1)
		}
	}
	return true
}
