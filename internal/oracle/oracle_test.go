package oracle

import (
	"testing"

	"sharellc/internal/cache"
	"sharellc/internal/core"
	"sharellc/internal/policy"
	"sharellc/internal/rng"
	"sharellc/internal/sharing"
	"sharellc/internal/trace"
	"testing/quick"
)

const (
	size = 16 * trace.BlockSize // 4 sets x 4 ways
	ways = 4
)

func lruFactory() cache.Policy { return policy.NewLRUPolicy() }

// sharedVictimStream builds a stream where a shared block is repeatedly
// evicted by LRU just before its cross-core reuse, so the oracle has real
// headroom: protecting the shared block converts misses to hits.
func sharedVictimStream() []cache.AccessInfo {
	var pairs [][2]uint64 // (core, block)
	// Blocks 0,4,8,12,16 map to set 0 of the 4-set cache.
	for round := 0; round < 200; round++ {
		pairs = append(pairs,
			[2]uint64{0, 0}, // shared block filled by core 0
			[2]uint64{1, 0}, // shared: core 1 hits it
			// Private single-use churn that pushes block 0 to LRU.
			[2]uint64{2, 4}, [2]uint64{2, 8}, [2]uint64{2, 12}, [2]uint64{2, 16},
			// Cross-core reuse of block 0: a miss under LRU, a hit if
			// protected.
			[2]uint64{3, 0},
		)
	}
	stream := make([]cache.AccessInfo, len(pairs))
	for i, p := range pairs {
		stream[i] = cache.AccessInfo{Core: uint8(p[0]), Block: p[1], Index: int64(i)}
	}
	cache.AnnotateNextUse(stream)
	return stream
}

func TestOracleReducesMissesWhenSharingIsEvicted(t *testing.T) {
	res, err := Run(sharedVictimStream(), size, ways, lruFactory, core.Full)
	if err != nil {
		t.Fatal(err)
	}
	if res.Oracle.Misses >= res.Base.Misses {
		t.Errorf("oracle misses %d >= base misses %d", res.Oracle.Misses, res.Base.Misses)
	}
	if red := res.MissReduction(); red <= 0.05 {
		t.Errorf("miss reduction = %.3f, want substantial (> 0.05)", red)
	}
	if res.Stats.ProtectedFills == 0 {
		t.Error("oracle never protected a fill")
	}
}

func TestOracleNoOpOnPrivateWorkload(t *testing.T) {
	// Single core: nothing is ever shared, so the oracle changes nothing.
	rnd := rng.New(4)
	stream := make([]cache.AccessInfo, 3000)
	for i := range stream {
		stream[i] = cache.AccessInfo{Core: 0, Block: rnd.Uint64n(64), Index: int64(i)}
	}
	res, err := Run(stream, size, ways, lruFactory, core.Full)
	if err != nil {
		t.Fatal(err)
	}
	if res.Base.Misses != res.Oracle.Misses {
		t.Errorf("oracle changed misses on a private workload: %d vs %d", res.Base.Misses, res.Oracle.Misses)
	}
	if res.MissReduction() != 0 {
		t.Errorf("MissReduction = %v, want 0", res.MissReduction())
	}
	if res.Stats.ProtectedFills != 0 {
		t.Errorf("protected %d fills with no sharing", res.Stats.ProtectedFills)
	}
}

func TestOracleWorksWithEveryCataloguePolicy(t *testing.T) {
	stream := sharedVictimStream()
	for _, f := range policy.Catalogue(5) {
		f := f
		name := f().Name()
		if name == "opt" {
			continue // OPT already sees the future; wrapping it is out of scope
		}
		t.Run(name, func(t *testing.T) {
			res, err := Run(stream, size, ways, func() cache.Policy { return f() }, core.Full)
			if err != nil {
				t.Fatal(err)
			}
			// The oracle must never be catastrophically worse: allow a
			// small regression margin for policies whose dynamics the
			// protection perturbs.
			if float64(res.Oracle.Misses) > 1.1*float64(res.Base.Misses) {
				t.Errorf("%s: oracle misses %d far exceed base %d", name, res.Oracle.Misses, res.Base.Misses)
			}
		})
	}
}

func TestMissReductionEmptyBase(t *testing.T) {
	r := &Result{Base: &sharing.Result{}, Oracle: &sharing.Result{}}
	if r.MissReduction() != 0 {
		t.Error("empty base produced non-zero reduction")
	}
}

func TestOracleDeterministic(t *testing.T) {
	stream := sharedVictimStream()
	a, err := Run(stream, size, ways, lruFactory, core.Full)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(stream, size, ways, lruFactory, core.Full)
	if err != nil {
		t.Fatal(err)
	}
	if a.Oracle.Misses != b.Oracle.Misses || a.Base.Misses != b.Base.Misses {
		t.Error("oracle study not deterministic")
	}
}

func TestRunOptsVariantsAllSane(t *testing.T) {
	stream := sharedVictimStream()
	for _, opts := range []core.Options{
		{Strength: InsertOnlyStrength()},
		{Strength: core.Full},
		{Strength: core.Full, NoDemote: true},
		{Strength: core.Full, Duel: true},
		{Strength: core.Full, ClearOnFulfil: true},
		{Strength: core.Full, SkipBudget: -1},
	} {
		res, err := RunOpts(stream, size, ways, lruFactory, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if res.Oracle.Hits+res.Oracle.Misses != res.Oracle.Accesses {
			t.Errorf("opts %+v: inconsistent counts", opts)
		}
	}
}

// InsertOnlyStrength exists to keep the options table readable.
func InsertOnlyStrength() core.Strength { return core.InsertOnly }

func TestSharedHints(t *testing.T) {
	stream := []cache.AccessInfo{
		{Core: 0, Block: 1, Index: 0}, // shared within horizon (core 1 at idx 2)
		{Core: 0, Block: 2, Index: 1}, // only same-core reuse
		{Core: 1, Block: 1, Index: 2}, // no future cross-core touch
		{Core: 0, Block: 2, Index: 3},
		{Core: 1, Block: 3, Index: 4}, // cross-core but beyond horizon
		{Core: 0, Block: 3, Index: 5},
	}
	hints := SharedHints(stream, 3)
	want := []bool{true, false, false, false, false, false}
	// Block 3: idx 4 core 1, idx 5 core 0: distance 1 <= 3 → shared!
	want[4] = true
	for i, w := range want {
		if hints[i] != w {
			t.Errorf("hints[%d] = %v, want %v", i, hints[i], w)
		}
	}
}

// Property: a single-core stream never produces a shared hint, and hints
// are monotone in the horizon (a larger window can only add hints).
func TestSharedHintsProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rnd := rng.New(seed)
		n := 200 + rnd.Intn(400)
		single := make([]cache.AccessInfo, n)
		multi := make([]cache.AccessInfo, n)
		for i := 0; i < n; i++ {
			b := rnd.Uint64n(32)
			single[i] = cache.AccessInfo{Core: 0, Block: b, Index: int64(i)}
			multi[i] = cache.AccessInfo{Core: uint8(rnd.Intn(4)), Block: b, Index: int64(i)}
		}
		for _, h := range SharedHints(single, int64(n)) {
			if h {
				return false
			}
		}
		small := SharedHints(multi, 10)
		large := SharedHints(multi, int64(n))
		for i := range small {
			if small[i] && !large[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSharedHintsHorizonCutoff(t *testing.T) {
	stream := []cache.AccessInfo{
		{Core: 0, Block: 7, Index: 0},
		{Core: 0, Block: 8, Index: 1},
		{Core: 0, Block: 9, Index: 2},
		{Core: 1, Block: 7, Index: 3},
	}
	if hints := SharedHints(stream, 2); hints[0] {
		t.Error("cross-core touch beyond horizon marked shared")
	}
	if hints := SharedHints(stream, 3); !hints[0] {
		t.Error("cross-core touch within horizon not marked")
	}
}
