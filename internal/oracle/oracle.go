// Package oracle implements the paper's generic sharing oracle study: a
// two-pass experiment that quantifies, for any base replacement policy,
// the headroom available from perfect fill-time knowledge of sharing.
//
// Pass 1 replays the LLC stream under the bare base policy and records,
// for every fill, whether that residency became shared (≥ 2 cores). Pass 2
// replays the identical stream with the base policy wrapped in the
// sharing-aware protector (internal/core), feeding each fill the recorded
// bit. This matches the paper's oracle definition: "the LLC controller
// [can] accurately predict, at the time a block is filled into the LLC,
// whether the block will be shared during its residency in the LLC" —
// residency outcomes are defined by the base policy's own eviction
// schedule, exactly as a wrapper-style oracle must.
package oracle

import (
	"context"
	"fmt"

	"sharellc/internal/cache"
	"sharellc/internal/core"
	"sharellc/internal/sharing"
	"sharellc/internal/trace"
)

// Result pairs the two passes of one oracle study.
type Result struct {
	Base   *sharing.Result // pass 1: bare policy
	Oracle *sharing.Result // pass 2: policy + oracle protection
	Stats  core.Stats      // protector intervention counters from pass 2
}

// MissReduction returns the fractional reduction in LLC misses achieved
// by adding the oracle: (baseMisses - oracleMisses) / baseMisses. It is
// negative when protection hurt (possible for already-sharing-friendly
// policies), and 0 for a missless base run.
func (r *Result) MissReduction() float64 {
	if r.Base.Misses == 0 {
		return 0
	}
	return float64(int64(r.Base.Misses)-int64(r.Oracle.Misses)) / float64(r.Base.Misses)
}

// Run performs the two-pass oracle study for one policy on one stream
// with default protection options.
func Run(stream []cache.AccessInfo, llcSize, llcWays int, newPolicy func() cache.Policy, strength core.Strength) (*Result, error) {
	return RunOpts(stream, llcSize, llcWays, newPolicy, core.Options{Strength: strength})
}

// HorizonFactor scales the sharing-lookahead horizon: a block is hinted
// shared at stream index i when another core touches it within
// HorizonFactor × (LLC capacity in blocks) stream positions. An LLC
// residency spans roughly one capacity's worth of fills, and fills are a
// fraction of stream accesses, so a small multiple of the capacity is the
// natural residency-scale window.
const HorizonFactor = 4

// SharedHints computes, for every position i of the LLC stream, whether
// block stream[i].Block is accessed by a core other than stream[i].Core
// within the next horizon stream positions. This is the oracle's
// knowledge: a pure trace property, so it stays valid at whatever point
// the protected run's fills diverge from the base run's (unlike
// residency-outcome bits, which are only defined for the base schedule's
// own fills).
//
// The same-block successor positions are exactly the stream's NextUse
// chain, so annotated streams (cache.AnnotateNextUse — the standard
// pipeline) need no per-block position index at all; unannotated streams
// are copied and annotated on the fly.
func SharedHints(stream []cache.AccessInfo, horizon int64) []bool {
	hints := make([]bool, len(stream))
	for i := range stream {
		// NextUse always points strictly forward, so a zero anywhere
		// means the stream was never annotated.
		if stream[i].NextUse == 0 {
			cp := make([]cache.AccessInfo, len(stream))
			copy(cp, stream)
			cache.AnnotateNextUse(cp)
			stream = cp
			break
		}
	}
	for i := range stream {
		c := stream[i].Core
		for j := stream[i].NextUse; j != cache.NoNextUse && j-int64(i) <= horizon; j = stream[j].NextUse {
			if stream[j].Core != c {
				hints[i] = true
				break
			}
		}
	}
	return hints
}

// RunOpts performs the two-pass oracle study with explicit protection
// options and the default sharing horizon. newPolicy must return a fresh
// instance on each call (the two passes must not share trained state).
func RunOpts(stream []cache.AccessInfo, llcSize, llcWays int, newPolicy func() cache.Policy, opts core.Options) (*Result, error) {
	return RunHorizon(stream, llcSize, llcWays, newPolicy, opts, HorizonFactor)
}

// RunHorizon is RunOpts with an explicit horizon factor (the sharing
// lookahead window in multiples of the LLC capacity); the A4 ablation
// sweeps it.
func RunHorizon(stream []cache.AccessInfo, llcSize, llcWays int, newPolicy func() cache.Policy, opts core.Options, horizonFactor int) (*Result, error) {
	return RunHorizonShards(context.Background(), stream, llcSize, llcWays, newPolicy, opts, horizonFactor, 0)
}

// RunHorizonShards is RunHorizon with a cancellation context and an
// explicit shard request for the bare pass-1 replay (see
// sharing.Options.Shards; 0 = automatic). Pass 2 installs a fill-time
// hook and therefore always replays sequentially, so study results are
// identical at every shard count. Cancelling ctx aborts either pass at
// its next poll and returns the context error.
func RunHorizonShards(ctx context.Context, stream []cache.AccessInfo, llcSize, llcWays int, newPolicy func() cache.Policy, opts core.Options, horizonFactor, shards int) (*Result, error) {
	if horizonFactor < 1 {
		return nil, fmt.Errorf("oracle: horizon factor %d < 1", horizonFactor)
	}
	base, err := sharing.ReplayParallel(stream, llcSize, llcWays, newPolicy, sharing.Options{Shards: shards, Ctx: ctx})
	if err != nil {
		return nil, fmt.Errorf("oracle: pass 1: %w", err)
	}
	prot := core.NewProtectorOpts(newPolicy(), opts)
	horizon := int64(horizonFactor) * int64(llcSize/trace.BlockSize)
	hints := SharedHints(stream, horizon)
	opt := sharing.Options{Ctx: ctx, Hooks: sharing.Hooks{
		PredictShared: func(a cache.AccessInfo) bool { return hints[a.Index] },
	}}
	orc, err := sharing.Replay(stream, llcSize, llcWays, prot, opt)
	if err != nil {
		return nil, fmt.Errorf("oracle: pass 2: %w", err)
	}
	return &Result{Base: base, Oracle: orc, Stats: prot.Stats()}, nil
}

// hintHook builds the pass-2 fill-time oracle hook for one horizon: the
// hints are a pure trace property, so one slice serves every policy lane
// at the same horizon.
func hintHook(stream []cache.AccessInfo, llcSize int, horizonFactor int) sharing.Hooks {
	horizon := int64(horizonFactor) * int64(llcSize/trace.BlockSize)
	hints := SharedHints(stream, horizon)
	return sharing.Hooks{PredictShared: func(a cache.AccessInfo) bool { return hints[a.Index] }}
}

// protectedLane builds the pass-2 lane for one base-policy factory,
// stashing the protector so its intervention counters can be read after
// the fused replay. Hook lanes call NewPolicy exactly once (the
// LLCConfig contract), so the stash is filled exactly once.
func protectedLane(llcSize, llcWays int, newPolicy func() cache.Policy, opts core.Options, hooks sharing.Hooks, stash **core.Protector) sharing.LLCConfig {
	return sharing.LLCConfig{Size: llcSize, Ways: llcWays, Hooks: hooks,
		NewPolicy: func() cache.Policy {
			p := core.NewProtectorOpts(newPolicy(), opts)
			*stash = p
			return p
		}}
}

// RunMultiPolicies runs the two-pass oracle study for every base-policy
// factory in one fused replay over the stream: 2n lanes (n bare pass-1
// lanes plus n protected pass-2 lanes) share the stream walk, and the
// sharing hints are computed once — they are a trace property, identical
// for every policy at the same horizon. Results are returned in factory
// order, each bit-identical to RunHorizonShards for that factory alone.
// ropt carries the replay tuning (Shards, Partitioner, NumBlocks — see
// sharing.Options); its Ctx and Hooks fields are overridden (ctx and the
// per-lane oracle hooks).
func RunMultiPolicies(ctx context.Context, stream []cache.AccessInfo, llcSize, llcWays int, factories []func() cache.Policy, opts core.Options, horizonFactor int, ropt sharing.Options) ([]*Result, error) {
	if horizonFactor < 1 {
		return nil, fmt.Errorf("oracle: horizon factor %d < 1", horizonFactor)
	}
	n := len(factories)
	hooks := hintHook(stream, llcSize, horizonFactor)
	configs := make([]sharing.LLCConfig, 2*n)
	prots := make([]*core.Protector, n)
	for i, f := range factories {
		configs[i] = sharing.LLCConfig{Size: llcSize, Ways: llcWays, NewPolicy: f}
		configs[n+i] = protectedLane(llcSize, llcWays, f, opts, hooks, &prots[i])
	}
	ropt.Ctx, ropt.Hooks = ctx, sharing.Hooks{}
	results, err := sharing.ReplayMulti(stream, configs, ropt)
	if err != nil {
		return nil, fmt.Errorf("oracle: fused study: %w", err)
	}
	out := make([]*Result, n)
	for i := range out {
		out[i] = &Result{Base: results[i], Oracle: results[n+i], Stats: prots[i].Stats()}
	}
	return out, nil
}

// RunMultiHorizons sweeps the sharing horizon for one base policy in one
// fused replay: a single bare pass-1 lane plus one protected lane per
// horizon factor. The returned results (one per factor, in order) share
// the same Base, and each matches RunHorizonShards at that factor. ropt
// is treated exactly as in RunMultiPolicies.
func RunMultiHorizons(ctx context.Context, stream []cache.AccessInfo, llcSize, llcWays int, newPolicy func() cache.Policy, opts core.Options, factors []int, ropt sharing.Options) ([]*Result, error) {
	n := len(factors)
	configs := make([]sharing.LLCConfig, n+1)
	configs[0] = sharing.LLCConfig{Size: llcSize, Ways: llcWays, NewPolicy: newPolicy}
	prots := make([]*core.Protector, n)
	for i, f := range factors {
		if f < 1 {
			return nil, fmt.Errorf("oracle: horizon factor %d < 1", f)
		}
		configs[i+1] = protectedLane(llcSize, llcWays, newPolicy, opts, hintHook(stream, llcSize, f), &prots[i])
	}
	ropt.Ctx, ropt.Hooks = ctx, sharing.Hooks{}
	results, err := sharing.ReplayMulti(stream, configs, ropt)
	if err != nil {
		return nil, fmt.Errorf("oracle: fused horizon sweep: %w", err)
	}
	out := make([]*Result, n)
	for i := range out {
		out[i] = &Result{Base: results[0], Oracle: results[i+1], Stats: prots[i].Stats()}
	}
	return out, nil
}
