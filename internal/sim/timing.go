package sim

// Timing is a deliberately simple cycle model layered over the functional
// simulation: every reference pays the latency of the level that serves
// it. It turns miss-count deltas into average-memory-access-time (AMAT)
// speedups, the secondary metric replacement papers report. There is no
// overlap/MLP modelling — the numbers are a first-order translation, not
// a performance claim (the paper's own evaluation is miss-count based).

// Latency holds per-level access latencies in cycles.
type Latency struct {
	L1  uint64 // L1 hit
	L2  uint64 // L2 hit (includes the L1 probe)
	LLC uint64 // LLC hit (includes the private-level probes)
	Mem uint64 // full miss to memory
}

// DefaultLatency reflects the paper's era: 4-cycle L1, 12-cycle L2,
// ~40-cycle LLC and 200-cycle memory.
func DefaultLatency() Latency { return Latency{L1: 4, L2: 12, LLC: 38, Mem: 200} }

// Cycles computes the total memory-access cycles of one workload run:
// the private-level hits come from the prepared stream, the LLC outcome
// from the policy pass under evaluation.
func (l Latency) Cycles(st *Stream, llcHits, llcMisses uint64) uint64 {
	return st.L1Hits*l.L1 + st.L2Hits*l.L2 + llcHits*l.LLC + llcMisses*l.Mem
}

// AMATSpeedup returns baseCycles/newCycles for one workload: > 1 means
// the new configuration is faster.
func (l Latency) AMATSpeedup(st *Stream, baseHits, baseMisses, newHits, newMisses uint64) float64 {
	nc := l.Cycles(st, newHits, newMisses)
	if nc == 0 {
		return 0
	}
	return float64(l.Cycles(st, baseHits, baseMisses)) / float64(nc)
}
