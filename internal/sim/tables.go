package sim

import (
	"fmt"

	"sharellc/internal/report"
	"sharellc/internal/reuse"
	"sharellc/internal/stats"
)

// CharTable renders F1/F2 characterization rows.
func CharTable(title string, rows []CharRow) *report.Table {
	t := report.NewTable(title,
		"workload", "suite", "llc-refs", "miss-rate", "shared-hit%", "ro-sh%", "rw-sh%", "shared-res%", "shared-blk%")
	var hitFracs []float64
	for _, r := range rows {
		t.MustRow(r.Workload, r.Suite, report.N(r.Accesses), report.F(r.MissRate),
			stats.Pct(r.SharedHitFrac), stats.Pct(r.ROSharedHitFrac), stats.Pct(r.RWSharedHitFrac),
			stats.Pct(r.SharedResidencyFrac), stats.Pct(r.SharedBlockFrac))
		hitFracs = append(hitFracs, r.SharedHitFrac)
	}
	t.Note = fmt.Sprintf("mean shared-hit fraction: %s", stats.Pct(stats.Mean(hitFracs)))
	return t
}

// DegreeTable renders the F3 sharing-degree distribution.
func DegreeTable(title string, rows []CharRow) *report.Table {
	t := report.NewTable(title,
		"workload",
		"res d=1", "res d=2", "res d=3-4", "res d=5+",
		"hit d=1", "hit d=2", "hit d=3-4", "hit d=5+")
	for _, r := range rows {
		t.MustRow(r.Workload,
			stats.Pct(r.DegreeResidencyShare[0]), stats.Pct(r.DegreeResidencyShare[1]),
			stats.Pct(r.DegreeResidencyShare[2]), stats.Pct(r.DegreeResidencyShare[3]),
			stats.Pct(r.DegreeHitShare[0]), stats.Pct(r.DegreeHitShare[1]),
			stats.Pct(r.DegreeHitShare[2]), stats.Pct(r.DegreeHitShare[3]))
	}
	t.Note = "residency and hit shares by sharing degree (cores touching the block during residency)"
	return t
}

// PolicyTable renders F4 policy-comparison rows grouped by workload.
func PolicyTable(title string, rows []PolicyRow) *report.Table {
	t := report.NewTable(title, "workload", "policy", "misses", "vs-lru", "shared-hit%")
	for _, r := range rows {
		t.MustRow(r.Workload, r.Policy, report.N(r.Misses), report.F(r.MissesVsLRU), stats.Pct(r.SharedHitFrac))
	}
	// Per-policy geomean of normalized misses: the suite-level summary.
	byPolicy := map[string][]float64{}
	var order []string
	for _, r := range rows {
		if _, ok := byPolicy[r.Policy]; !ok {
			order = append(order, r.Policy)
		}
		byPolicy[r.Policy] = append(byPolicy[r.Policy], r.MissesVsLRU)
	}
	note := "geomean misses vs LRU:"
	for _, p := range order {
		note += fmt.Sprintf(" %s=%.3f", p, stats.GeoMean(byPolicy[p]))
	}
	t.Note = note
	return t
}

// OracleTable renders F5/F6 oracle-study rows.
func OracleTable(title string, rows []OracleRow) *report.Table {
	t := report.NewTable(title,
		"workload", "policy", "base-misses", "oracle-misses", "reduction", "amat-speedup", "base-sh%", "orc-sh%")
	for _, r := range rows {
		t.MustRow(r.Workload, r.Policy, report.N(r.BaseMisses), report.N(r.OracleMisses),
			stats.Pct(r.Reduction), report.F(r.AMATSpeedup), stats.Pct(r.BaseSharedHitFrac), stats.Pct(r.OracleSharedHitFrac))
	}
	note := "mean miss reduction:"
	// Deterministic order: walk rows, first occurrence wins.
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Policy] {
			seen[r.Policy] = true
			note += fmt.Sprintf(" %s=%s", r.Policy, stats.Pct(MeanReduction(rows, r.Policy)))
		}
	}
	t.Note = note
	return t
}

// ReuseTable renders C2 reuse-distance rows: one row per (workload,
// class) with the bucket shares.
func ReuseTable(title string, rows []ReuseRow) *report.Table {
	headers := []string{"workload", "class", "accesses"}
	for b := 0; b < reuse.NumBuckets; b++ {
		headers = append(headers, reuse.BucketLabel(b))
	}
	t := report.NewTable(title, headers...)
	emit := func(w, class string, total uint64, shares [reuse.NumBuckets]float64) {
		cells := []string{w, class, report.N(total)}
		for b := 0; b < reuse.NumBuckets; b++ {
			cells = append(cells, stats.Pct(shares[b]))
		}
		t.MustRow(cells...)
	}
	for _, r := range rows {
		emit(r.Workload, "shared", r.SharedTotal, r.SharedShares)
		emit(r.Workload, "private", r.PrivateTotal, r.PrivateShares)
	}
	t.Note = "LRU stack distances in blocks; 64K = 4MB capacity, 128K = 8MB capacity"
	return t
}

// CoherenceTable renders C1 coherence-traffic rows.
func CoherenceTable(title string, rows []CoherenceRow) *report.Table {
	t := report.NewTable(title,
		"workload", "refs", "inv/kref", "downgrade/kref", "c2c/kref", "upgrade/kref")
	var c2c []float64
	for _, r := range rows {
		t.MustRow(r.Workload, report.N(r.Refs), report.F(r.InvalidationsPKR),
			report.F(r.DowngradesPKR), report.F(r.C2CTransfersPKR), report.F(r.UpgradesPKR))
		c2c = append(c2c, r.C2CTransfersPKR)
	}
	t.Note = fmt.Sprintf("MESI directory over infinite private caches; mean cache-to-cache rate %.3f/kref", stats.Mean(c2c))
	return t
}

// PhaseTable renders F9 sharing-phase rows.
func PhaseTable(title string, rows []PhaseRow) *report.Table {
	t := report.NewTable(title,
		"workload", "flip-rate", "mixed%", "always-sh", "never-sh", "mixed", "1-window")
	var flips, mixed []float64
	for _, r := range rows {
		t.MustRow(r.Workload, report.F(r.FlipRate), stats.Pct(r.MixedFrac),
			report.N(r.AlwaysShared), report.N(r.NeverShared), report.N(r.Mixed), report.N(r.SingleWindow))
		flips = append(flips, r.FlipRate)
		mixed = append(mixed, r.MixedFrac)
	}
	t.Note = fmt.Sprintf("mean flip rate %s, mean mixed fraction %s — phased sharing is what stales address/PC history",
		report.F(stats.Mean(flips)), stats.Pct(stats.Mean(mixed)))
	return t
}

// HorizonTable renders A4 horizon-sweep rows.
func HorizonTable(title string, rows []HorizonRow) *report.Table {
	t := report.NewTable(title, "workload", "horizon", "reduction")
	byFactor := map[int][]float64{}
	var order []int
	for _, r := range rows {
		t.MustRow(r.Workload, fmt.Sprintf("%dx", r.Factor), stats.Pct(r.Reduction))
		if _, ok := byFactor[r.Factor]; !ok {
			order = append(order, r.Factor)
		}
		byFactor[r.Factor] = append(byFactor[r.Factor], r.Reduction)
	}
	note := "mean reduction by horizon:"
	for _, f := range order {
		note += fmt.Sprintf(" %dx=%s", f, stats.Pct(stats.Mean(byFactor[f])))
	}
	t.Note = note
	return t
}

// PredictorTable renders F7 accuracy rows.
func PredictorTable(title string, rows []PredictorRow) *report.Table {
	t := report.NewTable(title,
		"workload", "predictor", "accuracy", "precision", "recall", "shared-rate")
	for _, r := range rows {
		t.MustRow(r.Workload, r.Predictor, report.F(r.Accuracy), report.F(r.Precision),
			report.F(r.Recall), report.F(r.SharedBaseRate))
	}
	byPred := map[string][]float64{}
	var order []string
	for _, r := range rows {
		if _, ok := byPred[r.Predictor]; !ok {
			order = append(order, r.Predictor)
		}
		byPred[r.Predictor] = append(byPred[r.Predictor], r.Accuracy)
	}
	note := "mean accuracy:"
	for _, p := range order {
		note += fmt.Sprintf(" %s=%.3f", p, stats.Mean(byPred[p]))
	}
	t.Note = note
	return t
}

// DrivenTable renders F8 predictor-driven rows.
func DrivenTable(title string, rows []DrivenRow) *report.Table {
	t := report.NewTable(title,
		"workload", "predictor", "base-misses", "driven-misses", "reduction", "oracle-reduction")
	byPred := map[string][]float64{}
	var order []string
	var oracleRed []float64
	for _, r := range rows {
		t.MustRow(r.Workload, r.Predictor, report.N(r.BaseMisses), report.N(r.DrivenMisses),
			stats.Pct(r.Reduction), stats.Pct(r.OracleReduction))
		if _, ok := byPred[r.Predictor]; !ok {
			order = append(order, r.Predictor)
		}
		byPred[r.Predictor] = append(byPred[r.Predictor], r.Reduction)
		if r.Predictor == order[0] {
			oracleRed = append(oracleRed, r.OracleReduction)
		}
	}
	note := "mean reduction:"
	for _, p := range order {
		note += fmt.Sprintf(" %s=%s", p, stats.Pct(stats.Mean(byPred[p])))
	}
	note += fmt.Sprintf(" oracle=%s", stats.Pct(stats.Mean(oracleRed)))
	t.Note = note
	return t
}
