package streamcache

import (
	"context"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"sharellc/internal/cache"
	"sharellc/internal/sim"
	"sharellc/internal/workloads"
)

// randomStream synthesizes an adversarially shaped prepared stream:
// random 64-bit blocks and PCs (large deltas in both directions), dense
// first-touch BlockIDs, and exact NextUse chains — the same invariants
// sim.BuildStream guarantees.
func randomStream(rnd *rand.Rand, n int) *sim.Stream {
	accesses := make([]cache.AccessInfo, n)
	blocks := n/4 + 1
	pool := make([]uint64, blocks)
	for i := range pool {
		pool[i] = rnd.Uint64()
	}
	for i := range accesses {
		b := rnd.Intn(blocks)
		accesses[i] = cache.AccessInfo{
			Block:   pool[b],
			Core:    uint8(rnd.Intn(128)),
			PC:      rnd.Uint64(),
			Write:   rnd.Intn(2) == 0,
			Index:   int64(i),
			NextUse: cache.NoNextUse,
		}
	}
	numBlocks := cache.AnnotateNextUse(accesses)
	return &sim.Stream{
		Model:     workloads.Model{Name: "random"},
		Accesses:  accesses,
		NumBlocks: numBlocks,
		TraceLen:  uint64(n) * 7,
		L1Hits:    rnd.Uint64() % 1000,
		L2Hits:    rnd.Uint64() % 1000,
	}
}

// TestSnapshotRoundTripProperty: random streams of assorted sizes
// round-trip bit-identically through the snapshot file.
func TestSnapshotRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	rnd := rand.New(rand.NewSource(42))
	for trial, n := range []int{0, 1, 2, 17, 1000, 20000} {
		s := randomStream(rnd, n)
		key := Key(s.Model, cache.DefaultConfig(), uint64(trial))
		path := filepath.Join(dir, key+".sllc")
		if _, err := writeSnapshot(path, key, s); err != nil {
			t.Fatalf("n=%d: write: %v", n, err)
		}
		got, _, ok := loadSnapshot(path, key, s.Model)
		if !ok {
			t.Fatalf("n=%d: load failed", n)
		}
		if got.NumBlocks != s.NumBlocks || got.TraceLen != s.TraceLen ||
			got.L1Hits != s.L1Hits || got.L2Hits != s.L2Hits {
			t.Fatalf("n=%d: header mismatch: %+v", n, got)
		}
		if len(got.Accesses) != len(s.Accesses) {
			t.Fatalf("n=%d: length %d vs %d", n, len(got.Accesses), len(s.Accesses))
		}
		for i := range s.Accesses {
			if got.Accesses[i] != s.Accesses[i] {
				t.Fatalf("n=%d: access %d: %+v vs %+v", n, i, got.Accesses[i], s.Accesses[i])
			}
		}
	}
}

// writeTestSnapshot saves one small real stream and returns its path,
// key and model.
func writeTestSnapshot(t *testing.T, dir string) (path, key string, m workloads.Model) {
	t.Helper()
	m = testModel(t, "canneal", 0.01)
	machine := cache.DefaultConfig()
	s, err := sim.BuildStream(m, machine, 1)
	if err != nil {
		t.Fatal(err)
	}
	key = Key(m, machine, 1)
	path = filepath.Join(dir, key+".sllc")
	if _, err := writeSnapshot(path, key, s); err != nil {
		t.Fatal(err)
	}
	return path, key, m
}

// TestSnapshotTruncationRebuilds: every truncation point must fail soft,
// and the cache must silently rebuild and repair the file.
func TestSnapshotTruncationRebuilds(t *testing.T) {
	dir := t.TempDir()
	path, key, m := writeTestSnapshot(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 7, 8, 39, 41, len(data) / 2, len(data) - 5, len(data) - 1} {
		if cut > len(data) {
			continue
		}
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := loadSnapshot(path, key, m); ok {
			t.Fatalf("truncation at %d/%d bytes loaded successfully", cut, len(data))
		}
	}

	// The cache recovers: rebuild, rewrite, and the repaired file loads.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(Options{Dir: dir})
	if _, err := c.Stream(context.Background(), m, cache.DefaultConfig(), 1); err != nil {
		t.Fatalf("truncated snapshot surfaced an error: %v", err)
	}
	st := c.Stats()
	if st.DiskMiss != 1 || st.Builds != 1 {
		t.Errorf("stats = %+v, want DiskMiss=1 Builds=1", st)
	}
	if repaired, err := os.ReadFile(path); err != nil || string(repaired) != string(data) {
		t.Errorf("snapshot not repaired after rebuild (err %v, %d vs %d bytes)", err, len(repaired), len(data))
	}
}

// TestSnapshotCorruptionRebuilds: flipping any single byte is caught
// (checksum or stricter structural checks) and rebuilt silently.
func TestSnapshotCorruptionRebuilds(t *testing.T) {
	dir := t.TempDir()
	path, key, m := writeTestSnapshot(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(7))
	offsets := []int{0, 8, 40, len(data) - 1, len(data) - 4}
	for i := 0; i < 40; i++ {
		offsets = append(offsets, rnd.Intn(len(data)))
	}
	for _, off := range offsets {
		flipped := append([]byte(nil), data...)
		flipped[off] ^= 0x20
		if err := os.WriteFile(path, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := loadSnapshot(path, key, m); ok {
			t.Fatalf("byte flip at offset %d loaded successfully", off)
		}
		c := New(Options{Dir: dir})
		if _, err := c.Stream(context.Background(), m, cache.DefaultConfig(), 1); err != nil {
			t.Fatalf("flip at %d surfaced an error: %v", off, err)
		}
	}
}

// TestSnapshotVersionBumpIgnored: a file that differs only in its format
// version digit (checksum recomputed, so it is otherwise pristine) must
// be treated as absent.
func TestSnapshotVersionBumpIgnored(t *testing.T) {
	dir := t.TempDir()
	path, key, m := writeTestSnapshot(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := append([]byte(nil), data...)
	stale[7] = '0' + codecVersion + 1 // pretend a newer (or older) codec wrote it
	body := stale[:len(stale)-4]
	binary.LittleEndian.PutUint32(stale[len(stale)-4:], crc32.Checksum(body, crcTable))
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := loadSnapshot(path, key, m); ok {
		t.Fatal("version-bumped snapshot loaded successfully")
	}
	c := New(Options{Dir: dir})
	if _, err := c.Stream(context.Background(), m, cache.DefaultConfig(), 1); err != nil {
		t.Fatalf("stale snapshot surfaced an error: %v", err)
	}
	if st := c.Stats(); st.Builds != 1 || st.DiskMiss != 1 {
		t.Errorf("stats = %+v, want Builds=1 DiskMiss=1 (stale file ignored)", st)
	}
	// The rebuild repaired the file back to the current version.
	if repaired, err := os.ReadFile(path); err != nil || repaired[7] != '0'+codecVersion {
		t.Errorf("stale snapshot not rewritten at the current version")
	}
}

// TestSnapshotWrongKeyIgnored: a snapshot renamed onto another key's
// path (e.g. a collision-free copy) is rejected by the embedded key.
func TestSnapshotWrongKeyIgnored(t *testing.T) {
	dir := t.TempDir()
	path, _, m := writeTestSnapshot(t, dir)
	otherKey := Key(m, cache.DefaultConfig(), 2)
	otherPath := filepath.Join(dir, otherKey+".sllc")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(otherPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := loadSnapshot(otherPath, otherKey, m); ok {
		t.Fatal("snapshot with mismatched embedded key loaded successfully")
	}
}

// TestSnapshotEncodeRejectsReplayHints: a stream carrying replay-time
// PredictedShared hints must not snapshot (it is not a prepared stream).
func TestSnapshotEncodeRejectsReplayHints(t *testing.T) {
	s := randomStream(rand.New(rand.NewSource(3)), 10)
	s.Accesses[4].PredictedShared = true
	if _, err := cache.AppendAccessInfos(nil, s.Accesses); err == nil {
		t.Fatal("AppendAccessInfos accepted a PredictedShared record")
	}
}
