// Package streamcache is a two-level cache of prepared LLC reference
// streams (sim.Stream). The stream a workload presents to the LLC is
// LLC-independent — the private L1/L2 hierarchy fixes it per
// (model, private geometry, seed) — yet it is by far the most expensive
// part of suite construction. The cache removes that cost from every
// path that repeats it:
//
//   - an in-process level shares built *sim.Stream values between
//     concurrent and sequential suite constructions (daemon jobs, CLI
//     invocations inside one process, benchmarks), with singleflight
//     coalescing so N requesters of the same key trigger exactly one
//     build, and an LRU byte budget bounding resident stream memory;
//   - an on-disk level snapshots each stream into a versioned,
//     checksummed flat binary file (cache.AppendAccessInfos records
//     under a small header), so later processes skip generation and
//     private-hierarchy filtering entirely and bulk-load the stream.
//
// Correctness contract: a stream served from either level is
// bit-identical to what sim.BuildStream would have produced — snapshots
// store every AccessInfo field (or reconstruct it exactly), and any
// corruption, truncation or version mismatch on disk falls back to
// rebuild-and-rewrite, never to an error or a wrong stream.
package streamcache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"unsafe"

	"sharellc/internal/cache"
	"sharellc/internal/sim"
	"sharellc/internal/workloads"
)

// codecVersion is the snapshot format version. It participates in both
// the cache key and the file magic, so a bump invalidates every existing
// snapshot (old files are simply never looked up again, and a forged
// lookup ignores them on the magic check). Version 2: BlockIDs became
// shard-major (cache.AssignBlockIDs) — the byte format is unchanged,
// but older snapshots carry the first-touch numbering, which would
// silently forfeit the sharded replay's locality.
const codecVersion = 2

// DefaultMemBudget bounds resident stream bytes when Options.MemBudget
// is zero: two full-size 22-workload suites fit comfortably.
const DefaultMemBudget = 2 << 30

// Options configures a Cache.
type Options struct {
	// Dir is the snapshot directory. Empty disables the disk level (the
	// process level still works). DefaultDir picks the conventional
	// per-user location.
	Dir string
	// MemBudget caps the bytes of stream data resident in the process
	// level; least-recently-used streams are evicted past it. 0 means
	// DefaultMemBudget, negative means unlimited. The budget is advisory
	// per insertion: the most recently inserted stream is never evicted,
	// so a single stream larger than the budget still caches.
	MemBudget int64
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Hits      uint64 // process-level hits
	Misses    uint64 // process-level misses (disk probe and/or build followed)
	Coalesced uint64 // lookups that joined an in-flight build
	DiskHits  uint64 // snapshot loads
	DiskMiss  uint64 // snapshot absent, stale or corrupt
	Builds    uint64 // full BuildStream runs
	Evictions uint64 // process-level LRU evictions

	BytesInMem   uint64 // resident stream bytes (gauge)
	Entries      int    // resident streams (gauge)
	BytesRead    uint64 // snapshot bytes read from disk
	BytesWritten uint64 // snapshot bytes written to disk
}

// DefaultDir returns the conventional snapshot directory,
// os.UserCacheDir()/sharellc, or "" when the platform reports no user
// cache directory (callers then run without a disk level).
func DefaultDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "sharellc")
}

// DirFromFlag maps the conventional -cachedir flag value shared by
// cmd/sharesim and cmd/sharesimd to a snapshot directory: "auto" picks
// DefaultDir, "off" disables the disk level, anything else is a literal
// path. ok reports whether the disk level is wanted at all ("off", or
// "auto" on a platform with no user cache directory, return false).
func DirFromFlag(v string) (dir string, ok bool) {
	switch v {
	case "off", "":
		return "", false
	case "auto":
		d := DefaultDir()
		return d, d != ""
	default:
		return v, true
	}
}

// Cache is the two-level stream cache. The zero value is not usable;
// call New.
type Cache struct {
	dir    string
	budget int64

	mu       sync.Mutex
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // value: *entry
	inflight map[string]*flight
	bytes    int64
	stats    Stats

	// buildHook, when non-nil, runs at the start of every full build
	// (after both cache levels missed). Tests use it to count and to
	// stall builds; it runs outside mu.
	buildHook func(key string)
}

type entry struct {
	key   string
	s     *sim.Stream
	bytes int64
}

// flight is one in-progress build that later requesters of the same key
// join instead of duplicating.
type flight struct {
	done chan struct{} // closed after s/err are set
	s    *sim.Stream
	err  error
}

// New builds a Cache. When opts.Dir is non-empty it is created
// immediately; a directory that cannot be created disables the disk
// level rather than failing (the cache is an optimization, never a
// correctness dependency).
func New(opts Options) *Cache {
	c := &Cache{
		dir:      opts.Dir,
		budget:   opts.MemBudget,
		ll:       list.New(),
		items:    map[string]*list.Element{},
		inflight: map[string]*flight{},
	}
	if c.budget == 0 {
		c.budget = DefaultMemBudget
	}
	if c.dir != "" {
		if err := os.MkdirAll(c.dir, 0o755); err != nil {
			c.dir = ""
		}
	}
	return c
}

// Dir reports the active snapshot directory ("" when the disk level is
// disabled).
func (c *Cache) Dir() string { return c.dir }

// Stats returns a consistent snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.BytesInMem = uint64(c.bytes)
	s.Entries = c.ll.Len()
	return s
}

// Key derives the canonical content hash identifying one prepared
// stream: the snapshot codec version, the private-hierarchy geometry
// (the LLC fields are deliberately excluded — the stream does not depend
// on them, so jobs differing only in LLC size or policy share an entry),
// the seed, and every field of the already-scaled model. The model and
// geometry are rendered with %+v, so adding a field to either struct
// automatically changes the key rather than silently serving stale
// streams.
func Key(m workloads.Model, machine cache.Config, seed uint64) string {
	private := machine
	private.LLCSize, private.LLCWays = 0, 0
	h := sha256.Sum256([]byte(fmt.Sprintf("sharellc stream v%d\nmachine %+v\nseed %d\nmodel %+v\n",
		codecVersion, private, seed, m)))
	return fmt.Sprintf("%x", h)
}

// Stream returns the prepared stream for (m, machine, seed), consulting
// the process level, then the snapshot directory, then building. Its
// signature is exactly sim.StreamProvider, so a Cache plugs into
// sim.Config as cfg.Streams = c.Stream.
func (c *Cache) Stream(ctx context.Context, m workloads.Model, machine cache.Config, seed uint64) (*sim.Stream, error) {
	key := Key(m, machine, seed)
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			c.stats.Hits++
			s := el.Value.(*entry).s
			c.mu.Unlock()
			return s, nil
		}
		if fl, ok := c.inflight[key]; ok {
			c.stats.Coalesced++
			c.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if fl.err == nil {
				return fl.s, nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// The builder failed — possibly because *its* context was
			// cancelled, which must not poison requesters that are still
			// live. Loop and retry (becoming the builder if needed); a
			// deterministic failure recurs and is returned below.
			continue
		}
		c.stats.Misses++
		fl := &flight{done: make(chan struct{})}
		c.inflight[key] = fl
		c.mu.Unlock()

		s, err := c.fetchOrBuild(key, m, machine, seed)

		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil {
			c.insertLocked(key, s)
		}
		c.mu.Unlock()
		fl.s, fl.err = s, err
		close(fl.done)
		return s, err
	}
}

// fetchOrBuild is the miss path: snapshot load if the disk level is
// enabled, else a full build followed by a best-effort snapshot write
// (which also repairs corrupt or stale files by overwriting them).
func (c *Cache) fetchOrBuild(key string, m workloads.Model, machine cache.Config, seed uint64) (*sim.Stream, error) {
	if c.dir != "" {
		if s, n, ok := loadSnapshot(c.snapshotPath(key), key, m); ok {
			c.mu.Lock()
			c.stats.DiskHits++
			c.stats.BytesRead += uint64(n)
			c.mu.Unlock()
			return s, nil
		}
		c.mu.Lock()
		c.stats.DiskMiss++
		c.mu.Unlock()
	}
	if hook := c.buildHook; hook != nil {
		hook(key)
	}
	c.mu.Lock()
	c.stats.Builds++
	c.mu.Unlock()
	s, err := sim.BuildStream(m, machine, seed)
	if err != nil {
		return nil, err
	}
	if c.dir != "" {
		if n, err := writeSnapshot(c.snapshotPath(key), key, s); err == nil {
			c.mu.Lock()
			c.stats.BytesWritten += uint64(n)
			c.mu.Unlock()
		}
	}
	return s, nil
}

// snapshotPath maps a key to its snapshot file.
func (c *Cache) snapshotPath(key string) string {
	return filepath.Join(c.dir, key+".sllc")
}

// streamBytes approximates a stream's resident size for the byte budget:
// the access slice dominates everything else.
func streamBytes(s *sim.Stream) int64 {
	return int64(len(s.Accesses)) * int64(unsafe.Sizeof(cache.AccessInfo{}))
}

// insertLocked adds a freshly obtained stream to the process level and
// evicts LRU entries past the byte budget. The new entry itself is never
// evicted, so oversized streams still serve the requesters that are
// about to read them. Caller holds c.mu.
func (c *Cache) insertLocked(key string, s *sim.Stream) {
	if el, ok := c.items[key]; ok { // lost a cross-key race; keep the resident one
		c.ll.MoveToFront(el)
		return
	}
	e := &entry{key: key, s: s, bytes: streamBytes(s)}
	c.items[key] = c.ll.PushFront(e)
	c.bytes += e.bytes
	if c.budget < 0 {
		return
	}
	for c.bytes > c.budget && c.ll.Len() > 1 {
		last := c.ll.Back()
		victim := last.Value.(*entry)
		c.ll.Remove(last)
		delete(c.items, victim.key)
		c.bytes -= victim.bytes
		c.stats.Evictions++
	}
}
