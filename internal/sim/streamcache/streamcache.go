// Package streamcache is a two-level cache of prepared LLC reference
// streams (sim.Stream). The stream a workload presents to the LLC is
// LLC-independent — the private L1/L2 hierarchy fixes it per
// (model, private geometry, seed) — yet it is by far the most expensive
// part of suite construction. The cache removes that cost from every
// path that repeats it:
//
//   - an in-process level shares built *sim.Stream values between
//     concurrent and sequential suite constructions (daemon jobs, CLI
//     invocations inside one process, benchmarks), with singleflight
//     coalescing so N requesters of the same key trigger exactly one
//     build, and an LRU byte budget bounding resident stream memory;
//   - an on-disk level snapshots each stream into a versioned,
//     checksummed flat binary file (cache.AppendAccessInfos records
//     under a small header), so later processes skip generation and
//     private-hierarchy filtering entirely and bulk-load the stream.
//
// Correctness contract: a stream served from either level is
// bit-identical to what sim.BuildStream would have produced — snapshots
// store every AccessInfo field (or reconstruct it exactly), and any
// corruption, truncation or version mismatch on disk falls back to
// rebuild-and-rewrite, never to an error or a wrong stream.
package streamcache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"unsafe"

	"sharellc/internal/cache"
	"sharellc/internal/sim"
	"sharellc/internal/workloads"
)

// codecVersion is the snapshot format version. It participates in both
// the cache key and the file magic, so a bump invalidates every existing
// snapshot (old files are simply never looked up again, and a forged
// lookup ignores them on the magic check). Version 2: BlockIDs became
// shard-major (cache.AssignBlockIDs) — the byte format is unchanged,
// but older snapshots carry the first-touch numbering, which would
// silently forfeit the sharded replay's locality.
const codecVersion = 2

// DefaultMemBudget bounds resident stream bytes when Options.MemBudget
// is zero: two full-size 22-workload suites fit comfortably.
const DefaultMemBudget = 2 << 30

// Options configures a Cache.
type Options struct {
	// Dir is the snapshot directory. Empty disables the disk level (the
	// process level still works). DefaultDir picks the conventional
	// per-user location.
	Dir string
	// MemBudget caps the bytes of stream data resident in the process
	// level; least-recently-used streams are evicted past it. 0 means
	// DefaultMemBudget, negative means unlimited. The budget is advisory
	// per insertion: the most recently inserted stream is never evicted,
	// so a single stream larger than the budget still caches.
	MemBudget int64
	// DiskBudget caps the total bytes of snapshot files in Dir;
	// least-recently-used snapshots are deleted past it (the newest file
	// is never evicted, mirroring MemBudget). 0 or negative means
	// unlimited — the historical behaviour. Existing snapshots found in
	// Dir at construction join the LRU ordered by modification time.
	DiskBudget int64
	// BuildHook, when non-nil, runs at the start of every full stream
	// build (after both cache levels and any peer transfer missed).
	// Cluster tests use it to assert each stream is built at most once
	// cluster-wide, and to stall builds; it runs outside the cache lock.
	BuildHook func(key string)
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Hits      uint64 // process-level hits
	Misses    uint64 // process-level misses (disk probe and/or build followed)
	Coalesced uint64 // lookups that joined an in-flight build
	DiskHits  uint64 // snapshot loads
	DiskMiss  uint64 // snapshot absent, stale or corrupt
	Builds    uint64 // full BuildStream runs
	Evictions uint64 // process-level LRU evictions

	Puts          uint64 // snapshots installed via PutSnapshot (peer transfer)
	DiskEvictions uint64 // snapshot files deleted by the disk byte budget

	BytesInMem   uint64 // resident stream bytes (gauge)
	Entries      int    // resident streams (gauge)
	DiskBytes    uint64 // snapshot-store bytes under the budget's accounting (gauge)
	DiskFiles    int    // snapshot files tracked (gauge)
	BytesRead    uint64 // snapshot bytes read from disk
	BytesWritten uint64 // snapshot bytes written to disk
}

// DefaultDir returns the conventional snapshot directory,
// os.UserCacheDir()/sharellc, or "" when the platform reports no user
// cache directory (callers then run without a disk level).
func DefaultDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "sharellc")
}

// DirFromFlag maps the conventional -cachedir flag value shared by
// cmd/sharesim and cmd/sharesimd to a snapshot directory: "auto" picks
// DefaultDir, "off" disables the disk level, anything else is a literal
// path. ok reports whether the disk level is wanted at all ("off", or
// "auto" on a platform with no user cache directory, return false).
func DirFromFlag(v string) (dir string, ok bool) {
	switch v {
	case "off", "":
		return "", false
	case "auto":
		d := DefaultDir()
		return d, d != ""
	default:
		return v, true
	}
}

// Cache is the two-level stream cache. The zero value is not usable;
// call New.
type Cache struct {
	dir        string
	budget     int64
	diskBudget int64

	mu       sync.Mutex
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // value: *entry
	inflight map[string]*flight
	bytes    int64
	stats    Stats

	// Disk-level LRU bookkeeping (only when dir != ""): one entry per
	// snapshot file, front = most recently used. Tracked regardless of
	// budget so DiskBytes/DiskFiles gauges stay meaningful.
	dll       *list.List               // value: *diskEntry
	ditems    map[string]*list.Element // key -> element of dll
	diskBytes int64

	// buildHook, when non-nil, runs at the start of every full build
	// (after both cache levels missed). Tests use it to count and to
	// stall builds; it runs outside mu.
	buildHook func(key string)
}

type entry struct {
	key   string
	s     *sim.Stream
	bytes int64
}

type diskEntry struct {
	key   string
	bytes int64
}

// flight is one in-progress build that later requesters of the same key
// join instead of duplicating.
type flight struct {
	done chan struct{} // closed after s/err are set
	s    *sim.Stream
	err  error
}

// New builds a Cache. When opts.Dir is non-empty it is created
// immediately; a directory that cannot be created disables the disk
// level rather than failing (the cache is an optimization, never a
// correctness dependency).
func New(opts Options) *Cache {
	c := &Cache{
		dir:        opts.Dir,
		budget:     opts.MemBudget,
		diskBudget: opts.DiskBudget,
		ll:         list.New(),
		items:      map[string]*list.Element{},
		inflight:   map[string]*flight{},
		dll:        list.New(),
		ditems:     map[string]*list.Element{},
		buildHook:  opts.BuildHook,
	}
	if c.budget == 0 {
		c.budget = DefaultMemBudget
	}
	if c.dir != "" {
		if err := os.MkdirAll(c.dir, 0o755); err != nil {
			c.dir = ""
		}
	}
	c.scanDisk()
	return c
}

// scanDisk seeds the disk LRU from snapshot files already present in the
// directory, oldest first so pre-existing files evict before anything
// written by this process. Non-snapshot files are ignored.
func (c *Cache) scanDisk() {
	if c.dir == "" {
		return
	}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	type old struct {
		key   string
		bytes int64
		mtime int64
	}
	var found []old
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, snapshotExt) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, old{
			key:   strings.TrimSuffix(name, snapshotExt),
			bytes: info.Size(),
			mtime: info.ModTime().UnixNano(),
		})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range found {
		c.diskInsertLocked(f.key, f.bytes)
	}
}

// diskInsertLocked records (or refreshes) one snapshot file in the disk
// LRU and evicts least-recently-used files past the byte budget, never
// the entry just inserted. Caller holds c.mu; file removal happens under
// the lock, which is fine for the small snapshot counts involved.
func (c *Cache) diskInsertLocked(key string, bytes int64) {
	if el, ok := c.ditems[key]; ok {
		de := el.Value.(*diskEntry)
		c.diskBytes += bytes - de.bytes
		de.bytes = bytes
		c.dll.MoveToFront(el)
	} else {
		c.ditems[key] = c.dll.PushFront(&diskEntry{key: key, bytes: bytes})
		c.diskBytes += bytes
	}
	if c.diskBudget <= 0 {
		return
	}
	for c.diskBytes > c.diskBudget && c.dll.Len() > 1 {
		last := c.dll.Back()
		victim := last.Value.(*diskEntry)
		c.dll.Remove(last)
		delete(c.ditems, victim.key)
		c.diskBytes -= victim.bytes
		c.stats.DiskEvictions++
		os.Remove(filepath.Join(c.dir, victim.key+snapshotExt))
	}
}

// diskTouchLocked refreshes a snapshot's recency after a disk hit.
func (c *Cache) diskTouchLocked(key string) {
	if el, ok := c.ditems[key]; ok {
		c.dll.MoveToFront(el)
	}
}

// Dir reports the active snapshot directory ("" when the disk level is
// disabled).
func (c *Cache) Dir() string { return c.dir }

// Stats returns a consistent snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.BytesInMem = uint64(c.bytes)
	s.Entries = c.ll.Len()
	s.DiskBytes = uint64(c.diskBytes)
	s.DiskFiles = c.dll.Len()
	return s
}

// Key derives the canonical content hash identifying one prepared
// stream: the snapshot codec version, the private-hierarchy geometry
// (the LLC fields are deliberately excluded — the stream does not depend
// on them, so jobs differing only in LLC size or policy share an entry),
// the seed, and every field of the already-scaled model. The model and
// geometry are rendered with %+v, so adding a field to either struct
// automatically changes the key rather than silently serving stale
// streams.
func Key(m workloads.Model, machine cache.Config, seed uint64) string {
	private := machine
	private.LLCSize, private.LLCWays = 0, 0
	h := sha256.Sum256([]byte(fmt.Sprintf("sharellc stream v%d\nmachine %+v\nseed %d\nmodel %+v\n",
		codecVersion, private, seed, m)))
	return fmt.Sprintf("%x", h)
}

// Stream returns the prepared stream for (m, machine, seed), consulting
// the process level, then the snapshot directory, then building. Its
// signature is exactly sim.StreamProvider, so a Cache plugs into
// sim.Config as cfg.Streams = c.Stream.
func (c *Cache) Stream(ctx context.Context, m workloads.Model, machine cache.Config, seed uint64) (*sim.Stream, error) {
	key := Key(m, machine, seed)
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			c.stats.Hits++
			s := el.Value.(*entry).s
			c.mu.Unlock()
			return s, nil
		}
		if fl, ok := c.inflight[key]; ok {
			c.stats.Coalesced++
			c.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if fl.err == nil {
				return fl.s, nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// The builder failed — possibly because *its* context was
			// cancelled, which must not poison requesters that are still
			// live. Loop and retry (becoming the builder if needed); a
			// deterministic failure recurs and is returned below.
			continue
		}
		c.stats.Misses++
		fl := &flight{done: make(chan struct{})}
		c.inflight[key] = fl
		c.mu.Unlock()

		s, err := c.fetchOrBuild(key, m, machine, seed)

		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil {
			c.insertLocked(key, s)
		}
		c.mu.Unlock()
		fl.s, fl.err = s, err
		close(fl.done)
		return s, err
	}
}

// fetchOrBuild is the miss path: snapshot load if the disk level is
// enabled, else a full build followed by a best-effort snapshot write
// (which also repairs corrupt or stale files by overwriting them).
func (c *Cache) fetchOrBuild(key string, m workloads.Model, machine cache.Config, seed uint64) (*sim.Stream, error) {
	if c.dir != "" {
		if s, n, ok := loadSnapshot(c.snapshotPath(key), key, m); ok {
			c.mu.Lock()
			c.stats.DiskHits++
			c.stats.BytesRead += uint64(n)
			c.diskTouchLocked(key)
			c.mu.Unlock()
			return s, nil
		}
		c.mu.Lock()
		c.stats.DiskMiss++
		c.mu.Unlock()
	}
	if hook := c.buildHook; hook != nil {
		hook(key)
	}
	c.mu.Lock()
	c.stats.Builds++
	c.mu.Unlock()
	s, err := sim.BuildStream(m, machine, seed)
	if err != nil {
		return nil, err
	}
	if c.dir != "" {
		if n, err := writeSnapshot(c.snapshotPath(key), key, s); err == nil {
			c.mu.Lock()
			c.stats.BytesWritten += uint64(n)
			c.diskInsertLocked(key, int64(n))
			c.mu.Unlock()
		}
	}
	return s, nil
}

// snapshotExt is the snapshot file suffix under the cache directory.
const snapshotExt = ".sllc"

// snapshotPath maps a key to its snapshot file.
func (c *Cache) snapshotPath(key string) string {
	return filepath.Join(c.dir, key+snapshotExt)
}

// Contains reports whether the cache can serve key without a build: the
// stream is resident in the process level, or a snapshot file for it is
// tracked on disk. A tracked file that was deleted behind the cache's
// back makes Contains optimistic; SnapshotBytes and Stream still fall
// soft in that case.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[key]; ok {
		return true
	}
	_, ok := c.ditems[key]
	return ok
}

// SnapshotBytes returns the validated snapshot image for key, for
// serving to a peer over GET /v1/streams/{hash}. It prefers the disk
// file (checked against the key, magic and checksum before serving, so a
// corrupt file is never propagated) and falls back to encoding the
// resident in-memory stream when the disk level is off or the file is
// missing. ok is false when the cache cannot produce a valid image.
func (c *Cache) SnapshotBytes(key string) (data []byte, ok bool) {
	if c.dir != "" {
		if b, err := os.ReadFile(c.snapshotPath(key)); err == nil {
			if validateSnapshot(b, key) == nil {
				c.mu.Lock()
				c.stats.BytesRead += uint64(len(b))
				c.diskTouchLocked(key)
				c.mu.Unlock()
				return b, true
			}
		}
	}
	c.mu.Lock()
	el, resident := c.items[key]
	var s *sim.Stream
	if resident {
		s = el.Value.(*entry).s
		c.ll.MoveToFront(el)
	}
	c.mu.Unlock()
	if !resident {
		return nil, false
	}
	b, err := encodeSnapshot(key, s)
	if err != nil {
		return nil, false
	}
	return b, true
}

// PutSnapshot installs a peer-transferred snapshot image under key and
// returns the decoded stream. The image is fully validated (magic, key,
// checksum, record decode) before anything is stored — a truncated or
// corrupt transfer returns an error and leaves both cache levels
// untouched, so the caller falls soft to a local rebuild. On success the
// stream becomes resident in the process level and, when the disk level
// is on, the image is atomically written into the snapshot store.
func (c *Cache) PutSnapshot(key string, data []byte, m workloads.Model) (*sim.Stream, error) {
	s, err := decodeSnapshot(data, key, m)
	if err != nil {
		return nil, fmt.Errorf("streamcache: rejecting snapshot for %s: %w", key, err)
	}
	c.mu.Lock()
	c.stats.Puts++
	c.insertLocked(key, s)
	c.mu.Unlock()
	if c.dir != "" {
		if err := writeSnapshotBytes(c.snapshotPath(key), data); err == nil {
			c.mu.Lock()
			c.stats.BytesWritten += uint64(len(data))
			c.diskInsertLocked(key, int64(len(data)))
			c.mu.Unlock()
		}
	}
	return s, nil
}

// streamBytes approximates a stream's resident size for the byte budget:
// the access slice dominates everything else.
func streamBytes(s *sim.Stream) int64 {
	return int64(len(s.Accesses)) * int64(unsafe.Sizeof(cache.AccessInfo{}))
}

// insertLocked adds a freshly obtained stream to the process level and
// evicts LRU entries past the byte budget. The new entry itself is never
// evicted, so oversized streams still serve the requesters that are
// about to read them. Caller holds c.mu.
func (c *Cache) insertLocked(key string, s *sim.Stream) {
	if el, ok := c.items[key]; ok { // lost a cross-key race; keep the resident one
		c.ll.MoveToFront(el)
		return
	}
	e := &entry{key: key, s: s, bytes: streamBytes(s)}
	c.items[key] = c.ll.PushFront(e)
	c.bytes += e.bytes
	if c.budget < 0 {
		return
	}
	for c.bytes > c.budget && c.ll.Len() > 1 {
		last := c.ll.Back()
		victim := last.Value.(*entry)
		c.ll.Remove(last)
		delete(c.items, victim.key)
		c.bytes -= victim.bytes
		c.stats.Evictions++
	}
}
