package streamcache

import (
	"os"
	"strconv"
	"testing"
	"time"

	"sharellc/internal/sim"
)

// benchScale reads SHARELLC_BENCH_SCALE (a workload scale factor) so CI
// and bench.sh can run the speedup measurements at full size; tests and
// default benchmark runs use a reduced suite that keeps the same 22
// workloads but shrinks regions and trace lengths proportionally.
func benchScale(def float64) float64 {
	if v := os.Getenv("SHARELLC_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return def
}

// suiteConfig is the full 22-workload suite served through c.
func suiteConfig(c *Cache, scale float64) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Scale = scale
	cfg.Streams = c.Stream
	return cfg
}

// TestWarmSuiteSpeedup is the PR's acceptance benchmark in test form:
// constructing the full 22-workload suite from snapshots must be at
// least 5× faster than building it cold, and the warm suite must be
// bit-identical to the cold one.
func TestWarmSuiteSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	dir := t.TempDir()
	scale := benchScale(0.05)

	cold := New(Options{Dir: dir})
	start := time.Now()
	coldSuite, err := sim.NewSuite(suiteConfig(cold, scale))
	if err != nil {
		t.Fatal(err)
	}
	coldDur := time.Since(start)
	if st := cold.Stats(); st.Builds != uint64(len(coldSuite.Streams)) {
		t.Fatalf("cold construction built %d of %d streams", st.Builds, len(coldSuite.Streams))
	}

	// A fresh Cache on the same directory models a new process: the
	// in-memory level is empty, every stream comes off disk. Take the
	// best of three constructions so one scheduling hiccup cannot fail
	// the ratio check.
	warmDur := time.Duration(1<<63 - 1)
	var warmSuite *sim.Suite
	for i := 0; i < 3; i++ {
		warm := New(Options{Dir: dir})
		start = time.Now()
		ws, err := sim.NewSuite(suiteConfig(warm, scale))
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < warmDur {
			warmDur = d
		}
		if st := warm.Stats(); st.Builds != 0 || st.DiskHits != uint64(len(ws.Streams)) {
			t.Fatalf("warm construction was not snapshot-only: %+v", st)
		}
		warmSuite = ws
	}

	assertSuitesIdentical(t, coldSuite, warmSuite)
	t.Logf("scale %v: cold %v, warm %v (%.1fx)", scale, coldDur, warmDur, float64(coldDur)/float64(warmDur))
	if coldDur < 5*warmDur {
		t.Errorf("warm suite construction only %.1fx faster than cold (cold %v, warm %v), want >= 5x",
			float64(coldDur)/float64(warmDur), coldDur, warmDur)
	}
}

// BenchmarkSuiteBuildCold measures full-suite construction with no cache
// at all — the pre-PR baseline every invocation paid.
func BenchmarkSuiteBuildCold(b *testing.B) {
	scale := benchScale(0.05)
	cfg := sim.DefaultConfig()
	cfg.Scale = scale
	for i := 0; i < b.N; i++ {
		if _, err := sim.NewSuite(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteBuildWarm measures full-suite construction against a
// populated snapshot directory, with the process level emptied every
// iteration — the steady state of repeated CLI runs.
func BenchmarkSuiteBuildWarm(b *testing.B) {
	dir := b.TempDir()
	scale := benchScale(0.05)
	if _, err := sim.NewSuite(suiteConfig(New(Options{Dir: dir}), scale)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(Options{Dir: dir})
		if _, err := sim.NewSuite(suiteConfig(c, scale)); err != nil {
			b.Fatal(err)
		}
		if st := c.Stats(); st.Builds != 0 {
			b.Fatalf("warm iteration rebuilt %d streams", st.Builds)
		}
	}
}

// BenchmarkSuiteBuildHot measures construction when the streams are
// already resident in the process level — the daemon's steady state.
func BenchmarkSuiteBuildHot(b *testing.B) {
	scale := benchScale(0.05)
	c := New(Options{})
	if _, err := sim.NewSuite(suiteConfig(c, scale)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.NewSuite(suiteConfig(c, scale)); err != nil {
			b.Fatal(err)
		}
	}
}
