package streamcache

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"sharellc/internal/cache"
	"sharellc/internal/sim"
	"sharellc/internal/workloads"
)

// testModel returns a small scaled workload for fast builds.
func testModel(t *testing.T, name string, scale float64) workloads.Model {
	t.Helper()
	m, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m.Scaled(scale)
}

func TestKeyIgnoresLLCGeometry(t *testing.T) {
	m := testModel(t, "canneal", 0.01)
	base := cache.DefaultConfig()
	k1 := Key(m, base, 1)
	k2 := Key(m, base.WithLLC(8*cache.MB, 32), 1)
	if k1 != k2 {
		t.Errorf("key depends on LLC geometry: %s vs %s", k1, k2)
	}
}

func TestKeySeparatesInputs(t *testing.T) {
	m := testModel(t, "canneal", 0.01)
	base := cache.DefaultConfig()
	ref := Key(m, base, 1)
	l1 := base
	l1.L1Size = 64 * cache.KB
	for what, k := range map[string]string{
		"model":   Key(testModel(t, "swaptions", 0.01), base, 1),
		"scale":   Key(testModel(t, "canneal", 0.02), base, 1),
		"seed":    Key(m, base, 2),
		"L1 size": Key(m, l1, 1),
	} {
		if k == ref {
			t.Errorf("key does not separate %s", what)
		}
	}
}

// TestSingleflightHammer: 16 goroutines demand the same stream
// concurrently; exactly one build must run and everyone must get the
// same *sim.Stream value.
func TestSingleflightHammer(t *testing.T) {
	c := New(Options{}) // memory-only
	var builds atomic.Int64
	gate := make(chan struct{})
	c.buildHook = func(string) {
		builds.Add(1)
		<-gate // hold the build open until every waiter has coalesced
	}

	m := testModel(t, "canneal", 0.01)
	machine := cache.DefaultConfig()

	const goroutines = 16
	var (
		wg      sync.WaitGroup
		builder sync.WaitGroup
		streams [goroutines + 1]*sim.Stream
		errs    [goroutines + 1]error
	)
	// One known builder first, parked inside the build hook.
	builder.Add(1)
	go func() {
		defer builder.Done()
		streams[goroutines], errs[goroutines] = c.Stream(context.Background(), m, machine, 1)
	}()
	for builds.Load() == 0 {
		runtime.Gosched()
	}
	// Then the hammer: 16 goroutines that must all coalesce onto the
	// parked build. Coalesced is incremented before a waiter blocks, so
	// polling it synchronizes the gate exactly.
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			streams[i], errs[i] = c.Stream(context.Background(), m, machine, 1)
		}(i)
	}
	for c.Stats().Coalesced < goroutines {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	builder.Wait()

	for i := range streams {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if streams[i] != streams[0] {
			t.Errorf("goroutine %d got a different stream pointer", i)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("builds = %d, want exactly 1", n)
	}
	st := c.Stats()
	if st.Builds != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want Builds=1 Misses=1", st)
	}
	if st.Coalesced != goroutines {
		t.Errorf("coalesced = %d, want %d", st.Coalesced, goroutines)
	}

	// A second round of the same key is all process-level hits.
	if _, err := c.Stream(context.Background(), m, machine, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Hits; got == 0 {
		t.Errorf("hits = %d after warm lookup, want > 0", got)
	}
}

// TestSingleflightPerKey: distinct keys build independently, once each,
// under concurrent demand.
func TestSingleflightPerKey(t *testing.T) {
	c := New(Options{})
	builds := map[string]*atomic.Int64{}
	var mu sync.Mutex
	c.buildHook = func(key string) {
		mu.Lock()
		n, ok := builds[key]
		if !ok {
			n = &atomic.Int64{}
			builds[key] = n
		}
		mu.Unlock()
		n.Add(1)
	}
	machine := cache.DefaultConfig()
	models := []workloads.Model{
		testModel(t, "canneal", 0.01),
		testModel(t, "swaptions", 0.01),
		testModel(t, "barnes", 0.01),
	}
	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		for _, m := range models {
			wg.Add(1)
			go func(m workloads.Model) {
				defer wg.Done()
				if _, err := c.Stream(context.Background(), m, machine, 1); err != nil {
					t.Error(err)
				}
			}(m)
		}
	}
	wg.Wait()
	if len(builds) != len(models) {
		t.Fatalf("built %d distinct keys, want %d", len(builds), len(models))
	}
	for key, n := range builds {
		if n.Load() != 1 {
			t.Errorf("key %s built %d times, want 1", key[:12], n.Load())
		}
	}
}

// TestMemBudgetEviction: a budget that holds only one stream evicts the
// least recently used entry and keeps the accounting exact.
func TestMemBudgetEviction(t *testing.T) {
	machine := cache.DefaultConfig()
	a := testModel(t, "canneal", 0.01)
	b := testModel(t, "swaptions", 0.01)

	// Size the budget between one and two of the streams involved.
	sa, err := sim.BuildStream(a, machine, 1)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := sim.BuildStream(b, machine, 1)
	if err != nil {
		t.Fatal(err)
	}
	bigger := streamBytes(sa)
	if streamBytes(sb) > bigger {
		bigger = streamBytes(sb)
	}

	c := New(Options{MemBudget: bigger + 1})
	ctx := context.Background()
	if _, err := c.Stream(ctx, a, machine, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stream(ctx, b, machine, 1); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("stats after overflow = %+v, want 1 eviction, 1 entry", st)
	}
	if st.BytesInMem != uint64(streamBytes(sb)) {
		t.Errorf("BytesInMem = %d, want %d (only the second stream resident)", st.BytesInMem, streamBytes(sb))
	}
	// The evicted key rebuilds (a miss), the resident one hits.
	if _, err := c.Stream(ctx, b, machine, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stream(ctx, a, machine, 1); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Hits != 1 {
		t.Errorf("Hits = %d, want 1 (resident stream)", st.Hits)
	}
	if st.Builds != 3 {
		t.Errorf("Builds = %d, want 3 (a, b, a again after eviction)", st.Builds)
	}
}

// TestOversizedStreamStillServes: a stream larger than the whole budget
// is still returned and briefly cached (the newest entry is never the
// eviction victim).
func TestOversizedStreamStillServes(t *testing.T) {
	c := New(Options{MemBudget: 1})
	m := testModel(t, "canneal", 0.01)
	s, err := c.Stream(context.Background(), m, cache.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Accesses) == 0 {
		t.Fatal("empty stream")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want the oversized stream resident", st.Entries)
	}
}

// TestBuildErrorNotCached: a failing build propagates its error but a
// later request retries rather than being served a cached failure.
func TestBuildErrorNotCached(t *testing.T) {
	c := New(Options{})
	bad := testModel(t, "canneal", 0.01)
	bad.Threads = cache.DefaultConfig().Cores + 1 // exceeds machine cores
	if _, err := c.Stream(context.Background(), bad, cache.DefaultConfig(), 1); err == nil {
		t.Fatal("want error for over-threaded model")
	}
	var builds atomic.Int64
	c.buildHook = func(string) { builds.Add(1) }
	if _, err := c.Stream(context.Background(), bad, cache.DefaultConfig(), 1); err == nil {
		t.Fatal("want error on retry too")
	}
	if builds.Load() != 1 {
		t.Errorf("retry did not attempt a fresh build")
	}
}

// TestWaiterSurvivesBuilderCancellation: when the goroutine doing the
// build has its context cancelled, a coalesced waiter with a live
// context retries and completes instead of inheriting the cancellation.
func TestWaiterSurvivesBuilderCancellation(t *testing.T) {
	c := New(Options{})
	m := testModel(t, "canneal", 0.01)
	machine := cache.DefaultConfig()
	key := Key(m, machine, 1)

	// Simulate the aftermath of a cancelled builder: an inflight entry
	// that resolves to context.Canceled.
	fl := &flight{done: make(chan struct{})}
	c.mu.Lock()
	c.inflight[key] = fl
	c.mu.Unlock()

	res := make(chan error, 1)
	go func() {
		_, err := c.Stream(context.Background(), m, machine, 1)
		res <- err
	}()

	// Resolve the fake build as cancelled, clearing the inflight slot
	// the way a real builder does.
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	fl.err = context.Canceled
	close(fl.done)

	if err := <-res; err != nil {
		t.Fatalf("waiter inherited builder cancellation: %v", err)
	}
	if st := c.Stats(); st.Builds != 1 {
		t.Errorf("builds = %d, want 1 (the waiter's retry)", st.Builds)
	}
}

// TestWaiterContextCancellation: a waiter whose own context dies while
// coalesced returns promptly with its context error.
func TestWaiterContextCancellation(t *testing.T) {
	c := New(Options{})
	gate := make(chan struct{})
	c.buildHook = func(string) { <-gate }
	defer close(gate)

	m := testModel(t, "canneal", 0.01)
	machine := cache.DefaultConfig()
	go c.Stream(context.Background(), m, machine, 1) // builder, parked on gate

	// Wait until the build is in flight.
	key := Key(m, machine, 1)
	for {
		c.mu.Lock()
		_, ok := c.inflight[key]
		c.mu.Unlock()
		if ok {
			break
		}
		runtime.Gosched()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Stream(ctx, m, machine, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestProviderPlugsIntoSuite: a cache-backed suite is identical to a
// plain one, and a second construction is served without any build.
func TestProviderPlugsIntoSuite(t *testing.T) {
	c := New(Options{Dir: t.TempDir()})
	cfg := sim.Config{
		Machine: cache.DefaultConfig(),
		Seed:    1,
		Scale:   0.01,
		Models: []workloads.Model{
			testModel(t, "canneal", 1),
			testModel(t, "swaptions", 1),
		},
	}
	plain, err := sim.NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Streams = c.Stream
	warm1, err := sim.NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSuitesIdentical(t, plain, warm1)
	if st := c.Stats(); st.Builds != 2 {
		t.Fatalf("builds = %d, want 2", st.Builds)
	}
	warm2, err := sim.NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSuitesIdentical(t, plain, warm2)
	st := c.Stats()
	if st.Builds != 2 {
		t.Errorf("second suite construction rebuilt streams: builds = %d", st.Builds)
	}
	if st.Hits != 2 {
		t.Errorf("hits = %d, want 2", st.Hits)
	}
}

// assertSuitesIdentical demands bit-identical streams (every AccessInfo
// field, via struct equality) and identical hierarchy counters.
func assertSuitesIdentical(t *testing.T, want, got *sim.Suite) {
	t.Helper()
	if len(want.Streams) != len(got.Streams) {
		t.Fatalf("stream count %d vs %d", len(got.Streams), len(want.Streams))
	}
	for i, w := range want.Streams {
		g := got.Streams[i]
		if g.Model != w.Model {
			t.Errorf("stream %d: model differs", i)
		}
		if g.NumBlocks != w.NumBlocks || g.TraceLen != w.TraceLen || g.L1Hits != w.L1Hits || g.L2Hits != w.L2Hits {
			t.Errorf("stream %d: header differs: %+v vs %+v",
				i, []uint64{uint64(g.NumBlocks), g.TraceLen, g.L1Hits, g.L2Hits},
				[]uint64{uint64(w.NumBlocks), w.TraceLen, w.L1Hits, w.L2Hits})
		}
		if len(g.Accesses) != len(w.Accesses) {
			t.Errorf("stream %d: length %d vs %d", i, len(g.Accesses), len(w.Accesses))
			continue
		}
		for j := range w.Accesses {
			if g.Accesses[j] != w.Accesses[j] {
				t.Errorf("stream %d access %d: %+v vs %+v", i, j, g.Accesses[j], w.Accesses[j])
				break
			}
		}
	}
}
