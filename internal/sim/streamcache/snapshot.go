package streamcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"

	"sharellc/internal/cache"
	"sharellc/internal/sim"
	"sharellc/internal/workloads"
)

// The snapshot file format (one file per cache key):
//
//	magic    [8]byte  "SHLLCSS" + codecVersion digit
//	key      [32]byte raw SHA-256 cache key (must match the lookup key)
//	header   uvarints: count, numBlocks, traceLen, l1Hits, l2Hits
//	records  count × cache.AppendAccessInfos encoding
//	crc      [4]byte  CRC-32C (Castagnoli) of everything before it, LE
//
// Loads are a single bulk os.ReadFile followed by one decode pass into a
// preallocated []cache.AccessInfo sized from the header. Every validity
// check — magic/version, key, checksum, record decode, header bounds —
// fails soft: loadSnapshot reports !ok and the caller rebuilds the
// stream and rewrites the file. A snapshot can therefore be deleted,
// truncated or bit-flipped at any time without affecting results, only
// warm-start time.

// snapshotMagic identifies stream snapshot files; the trailing digit is
// codecVersion, so a format bump orphans older files at the magic check
// (their keys change too, via Key's version line).
var snapshotMagic = [8]byte{'S', 'H', 'L', 'L', 'C', 'S', 'S', '0' + codecVersion}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errSnapshot is the internal "fall back to rebuild" sentinel; load
// failures are deliberately not propagated further.
var errSnapshot = errors.New("streamcache: invalid snapshot")

// encodeSnapshot renders the full snapshot image (magic through CRC
// trailer) for s under key, the exact bytes a snapshot file holds — and
// therefore also the peer-transfer wire format.
func encodeSnapshot(key string, s *sim.Stream) ([]byte, error) {
	keyBytes, err := decodeKey(key)
	if err != nil {
		return nil, err
	}
	// Records dominate; 8 bytes each is a comfortable overestimate for
	// the header and typical record sizes.
	buf := make([]byte, 0, len(snapshotMagic)+len(keyBytes)+5*binary.MaxVarintLen64+8*len(s.Accesses))
	buf = append(buf, snapshotMagic[:]...)
	buf = append(buf, keyBytes...)
	for _, v := range []uint64{uint64(len(s.Accesses)), uint64(s.NumBlocks), s.TraceLen, s.L1Hits, s.L2Hits} {
		buf = binary.AppendUvarint(buf, v)
	}
	buf, err = cache.AppendAccessInfos(buf, s.Accesses)
	if err != nil {
		return nil, err
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable)), nil
}

// writeSnapshot encodes s and atomically installs it at path (write to a
// temp file in the same directory, then rename), returning the file
// size. Failures leave no partial file behind.
func writeSnapshot(path, key string, s *sim.Stream) (int, error) {
	buf, err := encodeSnapshot(key, s)
	if err != nil {
		return 0, err
	}
	if err := writeSnapshotBytes(path, buf); err != nil {
		return 0, err
	}
	return len(buf), nil
}

// writeSnapshotBytes atomically installs an already-encoded snapshot
// image at path (temp file in the same directory, then rename).
func writeSnapshotBytes(path string, buf []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".sllc-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// validateSnapshot checks the cheap integrity envelope of a snapshot
// image — length, magic/version, embedded key, CRC trailer — without
// decoding the records. Serving paths use it so a corrupt file is never
// propagated to a peer; the receiver still runs the full decode.
func validateSnapshot(data []byte, key string) error {
	const minLen = 8 + 32 + 5 + 4
	if len(data) < minLen {
		return errSnapshot
	}
	if [8]byte(data[:8]) != snapshotMagic {
		return errSnapshot
	}
	keyBytes, err := decodeKey(key)
	if err != nil || string(data[8:40]) != string(keyBytes) {
		return errSnapshot
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return errSnapshot
	}
	return nil
}

// loadSnapshot bulk-reads path and reconstructs the stream for m. ok is
// false — never an error surfaced to the experiment — when the file is
// absent, from another format version, keyed differently, corrupt or
// truncated.
func loadSnapshot(path, key string, m workloads.Model) (s *sim.Stream, bytesRead int, ok bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false
	}
	s, err = decodeSnapshot(data, key, m)
	if err != nil {
		return nil, len(data), false
	}
	return s, len(data), true
}

// decodeSnapshot validates and decodes one snapshot image.
func decodeSnapshot(data []byte, key string, m workloads.Model) (*sim.Stream, error) {
	const minLen = 8 + 32 + 5 + 4 // magic + key + 1-byte header fields + crc
	if len(data) < minLen {
		return nil, errSnapshot
	}
	if [8]byte(data[:8]) != snapshotMagic {
		return nil, errSnapshot
	}
	keyBytes, err := decodeKey(key)
	if err != nil || string(data[8:40]) != string(keyBytes) {
		return nil, errSnapshot
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, errSnapshot
	}
	pos := 40
	header := make([]uint64, 5)
	for i := range header {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return nil, errSnapshot
		}
		header[i] = v
		pos += n
	}
	count, numBlocks := header[0], header[1]
	// A stream has at most one BlockID per access and fits in memory;
	// reject absurd counts before allocating.
	if count > uint64(len(body)) || numBlocks > count {
		return nil, errSnapshot
	}
	accesses := make([]cache.AccessInfo, count)
	n, err := cache.DecodeAccessInfos(body[pos:], accesses)
	if err != nil || pos+n != len(body) {
		return nil, errSnapshot
	}
	return &sim.Stream{
		Model:     m,
		Accesses:  accesses,
		NumBlocks: int(numBlocks),
		TraceLen:  header[2],
		L1Hits:    header[3],
		L2Hits:    header[4],
	}, nil
}

// decodeKey turns the hex cache key back into its raw 32 bytes.
func decodeKey(key string) ([]byte, error) {
	out, err := hex.DecodeString(key)
	if err != nil || len(out) != sha256.Size {
		return nil, errSnapshot
	}
	return out, nil
}
