package streamcache

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"sharellc/internal/cache"
)

// buildOne fills the cache with one stream and returns its key.
func buildOne(t *testing.T, c *Cache, name string, seed uint64) string {
	t.Helper()
	m := testModel(t, name, 0.01)
	machine := cache.DefaultConfig()
	if _, err := c.Stream(context.Background(), m, machine, seed); err != nil {
		t.Fatal(err)
	}
	return Key(m, machine, seed)
}

func TestDiskBudgetEvicts(t *testing.T) {
	dir := t.TempDir()
	c := New(Options{Dir: dir})
	k1 := buildOne(t, c, "canneal", 1)
	size1 := c.Stats().DiskBytes
	if size1 == 0 {
		t.Fatal("no snapshot written")
	}

	// A fresh cache whose budget fits exactly one snapshot of this size:
	// writing a second evicts the least recently used first one.
	c2 := New(Options{Dir: t.TempDir(), DiskBudget: int64(size1) + int64(size1)/2})
	k1 = buildOne(t, c2, "canneal", 1)
	k2 := buildOne(t, c2, "canneal", 2)
	st := c2.Stats()
	if st.DiskEvictions == 0 {
		t.Fatalf("no disk evictions under budget %d with %d bytes written", int64(size1)+int64(size1)/2, st.BytesWritten)
	}
	if st.DiskFiles != 1 {
		t.Errorf("DiskFiles = %d, want 1", st.DiskFiles)
	}
	if _, err := os.Stat(filepath.Join(c2.Dir(), k1+snapshotExt)); !os.IsNotExist(err) {
		t.Errorf("evicted snapshot %s still on disk (err=%v)", k1, err)
	}
	if _, err := os.Stat(filepath.Join(c2.Dir(), k2+snapshotExt)); err != nil {
		t.Errorf("newest snapshot %s missing: %v", k2, err)
	}
}

func TestDiskBudgetNeverEvictsNewest(t *testing.T) {
	// A budget smaller than any single snapshot must still keep the one
	// just written (mirrors the memory level's newest-entry guarantee).
	c := New(Options{Dir: t.TempDir(), DiskBudget: 1})
	k := buildOne(t, c, "canneal", 1)
	if _, err := os.Stat(filepath.Join(c.Dir(), k+snapshotExt)); err != nil {
		t.Errorf("newest snapshot evicted by undersized budget: %v", err)
	}
	if got := c.Stats().DiskFiles; got != 1 {
		t.Errorf("DiskFiles = %d, want 1", got)
	}
}

func TestScanDiskAdoptsExistingSnapshots(t *testing.T) {
	dir := t.TempDir()
	c := New(Options{Dir: dir})
	k := buildOne(t, c, "canneal", 1)

	// A second cache over the same directory adopts the file sight unseen.
	c2 := New(Options{Dir: dir})
	if !c2.Contains(k) {
		t.Error("fresh cache does not see pre-existing snapshot")
	}
	st := c2.Stats()
	if st.DiskFiles != 1 || st.DiskBytes == 0 {
		t.Errorf("adopted stats DiskFiles=%d DiskBytes=%d", st.DiskFiles, st.DiskBytes)
	}
}

func TestContains(t *testing.T) {
	c := New(Options{}) // memory only
	if c.Contains("no-such-key") {
		t.Error("Contains true for unknown key")
	}
	k := buildOne(t, c, "canneal", 1)
	if !c.Contains(k) {
		t.Error("Contains false after build")
	}
}

func TestSnapshotBytesAndPut(t *testing.T) {
	src := New(Options{Dir: t.TempDir()})
	m := testModel(t, "canneal", 0.01)
	machine := cache.DefaultConfig()
	want, err := src.Stream(context.Background(), m, machine, 1)
	if err != nil {
		t.Fatal(err)
	}
	k := Key(m, machine, 1)
	img, ok := src.SnapshotBytes(k)
	if !ok {
		t.Fatal("SnapshotBytes failed on warm cache")
	}

	// Peer install: decoded stream equal, no build performed.
	dst := New(Options{Dir: t.TempDir(), BuildHook: func(string) { t.Error("unexpected build on peer") }})
	got, err := dst.PutSnapshot(k, img, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Accesses) != len(want.Accesses) || got.NumBlocks != want.NumBlocks || got.TraceLen != want.TraceLen {
		t.Errorf("transferred stream differs: %d/%d/%d vs %d/%d/%d",
			len(got.Accesses), got.NumBlocks, got.TraceLen, len(want.Accesses), want.NumBlocks, want.TraceLen)
	}
	if !dst.Contains(k) {
		t.Error("Contains false after PutSnapshot")
	}
	if st := dst.Stats(); st.Puts != 1 || st.DiskFiles != 1 {
		t.Errorf("stats after put: Puts=%d DiskFiles=%d", st.Puts, st.DiskFiles)
	}
	// And the installed snapshot serves a later Stream call without building.
	if _, err := dst.Stream(context.Background(), m, machine, 1); err != nil {
		t.Fatal(err)
	}
	if b := dst.Stats().Builds; b != 0 {
		t.Errorf("Stream after PutSnapshot built anyway (Builds=%d)", b)
	}
}

func TestSnapshotBytesFromMemoryOnly(t *testing.T) {
	src := New(Options{}) // no disk level
	m := testModel(t, "canneal", 0.01)
	machine := cache.DefaultConfig()
	if _, err := src.Stream(context.Background(), m, machine, 1); err != nil {
		t.Fatal(err)
	}
	k := Key(m, machine, 1)
	img, ok := src.SnapshotBytes(k)
	if !ok {
		t.Fatal("SnapshotBytes failed with memory-only cache")
	}
	if err := validateSnapshot(img, k); err != nil {
		t.Fatalf("encoded image fails validation: %v", err)
	}
}

func TestPutSnapshotRejectsCorrupt(t *testing.T) {
	src := New(Options{})
	m := testModel(t, "canneal", 0.01)
	machine := cache.DefaultConfig()
	if _, err := src.Stream(context.Background(), m, machine, 1); err != nil {
		t.Fatal(err)
	}
	k := Key(m, machine, 1)
	img, ok := src.SnapshotBytes(k)
	if !ok {
		t.Fatal("SnapshotBytes failed")
	}

	dst := New(Options{Dir: t.TempDir()})
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bit-flip": func(b []byte) []byte {
			b2 := append([]byte(nil), b...)
			b2[len(b2)/2] ^= 0x40
			return b2
		},
		"empty": func([]byte) []byte { return nil },
	} {
		if _, err := dst.PutSnapshot(k, mutate(append([]byte(nil), img...)), m); err == nil {
			t.Errorf("%s image accepted", name)
		}
	}
	if dst.Contains(k) {
		t.Error("corrupt put left the key resident")
	}
	if st := dst.Stats(); st.DiskFiles != 0 {
		t.Errorf("corrupt put wrote a file (DiskFiles=%d)", st.DiskFiles)
	}
}

func TestOptionsBuildHook(t *testing.T) {
	var keys []string
	c := New(Options{BuildHook: func(k string) { keys = append(keys, k) }})
	k := buildOne(t, c, "canneal", 1)
	if len(keys) != 1 || keys[0] != k {
		t.Errorf("build hook calls = %v, want [%s]", keys, k)
	}
}
