package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"

	"sharellc/internal/cache"
	"sharellc/internal/coherence"
	"sharellc/internal/core"
	"sharellc/internal/oracle"
	"sharellc/internal/phase"
	"sharellc/internal/policy"
	"sharellc/internal/predictor"
	"sharellc/internal/reuse"
	"sharellc/internal/sharing"
	"sharellc/internal/stats"
	"sharellc/internal/workloads"
)

// CharRow is one workload's characterization at one LLC size (experiments
// F1, F2, F3).
type CharRow struct {
	Workload string
	Suite    string

	Accesses uint64 // LLC references
	Hits     uint64
	Misses   uint64
	MissRate float64

	SharedHitFrac       float64 // fraction of LLC hits landing in shared residencies
	SharedResidencyFrac float64 // fraction of residencies that are shared
	SharedBlockFrac     float64 // fraction of distinct blocks ever shared

	// ROSharedHitFrac and RWSharedHitFrac split the shared hit volume by
	// write behaviour (read-only vs. actively communicated data); they
	// sum to SharedHitFrac.
	ROSharedHitFrac float64
	RWSharedHitFrac float64

	DegreeResidencyShare [4]float64 // residency share per stats.DegreeBuckets
	DegreeHitShare       [4]float64 // hit share per stats.DegreeBuckets
}

// Characterize runs the F1/F2/F3 characterization under LRU at the given
// LLC geometry, one row per workload.
func (s *Suite) Characterize(llcSize, llcWays int) ([]CharRow, error) {
	shards := s.shardsFor(len(s.Streams))
	rows := make([]CharRow, len(s.Streams))
	var done atomic.Int64
	err := s.par(len(s.Streams), func(i int) error {
		st := s.Streams[i]
		res, err := sharing.ReplayParallel(st.Accesses, llcSize, llcWays,
			func() cache.Policy { return policy.NewLRUPolicy() },
			s.replayOpts(st, shards))
		if err != nil {
			return fmt.Errorf("characterize %s: %w", st.Model.Name, err)
		}
		defer s.step(&done, len(s.Streams), st.Model.Name)
		rows[i] = CharRow{
			Workload:             st.Model.Name,
			Suite:                st.Model.Suite,
			Accesses:             res.Accesses,
			Hits:                 res.Hits,
			Misses:               res.Misses,
			MissRate:             res.MissRate(),
			SharedHitFrac:        res.SharedHitFraction(),
			ROSharedHitFrac:      stats.Ratio(res.ROSharedHits, res.Hits),
			RWSharedHitFrac:      stats.Ratio(res.RWSharedHits, res.Hits),
			SharedResidencyFrac:  stats.Ratio(res.SharedResidencies, res.Residencies),
			SharedBlockFrac:      stats.Ratio(res.DistinctSharedBlocks, res.DistinctBlocks),
			DegreeResidencyShare: stats.BucketizeDegrees(res.DegreeResidencies),
			DegreeHitShare:       stats.BucketizeDegrees(res.DegreeHits),
		}
		return nil
	})
	return rows, err
}

// CoherenceRow is one workload's coherence-traffic characterization
// (experiment C1, an extension): directory-protocol event rates per
// thousand references under an infinite-private-cache view — the "other
// architectural features" the paper's conclusion points at, quantified.
type CoherenceRow struct {
	Workload string
	Refs     uint64

	// Event rates per thousand references.
	InvalidationsPKR float64
	DowngradesPKR    float64
	C2CTransfersPKR  float64
	UpgradesPKR      float64
}

// CoherenceCharacterize regenerates each workload's raw trace and feeds
// it to a MESI directory. The directory models infinite private caches
// (no capacity evictions), so the rates measure *true* communication,
// independent of cache geometry.
func (s *Suite) CoherenceCharacterize() ([]CoherenceRow, error) {
	rows := make([]CoherenceRow, len(s.Streams))
	var done atomic.Int64
	ctx := s.context()
	err := s.par(len(s.Streams), func(i int) error {
		st := s.Streams[i]
		r, err := st.Model.Generate(s.Config.Seed)
		if err != nil {
			return fmt.Errorf("coherence characterize %s: %w", st.Model.Name, err)
		}
		dir := coherence.NewDirectory()
		var refs uint64
		for {
			a, ok := r.Next()
			if !ok {
				break
			}
			refs++
			if refs&(1<<16-1) == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if a.Write {
				dir.Store(a.Core, a.Addr.BlockID())
			} else {
				dir.Load(a.Core, a.Addr.BlockID())
			}
		}
		if err := r.Err(); err != nil {
			return err
		}
		cs := dir.Stats()
		pkr := func(v uint64) float64 {
			if refs == 0 {
				return 0
			}
			return 1000 * float64(v) / float64(refs)
		}
		rows[i] = CoherenceRow{
			Workload:         st.Model.Name,
			Refs:             refs,
			InvalidationsPKR: pkr(cs.Invalidations),
			DowngradesPKR:    pkr(cs.Downgrades),
			C2CTransfersPKR:  pkr(cs.C2CTransfers),
			UpgradesPKR:      pkr(cs.UpgradeMisses),
		}
		s.step(&done, len(s.Streams), st.Model.Name)
		return nil
	})
	return rows, err
}

// ReuseRow is one workload's reuse-distance characterization (experiment
// C2, an extension): the distribution of LRU stack distances at the LLC,
// split into shared-future and private accesses. Buckets follow
// reuse.BucketEdges; the 64K- and 128K-block edges are the 4 MB and 8 MB
// capacities, so the shares read directly as "fits at 4 MB / at 8 MB /
// nowhere".
type ReuseRow struct {
	Workload string

	SharedShares  [reuse.NumBuckets]float64
	PrivateShares [reuse.NumBuckets]float64
	SharedTotal   uint64
	PrivateTotal  uint64
}

// ReuseDistances runs the C2 characterization, classifying each access
// with the oracle's residency-scale sharing hint at the given LLC size.
func (s *Suite) ReuseDistances(llcSize int) ([]ReuseRow, error) {
	rows := make([]ReuseRow, len(s.Streams))
	var done atomic.Int64
	err := s.par(len(s.Streams), func(i int) error {
		st := s.Streams[i]
		horizon := int64(oracle.HorizonFactor) * int64(llcSize/64)
		hints := oracle.SharedHints(st.Accesses, horizon)
		prof, err := reuse.Analyze(st.Accesses, hints)
		if err != nil {
			return fmt.Errorf("reuse distances %s: %w", st.Model.Name, err)
		}
		defer s.step(&done, len(s.Streams), st.Model.Name)
		row := ReuseRow{
			Workload:     st.Model.Name,
			SharedTotal:  prof.Shared.Total,
			PrivateTotal: prof.Private.Total,
		}
		for b := 0; b < reuse.NumBuckets; b++ {
			row.SharedShares[b] = prof.Shared.Share(b)
			row.PrivateShares[b] = prof.Private.Share(b)
		}
		rows[i] = row
		return nil
	})
	return rows, err
}

// PhaseRow is one workload's sharing-phase analysis (experiment F9):
// how stable a block's shared/private status is across program phases,
// the mechanistic explanation of the predictor failure.
type PhaseRow struct {
	Workload string

	Windows      int
	FlipRate     float64 // fraction of window-to-window status changes
	MixedFrac    float64 // multi-window blocks with both statuses
	AlwaysShared uint64
	NeverShared  uint64
	Mixed        uint64
	SingleWindow uint64
}

// SharingPhases runs the F9 phase analysis over every workload's LLC
// stream with the given number of windows (0 = phase.DefaultWindows).
func (s *Suite) SharingPhases(windows int) ([]PhaseRow, error) {
	if windows == 0 {
		windows = phase.DefaultWindows
	}
	rows := make([]PhaseRow, len(s.Streams))
	var done atomic.Int64
	err := s.par(len(s.Streams), func(i int) error {
		st := s.Streams[i]
		res, err := phase.Analyze(st.Accesses, windows)
		if err != nil {
			return fmt.Errorf("phase analysis %s: %w", st.Model.Name, err)
		}
		defer s.step(&done, len(s.Streams), st.Model.Name)
		rows[i] = PhaseRow{
			Workload:     st.Model.Name,
			Windows:      res.Windows,
			FlipRate:     res.FlipRate(),
			MixedFrac:    res.MixedFraction(),
			AlwaysShared: res.AlwaysShared,
			NeverShared:  res.NeverShared,
			Mixed:        res.Mixed,
			SingleWindow: res.SingleWindow,
		}
		return nil
	})
	return rows, err
}

// PolicyRow is one (workload, policy) cell of the policy comparison
// (experiment F4).
type PolicyRow struct {
	Workload string
	Policy   string

	Misses        uint64
	MissRate      float64
	MissesVsLRU   float64 // misses normalized to LRU on the same workload
	SharedHits    uint64
	SharedHitFrac float64
}

// ComparePolicies replays every workload under every named policy
// (experiment F4) — one fused replay per workload drives all policy
// lanes in a single stream pass. Rows are grouped by workload in suite
// order, policies in the order given.
func (s *Suite) ComparePolicies(llcSize, llcWays int, names []string) ([]PolicyRow, error) {
	if len(names) == 0 {
		names = policy.Names(s.Config.Seed)
	}
	factories := make([]policy.Factory, len(names))
	for i, n := range names {
		f, err := policy.ByName(n, s.Config.Seed)
		if err != nil {
			return nil, err
		}
		factories[i] = f
	}
	shards := s.shardsFor(len(s.Streams))
	rows := make([]PolicyRow, len(s.Streams)*len(names))
	var done atomic.Int64
	err := s.par(len(s.Streams), func(w int) error {
		st := s.Streams[w]
		configs := make([]sharing.LLCConfig, len(names))
		for p, f := range factories {
			configs[p] = sharing.LLCConfig{Size: llcSize, Ways: llcWays, NewPolicy: f}
		}
		results, err := sharing.ReplayMulti(st.Accesses, configs,
			s.replayOpts(st, shards))
		if err != nil {
			return fmt.Errorf("comparing %s: %w", st.Model.Name, err)
		}
		defer s.step(&done, len(s.Streams), st.Model.Name)
		// Fused results arrive grouped per workload, so LRU normalization
		// reads straight from this group — no cross-row second pass.
		var lruMisses uint64
		for _, res := range results {
			if res.Policy == "lru" {
				lruMisses = res.Misses
			}
		}
		for p, res := range results {
			row := PolicyRow{
				Workload:      st.Model.Name,
				Policy:        res.Policy,
				Misses:        res.Misses,
				MissRate:      res.MissRate(),
				SharedHits:    res.SharedHits,
				SharedHitFrac: res.SharedHitFraction(),
			}
			if lruMisses > 0 {
				row.MissesVsLRU = float64(res.Misses) / float64(lruMisses)
			}
			rows[w*len(names)+p] = row
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// OracleRow is one (workload, policy) result of the oracle study
// (experiments F5, F6, A1).
type OracleRow struct {
	Workload string
	Policy   string

	BaseMisses   uint64
	OracleMisses uint64
	Reduction    float64 // fractional miss reduction, positive = oracle wins

	BaseSharedHitFrac   float64
	OracleSharedHitFrac float64
	// AMATSpeedup translates the miss delta into an average-memory-
	// access-time speedup under DefaultLatency (first-order, no MLP).
	AMATSpeedup float64
	Protector   core.Stats
}

// OracleStudy runs the two-pass oracle experiment for each workload and
// each named base policy at the given strength — all 2×|policies| lanes
// of one workload fused into a single stream pass.
func (s *Suite) OracleStudy(llcSize, llcWays int, names []string, opts core.Options) ([]OracleRow, error) {
	if len(names) == 0 {
		names = []string{"lru"}
	}
	factories := make([]func() cache.Policy, len(names))
	for i, n := range names {
		f, err := policy.ByName(n, s.Config.Seed)
		if err != nil {
			return nil, err
		}
		factories[i] = f
	}
	shards := s.shardsFor(len(s.Streams))
	rows := make([]OracleRow, len(s.Streams)*len(names))
	var done atomic.Int64
	err := s.par(len(s.Streams), func(w int) error {
		st := s.Streams[w]
		results, err := oracle.RunMultiPolicies(s.context(), st.Accesses, llcSize, llcWays,
			factories, opts, oracle.HorizonFactor, s.replayOpts(st, shards))
		if err != nil {
			return fmt.Errorf("oracle study %s: %w", st.Model.Name, err)
		}
		defer s.step(&done, len(s.Streams), st.Model.Name)
		for p, res := range results {
			rows[w*len(names)+p] = OracleRow{
				Workload:            st.Model.Name,
				Policy:              names[p],
				BaseMisses:          res.Base.Misses,
				OracleMisses:        res.Oracle.Misses,
				Reduction:           res.MissReduction(),
				BaseSharedHitFrac:   res.Base.SharedHitFraction(),
				OracleSharedHitFrac: res.Oracle.SharedHitFraction(),
				AMATSpeedup: DefaultLatency().AMATSpeedup(st,
					res.Base.Hits, res.Base.Misses, res.Oracle.Hits, res.Oracle.Misses),
				Protector: res.Stats,
			}
		}
		return nil
	})
	return rows, err
}

// BuildMixStream prepares the LLC reference stream of a multiprogrammed
// mix (independent single-threaded programs, one per core, disjoint
// address spaces).
func BuildMixStream(models []workloads.Model, machine cache.Config, seed uint64) (*Stream, error) {
	if len(models) > machine.Cores {
		return nil, fmt.Errorf("sim: mix of %d programs on %d cores", len(models), machine.Cores)
	}
	r, err := workloads.Mix(models, seed)
	if err != nil {
		return nil, err
	}
	stream, h, err := cache.FilterStream(r, machine)
	if err != nil {
		return nil, fmt.Errorf("sim: filtering %s: %w", workloads.MixName(models), err)
	}
	numBlocks := cache.AnnotateNextUse(stream)
	refs, l1, l2, _ := h.Stats()
	pseudo := models[0]
	pseudo.Name = workloads.MixName(models)
	pseudo.Threads = len(models)
	return &Stream{Model: pseudo, Accesses: stream, NumBlocks: numBlocks, TraceLen: refs, L1Hits: l1, L2Hits: l2}, nil
}

// MultiprogrammedOracle runs the M1 experiment: the sharing oracle over
// multiprogrammed mixes, where by construction nothing is shared and the
// oracle should have (near) nothing to offer — the paper's motivating
// contrast with multi-threaded workloads.
func MultiprogrammedOracle(mixes [][]workloads.Model, machine cache.Config, seed uint64, llcSize, llcWays int, opts core.Options) ([]OracleRow, error) {
	return MultiprogrammedOracleCtx(context.Background(), mixes, machine, seed, llcSize, llcWays, opts)
}

// MultiprogrammedOracleCtx is MultiprogrammedOracle with a cancellation
// context covering both mix preparation and the oracle replays.
func MultiprogrammedOracleCtx(ctx context.Context, mixes [][]workloads.Model, machine cache.Config, seed uint64, llcSize, llcWays int, opts core.Options) ([]OracleRow, error) {
	shards := leftoverShards(len(mixes))
	rows := make([]OracleRow, len(mixes))
	err := parallelCapCtx(ctx, len(mixes), runtime.GOMAXPROCS(0), func(i int) error {
		st, err := BuildMixStream(mixes[i], machine, seed)
		if err != nil {
			return err
		}
		ress, err := oracle.RunMultiPolicies(ctx, st.Accesses, llcSize, llcWays,
			[]func() cache.Policy{func() cache.Policy { return policy.NewLRUPolicy() }},
			opts, oracle.HorizonFactor, st.ReplayOptions(shards, ctx))
		if err != nil {
			return fmt.Errorf("multiprogrammed oracle %s: %w", st.Model.Name, err)
		}
		res := ress[0]
		rows[i] = OracleRow{
			Workload:            st.Model.Name,
			Policy:              "lru",
			BaseMisses:          res.Base.Misses,
			OracleMisses:        res.Oracle.Misses,
			Reduction:           res.MissReduction(),
			BaseSharedHitFrac:   res.Base.SharedHitFraction(),
			OracleSharedHitFrac: res.Oracle.SharedHitFraction(),
			AMATSpeedup: DefaultLatency().AMATSpeedup(st,
				res.Base.Hits, res.Base.Misses, res.Oracle.Hits, res.Oracle.Misses),
			Protector: res.Stats,
		}
		return nil
	})
	return rows, err
}

// HorizonRow is one (workload, horizon-factor) result of the A4 ablation.
type HorizonRow struct {
	Workload  string
	Factor    int // sharing lookahead in multiples of LLC capacity
	Reduction float64
}

// OracleHorizonSweep reruns the LRU oracle study at several sharing
// horizons (ablation A4): how sensitive is the headroom to how far ahead
// "will be shared during its residency" looks?
func (s *Suite) OracleHorizonSweep(llcSize, llcWays int, factors []int, opts core.Options) ([]HorizonRow, error) {
	if len(factors) == 0 {
		factors = []int{1, 2, 4, 8}
	}
	shards := s.shardsFor(len(s.Streams))
	rows := make([]HorizonRow, len(s.Streams)*len(factors))
	var done atomic.Int64
	err := s.par(len(s.Streams), func(w int) error {
		st := s.Streams[w]
		results, err := oracle.RunMultiHorizons(s.context(), st.Accesses, llcSize, llcWays,
			func() cache.Policy { return policy.NewLRUPolicy() }, opts, factors, s.replayOpts(st, shards))
		if err != nil {
			return fmt.Errorf("horizon sweep %s: %w", st.Model.Name, err)
		}
		defer s.step(&done, len(s.Streams), st.Model.Name)
		for f, res := range results {
			rows[w*len(factors)+f] = HorizonRow{Workload: st.Model.Name, Factor: factors[f], Reduction: res.MissReduction()}
		}
		return nil
	})
	return rows, err
}

// MeanReduction averages the miss reduction of rows for one policy.
func MeanReduction(rows []OracleRow, policyName string) float64 {
	var xs []float64
	for _, r := range rows {
		if r.Policy == policyName {
			xs = append(xs, r.Reduction)
		}
	}
	return stats.Mean(xs)
}

// PredictorNames lists the realistic predictors of the F7/F8 studies in
// presentation order: the paper's two history predictors, the tournament
// combination (extension), and the always/never brackets that expose each
// workload's class prior.
func PredictorNames() []string {
	return []string{"addr", "pc", "tournament", "coherence", "always", "never"}
}

// newPredictor builds the named predictor with cfg.
func newPredictor(name string, cfg predictor.Config) (predictor.Predictor, error) {
	switch name {
	case "addr":
		return predictor.NewAddress(cfg)
	case "pc":
		return predictor.NewPC(cfg)
	case "tournament":
		return predictor.NewTournament(cfg)
	case "coherence":
		return predictor.NewCoherence(0)
	case "always":
		return predictor.Always{}, nil
	case "never":
		return predictor.Never{}, nil
	default:
		return nil, fmt.Errorf("sim: unknown predictor %q", name)
	}
}

// PredictorRow is one (workload, predictor) accuracy result (experiment
// F7).
type PredictorRow struct {
	Workload  string
	Predictor string

	Pred           sharing.PredStats
	Accuracy       float64
	Precision      float64
	Recall         float64
	SharedBaseRate float64 // fraction of residencies that are shared (class prior)
}

// PredictorAccuracy measures fill-time prediction quality without letting
// predictions influence replacement, under the LRU base policy. All of a
// workload's predictor lanes ride one fused stream pass.
func (s *Suite) PredictorAccuracy(llcSize, llcWays int, cfg predictor.Config, names []string) ([]PredictorRow, error) {
	if len(names) == 0 {
		names = PredictorNames()
	}
	rows := make([]PredictorRow, len(s.Streams)*len(names))
	var done atomic.Int64
	err := s.par(len(s.Streams), func(w int) error {
		st := s.Streams[w]
		preds := make([]predictor.Predictor, len(names))
		for p, n := range names {
			pred, err := newPredictor(n, cfg)
			if err != nil {
				return err
			}
			preds[p] = pred
		}
		results, err := predictor.EvaluateMulti(s.context(), st.Accesses, llcSize, llcWays,
			func() cache.Policy { return policy.NewLRUPolicy() }, preds)
		if err != nil {
			return fmt.Errorf("predictor accuracy %s: %w", st.Model.Name, err)
		}
		defer s.step(&done, len(s.Streams), st.Model.Name)
		for p, res := range results {
			rows[w*len(names)+p] = PredictorRow{
				Workload:       st.Model.Name,
				Predictor:      names[p],
				Pred:           res.Pred,
				Accuracy:       res.Pred.Accuracy(),
				Precision:      res.Pred.Precision(),
				Recall:         res.Pred.Recall(),
				SharedBaseRate: stats.Ratio(res.SharedResidencies, res.Residencies),
			}
		}
		return nil
	})
	return rows, err
}

// DrivenRow is one (workload, predictor) end-to-end result (experiment
// F8): a realistic predictor steering the protection wrapper, compared
// against the bare base policy and the oracle ceiling.
type DrivenRow struct {
	Workload  string
	Predictor string

	BaseMisses   uint64
	DrivenMisses uint64
	OracleMisses uint64

	Reduction       float64 // driven vs. base
	OracleReduction float64 // oracle vs. base (the ceiling)
	Protector       core.Stats
}

// PredictorDriven runs the F8 experiment for each workload and predictor
// under the LRU base policy at the given strength. Every leg of one
// workload — the bare base, the oracle ceiling, and each driven
// predictor — is a lane of one fused stream pass.
func (s *Suite) PredictorDriven(llcSize, llcWays int, cfg predictor.Config, names []string, opts core.Options) ([]DrivenRow, error) {
	if len(names) == 0 {
		names = []string{"addr", "pc"}
	}
	shards := s.shardsFor(len(s.Streams))
	rows := make([]DrivenRow, len(s.Streams)*len(names))
	var done atomic.Int64
	err := s.par(len(s.Streams), func(w int) error {
		st := s.Streams[w]
		// Lane 0: bare LRU (the base). Lane 1: the hint-driven oracle
		// ceiling. Lanes 2..: one protector per realistic predictor.
		// Hook lanes call NewPolicy exactly once, so the factories can
		// stash each protector for its post-replay intervention stats.
		horizon := int64(oracle.HorizonFactor) * int64(llcSize/64)
		hints := oracle.SharedHints(st.Accesses, horizon)
		configs := make([]sharing.LLCConfig, 2+len(names))
		prots := make([]*core.Protector, 1+len(names))
		protected := func(k int) func() cache.Policy {
			return func() cache.Policy {
				p := core.NewProtectorOpts(policy.NewLRUPolicy(), opts)
				prots[k] = p
				return p
			}
		}
		configs[0] = sharing.LLCConfig{Size: llcSize, Ways: llcWays,
			NewPolicy: func() cache.Policy { return policy.NewLRUPolicy() }}
		configs[1] = sharing.LLCConfig{Size: llcSize, Ways: llcWays, NewPolicy: protected(0),
			Hooks: sharing.Hooks{PredictShared: func(a cache.AccessInfo) bool { return hints[a.Index] }}}
		for p, n := range names {
			pred, err := newPredictor(n, cfg)
			if err != nil {
				return err
			}
			configs[2+p] = sharing.LLCConfig{Size: llcSize, Ways: llcWays,
				NewPolicy: protected(1 + p), Hooks: predictor.HooksFor(pred)}
		}
		results, err := sharing.ReplayMulti(st.Accesses, configs,
			s.replayOpts(st, shards))
		if err != nil {
			return fmt.Errorf("predictor driven %s: %w", st.Model.Name, err)
		}
		defer s.step(&done, len(s.Streams), st.Model.Name)
		base, orc := results[0], results[1]
		for p := range names {
			row := DrivenRow{
				Workload:     st.Model.Name,
				Predictor:    names[p],
				BaseMisses:   base.Misses,
				DrivenMisses: results[2+p].Misses,
				OracleMisses: orc.Misses,
				Protector:    prots[1+p].Stats(),
			}
			if row.BaseMisses > 0 {
				row.Reduction = float64(int64(row.BaseMisses)-int64(row.DrivenMisses)) / float64(row.BaseMisses)
				row.OracleReduction = float64(int64(row.BaseMisses)-int64(row.OracleMisses)) / float64(row.BaseMisses)
			}
			rows[w*len(names)+p] = row
		}
		return nil
	})
	return rows, err
}
