package sim

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"

	"sharellc/internal/core"
	"sharellc/internal/predictor"
	"sharellc/internal/report"
)

// This file is the distributed decomposition of the experiment index.
// Every per-workload experiment is described as an ordered list of
// TableSpecs: one spec per output table, each computing typed rows over
// a (possibly single-workload) suite and rendering the merged rows into
// the final table. The local path (Experiment.Run via planRun) and the
// cluster path (internal/cluster bundles) both execute the same specs,
// which is what makes a merged distributed run byte-identical to a
// single-process run: the rows of one workload do not depend on which
// other workloads share the suite, and the render step sees the full
// row slice in canonical suite order either way.

// TableSpec is one output table of a sliceable experiment. Run computes
// the spec's typed rows ([]CharRow, []OracleRow, ...) for every workload
// of the given suite; Render turns a merged row slice back into the
// exact table the experiment index produces. All parametrization (LLC
// geometry, policy lists, protection strength) is captured when the spec
// is built by PlanFor, so coordinator and worker agree on it by
// construction.
type TableSpec struct {
	// Kind tags the row type for the wire codec (EncodeRows/DecodeRows).
	Kind string
	// Title is the rendered table title, exposed for progress labels.
	Title string
	Run   func(s *Suite) (any, error)
	// Render accepts the merged rows (nil renders an empty table).
	Render func(rows any) *report.Table
}

// newSpec builds a TableSpec from a typed runner and renderer.
func newSpec[T any](kind, title string, run func(*Suite) ([]T, error), render func(string, []T) *report.Table) TableSpec {
	return TableSpec{
		Kind:  kind,
		Title: title,
		Run:   func(s *Suite) (any, error) { return run(s) },
		Render: func(rows any) *report.Table {
			typed, _ := rows.([]T)
			return render(title, typed)
		},
	}
}

// PlanFor returns the distributed plan for one experiment id under the
// given options. ok is false for experiments that do not decompose by
// workload: the static description tables (config, suite) and the
// experiments that build their own streams (m1's multiprogrammed mixes,
// a5's per-seed sub-suites); those run as one opaque unit through
// Experiment.Run instead.
func PlanFor(id string, o ExpOptions) ([]TableSpec, bool) {
	charSpec := func(title string, size int, render func(string, []CharRow) *report.Table) TableSpec {
		return newSpec("char", title,
			func(s *Suite) ([]CharRow, error) { return s.Characterize(size, o.LLCWays) }, render)
	}
	oracleSpec := func(title string, size, ways int, names []string, prot ExpOptions) TableSpec {
		return newSpec("oracle", title,
			func(s *Suite) ([]OracleRow, error) { return s.OracleStudy(size, ways, names, prot.Prot) }, OracleTable)
	}
	switch id {
	case "f1":
		return []TableSpec{charSpec(fmt.Sprintf("F1: shared vs private LLC hits (%s LLC, LRU)", mbLabel(o.LLCSize)), o.LLCSize, CharTable)}, true
	case "f2":
		return []TableSpec{charSpec(fmt.Sprintf("F2: shared vs private LLC hits (%s LLC, LRU)", mbLabel(2*o.LLCSize)), 2*o.LLCSize, CharTable)}, true
	case "f3":
		return []TableSpec{charSpec(fmt.Sprintf("F3: sharing-degree distribution (%s LLC, LRU)", mbLabel(o.LLCSize)), o.LLCSize, DegreeTable)}, true
	case "f4":
		return []TableSpec{newSpec("policy", fmt.Sprintf("F4: policy comparison (%s LLC)", mbLabel(o.LLCSize)),
			func(s *Suite) ([]PolicyRow, error) { return s.ComparePolicies(o.LLCSize, o.LLCWays, nil) },
			PolicyTable)}, true
	case "f5":
		var specs []TableSpec
		for _, size := range []int{o.LLCSize, 2 * o.LLCSize} {
			specs = append(specs, oracleSpec(
				fmt.Sprintf("F5/F6: oracle study (%s LLC, %s)", mbLabel(size), o.Prot.Strength),
				size, o.LLCWays, o.Policies, o))
		}
		return specs, true
	case "f7":
		return []TableSpec{newSpec("predictor", fmt.Sprintf("F7: fill-time sharing predictor accuracy (%s LLC, LRU)", mbLabel(o.LLCSize)),
			func(s *Suite) ([]PredictorRow, error) {
				return s.PredictorAccuracy(o.LLCSize, o.LLCWays, predictor.DefaultConfig(), nil)
			},
			PredictorTable)}, true
	case "f8":
		return []TableSpec{newSpec("driven", fmt.Sprintf("F8: predictor-driven replacement (%s LLC, LRU base)", mbLabel(o.LLCSize)),
			func(s *Suite) ([]DrivenRow, error) {
				return s.PredictorDriven(o.LLCSize, o.LLCWays, predictor.DefaultConfig(), nil, o.Prot)
			},
			DrivenTable)}, true
	case "f9":
		return []TableSpec{newSpec("phase", "F9: sharing-phase stability (16 windows)",
			func(s *Suite) ([]PhaseRow, error) { return s.SharingPhases(0) }, PhaseTable)}, true
	case "c1":
		return []TableSpec{newSpec("coherence", "C1: coherence-protocol traffic (MESI directory)",
			func(s *Suite) ([]CoherenceRow, error) { return s.CoherenceCharacterize() }, CoherenceTable)}, true
	case "c2":
		return []TableSpec{newSpec("reuse", "C2: reuse-distance distribution by sharing class",
			func(s *Suite) ([]ReuseRow, error) { return s.ReuseDistances(o.LLCSize) }, ReuseTable)}, true
	case "a1":
		var specs []TableSpec
		for _, st := range []core.Strength{core.InsertOnly, core.Full} {
			opts := o
			opts.Prot.Strength = st
			specs = append(specs, oracleSpec(
				fmt.Sprintf("A1: oracle with %s protection (%s LLC)", st, mbLabel(o.LLCSize)),
				o.LLCSize, o.LLCWays, []string{"lru", "srrip"}, opts))
		}
		return specs, true
	case "a2":
		var specs []TableSpec
		for _, bits := range []int{8, 11, 14, 17} {
			cfg := predictor.DefaultConfig()
			cfg.TableBits = bits
			specs = append(specs, newSpec("predictor",
				fmt.Sprintf("A2: predictor accuracy with 2^%d-entry tables (%s LLC)", bits, mbLabel(o.LLCSize)),
				func(s *Suite) ([]PredictorRow, error) {
					return s.PredictorAccuracy(o.LLCSize, o.LLCWays, cfg, []string{"addr", "pc"})
				},
				PredictorTable))
		}
		return specs, true
	case "a3":
		var specs []TableSpec
		for _, w := range []int{8, 16, 32} {
			specs = append(specs, oracleSpec(
				fmt.Sprintf("A3: oracle gain at %d-way associativity (%s LLC)", w, mbLabel(o.LLCSize)),
				o.LLCSize, w, []string{"lru"}, o))
		}
		return specs, true
	case "a4":
		return []TableSpec{newSpec("horizon", fmt.Sprintf("A4: oracle gain vs sharing horizon (%s LLC, LRU)", mbLabel(o.LLCSize)),
			func(s *Suite) ([]HorizonRow, error) { return s.OracleHorizonSweep(o.LLCSize, o.LLCWays, nil, o.Prot) },
			HorizonTable)}, true
	}
	return nil, false
}

// planRun adapts an experiment's plan back into the Experiment.Run
// signature: every spec runs over the whole suite and renders directly.
// Keeping the index entries on this path guarantees the local and
// distributed executions can never drift — there is only one definition
// of each table.
func planRun(id string) func(s *Suite, o ExpOptions) ([]*report.Table, error) {
	return func(s *Suite, o ExpOptions) ([]*report.Table, error) {
		specs, ok := PlanFor(id, o)
		if !ok {
			return nil, fmt.Errorf("sim: experiment %q has no table plan", id)
		}
		out := make([]*report.Table, 0, len(specs))
		for _, sp := range specs {
			rows, err := sp.Run(s)
			if err != nil {
				return nil, err
			}
			out = append(out, sp.Render(rows))
		}
		return out, nil
	}
}

// BareSuite returns a suite carrying cfg and ctx but no prepared
// streams. It exists for the whole-experiment cluster bundles whose
// runners read only the configuration — m1 builds its own mix streams
// and a5 its own per-seed sub-suites — so a worker does not pay a full
// suite preparation for rows that would never touch it. Running a
// stream-consuming experiment on a bare suite is a programming error.
func BareSuite(ctx context.Context, cfg Config) *Suite {
	return &Suite{Config: cfg, ctx: ctx}
}

// rowCodec decodes and merges one row kind for the cluster wire format.
type rowCodec struct {
	decode func(data []byte) (any, error)
	merge  func(dst, src any) any
}

var rowCodecs = map[string]rowCodec{}

func registerRows[T any](kind string) {
	rowCodecs[kind] = rowCodec{
		decode: func(data []byte) (any, error) {
			var v []T
			if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
				return nil, fmt.Errorf("sim: decoding %s rows: %w", kind, err)
			}
			return v, nil
		},
		merge: func(dst, src any) any {
			if dst == nil {
				return src
			}
			return append(dst.([]T), src.([]T)...)
		},
	}
}

func init() {
	registerRows[CharRow]("char")
	registerRows[PolicyRow]("policy")
	registerRows[OracleRow]("oracle")
	registerRows[PredictorRow]("predictor")
	registerRows[DrivenRow]("driven")
	registerRows[ReuseRow]("reuse")
	registerRows[CoherenceRow]("coherence")
	registerRows[PhaseRow]("phase")
	registerRows[HorizonRow]("horizon")
}

// EncodeRows serializes one spec's typed row slice for the cluster wire.
// gob round-trips every float64 bit pattern (including NaN and ±Inf,
// which JSON would reject), so a merged render is bit-identical to a
// local one.
func EncodeRows(rows any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rows); err != nil {
		return nil, fmt.Errorf("sim: encoding rows: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRows reverses EncodeRows for the given row kind.
func DecodeRows(kind string, data []byte) (any, error) {
	c, ok := rowCodecs[kind]
	if !ok {
		return nil, fmt.Errorf("sim: unknown row kind %q", kind)
	}
	return c.decode(data)
}

// MergeRows appends src onto dst (both slices of the kind's row type;
// dst may be nil). Callers append workload by workload in canonical
// suite order, which reconstructs exactly the row order a whole-suite
// run produces.
func MergeRows(kind string, dst, src any) (any, error) {
	c, ok := rowCodecs[kind]
	if !ok {
		return nil, fmt.Errorf("sim: unknown row kind %q", kind)
	}
	return c.merge(dst, src), nil
}
