package sim

import (
	"testing"

	"sharellc/internal/core"
)

func TestLatencyCycles(t *testing.T) {
	st := &Stream{L1Hits: 10, L2Hits: 5}
	l := Latency{L1: 1, L2: 2, LLC: 3, Mem: 4}
	if got := l.Cycles(st, 7, 2); got != 10*1+5*2+7*3+2*4 {
		t.Errorf("Cycles = %d", got)
	}
}

func TestAMATSpeedupDirection(t *testing.T) {
	st := &Stream{L1Hits: 1000, L2Hits: 100}
	l := DefaultLatency()
	// Converting 50 misses into hits must speed things up.
	s := l.AMATSpeedup(st, 100, 100, 150, 50)
	if s <= 1 {
		t.Errorf("speedup = %v, want > 1", s)
	}
	// Identity: no change → exactly 1.
	if got := l.AMATSpeedup(st, 100, 100, 100, 100); got != 1 {
		t.Errorf("identity speedup = %v", got)
	}
	// Degenerate zero-cycle run guards against division by zero.
	empty := &Stream{}
	if got := (Latency{}).AMATSpeedup(empty, 0, 0, 0, 0); got != 0 {
		t.Errorf("zero-cycle speedup = %v", got)
	}
}

func TestOracleStudyReportsAMAT(t *testing.T) {
	s := testSuite(t)
	rows, err := s.OracleStudy(tSize, tWays, []string{"lru"}, core.Options{Strength: core.Full})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.AMATSpeedup <= 0 {
			t.Errorf("%s: AMAT speedup %v", r.Workload, r.AMATSpeedup)
		}
		// Positive miss reduction implies speedup >= 1 and vice versa.
		if r.Reduction > 0 && r.AMATSpeedup < 1 {
			t.Errorf("%s: reduction %v but speedup %v", r.Workload, r.Reduction, r.AMATSpeedup)
		}
		if r.Reduction < 0 && r.AMATSpeedup > 1 {
			t.Errorf("%s: regression %v but speedup %v", r.Workload, r.Reduction, r.AMATSpeedup)
		}
	}
}
