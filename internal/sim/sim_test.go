package sim

import (
	"strings"
	"testing"

	"sharellc/internal/cache"
	"sharellc/internal/core"
	"sharellc/internal/policy"
	"sharellc/internal/predictor"
	"sharellc/internal/sharing"
	"sharellc/internal/trace"
	"sharellc/internal/workloads"
)

// testConfig returns a heavily scaled-down setup so the whole experiment
// pipeline runs in well under a second: a small machine and 3 workloads at
// 2% scale.
func testConfig(t *testing.T) Config {
	t.Helper()
	models := make([]workloads.Model, 0, 3)
	for _, name := range []string{"canneal", "streamcluster", "swaptions"} {
		m, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	return Config{
		Machine: cache.Config{
			Cores:  8,
			L1Size: 2 * cache.KB, L1Ways: 2,
			L2Size: 8 * cache.KB, L2Ways: 4,
			LLCSize: 64 * cache.KB, LLCWays: 8,
		},
		Seed:   1,
		Scale:  0.02,
		Models: models,
	}
}

const (
	tSize = 64 * cache.KB
	tWays = 8
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSuiteBuildsStreams(t *testing.T) {
	s := testSuite(t)
	if len(s.Streams) != 3 {
		t.Fatalf("built %d streams, want 3", len(s.Streams))
	}
	for _, st := range s.Streams {
		if len(st.Accesses) == 0 {
			t.Errorf("%s: empty LLC stream", st.Model.Name)
		}
		if st.TraceLen != uint64(st.Model.TotalAccesses()) {
			t.Errorf("%s: trace length %d, want %d", st.Model.Name, st.TraceLen, st.Model.TotalAccesses())
		}
		// The private hierarchy must filter substantially: LLC stream
		// is a strict subset of raw references.
		if uint64(len(st.Accesses)) >= st.TraceLen {
			t.Errorf("%s: hierarchy filtered nothing", st.Model.Name)
		}
		if st.LLCAPKI() <= 0 {
			t.Errorf("%s: LLCAPKI = %v", st.Model.Name, st.LLCAPKI())
		}
		// Streams must be NextUse-annotated for OPT.
		annotated := false
		for _, a := range st.Accesses {
			if a.NextUse != cache.NoNextUse {
				annotated = true
				break
			}
		}
		if !annotated {
			t.Errorf("%s: stream not next-use annotated", st.Model.Name)
		}
	}
}

func TestNewSuiteValidation(t *testing.T) {
	cfg := testConfig(t)
	cfg.Scale = 0
	if _, err := NewSuite(cfg); err == nil {
		t.Error("zero scale accepted")
	}
	cfg = testConfig(t)
	cfg.Machine.Cores = 4 // fewer cores than workload threads
	if _, err := NewSuite(cfg); err == nil {
		t.Error("thread/core mismatch accepted")
	}
}

func TestSuiteStreamLookup(t *testing.T) {
	s := testSuite(t)
	if _, err := s.Stream("canneal"); err != nil {
		t.Error(err)
	}
	if _, err := s.Stream("nonesuch"); err == nil {
		t.Error("unknown stream name accepted")
	}
}

func TestCharacterize(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Characterize(tSize, tWays)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]CharRow{}
	for _, r := range rows {
		byName[r.Workload] = r
		if r.Hits+r.Misses != r.Accesses {
			t.Errorf("%s: hit/miss mismatch", r.Workload)
		}
		if r.SharedHitFrac < 0 || r.SharedHitFrac > 1 {
			t.Errorf("%s: shared hit frac %v", r.Workload, r.SharedHitFrac)
		}
	}
	// Sharing-heavy canneal must show far more shared hits than
	// private-dominated swaptions.
	if byName["canneal"].SharedHitFrac <= byName["swaptions"].SharedHitFrac {
		t.Errorf("canneal shared-hit %.3f <= swaptions %.3f",
			byName["canneal"].SharedHitFrac, byName["swaptions"].SharedHitFrac)
	}
}

func TestComparePolicies(t *testing.T) {
	s := testSuite(t)
	rows, err := s.ComparePolicies(tSize, tWays, []string{"lru", "srrip", "opt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	misses := map[string]map[string]uint64{}
	for _, r := range rows {
		if misses[r.Workload] == nil {
			misses[r.Workload] = map[string]uint64{}
		}
		misses[r.Workload][r.Policy] = r.Misses
		if r.Policy == "lru" && r.MissesVsLRU != 1.0 {
			t.Errorf("%s: LRU normalized to %v", r.Workload, r.MissesVsLRU)
		}
	}
	for w, m := range misses {
		if m["opt"] > m["lru"] || m["opt"] > m["srrip"] {
			t.Errorf("%s: OPT (%d) not the minimum (lru %d, srrip %d)", w, m["opt"], m["lru"], m["srrip"])
		}
	}
}

func TestComparePoliciesUnknownName(t *testing.T) {
	s := testSuite(t)
	if _, err := s.ComparePolicies(tSize, tWays, []string{"bogus"}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestOracleStudy(t *testing.T) {
	s := testSuite(t)
	rows, err := s.OracleStudy(tSize, tWays, []string{"lru"}, core.Options{Strength: core.Full})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.BaseMisses == 0 {
			t.Errorf("%s: no base misses", r.Workload)
		}
	}
	// The mean across the suite subset should be non-negative: oracle
	// protection should help or be neutral overall.
	if m := MeanReduction(rows, "lru"); m < -0.02 {
		t.Errorf("mean oracle reduction %.4f is materially negative", m)
	}
}

func TestReuseDistances(t *testing.T) {
	s := testSuite(t)
	rows, err := s.ReuseDistances(tSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.SharedTotal+r.PrivateTotal == 0 {
			t.Errorf("%s: no accesses classified", r.Workload)
		}
		sum := 0.0
		for b := range r.PrivateShares {
			sum += r.PrivateShares[b]
		}
		if r.PrivateTotal > 0 && (sum < 0.999 || sum > 1.001) {
			t.Errorf("%s: private shares sum to %v", r.Workload, sum)
		}
	}
	var b strings.Builder
	if err := ReuseTable("c2", rows).Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cold") {
		t.Error("reuse table missing cold bucket")
	}
}

func TestCoherenceCharacterize(t *testing.T) {
	s := testSuite(t)
	rows, err := s.CoherenceCharacterize()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]CoherenceRow{}
	for _, r := range rows {
		byName[r.Workload] = r
		if r.Refs == 0 {
			t.Errorf("%s: no references", r.Workload)
		}
	}
	// Sharing-heavy canneal must show far more coherence traffic than
	// private swaptions.
	if byName["canneal"].C2CTransfersPKR <= byName["swaptions"].C2CTransfersPKR {
		t.Errorf("canneal c2c %.3f <= swaptions %.3f",
			byName["canneal"].C2CTransfersPKR, byName["swaptions"].C2CTransfersPKR)
	}
	var b strings.Builder
	if err := CoherenceTable("c1", rows).Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "MESI") {
		t.Error("coherence table note missing")
	}
}

func TestSharingPhases(t *testing.T) {
	s := testSuite(t)
	rows, err := s.SharingPhases(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]PhaseRow{}
	for _, r := range rows {
		byName[r.Workload] = r
		if r.FlipRate < 0 || r.FlipRate > 1 {
			t.Errorf("%s: flip rate %v", r.Workload, r.FlipRate)
		}
		if r.Windows != 16 {
			t.Errorf("%s: windows = %d", r.Workload, r.Windows)
		}
	}
	// Sharing-phased canneal must be less stable than private swaptions.
	if byName["canneal"].MixedFrac <= byName["swaptions"].MixedFrac {
		t.Errorf("canneal mixed %.3f <= swaptions %.3f",
			byName["canneal"].MixedFrac, byName["swaptions"].MixedFrac)
	}
	var b strings.Builder
	if err := PhaseTable("f9", rows).Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "flip rate") {
		t.Error("phase table note missing")
	}
}

func TestOracleHorizonSweep(t *testing.T) {
	s := testSuite(t)
	rows, err := s.OracleHorizonSweep(tSize, tWays, []int{1, 4}, core.Options{Strength: core.Full})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Factor != 1 && r.Factor != 4 {
			t.Errorf("unexpected factor %d", r.Factor)
		}
	}
	if _, err := s.OracleHorizonSweep(tSize, tWays, []int{0}, core.Options{}); err == nil {
		t.Error("factor 0 accepted")
	}
	var b strings.Builder
	if err := HorizonTable("a4", rows).Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "mean reduction by horizon") {
		t.Error("horizon table note missing")
	}
}

func TestPredictorAccuracy(t *testing.T) {
	s := testSuite(t)
	rows, err := s.PredictorAccuracy(tSize, tWays, predictor.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*len(PredictorNames()) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Pred.Total() == 0 {
			t.Errorf("%s/%s: no classified residencies", r.Workload, r.Predictor)
		}
		switch r.Predictor {
		case "always":
			if r.Recall != 1 && r.Pred.TP+r.Pred.FN > 0 {
				t.Errorf("always-predictor recall = %v", r.Recall)
			}
		case "never":
			if r.Pred.TP != 0 || r.Pred.FP != 0 {
				t.Errorf("never-predictor made positive predictions")
			}
		}
	}
}

func TestPredictorDriven(t *testing.T) {
	s := testSuite(t)
	rows, err := s.PredictorDriven(tSize, tWays, predictor.DefaultConfig(), []string{"addr"}, core.Options{Strength: core.Full})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.BaseMisses == 0 || r.DrivenMisses == 0 {
			t.Errorf("%s: zero misses", r.Workload)
		}
	}
}

func TestTablesRender(t *testing.T) {
	s := testSuite(t)
	char, err := s.Characterize(tSize, tWays)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := s.ComparePolicies(tSize, tWays, []string{"lru", "opt"})
	if err != nil {
		t.Fatal(err)
	}
	orc, err := s.OracleStudy(tSize, tWays, []string{"lru"}, core.Options{Strength: core.Full})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := s.PredictorAccuracy(tSize, tWays, predictor.DefaultConfig(), []string{"addr"})
	if err != nil {
		t.Fatal(err)
	}
	drv, err := s.PredictorDriven(tSize, tWays, predictor.DefaultConfig(), []string{"addr"}, core.Options{Strength: core.Full})
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range []interface {
		Render(w interface {
			Write(p []byte) (int, error)
		}) error
	}{} {
		_ = tb
	}
	var b strings.Builder
	for _, err := range []error{
		CharTable("f1", char).Render(&b),
		DegreeTable("f3", char).Render(&b),
		PolicyTable("f4", pol).Render(&b),
		OracleTable("f5", orc).Render(&b),
		PredictorTable("f7", acc).Render(&b),
		DrivenTable("f8", drv).Render(&b),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	out := b.String()
	for _, want := range []string{"f1", "f3", "f4", "f5", "f7", "f8", "canneal", "mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q", want)
		}
	}
}

func TestParallelHelper(t *testing.T) {
	n := 100
	out := make([]int, n)
	if err := parallel(n, func(i int) error { out[i] = i + 1; return nil }); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestParallelPropagatesError(t *testing.T) {
	err := parallel(50, func(i int) error {
		if i == 20 {
			return errTest
		}
		return nil
	})
	if err != errTest {
		t.Errorf("got %v, want errTest", err)
	}
	if err := parallel(0, func(int) error { return nil }); err != nil {
		t.Errorf("n=0 returned %v", err)
	}
}

var errTest = trace.ErrBadMagic // reuse an existing sentinel as a distinct error value

func TestSuiteDeterministicAcrossRuns(t *testing.T) {
	a := testSuite(t)
	b := testSuite(t)
	for i := range a.Streams {
		if len(a.Streams[i].Accesses) != len(b.Streams[i].Accesses) {
			t.Fatalf("stream %d lengths differ", i)
		}
		for j := range a.Streams[i].Accesses {
			if a.Streams[i].Accesses[j] != b.Streams[i].Accesses[j] {
				t.Fatalf("stream %d diverged at %d", i, j)
			}
		}
	}
}

func TestMultiprogrammedOracleIsNull(t *testing.T) {
	cfg := testConfig(t)
	var mix []workloads.Model
	for _, name := range []string{"swaptions", "blackscholes", "water", "freqmine"} {
		m, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		mix = append(mix, m.Scaled(0.02))
	}
	rows, err := MultiprogrammedOracle([][]workloads.Model{mix}, cfg.Machine, 1, tSize, tWays, core.Options{Strength: core.Full})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.BaseSharedHitFrac != 0 {
		t.Errorf("multiprogrammed mix has shared hits: %v", r.BaseSharedHitFrac)
	}
	if r.Reduction != 0 {
		t.Errorf("oracle changed a shareless mix: reduction %v", r.Reduction)
	}
	if r.Protector.ProtectedFills != 0 {
		t.Errorf("oracle protected %d fills with no sharing", r.Protector.ProtectedFills)
	}
}

func TestBuildMixStreamValidation(t *testing.T) {
	cfg := testConfig(t)
	m, err := workloads.ByName("water")
	if err != nil {
		t.Fatal(err)
	}
	m = m.Scaled(0.02)
	tooMany := make([]workloads.Model, cfg.Machine.Cores+1)
	for i := range tooMany {
		tooMany[i] = m
	}
	if _, err := BuildMixStream(tooMany, cfg.Machine, 1); err == nil {
		t.Error("mix larger than core count accepted")
	}
	st, err := BuildMixStream([]workloads.Model{m, m}, cfg.Machine, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Model.Threads != 2 || len(st.Accesses) == 0 {
		t.Errorf("mix stream malformed: threads=%d len=%d", st.Model.Threads, len(st.Accesses))
	}
}

func TestDefaultConfigShape(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Machine.Cores != 8 || cfg.Seed != 1 || cfg.Scale != 1 || len(cfg.Models) != 0 {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
}

func TestLLCAPKIZero(t *testing.T) {
	var st Stream
	if st.LLCAPKI() != 0 {
		t.Error("empty stream APKI != 0")
	}
}

func TestParallelSingleWorkerPath(t *testing.T) {
	// n=1 forces the serial path regardless of GOMAXPROCS.
	ran := false
	if err := parallel(1, func(int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("serial path did not run")
	}
	wantErr := trace.ErrBadMagic
	if err := parallel(1, func(int) error { return wantErr }); err != wantErr {
		t.Errorf("serial path error = %v", err)
	}
}

// TestDecouplingApproximation quantifies DESIGN.md key decision 1: the
// experiment pipeline replays a fixed LLC stream (no inclusive
// back-invalidation feedback), while cache.System models full inclusion.
// The two must agree on LLC misses within a loose band — the approximation
// trades a small distortion for an identical stream across policies.
func TestDecouplingApproximation(t *testing.T) {
	cfg := testConfig(t)
	m := cfg.Models[0].Scaled(cfg.Scale)
	r, err := m.Generate(cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := cache.NewSystem(cfg.Machine, cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	for {
		a, ok := r.Next()
		if !ok {
			break
		}
		if _, err := sys.Access(a); err != nil {
			t.Fatal(err)
		}
	}
	_, sysMisses := sys.LLCStats()

	st, err := BuildStream(m, cfg.Machine, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sharing.Replay(st.Accesses, cfg.Machine.LLCSize, cfg.Machine.LLCWays,
		policy.NewLRUPolicy(), sharing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := float64(sysMisses)*0.7, float64(sysMisses)*1.3
	if got := float64(res.Misses); got < lo || got > hi {
		t.Errorf("decoupled misses %d vs inclusive-system misses %d: outside ±30%%", res.Misses, sysMisses)
	}
}
