package sim

import (
	"fmt"
	"sort"
	"strings"

	"sharellc/internal/cache"
	"sharellc/internal/core"
	"sharellc/internal/policy"
	"sharellc/internal/predictor"
	"sharellc/internal/report"
	"sharellc/internal/stats"
	"sharellc/internal/workloads"
)

// This file is the experiment index: the single catalogue of every
// experiment id the repository serves, shared by the sharesim CLI and
// the sharesimd daemon so the two can never drift apart. Each entry
// turns a prepared Suite plus per-run knobs into the experiment's
// report tables.

// ExpOptions carries the per-run knobs shared by every experiment.
type ExpOptions struct {
	LLCSize  int // LLC capacity in bytes (f2/f5 derive the doubled size from it)
	LLCWays  int
	Policies []string     // f5's base-policy list (nil = the CLI default set)
	Prot     core.Options // protection options for the oracle/predictor families
}

// DefaultExpOptions is the paper's setup: 4 MB, 16-way, full protection.
func DefaultExpOptions() ExpOptions {
	return ExpOptions{
		LLCSize: 4 * cache.MB,
		LLCWays: 16,
		Prot:    core.Options{Strength: core.Full},
	}
}

// Experiment is one entry of the experiment index.
type Experiment struct {
	ID    string
	Title string // short human description for catalogues (-exp listings, /v1/experiments)
	// NeedsSuite is false for the static description tables (config,
	// suite), whose Run ignores the *Suite argument entirely.
	NeedsSuite bool
	Run        func(s *Suite, o ExpOptions) ([]*report.Table, error)
}

// Experiments returns the full index in presentation order (the order
// `-exp all` runs them).
func Experiments() []Experiment {
	return []Experiment{
		{ID: "config", Title: "T1: the simulated machine configuration", Run: runConfig},
		{ID: "suite", Title: "T2: the workload suite and its sharing parameters", Run: runSuiteTable},
		{ID: "f1", Title: "shared vs. private LLC hit volume (default-size LLC)", NeedsSuite: true, Run: runF1},
		{ID: "f2", Title: "shared vs. private LLC hit volume (doubled LLC)", NeedsSuite: true, Run: runF2},
		{ID: "f3", Title: "sharing-degree distribution", NeedsSuite: true, Run: runF3},
		{ID: "f4", Title: "policy comparison vs. LRU and Belady OPT", NeedsSuite: true, Run: runF4},
		{ID: "f5", Title: "oracle study at both LLC sizes (per-workload rows = F6)", NeedsSuite: true, Run: runF5},
		{ID: "f7", Title: "fill-time predictor accuracy", NeedsSuite: true, Run: runF7},
		{ID: "f8", Title: "predictor-driven replacement vs. the oracle ceiling", NeedsSuite: true, Run: runF8},
		{ID: "f9", Title: "sharing-phase stability (why the predictors fail)", NeedsSuite: true, Run: runF9},
		{ID: "c1", Title: "coherence-protocol traffic characterization (extension)", NeedsSuite: true, Run: runC1},
		{ID: "c2", Title: "reuse-distance distributions by sharing class (extension)", NeedsSuite: true, Run: runC2},
		{ID: "m1", Title: "oracle on multiprogrammed mixes (motivating contrast)", NeedsSuite: true, Run: runM1},
		{ID: "a1", Title: "ablation: protection strength (insert-only vs. full)", NeedsSuite: true, Run: runA1},
		{ID: "a2", Title: "ablation: predictor table-size sweep", NeedsSuite: true, Run: runA2},
		{ID: "a3", Title: "ablation: LLC associativity sweep", NeedsSuite: true, Run: runA3},
		{ID: "a4", Title: "ablation: oracle sharing-horizon sweep", NeedsSuite: true, Run: runA4},
		{ID: "a5", Title: "ablation: seed robustness of the oracle gain", NeedsSuite: true, Run: runA5},
	}
}

// ExperimentIDs lists the valid ids in index order.
func ExperimentIDs() []string {
	idx := Experiments()
	ids := make([]string, len(idx))
	for i, e := range idx {
		ids[i] = e.ID
	}
	return ids
}

// ExperimentByID resolves one id (case-insensitive). The error message
// enumerates every valid id so CLI and API users get a usable usage hint.
func ExperimentByID(id string) (Experiment, error) {
	id = strings.ToLower(id)
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("unknown experiment %q (valid ids: %s)",
		id, strings.Join(ExperimentIDs(), ", "))
}

// ModelsByName resolves a workload-name list into suite models; nil/empty
// means "full suite" (returned as nil, the Config convention). Unknown
// names fail with the full list of valid names in the message.
func ModelsByName(names []string) ([]workloads.Model, error) {
	if len(names) == 0 {
		return nil, nil
	}
	var out []workloads.Model
	for _, n := range names {
		m, err := workloads.ByName(strings.TrimSpace(n))
		if err != nil {
			var valid []string
			for _, wm := range workloads.Suite() {
				valid = append(valid, wm.Name)
			}
			sort.Strings(valid)
			return nil, fmt.Errorf("%w (valid workloads: %s)", err, strings.Join(valid, ", "))
		}
		out = append(out, m)
	}
	return out, nil
}

func mbLabel(size int) string {
	return fmt.Sprintf("%gMB", float64(size)/float64(cache.MB))
}

func one(t *report.Table, err error) ([]*report.Table, error) {
	if err != nil {
		return nil, err
	}
	return []*report.Table{t}, nil
}

func runConfig(_ *Suite, _ ExpOptions) ([]*report.Table, error) {
	t := report.NewTable("T1: simulated machine configuration", "component", "value")
	c := cache.DefaultConfig()
	t.MustRow("cores", fmt.Sprintf("%d", c.Cores))
	t.MustRow("L1D (per core)", fmt.Sprintf("%dKB, %d-way, 64B blocks, LRU", c.L1Size/cache.KB, c.L1Ways))
	t.MustRow("L2 (per core)", fmt.Sprintf("%dKB, %d-way, 64B blocks, LRU", c.L2Size/cache.KB, c.L2Ways))
	t.MustRow("LLC (shared)", fmt.Sprintf("4MB and 8MB, %d-way, 64B blocks, policy under study", c.LLCWays))
	t.MustRow("policies", strings.Join(policy.Names(1), ", "))
	t.Note = "functional (miss-count) model; inclusive LLC available via cache.System"
	return []*report.Table{t}, nil
}

func runSuiteTable(_ *Suite, _ ExpOptions) ([]*report.Table, error) {
	t := report.NewTable("T2: workload suite",
		"workload", "suite", "threads", "refs", "footprint", "sh-RO%", "sh-RW%", "wr%", "description")
	for _, m := range workloads.Suite() {
		t.MustRow(
			m.Name, m.Suite, fmt.Sprintf("%d", m.Threads),
			fmt.Sprintf("%.1fM", float64(m.TotalAccesses())/1e6),
			fmt.Sprintf("%.1fMB", float64(m.FootprintBlocks())*64/float64(cache.MB)),
			stats.Pct(m.FracSharedRO), stats.Pct(m.FracSharedRW), stats.Pct(m.WriteFrac),
			m.Description)
	}
	return []*report.Table{t}, nil
}

func runF1(s *Suite, o ExpOptions) ([]*report.Table, error) {
	rows, err := s.Characterize(o.LLCSize, o.LLCWays)
	if err != nil {
		return nil, err
	}
	return one(CharTable(fmt.Sprintf("F1: shared vs private LLC hits (%s LLC, LRU)", mbLabel(o.LLCSize)), rows), nil)
}

func runF2(s *Suite, o ExpOptions) ([]*report.Table, error) {
	rows, err := s.Characterize(2*o.LLCSize, o.LLCWays)
	if err != nil {
		return nil, err
	}
	return one(CharTable(fmt.Sprintf("F2: shared vs private LLC hits (%s LLC, LRU)", mbLabel(2*o.LLCSize)), rows), nil)
}

func runF3(s *Suite, o ExpOptions) ([]*report.Table, error) {
	rows, err := s.Characterize(o.LLCSize, o.LLCWays)
	if err != nil {
		return nil, err
	}
	return one(DegreeTable(fmt.Sprintf("F3: sharing-degree distribution (%s LLC, LRU)", mbLabel(o.LLCSize)), rows), nil)
}

func runF4(s *Suite, o ExpOptions) ([]*report.Table, error) {
	rows, err := s.ComparePolicies(o.LLCSize, o.LLCWays, nil)
	if err != nil {
		return nil, err
	}
	return one(PolicyTable(fmt.Sprintf("F4: policy comparison (%s LLC)", mbLabel(o.LLCSize)), rows), nil)
}

func runF5(s *Suite, o ExpOptions) ([]*report.Table, error) {
	var out []*report.Table
	for _, size := range []int{o.LLCSize, 2 * o.LLCSize} {
		rows, err := s.OracleStudy(size, o.LLCWays, o.Policies, o.Prot)
		if err != nil {
			return nil, err
		}
		out = append(out, OracleTable(fmt.Sprintf("F5/F6: oracle study (%s LLC, %s)", mbLabel(size), o.Prot.Strength), rows))
	}
	return out, nil
}

func runF7(s *Suite, o ExpOptions) ([]*report.Table, error) {
	rows, err := s.PredictorAccuracy(o.LLCSize, o.LLCWays, predictor.DefaultConfig(), nil)
	if err != nil {
		return nil, err
	}
	return one(PredictorTable(fmt.Sprintf("F7: fill-time sharing predictor accuracy (%s LLC, LRU)", mbLabel(o.LLCSize)), rows), nil)
}

func runF8(s *Suite, o ExpOptions) ([]*report.Table, error) {
	rows, err := s.PredictorDriven(o.LLCSize, o.LLCWays, predictor.DefaultConfig(), nil, o.Prot)
	if err != nil {
		return nil, err
	}
	return one(DrivenTable(fmt.Sprintf("F8: predictor-driven replacement (%s LLC, LRU base)", mbLabel(o.LLCSize)), rows), nil)
}

func runF9(s *Suite, _ ExpOptions) ([]*report.Table, error) {
	rows, err := s.SharingPhases(0)
	if err != nil {
		return nil, err
	}
	return one(PhaseTable("F9: sharing-phase stability (16 windows)", rows), nil)
}

func runC1(s *Suite, _ ExpOptions) ([]*report.Table, error) {
	rows, err := s.CoherenceCharacterize()
	if err != nil {
		return nil, err
	}
	return one(CoherenceTable("C1: coherence-protocol traffic (MESI directory)", rows), nil)
}

func runC2(s *Suite, o ExpOptions) ([]*report.Table, error) {
	rows, err := s.ReuseDistances(o.LLCSize)
	if err != nil {
		return nil, err
	}
	return one(ReuseTable("C2: reuse-distance distribution by sharing class", rows), nil)
}

func runM1(s *Suite, o ExpOptions) ([]*report.Table, error) {
	// Three canonical 8-program multiprogrammed mixes drawn from the
	// suite, scaled and seeded like the suite itself.
	mixNames := [][]string{
		{"swaptions", "blackscholes", "freqmine", "water", "equake", "lu", "bodytrack", "facesim"},
		{"canneal", "swaptions", "ocean", "blackscholes", "fft", "water", "dedup", "freqmine"},
		{"swaptions", "swaptions", "swaptions", "swaptions", "swaptions", "swaptions", "swaptions", "swaptions"},
	}
	var mixes [][]workloads.Model
	for _, names := range mixNames {
		ms, err := ModelsByName(names)
		if err != nil {
			return nil, err
		}
		for i := range ms {
			if s.Config.Scale != 1 {
				ms[i] = ms[i].Scaled(s.Config.Scale)
			}
		}
		mixes = append(mixes, ms)
	}
	rows, err := MultiprogrammedOracleCtx(s.context(), mixes, s.Config.Machine, s.Config.Seed, o.LLCSize, o.LLCWays, o.Prot)
	if err != nil {
		return nil, err
	}
	return one(OracleTable(fmt.Sprintf("M1: oracle on multiprogrammed mixes (%s LLC)", mbLabel(o.LLCSize)), rows), nil)
}

func runA1(s *Suite, o ExpOptions) ([]*report.Table, error) {
	var out []*report.Table
	for _, st := range []core.Strength{core.InsertOnly, core.Full} {
		opts := o.Prot
		opts.Strength = st
		rows, err := s.OracleStudy(o.LLCSize, o.LLCWays, []string{"lru", "srrip"}, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, OracleTable(fmt.Sprintf("A1: oracle with %s protection (%s LLC)", st, mbLabel(o.LLCSize)), rows))
	}
	return out, nil
}

func runA2(s *Suite, o ExpOptions) ([]*report.Table, error) {
	var out []*report.Table
	for _, bits := range []int{8, 11, 14, 17} {
		cfg := predictor.DefaultConfig()
		cfg.TableBits = bits
		rows, err := s.PredictorAccuracy(o.LLCSize, o.LLCWays, cfg, []string{"addr", "pc"})
		if err != nil {
			return nil, err
		}
		out = append(out, PredictorTable(fmt.Sprintf("A2: predictor accuracy with 2^%d-entry tables (%s LLC)", bits, mbLabel(o.LLCSize)), rows))
	}
	return out, nil
}

func runA3(s *Suite, o ExpOptions) ([]*report.Table, error) {
	var out []*report.Table
	for _, w := range []int{8, 16, 32} {
		rows, err := s.OracleStudy(o.LLCSize, w, []string{"lru"}, o.Prot)
		if err != nil {
			return nil, err
		}
		out = append(out, OracleTable(fmt.Sprintf("A3: oracle gain at %d-way associativity (%s LLC)", w, mbLabel(o.LLCSize)), rows))
	}
	return out, nil
}

func runA4(s *Suite, o ExpOptions) ([]*report.Table, error) {
	rows, err := s.OracleHorizonSweep(o.LLCSize, o.LLCWays, nil, o.Prot)
	if err != nil {
		return nil, err
	}
	return one(HorizonTable(fmt.Sprintf("A4: oracle gain vs sharing horizon (%s LLC, LRU)", mbLabel(o.LLCSize)), rows), nil)
}

func runA5(s *Suite, o ExpOptions) ([]*report.Table, error) {
	// Seed robustness: rebuild a suite subset under several seeds and
	// compare the F5 means. Uses its own suites; the prepared streams
	// are not reused.
	t := report.NewTable(fmt.Sprintf("A5: oracle gain across seeds (%s LLC, LRU)", mbLabel(o.LLCSize)),
		"seed", "mean-reduction", "workloads")
	sub, err := ModelsByName([]string{"canneal", "dedup", "barnes", "ocean", "streamcluster", "swaptions"})
	if err != nil {
		return nil, err
	}
	for _, seed := range []uint64{1, 2, 3} {
		cfg := s.Config
		cfg.Seed = seed
		cfg.Models = sub
		s2, err := NewSuiteContext(s.context(), cfg)
		if err != nil {
			return nil, err
		}
		rows, err := s2.OracleStudy(o.LLCSize, o.LLCWays, []string{"lru"}, o.Prot)
		if err != nil {
			return nil, err
		}
		t.MustRow(fmt.Sprintf("%d", seed), stats.Pct(MeanReduction(rows, "lru")),
			fmt.Sprintf("%d", len(rows)))
	}
	t.Note = "same workload subset regenerated per seed; the headroom is a property of the sharing structure, not of one trace"
	return []*report.Table{t}, nil
}
