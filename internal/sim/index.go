package sim

import (
	"fmt"
	"sort"
	"strings"

	"sharellc/internal/cache"
	"sharellc/internal/core"
	"sharellc/internal/policy"
	"sharellc/internal/report"
	"sharellc/internal/stats"
	"sharellc/internal/workloads"
)

// This file is the experiment index: the single catalogue of every
// experiment id the repository serves, shared by the sharesim CLI and
// the sharesimd daemon so the two can never drift apart. Each entry
// turns a prepared Suite plus per-run knobs into the experiment's
// report tables.

// ExpOptions carries the per-run knobs shared by every experiment.
type ExpOptions struct {
	LLCSize  int // LLC capacity in bytes (f2/f5 derive the doubled size from it)
	LLCWays  int
	Policies []string     // f5's base-policy list (nil = the CLI default set)
	Prot     core.Options // protection options for the oracle/predictor families
}

// DefaultExpOptions is the paper's setup: 4 MB, 16-way, full protection.
func DefaultExpOptions() ExpOptions {
	return ExpOptions{
		LLCSize: 4 * cache.MB,
		LLCWays: 16,
		Prot:    core.Options{Strength: core.Full},
	}
}

// Experiment is one entry of the experiment index.
type Experiment struct {
	ID    string
	Title string // short human description for catalogues (-exp listings, /v1/experiments)
	// NeedsSuite is false for the static description tables (config,
	// suite), whose Run ignores the *Suite argument entirely.
	NeedsSuite bool
	Run        func(s *Suite, o ExpOptions) ([]*report.Table, error)
}

// Experiments returns the full index in presentation order (the order
// `-exp all` runs them).
func Experiments() []Experiment {
	return []Experiment{
		{ID: "config", Title: "T1: the simulated machine configuration", Run: runConfig},
		{ID: "suite", Title: "T2: the workload suite and its sharing parameters", Run: runSuiteTable},
		{ID: "f1", Title: "shared vs. private LLC hit volume (default-size LLC)", NeedsSuite: true, Run: planRun("f1")},
		{ID: "f2", Title: "shared vs. private LLC hit volume (doubled LLC)", NeedsSuite: true, Run: planRun("f2")},
		{ID: "f3", Title: "sharing-degree distribution", NeedsSuite: true, Run: planRun("f3")},
		{ID: "f4", Title: "policy comparison vs. LRU and Belady OPT", NeedsSuite: true, Run: planRun("f4")},
		{ID: "f5", Title: "oracle study at both LLC sizes (per-workload rows = F6)", NeedsSuite: true, Run: planRun("f5")},
		{ID: "f7", Title: "fill-time predictor accuracy", NeedsSuite: true, Run: planRun("f7")},
		{ID: "f8", Title: "predictor-driven replacement vs. the oracle ceiling", NeedsSuite: true, Run: planRun("f8")},
		{ID: "f9", Title: "sharing-phase stability (why the predictors fail)", NeedsSuite: true, Run: planRun("f9")},
		{ID: "c1", Title: "coherence-protocol traffic characterization (extension)", NeedsSuite: true, Run: planRun("c1")},
		{ID: "c2", Title: "reuse-distance distributions by sharing class (extension)", NeedsSuite: true, Run: planRun("c2")},
		{ID: "m1", Title: "oracle on multiprogrammed mixes (motivating contrast)", NeedsSuite: true, Run: runM1},
		{ID: "a1", Title: "ablation: protection strength (insert-only vs. full)", NeedsSuite: true, Run: planRun("a1")},
		{ID: "a2", Title: "ablation: predictor table-size sweep", NeedsSuite: true, Run: planRun("a2")},
		{ID: "a3", Title: "ablation: LLC associativity sweep", NeedsSuite: true, Run: planRun("a3")},
		{ID: "a4", Title: "ablation: oracle sharing-horizon sweep", NeedsSuite: true, Run: planRun("a4")},
		{ID: "a5", Title: "ablation: seed robustness of the oracle gain", NeedsSuite: true, Run: runA5},
	}
}

// ExperimentIDs lists the valid ids in index order.
func ExperimentIDs() []string {
	idx := Experiments()
	ids := make([]string, len(idx))
	for i, e := range idx {
		ids[i] = e.ID
	}
	return ids
}

// ExperimentByID resolves one id (case-insensitive). The error message
// enumerates every valid id so CLI and API users get a usable usage hint.
func ExperimentByID(id string) (Experiment, error) {
	id = strings.ToLower(id)
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("unknown experiment %q (valid ids: %s)",
		id, strings.Join(ExperimentIDs(), ", "))
}

// ModelsByName resolves a workload-name list into suite models; nil/empty
// means "full suite" (returned as nil, the Config convention). Unknown
// names fail with the full list of valid names in the message.
func ModelsByName(names []string) ([]workloads.Model, error) {
	if len(names) == 0 {
		return nil, nil
	}
	var out []workloads.Model
	for _, n := range names {
		m, err := workloads.ByName(strings.TrimSpace(n))
		if err != nil {
			var valid []string
			for _, wm := range workloads.Suite() {
				valid = append(valid, wm.Name)
			}
			sort.Strings(valid)
			return nil, fmt.Errorf("%w (valid workloads: %s)", err, strings.Join(valid, ", "))
		}
		out = append(out, m)
	}
	return out, nil
}

func mbLabel(size int) string {
	return fmt.Sprintf("%gMB", float64(size)/float64(cache.MB))
}

func one(t *report.Table, err error) ([]*report.Table, error) {
	if err != nil {
		return nil, err
	}
	return []*report.Table{t}, nil
}

func runConfig(_ *Suite, _ ExpOptions) ([]*report.Table, error) {
	t := report.NewTable("T1: simulated machine configuration", "component", "value")
	c := cache.DefaultConfig()
	t.MustRow("cores", fmt.Sprintf("%d", c.Cores))
	t.MustRow("L1D (per core)", fmt.Sprintf("%dKB, %d-way, 64B blocks, LRU", c.L1Size/cache.KB, c.L1Ways))
	t.MustRow("L2 (per core)", fmt.Sprintf("%dKB, %d-way, 64B blocks, LRU", c.L2Size/cache.KB, c.L2Ways))
	t.MustRow("LLC (shared)", fmt.Sprintf("4MB and 8MB, %d-way, 64B blocks, policy under study", c.LLCWays))
	t.MustRow("policies", strings.Join(policy.Names(1), ", "))
	t.Note = "functional (miss-count) model; inclusive LLC available via cache.System"
	return []*report.Table{t}, nil
}

func runSuiteTable(_ *Suite, _ ExpOptions) ([]*report.Table, error) {
	t := report.NewTable("T2: workload suite",
		"workload", "suite", "threads", "refs", "footprint", "sh-RO%", "sh-RW%", "wr%", "description")
	for _, m := range workloads.Suite() {
		t.MustRow(
			m.Name, m.Suite, fmt.Sprintf("%d", m.Threads),
			fmt.Sprintf("%.1fM", float64(m.TotalAccesses())/1e6),
			fmt.Sprintf("%.1fMB", float64(m.FootprintBlocks())*64/float64(cache.MB)),
			stats.Pct(m.FracSharedRO), stats.Pct(m.FracSharedRW), stats.Pct(m.WriteFrac),
			m.Description)
	}
	return []*report.Table{t}, nil
}

func runM1(s *Suite, o ExpOptions) ([]*report.Table, error) {
	// Three canonical 8-program multiprogrammed mixes drawn from the
	// suite, scaled and seeded like the suite itself.
	mixNames := [][]string{
		{"swaptions", "blackscholes", "freqmine", "water", "equake", "lu", "bodytrack", "facesim"},
		{"canneal", "swaptions", "ocean", "blackscholes", "fft", "water", "dedup", "freqmine"},
		{"swaptions", "swaptions", "swaptions", "swaptions", "swaptions", "swaptions", "swaptions", "swaptions"},
	}
	var mixes [][]workloads.Model
	for _, names := range mixNames {
		ms, err := ModelsByName(names)
		if err != nil {
			return nil, err
		}
		for i := range ms {
			if s.Config.Scale != 1 {
				ms[i] = ms[i].Scaled(s.Config.Scale)
			}
		}
		mixes = append(mixes, ms)
	}
	rows, err := MultiprogrammedOracleCtx(s.context(), mixes, s.Config.Machine, s.Config.Seed, o.LLCSize, o.LLCWays, o.Prot)
	if err != nil {
		return nil, err
	}
	return one(OracleTable(fmt.Sprintf("M1: oracle on multiprogrammed mixes (%s LLC)", mbLabel(o.LLCSize)), rows), nil)
}

// A5Workloads is the fixed workload subset the a5 seed-robustness
// ablation regenerates under each seed. Exported so the cluster
// coordinator can pre-distribute the matching request-seed streams: the
// seed-1 sub-suite shares cache keys with the primary suite's streams,
// and a worker running a5 should peer-fetch those rather than rebuild.
func A5Workloads() []string {
	return []string{"canneal", "dedup", "barnes", "ocean", "streamcluster", "swaptions"}
}

// A5Seeds lists the seeds the a5 ablation sweeps.
func A5Seeds() []uint64 { return []uint64{1, 2, 3} }

func runA5(s *Suite, o ExpOptions) ([]*report.Table, error) {
	// Seed robustness: rebuild a suite subset under several seeds and
	// compare the F5 means. Uses its own suites; the prepared streams
	// are not reused.
	t := report.NewTable(fmt.Sprintf("A5: oracle gain across seeds (%s LLC, LRU)", mbLabel(o.LLCSize)),
		"seed", "mean-reduction", "workloads")
	sub, err := ModelsByName(A5Workloads())
	if err != nil {
		return nil, err
	}
	for _, seed := range A5Seeds() {
		cfg := s.Config
		cfg.Seed = seed
		cfg.Models = sub
		s2, err := NewSuiteContext(s.context(), cfg)
		if err != nil {
			return nil, err
		}
		rows, err := s2.OracleStudy(o.LLCSize, o.LLCWays, []string{"lru"}, o.Prot)
		if err != nil {
			return nil, err
		}
		t.MustRow(fmt.Sprintf("%d", seed), stats.Pct(MeanReduction(rows, "lru")),
			fmt.Sprintf("%d", len(rows)))
	}
	t.Note = "same workload subset regenerated per seed; the headroom is a property of the sharing structure, not of one trace"
	return []*report.Table{t}, nil
}
