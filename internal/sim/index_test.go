package sim

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sharellc/internal/cache"
)

func indexTestSuite(t *testing.T) *Suite {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Scale = 0.02
	models, err := ModelsByName([]string{"canneal", "swaptions"})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Models = models
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExperimentIndexComplete(t *testing.T) {
	want := []string{"config", "suite", "f1", "f2", "f3", "f4", "f5", "f7", "f8", "f9",
		"c1", "c2", "m1", "a1", "a2", "a3", "a4", "a5"}
	if got := ExperimentIDs(); !reflect.DeepEqual(got, want) {
		t.Errorf("ExperimentIDs() = %v, want %v", got, want)
	}
	for _, e := range Experiments() {
		if e.Run == nil {
			t.Errorf("experiment %s has no runner", e.ID)
		}
		if e.Title == "" {
			t.Errorf("experiment %s has no title", e.ID)
		}
	}
}

func TestExperimentByIDUnknown(t *testing.T) {
	_, err := ExperimentByID("nonesuch")
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	if !strings.Contains(err.Error(), "valid ids") || !strings.Contains(err.Error(), "f1") {
		t.Errorf("error %q does not enumerate valid ids", err)
	}
	if _, err := ExperimentByID("F1"); err != nil {
		t.Errorf("ids should be case-insensitive: %v", err)
	}
}

func TestStaticExperimentsRunWithoutSuite(t *testing.T) {
	for _, id := range []string{"config", "suite"} {
		e, err := ExperimentByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if e.NeedsSuite {
			t.Errorf("%s should not need a suite", id)
		}
		tables, err := e.Run(nil, DefaultExpOptions())
		if err != nil || len(tables) != 1 {
			t.Errorf("%s: tables=%d err=%v", id, len(tables), err)
		}
	}
}

func TestModelsByNameUnknown(t *testing.T) {
	_, err := ModelsByName([]string{"doom"})
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if !strings.Contains(err.Error(), "valid workloads") {
		t.Errorf("error %q does not enumerate valid workloads", err)
	}
}

// TestSuiteContextCancelsExperiments: a suite carrying a cancelled
// context refuses to run, and a mid-flight cancellation aborts an
// experiment promptly with the context's error.
func TestSuiteContextCancelsExperiments(t *testing.T) {
	s := indexTestSuite(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.WithContext(ctx).Characterize(256*cache.KB, 8); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled Characterize: err = %v, want context.Canceled", err)
	}

	// Mid-flight: cancel once the first progress callback fires. The
	// fused F4 has only one work unit per workload, so pin the outer
	// fan-out to a single worker: unit 1 completes, fires the callback,
	// and the sequential claim loop must then see the cancelled context
	// before touching unit 2.
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var once sync.Once
	s2 := s.WithContext(ctx2).WithProgress(func(done, total int, label string) {
		once.Do(cancel2)
	})
	start := time.Now()
	_, err := s2.ComparePolicies(256*cache.KB, 8, nil)
	if err == nil {
		t.Fatal("ComparePolicies completed despite cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled in the chain", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

// TestWithProgressReportsEveryCell: the progress callback sees every
// completed cell exactly once and ends at done == total.
func TestWithProgressReportsEveryCell(t *testing.T) {
	s := indexTestSuite(t)
	var mu sync.Mutex
	var got []int
	total := -1
	s2 := s.WithProgress(func(done, tot int, label string) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, done)
		total = tot
	})
	if _, err := s2.Characterize(256*cache.KB, 8); err != nil {
		t.Fatal(err)
	}
	if total != len(s.Streams) || len(got) != total {
		t.Fatalf("progress: %d callbacks, total %d, want %d", len(got), total, len(s.Streams))
	}
	seen := map[int]bool{}
	for _, d := range got {
		if d < 1 || d > total || seen[d] {
			t.Errorf("bad done sequence %v", got)
			break
		}
		seen[d] = true
	}
}

func TestShardBudget(t *testing.T) {
	if got := ShardBudget(1); got < 1 {
		t.Errorf("ShardBudget(1) = %d", got)
	}
	if got := ShardBudget(1 << 20); got != 1 {
		t.Errorf("ShardBudget(huge) = %d, want 1", got)
	}
}

// TestWithContextDoesNotPerturbResults guards the serving layer's core
// invariant: the same suite produces bit-identical rows with and
// without context/progress plumbing attached.
func TestWithContextDoesNotPerturbResults(t *testing.T) {
	s := indexTestSuite(t)
	base, err := s.Characterize(256*cache.KB, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.WithContext(context.Background()).
		WithProgress(func(int, int, string) {}).
		Characterize(256*cache.KB, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Errorf("rows diverge with ctx/progress attached")
	}
}
