package sim

import (
	"bytes"
	"context"
	"math"
	"testing"

	"sharellc/internal/cache"
	"sharellc/internal/report"
)

func planTestConfig(t *testing.T, names []string) Config {
	t.Helper()
	models, err := ModelsByName(names)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Machine: cache.Config{
			Cores:  8,
			L1Size: 2 * cache.KB, L1Ways: 2,
			L2Size: 8 * cache.KB, L2Ways: 4,
			LLCSize: 64 * cache.KB, LLCWays: 8,
		},
		Seed:   1,
		Scale:  0.02,
		Models: models,
	}
}

func planTestOptions() ExpOptions {
	o := DefaultExpOptions()
	o.LLCSize = 64 * cache.KB
	o.LLCWays = 8
	o.Policies = []string{"lru", "srrip"}
	return o
}

func tableJSON(t *testing.T, tables []*report.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tb := range tables {
		b, err := tb.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestPlanMatchesCatalogue checks that every sliceable experiment,
// executed one workload at a time with the rows shipped through the
// cluster wire codec (gob encode/decode) and merged in suite order,
// renders tables byte-identical to a whole-suite Experiment.Run. This is
// the determinism-of-merge property the coordinator relies on.
func TestPlanMatchesCatalogue(t *testing.T) {
	names := []string{"canneal", "streamcluster", "swaptions"}
	cfg := planTestConfig(t, names)
	opts := planTestOptions()

	whole, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One single-workload suite per name, sharing machine/seed/scale.
	subs := make([]*Suite, len(names))
	for i, n := range names {
		sc := cfg
		models, err := ModelsByName([]string{n})
		if err != nil {
			t.Fatal(err)
		}
		sc.Models = models
		s, err := NewSuite(sc)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}

	for _, id := range ExperimentIDs() {
		specs, ok := PlanFor(id, opts)
		if !ok {
			continue
		}
		exp, err := ExperimentByID(id)
		if err != nil {
			t.Fatal(err)
		}
		want, err := exp.Run(whole, opts)
		if err != nil {
			t.Fatalf("%s: whole-suite run: %v", id, err)
		}
		if len(want) != len(specs) {
			t.Fatalf("%s: %d tables from Run but %d specs from PlanFor", id, len(want), len(specs))
		}
		var got []*report.Table
		for _, sp := range specs {
			var merged any
			for _, sub := range subs {
				rows, err := sp.Run(sub)
				if err != nil {
					t.Fatalf("%s: spec %q on sub-suite: %v", id, sp.Title, err)
				}
				wire, err := EncodeRows(rows)
				if err != nil {
					t.Fatalf("%s: encode: %v", id, err)
				}
				decoded, err := DecodeRows(sp.Kind, wire)
				if err != nil {
					t.Fatalf("%s: decode: %v", id, err)
				}
				merged, err = MergeRows(sp.Kind, merged, decoded)
				if err != nil {
					t.Fatalf("%s: merge: %v", id, err)
				}
			}
			got = append(got, sp.Render(merged))
		}
		if !bytes.Equal(tableJSON(t, want), tableJSON(t, got)) {
			t.Errorf("%s: merged per-workload tables differ from whole-suite run\nwant:\n%s\ngot:\n%s",
				id, tableJSON(t, want), tableJSON(t, got))
		}
	}
}

// TestPlanTitlesMatchRun pins every spec title to the rendered table
// title so progress labels and merge bookkeeping agree with the output.
func TestPlanTitlesMatchRun(t *testing.T) {
	opts := planTestOptions()
	for _, id := range ExperimentIDs() {
		specs, ok := PlanFor(id, opts)
		if !ok {
			continue
		}
		for _, sp := range specs {
			tb := sp.Render(nil)
			if tb.Title != sp.Title {
				t.Errorf("%s: spec title %q but rendered table title %q", id, sp.Title, tb.Title)
			}
		}
	}
}

// TestPlanForUnknown pins the non-sliceable set: these run as whole
// experiments on the cluster (or inline on the coordinator).
func TestPlanForUnknown(t *testing.T) {
	opts := planTestOptions()
	for _, id := range []string{"config", "suite", "m1", "a5", "nope"} {
		if _, ok := PlanFor(id, opts); ok {
			t.Errorf("PlanFor(%q) unexpectedly sliceable", id)
		}
	}
}

// TestRowCodecNonFinite checks the wire codec round-trips NaN and ±Inf
// bit-exactly; JSON could not represent these, gob must.
func TestRowCodecNonFinite(t *testing.T) {
	in := []PolicyRow{{Workload: "x", Policy: "lru", MissRate: math.NaN(), MissesVsLRU: math.Inf(1), SharedHitFrac: math.Inf(-1)}}
	wire, err := EncodeRows(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRows("policy", wire)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.([]PolicyRow)
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	if !math.IsNaN(rows[0].MissRate) || !math.IsInf(rows[0].MissesVsLRU, 1) || !math.IsInf(rows[0].SharedHitFrac, -1) {
		t.Errorf("non-finite floats not preserved: %+v", rows[0])
	}
}

// TestDecodeRowsUnknownKind pins the enumerating error contract.
func TestDecodeRowsUnknownKind(t *testing.T) {
	if _, err := DecodeRows("bogus", nil); err == nil {
		t.Error("DecodeRows with unknown kind: want error, got nil")
	}
	if _, err := MergeRows("bogus", nil, nil); err == nil {
		t.Error("MergeRows with unknown kind: want error, got nil")
	}
}

// TestBareSuite checks the config-only suite used for whole-experiment
// bundles: m1 and a5 must run on it (they build their own streams).
func TestBareSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("builds sub-suites; skipped in -short")
	}
	cfg := planTestConfig(t, []string{"canneal", "streamcluster", "swaptions"})
	opts := planTestOptions()

	whole, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bare := BareSuite(context.Background(), cfg)
	for _, id := range []string{"m1", "a5"} {
		exp, err := ExperimentByID(id)
		if err != nil {
			t.Fatal(err)
		}
		want, err := exp.Run(whole, opts)
		if err != nil {
			t.Fatalf("%s on full suite: %v", id, err)
		}
		got, err := exp.Run(bare, opts)
		if err != nil {
			t.Fatalf("%s on bare suite: %v", id, err)
		}
		if !bytes.Equal(tableJSON(t, want), tableJSON(t, got)) {
			t.Errorf("%s: bare-suite run differs from full-suite run", id)
		}
	}
}
