// Package sim orchestrates the paper's experiments: it turns workload
// models into LLC reference streams (once per workload — the private
// hierarchy does not depend on the LLC, so one stream serves every LLC
// size and policy) and fans the replay passes out across CPUs.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sharellc/internal/cache"
	"sharellc/internal/sharing"
	"sharellc/internal/workloads"
)

// Config describes one experimental setup.
type Config struct {
	// Machine supplies the private-cache geometry (its LLC fields are
	// the default LLC; experiments usually override size per run).
	Machine cache.Config
	// Seed drives all workload generation and stochastic policies.
	Seed uint64
	// Scale multiplies workload region sizes and trace lengths; 1.0 is
	// the full-size suite, smaller values shrink everything
	// proportionally for quick runs against smaller LLCs.
	Scale float64
	// Models is the workload list; empty means the full suite.
	Models []workloads.Model
	// Shards requests set-sharded parallel replay inside each experiment
	// cell (sharing.Options.Shards): 0 lets each experiment budget the
	// leftover CPUs across its fan-out, 1 forces sequential replays, and
	// n > 1 asks for up to n shards per replay. Results are identical at
	// every setting; only wall-clock time changes.
	Shards int
	// Kernel selects the fused-replay inner loop for every experiment
	// of the suite (sharing.Options.Kernel): the batched SoA kernel by
	// default, or the scalar walk as the bisection escape hatch (the
	// -kernel flag of sharesim and sharesimd). Results are identical at
	// either setting; only wall-clock time changes.
	Kernel sharing.Kernel
	// Tracker selects the residency-tracker representation for every
	// experiment of the suite (sharing.Options.Tracker): the SoA columns
	// by default, or the []Residency struct slabs as the bisection escape
	// hatch (the -tracker flag of sharesim and sharesimd). Results are
	// identical at either setting; only wall-clock time changes.
	Tracker sharing.Tracker
	// SIMD selects the data-parallel tier of the batched replay for
	// every experiment of the suite (sharing.Options.SIMD): assembly
	// kernels when the CPU has them by default, the portable SWAR tier
	// or the scalar paths as escape hatches (the -simd flag of sharesim,
	// sharesimd and dumprows). Results are identical at every setting;
	// only wall-clock time changes.
	SIMD sharing.SIMD
	// Streams, when non-nil, supplies each prepared stream instead of a
	// direct BuildStream call — the hook through which the streamcache
	// package shares streams across suites and processes. The provider
	// receives the already-scaled model, so its result must be
	// bit-identical to BuildStream(m, machine, seed) for the same
	// arguments (the cache's byte-compare tests enforce this).
	Streams StreamProvider
	// Progress, when non-nil, is invoked after each stream finishes
	// preparing during NewSuite, with the running completion count, the
	// total stream count and the workload name. Callbacks may arrive
	// concurrently from the preparation workers. It reports only suite
	// construction; experiment fan-out progress goes through
	// Suite.WithProgress.
	Progress func(done, total int, label string)
}

// StreamProvider builds (or fetches) the prepared LLC reference stream
// for one workload on one private-hierarchy geometry and seed. The
// default provider wraps BuildStream; streamcache.Cache.Stream is the
// caching one.
type StreamProvider func(ctx context.Context, m workloads.Model, machine cache.Config, seed uint64) (*Stream, error)

// DefaultConfig is the paper's setup: the 4 MB-LLC machine (8 MB via
// WithLLC), seed 1, full scale, full suite.
func DefaultConfig() Config {
	return Config{Machine: cache.DefaultConfig(), Seed: 1, Scale: 1}
}

// Stream is one workload's LLC reference stream with hierarchy stats.
type Stream struct {
	Model    workloads.Model
	Accesses []cache.AccessInfo // NextUse-annotated, dense BlockIDs assigned

	NumBlocks int    // distinct blocks in Accesses (BlockID range)
	TraceLen  uint64 // raw references generated
	L1Hits    uint64
	L2Hits    uint64

	// partMu guards parts, the memoized counting-sort shard partitions
	// of Accesses keyed by shard count. Experiments at different LLC
	// geometries resolve to the same few shard counts, so each partition
	// is built once per stream and shared (it is immutable once built).
	partMu sync.Mutex
	parts  map[int]*sharing.PartitionIndex

	// coresOnce guards cores, the memoized core count of Accesses
	// (1 + highest core number), scanned at most once per stream so
	// every replay's SoA-tracker eligibility check skips the full-stream
	// scan (sharing.Options.Cores).
	coresOnce sync.Once
	cores     int
}

// Cores returns 1 + the highest core number appearing in the stream,
// scanning it once on first call. Safe for concurrent use.
func (s *Stream) Cores() int {
	s.coresOnce.Do(func() {
		var max uint8
		for i := range s.Accesses {
			if c := s.Accesses[i].Core; c > max {
				max = c
			}
		}
		if len(s.Accesses) > 0 {
			s.cores = int(max) + 1
		}
	})
	return s.cores
}

// Partitioner returns the sharing.Partitioner serving this stream's
// cached shard partitions, building each requested shard count at most
// once. Safe for concurrent use across experiment workers.
func (s *Stream) Partitioner() sharing.Partitioner {
	return func(shards int) (*sharing.PartitionIndex, error) {
		s.partMu.Lock()
		defer s.partMu.Unlock()
		if p, ok := s.parts[shards]; ok {
			return p, nil
		}
		p, err := sharing.BuildPartition(s.Accesses, shards)
		if err != nil {
			return nil, err
		}
		if s.parts == nil {
			s.parts = make(map[int]*sharing.PartitionIndex)
		}
		s.parts[shards] = p
		return p, nil
	}
}

// ReplayOptions bundles the stream's replay tuning — the cached shard
// partitions and the known distinct-block count, both skipping
// full-stream preparation scans inside the replay — with the caller's
// worker bound and cancellation context. Every experiment replaying
// this stream should build its sharing.Options here so no stream-level
// memoization is forgotten at any call site.
func (s *Stream) ReplayOptions(shards int, ctx context.Context) sharing.Options {
	return sharing.Options{Shards: shards, Ctx: ctx, Partitioner: s.Partitioner(), NumBlocks: s.NumBlocks, Cores: s.Cores()}
}

// LLCAPKI returns LLC accesses per thousand raw references — a coarse
// check that the private levels filter realistically.
func (s *Stream) LLCAPKI() float64 {
	if s.TraceLen == 0 {
		return 0
	}
	return 1000 * float64(len(s.Accesses)) / float64(s.TraceLen)
}

// BuildStream generates the model's trace, filters it through a fresh
// private hierarchy and annotates next-use indices.
func BuildStream(m workloads.Model, machine cache.Config, seed uint64) (*Stream, error) {
	if m.Threads > machine.Cores {
		return nil, fmt.Errorf("sim: workload %s has %d threads but machine has %d cores", m.Name, m.Threads, machine.Cores)
	}
	r, err := m.Generate(seed)
	if err != nil {
		return nil, err
	}
	stream, h, err := cache.FilterStream(r, machine)
	if err != nil {
		return nil, fmt.Errorf("sim: filtering %s: %w", m.Name, err)
	}
	numBlocks := cache.AnnotateNextUse(stream)
	refs, l1, l2, _ := h.Stats()
	return &Stream{Model: m, Accesses: stream, NumBlocks: numBlocks, TraceLen: refs, L1Hits: l1, L2Hits: l2}, nil
}

// Suite holds the prepared streams for one Config.
type Suite struct {
	Config  Config
	Streams []*Stream

	// ctx, when non-nil, cancels every experiment run on the suite: the
	// outer fan-out stops claiming cells and the inner replay loops
	// abort at their next poll (sharing.Options.Ctx). Set via
	// NewSuiteContext or WithContext.
	ctx context.Context
	// progress, when non-nil, is invoked after each completed work item
	// of an experiment fan-out (per workload, or per workload×policy
	// cell) with the running completion count, the total, and the
	// workload label. Set via WithProgress; callbacks may arrive
	// concurrently from worker goroutines.
	progress func(done, total int, label string)
}

// NewSuite prepares every workload's stream in parallel.
func NewSuite(cfg Config) (*Suite, error) {
	return NewSuiteContext(context.Background(), cfg)
}

// NewSuiteContext is NewSuite with a cancellation context: stream
// preparation aborts between workloads when ctx is cancelled, and the
// context is retained so every later experiment run on the suite is
// cancellable too.
func NewSuiteContext(ctx context.Context, cfg Config) (*Suite, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("sim: non-positive scale %v", cfg.Scale)
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	models := cfg.Models
	if len(models) == 0 {
		models = workloads.Suite()
	}
	scaled := make([]workloads.Model, len(models))
	for i, m := range models {
		if cfg.Scale != 1 {
			m = m.Scaled(cfg.Scale)
		}
		scaled[i] = m
	}
	build := cfg.Streams
	if build == nil {
		build = func(_ context.Context, m workloads.Model, machine cache.Config, seed uint64) (*Stream, error) {
			return BuildStream(m, machine, seed)
		}
	}
	streams := make([]*Stream, len(scaled))
	var done atomic.Int64
	err := parallelCapCtx(ctx, len(scaled), runtime.GOMAXPROCS(0), func(i int) error {
		s, err := build(ctx, scaled[i], cfg.Machine, cfg.Seed)
		if err != nil {
			return err
		}
		streams[i] = s
		if cfg.Progress != nil {
			cfg.Progress(int(done.Add(1)), len(scaled), s.Model.Name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Suite{Config: cfg, Streams: streams, ctx: ctx}, nil
}

// WithContext returns a shallow copy of the suite whose experiment runs
// are cancelled when ctx is. The prepared streams are shared, so the
// copy is cheap.
func (s *Suite) WithContext(ctx context.Context) *Suite {
	c := *s
	c.ctx = ctx
	return &c
}

// WithProgress returns a shallow copy of the suite that reports per-cell
// completion through fn (see the progress field for the contract).
func (s *Suite) WithProgress(fn func(done, total int, label string)) *Suite {
	c := *s
	c.progress = fn
	return &c
}

// WithKernel returns a shallow copy of the suite whose experiments run
// the given replay kernel. The prepared streams are shared with the
// receiver, so forcing the scalar kernel for an A/B or a bisection does
// not pay a second suite build.
func (s *Suite) WithKernel(k sharing.Kernel) *Suite {
	c := *s
	c.Config.Kernel = k
	return &c
}

// WithTracker returns a shallow copy of the suite whose experiments use
// the given residency-tracker representation, sharing the prepared
// streams like WithKernel.
func (s *Suite) WithTracker(t sharing.Tracker) *Suite {
	c := *s
	c.Config.Tracker = t
	return &c
}

// WithSIMD returns a shallow copy of the suite whose experiments run
// the given SIMD tier, sharing the prepared streams like WithKernel.
func (s *Suite) WithSIMD(v sharing.SIMD) *Suite {
	c := *s
	c.Config.SIMD = v
	return &c
}

// context returns the suite's cancellation context, defaulting to
// Background for suites built without one.
func (s *Suite) context() context.Context {
	if s.ctx != nil {
		return s.ctx
	}
	return context.Background()
}

// par fans f out across the CPUs under the suite's context — the outer
// loop of every experiment runner.
func (s *Suite) par(n int, f func(i int) error) error {
	return parallelCapCtx(s.context(), n, runtime.GOMAXPROCS(0), f)
}

// step reports one completed work item to the progress callback, if any.
// done is the experiment's own completion counter.
func (s *Suite) step(done *atomic.Int64, total int, label string) {
	if s.progress != nil {
		s.progress(int(done.Add(1)), total, label)
	}
}

// Stream returns the prepared stream for the named workload.
func (s *Suite) Stream(name string) (*Stream, error) {
	for _, st := range s.Streams {
		if st.Model.Name == name {
			return st, nil
		}
	}
	return nil, fmt.Errorf("sim: no prepared stream for workload %q", name)
}

// shardsFor picks the per-replay shard request (sharing.Options.Shards)
// for an experiment fanning out over cells concurrent replay cells: the
// Config's explicit Shards when set, otherwise the CPUs left over once
// every cell has a worker — so the outer fan-out and the inner set
// sharding never oversubscribe the machine between them.
// replayOpts is Stream.ReplayOptions under this suite's Config: it
// attaches the suite-level replay knobs (currently the Kernel
// selection) on top of the stream's own tuning, so no experiment call
// site can forget one.
func (s *Suite) replayOpts(st *Stream, shards int) sharing.Options {
	o := st.ReplayOptions(shards, s.context())
	o.Kernel = s.Config.Kernel
	o.Tracker = s.Config.Tracker
	o.SIMD = s.Config.SIMD
	return o
}

func (s *Suite) shardsFor(cells int) int {
	if s.Config.Shards != 0 {
		return s.Config.Shards
	}
	return leftoverShards(cells)
}

// ShardBudget returns the per-replay shard request that keeps n
// concurrent experiment runs within GOMAXPROCS — the same leftover-CPU
// division shardsFor applies inside a single experiment's fan-out. The
// sharesimd worker pool uses it to set Config.Shards for each of its n
// workers so that workers × shards never oversubscribes the machine.
func ShardBudget(n int) int { return leftoverShards(n) }

// leftoverShards divides GOMAXPROCS across cells concurrent cells,
// returning the per-cell shard budget (at least 1 = sequential).
func leftoverShards(cells int) int {
	if cells < 1 {
		cells = 1
	}
	n := runtime.GOMAXPROCS(0) / cells
	if n < 1 {
		n = 1
	}
	return n
}

// parallel runs f(0..n-1) across up to GOMAXPROCS workers and returns the
// first error.
func parallel(n int, f func(i int) error) error {
	return parallelCapCtx(context.Background(), n, runtime.GOMAXPROCS(0), f)
}

// parallelCapCtx is parallel with an explicit worker cap and a
// cancellation context. The cap exists for callers that must split the
// CPU budget with nested parallelism (a sharded replay inside an
// experiment fan-out) and would otherwise oversubscribe. Work items are
// claimed from a lock-free atomic counter; the first error — including
// ctx's error once it is cancelled, checked before each claim — stops
// further claims and is returned after all workers drain.
func parallelCapCtx(ctx context.Context, n, cap int, f func(i int) error) error {
	workers := cap
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg    sync.WaitGroup
		next  atomic.Int64
		stop  atomic.Bool
		mu    sync.Mutex
		first error
	)
	fail := func(err error) {
		stop.Store(true)
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				if err := f(int(i)); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
