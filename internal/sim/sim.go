// Package sim orchestrates the paper's experiments: it turns workload
// models into LLC reference streams (once per workload — the private
// hierarchy does not depend on the LLC, so one stream serves every LLC
// size and policy) and fans the replay passes out across CPUs.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"sharellc/internal/cache"
	"sharellc/internal/workloads"
)

// Config describes one experimental setup.
type Config struct {
	// Machine supplies the private-cache geometry (its LLC fields are
	// the default LLC; experiments usually override size per run).
	Machine cache.Config
	// Seed drives all workload generation and stochastic policies.
	Seed uint64
	// Scale multiplies workload region sizes and trace lengths; 1.0 is
	// the full-size suite, smaller values shrink everything
	// proportionally for quick runs against smaller LLCs.
	Scale float64
	// Models is the workload list; empty means the full suite.
	Models []workloads.Model
}

// DefaultConfig is the paper's setup: the 4 MB-LLC machine (8 MB via
// WithLLC), seed 1, full scale, full suite.
func DefaultConfig() Config {
	return Config{Machine: cache.DefaultConfig(), Seed: 1, Scale: 1}
}

// Stream is one workload's LLC reference stream with hierarchy stats.
type Stream struct {
	Model    workloads.Model
	Accesses []cache.AccessInfo // NextUse-annotated

	TraceLen uint64 // raw references generated
	L1Hits   uint64
	L2Hits   uint64
}

// LLCAPKI returns LLC accesses per thousand raw references — a coarse
// check that the private levels filter realistically.
func (s *Stream) LLCAPKI() float64 {
	if s.TraceLen == 0 {
		return 0
	}
	return 1000 * float64(len(s.Accesses)) / float64(s.TraceLen)
}

// BuildStream generates the model's trace, filters it through a fresh
// private hierarchy and annotates next-use indices.
func BuildStream(m workloads.Model, machine cache.Config, seed uint64) (*Stream, error) {
	if m.Threads > machine.Cores {
		return nil, fmt.Errorf("sim: workload %s has %d threads but machine has %d cores", m.Name, m.Threads, machine.Cores)
	}
	r, err := m.Generate(seed)
	if err != nil {
		return nil, err
	}
	stream, h, err := cache.FilterStream(r, machine)
	if err != nil {
		return nil, fmt.Errorf("sim: filtering %s: %w", m.Name, err)
	}
	cache.AnnotateNextUse(stream)
	refs, l1, l2, _ := h.Stats()
	return &Stream{Model: m, Accesses: stream, TraceLen: refs, L1Hits: l1, L2Hits: l2}, nil
}

// Suite holds the prepared streams for one Config.
type Suite struct {
	Config  Config
	Streams []*Stream
}

// NewSuite prepares every workload's stream in parallel.
func NewSuite(cfg Config) (*Suite, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("sim: non-positive scale %v", cfg.Scale)
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	models := cfg.Models
	if len(models) == 0 {
		models = workloads.Suite()
	}
	scaled := make([]workloads.Model, len(models))
	for i, m := range models {
		if cfg.Scale != 1 {
			m = m.Scaled(cfg.Scale)
		}
		scaled[i] = m
	}
	streams := make([]*Stream, len(scaled))
	err := parallel(len(scaled), func(i int) error {
		s, err := BuildStream(scaled[i], cfg.Machine, cfg.Seed)
		if err != nil {
			return err
		}
		streams[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Suite{Config: cfg, Streams: streams}, nil
}

// Stream returns the prepared stream for the named workload.
func (s *Suite) Stream(name string) (*Stream, error) {
	for _, st := range s.Streams {
		if st.Model.Name == name {
			return st, nil
		}
	}
	return nil, fmt.Errorf("sim: no prepared stream for workload %q", name)
}

// parallel runs f(0..n-1) across up to GOMAXPROCS workers and returns the
// first error.
func parallel(n int, f func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
		next  int
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if first != nil || next >= n {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if first == nil {
			first = err
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				if err := f(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
