package sim

import (
	"reflect"
	"testing"

	"sharellc/internal/core"
	"sharellc/internal/predictor"
	"sharellc/internal/workloads"
)

// suiteWithShards builds the small test suite with an explicit per-replay
// shard request.
func suiteWithShards(t *testing.T, shards int) *Suite {
	t.Helper()
	cfg := testConfig(t)
	cfg.Shards = shards
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// experimentRunners enumerates every experiment family over the test
// suite's workloads. Each runner returns its full row slice so the
// differential test can demand bit-identical output.
func experimentRunners() []struct {
	name string
	run  func(s *Suite) (any, error)
} {
	return []struct {
		name string
		run  func(s *Suite) (any, error)
	}{
		{"characterize", func(s *Suite) (any, error) {
			return s.Characterize(tSize, tWays)
		}},
		// nil names = the full catalogue, so the per-set policies take
		// the sharded path while DRRIP/SHiP/Random exercise the
		// sequential fallback in the same run.
		{"compare-policies", func(s *Suite) (any, error) {
			return s.ComparePolicies(tSize, tWays, nil)
		}},
		{"oracle-study", func(s *Suite) (any, error) {
			return s.OracleStudy(tSize, tWays, []string{"lru", "srrip"}, core.Options{Strength: core.Full})
		}},
		{"oracle-horizon-sweep", func(s *Suite) (any, error) {
			return s.OracleHorizonSweep(tSize, tWays, []int{1, 4}, core.Options{Strength: core.Full})
		}},
		{"predictor-accuracy", func(s *Suite) (any, error) {
			return s.PredictorAccuracy(tSize, tWays, predictor.DefaultConfig(), nil)
		}},
		{"predictor-driven", func(s *Suite) (any, error) {
			return s.PredictorDriven(tSize, tWays, predictor.DefaultConfig(), []string{"addr", "coherence"}, core.Options{Strength: core.Full})
		}},
		{"reuse-distances", func(s *Suite) (any, error) {
			return s.ReuseDistances(tSize)
		}},
		{"sharing-phases", func(s *Suite) (any, error) {
			return s.SharingPhases(8)
		}},
		{"coherence-characterize", func(s *Suite) (any, error) {
			return s.CoherenceCharacterize()
		}},
	}
}

// TestExperimentsShardingInvariant is the differential determinism test
// of the set-sharded replay engine: every experiment family must produce
// identical rows whether each replay runs sequentially (Shards=1) or
// sharded by set index (Shards=4 on the 128-set test LLC), and identical
// rows again on a repeated sequential run (no hidden run-to-run state).
func TestExperimentsShardingInvariant(t *testing.T) {
	seq := suiteWithShards(t, 1)
	shd := suiteWithShards(t, 4)
	rep := suiteWithShards(t, 1)
	for _, ex := range experimentRunners() {
		ex := ex
		t.Run(ex.name, func(t *testing.T) {
			want, err := ex.run(seq)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			got, err := ex.run(shd)
			if err != nil {
				t.Fatalf("sharded: %v", err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("sharded rows differ from sequential:\nseq: %+v\nshd: %+v", want, got)
			}
			again, err := ex.run(rep)
			if err != nil {
				t.Fatalf("repeat: %v", err)
			}
			if !reflect.DeepEqual(want, again) {
				t.Errorf("repeated sequential run differs:\nrun1: %+v\nrun2: %+v", want, again)
			}
		})
	}
}

// TestMultiprogrammedOracleShardingInvariant covers the one experiment
// entry point that does not go through a Suite.
func TestMultiprogrammedOracleShardingInvariant(t *testing.T) {
	cfg := testConfig(t)
	var mix []workloads.Model
	for _, name := range []string{"swaptions", "blackscholes"} {
		m, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		mix = append(mix, m.Scaled(0.02))
	}
	mixes := [][]workloads.Model{mix}
	want, err := MultiprogrammedOracle(mixes, cfg.Machine, cfg.Seed, tSize, tWays, core.Options{Strength: core.Full})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MultiprogrammedOracle(mixes, cfg.Machine, cfg.Seed, tSize, tWays, core.Options{Strength: core.Full})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("repeated multiprogrammed oracle runs differ:\nrun1: %+v\nrun2: %+v", want, got)
	}
}
