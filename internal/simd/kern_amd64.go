package simd

// amd64 dispatchers: AVX2 bodies over whole vectors, SWAR over the
// tail (and over everything when detection failed). The assembly
// functions require their stated length multiples and a non-zero
// length — the wrappers enforce both.

//go:noescape
func countHitsAVX2(out []uint32) uint64

//go:noescape
func countLogHitsAVX2(log []uint8) uint64

//go:noescape
func expandCWAVX2(meta []uint8, cw []uint64)

//go:noescape
func degreesAVX2(cw []uint64, deg []uint8)

// CountHits returns the number of outcome words with the hit flag set.
func CountHits(out []uint32) uint64 {
	if !hasAsm {
		return CountHitsSWAR(out)
	}
	n := len(out) &^ 31
	var s uint64
	if n > 0 {
		s = countHitsAVX2(out[:n])
	}
	return s + CountHitsSWAR(out[n:])
}

// CountLogHits returns the number of outcome-log bytes with the hit
// flag set.
func CountLogHits(log []uint8) uint64 {
	if !hasAsm {
		return CountLogHitsSWAR(log)
	}
	n := len(log) &^ 31
	var s uint64
	if n > 0 {
		s = countLogHitsAVX2(log[:n])
	}
	return s + CountLogHitsSWAR(log[n:])
}

// ExpandCW expands packed meta bytes into core/write words (see
// ExpandCWSWAR for the encoding). len(cw) must be at least len(meta).
func ExpandCW(meta []uint8, cw []uint64) {
	if !hasAsm {
		ExpandCWSWAR(meta, cw)
		return
	}
	n := len(meta) &^ 3
	if n > 0 {
		expandCWAVX2(meta[:n], cw[:n])
	}
	ExpandCWSWAR(meta[n:], cw[n:len(meta)])
}

// Degrees writes each core/write word's core popcount (the CWWritten
// bit masked) into deg. len(deg) must be at least len(cw).
func Degrees(cw []uint64, deg []uint8) {
	if !hasAsm {
		DegreesSWAR(cw, deg)
		return
	}
	n := len(cw) &^ 3
	if n > 0 {
		degreesAVX2(cw[:n], deg[:n])
	}
	DegreesSWAR(cw[n:], deg[n:len(cw)])
}
