#include "textflag.h"

// func countHitsNEON(out []uint32) uint64
// Requires len(out) > 0 and len(out) % 16 == 0. Sums (o >> 30) & 1:
// four S4 vectors per iteration shifted and masked into one dword
// accumulator, folded through general registers at the end (each lane
// gains at most 4 per iteration, so lanes cannot overflow below 2^34
// elements).
TEXT ·countHitsNEON(SB), NOSPLIT, $0-32
	MOVD out_base+0(FP), R0
	MOVD out_len+8(FP), R1
	MOVD $1, R2
	VDUP R2, V0.S4           // dword 1s
	VEOR V1.B16, V1.B16, V1.B16

chloop:
	VLD1.P 64(R0), [V2.S4, V3.S4, V4.S4, V5.S4]
	VUSHR $30, V2.S4, V2.S4
	VUSHR $30, V3.S4, V3.S4
	VUSHR $30, V4.S4, V4.S4
	VUSHR $30, V5.S4, V5.S4
	VAND  V0.B16, V2.B16, V2.B16
	VAND  V0.B16, V3.B16, V3.B16
	VAND  V0.B16, V4.B16, V4.B16
	VAND  V0.B16, V5.B16, V5.B16
	VADD  V3.S4, V2.S4, V2.S4
	VADD  V5.S4, V4.S4, V4.S4
	VADD  V4.S4, V2.S4, V2.S4
	VADD  V2.S4, V1.S4, V1.S4
	SUBS  $16, R1, R1
	BNE   chloop

	VMOV V1.S[0], R2
	VMOV V1.S[1], R3
	ADD  R3, R2, R2
	VMOV V1.S[2], R3
	ADD  R3, R2, R2
	VMOV V1.S[3], R3
	ADD  R3, R2, R2
	MOVD R2, ret+24(FP)
	RET

// func countLogHitsNEON(log []uint8) uint64
// Requires len(log) > 0 and len(log) % 16 == 0. Masks each byte to the
// hit flag and shifts it down to 0/1, then folds the 16 lanes through
// general registers: adding the two qword halves cannot carry between
// bytes (each byte is at most 1), and the 0x01…01 multiply gathers the
// byte sum into the top byte.
TEXT ·countLogHitsNEON(SB), NOSPLIT, $0-32
	MOVD log_base+0(FP), R0
	MOVD log_len+8(FP), R1
	MOVD $0x40, R2
	VDUP R2, V0.B16          // byte 0x40s
	MOVD $0x0101010101010101, R5
	MOVD ZR, R4

clloop:
	VLD1.P 16(R0), [V2.B16]
	VAND  V0.B16, V2.B16, V2.B16
	VUSHR $6, V2.B16, V2.B16 // bytes are now 0 or 1
	VMOV  V2.D[0], R2
	VMOV  V2.D[1], R3
	ADD   R3, R2, R2         // bytewise sums <= 2: no cross-byte carry
	MUL   R5, R2, R2
	LSR   $56, R2, R2
	ADD   R2, R4, R4
	SUBS  $16, R1, R1
	BNE   clloop

	MOVD R4, ret+24(FP)
	RET

// func degreesNEON(cw []uint64, deg []uint8)
// Requires len(cw) > 0 and len(cw) % 2 == 0; writes one byte per
// qword: popcount(w &^ (1 << 63)). VCNT counts per byte; the 0x01…01
// multiply folds the eight byte counts (each <= 8, sum <= 64) into the
// top byte.
TEXT ·degreesNEON(SB), NOSPLIT, $0-48
	MOVD cw_base+0(FP), R0
	MOVD cw_len+8(FP), R1
	MOVD deg_base+24(FP), R2
	MOVD $0x7fffffffffffffff, R3
	VDUP R3, V0.D2           // clears the written bit
	MOVD $0x0101010101010101, R5

dgloop:
	VLD1.P 16(R0), [V1.D2]
	VAND V0.B16, V1.B16, V1.B16
	VCNT V1.B16, V1.B16
	VMOV V1.D[0], R4
	MUL  R5, R4, R4
	LSR  $56, R4, R4
	MOVB R4, (R2)
	VMOV V1.D[1], R4
	MUL  R5, R4, R4
	LSR  $56, R4, R4
	MOVB R4, 1(R2)
	ADD  $2, R2, R2
	SUBS $2, R1, R1
	BNE  dgloop

	RET
