#include "textflag.h"

// Nibble popcount lookup table for VPSHUFB, doubled across both xmm
// lanes of the ymm register.
DATA popLUT<>+0(SB)/8, $0x0302020102010100
DATA popLUT<>+8(SB)/8, $0x0403030203020201
DATA popLUT<>+16(SB)/8, $0x0302020102010100
DATA popLUT<>+24(SB)/8, $0x0403030203020201
GLOBL popLUT<>(SB), RODATA|NOPTR, $32

// func countHitsAVX2(out []uint32) uint64
// Requires len(out) > 0 and len(out) % 32 == 0 (the wrapper's tail
// handling guarantees both). Sums (o >> 30) & 1 over out: four ymm
// loads per iteration into one dword accumulator (each lane gains at
// most 4 per iteration, so lanes cannot overflow below 2^35 elements).
TEXT ·countHitsAVX2(SB), NOSPLIT, $0-32
	MOVQ out_base+0(FP), SI
	MOVQ out_len+8(FP), CX
	MOVL $1, DX
	VMOVD DX, X0
	VPBROADCASTD X0, Y0      // dword 1s
	VPXOR Y1, Y1, Y1         // dword accumulator

chloop:
	VMOVDQU (SI), Y2
	VMOVDQU 32(SI), Y3
	VMOVDQU 64(SI), Y4
	VMOVDQU 96(SI), Y5
	VPSRLD $30, Y2, Y2
	VPSRLD $30, Y3, Y3
	VPSRLD $30, Y4, Y4
	VPSRLD $30, Y5, Y5
	VPAND  Y0, Y2, Y2
	VPAND  Y0, Y3, Y3
	VPAND  Y0, Y4, Y4
	VPAND  Y0, Y5, Y5
	VPADDD Y3, Y2, Y2
	VPADDD Y5, Y4, Y4
	VPADDD Y4, Y2, Y2
	VPADDD Y2, Y1, Y1
	ADDQ   $128, SI
	SUBQ   $32, CX
	JNE    chloop

	VEXTRACTI128 $1, Y1, X2
	VPADDD X2, X1, X1
	VPSHUFD $0x4E, X1, X2
	VPADDD X2, X1, X1
	VPSHUFD $0xB1, X1, X2
	VPADDD X2, X1, X1
	VMOVD X1, AX             // 32-bit move zero-extends into RAX
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET

// func countLogHitsAVX2(log []uint8) uint64
// Requires len(log) > 0 and len(log) % 32 == 0. Masks each byte to the
// hit flag (0x40), sums bytes per qword with VPSADBW, accumulates the
// qword sums and divides the total by 0x40 at the end.
TEXT ·countLogHitsAVX2(SB), NOSPLIT, $0-32
	MOVQ log_base+0(FP), SI
	MOVQ log_len+8(FP), CX
	MOVL $0x40, DX
	VMOVD DX, X0
	VPBROADCASTB X0, Y0      // byte 0x40s
	VPXOR Y1, Y1, Y1         // qword accumulator
	VPXOR Y6, Y6, Y6         // zero, for VPSADBW

clloop:
	VMOVDQU (SI), Y2
	VPAND   Y0, Y2, Y2
	VPSADBW Y6, Y2, Y2       // per-qword byte sums (multiples of 0x40)
	VPADDQ  Y2, Y1, Y1
	ADDQ    $32, SI
	SUBQ    $32, CX
	JNE     clloop

	VEXTRACTI128 $1, Y1, X2
	VPADDQ X2, X1, X1
	VPSHUFD $0x4E, X1, X2
	VPADDQ X2, X1, X1
	VMOVQ X1, AX
	SHRQ $6, AX
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET

// func expandCWAVX2(meta []uint8, cw []uint64)
// Requires len(meta) > 0 and len(meta) % 4 == 0; cw receives one qword
// per meta byte: 1 << (m & 0x7f) | (m & 0x80) << 56. VPSLLVQ lanes
// with shift counts >= 64 produce 0, matching Go's shift semantics for
// the (unreachable under the SoA core cap) byte values 64..127.
TEXT ·expandCWAVX2(SB), NOSPLIT, $0-48
	MOVQ meta_base+0(FP), SI
	MOVQ meta_len+8(FP), CX
	MOVQ cw_base+24(FP), DI
	MOVQ $0x7f, DX
	VMOVQ DX, X0
	VPBROADCASTQ X0, Y0      // qword 0x7f
	MOVQ $1, DX
	VMOVQ DX, X1
	VPBROADCASTQ X1, Y1      // qword 1
	MOVQ $0x80, DX
	VMOVQ DX, X2
	VPBROADCASTQ X2, Y2      // qword 0x80

exloop:
	VPMOVZXBQ (SI), Y3       // 4 meta bytes -> 4 qwords
	VPAND   Y0, Y3, Y4       // core number: m & 0x7f
	VPSLLVQ Y4, Y1, Y4       // 1 << core, per lane
	VPAND   Y2, Y3, Y5       // store flag: m & 0x80
	VPSLLQ  $56, Y5, Y5      // -> bit 63
	VPOR    Y5, Y4, Y4
	VMOVDQU Y4, (DI)
	ADDQ    $4, SI
	ADDQ    $32, DI
	SUBQ    $4, CX
	JNE     exloop

	VZEROUPPER
	RET

// func degreesAVX2(cw []uint64, deg []uint8)
// Requires len(cw) > 0 and len(cw) % 4 == 0; writes one byte per qword:
// popcount(w &^ (1 << 63)) — the written flag masked, core bits
// counted via the VPSHUFB nibble-LUT popcount and a VPSADBW fold.
TEXT ·degreesAVX2(SB), NOSPLIT, $0-48
	MOVQ cw_base+0(FP), SI
	MOVQ cw_len+8(FP), CX
	MOVQ deg_base+24(FP), DI
	VMOVDQU popLUT<>(SB), Y0
	MOVQ $0x0f0f0f0f0f0f0f0f, DX
	VMOVQ DX, X1
	VPBROADCASTQ X1, Y1      // nibble mask
	MOVQ $0x7fffffffffffffff, DX
	VMOVQ DX, X2
	VPBROADCASTQ X2, Y2      // clears the written bit
	VPXOR Y6, Y6, Y6         // zero, for VPSADBW

dgloop:
	VMOVDQU (SI), Y3
	VPAND   Y2, Y3, Y3
	VPAND   Y1, Y3, Y4       // low nibbles
	VPSRLW  $4, Y3, Y5
	VPAND   Y1, Y5, Y5       // high nibbles
	VPSHUFB Y4, Y0, Y4
	VPSHUFB Y5, Y0, Y5
	VPADDB  Y5, Y4, Y4       // per-byte popcounts
	VPSADBW Y6, Y4, Y4       // per-qword popcounts
	VEXTRACTI128 $1, Y4, X5
	VMOVQ   X4, DX
	MOVB    DL, (DI)
	VPEXTRQ $1, X4, DX
	MOVB    DL, 1(DI)
	VMOVQ   X5, DX
	MOVB    DL, 2(DI)
	VPEXTRQ $1, X5, DX
	MOVB    DL, 3(DI)
	ADDQ    $32, SI
	ADDQ    $4, DI
	SUBQ    $4, CX
	JNE     dgloop

	VZEROUPPER
	RET
