package simd

import (
	"math/bits"
	"math/rand"
	"testing"
)

// Scalar reference implementations: the per-element loops the sharing
// package runs under SIMDOff, restated here so all three tiers are
// held to the same ground truth.

func refCountHits(out []uint32) uint64 {
	var s uint64
	for _, o := range out {
		s += uint64(o>>HitShift) & 1
	}
	return s
}

func refCountLogHits(log []uint8) uint64 {
	var s uint64
	for _, b := range log {
		if b&LogHit != 0 {
			s++
		}
	}
	return s
}

func refExpandCW(meta []uint8, cw []uint64) {
	for k, m := range meta {
		cw[k] = uint64(1)<<(m&^0x80) | uint64(m&0x80)<<56
	}
}

func refDegrees(cw []uint64, deg []uint8) {
	for k, w := range cw {
		deg[k] = uint8(bits.OnesCount64(w &^ CWWritten))
	}
}

// testLengths covers empty input, every sub-vector tail length, odd
// straddles of each kernel's unroll width, and a few large sizes
// (including the sharing package's chunk size).
func testLengths() []int {
	ls := make([]int, 0, 80)
	for n := 0; n <= 70; n++ {
		ls = append(ls, n)
	}
	return append(ls, 127, 128, 1000, 2048, 4096)
}

func TestCountHitsTiers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range testLengths() {
		out := make([]uint32, n)
		for k := range out {
			out[k] = rng.Uint32()
		}
		want := refCountHits(out)
		if got := CountHitsSWAR(out); got != want {
			t.Fatalf("CountHitsSWAR(n=%d) = %d, want %d", n, got, want)
		}
		if got := CountHits(out); got != want {
			t.Fatalf("CountHits(n=%d) = %d, want %d (asm=%v)", n, got, want, HasAsm())
		}
	}
}

func TestCountLogHitsTiers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range testLengths() {
		log := make([]uint8, n)
		for k := range log {
			log[k] = uint8(rng.Uint32())
		}
		want := refCountLogHits(log)
		if got := CountLogHitsSWAR(log); got != want {
			t.Fatalf("CountLogHitsSWAR(n=%d) = %d, want %d", n, got, want)
		}
		if got := CountLogHits(log); got != want {
			t.Fatalf("CountLogHits(n=%d) = %d, want %d (asm=%v)", n, got, want, HasAsm())
		}
	}
}

func TestExpandCWTiers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range testLengths() {
		meta := make([]uint8, n)
		for k := range meta {
			meta[k] = uint8(rng.Uint32())
		}
		if n >= 4 {
			// Pin the boundary byte values: core 63 (top packed-word
			// core bit), 64..127 (out-of-range cores, must expand to a
			// zero core mask exactly like Go's oversized shifts), and
			// the store flag alone.
			meta[0], meta[1], meta[2], meta[3] = 63, 64, 127, 0x80
		}
		want := make([]uint64, n)
		refExpandCW(meta, want)
		got := make([]uint64, n)
		ExpandCWSWAR(meta, got)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("ExpandCWSWAR(n=%d)[%d] = %#x, want %#x (meta %#x)", n, k, got[k], want[k], meta[k])
			}
		}
		clear(got)
		ExpandCW(meta, got)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("ExpandCW(n=%d)[%d] = %#x, want %#x (meta %#x, asm=%v)", n, k, got[k], want[k], meta[k], HasAsm())
			}
		}
	}
}

func TestDegreesTiers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range testLengths() {
		cw := make([]uint64, n)
		for k := range cw {
			cw[k] = rng.Uint64()
		}
		if n >= 4 {
			cw[0], cw[1], cw[2], cw[3] = 0, CWWritten, ^uint64(0), CWWritten|1
		}
		want := make([]uint8, n)
		refDegrees(cw, want)
		got := make([]uint8, n)
		DegreesSWAR(cw, got)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("DegreesSWAR(n=%d)[%d] = %d, want %d (cw %#x)", n, k, got[k], want[k], cw[k])
			}
		}
		clear(got)
		Degrees(cw, got)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("Degrees(n=%d)[%d] = %d, want %d (cw %#x, asm=%v)", n, k, got[k], want[k], cw[k], HasAsm())
			}
		}
	}
}

// benchN matches the sharing package's chunk size (batchSize), the
// length every kernel actually runs at.
const benchN = 2 << 10

func BenchmarkCountHits(b *testing.B) {
	out := make([]uint32, benchN)
	rng := rand.New(rand.NewSource(5))
	for k := range out {
		out[k] = rng.Uint32()
	}
	var sink uint64
	b.Run("asm", func(b *testing.B) {
		if !HasAsm() {
			b.Skip("no assembly tier")
		}
		b.SetBytes(4 * benchN)
		for i := 0; i < b.N; i++ {
			sink += CountHits(out)
		}
	})
	b.Run("swar", func(b *testing.B) {
		b.SetBytes(4 * benchN)
		for i := 0; i < b.N; i++ {
			sink += CountHitsSWAR(out)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(4 * benchN)
		for i := 0; i < b.N; i++ {
			sink += refCountHits(out)
		}
	})
	_ = sink
}

func BenchmarkCountLogHits(b *testing.B) {
	log := make([]uint8, benchN)
	rng := rand.New(rand.NewSource(6))
	for k := range log {
		log[k] = uint8(rng.Uint32())
	}
	var sink uint64
	b.Run("asm", func(b *testing.B) {
		if !HasAsm() {
			b.Skip("no assembly tier")
		}
		b.SetBytes(benchN)
		for i := 0; i < b.N; i++ {
			sink += CountLogHits(log)
		}
	})
	b.Run("swar", func(b *testing.B) {
		b.SetBytes(benchN)
		for i := 0; i < b.N; i++ {
			sink += CountLogHitsSWAR(log)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(benchN)
		for i := 0; i < b.N; i++ {
			sink += refCountLogHits(log)
		}
	})
	_ = sink
}

func BenchmarkExpandCW(b *testing.B) {
	meta := make([]uint8, benchN)
	rng := rand.New(rand.NewSource(7))
	for k := range meta {
		meta[k] = uint8(rng.Uint32()) & 0xbf
	}
	cw := make([]uint64, benchN)
	b.Run("asm", func(b *testing.B) {
		if !HasAsm() {
			b.Skip("no assembly tier")
		}
		b.SetBytes(benchN)
		for i := 0; i < b.N; i++ {
			ExpandCW(meta, cw)
		}
	})
	b.Run("swar", func(b *testing.B) {
		b.SetBytes(benchN)
		for i := 0; i < b.N; i++ {
			ExpandCWSWAR(meta, cw)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(benchN)
		for i := 0; i < b.N; i++ {
			refExpandCW(meta, cw)
		}
	})
}

func BenchmarkDegrees(b *testing.B) {
	cw := make([]uint64, benchN)
	rng := rand.New(rand.NewSource(8))
	for k := range cw {
		cw[k] = rng.Uint64()
	}
	deg := make([]uint8, benchN)
	b.Run("asm", func(b *testing.B) {
		if !HasAsm() {
			b.Skip("no assembly tier")
		}
		b.SetBytes(8 * benchN)
		for i := 0; i < b.N; i++ {
			Degrees(cw, deg)
		}
	})
	b.Run("swar", func(b *testing.B) {
		b.SetBytes(8 * benchN)
		for i := 0; i < b.N; i++ {
			DegreesSWAR(cw, deg)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(8 * benchN)
		for i := 0; i < b.N; i++ {
			refDegrees(cw, deg)
		}
	})
}
