package simd

// arm64 dispatchers. NEON is architecturally baseline on arm64, so
// there is no runtime detection; the asm bodies require their stated
// length multiples and a non-zero length, enforced here. ExpandCW has
// no NEON body: the per-lane variable shift it needs (USHL by a vector
// of counts) buys nothing over the four-ALU-op SWAR expansion on
// 2-lane qword vectors, so the SWAR tier is the arm64 implementation.

var hasAsm = true

//go:noescape
func countHitsNEON(out []uint32) uint64

//go:noescape
func countLogHitsNEON(log []uint8) uint64

//go:noescape
func degreesNEON(cw []uint64, deg []uint8)

// CountHits returns the number of outcome words with the hit flag set.
func CountHits(out []uint32) uint64 {
	n := len(out) &^ 15
	var s uint64
	if n > 0 {
		s = countHitsNEON(out[:n])
	}
	return s + CountHitsSWAR(out[n:])
}

// CountLogHits returns the number of outcome-log bytes with the hit
// flag set.
func CountLogHits(log []uint8) uint64 {
	n := len(log) &^ 15
	var s uint64
	if n > 0 {
		s = countLogHitsNEON(log[:n])
	}
	return s + CountLogHitsSWAR(log[n:])
}

// ExpandCW expands packed meta bytes into core/write words (see
// ExpandCWSWAR for the encoding). len(cw) must be at least len(meta).
func ExpandCW(meta []uint8, cw []uint64) {
	ExpandCWSWAR(meta, cw)
}

// Degrees writes each core/write word's core popcount (the CWWritten
// bit masked) into deg. len(deg) must be at least len(cw).
func Degrees(cw []uint64, deg []uint8) {
	n := len(cw) &^ 1
	if n > 0 {
		degreesNEON(cw[:n], deg[:n])
	}
	DegreesSWAR(cw[n:], deg[n:len(cw)])
}
