package simd

// AVX2 feature detection without a dependency on golang.org/x/sys/cpu
// (the module is dependency-free): the standard CPUID/XGETBV dance —
// leaf 1 for OSXSAVE+AVX, XCR0 for OS-enabled XMM|YMM state, leaf 7
// for AVX2 itself.

var hasAsm = detectAVX2()

// cpuid executes CPUID with the given leaf/subleaf. Implemented in
// detect_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0. Call only when CPUID leaf 1 reports OSXSAVE.
func xgetbv0() (eax, edx uint32)

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	_, _, c1, _ := cpuid(1, 0)
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (XMM) and 2 (YMM) must both be OS-enabled.
	xlo, _ := xgetbv0()
	if xlo&0x6 != 0x6 {
		return false
	}
	const avx2 = 1 << 5
	_, b7, _, _ := cpuid(7, 0)
	return b7&avx2 != 0
}
