//go:build !amd64 && !arm64

package simd

// Pure-Go build: no assembly tier; the auto-dispatching functions are
// exactly the SWAR tier.

var hasAsm = false

// CountHits returns the number of outcome words with the hit flag set.
func CountHits(out []uint32) uint64 { return CountHitsSWAR(out) }

// CountLogHits returns the number of outcome-log bytes with the hit
// flag set.
func CountLogHits(log []uint8) uint64 { return CountLogHitsSWAR(log) }

// ExpandCW expands packed meta bytes into core/write words.
func ExpandCW(meta []uint8, cw []uint64) { ExpandCWSWAR(meta, cw) }

// Degrees writes each core/write word's core popcount into deg.
func Degrees(cw []uint64, deg []uint8) { DegreesSWAR(cw, deg) }
