// Package simd holds the explicit data-parallel kernels behind the
// sharing replay's hot column loops: the branch-free hit count over a
// chunk's outcome words, the outcome-log hit scan, the meta-byte →
// core/write-word expansion and the masked popcount over captured
// core/write words.
//
// Every kernel exists in (up to) three tiers:
//
//   - assembly — hand-written AVX2 (amd64, gated on runtime CPUID
//     detection) and NEON (arm64, baseline) in the build-tagged .s
//     files, reached through //go:noescape wrappers. The wrappers
//     handle lengths that are not a multiple of the vector width, so
//     the assembly bodies only ever see whole vectors.
//   - SWAR — the exported *SWAR functions: portable Go that processes
//     multiple elements per iteration with plain word arithmetic
//     (math/bits popcounts, byte-packed masks). This is the whole
//     story on architectures without assembly, and the middle tier
//     (sharing.SIMDSWAR) everywhere else.
//   - scalar — the original per-element loops living in
//     internal/sharing, untouched, selected by sharing.SIMDOff.
//
// All tiers are bit-identical by construction and held so by the
// differential tests here and in internal/sharing. The package knows
// nothing about selection policy: internal/sharing binds a tier per
// replay (Options.SIMD plus the SHARELLC_SIMD env gate) and calls
// either the auto-dispatching functions (CountHits, ...) or the SWAR
// ones directly.
package simd

import (
	"encoding/binary"
	"math/bits"
)

// Bit-layout contracts shared with internal/sharing, pinned there at
// compile time so the encodings cannot drift apart.
const (
	// HitShift is the outcome-word bit position of the hit flag
	// (cache.BatchHit): CountHits sums (o >> HitShift) & 1.
	HitShift = 30
	// LogHit is the outcome-log hit flag (sharing's logHit byte bit):
	// CountLogHits counts bytes with it set.
	LogHit = uint8(1 << 6)
	// CWWritten is the store bit of the packed core/write word
	// (sharing's cwWritten): Degrees masks it before counting cores.
	CWWritten = uint64(1) << 63
)

// HasAsm reports whether the assembly tier is available: AVX2 detected
// on amd64, always on arm64 (NEON is baseline), never elsewhere. When
// false the auto-dispatching functions are exactly the SWAR tier.
func HasAsm() bool { return hasAsm }

// CountHitsSWAR returns the number of outcome words in out with the
// hit flag set, four words per iteration through independent
// accumulators.
func CountHitsSWAR(out []uint32) uint64 {
	var a, b, c, d uint64
	n := len(out) &^ 3
	for k := 0; k < n; k += 4 {
		a += uint64(out[k]>>HitShift) & 1
		b += uint64(out[k+1]>>HitShift) & 1
		c += uint64(out[k+2]>>HitShift) & 1
		d += uint64(out[k+3]>>HitShift) & 1
	}
	for _, o := range out[n:] {
		a += uint64(o>>HitShift) & 1
	}
	return a + b + c + d
}

// CountLogHitsSWAR returns the number of outcome-log bytes in log with
// the hit flag set: eight bytes at a time as one word, masked to the
// hit bits and popcounted.
func CountLogHitsSWAR(log []uint8) uint64 {
	const hits8 = uint64(LogHit) * 0x0101010101010101
	var s uint64
	n := len(log) &^ 7
	for k := 0; k < n; k += 8 {
		w := binary.LittleEndian.Uint64(log[k:])
		s += uint64(bits.OnesCount64(w & hits8))
	}
	for _, b := range log[n:] {
		s += uint64(b&LogHit) >> 6
	}
	return s
}

// ExpandCWSWAR expands each packed meta byte (low 7 bits core, top bit
// store) into a core/write word: bit core set, CWWritten carrying the
// store flag. Shift counts ≥ 64 produce 0, matching Go shift semantics
// and the VPSLLVQ lanes of the assembly tier. len(cw) must be at least
// len(meta).
func ExpandCWSWAR(meta []uint8, cw []uint64) {
	cw = cw[:len(meta)]
	n := len(meta) &^ 3
	for k := 0; k < n; k += 4 {
		m0, m1, m2, m3 := meta[k], meta[k+1], meta[k+2], meta[k+3]
		cw[k] = uint64(1)<<(m0&0x7f) | uint64(m0&0x80)<<56
		cw[k+1] = uint64(1)<<(m1&0x7f) | uint64(m1&0x80)<<56
		cw[k+2] = uint64(1)<<(m2&0x7f) | uint64(m2&0x80)<<56
		cw[k+3] = uint64(1)<<(m3&0x7f) | uint64(m3&0x80)<<56
	}
	for k := n; k < len(meta); k++ {
		m := meta[k]
		cw[k] = uint64(1)<<(m&0x7f) | uint64(m&0x80)<<56
	}
}

// DegreesSWAR writes, for each core/write word, the number of core
// bits set (the sharing degree of the residency it came from), masking
// the CWWritten store flag. math/bits lowers to a popcount instruction
// where one exists and to its own SWAR reduction elsewhere. len(deg)
// must be at least len(cw).
func DegreesSWAR(cw []uint64, deg []uint8) {
	deg = deg[:len(cw)]
	for k, w := range cw {
		deg[k] = uint8(bits.OnesCount64(w &^ CWWritten))
	}
}
