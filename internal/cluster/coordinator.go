package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"sharellc/internal/report"
	"sharellc/internal/sim"
	"sharellc/internal/sim/streamcache"
)

// CoordinatorConfig sizes a Coordinator.
type CoordinatorConfig struct {
	// Cache, when non-nil, lets the coordinator serve snapshots it holds
	// via GET /v1/streams/{hash} and advertise itself as a source.
	Cache *streamcache.Cache
	// SelfURL is the coordinator's own base URL as workers reach it
	// (advertised as a stream source). Empty disables the advertisement;
	// workers still fall back to their configured coordinator URL.
	SelfURL string
	// LeaseTTL is how long a worker owns a bundle between heartbeats
	// before it is re-queued. 0 means 15s.
	LeaseTTL time.Duration
	// MaxAttempts bounds lease attempts per bundle before the owning job
	// fails (a bundle that kills every worker that touches it must not
	// re-queue forever). 0 means 5.
	MaxAttempts int
	Now         func() time.Time // test hook; nil means time.Now
}

// CoordinatorStats is a snapshot of the scheduler's counters, exported
// on /metrics as the sharesimd_bundles_* and sharesimd_stream_* series.
type CoordinatorStats struct {
	Jobs            int    // jobs ever admitted (counter)
	JobsInflight    int    // jobs not yet terminal (gauge)
	BundlesPending  int    // gauge
	BundlesInflight int    // leased, not yet resolved (gauge)
	BundlesDone     uint64 // counter
	BundlesRequeued uint64 // lease expiries re-queued (counter)
	BundlesFailed   uint64 // failed result posts / decode rejects (counter)
	StreamServes    uint64 // GET /v1/streams hits served (counter)
	StreamBytes     uint64 // bytes served (counter)
}

const (
	bundlePending = iota
	bundleLeased
	bundleDone
)

// bundle is the coordinator-side state of one protocol Bundle.
type bundle struct {
	proto Bundle
	job   *job
	kind  string // row kind for spec bundles, "" for whole-experiment

	state    int
	worker   string
	expiry   time.Time
	attempts int

	rows   any             // decoded rows (spec bundles)
	tables []*report.Table // decoded tables (whole-experiment bundles)
}

// expPlan is one experiment of a job, in request order.
type expPlan struct {
	id     string
	specs  []sim.TableSpec // sliceable experiments
	inline []*report.Table // config/suite, run at submit time
	whole  *bundle
	// slices[specIdx][workloadIdx], in canonical merge order.
	slices [][]*bundle
}

// job is one admitted request and its bundles.
type job struct {
	key   string
	req   Request
	exps  []*expPlan
	total int
	done  int

	err      error
	tables   []*report.Table
	doneCh   chan struct{}
	progress func(done, total int, label string)
}

func (j *job) terminal() bool {
	select {
	case <-j.doneCh:
		return true
	default:
		return false
	}
}

// Coordinator owns the bundle scheduler. It is transport-agnostic — Run
// is callable in-process (the daemon's distributed runner does) and the
// HTTP handlers under Register adapt the worker-facing protocol.
type Coordinator struct {
	cfg CoordinatorConfig
	now func() time.Time

	mu      sync.Mutex
	jobs    map[string]*job
	bundles map[string]*bundle
	queue   []*bundle
	// holders: stream hash -> worker base URLs known to hold it.
	holders map[string]map[string]bool
	// building: stream hash -> the leased bundle expected to materialize
	// it. Other bundles needing the hash defer until it is available or
	// the lease dies, so each stream is built at most once cluster-wide.
	building map[string]*bundle
	stats    CoordinatorStats
}

// NewCoordinator builds a Coordinator.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Coordinator{
		cfg:      cfg,
		now:      now,
		jobs:     map[string]*job{},
		bundles:  map[string]*bundle{},
		holders:  map[string]map[string]bool{},
		building: map[string]*bundle{},
	}
}

// Run submits a request, blocks until every bundle has been executed by
// some worker, and returns the merged tables — byte-identical to what a
// single daemon produces for the same request. Identical concurrent
// requests coalesce onto one job. Cancelling ctx abandons the wait (the
// job itself keeps draining so a later identical submission is a join,
// not a re-run).
func (c *Coordinator) Run(ctx context.Context, req Request, progress func(done, total int, label string)) ([]*report.Table, error) {
	if err := req.Normalize(); err != nil {
		return nil, err
	}
	key := req.Key()

	c.mu.Lock()
	j, ok := c.jobs[key]
	if ok && j.err != nil && j.terminal() {
		// A previously failed job blocks the key forever otherwise;
		// admit a fresh attempt.
		ok = false
	}
	if !ok {
		var err error
		j, err = c.admitLocked(key, req, progress)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
	}
	total := j.total
	c.mu.Unlock()

	if progress != nil {
		progress(0, total, "bundles queued")
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-j.doneCh:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if j.err != nil {
		return nil, j.err
	}
	return j.tables, nil
}

// admitLocked plans a job's bundles and queues them. Caller holds c.mu.
func (c *Coordinator) admitLocked(key string, req Request, progress func(int, int, string)) (*job, error) {
	j := &job{key: key, req: req, doneCh: make(chan struct{}), progress: progress}
	order := req.WorkloadOrder()
	opts := req.Options()
	for _, id := range req.Exps {
		exp, err := sim.ExperimentByID(id)
		if err != nil {
			return nil, err
		}
		p := &expPlan{id: id}
		switch specs, ok := sim.PlanFor(id, opts); {
		case !exp.NeedsSuite:
			// Static description tables: cheap, run inline right here.
			tables, err := exp.Run(nil, opts)
			if err != nil {
				return nil, err
			}
			p.inline = tables
		case ok:
			p.specs = specs
			p.slices = make([][]*bundle, len(specs))
			for si := range specs {
				p.slices[si] = make([]*bundle, len(order))
				for wi, w := range order {
					ref, err := req.StreamRefFor(w, req.Seed)
					if err != nil {
						return nil, err
					}
					b := &bundle{
						proto: Bundle{
							ID:       BundleID(key, id, si, w),
							Job:      key,
							Exp:      id,
							Spec:     si,
							Workload: w,
							Request:  req,
							Streams:  []StreamRef{ref},
						},
						job:  j,
						kind: specs[si].Kind,
					}
					p.slices[si][wi] = b
				}
			}
		default:
			// Whole-experiment bundle. a5 regenerates a fixed workload
			// subset whose request-seed streams share hashes with the
			// primary suite; naming them here lets the executing worker
			// peer-fetch instead of rebuilding.
			var refs []StreamRef
			if id == "a5" {
				for _, w := range sim.A5Workloads() {
					ref, err := req.StreamRefFor(w, req.Seed)
					if err != nil {
						return nil, err
					}
					refs = append(refs, ref)
				}
			}
			p.whole = &bundle{
				proto: Bundle{
					ID:      BundleID(key, id, WholeExperiment, ""),
					Job:     key,
					Exp:     id,
					Spec:    WholeExperiment,
					Request: req,
					Streams: refs,
				},
				job: j,
			}
		}
		j.exps = append(j.exps, p)
	}
	// Queue in plan order; the lease scan plus stream gating takes care
	// of spreading workloads across workers.
	for _, p := range j.exps {
		for _, row := range p.slices {
			for _, b := range row {
				c.enqueueLocked(b)
				j.total++
			}
		}
		if p.whole != nil {
			c.enqueueLocked(p.whole)
			j.total++
		}
	}
	c.jobs[key] = j
	c.stats.Jobs++
	if j.total == 0 {
		c.finishLocked(j) // purely static request (config/suite only)
	}
	return j, nil
}

func (c *Coordinator) enqueueLocked(b *bundle) {
	c.bundles[b.proto.ID] = b
	c.queue = append(c.queue, b)
}

// available reports whether some node already holds the stream, so a
// bundle needing it need not be gated behind the builder's lease.
func (c *Coordinator) availableLocked(hash string) bool {
	if len(c.holders[hash]) > 0 {
		return true
	}
	return c.cfg.Cache != nil && c.cfg.Cache.Contains(hash)
}

// gatedLocked reports whether b must wait: some stream it needs is
// neither available anywhere nor being built under b's own lease.
func (c *Coordinator) gatedLocked(b *bundle) bool {
	for _, ref := range b.proto.Streams {
		if c.availableLocked(ref.Hash) {
			continue
		}
		if builder, ok := c.building[ref.Hash]; ok && builder != b {
			return true
		}
	}
	return false
}

// reapLocked re-queues expired leases and fails bundles that exhausted
// their attempts. Called lazily from every protocol entry point.
func (c *Coordinator) reapLocked() {
	now := c.now()
	for _, b := range c.bundles {
		if b.state != bundleLeased || now.Before(b.expiry) {
			continue
		}
		c.releaseBuildingLocked(b)
		b.state = bundlePending
		b.worker = ""
		c.stats.BundlesRequeued++
		if b.attempts >= c.cfg.MaxAttempts {
			c.failBundleLocked(b, fmt.Errorf("bundle %s (%s/%d/%s) abandoned after %d lease attempts",
				b.proto.ID, b.proto.Exp, b.proto.Spec, b.proto.Workload, b.attempts))
			continue
		}
		c.queue = append(c.queue, b)
	}
}

func (c *Coordinator) releaseBuildingLocked(b *bundle) {
	for hash, builder := range c.building {
		if builder == b {
			delete(c.building, hash)
		}
	}
}

// failBundleLocked fails the owning job; its remaining bundles stop
// being leased (the scan skips bundles of terminal jobs).
func (c *Coordinator) failBundleLocked(b *bundle, err error) {
	b.state = bundleDone
	c.stats.BundlesFailed++
	j := b.job
	if !j.terminal() {
		j.err = err
		close(j.doneCh)
	}
}

// Errors the HTTP layer maps onto status codes.
var (
	ErrUnknownBundle = errors.New("unknown bundle")
	ErrLeaseLost     = errors.New("lease lost")
)

// Lease hands the next runnable bundle to worker, or ok=false when
// nothing is currently runnable (no work, or every candidate is gated
// behind an in-flight stream build).
func (c *Coordinator) Lease(worker string) (LeaseResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()

	kept := c.queue[:0]
	var chosen *bundle
	for _, b := range c.queue {
		if b.state != bundlePending || b.job.terminal() {
			continue // drop resolved entries during the scan
		}
		if chosen == nil && !c.gatedLocked(b) {
			chosen = b
			continue // leased: out of the queue
		}
		kept = append(kept, b)
	}
	for i := len(kept); i < len(c.queue); i++ {
		c.queue[i] = nil
	}
	c.queue = kept
	if chosen == nil {
		return LeaseResponse{}, false
	}

	chosen.state = bundleLeased
	chosen.worker = worker
	chosen.expiry = c.now().Add(c.cfg.LeaseTTL)
	chosen.attempts++
	// Claim the streams this lease is now expected to materialize, and
	// tell the worker where the already-available ones live.
	out := chosen.proto
	out.Streams = append([]StreamRef(nil), chosen.proto.Streams...)
	for i, ref := range out.Streams {
		if !c.availableLocked(ref.Hash) {
			c.building[ref.Hash] = chosen
		}
		var sources []string
		for h := range c.holders[ref.Hash] {
			if h != "" && h != worker {
				sources = append(sources, h)
			}
		}
		if c.cfg.SelfURL != "" && c.cfg.Cache != nil && c.cfg.Cache.Contains(ref.Hash) {
			sources = append(sources, c.cfg.SelfURL)
		}
		out.Streams[i].Sources = sources
	}
	return LeaseResponse{Bundle: out, TTLMillis: c.cfg.LeaseTTL.Milliseconds()}, true
}

// Heartbeat extends worker's lease on a bundle.
func (c *Coordinator) Heartbeat(id, worker string) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	b, ok := c.bundles[id]
	if !ok {
		return HeartbeatResponse{}, ErrUnknownBundle
	}
	if b.state != bundleLeased || b.worker != worker {
		return HeartbeatResponse{}, ErrLeaseLost
	}
	b.expiry = c.now().Add(c.cfg.LeaseTTL)
	return HeartbeatResponse{TTLMillis: c.cfg.LeaseTTL.Milliseconds()}, nil
}

// Result accepts a bundle's outcome. Results are accepted from any
// worker for any unresolved bundle — including one whose lease expired
// or that this coordinator never leased (restart re-adoption) — because
// execution is deterministic: whoever finishes first wins, duplicates
// are idempotent.
func (c *Coordinator) Result(id string, res BundleResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	b, ok := c.bundles[id]
	if !ok {
		return ErrUnknownBundle
	}
	// Record stream custody regardless of outcome: a worker that fetched
	// or built streams can serve peers even if its run then failed.
	if res.Worker != "" {
		for _, hash := range res.Built {
			if c.holders[hash] == nil {
				c.holders[hash] = map[string]bool{}
			}
			c.holders[hash][res.Worker] = true
		}
	}
	if b.state == bundleDone || b.job.terminal() {
		return nil // duplicate or moot: idempotent accept
	}

	fail := func(err error) error {
		c.releaseBuildingLocked(b)
		b.state = bundlePending
		b.worker = ""
		c.stats.BundlesFailed++
		if b.attempts >= c.cfg.MaxAttempts {
			c.failBundleLocked(b, fmt.Errorf("bundle %s (%s/%d/%s): %w",
				b.proto.ID, b.proto.Exp, b.proto.Spec, b.proto.Workload, err))
			return nil
		}
		c.queue = append(c.queue, b)
		return nil
	}
	if res.Err != "" {
		return fail(errors.New(res.Err))
	}
	if b.proto.Spec == WholeExperiment {
		tables := make([]*report.Table, len(res.Tables))
		for i, raw := range res.Tables {
			var t report.Table
			if err := json.Unmarshal(raw, &t); err != nil {
				return fail(fmt.Errorf("undecodable table payload: %w", err))
			}
			tables[i] = &t
		}
		b.tables = tables
	} else {
		rows, err := sim.DecodeRows(b.kind, res.Rows)
		if err != nil {
			return fail(err)
		}
		b.rows = rows
	}

	c.releaseBuildingLocked(b)
	b.state = bundleDone
	b.worker = res.Worker
	c.stats.BundlesDone++
	j := b.job
	j.done++
	if j.progress != nil {
		label := fmt.Sprintf("bundle %s", b.proto.Exp)
		if b.proto.Workload != "" {
			label = fmt.Sprintf("bundle %s[%d] %s", b.proto.Exp, b.proto.Spec, b.proto.Workload)
		}
		j.progress(j.done, j.total, label)
	}
	if j.done == j.total {
		c.finishLocked(j)
	}
	return nil
}

// finishLocked merges a completed job's partial rows into final tables,
// in request order, each spec's rows appended workload by workload in
// canonical suite order — exactly the row order a whole-suite run
// produces, so the rendered tables are byte-identical to the direct path.
func (c *Coordinator) finishLocked(j *job) {
	var tables []*report.Table
	for _, p := range j.exps {
		switch {
		case p.inline != nil:
			tables = append(tables, p.inline...)
		case p.whole != nil:
			tables = append(tables, p.whole.tables...)
		default:
			for si, spec := range p.specs {
				var merged any
				for _, b := range p.slices[si] {
					m, err := sim.MergeRows(spec.Kind, merged, b.rows)
					if err != nil {
						j.err = err
						close(j.doneCh)
						return
					}
					merged = m
				}
				tables = append(tables, spec.Render(merged))
			}
		}
	}
	j.tables = tables
	close(j.doneCh)
}

// Stats snapshots the scheduler counters.
func (c *Coordinator) Stats() CoordinatorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	for _, b := range c.bundles {
		if b.job.terminal() {
			continue
		}
		switch b.state {
		case bundlePending:
			s.BundlesPending++
		case bundleLeased:
			s.BundlesInflight++
		}
	}
	for _, j := range c.jobs {
		if !j.terminal() {
			s.JobsInflight++
		}
	}
	return s
}

// Register mounts the coordinator's worker-facing protocol on mux.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/cluster/lease", c.handleLease)
	mux.HandleFunc("POST /v1/cluster/bundles/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/cluster/bundles/{id}/result", c.handleResult)
	mux.HandleFunc("GET /v1/streams/{hash}", StreamHandler(c.cfg.Cache, func(n int) {
		c.mu.Lock()
		c.stats.StreamServes++
		c.stats.StreamBytes += uint64(n)
		c.mu.Unlock()
	}))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid lease request: %w", err))
		return
	}
	if err := CheckProto(req.Proto); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	lease, ok := c.Lease(req.Worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, lease)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid heartbeat: %w", err))
		return
	}
	if err := CheckProto(req.Proto); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	hb, err := c.Heartbeat(r.PathValue("id"), req.Worker)
	switch {
	case errors.Is(err, ErrUnknownBundle):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrLeaseLost):
		writeError(w, http.StatusConflict, err)
	default:
		writeJSON(w, http.StatusOK, hb)
	}
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var res BundleResult
	if err := decodeBody(r, &res); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid result: %w", err))
		return
	}
	if err := CheckProto(res.Proto); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := c.Result(r.PathValue("id"), res); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "accepted"})
}

// StreamHandler serves content-addressed snapshot images from a stream
// cache: GET /v1/streams/{hash}. Both coordinator and workers mount it,
// so any peer can be a source. A nil cache always 404s.
func StreamHandler(sc *streamcache.Cache, served func(bytes int)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		if sc == nil {
			http.Error(w, "no stream cache on this node", http.StatusNotFound)
			return
		}
		data, ok := sc.SnapshotBytes(hash)
		if !ok {
			http.Error(w, "unknown stream "+hash, http.StatusNotFound)
			return
		}
		if served != nil {
			served(len(data))
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprintf("%d", len(data)))
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	}
}

// ReadAllLimited guards peer-transfer reads: snapshots are tens of MB at
// most; a source that streams more than the cap is misbehaving and the
// transfer falls soft to the next source.
func ReadAllLimited(r io.Reader, limit int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("response exceeds %d-byte snapshot cap", limit)
	}
	return data, nil
}
