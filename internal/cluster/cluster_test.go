package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sharellc/internal/cache"
	"sharellc/internal/report"
	"sharellc/internal/sharing"
	"sharellc/internal/sim"
	"sharellc/internal/sim/streamcache"
)

// tinyMachine keeps whole-catalogue runs in test time.
var tinyMachine = cache.Config{
	Cores:  8,
	L1Size: 2 * cache.KB, L1Ways: 2,
	L2Size: 8 * cache.KB, L2Ways: 4,
	LLCSize: 64 * cache.KB, LLCWays: 8,
}

func testRequest(exps []string) Request {
	return Request{
		Exps:      exps,
		Machine:   &tinyMachine,
		LLCMB:     float64(tinyMachine.LLCSize) / float64(cache.MB),
		Ways:      tinyMachine.LLCWays,
		Seed:      1,
		Scale:     0.02,
		Workloads: []string{"canneal", "streamcluster", "swaptions"},
	}
}

// directTables runs req the way a single daemon would, for byte-compare.
func directTables(t *testing.T, req Request) []*report.Table {
	t.Helper()
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	opts := req.Options()
	var suite *sim.Suite
	var out []*report.Table
	for _, id := range req.Exps {
		exp, err := sim.ExperimentByID(id)
		if err != nil {
			t.Fatal(err)
		}
		var s *sim.Suite
		if exp.NeedsSuite {
			if suite == nil {
				models, err := sim.ModelsByName(req.Workloads)
				if err != nil {
					t.Fatal(err)
				}
				suite, err = sim.NewSuite(sim.Config{
					Machine: req.MachineConfig(),
					Seed:    req.Seed,
					Scale:   req.Scale,
					Models:  models,
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			s = suite
		}
		tabs, err := exp.Run(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tabs...)
	}
	return out
}

func marshalTables(t *testing.T, tables []*report.Table) []byte {
	t.Helper()
	var b bytes.Buffer
	for _, tab := range tables {
		raw, err := json.Marshal(tab)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(raw)
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// startCoordinator serves c over a real HTTP listener.
func startCoordinator(t *testing.T, cfg CoordinatorConfig) (*Coordinator, *httptest.Server) {
	t.Helper()
	c := NewCoordinator(cfg)
	mux := http.NewServeMux()
	c.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return c, ts
}

// startWorker launches a polling worker with its own peer-serving
// listener and stream cache.
func startWorker(t *testing.T, ctx context.Context, coordURL string, opts streamcache.Options) *Worker {
	t.Helper()
	mux := http.NewServeMux()
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	w, err := NewWorker(WorkerConfig{
		CoordinatorURL: coordURL,
		SelfURL:        ts.URL,
		Cache:          streamcache.New(opts),
		Kernel:         sharing.KernelBatch,
		Poll:           10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Register(mux)
	go w.Run(ctx)
	return w
}

// TestClusterE2EByteIdentical: three workers over real HTTP execute a
// sweep and the merged tables are byte-identical to the direct run.
// Every workload stream is built at most once cluster-wide: later
// bundles peer-fetch instead of rebuilding.
func TestClusterE2EByteIdentical(t *testing.T) {
	exps := []string{"all"}
	if testing.Short() {
		exps = []string{"config", "f1", "f5", "c1", "m1"}
	}
	req := testRequest(exps)
	want := marshalTables(t, directTables(t, testRequest(exps)))

	var mu sync.Mutex
	builds := map[string]int{}
	hook := func(k string) { mu.Lock(); builds[k]++; mu.Unlock() }

	coord, cs := startCoordinator(t, CoordinatorConfig{
		Cache: streamcache.New(streamcache.Options{BuildHook: hook}),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		startWorker(t, ctx, cs.URL, streamcache.Options{BuildHook: hook})
	}

	got, err := coord.Run(ctx, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if have := marshalTables(t, got); !bytes.Equal(want, have) {
		t.Errorf("cluster tables differ from direct run:\nwant %d bytes\nhave %d bytes", len(want), len(have))
	}

	mu.Lock()
	defer mu.Unlock()
	for k, n := range builds {
		if n > 1 {
			t.Errorf("stream %s built %d times cluster-wide, want at most 1", k, n)
		}
	}
	if st := coord.Stats(); st.BundlesDone == 0 {
		t.Error("coordinator reports zero bundles done")
	}
}

// TestDeadWorkerLeaseRequeued: a bundle leased by a worker that dies
// without heartbeating is re-queued on lease expiry and the sweep still
// completes with correct output.
func TestDeadWorkerLeaseRequeued(t *testing.T) {
	req := testRequest([]string{"f1"})
	want := marshalTables(t, directTables(t, testRequest([]string{"f1"})))

	coord, cs := startCoordinator(t, CoordinatorConfig{
		Cache:    streamcache.New(streamcache.Options{}),
		LeaseTTL: 50 * time.Millisecond,
	})

	// Submit, then steal one lease as a worker that will never be heard
	// from again.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type runOut struct {
		tables []*report.Table
		err    error
	}
	done := make(chan runOut, 1)
	go func() {
		tables, err := coord.Run(ctx, req, nil)
		done <- runOut{tables, err}
	}()
	var stolen Bundle
	for {
		lease, ok := coord.Lease("dead-worker")
		if ok {
			stolen = lease.Bundle
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Live workers join after the theft; once the stolen lease expires
	// the bundle goes to one of them.
	for i := 0; i < 2; i++ {
		startWorker(t, ctx, cs.URL, streamcache.Options{})
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if have := marshalTables(t, out.tables); !bytes.Equal(want, have) {
		t.Error("tables after dead-worker recovery differ from direct run")
	}
	st := coord.Stats()
	if st.BundlesRequeued == 0 {
		t.Errorf("no bundles requeued (stolen %s)", stolen.ID)
	}
}

// TestCorruptPeerSnapshotFallsSoft: a peer that serves garbage for an
// advertised stream does not poison the run — the fetch is rejected at
// validation and the worker builds locally.
func TestCorruptPeerSnapshotFallsSoft(t *testing.T) {
	req := testRequest([]string{"f1"})
	want := marshalTables(t, directTables(t, testRequest([]string{"f1"})))

	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not a snapshot, not even close"))
	}))
	defer evil.Close()

	coord, cs := startCoordinator(t, CoordinatorConfig{
		Cache: streamcache.New(streamcache.Options{}),
	})
	// Pretend the evil peer holds every stream the request needs.
	norm := testRequest([]string{"f1"})
	if err := norm.Normalize(); err != nil {
		t.Fatal(err)
	}
	coord.mu.Lock()
	for _, w := range norm.WorkloadOrder() {
		ref, err := norm.StreamRefFor(w, norm.Seed)
		if err != nil {
			coord.mu.Unlock()
			t.Fatal(err)
		}
		coord.holders[ref.Hash] = map[string]bool{evil.URL: true}
	}
	coord.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := startWorker(t, ctx, cs.URL, streamcache.Options{})

	got, err := coord.Run(ctx, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if have := marshalTables(t, got); !bytes.Equal(want, have) {
		t.Error("tables after corrupt-peer recovery differ from direct run")
	}
	st := w.Stats()
	if st.FetchErrors == 0 {
		t.Error("worker never hit the corrupt peer (FetchErrors = 0); holder injection broken?")
	}
	if st.FetchOK != 0 {
		t.Errorf("worker claims %d successful fetches from a corrupt-only cluster", st.FetchOK)
	}
}

// TestCoordinatorRestartReadoption: a lease granted by one coordinator
// can be delivered to a fresh coordinator holding a resubmission of the
// same job, because bundle IDs derive deterministically from the
// request.
func TestCoordinatorRestartReadoption(t *testing.T) {
	req := testRequest([]string{"f1"})

	c1, _ := startCoordinator(t, CoordinatorConfig{Cache: streamcache.New(streamcache.Options{})})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c1.Run(ctx, req, nil)
	var lease LeaseResponse
	for {
		var ok bool
		lease, ok = c1.Lease("survivor")
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// The original coordinator "dies"; its successor re-admits the same
	// request and regenerates identical bundle IDs.
	c2, cs2 := startCoordinator(t, CoordinatorConfig{Cache: streamcache.New(streamcache.Options{})})
	go c2.Run(ctx, testRequest([]string{"f1"}), nil)
	for {
		if c2.Stats().BundlesPending > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	w, err := NewWorker(WorkerConfig{
		CoordinatorURL: cs2.URL,
		Cache:          streamcache.New(streamcache.Options{}),
		Kernel:         sharing.KernelBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := w.ExecuteBundle(ctx, lease.Bundle)
	if res.Err != "" {
		t.Fatalf("execute: %s", res.Err)
	}
	body, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(cs2.URL+"/v1/cluster/bundles/"+lease.Bundle.ID+"/result",
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("successor rejected re-adopted result: status %d", resp.StatusCode)
	}
	if st := c2.Stats(); st.BundlesDone != 1 {
		t.Errorf("successor BundlesDone = %d, want 1", st.BundlesDone)
	}
}

// TestNormalizeDefaultsAndKey: omitted fields default, "all" expands,
// and omitted-vs-explicit defaults hash to the same key.
func TestNormalizeDefaultsAndKey(t *testing.T) {
	a := Request{Exps: []string{"f1"}}
	if err := a.Normalize(); err != nil {
		t.Fatal(err)
	}
	if a.LLCMB != 4 || a.Ways != 16 || a.Seed != 1 || a.Scale != 1 || a.Strength != "full" {
		t.Errorf("defaults not applied: %+v", a)
	}
	b := Request{Exps: []string{"f1"}, LLCMB: 4, Ways: 16, Seed: 1, Scale: 1, Strength: "full"}
	if err := b.Normalize(); err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Error("omitted and explicit defaults hash differently")
	}

	all := Request{Exps: []string{"all"}}
	if err := all.Normalize(); err != nil {
		t.Fatal(err)
	}
	if len(all.Exps) != len(sim.ExperimentIDs()) {
		t.Errorf("all expanded to %d exps, want %d", len(all.Exps), len(sim.ExperimentIDs()))
	}

	for _, bad := range []Request{
		{},
		{Exps: []string{"nope"}},
		{Exps: []string{"f1"}, Scale: 2},
		{Exps: []string{"f1"}, Strength: "sorta"},
		{Exps: []string{"f1"}, Workloads: []string{"no-such-workload"}},
	} {
		if err := bad.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) accepted", bad)
		}
	}
}

// TestBundleIDDeterminism: same inputs, same ID; any differing input,
// different ID.
func TestBundleIDDeterminism(t *testing.T) {
	base := BundleID("job", "f1", 0, "canneal")
	if base != BundleID("job", "f1", 0, "canneal") {
		t.Error("BundleID not deterministic")
	}
	for _, other := range []string{
		BundleID("job2", "f1", 0, "canneal"),
		BundleID("job", "f2", 0, "canneal"),
		BundleID("job", "f1", 1, "canneal"),
		BundleID("job", "f1", 0, "swaptions"),
	} {
		if other == base {
			t.Errorf("collision: %s", other)
		}
	}
}

func TestCheckProto(t *testing.T) {
	if err := CheckProto(ProtoVersion); err != nil {
		t.Fatal(err)
	}
	if err := CheckProto(ProtoVersion + 1); err == nil {
		t.Error("future protocol version accepted")
	}
}
