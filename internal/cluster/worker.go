package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"sharellc/internal/report"
	"sharellc/internal/sharing"
	"sharellc/internal/sim"
	"sharellc/internal/sim/streamcache"
	"sharellc/internal/workloads"
)

// maxSnapshotBytes caps one peer snapshot transfer. Full-suite streams
// are tens of MB; 2 GiB is far beyond any legitimate snapshot.
const maxSnapshotBytes = 2 << 30

// WorkerConfig configures a polling worker.
type WorkerConfig struct {
	// CoordinatorURL is the coordinator's base URL (required).
	CoordinatorURL string
	// SelfURL is this worker's own reachable base URL. It doubles as the
	// worker's identity in leases; when set, the coordinator advertises
	// it to peers as a snapshot source (mount Register somewhere that
	// serves it). Empty means anonymous: no peer serving.
	SelfURL string
	// Cache is the local stream store (required): fetched snapshots land
	// in it, and suite construction pulls streams through it.
	Cache *streamcache.Cache
	// Kernel selects the replay kernel for this worker's suites.
	Kernel sharing.Kernel
	// Tracker selects the residency-tracker representation for this
	// worker's suites.
	Tracker sharing.Tracker
	// SIMD selects the data-parallel tier for this worker's suites.
	SIMD sharing.SIMD
	// Slots is the number of bundles executed concurrently. 0 means 1.
	Slots int
	// Poll is the idle wait between lease attempts when the coordinator
	// has no runnable work. 0 means 250ms.
	Poll time.Duration
	// Client is the HTTP client for all control-plane and transfer
	// calls. Nil means http.DefaultClient.
	Client *http.Client
}

// WorkerStats is a snapshot of a worker's counters, exported on its
// /metrics endpoint.
type WorkerStats struct {
	Busy         int64  // bundles executing right now (gauge)
	BundlesDone  uint64 // successful results delivered
	BundlesErred uint64 // results delivered with an error outcome
	FetchTotal   uint64 // peer/coordinator snapshot fetches attempted
	FetchOK      uint64 // fetches that validated and installed
	FetchBytes   uint64 // snapshot bytes fetched
	FetchErrors  uint64 // failed or rejected transfers (fell soft)
	LeaseErrors  uint64 // control-plane round-trips that failed
}

// Worker polls a coordinator for bundles, materializes the streams each
// bundle needs (local store, then listed sources, then the coordinator,
// then a local build — every transfer failure falls soft), executes the
// bundle slice, and posts the result. Heartbeats run at TTL/3; losing
// the lease (404/409) aborts the run promptly since another worker owns
// the bundle now.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client
	name   string

	busy        atomic.Int64
	done        atomic.Uint64
	erred       atomic.Uint64
	fetchTotal  atomic.Uint64
	fetchOK     atomic.Uint64
	fetchBytes  atomic.Uint64
	fetchErrors atomic.Uint64
	leaseErrors atomic.Uint64
}

// NewWorker validates cfg and builds a Worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.CoordinatorURL == "" {
		return nil, errors.New("cluster: worker needs a coordinator URL")
	}
	if cfg.Cache == nil {
		return nil, errors.New("cluster: worker needs a stream cache")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 250 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	name := cfg.SelfURL
	if name == "" {
		name = "anonymous-worker"
	}
	return &Worker{cfg: cfg, client: client, name: name}, nil
}

// Stats snapshots the worker counters.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		Busy:         w.busy.Load(),
		BundlesDone:  w.done.Load(),
		BundlesErred: w.erred.Load(),
		FetchTotal:   w.fetchTotal.Load(),
		FetchOK:      w.fetchOK.Load(),
		FetchBytes:   w.fetchBytes.Load(),
		FetchErrors:  w.fetchErrors.Load(),
		LeaseErrors:  w.leaseErrors.Load(),
	}
}

// Register mounts the worker's peer-facing snapshot endpoint on mux.
func (w *Worker) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/streams/{hash}", StreamHandler(w.cfg.Cache, nil))
}

// Run polls for work until ctx is cancelled, executing up to cfg.Slots
// bundles concurrently. It always returns ctx.Err().
func (w *Worker) Run(ctx context.Context) error {
	done := make(chan struct{})
	for i := 0; i < w.cfg.Slots; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			w.pollLoop(ctx)
		}()
	}
	for i := 0; i < w.cfg.Slots; i++ {
		<-done
	}
	return ctx.Err()
}

func (w *Worker) pollLoop(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		lease, ok, err := w.lease(ctx)
		if err != nil {
			w.leaseErrors.Add(1)
		}
		if !ok {
			select {
			case <-ctx.Done():
				return
			case <-time.After(w.cfg.Poll):
			}
			continue
		}
		w.process(ctx, lease)
	}
}

// process runs one leased bundle under a heartbeat and reports back.
func (w *Worker) process(ctx context.Context, lease LeaseResponse) {
	w.busy.Add(1)
	defer w.busy.Add(-1)

	runCtx, cancel := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		ttl := time.Duration(lease.TTLMillis) * time.Millisecond
		if ttl <= 0 {
			ttl = 15 * time.Second
		}
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-tick.C:
				if !w.heartbeat(runCtx, lease.Bundle.ID) {
					cancel() // lease lost; someone else owns the bundle now
					return
				}
			}
		}
	}()

	res := w.ExecuteBundle(runCtx, lease.Bundle)
	cancel()
	<-hbDone
	// Deliver even when the lease was lost mid-run: results are
	// idempotent and first-finisher-wins on the coordinator.
	if ctx.Err() != nil && res.Err == "" {
		return // shutting down with an incomplete run: nothing worth posting
	}
	if err := w.submit(ctx, lease.Bundle.ID, res); err != nil {
		w.leaseErrors.Add(1)
		return
	}
	if res.Err == "" {
		w.done.Add(1)
	} else {
		w.erred.Add(1)
	}
}

// ExecuteBundle materializes streams and runs one bundle to a result.
// Exported so tests can drive the execution path without the poll loop
// (e.g. delivering a dead coordinator's lease to its successor).
func (w *Worker) ExecuteBundle(ctx context.Context, b Bundle) BundleResult {
	res := BundleResult{Proto: ProtoVersion, Worker: w.name}
	w.ensureStreams(ctx, b)

	tables, rows, err := w.runBundle(ctx, b)
	if err != nil {
		res.Err = err.Error()
	} else if b.Spec == WholeExperiment {
		res.Tables = make([]json.RawMessage, len(tables))
		for i, t := range tables {
			raw, err := json.Marshal(t)
			if err != nil {
				res.Err = err.Error()
				break
			}
			res.Tables[i] = raw
		}
	} else {
		wire, err := sim.EncodeRows(rows)
		if err != nil {
			res.Err = err.Error()
		} else {
			res.Rows = wire
		}
	}
	// Custody report: every referenced stream now resident here is
	// advertisable to peers, whether it arrived by fetch or local build.
	for _, ref := range b.Streams {
		if w.cfg.Cache.Contains(ref.Hash) {
			res.Built = append(res.Built, ref.Hash)
		}
	}
	return res
}

// runBundle executes the simulation slice of a bundle.
func (w *Worker) runBundle(ctx context.Context, b Bundle) (tables []*report.Table, rows any, err error) {
	opts := b.Request.Options()
	baseCfg := sim.Config{
		Machine: b.Request.MachineConfig(),
		Seed:    b.Request.Seed,
		Scale:   b.Request.Scale,
		Shards:  sim.ShardBudget(w.cfg.Slots),
		Kernel:  w.cfg.Kernel,
		Tracker: w.cfg.Tracker,
		SIMD:    w.cfg.SIMD,
		Streams: w.cfg.Cache.Stream,
	}
	if b.Spec == WholeExperiment {
		exp, err := sim.ExperimentByID(b.Exp)
		if err != nil {
			return nil, nil, err
		}
		var suite *sim.Suite
		if exp.NeedsSuite {
			// Whole-experiment bundles are exactly the runners that build
			// their own streams (m1's mixes, a5's per-seed sub-suites);
			// they read only the config, so a bare suite avoids preparing
			// workload streams nothing would consume.
			suite = sim.BareSuite(ctx, baseCfg)
		}
		tables, err = exp.Run(suite, opts)
		return tables, nil, err
	}

	specs, ok := sim.PlanFor(b.Exp, opts)
	if !ok {
		return nil, nil, fmt.Errorf("experiment %q has no table plan", b.Exp)
	}
	if b.Spec < 0 || b.Spec >= len(specs) {
		return nil, nil, fmt.Errorf("spec index %d out of range for %q (%d specs)", b.Spec, b.Exp, len(specs))
	}
	models, err := sim.ModelsByName([]string{b.Workload})
	if err != nil {
		return nil, nil, err
	}
	cfg := baseCfg
	cfg.Models = models
	suite, err := sim.NewSuiteContext(ctx, cfg)
	if err != nil {
		return nil, nil, err
	}
	rows, err = specs[b.Spec].Run(suite)
	return nil, rows, err
}

// ensureStreams makes each referenced stream locally resident if it can:
// already present, else fetched from a listed source or the coordinator.
// Every failure — unreachable source, truncated body, corrupt image —
// falls soft to trying the next source, and ultimately to letting the
// suite build the stream locally.
func (w *Worker) ensureStreams(ctx context.Context, b Bundle) {
	for _, ref := range b.Streams {
		if w.cfg.Cache.Contains(ref.Hash) {
			continue
		}
		model, err := b.Request.ScaledModel(ref.Workload)
		if err != nil {
			continue // undecodable ref; the run will surface the real error
		}
		sources := append([]string(nil), ref.Sources...)
		sources = append(sources, w.cfg.CoordinatorURL)
		for _, src := range sources {
			if src == "" || src == w.cfg.SelfURL {
				continue
			}
			if w.fetchStream(ctx, src, ref.Hash, model) {
				break
			}
		}
	}
}

// fetchStream pulls one snapshot from src and installs it; reports
// success. All errors — transport, status, oversize, failed validation —
// are soft: the caller tries the next source or builds locally.
func (w *Worker) fetchStream(ctx context.Context, src, hash string, model workloads.Model) bool {
	w.fetchTotal.Add(1)
	url := strings.TrimSuffix(src, "/") + "/v1/streams/" + hash
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		w.fetchErrors.Add(1)
		return false
	}
	resp, err := w.client.Do(req)
	if err != nil {
		w.fetchErrors.Add(1)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.fetchErrors.Add(1)
		return false
	}
	data, err := ReadAllLimited(resp.Body, maxSnapshotBytes)
	if err != nil {
		w.fetchErrors.Add(1)
		return false
	}
	if _, err := w.cfg.Cache.PutSnapshot(hash, data, model); err != nil {
		w.fetchErrors.Add(1)
		return false
	}
	w.fetchBytes.Add(uint64(len(data)))
	w.fetchOK.Add(1)
	return true
}

// lease asks the coordinator for work.
func (w *Worker) lease(ctx context.Context) (LeaseResponse, bool, error) {
	var lease LeaseResponse
	status, err := w.post(ctx, w.cfg.CoordinatorURL+"/v1/cluster/lease",
		LeaseRequest{Proto: ProtoVersion, Worker: w.name}, &lease)
	if err != nil {
		return lease, false, err
	}
	if status == http.StatusNoContent {
		return lease, false, nil
	}
	if status != http.StatusOK {
		return lease, false, fmt.Errorf("lease: unexpected status %d", status)
	}
	return lease, true, nil
}

// heartbeat reports liveness; false means the lease is gone.
func (w *Worker) heartbeat(ctx context.Context, bundleID string) bool {
	var hb HeartbeatResponse
	status, err := w.post(ctx, w.cfg.CoordinatorURL+"/v1/cluster/bundles/"+bundleID+"/heartbeat",
		HeartbeatRequest{Proto: ProtoVersion, Worker: w.name}, &hb)
	if err != nil {
		// Transient coordinator unavailability is not lease loss; keep
		// running and let the next tick (or the result post) decide.
		return true
	}
	return status == http.StatusOK
}

// submit delivers a bundle result.
func (w *Worker) submit(ctx context.Context, bundleID string, res BundleResult) error {
	status, err := w.post(ctx, w.cfg.CoordinatorURL+"/v1/cluster/bundles/"+bundleID+"/result", res, nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("result: unexpected status %d", status)
	}
	return nil
}

// post is the tiny JSON round-tripper the control plane runs on.
func (w *Worker) post(ctx context.Context, url string, body, out any) (int, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}
