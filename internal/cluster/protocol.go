// Package cluster implements distributed sweep execution for sharesimd:
// a coordinator decomposes a suite request into work bundles sharded by
// (workload × LLC config table), leases them to polling workers over a
// small versioned HTTP protocol, and deterministically merges the
// returned rows back into the exact tables sim.Experiments produces —
// byte-identical to a single-process run.
//
// The protocol is deliberately minimal (modeled on pull-based bundle
// distribution: workers poll for work, report health via heartbeats, and
// survive coordinator restarts because bundle IDs are deterministic):
//
//	POST /v1/cluster/lease                → 200 LeaseResponse | 204 no work
//	POST /v1/cluster/bundles/{id}/heartbeat → 200 extends | 404 | 409 lease lost
//	POST /v1/cluster/bundles/{id}/result  → 200 accepted
//	GET  /v1/streams/{hash}               → snapshot image (any peer)
//
// Stream snapshots are the distribution artifact: bundles name the
// streams they need by content hash (streamcache.Key), and a worker
// fetches only hashes missing from its local store — from any listed
// source or the coordinator — falling soft to a local build when every
// transfer fails or validates badly.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"sharellc/internal/cache"
	"sharellc/internal/core"
	"sharellc/internal/sim"
	"sharellc/internal/sim/streamcache"
	"sharellc/internal/workloads"
)

// ProtoVersion is the bundle-protocol version. Every request carries it;
// a coordinator rejects mismatched workers with an enumerating error
// rather than silently mis-scheduling.
const ProtoVersion = 1

// Request is a cluster sweep submission: one or more experiment ids over
// one suite configuration. It mirrors the daemon's job request but is
// defined here so the server package can depend on cluster and not the
// reverse; it additionally allows several experiments per submission
// (the full-catalogue sweep is the cluster's unit of work) and an
// explicit machine config (diff harnesses run tiny non-default machines).
type Request struct {
	Exps []string `json:"exps"` // experiment ids; "all" expands to the whole catalogue
	// Machine overrides the simulated machine; nil means cache.DefaultConfig().
	Machine   *cache.Config `json:"machine,omitempty"`
	LLCMB     float64       `json:"llc_mb,omitempty"`
	Ways      int           `json:"ways,omitempty"`
	Seed      uint64        `json:"seed,omitempty"`
	Scale     float64       `json:"scale,omitempty"`
	Workloads []string      `json:"workloads,omitempty"`
	Policies  []string      `json:"policies,omitempty"`
	Strength  string        `json:"strength,omitempty"`
}

// Normalize fills defaults, expands "all", and validates every field
// against the experiment index. The normalized form is what Key hashes,
// so submissions differing only in omitted-vs-explicit defaults coalesce.
func (r *Request) Normalize() error {
	if len(r.Exps) == 0 {
		return errors.New("missing required field \"exps\"")
	}
	var exps []string
	seen := map[string]bool{}
	add := func(id string) error {
		if _, err := sim.ExperimentByID(id); err != nil {
			return err
		}
		if !seen[id] {
			seen[id] = true
			exps = append(exps, id)
		}
		return nil
	}
	for _, e := range r.Exps {
		e = strings.ToLower(strings.TrimSpace(e))
		if e == "all" {
			for _, id := range sim.ExperimentIDs() {
				if err := add(id); err != nil {
					return err
				}
			}
			continue
		}
		if err := add(e); err != nil {
			return err
		}
	}
	r.Exps = exps
	if r.LLCMB == 0 {
		r.LLCMB = 4
	}
	if r.LLCMB <= 0 {
		return fmt.Errorf("llc_mb must be positive, got %g", r.LLCMB)
	}
	if r.Ways == 0 {
		r.Ways = 16
	}
	if r.Ways < 1 {
		return fmt.Errorf("ways must be >= 1, got %d", r.Ways)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Scale == 0 {
		r.Scale = 1
	}
	if r.Scale < 0 || r.Scale > 1 {
		return fmt.Errorf("scale must be in (0, 1], got %g", r.Scale)
	}
	if r.Strength == "" {
		r.Strength = "full"
	}
	if r.Strength != "full" && r.Strength != "insert-only" {
		return fmt.Errorf("unknown strength %q (want full or insert-only)", r.Strength)
	}
	for i, w := range r.Workloads {
		r.Workloads[i] = strings.ToLower(strings.TrimSpace(w))
	}
	sort.Strings(r.Workloads)
	if _, err := sim.ModelsByName(r.Workloads); err != nil {
		return err
	}
	for i, p := range r.Policies {
		r.Policies[i] = strings.ToLower(strings.TrimSpace(p))
	}
	return nil
}

// Key is the canonical request hash: jobs, bundle IDs and result caching
// all derive from it, which is what lets a restarted coordinator re-adopt
// a resubmitted job's in-flight bundles.
func (r Request) Key() string {
	b, _ := json.Marshal(r)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// MachineConfig resolves the simulated machine.
func (r Request) MachineConfig() cache.Config {
	if r.Machine != nil {
		return *r.Machine
	}
	return cache.DefaultConfig()
}

// Options maps the request knobs onto the experiment index's options,
// exactly as the daemon's direct path does.
func (r Request) Options() sim.ExpOptions {
	o := sim.ExpOptions{
		LLCSize:  int(r.LLCMB * float64(cache.MB)),
		LLCWays:  r.Ways,
		Policies: r.Policies,
		Prot:     core.Options{Strength: core.Full},
	}
	if r.Strength == "insert-only" {
		o.Prot.Strength = core.InsertOnly
	}
	return o
}

// WorkloadOrder is the canonical suite order the merge reconstructs:
// the request's (normalized, sorted) workload list, or the full suite in
// catalogue order when the list is empty — the same order
// sim.NewSuiteContext prepares models in.
func (r Request) WorkloadOrder() []string {
	if len(r.Workloads) > 0 {
		return r.Workloads
	}
	suite := workloads.Suite()
	names := make([]string, len(suite))
	for i, m := range suite {
		names[i] = m.Name
	}
	return names
}

// ScaledModel resolves one workload name to the scaled model the suite
// would prepare, replicating sim.NewSuiteContext's scaling exactly so
// stream hashes computed here match the ones the worker's suite requests.
func (r Request) ScaledModel(name string) (workloads.Model, error) {
	m, err := workloads.ByName(name)
	if err != nil {
		return workloads.Model{}, err
	}
	if r.Scale != 1 {
		m = m.Scaled(r.Scale)
	}
	return m, nil
}

// StreamRefFor names the content-addressed stream a workload of this
// request resolves to at the given seed.
func (r Request) StreamRefFor(name string, seed uint64) (StreamRef, error) {
	m, err := r.ScaledModel(name)
	if err != nil {
		return StreamRef{}, err
	}
	return StreamRef{
		Workload: name,
		Seed:     seed,
		Hash:     streamcache.Key(m, r.MachineConfig(), seed),
	}, nil
}

// StreamRef names one prepared stream a bundle needs, by content hash.
type StreamRef struct {
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	Hash     string `json:"hash"`
	// Sources lists base URLs (peers first, coordinator implicit) known
	// to hold the snapshot at lease time; a worker tries them in order
	// before building locally.
	Sources []string `json:"sources,omitempty"`
}

// WholeExperiment is the Bundle.Spec value of a bundle that runs an
// entire experiment rather than one table-spec slice (the experiments
// sim.PlanFor declines: they build their own streams or are static).
const WholeExperiment = -1

// Bundle is one leased unit of work: a single (experiment, table spec,
// workload) slice, or a whole experiment when Spec == WholeExperiment.
type Bundle struct {
	ID  string `json:"id"`
	Job string `json:"job"` // Request.Key() of the owning job
	Exp string `json:"exp"`
	// Spec indexes sim.PlanFor(Exp, Request.Options()); the worker
	// recomputes the same plan from the carried request, so the two sides
	// agree on parametrization by construction.
	Spec     int         `json:"spec"`
	Workload string      `json:"workload,omitempty"` // empty for whole-experiment bundles
	Request  Request     `json:"request"`
	Streams  []StreamRef `json:"streams,omitempty"`
}

// BundleID derives the deterministic bundle identifier. Determinism is
// load-bearing: a worker that leased a bundle from a coordinator that
// has since restarted can still deliver its result, because the
// resubmitted job regenerates bundles under identical IDs.
func BundleID(jobKey, exp string, spec int, workload string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%s\x00%d\x00%s", jobKey, exp, spec, workload)))
	return "b-" + hex.EncodeToString(sum[:10])
}

// LeaseRequest is the body of POST /v1/cluster/lease.
type LeaseRequest struct {
	Proto int `json:"proto"`
	// Worker identifies the poller; when it is a reachable base URL the
	// coordinator also advertises it as a snapshot source to peers.
	Worker string `json:"worker"`
}

// LeaseResponse grants one bundle for TTLMillis; the worker must
// heartbeat well within it (TTL/3 is the convention) or the bundle is
// re-queued for another worker.
type LeaseResponse struct {
	Bundle    Bundle `json:"bundle"`
	TTLMillis int64  `json:"ttl_ms"`
}

// HeartbeatRequest is the body of the heartbeat POST.
type HeartbeatRequest struct {
	Proto  int    `json:"proto"`
	Worker string `json:"worker"`
}

// HeartbeatResponse echoes the remaining lease grant.
type HeartbeatResponse struct {
	TTLMillis int64 `json:"ttl_ms"`
}

// BundleResult is the body of the result POST. Exactly one of Rows
// (spec bundles, sim.EncodeRows gob bytes) or Tables (whole-experiment
// bundles, canonical table JSON) is set on success.
type BundleResult struct {
	Proto  int    `json:"proto"`
	Worker string `json:"worker"`
	Err    string `json:"error,omitempty"`
	Rows   []byte `json:"rows,omitempty"`
	Tables []json.RawMessage `json:"tables,omitempty"`
	// Built lists stream hashes resident on this worker after the run
	// (fetched or built), so the coordinator can advertise it as a source.
	Built []string `json:"built,omitempty"`
}

// CheckProto validates a peer's protocol version with an enumerating
// error, matching the repo's flag-parse conventions.
func CheckProto(v int) error {
	if v != ProtoVersion {
		return fmt.Errorf("unsupported protocol version %d (this node speaks: %d)", v, ProtoVersion)
	}
	return nil
}
