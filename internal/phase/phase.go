// Package phase analyzes the *temporal* structure of sharing: the paper
// concludes that fill-time sharing predictors fail because a block's
// sharing behaviour is phased — the same address (and the same fill site)
// is actively shared in some program phases and private in others, so
// history indexed by address or PC goes stale.
//
// Analyze quantifies exactly that: it splits the LLC reference stream
// into fixed windows, classifies every block as shared or private *per
// window* (≥ 2 distinct cores touching it within the window), and
// measures how stable that status is from one active window to the next.
// A high flip rate is the direct mechanistic explanation for the F7/F8
// negative results.
package phase

import (
	"fmt"
	"math/bits"

	"sharellc/internal/cache"
)

// DefaultWindows is the number of analysis windows when the caller does
// not choose one: fine enough to see phase changes, coarse enough that a
// window spans many residencies.
const DefaultWindows = 16

// blockHistory accumulates one block's per-window behaviour. Windows are
// capped at 64 so the histories are two machine words.
type blockHistory struct {
	active uint64 // bit w: block touched in window w
	shared uint64 // bit w: block shared in window w
}

// Result summarizes one analysis.
type Result struct {
	Windows    int
	WindowSize int // stream accesses per window (last window may be larger)

	// Per-window population: blocks touched, and the subset shared.
	ActiveBlocks []uint64
	SharedBlocks []uint64

	// Transition statistics over consecutive windows in which a block
	// was active: Persist counts same-status pairs, Flip counts
	// shared↔private changes. Flip/(Flip+Persist) is the phase
	// instability that defeats history predictors.
	Persist uint64
	Flip    uint64

	// Block-level classification over blocks active in ≥ 2 windows.
	AlwaysShared  uint64
	NeverShared   uint64
	Mixed         uint64
	SingleWindow  uint64 // blocks seen in only one window (unclassifiable)
	DistinctTotal uint64
}

// FlipRate returns Flip/(Flip+Persist), or 0 with no transitions.
func (r *Result) FlipRate() float64 {
	if r.Flip+r.Persist == 0 {
		return 0
	}
	return float64(r.Flip) / float64(r.Flip+r.Persist)
}

// MixedFraction returns the fraction of multi-window blocks whose sharing
// status changes across their lifetime.
func (r *Result) MixedFraction() float64 {
	multi := r.AlwaysShared + r.NeverShared + r.Mixed
	if multi == 0 {
		return 0
	}
	return float64(r.Mixed) / float64(multi)
}

// Analyze splits stream into windows windows (clamped to [1, 64]) and
// computes the sharing-phase statistics.
func Analyze(stream []cache.AccessInfo, windows int) (*Result, error) {
	if windows < 1 || windows > 64 {
		return nil, fmt.Errorf("phase: window count %d outside [1,64]", windows)
	}
	if len(stream) == 0 {
		return &Result{Windows: windows, ActiveBlocks: make([]uint64, windows), SharedBlocks: make([]uint64, windows)}, nil
	}
	winSize := len(stream) / windows
	if winSize == 0 {
		winSize = 1
	}

	res := &Result{
		Windows:      windows,
		WindowSize:   winSize,
		ActiveBlocks: make([]uint64, windows),
		SharedBlocks: make([]uint64, windows),
	}
	// Flat per-BlockID state (cache.EnsureBlockIDs) instead of hashed
	// maps: histories for the whole stream, core masks rebuilt each
	// window with the touched IDs listed so the flush doesn't rescan
	// every block.
	stream, numBlocks := cache.EnsureBlockIDs(stream)
	hist := make([]blockHistory, numBlocks)

	type masks struct{ lo, hi uint64 }
	cur := make([]masks, numBlocks)
	touched := make([]uint32, 0, 1<<12)

	flush := func(w int) {
		for _, id := range touched {
			m := cur[id]
			h := &hist[id]
			h.active |= 1 << w
			if bits.OnesCount64(m.lo)+bits.OnesCount64(m.hi) >= 2 {
				h.shared |= 1 << w
				res.SharedBlocks[w]++
			}
			res.ActiveBlocks[w]++
			cur[id] = masks{}
		}
		touched = touched[:0]
	}

	for w := 0; w < windows; w++ {
		start := w * winSize
		if start >= len(stream) {
			break
		}
		end := start + winSize
		if w == windows-1 || end > len(stream) {
			end = len(stream)
		}
		for i := start; i < end; i++ {
			a := stream[i]
			m := &cur[a.BlockID]
			if m.lo|m.hi == 0 {
				touched = append(touched, a.BlockID)
			}
			if a.Core < 64 {
				m.lo |= 1 << a.Core
			} else {
				m.hi |= 1 << (a.Core - 64)
			}
		}
		flush(w)
	}

	// Transition and block-level statistics.
	for id := range hist {
		h := &hist[id]
		if h.active == 0 {
			continue
		}
		res.DistinctTotal++
		activeWindows := bits.OnesCount64(h.active)
		if activeWindows < 2 {
			res.SingleWindow++
			continue
		}
		var prevShared, have bool
		allShared, noneShared := true, true
		for w := 0; w < 64; w++ {
			if h.active>>w&1 == 0 {
				continue
			}
			shared := h.shared>>w&1 == 1
			if shared {
				noneShared = false
			} else {
				allShared = false
			}
			if have {
				if shared == prevShared {
					res.Persist++
				} else {
					res.Flip++
				}
			}
			prevShared, have = shared, true
		}
		switch {
		case allShared:
			res.AlwaysShared++
		case noneShared:
			res.NeverShared++
		default:
			res.Mixed++
		}
	}
	return res, nil
}
