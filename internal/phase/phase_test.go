package phase

import (
	"testing"
	"testing/quick"

	"sharellc/internal/cache"
	"sharellc/internal/rng"
)

// mk builds a stream of (core, block) pairs.
func mk(pairs [][2]uint64) []cache.AccessInfo {
	out := make([]cache.AccessInfo, len(pairs))
	for i, p := range pairs {
		out[i] = cache.AccessInfo{Core: uint8(p[0]), Block: p[1], Index: int64(i)}
	}
	return out
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil, 0); err == nil {
		t.Error("0 windows accepted")
	}
	if _, err := Analyze(nil, 65); err == nil {
		t.Error("65 windows accepted")
	}
	r, err := Analyze(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.DistinctTotal != 0 || r.FlipRate() != 0 || r.MixedFraction() != 0 {
		t.Error("empty stream produced stats")
	}
}

func TestStableSharedBlock(t *testing.T) {
	// Block 1 is shared in both windows: one persist transition, classed
	// always-shared.
	stream := mk([][2]uint64{
		{0, 1}, {1, 1}, // window 0: shared
		{0, 1}, {2, 1}, // window 1: shared
	})
	r, err := Analyze(stream, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Persist != 1 || r.Flip != 0 {
		t.Errorf("transitions = (%d persist, %d flip), want (1,0)", r.Persist, r.Flip)
	}
	if r.AlwaysShared != 1 || r.Mixed != 0 {
		t.Errorf("classes = always %d mixed %d", r.AlwaysShared, r.Mixed)
	}
	if r.SharedBlocks[0] != 1 || r.SharedBlocks[1] != 1 {
		t.Errorf("per-window shared counts = %v", r.SharedBlocks)
	}
}

func TestFlippingBlock(t *testing.T) {
	// Block 1: shared in window 0, private in window 1, shared in 2.
	stream := mk([][2]uint64{
		{0, 1}, {1, 1},
		{0, 1}, {0, 1},
		{0, 1}, {2, 1},
	})
	r, err := Analyze(stream, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Flip != 2 || r.Persist != 0 {
		t.Errorf("transitions = (%d persist, %d flip), want (0,2)", r.Persist, r.Flip)
	}
	if r.Mixed != 1 {
		t.Errorf("mixed = %d, want 1", r.Mixed)
	}
	if got := r.FlipRate(); got != 1 {
		t.Errorf("FlipRate = %v, want 1", got)
	}
	if got := r.MixedFraction(); got != 1 {
		t.Errorf("MixedFraction = %v, want 1", got)
	}
}

func TestSingleWindowBlocksUnclassified(t *testing.T) {
	stream := mk([][2]uint64{
		{0, 1}, {1, 1}, // block 1 only in window 0
		{0, 2}, {0, 2}, // block 2 only in window 1
	})
	r, err := Analyze(stream, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.SingleWindow != 2 {
		t.Errorf("single-window blocks = %d, want 2", r.SingleWindow)
	}
	if r.AlwaysShared+r.NeverShared+r.Mixed != 0 {
		t.Error("single-window blocks were classified")
	}
}

func TestNeverSharedBlock(t *testing.T) {
	stream := mk([][2]uint64{
		{3, 9}, {3, 9},
		{3, 9}, {3, 9},
	})
	r, err := Analyze(stream, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.NeverShared != 1 {
		t.Errorf("never-shared = %d, want 1", r.NeverShared)
	}
}

func TestAnalyzeConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rnd := rng.New(seed)
		n := 200 + rnd.Intn(2000)
		stream := make([]cache.AccessInfo, n)
		for i := range stream {
			stream[i] = cache.AccessInfo{
				Core:  uint8(rnd.Intn(8)),
				Block: rnd.Uint64n(64),
				Index: int64(i),
			}
		}
		windows := 1 + rnd.Intn(16)
		r, err := Analyze(stream, windows)
		if err != nil {
			return false
		}
		// Classified + single-window = distinct blocks.
		if r.AlwaysShared+r.NeverShared+r.Mixed+r.SingleWindow != r.DistinctTotal {
			return false
		}
		// Shared can never exceed active per window.
		for w := range r.ActiveBlocks {
			if r.SharedBlocks[w] > r.ActiveBlocks[w] {
				return false
			}
		}
		// Flip rate bounded.
		if fr := r.FlipRate(); fr < 0 || fr > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWindowsOneIsDegenerateButValid(t *testing.T) {
	stream := mk([][2]uint64{{0, 1}, {1, 1}, {0, 2}})
	r, err := Analyze(stream, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.SingleWindow != 2 {
		t.Errorf("one-window analysis: single = %d, want 2", r.SingleWindow)
	}
	if r.SharedBlocks[0] != 1 || r.ActiveBlocks[0] != 2 {
		t.Errorf("window stats = shared %v active %v", r.SharedBlocks, r.ActiveBlocks)
	}
}
