package workloads

import (
	"testing"

	"sharellc/internal/trace"
)

func mixModels(t *testing.T, n int) []Model {
	t.Helper()
	var ms []Model
	for i := 0; i < n; i++ {
		m := tiny()
		m.Name = m.Name + string(rune('a'+i))
		m.AccessesPerThread = 2000
		ms = append(ms, m)
	}
	return ms
}

func TestMixValidation(t *testing.T) {
	if _, err := Mix(nil, 1); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := Mix(make([]Model, 200), 1); err == nil {
		t.Error("oversized mix accepted")
	}
}

func TestMixCoresAndAddressSpaces(t *testing.T) {
	ms := mixModels(t, 4)
	r, err := Mix(ms, 7)
	if err != nil {
		t.Fatal(err)
	}
	accs, err := trace.Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 4*2000 {
		t.Fatalf("mix produced %d accesses, want 8000", len(accs))
	}
	// Each slot uses exactly its own core and its own address space;
	// block sets must be fully disjoint across slots.
	blocksBySlot := make([]map[uint64]bool, 4)
	for i := range blocksBySlot {
		blocksBySlot[i] = map[uint64]bool{}
	}
	for _, a := range accs {
		if a.Core > 3 {
			t.Fatalf("access from core %d in a 4-program mix", a.Core)
		}
		b := a.Addr.BlockID()
		if slot := b >> mixSlotShift; slot != uint64(a.Core) {
			t.Fatalf("core %d touched slot %d's address space", a.Core, slot)
		}
		blocksBySlot[a.Core][b] = true
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			for b := range blocksBySlot[i] {
				if blocksBySlot[j][b] {
					t.Fatalf("slots %d and %d share block %d", i, j, b)
				}
			}
		}
	}
}

func TestMixDeterministic(t *testing.T) {
	ms := mixModels(t, 2)
	collect := func() []trace.Access {
		r, err := Mix(ms, 9)
		if err != nil {
			t.Fatal(err)
		}
		accs, err := trace.Collect(r)
		if err != nil {
			t.Fatal(err)
		}
		return accs
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mix diverged at access %d", i)
		}
	}
}

func TestMixSlotsDiffer(t *testing.T) {
	// Two instances of the SAME model must not replay identical streams
	// (per-slot seed offset).
	ms := []Model{tiny(), tiny()}
	ms[0].AccessesPerThread = 2000
	ms[1].AccessesPerThread = 2000
	r, err := Mix(ms, 3)
	if err != nil {
		t.Fatal(err)
	}
	accs, err := trace.Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	var s0, s1 []uint64
	for _, a := range accs {
		local := a.Addr.BlockID() & (1<<mixSlotShift - 1)
		if a.Core == 0 {
			s0 = append(s0, local)
		} else {
			s1 = append(s1, local)
		}
	}
	same := 0
	for i := 0; i < len(s0) && i < len(s1); i++ {
		if s0[i] == s1[i] {
			same++
		}
	}
	if float64(same) > 0.5*float64(len(s0)) {
		t.Error("mix slots of the same model replayed near-identical streams")
	}
}

func TestMixName(t *testing.T) {
	if MixName(nil) != "mix()" {
		t.Error("empty mix name")
	}
	ms := mixModels(t, 2)
	if got := MixName(ms); got != "mix("+ms[0].Name+"+"+ms[1].Name+")" {
		t.Errorf("MixName = %q", got)
	}
}
