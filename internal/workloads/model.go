// Package workloads synthesizes multi-threaded memory traces that stand in
// for the PARSEC, SPLASH-2 and SPEC OMP applications the paper
// characterizes (the real binaries, inputs and a Pin-style tracer are not
// available offline; see DESIGN.md, substitution table).
//
// Each named Model describes one application as a small set of address
// regions and an access mix:
//
//   - a per-thread private region (stack/heap partitions),
//   - a shared read-only region (input data, lookup structures),
//   - a shared read-write region (graphs, queues, grids) accessed through a
//     rotating per-phase hot window by clusters of threads — this is what
//     produces genuinely shared LLC residencies and, because the window
//     moves, the phase behaviour that defeats history-based predictors,
//   - a small lock region (hot synchronization blocks touched by all).
//
// Reuse within a region mixes Zipf-skewed random touches with sequential
// runs, matching the two dominant locality modes of the suites. All
// randomness derives from a caller-provided seed, so every trace is
// bit-reproducible.
package workloads

import (
	"fmt"

	"sharellc/internal/rng"
	"sharellc/internal/trace"
)

// Region bases keep the four region kinds in disjoint parts of the block
// address space; the low bits carry the in-region block number.
const (
	privateBase  = uint64(1) << 40
	sharedROBase = uint64(2) << 40
	sharedRWBase = uint64(3) << 40
	lockBase     = uint64(4) << 40

	// privateStride separates per-thread private regions.
	privateStride = uint64(1) << 32

	// pcRegionStride separates the PC pools of the four region kinds.
	pcRegionStride = uint64(1) << 20
	pcBase         = uint64(0x400000)
)

// Model is a parameterized synthetic application.
type Model struct {
	Name        string
	Suite       string // "parsec", "splash2" or "specomp"
	Description string

	Threads           int
	AccessesPerThread int

	// Region sizes in 64-byte blocks.
	PrivateBlocks  int // per thread
	SharedROBlocks int
	SharedRWBlocks int
	LockBlocks     int

	// Access mix: probability of touching each shared region kind; the
	// remainder goes to the thread's private region.
	FracSharedRO float64
	FracSharedRW float64
	FracLock     float64

	// Locality shape.
	PrivateZipf  float64 // Zipf exponent for private reuse (0 = uniform)
	SharedROZipf float64 // Zipf exponent for shared read-only reuse
	SeqRunLen    int     // mean sequential-run length (1 = pure random)

	// Write behaviour. The shared read-only region never sees writes;
	// the lock region is half writes by construction.
	WriteFrac float64

	// Phase structure: hot windows rotate at each of Phases boundaries.
	Phases int
	// RWWindowFrac is the fraction of the shared read-write region that
	// is hot in any one phase.
	RWWindowFrac float64
	// RWSharingDegree clusters threads: each cluster of this many
	// threads works on its own window of the shared read-write region,
	// bounding the sharing degree of its residencies.
	RWSharingDegree int
	// RWSweep switches the shared read-write region from the rotating
	// hot window to a loose-lockstep cyclic sweep: all threads of a
	// cluster walk the region together (with a little jitter), so each
	// block receives a clustered burst of cross-core touches once per
	// revolution and then goes quiet until the sweep returns. The
	// revisit distance is the region size — choosing it near the LLC
	// capacity reproduces the marginal shared working sets for which
	// sharing-aware protection pays (iterative solvers, transposes,
	// streaming pipelines).
	RWSweep bool

	// Burst is the mean scheduling burst for the global interleaving.
	Burst int
	// PCsPerRegion is the number of distinct static instructions the
	// model uses per region kind; smaller pools give the PC-indexed
	// predictor more signal.
	PCsPerRegion int
}

// Validate reports whether the model is internally consistent.
func (m Model) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("workloads: unnamed model")
	case m.Threads < 1 || m.Threads > 128:
		return fmt.Errorf("workloads: %s: Threads %d outside [1,128]", m.Name, m.Threads)
	case m.AccessesPerThread < 1:
		return fmt.Errorf("workloads: %s: AccessesPerThread %d < 1", m.Name, m.AccessesPerThread)
	case m.PrivateBlocks < 1:
		return fmt.Errorf("workloads: %s: PrivateBlocks %d < 1", m.Name, m.PrivateBlocks)
	case uint64(m.PrivateBlocks) > privateStride:
		return fmt.Errorf("workloads: %s: PrivateBlocks %d exceeds per-thread stride", m.Name, m.PrivateBlocks)
	case m.FracSharedRO < 0 || m.FracSharedRW < 0 || m.FracLock < 0:
		return fmt.Errorf("workloads: %s: negative access fraction", m.Name)
	case m.FracSharedRO+m.FracSharedRW+m.FracLock > 1:
		return fmt.Errorf("workloads: %s: shared fractions sum to %v > 1", m.Name,
			m.FracSharedRO+m.FracSharedRW+m.FracLock)
	case m.FracSharedRO > 0 && m.SharedROBlocks < 1:
		return fmt.Errorf("workloads: %s: shared-RO accesses but empty region", m.Name)
	case m.FracSharedRW > 0 && m.SharedRWBlocks < 1:
		return fmt.Errorf("workloads: %s: shared-RW accesses but empty region", m.Name)
	case m.FracLock > 0 && m.LockBlocks < 1:
		return fmt.Errorf("workloads: %s: lock accesses but empty region", m.Name)
	case m.WriteFrac < 0 || m.WriteFrac > 1:
		return fmt.Errorf("workloads: %s: WriteFrac %v outside [0,1]", m.Name, m.WriteFrac)
	case m.Phases < 1:
		return fmt.Errorf("workloads: %s: Phases %d < 1", m.Name, m.Phases)
	case m.FracSharedRW > 0 && (m.RWWindowFrac <= 0 || m.RWWindowFrac > 1):
		return fmt.Errorf("workloads: %s: RWWindowFrac %v outside (0,1]", m.Name, m.RWWindowFrac)
	case m.FracSharedRW > 0 && m.RWSharingDegree < 1:
		return fmt.Errorf("workloads: %s: RWSharingDegree %d < 1", m.Name, m.RWSharingDegree)
	case m.SeqRunLen < 1:
		return fmt.Errorf("workloads: %s: SeqRunLen %d < 1", m.Name, m.SeqRunLen)
	case m.Burst < 1:
		return fmt.Errorf("workloads: %s: Burst %d < 1", m.Name, m.Burst)
	case m.PCsPerRegion < 1:
		return fmt.Errorf("workloads: %s: PCsPerRegion %d < 1", m.Name, m.PCsPerRegion)
	}
	return nil
}

// TotalAccesses returns the trace length the model generates.
func (m Model) TotalAccesses() int { return m.Threads * m.AccessesPerThread }

// FootprintBlocks estimates the total distinct blocks the model can touch.
func (m Model) FootprintBlocks() int {
	return m.Threads*m.PrivateBlocks + m.SharedROBlocks + m.SharedRWBlocks + m.LockBlocks
}

// Scaled returns a copy with region sizes and trace length multiplied by
// f (minimum 1 block / 1 access). Experiments use it to shrink the suite
// proportionally when targeting smaller LLCs.
func (m Model) Scaled(f float64) Model {
	scale := func(v int) int {
		s := int(float64(v) * f)
		if s < 1 {
			s = 1
		}
		return s
	}
	m.AccessesPerThread = scale(m.AccessesPerThread)
	m.PrivateBlocks = scale(m.PrivateBlocks)
	if m.SharedROBlocks > 0 {
		m.SharedROBlocks = scale(m.SharedROBlocks)
	}
	if m.SharedRWBlocks > 0 {
		m.SharedRWBlocks = scale(m.SharedRWBlocks)
	}
	return m
}

// Generate returns the model's global interleaved trace for the given
// seed. The reader produces exactly TotalAccesses accesses.
func (m Model) Generate(seed uint64) (trace.Reader, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	master := rng.New(seed ^ hashName(m.Name))
	streams := make([]trace.Reader, m.Threads)
	for t := 0; t < m.Threads; t++ {
		g, err := newThreadGen(m, uint8(t), master.Split())
		if err != nil {
			return nil, err
		}
		streams[t] = trace.NewFuncReader(g.next)
	}
	return trace.NewInterleaver(streams, m.Burst, master.Split()), nil
}

// hashName folds the model name into the seed so equal seeds still give
// different (but reproducible) streams per model.
func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// regionKind indexes the four region kinds.
type regionKind int

const (
	regPrivate regionKind = iota
	regSharedRO
	regSharedRW
	regLock
)

// threadGen produces one thread's access stream.
type threadGen struct {
	m      Model
	tid    uint8
	rnd    *rng.Source
	issued int

	privZipf *rng.Zipf
	roZipf   *rng.Zipf

	// Sequential-run state per region.
	cursor  [4]uint64 // last in-region block per region kind
	running [4]int    // remaining accesses of the current sequential run
	sweep   uint64    // RWSweep cursor (per-thread revolution position)

	pSeqStart float64
}

func newThreadGen(m Model, tid uint8, rnd *rng.Source) (*threadGen, error) {
	g := &threadGen{m: m, tid: tid, rnd: rnd}
	var err error
	if g.privZipf, err = rng.NewZipf(rnd.Split(), m.PrivateZipf, m.PrivateBlocks); err != nil {
		return nil, err
	}
	if m.SharedROBlocks > 0 {
		if g.roZipf, err = rng.NewZipf(rnd.Split(), m.SharedROZipf, m.SharedROBlocks); err != nil {
			return nil, err
		}
	}
	if m.SeqRunLen > 1 {
		g.pSeqStart = 1.0 / float64(m.SeqRunLen)
	}
	return g, nil
}

// phase returns the thread's current phase in [0, Phases).
func (g *threadGen) phase() int {
	p := g.issued * g.m.Phases / g.m.AccessesPerThread
	if p >= g.m.Phases {
		p = g.m.Phases - 1
	}
	return p
}

// next produces the thread's next access.
func (g *threadGen) next() (trace.Access, bool) {
	if g.issued >= g.m.AccessesPerThread {
		return trace.Access{}, false
	}
	kind := g.pickRegion()
	blockNo, write := g.pickBlock(kind)
	pc := g.pickPC(kind)
	g.issued++
	return trace.Access{
		Core:  g.tid,
		Write: write,
		PC:    pc,
		Addr:  trace.Addr(blockNo << trace.BlockShift),
	}, true
}

// pickRegion draws the region kind from the model's access mix.
func (g *threadGen) pickRegion() regionKind {
	u := g.rnd.Float64()
	if u < g.m.FracSharedRO {
		return regSharedRO
	}
	u -= g.m.FracSharedRO
	if u < g.m.FracSharedRW {
		return regSharedRW
	}
	u -= g.m.FracSharedRW
	if u < g.m.FracLock {
		return regLock
	}
	return regPrivate
}

// pickBlock chooses the block number and write flag for a region access.
func (g *threadGen) pickBlock(kind regionKind) (blockNo uint64, write bool) {
	var inRegion uint64
	var regionSize int
	switch kind {
	case regPrivate:
		regionSize = g.m.PrivateBlocks
		inRegion = g.seqOrJump(kind, regionSize, func() uint64 {
			// Per-phase rotation drifts the hot set through the region.
			hot := uint64(g.privZipf.Next())
			off := uint64(g.phase()) * uint64(regionSize) / uint64(g.m.Phases)
			return (hot + off) % uint64(regionSize)
		})
		write = g.rnd.Bool(g.m.WriteFrac)
		blockNo = privateBase + uint64(g.tid)*privateStride + inRegion

	case regSharedRO:
		regionSize = g.m.SharedROBlocks
		inRegion = g.seqOrJump(kind, regionSize, func() uint64 {
			hot := uint64(g.roZipf.Next())
			off := uint64(g.phase()) * uint64(regionSize) / uint64(g.m.Phases)
			return (hot + off) % uint64(regionSize)
		})
		write = false
		blockNo = sharedROBase + inRegion

	case regSharedRW:
		regionSize = g.m.SharedRWBlocks
		if g.m.RWSweep {
			inRegion = g.rwSweepBlock()
		} else {
			inRegion = g.seqOrJump(kind, regionSize, func() uint64 {
				return g.rwWindowBlock()
			})
		}
		write = g.rnd.Bool(g.m.WriteFrac)
		blockNo = sharedRWBase + inRegion

	case regLock:
		inRegion = g.rnd.Uint64n(uint64(g.m.LockBlocks))
		write = g.rnd.Bool(0.5)
		blockNo = lockBase + inRegion
	}
	return blockNo, write
}

// rwWindowBlock picks a block from the thread cluster's current hot window
// of the shared read-write region.
func (g *threadGen) rwWindowBlock() uint64 {
	size := uint64(g.m.SharedRWBlocks)
	window := uint64(float64(size) * g.m.RWWindowFrac)
	if window < 1 {
		window = 1
	}
	cluster := uint64(int(g.tid) / g.m.RWSharingDegree)
	// The window start advances each phase and is offset per cluster so
	// different clusters share different block ranges.
	start := (uint64(g.phase())*window + cluster*window*7919) % size
	return (start + g.rnd.Uint64n(window)) % size
}

// rwSweepBlock advances the thread's sweep cursor through the cluster's
// share of the region. All threads of a cluster progress at the same
// per-thread rate, so their cursors stay loosely aligned and each block
// receives a burst of cross-core touches once per revolution.
func (g *threadGen) rwSweepBlock() uint64 {
	size := uint64(g.m.SharedRWBlocks)
	clusters := uint64((g.m.Threads + g.m.RWSharingDegree - 1) / g.m.RWSharingDegree)
	span := size / clusters
	if span < 1 {
		span = 1
	}
	cluster := uint64(int(g.tid) / g.m.RWSharingDegree)
	// Small jitter keeps cluster mates from colliding on the exact same
	// block every time while preserving the burst clustering.
	jitter := g.rnd.Uint64n(16)
	pos := (g.sweep + jitter) % span
	g.sweep++
	return (cluster*span + pos) % size
}

// seqOrJump implements the sequential-run/random-jump mix: while a run is
// active the cursor advances by one block; otherwise jump() chooses a new
// position and, with the model's run-start probability, begins a new run.
func (g *threadGen) seqOrJump(kind regionKind, regionSize int, jump func() uint64) uint64 {
	if g.running[kind] > 0 {
		g.running[kind]--
		g.cursor[kind] = (g.cursor[kind] + 1) % uint64(regionSize)
		return g.cursor[kind]
	}
	b := jump()
	g.cursor[kind] = b
	if g.pSeqStart > 0 && g.rnd.Bool(g.pSeqStart) {
		// Run length uniform in [1, 2*SeqRunLen-1] → mean ≈ SeqRunLen.
		g.running[kind] = 1 + g.rnd.Intn(2*g.m.SeqRunLen-1)
	}
	return b
}

// pickPC draws the instruction address for an access: one of the model's
// per-region static PCs, shared by all threads (SPMD code).
func (g *threadGen) pickPC(kind regionKind) uint64 {
	k := g.rnd.Uint64n(uint64(g.m.PCsPerRegion))
	return pcBase + uint64(kind)*pcRegionStride + k*4
}
