package workloads

import "fmt"

// defaultThreads matches the paper's 8-core CMP: one worker per core.
const defaultThreads = 8

// defaultAccesses is the per-thread trace length of the full-size suite
// (8 threads × 250k = 2M references per application).
const defaultAccesses = 250_000

// base returns the common skeleton every model starts from. The private
// locality default is deliberately bimodal (Zipf 1.35): the hot head fits
// in the private L2 and never reaches the LLC, while the tail streams —
// matching how real applications look from the LLC's vantage point.
func base(name, suite, desc string) Model {
	return Model{
		Name:              name,
		Suite:             suite,
		Description:       desc,
		Threads:           defaultThreads,
		AccessesPerThread: defaultAccesses,
		PrivateBlocks:     12_000,
		PrivateZipf:       1.35,
		SharedROZipf:      0.8,
		SeqRunLen:         8,
		WriteFrac:         0.3,
		Phases:            4,
		RWWindowFrac:      0.25,
		RWSharingDegree:   defaultThreads,
		Burst:             48,
		PCsPerRegion:      24,
		LockBlocks:        32,
	}
}

// Suite returns the full synthetic application suite.
//
// Parameters encode each application's published sharing profile —
// working-set sizes, the balance of private vs. shared-read-only vs.
// shared-read-write traffic, write intensity and the number of threads
// that touch the same shared data concurrently. The shared read-write
// working sets are deliberately spread across the 4 MB / 8 MB capacity
// boundary: some fit a 4 MB LLC once sharing-aware protection reclaims
// capacity from streaming fills (big oracle gains at 4 MB), some fit only
// at 8 MB (gains appear there), and some fit nowhere (the oracle has
// nothing to offer) — the spread that produces the paper's "6 % at 4 MB,
// 10 % at 8 MB" average headroom profile.
func Suite() []Model {
	var s []Model
	add := func(m Model) { s = append(s, m) }

	// ---------------------------------------------------------------- PARSEC
	m := base("blackscholes", "parsec", "data-parallel option pricing; almost no sharing")
	m.PrivateBlocks = 8_000
	m.SharedROBlocks = 2_000
	m.FracSharedRO = 0.05
	m.FracLock = 0.005
	m.WriteFrac = 0.25
	add(m)

	m = base("bodytrack", "parsec", "computer vision; shared read-mostly model data")
	m.PrivateBlocks = 6_000
	m.SharedROBlocks = 30_000
	m.FracSharedRO = 0.20
	m.SharedRWBlocks = 120_000
	m.FracSharedRW = 0.20
	m.RWSweep = true
	m.RWSharingDegree = 2
	m.FracLock = 0.01
	add(m)

	m = base("canneal", "parsec", "simulated annealing over a large shared netlist graph")
	m.PrivateBlocks = 8_000
	m.SharedRWBlocks = 130_000
	m.FracSharedRW = 0.50
	m.RWSweep = true
	m.RWSharingDegree = 2
	m.WriteFrac = 0.15
	m.SeqRunLen = 2
	add(m)

	m = base("dedup", "parsec", "pipelined compression; shared hash table, write-heavy")
	m.PrivateBlocks = 8_000
	m.SharedROBlocks = 8_000
	m.FracSharedRO = 0.10
	m.SharedRWBlocks = 50_000
	m.FracSharedRW = 0.35
	m.WriteFrac = 0.45
	m.RWSweep = true
	m.RWSharingDegree = 4
	m.FracLock = 0.02
	m.SeqRunLen = 4
	add(m)

	m = base("facesim", "parsec", "physics simulation; big private partitions, boundary sharing")
	m.PrivateBlocks = 20_000
	m.SharedRWBlocks = 100_000
	m.FracSharedRW = 0.16
	m.RWSweep = true
	m.RWSharingDegree = 2
	m.SeqRunLen = 24
	add(m)

	m = base("ferret", "parsec", "similarity search pipeline; large read-only database, queues")
	m.PrivateBlocks = 6_000
	m.SharedROBlocks = 100_000
	m.FracSharedRO = 0.40
	m.SharedROZipf = 0.9
	m.SharedRWBlocks = 2_000
	m.FracSharedRW = 0.08
	m.RWSharingDegree = 2
	m.WriteFrac = 0.5
	m.FracLock = 0.02
	add(m)

	m = base("fluidanimate", "parsec", "particle simulation; neighbour-cell sharing")
	m.PrivateBlocks = 8_000
	m.SharedRWBlocks = 40_000
	m.FracSharedRW = 0.30
	m.RWSweep = true
	m.RWSharingDegree = 2
	m.FracLock = 0.015
	add(m)

	m = base("freqmine", "parsec", "frequent itemset mining; shared FP-tree, read-mostly")
	m.PrivateBlocks = 8_000
	m.SharedROBlocks = 70_000
	m.FracSharedRO = 0.45
	m.SharedROZipf = 1.1
	m.SeqRunLen = 3
	add(m)

	m = base("streamcluster", "parsec", "online clustering; shared points, hot shared centers")
	m.PrivateBlocks = 4_000
	m.SharedROBlocks = 90_000
	m.FracSharedRO = 0.55
	m.SharedROZipf = 0.7
	m.SharedRWBlocks = 512
	m.FracSharedRW = 0.10
	m.RWSharingDegree = 8
	m.RWWindowFrac = 1.0
	m.WriteFrac = 0.4
	m.Phases = 8
	add(m)

	m = base("swaptions", "parsec", "Monte-Carlo pricing; embarrassingly parallel, private")
	m.PrivateBlocks = 12_000
	m.PrivateZipf = 0.9
	m.SharedROBlocks = 1_000
	m.FracSharedRO = 0.02
	add(m)

	m = base("vips", "parsec", "image pipeline; stage-to-stage buffer handoff")
	m.PrivateBlocks = 8_000
	m.SharedROBlocks = 10_000
	m.FracSharedRO = 0.10
	m.SharedRWBlocks = 130_000
	m.FracSharedRW = 0.30
	m.RWSweep = true
	m.RWSharingDegree = 2
	m.SeqRunLen = 16
	m.WriteFrac = 0.4
	add(m)

	m = base("x264", "parsec", "video encoder; producer-consumer reference frames")
	m.PrivateBlocks = 8_000
	m.SharedROBlocks = 10_000
	m.FracSharedRO = 0.10
	m.SharedRWBlocks = 120_000
	m.FracSharedRW = 0.40
	m.RWSweep = true
	m.RWSharingDegree = 2
	m.WriteFrac = 0.35
	m.SeqRunLen = 8
	add(m)

	// -------------------------------------------------------------- SPLASH-2
	m = base("barnes", "splash2", "N-body; heavily shared octree, high sharing degree")
	m.PrivateBlocks = 6_000
	m.SharedRWBlocks = 45_000
	m.FracSharedRW = 0.45
	m.RWSweep = true
	m.RWSharingDegree = 8
	m.WriteFrac = 0.25
	m.FracLock = 0.02
	m.SeqRunLen = 2
	add(m)

	m = base("fft", "splash2", "all-to-all transpose phases over a shared matrix")
	m.PrivateBlocks = 8_000
	m.SharedRWBlocks = 110_000
	m.FracSharedRW = 0.50
	m.RWSweep = true
	m.RWSharingDegree = 4
	m.WriteFrac = 0.5
	m.SeqRunLen = 16
	add(m)

	m = base("lu", "splash2", "blocked dense factorization; pivot row/column sharing")
	m.PrivateBlocks = 8_000
	m.SharedROBlocks = 30_000
	m.FracSharedRO = 0.20
	m.SharedRWBlocks = 100_000
	m.FracSharedRW = 0.30
	m.RWSweep = true
	m.RWSharingDegree = 4
	m.SeqRunLen = 32
	add(m)

	m = base("ocean", "splash2", "grid solver; nearest-neighbour boundary sharing")
	m.PrivateBlocks = 10_000
	m.SharedRWBlocks = 140_000
	m.FracSharedRW = 0.50
	m.RWSweep = true
	m.RWSharingDegree = 2
	m.WriteFrac = 0.4
	m.SeqRunLen = 32
	add(m)

	m = base("radix", "splash2", "radix sort; permutation writes over a huge key array")
	m.PrivateBlocks = 8_000
	m.SharedRWBlocks = 150_000
	m.FracSharedRW = 0.45
	m.RWSweep = true
	m.RWSharingDegree = 2
	m.WriteFrac = 0.7
	m.SeqRunLen = 4
	add(m)

	m = base("water", "splash2", "molecular dynamics; small working set, modest sharing")
	m.PrivateBlocks = 10_000
	m.SharedRWBlocks = 6_000
	m.FracSharedRW = 0.12
	m.RWSharingDegree = 4
	m.FracLock = 0.02
	add(m)

	// -------------------------------------------------------------- SPEC OMP
	m = base("applu", "specomp", "CFD solver; big private tiles, face sharing")
	m.PrivateBlocks = 25_000
	m.SharedRWBlocks = 100_000
	m.FracSharedRW = 0.16
	m.RWSweep = true
	m.RWSharingDegree = 2
	m.WriteFrac = 0.4
	m.SeqRunLen = 48
	add(m)

	m = base("equake", "specomp", "earthquake FEM; shared mesh read-mostly")
	m.PrivateBlocks = 10_000
	m.SharedROBlocks = 50_000
	m.FracSharedRO = 0.30
	m.SharedRWBlocks = 20_000
	m.FracSharedRW = 0.10
	m.RWSharingDegree = 2
	m.SeqRunLen = 24
	add(m)

	m = base("swim", "specomp", "shallow-water stencil; streaming private + halo sharing")
	m.PrivateBlocks = 20_000
	m.SharedRWBlocks = 100_000
	m.FracSharedRW = 0.25
	m.RWSweep = true
	m.RWSharingDegree = 2
	m.WriteFrac = 0.45
	m.SeqRunLen = 32
	add(m)

	m = base("wupwise", "specomp", "lattice QCD; mixed private/shared traffic")
	m.PrivateBlocks = 15_000
	m.SharedROBlocks = 20_000
	m.FracSharedRO = 0.20
	m.SharedRWBlocks = 10_000
	m.FracSharedRW = 0.08
	m.RWSharingDegree = 2
	m.SeqRunLen = 16
	add(m)

	return s
}

// ByName returns the named suite model.
func ByName(name string) (Model, error) {
	for _, m := range Suite() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("workloads: unknown workload %q (see Names)", name)
}

// Names lists the suite's workload names in order.
func Names() []string {
	var names []string
	for _, m := range Suite() {
		names = append(names, m.Name)
	}
	return names
}

// BySuite returns the models belonging to one source suite ("parsec",
// "splash2", "specomp").
func BySuite(suite string) []Model {
	var out []Model
	for _, m := range Suite() {
		if m.Suite == suite {
			out = append(out, m)
		}
	}
	return out
}
