package workloads

import (
	"testing"

	"sharellc/internal/trace"
)

func TestSuiteAllValid(t *testing.T) {
	suite := Suite()
	if len(suite) < 12 {
		t.Fatalf("suite has only %d models", len(suite))
	}
	seen := map[string]bool{}
	for _, m := range suite {
		if err := m.Validate(); err != nil {
			t.Errorf("model %s invalid: %v", m.Name, err)
		}
		if seen[m.Name] {
			t.Errorf("duplicate model name %s", m.Name)
		}
		seen[m.Name] = true
		switch m.Suite {
		case "parsec", "splash2", "specomp":
		default:
			t.Errorf("model %s has unknown suite %q", m.Name, m.Suite)
		}
	}
}

// TestSweepModelsHaveRevolutions lints the suite's calibration: every
// sweep-pattern model must complete at least one full revolution of its
// cluster span (otherwise the shared region has no reuse at all and the
// model measures nothing).
func TestSweepModelsHaveRevolutions(t *testing.T) {
	for _, m := range Suite() {
		if !m.RWSweep {
			continue
		}
		clusters := (m.Threads + m.RWSharingDegree - 1) / m.RWSharingDegree
		span := m.SharedRWBlocks / clusters
		if span < 1 {
			span = 1
		}
		rwPerThread := float64(m.AccessesPerThread) * m.FracSharedRW
		revolutions := rwPerThread / float64(span)
		if revolutions < 1.5 {
			t.Errorf("%s: only %.2f sweep revolutions (span %d, rw/thread %.0f)",
				m.Name, revolutions, span, rwPerThread)
		}
	}
}

// TestSuiteClassCoverage lints the capacity-class spread the oracle
// experiments rely on: the suite must contain shared working sets below
// the 4 MB capacity, between 4 MB and 8 MB, and above 8 MB, plus
// low-sharing applications.
func TestSuiteClassCoverage(t *testing.T) {
	const blocks4MB, blocks8MB = 65536, 131072
	var under4, between, over8, lowSharing int
	for _, m := range Suite() {
		shared := m.SharedRWBlocks + m.SharedROBlocks
		frac := m.FracSharedRW + m.FracSharedRO
		switch {
		case frac < 0.1:
			lowSharing++
		case shared < blocks4MB:
			under4++
		case shared < blocks8MB:
			between++
		default:
			over8++
		}
	}
	if under4 == 0 || between == 0 || over8 == 0 || lowSharing == 0 {
		t.Errorf("capacity classes unbalanced: <4MB=%d, 4-8MB=%d, >8MB=%d, low-sharing=%d",
			under4, between, over8, lowSharing)
	}
}

func TestBySuiteCoversAll(t *testing.T) {
	total := 0
	for _, s := range []string{"parsec", "splash2", "specomp"} {
		ms := BySuite(s)
		if len(ms) == 0 {
			t.Errorf("suite %s empty", s)
		}
		total += len(ms)
	}
	if total != len(Suite()) {
		t.Errorf("BySuite partitions cover %d of %d models", total, len(Suite()))
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "canneal" {
		t.Errorf("got %s", m.Name)
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown name accepted")
	}
	if len(Names()) != len(Suite()) {
		t.Error("Names length mismatch")
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	good := base("t", "parsec", "")
	bad := []func(*Model){
		func(m *Model) { m.Name = "" },
		func(m *Model) { m.Threads = 0 },
		func(m *Model) { m.Threads = 200 },
		func(m *Model) { m.AccessesPerThread = 0 },
		func(m *Model) { m.PrivateBlocks = 0 },
		func(m *Model) { m.FracSharedRO = -0.1 },
		func(m *Model) { m.FracSharedRO = 0.7; m.FracSharedRW = 0.7 },
		func(m *Model) { m.FracSharedRO = 0.2; m.SharedROBlocks = 0 },
		func(m *Model) { m.FracSharedRW = 0.2; m.SharedRWBlocks = 0 },
		func(m *Model) { m.FracLock = 0.2; m.LockBlocks = 0 },
		func(m *Model) { m.WriteFrac = 1.5 },
		func(m *Model) { m.Phases = 0 },
		func(m *Model) { m.FracSharedRW = 0.2; m.SharedRWBlocks = 100; m.RWWindowFrac = 0 },
		func(m *Model) { m.FracSharedRW = 0.2; m.SharedRWBlocks = 100; m.RWSharingDegree = 0 },
		func(m *Model) { m.SeqRunLen = 0 },
		func(m *Model) { m.Burst = 0 },
		func(m *Model) { m.PCsPerRegion = 0 },
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("base model invalid: %v", err)
	}
	for i, mutate := range bad {
		m := good
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d validated: %+v", i, m)
		}
	}
}

// genAll collects a model's full trace.
func genAll(t *testing.T, m Model, seed uint64) []trace.Access {
	t.Helper()
	r, err := m.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	accs, err := trace.Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	return accs
}

// tiny returns a fast-to-generate model for directed tests.
func tiny() Model {
	m := base("tiny", "parsec", "test model")
	m.Threads = 4
	m.AccessesPerThread = 5_000
	m.PrivateBlocks = 500
	m.SharedROBlocks = 400
	m.FracSharedRO = 0.2
	m.SharedRWBlocks = 600
	m.FracSharedRW = 0.2
	m.RWSharingDegree = 4
	m.FracLock = 0.02
	return m
}

func TestGenerateLengthAndCores(t *testing.T) {
	m := tiny()
	accs := genAll(t, m, 1)
	if len(accs) != m.TotalAccesses() {
		t.Fatalf("trace length %d, want %d", len(accs), m.TotalAccesses())
	}
	perCore := map[uint8]int{}
	for _, a := range accs {
		perCore[a.Core]++
	}
	if len(perCore) != m.Threads {
		t.Fatalf("trace uses %d cores, want %d", len(perCore), m.Threads)
	}
	for c, n := range perCore {
		if n != m.AccessesPerThread {
			t.Errorf("core %d issued %d accesses, want %d", c, n, m.AccessesPerThread)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m := tiny()
	a := genAll(t, m, 42)
	b := genAll(t, m, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverged at access %d", i)
		}
	}
}

func TestGenerateSeedSensitive(t *testing.T) {
	m := tiny()
	a := genAll(t, m, 1)
	b := genAll(t, m, 2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if float64(same) > 0.5*float64(len(a)) {
		t.Errorf("seeds 1 and 2 produced %d/%d identical accesses", same, len(a))
	}
}

func TestModelsDifferPerName(t *testing.T) {
	// Same seed, different models → different streams (name is folded in).
	a := tiny()
	b := tiny()
	b.Name = "tiny2"
	ta := genAll(t, a, 7)
	tb := genAll(t, b, 7)
	same := 0
	for i := range ta {
		if ta[i] == tb[i] {
			same++
		}
	}
	if float64(same) > 0.5*float64(len(ta)) {
		t.Error("different model names produced near-identical traces")
	}
}

func TestRegionDisjointness(t *testing.T) {
	accs := genAll(t, tiny(), 3)
	for _, a := range accs {
		blockNo := a.Addr.BlockID()
		region := blockNo >> 40
		switch region {
		case 1: // private: check thread slot matches issuing core
			slot := (blockNo - privateBase) / privateStride
			if slot != uint64(a.Core) {
				t.Fatalf("core %d touched private region of thread %d", a.Core, slot)
			}
		case 2: // shared RO must never be written
			if a.Write {
				t.Fatal("write to shared read-only region")
			}
		case 3, 4: // shared RW / locks
		default:
			t.Fatalf("access outside any region: block %#x", blockNo)
		}
	}
}

func TestRegionMixRoughlyMatchesFractions(t *testing.T) {
	m := tiny()
	accs := genAll(t, m, 5)
	counts := map[uint64]int{}
	for _, a := range accs {
		counts[a.Addr.BlockID()>>40]++
	}
	total := float64(len(accs))
	check := func(region uint64, want float64) {
		got := float64(counts[region]) / total
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("region %d fraction = %.3f, want ≈%.2f", region, got, want)
		}
	}
	check(2, m.FracSharedRO)
	check(3, m.FracSharedRW)
	check(1, 1-m.FracSharedRO-m.FracSharedRW-m.FracLock)
}

func TestRWSharingDegreeClusters(t *testing.T) {
	// With RWSharingDegree 2 on 4 threads, cores {0,1} and {2,3} use
	// disjoint windows most of the time. Verify cross-cluster overlap in
	// shared-RW blocks is far below within-cluster overlap.
	m := tiny()
	m.RWSharingDegree = 2
	m.Phases = 1 // freeze windows
	accs := genAll(t, m, 9)
	touched := make([]map[uint64]bool, m.Threads)
	for i := range touched {
		touched[i] = map[uint64]bool{}
	}
	for _, a := range accs {
		if a.Addr.BlockID()>>40 == 3 {
			touched[a.Core][a.Addr.BlockID()] = true
		}
	}
	overlap := func(a, b map[uint64]bool) int {
		n := 0
		for k := range a {
			if b[k] {
				n++
			}
		}
		return n
	}
	within := overlap(touched[0], touched[1])
	across := overlap(touched[0], touched[2])
	if within == 0 {
		t.Fatal("cluster mates never overlapped in shared RW")
	}
	if across >= within {
		t.Errorf("cross-cluster overlap %d >= within-cluster %d", across, within)
	}
}

func TestSharedRODraws(t *testing.T) {
	// All threads draw from the same RO region; with a hot zipf head the
	// most popular block should be touched by several threads.
	m := tiny()
	m.SharedROZipf = 1.2
	accs := genAll(t, m, 11)
	byBlock := map[uint64]map[uint8]bool{}
	for _, a := range accs {
		if a.Addr.BlockID()>>40 == 2 {
			if byBlock[a.Addr.BlockID()] == nil {
				byBlock[a.Addr.BlockID()] = map[uint8]bool{}
			}
			byBlock[a.Addr.BlockID()][a.Core] = true
		}
	}
	maxDeg := 0
	for _, cores := range byBlock {
		if len(cores) > maxDeg {
			maxDeg = len(cores)
		}
	}
	if maxDeg < m.Threads {
		t.Errorf("hottest RO block touched by %d threads, want %d", maxDeg, m.Threads)
	}
}

func TestScaled(t *testing.T) {
	m := tiny()
	s := m.Scaled(0.5)
	if s.AccessesPerThread != m.AccessesPerThread/2 {
		t.Errorf("scaled accesses = %d", s.AccessesPerThread)
	}
	if s.PrivateBlocks != m.PrivateBlocks/2 || s.SharedROBlocks != m.SharedROBlocks/2 {
		t.Error("scaled region sizes wrong")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scaled model invalid: %v", err)
	}
	// Extreme downscale clamps to 1, never 0.
	e := m.Scaled(1e-9)
	if e.PrivateBlocks < 1 || e.AccessesPerThread < 1 {
		t.Error("extreme scaling produced zero geometry")
	}
}

func TestFootprintBlocks(t *testing.T) {
	m := tiny()
	want := m.Threads*m.PrivateBlocks + m.SharedROBlocks + m.SharedRWBlocks + m.LockBlocks
	if got := m.FootprintBlocks(); got != want {
		t.Errorf("FootprintBlocks = %d, want %d", got, want)
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	m := tiny()
	m.Threads = 0
	if _, err := m.Generate(1); err == nil {
		t.Error("Generate accepted invalid model")
	}
}

func TestPCsComeFromRegionPools(t *testing.T) {
	m := tiny()
	m.PCsPerRegion = 4
	accs := genAll(t, m, 13)
	pcs := map[uint64]bool{}
	for _, a := range accs {
		pcs[a.PC] = true
	}
	// 4 region kinds x 4 PCs = at most 16 distinct PCs.
	if len(pcs) > 16 {
		t.Errorf("%d distinct PCs, want <= 16", len(pcs))
	}
	for pc := range pcs {
		if pc < pcBase {
			t.Errorf("PC %#x below pool base", pc)
		}
	}
}

func TestRWSweepCoversRegion(t *testing.T) {
	m := tiny()
	m.RWSweep = true
	m.SharedRWBlocks = 300
	m.FracSharedRW = 0.4
	m.RWSharingDegree = 4 // one cluster of 4 threads
	accs := genAll(t, m, 19)
	touched := map[uint64]bool{}
	for _, a := range accs {
		if a.Addr.BlockID()>>40 == 3 {
			touched[a.Addr.BlockID()] = true
		}
	}
	// 4 threads x 5000 x 0.4 = 8000 RW accesses over a 300-block region:
	// several revolutions, so the whole region must be covered.
	if len(touched) < m.SharedRWBlocks*9/10 {
		t.Errorf("sweep touched %d of %d region blocks", len(touched), m.SharedRWBlocks)
	}
}

func TestRWSweepBurstsAreShared(t *testing.T) {
	// Loose-lockstep sweeps must produce clustered cross-core touches:
	// most region blocks should be touched by at least 2 distinct cores
	// within a window of 2000 global accesses.
	m := tiny()
	m.RWSweep = true
	m.SharedRWBlocks = 400
	m.FracSharedRW = 0.4
	m.RWSharingDegree = 4
	accs := genAll(t, m, 23)
	type touch struct {
		idx  int
		core uint8
	}
	touches := map[uint64][]touch{}
	for i, a := range accs {
		if a.Addr.BlockID()>>40 == 3 {
			b := a.Addr.BlockID()
			touches[b] = append(touches[b], touch{i, a.Core})
		}
	}
	clustered := 0
	for _, ts := range touches {
		for i := 1; i < len(ts); i++ {
			if ts[i].core != ts[i-1].core && ts[i].idx-ts[i-1].idx < 2000 {
				clustered++
				break
			}
		}
	}
	if frac := float64(clustered) / float64(len(touches)); frac < 0.6 {
		t.Errorf("only %.0f%% of sweep blocks saw clustered cross-core touches", 100*frac)
	}
}

func TestRWSweepClustersDisjoint(t *testing.T) {
	m := tiny()
	m.RWSweep = true
	m.SharedRWBlocks = 400
	m.FracSharedRW = 0.4
	m.RWSharingDegree = 2 // clusters {0,1} and {2,3}
	accs := genAll(t, m, 29)
	byCore := make([]map[uint64]bool, m.Threads)
	for i := range byCore {
		byCore[i] = map[uint64]bool{}
	}
	for _, a := range accs {
		if a.Addr.BlockID()>>40 == 3 {
			byCore[a.Core][a.Addr.BlockID()] = true
		}
	}
	overlap := func(a, b map[uint64]bool) int {
		n := 0
		for k := range a {
			if b[k] {
				n++
			}
		}
		return n
	}
	within := overlap(byCore[0], byCore[1])
	across := overlap(byCore[0], byCore[2])
	if within == 0 {
		t.Fatal("cluster mates never overlapped under sweep")
	}
	if across >= within/2 {
		t.Errorf("cross-cluster overlap %d not well below within-cluster %d", across, within)
	}
}

func TestSequentialRunsPresent(t *testing.T) {
	m := tiny()
	m.SeqRunLen = 16
	m.FracSharedRO = 0
	m.FracSharedRW = 0
	m.FracLock = 0
	m.Threads = 1
	accs := genAll(t, m, 17)
	seq := 0
	for i := 1; i < len(accs); i++ {
		if accs[i].Addr.BlockID() == accs[i-1].Addr.BlockID()+1 {
			seq++
		}
	}
	frac := float64(seq) / float64(len(accs))
	if frac < 0.5 {
		t.Errorf("sequential-successor fraction = %.2f, want > 0.5 with SeqRunLen 16", frac)
	}
}
