package workloads

import (
	"fmt"

	"sharellc/internal/rng"
	"sharellc/internal/trace"
)

// mixSlotShift places each mix slot's address space above the region
// bits (regions occupy block-number bits up to ~42), so the co-scheduled
// programs can never alias.
const mixSlotShift = 44

// Mix builds a *multiprogrammed* workload: each model runs single-threaded,
// pinned to its own core, in a disjoint address space — the co-scheduled
// independent programs that most LLC-replacement proposals of the paper's
// era were evaluated on. By construction nothing is ever shared, which is
// exactly the paper's motivation: policies tuned on such mixes cannot
// exhibit (or reward) sharing-awareness. The M1 experiment runs the
// sharing oracle on mixes and shows ~0 gain.
//
// Mix returns the merged trace reader; MixName derives a display name.
func Mix(models []Model, seed uint64) (trace.Reader, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("workloads: empty mix")
	}
	if len(models) > 128 {
		return nil, fmt.Errorf("workloads: mix of %d programs exceeds 128 cores", len(models))
	}
	master := rng.New(seed ^ 0xA11C)
	streams := make([]trace.Reader, len(models))
	for slot, m := range models {
		m.Threads = 1 // single-threaded instance
		inner, err := m.Generate(seed + uint64(slot)*1e6)
		if err != nil {
			return nil, fmt.Errorf("workloads: mix slot %d (%s): %w", slot, m.Name, err)
		}
		streams[slot] = remapReader(inner, uint8(slot))
	}
	return trace.NewInterleaver(streams, 48, master.Split()), nil
}

// remapReader pins a single-threaded stream to core slot and moves its
// addresses into the slot's private address space.
func remapReader(inner trace.Reader, slot uint8) trace.Reader {
	offset := trace.Addr(uint64(slot) << (mixSlotShift + trace.BlockShift))
	return trace.NewFuncReader(func() (trace.Access, bool) {
		a, ok := inner.Next()
		if !ok {
			return trace.Access{}, false
		}
		a.Core = slot
		a.Addr += offset
		return a, true
	})
}

// MixName derives a display name for a mix.
func MixName(models []Model) string {
	if len(models) == 0 {
		return "mix()"
	}
	name := "mix(" + models[0].Name
	for _, m := range models[1:] {
		name += "+" + m.Name
	}
	return name + ")"
}
