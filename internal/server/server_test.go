package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sharellc/internal/cache"
	"sharellc/internal/core"
	"sharellc/internal/report"
	"sharellc/internal/sim"
)

// fastReq is the canonical small request used across tests: scale 0.02
// with two workloads keeps a full f1 run around a second.
func fastReq() Request {
	return Request{Exp: "f1", Seed: 1, Scale: 0.02, Workloads: []string{"canneal", "swaptions"}}
}

func postJob(t *testing.T, ts *httptest.Server, req Request) (jobView, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

func getJob(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitDone polls until the job reaches a terminal state.
func waitDone(t *testing.T, ts *httptest.Server, id string, within time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if v.State.terminal() {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %v", id, within)
	return jobView{}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Manager().Shutdown(ctx)
	})
	return s, ts
}

// TestEndToEndMatchesDirectRun is the acceptance criterion: the daemon's
// JSON tables for f1 must be bit-identical to running the experiment
// directly through the shared index (which is what sharesim -json does).
func TestEndToEndMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	v, code := postJob(t, ts, fastReq())
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d, want 202", code)
	}
	v = waitDone(t, ts, v.ID, 2*time.Minute)
	if v.State != stateDone || v.Cached {
		t.Fatalf("job state = %s cached=%v, want done/false (err %q)", v.State, v.Cached, v.Error)
	}

	// Direct run through the same index, same knobs as the normalized request.
	exp, err := sim.ExperimentByID("f1")
	if err != nil {
		t.Fatal(err)
	}
	models, err := sim.ModelsByName([]string{"canneal", "swaptions"})
	if err != nil {
		t.Fatal(err)
	}
	suite, err := sim.NewSuite(sim.Config{Machine: cache.DefaultConfig(), Seed: 1, Scale: 0.02, Models: models})
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.Run(suite, sim.ExpOptions{
		LLCSize: 4 * cache.MB, LLCWays: 16, Prot: core.Options{Strength: core.Full},
	})
	if err != nil {
		t.Fatal(err)
	}

	gotJSON, _ := json.Marshal(v.Tables)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("daemon tables differ from direct run:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestCacheHitServedWithoutRun: a repeated identical POST returns done
// immediately from the cache, and /metrics records the hit.
func TestCacheHitServedWithoutRun(t *testing.T) {
	var runs int
	var mu sync.Mutex
	runner := func(ctx context.Context, req Request, progress func(int, int, string)) ([]*report.Table, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		return []*report.Table{{Title: "stub", Headers: []string{"h"}, Rows: [][]string{{"x"}}}}, nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: runner})

	v1, code := postJob(t, ts, fastReq())
	if code != http.StatusAccepted {
		t.Fatalf("first POST status = %d", code)
	}
	waitDone(t, ts, v1.ID, 10*time.Second)

	v2, code := postJob(t, ts, fastReq())
	if code != http.StatusOK {
		t.Errorf("cached POST status = %d, want 200", code)
	}
	if v2.State != stateDone || !v2.Cached {
		t.Errorf("cached job state=%s cached=%v, want done/true", v2.State, v2.Cached)
	}
	if len(v2.Tables) != 1 || v2.Tables[0].Title != "stub" {
		t.Errorf("cached tables wrong: %+v", v2.Tables)
	}
	mu.Lock()
	if runs != 1 {
		t.Errorf("runner ran %d times, want 1", runs)
	}
	mu.Unlock()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metricsText, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"sharesimd_cache_hits_total 1",
		"sharesimd_cache_misses_total 1",
		`sharesimd_jobs_total{state="done"} 1`,
		`sharesimd_job_duration_seconds_count{exp="f1"} 1`,
	} {
		if !strings.Contains(string(metricsText), want) {
			t.Errorf("metrics missing %q:\n%s", want, metricsText)
		}
	}
}

// TestConcurrentIdenticalPostsCoalesce: two identical POSTs racing while
// the runner blocks must share one job and one run.
func TestConcurrentIdenticalPostsCoalesce(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var runs int
	var mu sync.Mutex
	runner := func(ctx context.Context, req Request, progress func(int, int, string)) ([]*report.Table, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		close(started)
		<-release
		return []*report.Table{{Title: "stub"}}, nil
	}
	_, ts := newTestServer(t, Config{Workers: 2, Runner: runner})

	v1, code := postJob(t, ts, fastReq())
	if code != http.StatusAccepted {
		t.Fatalf("first POST status = %d", code)
	}
	<-started // runner is now holding the job in running state

	v2, code := postJob(t, ts, fastReq())
	if code != http.StatusOK {
		t.Errorf("coalesced POST status = %d, want 200", code)
	}
	if v2.ID != v1.ID {
		t.Errorf("coalesced POST got job %s, want %s", v2.ID, v1.ID)
	}
	close(release)
	waitDone(t, ts, v1.ID, 10*time.Second)

	mu.Lock()
	if runs != 1 {
		t.Errorf("runner ran %d times, want 1", runs)
	}
	mu.Unlock()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metricsText, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(metricsText), "sharesimd_jobs_coalesced_total 1") {
		t.Errorf("metrics missing coalesced counter:\n%s", metricsText)
	}
}

// TestCancelRunningJob: DELETE on a running job cancels its context and
// the job lands in cancelled promptly, freeing the worker.
func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{}, 4) // one signal per run; runner is shared by both jobs below
	runner := func(ctx context.Context, req Request, progress func(int, int, string)) ([]*report.Table, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: runner})

	v, _ := postJob(t, ts, fastReq())
	<-started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}

	start := time.Now()
	final := waitDone(t, ts, v.ID, 5*time.Second)
	if final.State != stateCancelled {
		t.Errorf("state = %s, want cancelled", final.State)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}

	// The worker must be free again: a different request should run.
	done := make(chan struct{})
	go func() {
		req2 := fastReq()
		req2.Seed = 99 // different key
		v2, _ := postJob(t, ts, req2)
		// This runner blocks on ctx.Done, so cancel it too.
		httpReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v2.ID, nil)
		r2, err := http.DefaultClient.Do(httpReq)
		if err == nil {
			r2.Body.Close()
		}
		waitDone(t, ts, v2.ID, 5*time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker not freed after cancellation")
	}
}

// TestCancelQueuedJob: a job still in the queue cancels immediately and
// never runs.
func TestCancelQueuedJob(t *testing.T) {
	block := make(chan struct{})
	var mu sync.Mutex
	ran := map[string]bool{}
	runner := func(ctx context.Context, req Request, progress func(int, int, string)) ([]*report.Table, error) {
		mu.Lock()
		ran[req.Exp] = true
		mu.Unlock()
		<-block
		return []*report.Table{{}}, nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: runner})
	defer close(block)

	v1, _ := postJob(t, ts, fastReq()) // occupies the only worker
	q := fastReq()
	q.Exp = "f3" // different key, queues behind v1
	v2, code := postJob(t, ts, q)
	if code != http.StatusAccepted {
		t.Fatalf("queued POST status = %d", code)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v2.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	final := waitDone(t, ts, v2.ID, 5*time.Second)
	if final.State != stateCancelled {
		t.Errorf("queued job state = %s, want cancelled", final.State)
	}
	mu.Lock()
	if ran["f3"] {
		t.Error("cancelled queued job still ran")
	}
	mu.Unlock()
	_ = v1
}

// TestBadRequestsRejected: validation failures are 400s with messages.
func TestBadRequestsRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		body string
		want string
	}{
		{`{"exp":"f6"}`, "unknown experiment"},
		{`{"exp":"f1","workloads":["doom"]}`, "doom"},
		{`{"exp":"all"}`, "one job per experiment"},
		{`{"exp":"f1","scale":7}`, "scale"},
		{`{}`, "exp"},
		{`{"exp":"f1","bogus":1}`, "bogus"},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s status = %d, want 400", c.body, resp.StatusCode)
		}
		if !strings.Contains(string(b), c.want) {
			t.Errorf("POST %s error %q missing %q", c.body, b, c.want)
		}
	}
}

// TestQueueFullReturns503: submissions beyond workers+queue capacity are
// rejected with 503 and counted.
func TestQueueFullReturns503(t *testing.T) {
	block := make(chan struct{})
	runner := func(ctx context.Context, req Request, progress func(int, int, string)) ([]*report.Table, error) {
		<-block
		return []*report.Table{{}}, nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Runner: runner})
	defer close(block)

	ids := []string{"f1", "f2", "f3", "f4"}
	var got []int
	for _, id := range ids {
		r := fastReq()
		r.Exp = id
		_, code := postJob(t, ts, r)
		got = append(got, code)
	}
	// Worker takes one, queue holds one; with dequeue timing one extra
	// may sneak in, but the last must be rejected.
	if got[len(got)-1] != http.StatusServiceUnavailable {
		t.Errorf("statuses = %v, want final 503", got)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metricsText, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(metricsText), "sharesimd_jobs_rejected_total") ||
		strings.Contains(string(metricsText), "sharesimd_jobs_rejected_total 0\n") {
		t.Errorf("metrics missing rejected count:\n%s", metricsText)
	}
}

// TestEventsStream: the SSE endpoint replays history and ends with a
// terminal state event; progress events carry done/total.
func TestEventsStream(t *testing.T) {
	runner := func(ctx context.Context, req Request, progress func(int, int, string)) ([]*report.Table, error) {
		progress(1, 2, "canneal")
		progress(2, 2, "swaptions")
		return []*report.Table{{Title: "stub"}}, nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: runner})

	v, _ := postJob(t, ts, fastReq())
	waitDone(t, ts, v.ID, 10*time.Second)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body) // stream closes itself on terminal state
	text := string(body)
	for _, want := range []string{
		`"state":"queued"`, `"state":"running"`,
		`"done":1`, `"done":2`, `"total":2`, `"label":"canneal"`,
		`"state":"done"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("event stream missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "event: progress") || !strings.Contains(text, "event: state") {
		t.Errorf("stream missing event types:\n%s", text)
	}
}

// TestShutdownDrains: Shutdown waits for a running job, and a generous
// deadline lets it finish as done rather than cancelled.
func TestShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	runner := func(ctx context.Context, req Request, progress func(int, int, string)) ([]*report.Table, error) {
		close(started)
		select {
		case <-release:
			return []*report.Table{{Title: "finished"}}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s := New(Config{Workers: 1, Runner: runner})
	ts := httptest.NewServer(s)
	defer ts.Close()

	v, _ := postJob(t, ts, fastReq())
	<-started

	go func() {
		time.Sleep(100 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Manager().Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}

	job, ok := s.Manager().Get(v.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	state, _, _, _, _, _, _ := job.Snapshot()
	if state != stateDone {
		t.Errorf("drained job state = %s, want done", state)
	}

	// Draining server refuses new work with 503.
	_, code := postJob(t, ts, fastReq())
	if code != http.StatusServiceUnavailable {
		t.Errorf("POST while draining status = %d, want 503", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", resp.StatusCode)
	}
}

// TestShutdownDeadlineCancelsRunning: when the drain deadline passes,
// running jobs are yanked via the base context and the drain reports it.
func TestShutdownDeadlineCancelsRunning(t *testing.T) {
	started := make(chan struct{})
	runner := func(ctx context.Context, req Request, progress func(int, int, string)) ([]*report.Table, error) {
		close(started)
		<-ctx.Done() // never finishes voluntarily
		return nil, ctx.Err()
	}
	s := New(Config{Workers: 1, Runner: runner})
	ts := httptest.NewServer(s)
	defer ts.Close()

	v, _ := postJob(t, ts, fastReq())
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	err := s.Manager().Shutdown(ctx)
	if err == nil {
		t.Fatal("drain with stuck job reported success")
	}
	job, _ := s.Manager().Get(v.ID)
	state, _, _, _, _, _, _ := job.Snapshot()
	if state != stateCancelled {
		t.Errorf("stuck job state = %s, want cancelled", state)
	}
}

// TestNormalizeDefaults: omitted fields hash identically to explicit
// defaults, so `{"exp":"f1"}` and the fully spelled request share a key.
func TestNormalizeDefaults(t *testing.T) {
	a := Request{Exp: "F1"}
	b := Request{Exp: "f1", LLCMB: 4, Ways: 16, Seed: 1, Scale: 1, Strength: "full"}
	if err := a.normalize(); err != nil {
		t.Fatal(err)
	}
	if err := b.normalize(); err != nil {
		t.Fatal(err)
	}
	if a.key() != b.key() {
		t.Errorf("default and explicit requests hash differently:\n%+v\n%+v", a, b)
	}
	c := b
	c.Seed = 2
	if err := c.normalize(); err != nil {
		t.Fatal(err)
	}
	if c.key() == b.key() {
		t.Error("different seeds share a cache key")
	}
}

// TestResultCacheLRU: the oldest entry is evicted at capacity.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	tbl := func(s string) []*report.Table { return []*report.Table{{Title: s}} }
	c.put("a", tbl("a"))
	c.put("b", tbl("b"))
	if _, ok := c.get("a"); !ok { // touch a → b is now LRU
		t.Fatal("a missing")
	}
	c.put("c", tbl("c"))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if c.len() != 2 {
		t.Errorf("cache len = %d, want 2", c.len())
	}
}

// TestExperimentsEndpoint lists the full catalogue.
func TestExperimentsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []struct {
		ID         string `json:"id"`
		Title      string `json:"title"`
		NeedsSuite bool   `json:"needs_suite"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != len(sim.Experiments()) {
		t.Errorf("listed %d experiments, want %d", len(list), len(sim.Experiments()))
	}
	ids := map[string]bool{}
	for _, e := range list {
		ids[e.ID] = true
	}
	for _, want := range []string{"config", "f1", "f9", "m1", "a5"} {
		if !ids[want] {
			t.Errorf("experiment list missing %s", want)
		}
	}
}

// TestJobNotFound: unknown IDs are 404 on every job route.
func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, route := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/job-999"},
		{http.MethodDelete, "/v1/jobs/job-999"},
		{http.MethodGet, "/v1/jobs/job-999/events"},
	} {
		req, _ := http.NewRequest(route.method, ts.URL+route.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404", route.method, route.path, resp.StatusCode)
		}
	}
}

// TestFailedRunNotCached: a failing run must not poison the cache; a
// retry runs again.
func TestFailedRunNotCached(t *testing.T) {
	var runs int
	var mu sync.Mutex
	runner := func(ctx context.Context, req Request, progress func(int, int, string)) ([]*report.Table, error) {
		mu.Lock()
		runs++
		n := runs
		mu.Unlock()
		if n == 1 {
			return nil, fmt.Errorf("transient failure")
		}
		return []*report.Table{{Title: "ok"}}, nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: runner})

	v1, _ := postJob(t, ts, fastReq())
	f1 := waitDone(t, ts, v1.ID, 10*time.Second)
	if f1.State != stateFailed || !strings.Contains(f1.Error, "transient") {
		t.Fatalf("first run state=%s err=%q", f1.State, f1.Error)
	}
	v2, _ := postJob(t, ts, fastReq())
	f2 := waitDone(t, ts, v2.ID, 10*time.Second)
	if f2.State != stateDone || f2.Cached {
		t.Errorf("retry state=%s cached=%v, want fresh done", f2.State, f2.Cached)
	}
	mu.Lock()
	if runs != 2 {
		t.Errorf("runner ran %d times, want 2", runs)
	}
	mu.Unlock()
}
