// Package server implements sharesimd's HTTP serving layer: a job
// manager with a bounded worker pool, a deduplicating LRU result cache
// with request coalescing, per-job cancellation, server-sent progress
// events and Prometheus text metrics. The simulation work itself runs
// through the same experiment index as cmd/sharesim, so daemon results
// are bit-identical to the CLI's -json output.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"sharellc/internal/cluster"
	"sharellc/internal/report"
	"sharellc/internal/sim"
)

// Server wires the Manager to an http.Handler.
type Server struct {
	m   *Manager
	mux *http.ServeMux
}

// New builds a Server (and its Manager) from cfg.
func New(cfg Config) *Server {
	s := &Server{m: NewManager(cfg), mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	switch {
	case cfg.Coordinator != nil:
		// Worker-facing bundle protocol plus GET /v1/streams/{hash}.
		cfg.Coordinator.Register(s.mux)
	case cfg.StreamCache != nil:
		// Even a single-mode daemon serves its snapshots, so a cluster
		// spun up later (or a peer worker) can seed from it.
		s.mux.HandleFunc("GET /v1/streams/{hash}", cluster.StreamHandler(cfg.StreamCache, nil))
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Manager exposes the job manager, mainly for Shutdown.
func (s *Server) Manager() *Manager { return s.m }

// jobView is the JSON representation of a job returned by the API.
type jobView struct {
	ID       string          `json:"id"`
	Exp      string          `json:"exp"`
	State    State           `json:"state"`
	Cached   bool            `json:"cached"`
	Error    string          `json:"error,omitempty"`
	Tables   []*report.Table `json:"tables,omitempty"`
	Created  time.Time       `json:"created"`
	Started  *time.Time      `json:"started,omitempty"`
	Finished *time.Time      `json:"finished,omitempty"`
}

func viewOf(j *Job) jobView {
	state, errMsg, tables, cached, created, started, finished := j.Snapshot()
	v := jobView{
		ID:      j.ID,
		Exp:     j.Request.Exp,
		State:   state,
		Cached:  cached,
		Error:   errMsg,
		Created: created,
	}
	if !started.IsZero() {
		v.Started = &started
	}
	if !finished.IsZero() {
		v.Finished = &finished
	}
	if state == stateDone {
		v.Tables = tables
	}
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	job, fresh, err := s.m.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusAccepted
	if !fresh {
		status = http.StatusOK // cache hit or coalesced: nothing new started
	}
	writeJSON(w, status, viewOf(job))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %s", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, viewOf(job))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.m.Cancel(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "cancelling"})
}

// handleEvents streams the job's lifecycle as server-sent events: the
// recorded history first, then live events until a terminal state or
// client disconnect.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %s", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	history, live, unsub := job.Subscribe()
	defer unsub()

	emit := func(ev Event) bool {
		b, _ := json.Marshal(ev)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, b)
		fl.Flush()
		return !(ev.Type == "state" && ev.State.terminal())
	}
	for _, ev := range history {
		if !emit(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-live:
			if !emit(ev) {
				return
			}
		case <-job.Done():
			// Drain whatever the subscription buffered, then re-emit the
			// terminal state in case the buffer dropped it.
			for {
				select {
				case ev := <-live:
					if !emit(ev) {
						return
					}
				default:
					state, _, _, _, _, _, _ := job.Snapshot()
					emit(Event{Type: "state", State: state})
					return
				}
			}
		}
	}
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type expView struct {
		ID         string `json:"id"`
		Title      string `json:"title"`
		NeedsSuite bool   `json:"needs_suite"`
	}
	var out []expView
	for _, e := range sim.Experiments() {
		out = append(out, expView{ID: e.ID, Title: e.Title, NeedsSuite: e.NeedsSuite})
	}
	writeJSON(w, http.StatusOK, out)
}

// healthView is the /healthz body, shared by all three daemon roles.
// Status and the HTTP code carry liveness (503 + "draining" during
// shutdown, preserving the original contract); the rest is a cluster
// operator's at-a-glance state.
type healthView struct {
	Status        string         `json:"status"` // ok | draining
	Role          string         `json:"role"`   // single | coordinator | worker
	Kernel        string         `json:"kernel"`
	Tracker       string         `json:"tracker"`
	SIMD          string         `json:"simd"`
	ShardBudget   int            `json:"shard_budget"`
	Workers       occupancyView  `json:"workers"`
	SnapshotStore *snapshotStore `json:"snapshot_store,omitempty"`
	Bundles       *bundleGauges  `json:"bundles,omitempty"`
}

type occupancyView struct {
	Busy  int `json:"busy"`
	Total int `json:"total"`
}

type snapshotStore struct {
	MemBytes  uint64 `json:"mem_bytes"`
	DiskBytes uint64 `json:"disk_bytes"`
	DiskFiles int    `json:"disk_files"`
}

type bundleGauges struct {
	Pending  int `json:"pending"`
	Inflight int `json:"inflight"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := s.m
	m.mu.Lock()
	draining := m.draining
	m.mu.Unlock()
	m.met.mu.Lock()
	busy := m.met.inflight
	m.met.mu.Unlock()

	hv := healthView{
		Status:      "ok",
		Role:        m.cfg.Role,
		Kernel:      m.cfg.Kernel.String(),
		Tracker:     m.cfg.Tracker.String(),
		SIMD:        m.cfg.SIMD.String(),
		ShardBudget: sim.ShardBudget(m.cfg.Workers),
		Workers:     occupancyView{Busy: busy, Total: m.cfg.Workers},
	}
	if m.cfg.StreamCache != nil {
		st := m.cfg.StreamCache.Stats()
		hv.SnapshotStore = &snapshotStore{MemBytes: st.BytesInMem, DiskBytes: st.DiskBytes, DiskFiles: st.DiskFiles}
	}
	if m.cfg.Coordinator != nil {
		cs := m.cfg.Coordinator.Stats()
		hv.Bundles = &bundleGauges{Pending: cs.BundlesPending, Inflight: cs.BundlesInflight}
	}
	if draining {
		hv.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, hv)
		return
	}
	writeJSON(w, http.StatusOK, hv)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.m.met.write(w)
}
