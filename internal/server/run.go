package server

import (
	"context"

	"sharellc/internal/cache"
	"sharellc/internal/core"
	"sharellc/internal/report"
	"sharellc/internal/sim"
)

// defaultRunner builds the production Runner: it resolves the request
// against the shared experiment index (the same catalogue cmd/sharesim
// dispatches through, which is what makes daemon output bit-identical to
// `sharesim -json`) and budgets per-replay set shards so that
// workers × shards never oversubscribes GOMAXPROCS.
func defaultRunner(workers int) Runner {
	shards := sim.ShardBudget(workers)
	return func(ctx context.Context, req Request, progress func(done, total int, label string)) ([]*report.Table, error) {
		exp, err := sim.ExperimentByID(req.Exp)
		if err != nil {
			return nil, err
		}
		opts := sim.ExpOptions{
			LLCSize:  int(req.LLCMB * float64(cache.MB)),
			LLCWays:  req.Ways,
			Policies: req.Policies,
			Prot:     core.Options{Strength: core.Full},
		}
		if req.Strength == "insert-only" {
			opts.Prot.Strength = core.InsertOnly
		}

		var suite *sim.Suite
		if exp.NeedsSuite {
			models, err := sim.ModelsByName(req.Workloads)
			if err != nil {
				return nil, err
			}
			cfg := sim.Config{
				Machine: cache.DefaultConfig(),
				Seed:    req.Seed,
				Scale:   req.Scale,
				Models:  models,
				Shards:  shards,
			}
			suite, err = sim.NewSuiteContext(ctx, cfg)
			if err != nil {
				return nil, err
			}
			suite = suite.WithProgress(progress)
		}
		return exp.Run(suite, opts)
	}
}
