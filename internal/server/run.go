package server

import (
	"context"

	"sharellc/internal/cache"
	"sharellc/internal/cluster"
	"sharellc/internal/core"
	"sharellc/internal/report"
	"sharellc/internal/sharing"
	"sharellc/internal/sim"
	"sharellc/internal/sim/streamcache"
)

// defaultRunner builds the production Runner: it resolves the request
// against the shared experiment index (the same catalogue cmd/sharesim
// dispatches through, which is what makes daemon output bit-identical to
// `sharesim -json`) and budgets per-replay set shards so that
// workers × shards never oversubscribes GOMAXPROCS. When sc is non-nil
// it serves every suite's streams, so concurrent and sequential jobs
// sharing (machine, seed, scale, workloads) build each stream at most
// once per process regardless of their LLC size or policy.
func defaultRunner(workers int, sc *streamcache.Cache, kernel sharing.Kernel, tracker sharing.Tracker, simd sharing.SIMD) Runner {
	shards := sim.ShardBudget(workers)
	return func(ctx context.Context, req Request, progress func(done, total int, label string)) ([]*report.Table, error) {
		exp, err := sim.ExperimentByID(req.Exp)
		if err != nil {
			return nil, err
		}
		opts := sim.ExpOptions{
			LLCSize:  int(req.LLCMB * float64(cache.MB)),
			LLCWays:  req.Ways,
			Policies: req.Policies,
			Prot:     core.Options{Strength: core.Full},
		}
		if req.Strength == "insert-only" {
			opts.Prot.Strength = core.InsertOnly
		}

		var suite *sim.Suite
		if exp.NeedsSuite {
			models, err := sim.ModelsByName(req.Workloads)
			if err != nil {
				return nil, err
			}
			cfg := sim.Config{
				Machine: cache.DefaultConfig(),
				Seed:    req.Seed,
				Scale:   req.Scale,
				Models:  models,
				Shards:  shards,
				Kernel:  kernel,
				Tracker: tracker,
				SIMD:    simd,
				// Suite preparation reports through the same progress
				// channel as the experiment fan-out; the "prepare" prefix
				// distinguishes the phase in the SSE stream.
				Progress: func(done, total int, label string) {
					progress(done, total, "prepare "+label)
				},
			}
			if sc != nil {
				cfg.Streams = sc.Stream
			}
			suite, err = sim.NewSuiteContext(ctx, cfg)
			if err != nil {
				return nil, err
			}
			suite = suite.WithProgress(progress)
		}
		return exp.Run(suite, opts)
	}
}

// distributedRunner routes jobs through the cluster coordinator instead
// of the in-process pool: the request maps 1:1 onto a cluster.Request
// (same normalization, so identical jobs coalesce in both layers) and the
// merged tables come back byte-identical to what defaultRunner produces.
func distributedRunner(c *cluster.Coordinator) Runner {
	return func(ctx context.Context, req Request, progress func(done, total int, label string)) ([]*report.Table, error) {
		creq := cluster.Request{
			Exps:      []string{req.Exp},
			LLCMB:     req.LLCMB,
			Ways:      req.Ways,
			Seed:      req.Seed,
			Scale:     req.Scale,
			Workloads: req.Workloads,
			Policies:  req.Policies,
			Strength:  req.Strength,
		}
		return c.Run(ctx, creq, progress)
	}
}
