package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"sharellc/internal/cluster"
	"sharellc/internal/sim/streamcache"
)

// metrics is a small hand-rolled Prometheus registry: the daemon's
// counters, gauges and one latency histogram family, rendered in the
// text exposition format. Keeping it dependency-free matters — the
// container bakes in only the standard library — and the handful of
// series here does not justify a client library.
type metrics struct {
	mu sync.Mutex

	jobsTotal   map[string]uint64 // by terminal state: done, failed, cancelled
	cacheHits   uint64
	cacheMisses uint64
	coalesced   uint64
	rejected    uint64
	queueDepth  int
	inflight    int

	durations map[string]*histogram // per experiment id, seconds

	// streams, when non-nil, reads the shared stream cache's counters at
	// scrape time (the cache keeps its own consistent snapshot; nothing
	// is double-counted here).
	streams func() streamcache.Stats

	// cluster, when non-nil (coordinator role), reads the bundle
	// scheduler's counters at scrape time.
	cluster func() cluster.CoordinatorStats
}

// durationBuckets are the histogram upper bounds in seconds, spanning
// cache-warm microsecond replies through full-scale multi-minute runs.
var durationBuckets = []float64{0.01, 0.05, 0.25, 1, 5, 30, 120, 600}

type histogram struct {
	counts []uint64 // one per bucket, cumulative rendering happens at write time
	sum    float64
	total  uint64
}

func newMetrics() *metrics {
	return &metrics{
		jobsTotal: map[string]uint64{},
		durations: map[string]*histogram{},
	}
}

func (m *metrics) jobFinished(state, exp string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsTotal[state]++
	if state != string(stateDone) {
		return
	}
	h := m.durations[exp]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(durationBuckets))}
		m.durations[exp] = h
	}
	for i, ub := range durationBuckets {
		if seconds <= ub {
			h.counts[i]++
			break
		}
	}
	h.sum += seconds
	h.total++
}

func (m *metrics) add(field *uint64) { m.mu.Lock(); *field++; m.mu.Unlock() }
func (m *metrics) gauge(field *int, d int) {
	m.mu.Lock()
	*field += d
	m.mu.Unlock()
}

// snapshotRatio returns the cache hit ratio (hits / lookups), 0 when idle.
func (m *metrics) snapshotRatio() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cacheHits+m.cacheMisses == 0 {
		return 0
	}
	return float64(m.cacheHits) / float64(m.cacheHits+m.cacheMisses)
}

// write renders the registry in Prometheus text format, deterministically
// ordered so scrapes (and tests) are stable.
func (m *metrics) write(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	b.WriteString("# HELP sharesimd_jobs_total Jobs finished, by terminal state.\n")
	b.WriteString("# TYPE sharesimd_jobs_total counter\n")
	for _, st := range []string{"done", "failed", "cancelled"} {
		fmt.Fprintf(&b, "sharesimd_jobs_total{state=%q} %d\n", st, m.jobsTotal[st])
	}

	b.WriteString("# HELP sharesimd_cache_hits_total Result-cache hits.\n")
	b.WriteString("# TYPE sharesimd_cache_hits_total counter\n")
	fmt.Fprintf(&b, "sharesimd_cache_hits_total %d\n", m.cacheHits)
	b.WriteString("# HELP sharesimd_cache_misses_total Result-cache misses (jobs actually run).\n")
	b.WriteString("# TYPE sharesimd_cache_misses_total counter\n")
	fmt.Fprintf(&b, "sharesimd_cache_misses_total %d\n", m.cacheMisses)
	b.WriteString("# HELP sharesimd_jobs_coalesced_total Submissions coalesced onto an identical in-flight job.\n")
	b.WriteString("# TYPE sharesimd_jobs_coalesced_total counter\n")
	fmt.Fprintf(&b, "sharesimd_jobs_coalesced_total %d\n", m.coalesced)
	b.WriteString("# HELP sharesimd_jobs_rejected_total Submissions rejected (queue full or draining).\n")
	b.WriteString("# TYPE sharesimd_jobs_rejected_total counter\n")
	fmt.Fprintf(&b, "sharesimd_jobs_rejected_total %d\n", m.rejected)

	b.WriteString("# HELP sharesimd_queue_depth Jobs queued and not yet running.\n")
	b.WriteString("# TYPE sharesimd_queue_depth gauge\n")
	fmt.Fprintf(&b, "sharesimd_queue_depth %d\n", m.queueDepth)
	b.WriteString("# HELP sharesimd_jobs_inflight Jobs currently running.\n")
	b.WriteString("# TYPE sharesimd_jobs_inflight gauge\n")
	fmt.Fprintf(&b, "sharesimd_jobs_inflight %d\n", m.inflight)

	b.WriteString("# HELP sharesimd_job_duration_seconds Wall-clock latency of completed runs, per experiment.\n")
	b.WriteString("# TYPE sharesimd_job_duration_seconds histogram\n")
	exps := make([]string, 0, len(m.durations))
	for e := range m.durations {
		exps = append(exps, e)
	}
	sort.Strings(exps)
	for _, e := range exps {
		h := m.durations[e]
		var cum uint64
		for i, ub := range durationBuckets {
			cum += h.counts[i]
			fmt.Fprintf(&b, "sharesimd_job_duration_seconds_bucket{exp=%q,le=%q} %d\n", e, fmt.Sprintf("%g", ub), cum)
		}
		fmt.Fprintf(&b, "sharesimd_job_duration_seconds_bucket{exp=%q,le=\"+Inf\"} %d\n", e, h.total)
		fmt.Fprintf(&b, "sharesimd_job_duration_seconds_sum{exp=%q} %g\n", e, h.sum)
		fmt.Fprintf(&b, "sharesimd_job_duration_seconds_count{exp=%q} %d\n", e, h.total)
	}

	if m.cluster != nil {
		writeClusterSeries(&b, m.cluster())
	}
	if m.streams != nil {
		writeStreamSeries(&b, m.streams())
	}
	io.WriteString(w, b.String())
}

// writeStreamSeries renders the stream-cache counter and gauge family;
// shared between the single/coordinator daemon registry and the
// worker-mode registry, which track different work but the same store.
func writeStreamSeries(b *strings.Builder, st streamcache.Stats) {
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"sharesimd_stream_builds_total", "Full workload-stream builds (both cache levels missed).", st.Builds},
		{"sharesimd_stream_hits_total", "Stream requests served from the in-process cache.", st.Hits},
		{"sharesimd_stream_misses_total", "Stream requests that missed the in-process cache.", st.Misses},
		{"sharesimd_stream_coalesced_total", "Stream requests coalesced onto an in-flight build.", st.Coalesced},
		{"sharesimd_stream_disk_hits_total", "Streams loaded from snapshot files.", st.DiskHits},
		{"sharesimd_stream_disk_misses_total", "Snapshot probes that found no usable file.", st.DiskMiss},
		{"sharesimd_stream_evictions_total", "Streams evicted from the in-process cache.", st.Evictions},
		{"sharesimd_stream_disk_evictions_total", "Snapshot files evicted by the disk budget.", st.DiskEvictions},
		{"sharesimd_stream_puts_total", "Snapshots installed from peers (cluster transfers).", st.Puts},
		{"sharesimd_stream_disk_read_bytes_total", "Snapshot bytes read from disk.", st.BytesRead},
		{"sharesimd_stream_disk_written_bytes_total", "Snapshot bytes written to disk.", st.BytesWritten},
	} {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v)
	}
	for _, g := range []struct {
		name, help string
		v          uint64
	}{
		{"sharesimd_stream_mem_bytes", "Stream bytes resident in the in-process cache.", st.BytesInMem},
		{"sharesimd_stream_entries", "Streams resident in the in-process cache.", uint64(st.Entries)},
		{"sharesimd_stream_disk_bytes", "Snapshot bytes resident in the on-disk store.", st.DiskBytes},
		{"sharesimd_stream_disk_files", "Snapshot files resident in the on-disk store.", uint64(st.DiskFiles)},
	} {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.v)
	}
}

// writeClusterSeries renders the coordinator's bundle-scheduler family.
func writeClusterSeries(b *strings.Builder, st cluster.CoordinatorStats) {
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"sharesimd_cluster_jobs_total", "Cluster jobs ever admitted.", uint64(st.Jobs)},
		{"sharesimd_bundles_done_total", "Bundles resolved successfully.", st.BundlesDone},
		{"sharesimd_bundles_requeued_total", "Lease expiries re-queued for another worker.", st.BundlesRequeued},
		{"sharesimd_bundles_failed_total", "Bundle results rejected or failed.", st.BundlesFailed},
		{"sharesimd_stream_serve_total", "Snapshot downloads served to workers.", st.StreamServes},
		{"sharesimd_stream_serve_bytes_total", "Snapshot bytes served to workers.", st.StreamBytes},
	} {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v)
	}
	for _, g := range []struct {
		name, help string
		v          int
	}{
		{"sharesimd_cluster_jobs_inflight", "Cluster jobs not yet terminal.", st.JobsInflight},
		{"sharesimd_bundles_pending", "Bundles queued and not yet leased.", st.BundlesPending},
		{"sharesimd_bundles_inflight", "Bundles leased to a worker right now.", st.BundlesInflight},
	} {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.v)
	}
}
