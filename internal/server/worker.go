package server

import (
	"fmt"
	"net/http"
	"strings"

	"sharellc/internal/cluster"
	"sharellc/internal/sharing"
	"sharellc/internal/sim"
	"sharellc/internal/sim/streamcache"
)

// WorkerServer is the HTTP surface of a worker-mode daemon: the peer
// snapshot endpoint plus the /healthz and /metrics conventions every
// sharesimd role serves. Job submission stays on the coordinator; a
// worker's only public API is serving streams it holds.
type WorkerServer struct {
	w       *cluster.Worker
	sc      *streamcache.Cache
	kernel  sharing.Kernel
	tracker sharing.Tracker
	simd    sharing.SIMD
	slots   int
	mux     *http.ServeMux
}

// NewWorkerServer wires a cluster.Worker into an http.Handler.
func NewWorkerServer(w *cluster.Worker, sc *streamcache.Cache, kernel sharing.Kernel, tracker sharing.Tracker, simd sharing.SIMD, slots int) *WorkerServer {
	if slots <= 0 {
		slots = 1
	}
	ws := &WorkerServer{w: w, sc: sc, kernel: kernel, tracker: tracker, simd: simd, slots: slots, mux: http.NewServeMux()}
	w.Register(ws.mux)
	ws.mux.HandleFunc("GET /healthz", ws.handleHealthz)
	ws.mux.HandleFunc("GET /metrics", ws.handleMetrics)
	return ws
}

func (ws *WorkerServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { ws.mux.ServeHTTP(w, r) }

func (ws *WorkerServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := ws.w.Stats()
	hv := healthView{
		Status:      "ok",
		Role:        "worker",
		Kernel:      ws.kernel.String(),
		Tracker:     ws.tracker.String(),
		SIMD:        ws.simd.String(),
		ShardBudget: sim.ShardBudget(ws.slots),
		Workers:     occupancyView{Busy: int(st.Busy), Total: ws.slots},
	}
	if ws.sc != nil {
		cs := ws.sc.Stats()
		hv.SnapshotStore = &snapshotStore{MemBytes: cs.BytesInMem, DiskBytes: cs.DiskBytes, DiskFiles: cs.DiskFiles}
	}
	writeJSON(w, http.StatusOK, hv)
}

func (ws *WorkerServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	st := ws.w.Stats()
	var b strings.Builder
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"sharesimd_worker_bundles_done_total", "Bundles executed and delivered successfully.", st.BundlesDone},
		{"sharesimd_worker_bundles_erred_total", "Bundles delivered with an error outcome.", st.BundlesErred},
		{"sharesimd_stream_fetch_total", "Peer/coordinator snapshot fetches attempted.", st.FetchTotal},
		{"sharesimd_stream_fetch_ok_total", "Fetches that validated and installed.", st.FetchOK},
		{"sharesimd_stream_fetch_bytes_total", "Snapshot bytes fetched from peers.", st.FetchBytes},
		{"sharesimd_stream_fetch_errors_total", "Transfers that failed or validated badly (fell soft).", st.FetchErrors},
		{"sharesimd_worker_lease_errors_total", "Control-plane round-trips that failed.", st.LeaseErrors},
	} {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v)
	}
	b.WriteString("# HELP sharesimd_worker_busy Bundles executing right now.\n")
	b.WriteString("# TYPE sharesimd_worker_busy gauge\n")
	fmt.Fprintf(&b, "sharesimd_worker_busy %d\n", st.Busy)
	if ws.sc != nil {
		writeStreamSeries(&b, ws.sc.Stats())
	}
	fmt.Fprint(w, b.String())
}
