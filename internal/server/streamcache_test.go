package server

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"sharellc/internal/report"
	"sharellc/internal/sim/streamcache"
)

// TestJobsShareStreamCache is the PR's daemon acceptance test: two
// sequential jobs with the same machine, seed, scale and workload but
// different policies (so the result cache cannot serve the second) must
// build the workload stream exactly once, with the second job served
// from the shared stream cache — observable both on Cache.Stats and the
// /metrics endpoint.
func TestJobsShareStreamCache(t *testing.T) {
	sc := streamcache.New(streamcache.Options{Dir: t.TempDir()})
	_, ts := newTestServer(t, Config{Workers: 1, StreamCache: sc})

	req := fastReq()
	req.Workloads = []string{"swaptions"}
	req.Policies = []string{"lru"}
	v, _ := postJob(t, ts, req)
	waitDone(t, ts, v.ID, 30*time.Second)

	req2 := fastReq()
	req2.Workloads = []string{"swaptions"}
	req2.Policies = []string{"nru"}
	v2, _ := postJob(t, ts, req2)
	if v2.ID == v.ID {
		t.Fatal("second job coalesced onto the first; the test needs distinct runs")
	}
	done2 := waitDone(t, ts, v2.ID, 30*time.Second)
	if done2.Cached {
		t.Fatal("second job was a result-cache hit; the test needs a second run")
	}

	st := sc.Stats()
	if st.Builds != 1 {
		t.Errorf("two jobs built the shared stream %d times, want 1", st.Builds)
	}
	if st.Hits < 1 {
		t.Errorf("second job did not hit the stream cache: %+v", st)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"sharesimd_stream_builds_total 1\n",
		"sharesimd_stream_entries 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
	// The hit counter on /metrics must agree with the cache itself.
	if !strings.Contains(text, "sharesimd_stream_hits_total") {
		t.Error("/metrics missing sharesimd_stream_hits_total")
	}
}

// TestStreamMetricsAbsentWithoutCache: a manager built without a stream
// cache must not invent zero-valued stream series.
func TestStreamMetricsAbsentWithoutCache(t *testing.T) {
	runner := func(ctx context.Context, req Request, progress func(int, int, string)) ([]*report.Table, error) {
		return nil, nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: runner})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "sharesimd_stream_") {
		t.Errorf("/metrics exposes stream series without a stream cache:\n%s", body)
	}
}

// TestSuitePrepProgressEvents: suite preparation reports through the
// job's SSE progress stream with a "prepare" label prefix.
func TestSuitePrepProgressEvents(t *testing.T) {
	sc := streamcache.New(streamcache.Options{})
	_, ts := newTestServer(t, Config{Workers: 1, StreamCache: sc})
	req := fastReq()
	v, _ := postJob(t, ts, req)
	waitDone(t, ts, v.ID, 30*time.Second)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"prepare `) {
		t.Errorf("event stream has no suite-preparation progress:\n%s", body)
	}
}
