package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sharellc/internal/cluster"
	"sharellc/internal/report"
	"sharellc/internal/sharing"
	"sharellc/internal/sim"
	"sharellc/internal/sim/streamcache"
)

// Request is the body of POST /v1/jobs. Zero fields take the CLI's
// defaults so `{"exp":"f1"}` is a complete submission.
type Request struct {
	Exp       string   `json:"exp"`
	LLCMB     float64  `json:"llc_mb,omitempty"`
	Ways      int      `json:"ways,omitempty"`
	Seed      uint64   `json:"seed,omitempty"`
	Scale     float64  `json:"scale,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	Policies  []string `json:"policies,omitempty"`
	Strength  string   `json:"strength,omitempty"`
}

// normalize fills defaults and validates against the experiment index.
// The normalized form is what gets hashed, so two requests that differ
// only in omitted-vs-explicit defaults share one cache entry.
func (r *Request) normalize() error {
	r.Exp = strings.ToLower(strings.TrimSpace(r.Exp))
	if r.Exp == "" {
		return errors.New("missing required field \"exp\"")
	}
	if r.Exp == "all" {
		return errors.New("\"all\" is a CLI convenience; submit one job per experiment")
	}
	if _, err := sim.ExperimentByID(r.Exp); err != nil {
		return err
	}
	if r.LLCMB == 0 {
		r.LLCMB = 4
	}
	if r.LLCMB <= 0 {
		return fmt.Errorf("llc_mb must be positive, got %g", r.LLCMB)
	}
	if r.Ways == 0 {
		r.Ways = 16
	}
	if r.Ways < 1 {
		return fmt.Errorf("ways must be >= 1, got %d", r.Ways)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Scale == 0 {
		r.Scale = 1
	}
	if r.Scale < 0 || r.Scale > 1 {
		return fmt.Errorf("scale must be in (0, 1], got %g", r.Scale)
	}
	if r.Strength == "" {
		r.Strength = "full"
	}
	if r.Strength != "full" && r.Strength != "insert-only" {
		return fmt.Errorf("unknown strength %q (want full or insert-only)", r.Strength)
	}
	for i, w := range r.Workloads {
		r.Workloads[i] = strings.ToLower(strings.TrimSpace(w))
	}
	sort.Strings(r.Workloads)
	if _, err := sim.ModelsByName(r.Workloads); err != nil {
		return err
	}
	for i, p := range r.Policies {
		r.Policies[i] = strings.ToLower(strings.TrimSpace(p))
	}
	return nil
}

// key is the result-cache key: the hash of the canonical (normalized)
// request JSON. Anything that changes simulation output must be part of
// Request, so the key covers experiment id, config, seed and workloads.
func (r *Request) key() string {
	b, _ := json.Marshal(r)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

type State string

const (
	stateQueued    State = "queued"
	stateRunning   State = "running"
	stateDone      State = "done"
	stateFailed    State = "failed"
	stateCancelled State = "cancelled"
)

func (s State) terminal() bool {
	return s == stateDone || s == stateFailed || s == stateCancelled
}

// Event is one SSE frame: either a state transition or a progress tick.
type Event struct {
	Type  string `json:"type"` // "state" or "progress"
	State State  `json:"state,omitempty"`
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
	Label string `json:"label,omitempty"`
}

// Job tracks one submission through its lifecycle. All mutable fields
// are guarded by mu; doneCh closes exactly once on reaching a terminal
// state so waiters need no polling.
type Job struct {
	ID      string
	Request Request
	Key     string

	mu        sync.Mutex
	state     State
	err       error
	tables    []*report.Table
	cacheHit  bool
	created   time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc
	history   []Event
	subs      map[chan Event]struct{}
	cancelReq bool

	doneCh chan struct{}
}

func (j *Job) publish(ev Event) {
	// Callers hold j.mu.
	j.history = append(j.history, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than stall the run
		}
	}
}

// Subscribe returns the event history so far plus a live channel, and an
// unsubscribe func. The channel is buffered; laggards lose events rather
// than block the worker.
func (j *Job) Subscribe() (history []Event, live chan Event, unsub func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	history = append([]Event(nil), j.history...)
	live = make(chan Event, 256)
	j.subs[live] = struct{}{}
	return history, live, func() {
		j.mu.Lock()
		delete(j.subs, live)
		j.mu.Unlock()
	}
}

// Snapshot returns the fields the HTTP layer renders.
func (j *Job) Snapshot() (state State, errMsg string, tables []*report.Table, cached bool, created, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		errMsg = j.err.Error()
	}
	return j.state, errMsg, j.tables, j.cacheHit, j.created, j.started, j.finished
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Runner executes one experiment run. The indirection lets tests
// substitute a controllable runner for the real simulator.
type Runner func(ctx context.Context, req Request, progress func(done, total int, label string)) ([]*report.Table, error)

// Config sizes the Manager.
type Config struct {
	Workers    int // concurrent runs; <=0 means 1
	QueueDepth int // queued (not yet running) jobs before 503; <=0 means 16
	CacheSize  int // completed results retained; <=0 means 64
	Runner     Runner
	Now        func() time.Time // test hook; nil means time.Now

	// Kernel is the fused-replay kernel every job's suite runs with
	// (sim.Config.Kernel): batch by default, scalar via the daemon's
	// -kernel flag for production bisection. Ignored when a custom
	// Runner is set.
	Kernel sharing.Kernel

	// Tracker is the residency-tracker representation every job's suite
	// runs with (sim.Config.Tracker): the SoA columns by default, struct
	// slabs via the daemon's -tracker flag for production bisection.
	// Ignored when a custom Runner is set.
	Tracker sharing.Tracker

	// SIMD is the data-parallel tier every job's suite runs with
	// (sim.Config.SIMD): auto by default, swar or off via the daemon's
	// -simd flag for production bisection. Ignored when a custom Runner
	// is set.
	SIMD sharing.SIMD

	// StreamCache, when non-nil, supplies prepared workload streams to
	// every job's suite construction, so jobs that share (machine, seed,
	// scale, workloads) — even while differing in LLC size or policy —
	// build each stream at most once per daemon process. Its counters are
	// exported on /metrics as the sharesimd_stream_* series. Ignored when
	// a custom Runner is set.
	StreamCache *streamcache.Cache

	// Role names how this daemon executes jobs ("single" by default,
	// "coordinator" when Coordinator is set); /healthz reports it.
	Role string

	// Coordinator, when non-nil, replaces the in-process runner with the
	// cluster scheduler: each job is decomposed into bundles and executed
	// by polling workers, with results merged byte-identically to the
	// direct path. Its protocol endpoints are mounted on the server mux
	// and its counters join /metrics. Ignored when a custom Runner is set.
	Coordinator *cluster.Coordinator
}

// Manager owns the worker pool, the coalescing map and the result cache.
type Manager struct {
	cfg Config
	now func() time.Time

	baseCtx  context.Context
	baseStop context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job // by ID, all ever submitted (bounded by cache + active)
	active   map[string]*Job // by request key, queued or running only
	order    []string        // job IDs oldest-first, for pruning
	seq      int
	draining bool

	queue chan *Job
	wg    sync.WaitGroup

	cache *resultCache
	met   *metrics
}

// NewManager starts cfg.Workers workers. Call Shutdown to drain them.
func NewManager(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 64
	}
	if cfg.Runner == nil {
		if cfg.Coordinator != nil {
			cfg.Runner = distributedRunner(cfg.Coordinator)
		} else {
			cfg.Runner = defaultRunner(cfg.Workers, cfg.StreamCache, cfg.Kernel, cfg.Tracker, cfg.SIMD)
		}
	}
	if cfg.Role == "" {
		if cfg.Coordinator != nil {
			cfg.Role = "coordinator"
		} else {
			cfg.Role = "single"
		}
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:      cfg,
		now:      now,
		baseCtx:  ctx,
		baseStop: stop,
		jobs:     map[string]*Job{},
		active:   map[string]*Job{},
		queue:    make(chan *Job, cfg.QueueDepth),
		cache:    newResultCache(cfg.CacheSize),
		met:      newMetrics(),
	}
	if cfg.StreamCache != nil {
		m.met.streams = cfg.StreamCache.Stats
	}
	if cfg.Coordinator != nil {
		m.met.cluster = cfg.Coordinator.Stats
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Metrics exposes the registry for the /metrics handler.
func (m *Manager) Metrics() *metrics { return m.met }

var (
	// ErrQueueFull is returned when the queue is at capacity.
	ErrQueueFull = errors.New("job queue full, retry later")
	// ErrDraining is returned after Shutdown has begun.
	ErrDraining = errors.New("server is draining, not accepting jobs")
)

// Submit validates, dedupes and enqueues a request. The bool reports
// whether the returned job is fresh work (false = cache hit or coalesced
// onto an identical in-flight job).
func (m *Manager) Submit(req Request) (*Job, bool, error) {
	if err := req.normalize(); err != nil {
		return nil, false, err
	}
	key := req.key()

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.met.add(&m.met.rejected)
		return nil, false, ErrDraining
	}
	// Coalesce: an identical request is already queued or running.
	if live, ok := m.active[key]; ok {
		m.mu.Unlock()
		m.met.add(&m.met.coalesced)
		return live, false, nil
	}
	// Cache: an identical request already completed successfully.
	if tables, ok := m.cache.get(key); ok {
		job := m.newJobLocked(req, key)
		now := m.now()
		job.state = stateDone
		job.cacheHit = true
		job.tables = tables
		job.started, job.finished = now, now
		job.history = append(job.history, Event{Type: "state", State: stateDone})
		close(job.doneCh)
		m.mu.Unlock()
		m.met.add(&m.met.cacheHits)
		return job, false, nil
	}
	job := m.newJobLocked(req, key)
	job.state = stateQueued
	job.history = append(job.history, Event{Type: "state", State: stateQueued})
	m.active[key] = job
	m.mu.Unlock()

	select {
	case m.queue <- job:
		m.met.add(&m.met.cacheMisses)
		m.met.gauge(&m.met.queueDepth, 1)
		return job, true, nil
	default:
		m.mu.Lock()
		delete(m.active, key)
		m.removeJobLocked(job.ID)
		m.mu.Unlock()
		m.met.add(&m.met.rejected)
		return nil, false, ErrQueueFull
	}
}

// newJobLocked allocates a job and registers it; caller holds m.mu.
func (m *Manager) newJobLocked(req Request, key string) *Job {
	m.seq++
	job := &Job{
		ID:      fmt.Sprintf("job-%d", m.seq),
		Request: req,
		Key:     key,
		created: m.now(),
		subs:    map[chan Event]struct{}{},
		doneCh:  make(chan struct{}),
	}
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.pruneLocked()
	return job
}

// pruneLocked evicts the oldest terminal jobs once the ledger outgrows
// the cache budget, keeping memory bounded under sustained load.
func (m *Manager) pruneLocked() {
	limit := 2*m.cfg.CacheSize + m.cfg.QueueDepth + m.cfg.Workers
	for len(m.jobs) > limit {
		pruned := false
		for i, id := range m.order {
			j := m.jobs[id]
			if j == nil {
				m.order = append(m.order[:i], m.order[i+1:]...)
				pruned = true
				break
			}
			j.mu.Lock()
			term := j.state.terminal()
			j.mu.Unlock()
			if term {
				delete(m.jobs, id)
				m.order = append(m.order[:i], m.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			return // everything live; let it ride
		}
	}
}

func (m *Manager) removeJobLocked(id string) {
	delete(m.jobs, id)
	for i, jid := range m.order {
		if jid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// Get looks a job up by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel aborts a job. Queued jobs are finalized immediately; running
// jobs get their context cancelled and finalize when the replay loop
// observes it (bounded by the cancellation stride in internal/sharing).
func (m *Manager) Cancel(id string) error {
	job, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("no such job %s", id)
	}
	job.mu.Lock()
	switch {
	case job.state.terminal():
		job.mu.Unlock()
		return nil
	case job.state == stateRunning:
		job.cancelReq = true
		cancel := job.cancel
		job.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default: // queued: mark so the worker skips it on dequeue
		job.cancelReq = true
		job.mu.Unlock()
		m.finalize(job, nil, context.Canceled)
		return nil
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.met.gauge(&m.met.queueDepth, -1)
		job.mu.Lock()
		skip := job.state.terminal() // cancelled while queued
		if !skip {
			ctx, cancel := context.WithCancel(m.baseCtx)
			job.state = stateRunning
			job.started = m.now()
			job.cancel = cancel
			job.publish(Event{Type: "state", State: stateRunning})
			job.mu.Unlock()

			m.met.gauge(&m.met.inflight, 1)
			tables, err := m.cfg.Runner(ctx, job.Request, func(done, total int, label string) {
				job.mu.Lock()
				job.publish(Event{Type: "progress", Done: done, Total: total, Label: label})
				job.mu.Unlock()
			})
			cancel()
			m.met.gauge(&m.met.inflight, -1)
			m.finalize(job, tables, err)
		} else {
			job.mu.Unlock()
		}
	}
}

// finalize records the terminal state, publishes it, feeds the cache and
// releases the coalescing slot.
func (m *Manager) finalize(job *Job, tables []*report.Table, err error) {
	job.mu.Lock()
	if job.state.terminal() {
		job.mu.Unlock()
		return
	}
	now := m.now()
	if job.started.IsZero() {
		job.started = now
	}
	job.finished = now
	switch {
	case err == nil:
		job.state = stateDone
		job.tables = tables
	case errors.Is(err, context.Canceled) || job.cancelReq:
		job.state = stateCancelled
		job.err = context.Canceled
	default:
		job.state = stateFailed
		job.err = err
	}
	state := job.state
	elapsed := job.finished.Sub(job.started).Seconds()
	job.publish(Event{Type: "state", State: state})
	close(job.doneCh)
	job.mu.Unlock()

	if state == stateDone {
		m.cache.put(job.Key, tables)
	}
	m.met.jobFinished(string(state), job.Request.Exp, elapsed)

	m.mu.Lock()
	if m.active[job.Key] == job {
		delete(m.active, job.Key)
	}
	m.mu.Unlock()
}

// Shutdown stops accepting work, cancels anything still queued, and
// waits for running jobs to drain. If ctx expires first, the base
// context is cancelled so in-flight replay loops abort promptly, then
// the workers are awaited unconditionally.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	m.mu.Unlock()

	close(m.queue)

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.baseStop() // yank running jobs; replay polls every cancelStride refs
		<-done
		return fmt.Errorf("drain deadline exceeded; running jobs cancelled: %w", ctx.Err())
	}
}

// resultCache is a plain LRU over completed table sets.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recent
	items map[string]*list.Element // value: *cacheEntry
}

type cacheEntry struct {
	key    string
	tables []*report.Table
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *resultCache) get(key string) ([]*report.Table, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).tables, true
}

func (c *resultCache) put(key string, tables []*report.Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).tables = tables
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, tables: tables})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
