package core_test

// Cross-package robustness suite: the Protector wrapped around every
// catalogue policy, driven with random streams and random hint patterns,
// under every option combination. The assertions are the wrapper's
// structural invariants — the cache itself panics on malformed victims,
// so survival plus counter consistency is the contract.

import (
	"testing"
	"testing/quick"

	"sharellc/internal/cache"
	"sharellc/internal/core"
	"sharellc/internal/policy"
	"sharellc/internal/rng"
	"sharellc/internal/trace"
)

func TestProtectorOverEveryPolicyFuzz(t *testing.T) {
	optionSets := []core.Options{
		{Strength: core.InsertOnly},
		{Strength: core.Full},
		{Strength: core.Full, NoDemote: true},
		{Strength: core.Full, SkipBudget: 1},
		{Strength: core.Full, SkipBudget: -1},
		{Strength: core.Full, ClearOnFulfil: true},
		{Strength: core.Full, Duel: true},
	}
	for _, f := range policy.Catalogue(11) {
		base := f()
		name := base.Name()
		t.Run(name, func(t *testing.T) {
			for oi, opts := range optionSets {
				mk, err := policy.ByName(name, 11)
				if err != nil {
					t.Fatal(err)
				}
				p := core.NewProtectorOpts(mk(), opts)
				c, err := cache.NewSetAssoc(32*trace.BlockSize, 4, p)
				if err != nil {
					t.Fatal(err)
				}
				rnd := rng.New(uint64(oi) + 99)
				var hits, misses uint64
				for i := 0; i < 15000; i++ {
					a := cache.AccessInfo{
						Block:           rnd.Uint64n(128),
						Core:            uint8(rnd.Intn(8)),
						PC:              0x400 + rnd.Uint64n(64)*4,
						Write:           rnd.Bool(0.3),
						PredictedShared: rnd.Bool(0.25),
						NextUse:         int64(i) + int64(rnd.Intn(50)),
					}
					if c.Access(a).Hit {
						hits++
					} else {
						misses++
					}
				}
				if hits+misses != 15000 {
					t.Fatalf("opts %d: lost accesses", oi)
				}
				st := p.Stats()
				if st.Promotions > st.ProtectedFills {
					t.Errorf("opts %d: promotions %d exceed protected fills %d", oi, st.Promotions, st.ProtectedFills)
				}
				if opts.Strength == core.InsertOnly && (st.Exclusions != 0 || st.Lockouts != 0 || st.Expired != 0) {
					t.Errorf("opts %d: insert-only produced victim-side stats %+v", oi, st)
				}
				if opts.NoDemote && st.Demotions != 0 {
					t.Errorf("opts %d: NoDemote produced %d demotions", oi, st.Demotions)
				}
				if got := len(c.Contents()); got > 32 {
					t.Errorf("opts %d: %d resident blocks exceed capacity", oi, got)
				}
			}
		})
	}
}

// TestProtectorQuickInvariants drives random short streams through the
// Full wrapper over LRU and checks that protection never outlives the
// block: an evicted block's way must come back unprotected on refill.
func TestProtectorQuickInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rnd := rng.New(seed)
		p := core.NewProtectorOpts(policy.NewLRUPolicy(), core.Options{Strength: core.Full})
		c, err := cache.NewSetAssoc(4*trace.BlockSize, 4, p)
		if err != nil {
			return false
		}
		for i := 0; i < 2000; i++ {
			a := cache.AccessInfo{
				Block:           rnd.Uint64n(16),
				Core:            uint8(rnd.Intn(4)),
				PredictedShared: rnd.Bool(0.5),
			}
			r := c.Access(a)
			if !r.Hit && !a.PredictedShared {
				// The way just filled with an unhinted block must not
				// be protected.
				if p.Protected(r.Set, r.Way) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
