package core

import (
	"testing"
	"testing/quick"

	"sharellc/internal/cache"
	"sharellc/internal/rng"
	"sharellc/internal/trace"
)

// protCache builds a 1-set, 4-way cache managed by a Protector over LRU.
func protCache(t *testing.T, opts Options) (*cache.SetAssoc, *Protector) {
	t.Helper()
	p := NewProtectorOpts(cache.NewLRU(), opts)
	c, err := cache.NewSetAssoc(4*trace.BlockSize, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestStrengthString(t *testing.T) {
	if InsertOnly.String() != "insert-only" || Full.String() != "full" {
		t.Error("Strength names wrong")
	}
	if Strength(9).String() == "" {
		t.Error("unknown strength stringified empty")
	}
}

func TestNameSuffix(t *testing.T) {
	p := NewProtector(cache.NewLRU(), Full)
	if p.Name() != "lru+sa" {
		t.Errorf("Name = %q, want lru+sa", p.Name())
	}
	if p.Base().Name() != "lru" {
		t.Errorf("Base().Name() = %q", p.Base().Name())
	}
}

func TestNilBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewProtector(nil) did not panic")
		}
	}()
	NewProtector(nil, Full)
}

// TestNoHintsBehavesLikeBase is the no-harm guarantee for workloads with
// zero sharing: without any hinted fill the hint-rate gate keeps demotion
// off and the wrapper must be bit-identical to the bare base policy.
func TestNoHintsBehavesLikeBase(t *testing.T) {
	f := func(seed uint64) bool {
		rnd := rng.New(seed)
		stream := make([]cache.AccessInfo, 2000)
		for i := range stream {
			stream[i] = cache.AccessInfo{Block: rnd.Uint64n(64)}
		}
		run := func(p cache.Policy) uint64 {
			c, err := cache.NewSetAssoc(16*trace.BlockSize, 4, p)
			if err != nil {
				t.Fatal(err)
			}
			var misses uint64
			for _, a := range stream {
				if !c.Access(a).Hit {
					misses++
				}
			}
			return misses
		}
		return run(cache.NewLRU()) == run(NewProtector(cache.NewLRU(), Full))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestDemotionMakesUnhintedFillsVictimsFirst(t *testing.T) {
	c, p := protCache(t, Options{Strength: Full})
	// One hinted fill activates the gate; subsequent unhinted fills are
	// demoted to the LRU position in fill order.
	c.Access(cache.AccessInfo{Block: 0, PredictedShared: true})
	c.Access(cache.AccessInfo{Block: 1})
	c.Access(cache.AccessInfo{Block: 2})
	c.Access(cache.AccessInfo{Block: 3})
	// Demoted order: 3 is the deepest (last demotion goes below all).
	r := c.Access(cache.AccessInfo{Block: 4})
	if r.Victim != 3 {
		t.Errorf("victim = block %d, want 3 (most recently demoted)", r.Victim)
	}
	if !c.Probe(0) {
		t.Error("hinted block evicted while demoted candidates existed")
	}
	if st := p.Stats(); st.Demotions != 4 { // blocks 1,2,3 and the fill of 4
		t.Errorf("demotions = %d, want 4", st.Demotions)
	}
}

func TestHintRateGateBlocksDemotionWithoutSharing(t *testing.T) {
	c, p := protCache(t, Options{Strength: Full})
	// No hints at all: fills must not be demoted, LRU order preserved.
	for b := uint64(0); b < 4; b++ {
		c.Access(cache.AccessInfo{Block: b})
	}
	r := c.Access(cache.AccessInfo{Block: 4})
	if r.Victim != 0 {
		t.Errorf("victim = block %d, want 0 (plain LRU order)", r.Victim)
	}
	if st := p.Stats(); st.Demotions != 0 {
		t.Errorf("demotions = %d with zero hints", st.Demotions)
	}
}

func TestNoDemoteOption(t *testing.T) {
	c, p := protCache(t, Options{Strength: Full, NoDemote: true})
	c.Access(cache.AccessInfo{Block: 0, PredictedShared: true})
	c.Access(cache.AccessInfo{Block: 1})
	c.Access(cache.AccessInfo{Block: 2})
	c.Access(cache.AccessInfo{Block: 3})
	// Without demotion the LRU victim among unprotected is block 1.
	r := c.Access(cache.AccessInfo{Block: 4})
	if r.Victim != 1 {
		t.Errorf("victim = block %d, want 1", r.Victim)
	}
	if st := p.Stats(); st.Demotions != 0 {
		t.Errorf("NoDemote recorded %d demotions", st.Demotions)
	}
}

func TestVictimExclusionSkipsProtected(t *testing.T) {
	c, p := protCache(t, Options{Strength: Full, NoDemote: true})
	c.Access(cache.AccessInfo{Block: 0, PredictedShared: true, Core: 0})
	c.Access(cache.AccessInfo{Block: 1})
	c.Access(cache.AccessInfo{Block: 2})
	c.Access(cache.AccessInfo{Block: 3})
	// Block 0 is the LRU head candidate only via base order; it is
	// protected, so eviction must take block 1 (next in LRU order)...
	// except promotion made 0 MRU at fill; with fills 1,2,3 after it the
	// base LRU order is 0,1,2,3 → 0 protected → victim 1, one exclusion.
	r := c.Access(cache.AccessInfo{Block: 4})
	if r.Victim != 1 {
		t.Errorf("victim = block %d, want 1", r.Victim)
	}
	if st := p.Stats(); st.Exclusions != 1 {
		t.Errorf("exclusions = %d, want 1", st.Exclusions)
	}
	if !c.Probe(0) {
		t.Error("protected block evicted")
	}
}

func TestSkipBudgetExpires(t *testing.T) {
	c, p := protCache(t, Options{Strength: Full, NoDemote: true, SkipBudget: 2})
	c.Access(cache.AccessInfo{Block: 0, PredictedShared: true, Core: 0})
	c.Access(cache.AccessInfo{Block: 1})
	c.Access(cache.AccessInfo{Block: 2})
	c.Access(cache.AccessInfo{Block: 3})
	// Each conflicting fill charges block 0 once (it is the base LRU
	// victim). cache.LRU has no VictimRanker, so the wrapper uses the
	// fallback path: once the budget hits zero mid-selection, the
	// expired block itself is evicted.
	c.Access(cache.AccessInfo{Block: 4}) // charge 1 (skips left 1)
	if !c.Probe(0) {
		t.Fatal("block 0 evicted before budget exhausted")
	}
	r := c.Access(cache.AccessInfo{Block: 5}) // charge 2 → expiry → evicted
	if p.Stats().Expired != 1 {
		t.Fatalf("expired = %d, want 1", p.Stats().Expired)
	}
	if r.Victim != 0 {
		t.Errorf("victim = block %d, want 0 on expiry", r.Victim)
	}
	if c.Probe(0) {
		t.Error("block 0 resident after budget exhaustion")
	}
}

func TestFulfilmentRefreshesBudget(t *testing.T) {
	c, p := protCache(t, Options{Strength: Full, NoDemote: true, SkipBudget: 2})
	c.Access(cache.AccessInfo{Block: 0, PredictedShared: true, Core: 0})
	c.Access(cache.AccessInfo{Block: 1})
	c.Access(cache.AccessInfo{Block: 2})
	c.Access(cache.AccessInfo{Block: 3})
	c.Access(cache.AccessInfo{Block: 4}) // charge 1
	// Cross-core hit refreshes the budget (and promotes to MRU).
	c.Access(cache.AccessInfo{Block: 0, Core: 1})
	if p.Stats().Fulfilled != 1 {
		t.Fatalf("fulfilled = %d, want 1", p.Stats().Fulfilled)
	}
	// Block 0 is MRU now; push it back to LRU head with 3 more fills,
	// each charging at most once when it heads the rank.
	c.Access(cache.AccessInfo{Block: 5})
	c.Access(cache.AccessInfo{Block: 6})
	c.Access(cache.AccessInfo{Block: 7})
	if !c.Probe(0) {
		t.Error("refreshed block evicted within renewed budget")
	}
}

func TestClearOnFulfil(t *testing.T) {
	c, p := protCache(t, Options{Strength: Full, NoDemote: true, ClearOnFulfil: true})
	c.Access(cache.AccessInfo{Block: 0, PredictedShared: true, Core: 0})
	c.Access(cache.AccessInfo{Block: 0, Core: 1}) // hit fulfils, clears
	if p.Protected(0, 0) {
		t.Error("protection survived fulfilment with ClearOnFulfil")
	}
	if p.Stats().Fulfilled != 1 {
		t.Errorf("fulfilled = %d", p.Stats().Fulfilled)
	}
}

func TestSameCoreHitDoesNotFulfil(t *testing.T) {
	_, p := protCache(t, Options{Strength: Full, NoDemote: true})
	p.Fill(0, 0, &cache.AccessInfo{Block: 9, PredictedShared: true, Core: 2})
	p.Hit(0, 0, &cache.AccessInfo{Block: 9, Core: 2})
	if p.Stats().Fulfilled != 0 {
		t.Error("same-core hit counted as fulfilment")
	}
	if !p.Protected(0, 0) {
		t.Error("protection lost on same-core hit")
	}
}

func TestLockoutEvictsBaseVictim(t *testing.T) {
	c, p := protCache(t, Options{Strength: Full})
	for b := uint64(0); b < 4; b++ {
		c.Access(cache.AccessInfo{Block: b, PredictedShared: true})
	}
	// All 4 ways protected → lockout: base (LRU) victim is block 0.
	r := c.Access(cache.AccessInfo{Block: 4})
	if r.Victim != 0 {
		t.Errorf("lockout victim = block %d, want 0", r.Victim)
	}
	if st := p.Stats(); st.Lockouts != 1 {
		t.Errorf("lockouts = %d, want 1", st.Lockouts)
	}
}

func TestInsertOnlyNeverExcludes(t *testing.T) {
	c, p := protCache(t, Options{Strength: InsertOnly, NoDemote: true})
	c.Access(cache.AccessInfo{Block: 0, PredictedShared: true})
	c.Access(cache.AccessInfo{Block: 1})
	c.Access(cache.AccessInfo{Block: 2})
	c.Access(cache.AccessInfo{Block: 3})
	// For LRU, promotion at fill is a no-op and insert-only never skips:
	// plain LRU order evicts block 0 first.
	r := c.Access(cache.AccessInfo{Block: 4})
	if r.Victim != 0 {
		t.Errorf("victim = block %d, want 0", r.Victim)
	}
	if st := p.Stats(); st.Exclusions != 0 || st.Lockouts != 0 {
		t.Errorf("insert-only recorded exclusions/lockouts: %+v", st)
	}
}

// fixedVictim is a minimal non-ranking policy for the fallback path.
type fixedVictim struct{ ways int }

func (f *fixedVictim) Name() string                     { return "fixed" }
func (f *fixedVictim) Attach(_, ways int)               { f.ways = ways }
func (f *fixedVictim) Hit(int, int, *cache.AccessInfo)   {}
func (f *fixedVictim) Fill(int, int, *cache.AccessInfo)  {}
func (f *fixedVictim) Victim(int, *cache.AccessInfo) int { return 0 }

func TestFallbackWithoutRanking(t *testing.T) {
	p := NewProtectorOpts(&fixedVictim{}, Options{Strength: Full})
	c, err := cache.NewSetAssoc(4*trace.BlockSize, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(cache.AccessInfo{Block: 0, PredictedShared: true})
	c.Access(cache.AccessInfo{Block: 1})
	c.Access(cache.AccessInfo{Block: 2})
	c.Access(cache.AccessInfo{Block: 3})
	// fixedVictim always evicts way 0 = block 0, which is protected; the
	// fallback must redirect to the first unprotected way (way 1).
	r := c.Access(cache.AccessInfo{Block: 4})
	if r.Victim != 1 {
		t.Errorf("fallback victim = block %d, want 1", r.Victim)
	}
	if st := p.Stats(); st.Exclusions != 1 {
		t.Errorf("exclusions = %d, want 1", st.Exclusions)
	}
}

// evictCounter records ObserveEvict calls.
type evictCounter struct {
	cache.LRU
	evicts int
}

func (e *evictCounter) RankVictims(set int, _ *cache.AccessInfo) []int {
	ways := e.Ways()
	rank := make([]int, ways)
	for i := range rank {
		rank[i] = i
	}
	for i := 0; i < ways; i++ {
		for j := i + 1; j < ways; j++ {
			if e.Stamp(set, rank[j]) < e.Stamp(set, rank[i]) {
				rank[i], rank[j] = rank[j], rank[i]
			}
		}
	}
	return rank
}

func (e *evictCounter) ObserveEvict(int, int) { e.evicts++ }

func TestEvictObserverNotified(t *testing.T) {
	base := &evictCounter{}
	p := NewProtectorOpts(base, Options{Strength: Full, NoDemote: true})
	c, err := cache.NewSetAssoc(4*trace.BlockSize, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(cache.AccessInfo{Block: 0, PredictedShared: true})
	for b := uint64(1); b < 8; b++ {
		c.Access(cache.AccessInfo{Block: b})
	}
	// 4 fills beyond capacity → 4 evictions routed through the ranking
	// path; each must have notified the base.
	if base.evicts != 4 {
		t.Errorf("ObserveEvict fired %d times, want 4", base.evicts)
	}
}

func TestProtectionClearedOnRefill(t *testing.T) {
	c, p := protCache(t, Options{Strength: Full, NoDemote: true})
	c.Access(cache.AccessInfo{Block: 0, PredictedShared: true})
	way := -1
	for w := 0; w < 4; w++ {
		if p.Protected(0, w) {
			way = w
		}
	}
	if way < 0 {
		t.Fatal("no protected way after hinted fill")
	}
	c.Invalidate(0)
	c.Access(cache.AccessInfo{Block: 9}) // fills the invalid way, unhinted
	if p.Protected(0, way) {
		t.Error("protection survived an unhinted refill of the way")
	}
}

func TestDuelRolesAndHysteresis(t *testing.T) {
	p := NewProtectorOpts(cache.NewLRU(), Options{Strength: Full, Duel: true})
	p.Attach(1024, 4)
	aLeaders, bLeaders := 0, 0
	for s := 0; s < 1024; s++ {
		switch p.setRole(s) {
		case +1:
			aLeaders++
		case -1:
			bLeaders++
		}
	}
	if aLeaders != 32 || bLeaders != 32 {
		t.Errorf("leader counts = (%d,%d), want (32,32)", aLeaders, bLeaders)
	}
	// Followers start on the base side (useAware=false).
	if p.aware(1) {
		t.Error("follower started sharing-aware")
	}
	// B-leader misses drive PSEL down past the hysteresis margin →
	// followers flip to sharing-aware.
	bLeader := duelPeriod/2 + 1
	for i := 0; i < pselMax; i++ {
		p.Fill(bLeader, 0, &cache.AccessInfo{})
	}
	if !p.aware(1) {
		t.Error("followers did not adopt sharing-aware after B losses")
	}
	// Leaders never follow PSEL.
	if !p.aware(0) || p.aware(bLeader) {
		t.Error("leader roles not fixed")
	}
	// A-leader misses drive PSEL back up → followers revert.
	for i := 0; i < pselMax; i++ {
		p.Fill(0, 0, &cache.AccessInfo{})
	}
	if p.aware(1) {
		t.Error("followers did not revert to base after A losses")
	}
}

func TestDuelDisabledMeansAlwaysAware(t *testing.T) {
	p := NewProtectorOpts(cache.NewLRU(), Options{Strength: Full})
	p.Attach(64, 4)
	for s := 0; s < 64; s++ {
		if !p.aware(s) {
			t.Fatalf("set %d not sharing-aware with dueling off", s)
		}
	}
}

func TestGateDecays(t *testing.T) {
	p := NewProtectorOpts(cache.NewLRU(), Options{Strength: Full})
	p.Attach(1, 4)
	// One hinted fill activates the gate...
	p.Fill(0, 0, &cache.AccessInfo{PredictedShared: true})
	if !p.demoteActive() {
		t.Fatal("gate inactive after hinted fill")
	}
	// ...but a long run of unhinted fills deactivates it again.
	for i := 0; i < 2*gateWindow; i++ {
		p.Fill(0, 1, &cache.AccessInfo{})
	}
	if p.demoteActive() {
		t.Error("gate still active after hint-free window")
	}
}

func TestProtectorDelegatesHits(t *testing.T) {
	c, _ := protCache(t, Options{Strength: Full})
	c.Access(cache.AccessInfo{Block: 0})
	c.Access(cache.AccessInfo{Block: 1})
	c.Access(cache.AccessInfo{Block: 0}) // hit promotes 0 over 1
	c.Access(cache.AccessInfo{Block: 2})
	c.Access(cache.AccessInfo{Block: 3})
	if r := c.Access(cache.AccessInfo{Block: 4}); r.Victim != 1 {
		t.Errorf("victim = %d, want 1 (hit promotion not delegated)", r.Victim)
	}
}
