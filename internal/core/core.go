// Package core implements the paper's primary contribution: a generic
// sharing-aware wrapper that can be combined with ANY base replacement
// policy. At fill time the wrapper receives a hint — from the offline
// oracle (internal/oracle) or from a realistic fill-time predictor
// (internal/predictor) — saying whether the incoming block will be shared
// during its LLC residency. Hinted blocks are protected:
//
//   - insertion promotion: the fill is promoted to the base policy's
//     highest-protection position (MRU for stack policies, RRPV 0 for the
//     RRIP family), and
//   - victim exclusion (Full strength only): during victim selection the
//     wrapper walks the base policy's preference order and skips protected
//     blocks while an unprotected candidate exists.
//
// Protection is deliberately *temporary*. A block predicted shared is only
// worth retaining until the predicted cross-core reuse arrives; afterwards
// the base policy's own recency/re-reference machinery is the right judge.
// Two mechanisms bound every protection:
//
//   - fulfilment: the first LLC hit from a core other than the filler
//     clears the protection (the sharing the hint promised has happened);
//   - skip budget: each time victim selection passes over a protected
//     block, that block's budget decreases; at zero the protection is
//     dropped. This caps the collateral damage of mispredictions and of
//     shared-but-already-dead blocks at a few forced evictions of
//     innocent neighbours.
//
// Anti-lockout: when every way of a set is protected, the base victim is
// evicted anyway (and the set's budgets decay), so a burst of shared fills
// can never wedge a set.
package core

import (
	"fmt"

	"sharellc/internal/cache"
	"sharellc/internal/mem"
)

// Strength selects how aggressively the wrapper acts on sharing hints.
type Strength int

const (
	// InsertOnly promotes predicted-shared fills to the base policy's
	// highest-protection insertion position but leaves victim selection
	// untouched. This is the gentler variant of the paper's oracle
	// mechanism (ablation A1).
	InsertOnly Strength = iota
	// Full adds victim exclusion: protected blocks are skipped during
	// victim selection while unprotected candidates exist.
	Full
)

// String implements fmt.Stringer.
func (s Strength) String() string {
	switch s {
	case InsertOnly:
		return "insert-only"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Strength(%d)", int(s))
	}
}

// DefaultSkipBudget is how many times a protected block may be passed
// over during victim selection before its protection lapses.
const DefaultSkipBudget = 8

// Options configures a Protector beyond the basic strength.
type Options struct {
	Strength Strength
	// SkipBudget bounds how often one protected block can deflect
	// eviction onto its set neighbours. Zero means DefaultSkipBudget;
	// negative means unlimited (not recommended: dead shared blocks then
	// pin their sets until lockout).
	SkipBudget int
	// NoDemote disables insertion demotion of predicted-unshared fills.
	// By default the wrapper demotes such fills to the base policy's
	// lowest-priority position (when the base implements Demoter).
	NoDemote bool
	// Duel enables set-dueling: bare-base leader sets run against
	// sharing-aware leader sets and follower sets adopt whichever side
	// misses less (with hysteresis). Off by default — the mechanism
	// carries long-lived state (resident shared working sets), so on
	// trace-scale runs the duel's convergence time eats much of the
	// win; the hint-rate gate below is the default no-harm guard.
	Duel bool
	// ClearOnFulfil drops protection as soon as the predicted sharing
	// materializes (first cross-core hit). Off by default: a block whose
	// hint proved right is *actively shared* and keeps its protection —
	// the whole point of the oracle is to extend such blocks' residencies
	// past the base policy's eviction — with the skip budget still
	// bounding the cost once the block goes dead.
	ClearOnFulfil bool
}

// VictimRanker mirrors policy.VictimRanker (declared here too so that core
// does not import the catalogue; any policy implementing the method works).
type VictimRanker interface {
	RankVictims(set int, a *cache.AccessInfo) []int
}

// Demoter is implemented by base policies that can move a line to their
// lowest-priority (evict-next) position. The wrapper demotes fills that
// are predicted NOT to be shared, which is the highest-leverage form of
// sharing-awareness: single-use private traffic stops displacing shared
// working sets, exactly as LIP/BIP do for thrashing streams.
type Demoter interface {
	Demote(set, way int)
}

// Promoter is implemented by base policies that can move a line to their
// highest-protection position without side effects on their training
// state. When absent, the wrapper falls back to Hit, which for pure
// recency policies is exactly a promotion.
type Promoter interface {
	Promote(set, way int)
}

// EvictObserver is implemented by base policies that train on evictions
// (e.g. SHiP). When the wrapper overrides the base victim choice it still
// delivers the eviction notification so the base keeps learning.
type EvictObserver interface {
	ObserveEvict(set, way int)
}

// Stats counts the wrapper's interventions.
type Stats struct {
	ProtectedFills uint64 // fills that arrived with a shared hint
	Promotions     uint64 // insertion promotions applied
	Demotions      uint64 // unshared fills demoted to lowest priority
	Exclusions     uint64 // victims redirected away from a protected block
	Fulfilled      uint64 // protections cleared by an observed cross-core hit
	Expired        uint64 // protections cleared by skip-budget exhaustion
	Lockouts       uint64 // sets found fully protected (base victim used)
}

// line is the wrapper's per-way state.
type line struct {
	protected bool
	fillCore  uint8
	skipsLeft int
}

// duelPeriod spaces the leader sets: one sharing-aware leader and one
// base leader per 32 sets. Denser than DIP's 1-in-64 because simulated
// traces are millions (not billions) of references long and the selector
// must converge within a few sweep revolutions.
const duelPeriod = 32

// pselMax sizes the 8-bit policy-selection counter (smaller than DIP's
// 10 bits for the same trace-scale reason).
const pselMax = 1 << 8

// Protector is the sharing-aware wrapper. It implements cache.Policy by
// delegating to the wrapped base policy and intervening on hinted fills.
type Protector struct {
	base  cache.Policy
	opts  Options
	ways  int
	lines []line
	stats Stats

	period   int // leader spacing (shrunk for tiny caches)
	psel     int
	useAware bool // follower decision, updated with hysteresis

	// Hint-rate gate: demotion of unhinted fills is enabled only while a
	// meaningful fraction of recent fills carried a shared hint, so a
	// workload with no sharing never pays the demotion tax. Counters are
	// halved periodically to track phase changes.
	fillsSeen   uint64
	fillsHinted uint64
}

// NewProtector wraps base with sharing-aware protection of the given
// strength and default options. The same Protector instance must manage
// exactly one cache, like any other policy.
func NewProtector(base cache.Policy, strength Strength) *Protector {
	return NewProtectorOpts(base, Options{Strength: strength})
}

// NewProtectorOpts wraps base with explicit options.
func NewProtectorOpts(base cache.Policy, opts Options) *Protector {
	if base == nil {
		panic("core: nil base policy")
	}
	if opts.SkipBudget == 0 {
		opts.SkipBudget = DefaultSkipBudget
	}
	return &Protector{base: base, opts: opts}
}

// Base returns the wrapped policy.
func (p *Protector) Base() cache.Policy { return p.base }

// Name implements cache.Policy: the base name with a "+sa" suffix (e.g.
// "lru+sa").
func (p *Protector) Name() string { return p.base.Name() + "+sa" }

// Stats returns the intervention counters.
func (p *Protector) Stats() Stats { return p.stats }

// Attach implements cache.Policy.
func (p *Protector) Attach(sets, ways int) {
	p.base.Attach(sets, ways)
	p.ways = ways
	p.lines = make([]line, sets*ways)
	mem.Hugepages(p.lines)
	p.period = duelPeriod
	if sets < p.period {
		p.period = sets
	}
	p.psel = pselMax / 2
}

// setRole reports a set's dueling role: +1 sharing-aware leader, -1 base
// leader, 0 follower.
func (p *Protector) setRole(set int) int {
	if !p.opts.Duel {
		return +1 // everything sharing-aware
	}
	switch set % p.period {
	case 0:
		return +1
	case p.period/2 + 1:
		return -1
	default:
		return 0
	}
}

// aware reports whether sharing-aware behaviour is active in set.
func (p *Protector) aware(set int) bool {
	switch p.setRole(set) {
	case +1:
		return true
	case -1:
		return false
	default:
		return p.useAware
	}
}

// observeMiss trains the selector on leader-set fills (fills are misses).
func (p *Protector) observeMiss(set int) {
	if !p.opts.Duel {
		return
	}
	switch p.setRole(set) {
	case +1:
		if p.psel < pselMax-1 {
			p.psel++
		}
	case -1:
		if p.psel > 0 {
			p.psel--
		}
	}
	// Hysteresis: followers switch to sharing-aware only on a clear win
	// (low PSEL) and back only on a clear loss, because the mechanism
	// carries long-lived state (resident shared working sets) that
	// flapping would destroy.
	const margin = pselMax / 8
	if p.useAware && p.psel > pselMax/2+margin {
		p.useAware = false
	} else if !p.useAware && p.psel < pselMax/2-margin {
		p.useAware = true
	}
}

// Hit implements cache.Policy: delegate, then check whether the hit
// fulfils a pending protection.
func (p *Protector) Hit(set, way int, a *cache.AccessInfo) {
	p.base.Hit(set, way, a)
	ln := &p.lines[set*p.ways+way]
	if ln.protected && a.Core != ln.fillCore {
		p.stats.Fulfilled++
		if p.opts.ClearOnFulfil {
			ln.protected = false
		} else {
			// Refresh: active sharing re-arms the budget.
			ln.skipsLeft = p.opts.SkipBudget
		}
	}
}

// Victim implements cache.Policy.
func (p *Protector) Victim(set int, a *cache.AccessInfo) int {
	if p.opts.Strength < Full || !p.aware(set) {
		return p.base.Victim(set, a)
	}
	base := set * p.ways
	nProtected := 0
	for w := 0; w < p.ways; w++ {
		if p.lines[base+w].protected {
			nProtected++
		}
	}
	if nProtected == 0 {
		return p.base.Victim(set, a)
	}
	if nProtected == p.ways {
		// Lockout: every way protected. Evict the base victim and charge
		// every line's budget so a persistently saturated set drains.
		p.stats.Lockouts++
		for w := 0; w < p.ways; w++ {
			p.charge(&p.lines[base+w])
		}
		return p.base.Victim(set, a)
	}
	if r, ok := p.base.(VictimRanker); ok {
		rank := r.RankVictims(set, a)
		for _, w := range rank {
			ln := &p.lines[base+w]
			if !ln.protected {
				if w != rank[0] {
					p.stats.Exclusions++
					// Charge every protected line that outranked the
					// chosen victim.
					for _, s := range rank {
						if s == w {
							break
						}
						p.charge(&p.lines[base+s])
					}
				}
				p.notifyEvict(set, w)
				return w
			}
		}
		// Unreachable: nProtected < ways guarantees an unprotected way.
	}
	// Base cannot rank (e.g. Random): take its victim, and if that is
	// protected redirect to the lowest-numbered unprotected way.
	v := p.base.Victim(set, a)
	if !p.lines[base+v].protected {
		return v
	}
	p.charge(&p.lines[base+v])
	for w := 0; w < p.ways; w++ {
		if !p.lines[base+w].protected {
			p.stats.Exclusions++
			return w
		}
	}
	return v // unreachable, see above
}

// charge decrements a protected line's skip budget, expiring the
// protection when it runs out. Unlimited budgets (negative option) never
// expire.
func (p *Protector) charge(ln *line) {
	if !ln.protected || p.opts.SkipBudget < 0 {
		return
	}
	ln.skipsLeft--
	if ln.skipsLeft <= 0 {
		ln.protected = false
		p.stats.Expired++
	}
}

// notifyEvict forwards the eviction to bases that train on it. When the
// wrapper picks the victim from the ranking rather than via base.Victim,
// the base's Victim-side training would otherwise be skipped.
func (p *Protector) notifyEvict(set, way int) {
	if o, ok := p.base.(EvictObserver); ok {
		o.ObserveEvict(set, way)
	}
}

// gateWindow is the decay period of the hint-rate gate (in fills).
const gateWindow = 1 << 15

// gateDenom sets the gate threshold: demotion activates while hinted
// fills are at least 1/gateDenom of all fills.
const gateDenom = 32

// demoteActive reports whether the hint-rate gate currently allows
// demotion of unhinted fills.
func (p *Protector) demoteActive() bool {
	return p.fillsHinted*gateDenom >= p.fillsSeen
}

// Fill implements cache.Policy: delegate, then promote and mark protected
// when the fill carries a shared hint.
func (p *Protector) Fill(set, way int, a *cache.AccessInfo) {
	p.base.Fill(set, way, a)
	p.observeMiss(set)
	p.fillsSeen++
	if a.PredictedShared {
		p.fillsHinted++
	}
	if p.fillsSeen >= gateWindow {
		p.fillsSeen /= 2
		p.fillsHinted /= 2
	}
	ln := &p.lines[set*p.ways+way]
	*ln = line{}
	if !p.aware(set) {
		return
	}
	if !a.PredictedShared {
		if !p.opts.NoDemote && p.demoteActive() {
			if d, ok := p.base.(Demoter); ok {
				d.Demote(set, way)
				p.stats.Demotions++
			}
		}
		return
	}
	p.stats.ProtectedFills++
	// Promote to the base policy's highest-protection position (MRU for
	// stack policies, RRPV 0 for the RRIP family) — via Promote when the
	// base offers a training-free promotion, otherwise via Hit.
	if pr, ok := p.base.(Promoter); ok {
		pr.Promote(set, way)
	} else {
		p.base.Hit(set, way, a)
	}
	p.stats.Promotions++
	if p.opts.Strength >= Full {
		ln.protected = true
		ln.fillCore = a.Core
		ln.skipsLeft = p.opts.SkipBudget
		if p.opts.SkipBudget < 0 {
			ln.skipsLeft = 1 // unused sentinel; charge() ignores it
		}
	}
}

// DuelState reports the current selector value and follower decision,
// for diagnostics.
func (p *Protector) DuelState() (psel int, useAware bool) { return p.psel, p.useAware }

// Protected reports whether way in set currently holds a protected block.
// Exposed for tests and detailed analysis.
func (p *Protector) Protected(set, way int) bool {
	return p.lines[set*p.ways+way].protected
}
