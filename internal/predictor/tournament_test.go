package predictor

import (
	"testing"

	"sharellc/internal/cache"
	"sharellc/internal/core"
	"sharellc/internal/policy"
	"sharellc/internal/sharing"
)

func TestTournamentConstruction(t *testing.T) {
	tr, err := NewTournament(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "tournament" {
		t.Errorf("Name = %q", tr.Name())
	}
	if tr.String() == "" {
		t.Error("empty String()")
	}
	if _, err := NewTournament(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestTournamentPrefersTheRightComponent(t *testing.T) {
	// Construct a case where the address component is reliable and the
	// PC component is useless: every block keeps a stable sharing role,
	// but all fills come from one PC so the PC table is a coin toss.
	tr, err := NewTournament(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const pc = 0x4000
	// Train: even blocks shared, odd private, all from the same PC.
	for round := 0; round < 50; round++ {
		for b := uint64(0); b < 32; b++ {
			tr.Predict(cache.AccessInfo{Block: b, PC: pc})
			if b%2 == 0 {
				tr.Train(sharing.MakeResidency(b, pc, 3))
			} else {
				tr.Train(sharing.MakeResidency(b, pc, 1))
			}
		}
	}
	right := 0
	for b := uint64(0); b < 32; b++ {
		got := tr.Predict(cache.AccessInfo{Block: b, PC: pc})
		if got == (b%2 == 0) {
			right++
		}
	}
	if right < 28 {
		t.Errorf("tournament correct on %d/32 stable blocks; chooser failed to pick the address component", right)
	}
}

func TestTournamentAgreementNeedsNoChooser(t *testing.T) {
	tr, err := NewTournament(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Components agree (both cold → both predict private): Train with a
	// matching outcome must not panic or corrupt state.
	tr.Predict(cache.AccessInfo{Block: 7, PC: 0x10})
	tr.Train(sharing.MakeResidency(7, 0x10, 1))
	if tr.Predict(cache.AccessInfo{Block: 7, PC: 0x10}) {
		t.Error("agreed-private block predicted shared")
	}
}

func TestTournamentEndToEnd(t *testing.T) {
	stream := mixedStream(20000)
	tr, err := NewTournament(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(stream, size, ways, policy.NewLRUPolicy(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pred.Total() == 0 {
		t.Fatal("no residencies classified")
	}
	if acc := res.Pred.Accuracy(); acc < 0.7 {
		t.Errorf("tournament accuracy %.2f on history-consistent workload", acc)
	}
	// And it must drive replacement without error.
	tr2, err := NewTournament(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Drive(stream, size, ways, policy.NewLRUPolicy(), tr2, core.Full); err != nil {
		t.Fatal(err)
	}
}
