package predictor

import (
	"testing"
	"testing/quick"

	"sharellc/internal/cache"
	"sharellc/internal/core"
	"sharellc/internal/policy"
	"sharellc/internal/rng"
	"sharellc/internal/sharing"
	"sharellc/internal/trace"
)

const (
	size = 16 * trace.BlockSize
	ways = 4
)

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{TableBits: 0, CounterBits: 2, Threshold: 1},
		{TableBits: 30, CounterBits: 2, Threshold: 1},
		{TableBits: 10, CounterBits: 0, Threshold: 0},
		{TableBits: 10, CounterBits: 9, Threshold: 0},
		{TableBits: 10, CounterBits: 2, Threshold: 4},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, c)
		}
	}
	if _, err := NewAddress(Config{}); err == nil {
		t.Error("NewAddress accepted zero config")
	}
	if _, err := NewPC(Config{}); err == nil {
		t.Error("NewPC accepted zero config")
	}
}

func TestAddressLearnsPerBlockHistory(t *testing.T) {
	p, err := NewAddress(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sharedBlock, privateBlock := uint64(100), uint64(200)
	// Train a few residencies each.
	for i := 0; i < 4; i++ {
		p.Train(sharing.MakeResidency(sharedBlock, 0, 2))
		p.Train(sharing.MakeResidency(privateBlock, 0, 1))
	}
	if !p.Predict(cache.AccessInfo{Block: sharedBlock}) {
		t.Error("address predictor missed a consistently shared block")
	}
	if p.Predict(cache.AccessInfo{Block: privateBlock}) {
		t.Error("address predictor flagged a consistently private block")
	}
}

func TestPCLearnsPerSiteHistory(t *testing.T) {
	p, err := NewPC(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sharedPC, privatePC := uint64(0x1000), uint64(0x2000)
	for i := 0; i < 4; i++ {
		p.Train(sharing.MakeResidency(uint64(i), sharedPC, 3))
		p.Train(sharing.MakeResidency(uint64(100+i), privatePC, 1))
	}
	if !p.Predict(cache.AccessInfo{PC: sharedPC, Block: 999}) {
		t.Error("PC predictor missed a sharing fill site")
	}
	if p.Predict(cache.AccessInfo{PC: privatePC, Block: 998}) {
		t.Error("PC predictor flagged a private fill site")
	}
}

func TestSingleSharedOutcomeFlipsEntry(t *testing.T) {
	// Counters initialize at threshold-1, so one shared outcome predicts
	// shared and one private outcome swings it back below threshold.
	p, err := NewAddress(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := uint64(7)
	if p.Predict(cache.AccessInfo{Block: b}) {
		t.Error("cold entry predicts shared")
	}
	p.Train(sharing.MakeResidency(b, 0, 2))
	if !p.Predict(cache.AccessInfo{Block: b}) {
		t.Error("one shared outcome did not flip the entry")
	}
	p.Train(sharing.MakeResidency(b, 0, 1))
	if p.Predict(cache.AccessInfo{Block: b}) {
		t.Error("one private outcome did not swing the entry back")
	}
}

func TestCounterSaturation(t *testing.T) {
	cfg := Config{TableBits: 8, CounterBits: 2, Threshold: 2}
	p, err := NewAddress(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := uint64(9)
	for i := 0; i < 100; i++ {
		p.Train(sharing.MakeResidency(b, 0, 4)) // saturate up
	}
	// Two private outcomes from saturation (3) → 1 < threshold flips it;
	// hysteresis means exactly max-threshold+1 decrements are needed.
	p.Train(sharing.MakeResidency(b, 0, 1))
	if !p.Predict(cache.AccessInfo{Block: b}) {
		t.Error("single private outcome flipped a saturated entry")
	}
	p.Train(sharing.MakeResidency(b, 0, 1))
	p.Train(sharing.MakeResidency(b, 0, 1))
	if p.Predict(cache.AccessInfo{Block: b}) {
		t.Error("saturated entry never unlearned")
	}
}

func TestAlwaysNever(t *testing.T) {
	if !(Always{}).Predict(cache.AccessInfo{}) {
		t.Error("Always predicted false")
	}
	if (Never{}).Predict(cache.AccessInfo{}) {
		t.Error("Never predicted true")
	}
	(Always{}).Train(sharing.Residency{}) // must not panic
	(Never{}).Train(sharing.Residency{})
	if (Always{}).Name() != "always" || (Never{}).Name() != "never" {
		t.Error("bracket predictor names wrong")
	}
}

func TestTableIndexBounded(t *testing.T) {
	tb, err := newTable(Config{TableBits: 6, CounterBits: 2, Threshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := func(key uint64) bool { return tb.index(key) < 64 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// mixedStream: half the blocks are consistently shared every residency,
// half consistently private. History predictors should do well here.
func mixedStream(n int) []cache.AccessInfo {
	rnd := rng.New(21)
	stream := make([]cache.AccessInfo, 0, n)
	for len(stream) < n {
		b := rnd.Uint64n(48)
		core0 := uint8(rnd.Intn(4))
		stream = append(stream, cache.AccessInfo{Core: core0, Block: b, PC: 0x400 + b*4, Index: int64(len(stream))})
		if b%2 == 0 { // even blocks get a cross-core touch soon after
			stream = append(stream, cache.AccessInfo{Core: (core0 + 1) % 4, Block: b, PC: 0x400 + b*4, Index: int64(len(stream))})
		}
	}
	cache.AnnotateNextUse(stream)
	return stream
}

func TestEvaluateOnConsistentWorkload(t *testing.T) {
	stream := mixedStream(20000)
	for _, mk := range []func() (Predictor, error){
		func() (Predictor, error) { return NewAddress(DefaultConfig()) },
		func() (Predictor, error) { return NewPC(DefaultConfig()) },
	} {
		pred, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Evaluate(stream, size, ways, policy.NewLRUPolicy(), pred)
		if err != nil {
			t.Fatal(err)
		}
		if res.Pred.Total() == 0 {
			t.Fatalf("%s: no residencies classified", pred.Name())
		}
		if acc := res.Pred.Accuracy(); acc < 0.7 {
			t.Errorf("%s: accuracy %.2f on a history-consistent workload, want > 0.7", pred.Name(), acc)
		}
	}
}

func TestEvaluateDoesNotPerturbReplacement(t *testing.T) {
	stream := mixedStream(5000)
	bare, err := sharing.Replay(stream, size, ways, policy.NewLRUPolicy(), sharing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := NewAddress(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eval, err := Evaluate(stream, size, ways, policy.NewLRUPolicy(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Misses != eval.Misses {
		t.Errorf("Evaluate changed miss count: %d vs %d", bare.Misses, eval.Misses)
	}
}

func TestDriveProtectsAndTrains(t *testing.T) {
	stream := mixedStream(20000)
	pred, err := NewAddress(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := Drive(stream, size, ways, policy.NewLRUPolicy(), pred, core.Full)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ProtectedFills == 0 {
		t.Error("Drive never protected a fill")
	}
	if res.Pred.Total() == 0 {
		t.Error("Drive recorded no prediction outcomes")
	}
}

func TestPredictorsDeterministic(t *testing.T) {
	stream := mixedStream(8000)
	run := func() uint64 {
		pred, err := NewPC(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := Drive(stream, size, ways, policy.NewLRUPolicy(), pred, core.Full)
		if err != nil {
			t.Fatal(err)
		}
		return res.Misses
	}
	if run() != run() {
		t.Error("predictor-driven replay not deterministic")
	}
}
