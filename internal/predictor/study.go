package predictor

import (
	"context"
	"fmt"

	"sharellc/internal/cache"
	"sharellc/internal/core"
	"sharellc/internal/sharing"
)

// Evaluate measures a predictor's fill-time accuracy without letting it
// influence replacement (experiment F7): the base policy runs untouched
// while the predictor predicts at each fill and trains at each residency
// end. The returned result's Pred field holds the confusion matrix.
func Evaluate(stream []cache.AccessInfo, llcSize, llcWays int, p cache.Policy, pred Predictor) (*sharing.Result, error) {
	return EvaluateCtx(context.Background(), stream, llcSize, llcWays, p, pred)
}

// EvaluateCtx is Evaluate with a cancellation context threaded into the
// replay; cancelling ctx aborts a long F7 cell at its next poll.
func EvaluateCtx(ctx context.Context, stream []cache.AccessInfo, llcSize, llcWays int, p cache.Policy, pred Predictor) (*sharing.Result, error) {
	opt := sharing.Options{Hooks: HooksFor(pred), Ctx: ctx}
	res, err := sharing.Replay(stream, llcSize, llcWays, p, opt)
	if err != nil {
		return nil, fmt.Errorf("predictor: evaluating %s: %w", pred.Name(), err)
	}
	return res, nil
}

// EvaluateMulti measures every predictor's fill-time accuracy in one
// fused replay over the stream: one lane per predictor, each with its
// own fresh base policy (newBase is called once per lane) and its own
// hook set, so each lane's result is bit-identical to EvaluateCtx for
// that predictor alone. Results are returned in predictor order.
func EvaluateMulti(ctx context.Context, stream []cache.AccessInfo, llcSize, llcWays int, newBase func() cache.Policy, preds []Predictor) ([]*sharing.Result, error) {
	configs := make([]sharing.LLCConfig, len(preds))
	for i, pred := range preds {
		configs[i] = sharing.LLCConfig{Size: llcSize, Ways: llcWays, NewPolicy: newBase, Hooks: HooksFor(pred)}
	}
	results, err := sharing.ReplayMulti(stream, configs, sharing.Options{Ctx: ctx})
	if err != nil {
		return nil, fmt.Errorf("predictor: fused evaluation: %w", err)
	}
	return results, nil
}

// Drive runs a predictor end-to-end (experiment F8): the base policy is
// wrapped in the sharing-aware protector and the predictor's fill-time
// output steers protection, while training continues online from actual
// residency outcomes. This is the realistic counterpart of oracle.Run's
// pass 2.
func Drive(stream []cache.AccessInfo, llcSize, llcWays int, base cache.Policy, pred Predictor, strength core.Strength) (*sharing.Result, core.Stats, error) {
	return DriveOpts(stream, llcSize, llcWays, base, pred, core.Options{Strength: strength})
}

// DriveOpts is Drive with explicit protection options.
func DriveOpts(stream []cache.AccessInfo, llcSize, llcWays int, base cache.Policy, pred Predictor, opts core.Options) (*sharing.Result, core.Stats, error) {
	return DriveOptsCtx(context.Background(), stream, llcSize, llcWays, base, pred, opts)
}

// DriveOptsCtx is DriveOpts with a cancellation context threaded into
// the replay.
func DriveOptsCtx(ctx context.Context, stream []cache.AccessInfo, llcSize, llcWays int, base cache.Policy, pred Predictor, opts core.Options) (*sharing.Result, core.Stats, error) {
	prot := core.NewProtectorOpts(base, opts)
	opt := sharing.Options{Hooks: HooksFor(pred), Ctx: ctx}
	res, err := sharing.Replay(stream, llcSize, llcWays, prot, opt)
	if err != nil {
		return nil, core.Stats{}, fmt.Errorf("predictor: driving %s: %w", pred.Name(), err)
	}
	return res, prot.Stats(), nil
}

// HooksFor wires a predictor into a replay lane: fill-time prediction,
// residency training, and — for predictors that watch every access (the
// coherence-assisted predictor) — the per-access observation feed. It is
// exported so fused replays (sim.PredictorDriven) can build per-lane
// hook sets directly.
func HooksFor(pred Predictor) sharing.Hooks {
	h := sharing.Hooks{
		PredictShared:  pred.Predict,
		OnResidencyEnd: pred.Train,
	}
	if o, ok := pred.(AccessObserver); ok {
		h.OnAccess = o.Observe
	}
	return h
}
