package predictor

import (
	"fmt"

	"sharellc/internal/cache"
	"sharellc/internal/policy"
	"sharellc/internal/sharing"
)

// Tournament combines the address- and PC-indexed predictors with a
// per-signature chooser, the classic two-level scheme from branch
// prediction. It is this repository's probe of the paper's closing
// question — whether *combinations* of architectural features recover
// enough accuracy — and the F7/A2 experiments show it helps only
// marginally: both components miss for the same underlying reason (the
// sharing phase of a block is not a stable function of its address or
// fill site), so arbitrating between them cannot manufacture signal.
type Tournament struct {
	addr    *Address
	pc      *PC
	chooser *table // counts "addr was right more recently" per fill-PC signature

	// lastAddr/lastPC remember each component's fill-time prediction for
	// the blocks currently in flight, keyed like hardware would: by a
	// small direct-mapped table over the block address. Collisions only
	// blur chooser training, never correctness.
	inflight     []inflightPred
	inflightMask uint64
}

// inflightPred records the component predictions made at fill time.
type inflightPred struct {
	block    uint64
	addrSaid bool
	pcSaid   bool
	valid    bool
}

// NewTournament builds a tournament over two tables of cfg geometry plus
// a chooser of the same size.
func NewTournament(cfg Config) (*Tournament, error) {
	a, err := NewAddress(cfg)
	if err != nil {
		return nil, err
	}
	p, err := NewPC(cfg)
	if err != nil {
		return nil, err
	}
	ch, err := newTable(cfg)
	if err != nil {
		return nil, err
	}
	const inflightBits = 12
	return &Tournament{
		addr:         a,
		pc:           p,
		chooser:      ch,
		inflight:     make([]inflightPred, 1<<inflightBits),
		inflightMask: 1<<inflightBits - 1,
	}, nil
}

// Name implements Predictor.
func (t *Tournament) Name() string { return "tournament" }

// Predict implements Predictor: consult both components, let the chooser
// (indexed by the fill PC signature) arbitrate, and remember both
// component opinions for training.
func (t *Tournament) Predict(a cache.AccessInfo) bool {
	addrSaid := t.addr.Predict(a)
	pcSaid := t.pc.Predict(a)
	slot := &t.inflight[a.Block&t.inflightMask]
	*slot = inflightPred{block: a.Block, addrSaid: addrSaid, pcSaid: pcSaid, valid: true}
	if t.chooser.predict(uint64(policy.Signature(a.PC))) {
		return addrSaid
	}
	return pcSaid
}

// Train implements Predictor: train both components on the outcome, and
// train the chooser toward whichever component was right (no update when
// they agree or when the in-flight record was overwritten).
func (t *Tournament) Train(r sharing.Residency) {
	t.addr.Train(r)
	t.pc.Train(r)
	slot := &t.inflight[r.Block&t.inflightMask]
	if !slot.valid || slot.block != r.Block || slot.addrSaid == slot.pcSaid {
		return
	}
	shared := r.Shared()
	key := uint64(policy.Signature(r.FillPC))
	// chooser counter up = "prefer addr".
	t.chooser.train(key, slot.addrSaid == shared)
	slot.valid = false
}

// String aids debugging.
func (t *Tournament) String() string {
	return fmt.Sprintf("tournament(%s,%s)", t.addr.Name(), t.pc.Name())
}
