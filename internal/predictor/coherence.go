package predictor

import (
	"fmt"

	"sharellc/internal/cache"
	"sharellc/internal/coherence"
	"sharellc/internal/sharing"
)

// AccessObserver is implemented by predictors that need to see every LLC
// access (not only fills); the study harness feeds them through
// sharing.Hooks.OnAccess.
type AccessObserver interface {
	Observe(a cache.AccessInfo)
}

// DefaultCoherenceWindow is the recency window (in LLC accesses) within
// which a past coherence event keeps a block predicted shared.
const DefaultCoherenceWindow = 1 << 16

// Coherence is the coherence-assisted fill-time sharing predictor: the
// probe of the paper's closing conjecture that "other architectural ...
// features that have strong correlations with active sharing phases"
// are needed. It watches the MESI directory events induced by the LLC
// reference stream and predicts a fill shared when the block either has
// multiple directory sharers right now or had a cross-core coherence
// event (downgrade, invalidation, upgrade) within a recency window —
// i.e. it keys on *active sharing*, not on stale address/PC history.
//
// It requires no residency training at all; the directory is its state.
type Coherence struct {
	dir    *coherence.Directory
	window uint64
}

// NewCoherence builds the predictor. window <= 0 selects
// DefaultCoherenceWindow.
func NewCoherence(window int64) (*Coherence, error) {
	if window < 0 {
		return nil, fmt.Errorf("predictor: negative coherence window %d", window)
	}
	w := uint64(window)
	if w == 0 {
		w = DefaultCoherenceWindow
	}
	return &Coherence{dir: coherence.NewDirectory(), window: w}, nil
}

// Name implements Predictor.
func (p *Coherence) Name() string { return "coherence" }

// Observe implements AccessObserver: every LLC access drives the
// directory.
func (p *Coherence) Observe(a cache.AccessInfo) {
	if a.Write {
		p.dir.Store(a.Core, a.Block)
	} else {
		p.dir.Load(a.Core, a.Block)
	}
}

// Predict implements Predictor.
func (p *Coherence) Predict(a cache.AccessInfo) bool {
	if _, n := p.dir.StateOf(a.Block); n >= 2 {
		return true
	}
	if last, ok := p.dir.LastSharingEvent(a.Block); ok {
		return p.dir.Clock()-last <= p.window
	}
	return false
}

// Train implements Predictor. The coherence predictor learns from the
// directory, not from residency outcomes.
func (p *Coherence) Train(sharing.Residency) {}

// Stats exposes the underlying directory traffic for characterization.
func (p *Coherence) Stats() coherence.Stats { return p.dir.Stats() }
