package predictor

import (
	"testing"

	"sharellc/internal/cache"
	"sharellc/internal/core"
	"sharellc/internal/policy"
	"sharellc/internal/sharing"
)

func TestCoherenceConstruction(t *testing.T) {
	if _, err := NewCoherence(-1); err == nil {
		t.Error("negative window accepted")
	}
	p, err := NewCoherence(0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "coherence" {
		t.Errorf("Name = %q", p.Name())
	}
	p.Train(sharing.Residency{}) // no-op, must not panic
}

func TestCoherencePredictsActiveSharing(t *testing.T) {
	p, err := NewCoherence(100)
	if err != nil {
		t.Fatal(err)
	}
	// Block 1 read by two cores: directory has 2 sharers → shared.
	p.Observe(cache.AccessInfo{Core: 0, Block: 1})
	p.Observe(cache.AccessInfo{Core: 1, Block: 1})
	if !p.Predict(cache.AccessInfo{Block: 1}) {
		t.Error("actively shared block predicted private")
	}
	// Block 2 touched by one core only → private.
	p.Observe(cache.AccessInfo{Core: 0, Block: 2})
	p.Observe(cache.AccessInfo{Core: 0, Block: 2, Write: true})
	if p.Predict(cache.AccessInfo{Block: 2}) {
		t.Error("single-core block predicted shared")
	}
	// Unknown block → private.
	if p.Predict(cache.AccessInfo{Block: 999}) {
		t.Error("unknown block predicted shared")
	}
}

func TestCoherenceRecencyWindow(t *testing.T) {
	p, err := NewCoherence(10)
	if err != nil {
		t.Fatal(err)
	}
	// Create a sharing event on block 1 and then collapse it back to a
	// single owner via a remote store.
	p.Observe(cache.AccessInfo{Core: 0, Block: 1})
	p.Observe(cache.AccessInfo{Core: 1, Block: 1, Write: true}) // invalidation event
	if !p.Predict(cache.AccessInfo{Block: 1}) {
		t.Fatal("block with fresh coherence event predicted private")
	}
	// Age the event out of the window with unrelated traffic.
	for i := 0; i < 20; i++ {
		p.Observe(cache.AccessInfo{Core: 0, Block: uint64(100 + i)})
	}
	if p.Predict(cache.AccessInfo{Block: 1}) {
		t.Error("stale coherence event still predicting shared")
	}
}

func TestCoherenceBeatsHistoryOnPhasedSharing(t *testing.T) {
	// A phased workload: blocks are shared in their first life, then go
	// permanently private. Address history keeps predicting shared (it
	// trained on the shared phase); the coherence predictor tracks the
	// transition. This is the paper's "other architectural features"
	// conjecture made concrete.
	var stream []cache.AccessInfo
	add := func(core uint8, block uint64, write bool) {
		stream = append(stream, cache.AccessInfo{
			Core: core, Block: block, Write: write,
			PC: 0x400 + block*4, Index: int64(len(stream)),
		})
	}
	const nBlocks = 64
	// Alternating sharing phases: blocks flip between actively shared
	// and strictly private every few residencies, the regime the paper's
	// conclusion describes. History predictors lag every flip by their
	// training hysteresis; the directory notices within a window.
	for cycle := 0; cycle < 8; cycle++ {
		for round := 0; round < 3; round++ { // shared phase
			for b := uint64(0); b < nBlocks; b++ {
				add(0, b, false)
				add(1, b, false)
			}
		}
		for round := 0; round < 3; round++ { // private phase
			for b := uint64(0); b < nBlocks; b++ {
				add(2, b, round == 0)
			}
		}
	}
	cache.AnnotateNextUse(stream)

	eval := func(pred Predictor) float64 {
		res, err := Evaluate(stream, size, ways, policy.NewLRUPolicy(), pred)
		if err != nil {
			t.Fatal(err)
		}
		return res.Pred.Accuracy()
	}
	addr, err := NewAddress(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	coh, err := NewCoherence(64)
	if err != nil {
		t.Fatal(err)
	}
	accAddr := eval(addr)
	accCoh := eval(coh)
	if accCoh <= accAddr {
		t.Errorf("coherence accuracy %.3f <= address-history accuracy %.3f on phased sharing", accCoh, accAddr)
	}
}

func TestCoherenceDrivesReplacement(t *testing.T) {
	stream := mixedStream(10000)
	p, err := NewCoherence(0)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := Drive(stream, size, ways, policy.NewLRUPolicy(), p, core.Full)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pred.Total() == 0 {
		t.Error("no residencies classified")
	}
	if p.Stats().Loads == 0 {
		t.Error("directory saw no traffic; OnAccess hook not wired")
	}
}
