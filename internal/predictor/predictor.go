// Package predictor implements the paper's two realistic history-based
// fill-time sharing predictors:
//
//   - the address-indexed predictor, which bets that a block that was
//     shared during its previous LLC residency will be shared again, and
//   - the PC-indexed predictor, which bets that fills triggered by the
//     same instruction produce blocks with the same sharing behaviour.
//
// Both are tables of saturating counters trained at residency end (the
// natural hardware training point: the LLC knows the outcome when the
// block is evicted) and consulted at fill time. The paper's conclusion —
// which the F7/F8 experiments reproduce — is that neither history source
// correlates strongly enough with active sharing phases to recover more
// than a fraction of the oracle's gain.
package predictor

import (
	"fmt"

	"sharellc/internal/cache"
	"sharellc/internal/policy"
	"sharellc/internal/sharing"
)

// Predictor is a fill-time sharing predictor: Predict is consulted when a
// block is filled into the LLC, Train when a residency ends with a known
// outcome.
type Predictor interface {
	Name() string
	Predict(a cache.AccessInfo) bool
	Train(r sharing.Residency)
}

// Config sizes a table predictor.
type Config struct {
	// TableBits is log2 of the number of counters (untagged,
	// direct-mapped, as cheap hardware would build it).
	TableBits int
	// CounterBits is the width of each saturating counter.
	CounterBits int
	// Threshold is the minimum counter value that predicts "shared".
	Threshold uint8
}

// DefaultConfig matches a modest hardware budget: 16K 2-bit counters with
// a weakly-taken threshold.
func DefaultConfig() Config {
	return Config{TableBits: 14, CounterBits: 2, Threshold: 2}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.TableBits < 1 || c.TableBits > 28 {
		return fmt.Errorf("predictor: TableBits %d outside [1,28]", c.TableBits)
	}
	if c.CounterBits < 1 || c.CounterBits > 8 {
		return fmt.Errorf("predictor: CounterBits %d outside [1,8]", c.CounterBits)
	}
	if max := uint8(1<<c.CounterBits - 1); c.Threshold > max {
		return fmt.Errorf("predictor: Threshold %d exceeds counter max %d", c.Threshold, max)
	}
	return nil
}

// table is the shared machinery: saturating counters with hysteresis
// (increment on shared outcome, decrement on private outcome).
type table struct {
	counters []uint8
	max      uint8
	thresh   uint8
	mask     uint64
}

func newTable(cfg Config) (*table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &table{
		counters: make([]uint8, 1<<cfg.TableBits),
		max:      uint8(1<<cfg.CounterBits - 1),
		thresh:   cfg.Threshold,
		mask:     uint64(1<<cfg.TableBits - 1),
	}
	// Initialize counters just below threshold so a single shared
	// outcome flips the entry to predicting shared.
	init := uint8(0)
	if t.thresh > 0 {
		init = t.thresh - 1
	}
	for i := range t.counters {
		t.counters[i] = init
	}
	return t, nil
}

func (t *table) index(key uint64) uint64 {
	// Fibonacci hashing spreads low-entropy keys across the table.
	return (key * 0x9E3779B97F4A7C15) >> 32 & t.mask
}

func (t *table) predict(key uint64) bool {
	return t.counters[t.index(key)] >= t.thresh
}

func (t *table) train(key uint64, shared bool) {
	i := t.index(key)
	if shared {
		if t.counters[i] < t.max {
			t.counters[i]++
		}
	} else if t.counters[i] > 0 {
		t.counters[i]--
	}
}

// Address is the block-address-indexed predictor: its key is the block
// number, so it learns per-datum sharing history.
type Address struct{ t *table }

// NewAddress builds an address-indexed predictor.
func NewAddress(cfg Config) (*Address, error) {
	t, err := newTable(cfg)
	if err != nil {
		return nil, err
	}
	return &Address{t: t}, nil
}

// Name implements Predictor.
func (p *Address) Name() string { return "addr" }

// Predict implements Predictor.
func (p *Address) Predict(a cache.AccessInfo) bool { return p.t.predict(a.Block) }

// Train implements Predictor.
func (p *Address) Train(r sharing.Residency) { p.t.train(r.Block, r.Shared()) }

// PC is the program-counter-indexed predictor: its key is the SHiP-style
// signature of the fill-triggering instruction, so it learns per-code-site
// sharing history.
type PC struct{ t *table }

// NewPC builds a PC-indexed predictor.
func NewPC(cfg Config) (*PC, error) {
	t, err := newTable(cfg)
	if err != nil {
		return nil, err
	}
	return &PC{t: t}, nil
}

// Name implements Predictor.
func (p *PC) Name() string { return "pc" }

// Predict implements Predictor.
func (p *PC) Predict(a cache.AccessInfo) bool {
	return p.t.predict(uint64(policy.Signature(a.PC)))
}

// Train implements Predictor.
func (p *PC) Train(r sharing.Residency) {
	p.t.train(uint64(policy.Signature(r.FillPC)), r.Shared())
}

// Always predicts every fill shared; Never predicts none. They bracket the
// table predictors in the accuracy study (F7) and expose the base-rate of
// sharing in each workload.
type Always struct{}

// Name implements Predictor.
func (Always) Name() string { return "always" }

// Predict implements Predictor.
func (Always) Predict(cache.AccessInfo) bool { return true }

// Train implements Predictor.
func (Always) Train(sharing.Residency) {}

// Never is the complement of Always.
type Never struct{}

// Name implements Predictor.
func (Never) Name() string { return "never" }

// Predict implements Predictor.
func (Never) Predict(cache.AccessInfo) bool { return false }

// Train implements Predictor.
func (Never) Train(sharing.Residency) {}
