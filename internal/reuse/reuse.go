// Package reuse computes exact LRU stack (reuse) distances over the LLC
// reference stream: for each access, the number of *distinct* blocks
// referenced since the previous access to the same block. A reuse
// distance d hits in a fully-associative LRU cache of capacity > d, so
// the distance distribution is the geometry-independent fingerprint of a
// workload's locality.
//
// The experiment layer uses it to show where each workload's shared and
// private reuse sits relative to the 4 MB / 8 MB capacity boundary — the
// quantity the oracle's headroom depends on (marginal shared working sets
// just beyond capacity are exactly what sharing-aware protection
// rescues).
//
// The implementation is the classic O(n log n) algorithm: a Fenwick tree
// over access positions marks each block's most recent reference; the
// distance of an access is the count of marked positions after its
// block's previous reference.
package reuse

import (
	"fmt"
	"math"

	"sharellc/internal/cache"
)

// Infinite is the distance reported for first-touch (cold) accesses.
const Infinite = int64(math.MaxInt64)

// fenwick is a binary indexed tree over stream positions.
type fenwick struct {
	tree []int32
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int32, n+1)} }

// add adds delta at position i (0-based).
func (f *fenwick) add(i int, delta int32) {
	for i++; i < len(f.tree); i += i & -i {
		f.tree[i] += delta
	}
}

// sum returns the prefix sum over positions [0, i] (0-based, inclusive).
func (f *fenwick) sum(i int) int32 {
	var s int32
	for i++; i > 0; i -= i & -i {
		s += f.tree[i]
	}
	return s
}

// Distances computes the reuse distance of every access in stream.
// First-touch accesses get Infinite. The per-block previous-position
// table is a flat slice over dense BlockIDs (cache.EnsureBlockIDs), not a
// hash of the sparse block number.
func Distances(stream []cache.AccessInfo) []int64 {
	out := make([]int64, len(stream))
	fw := newFenwick(len(stream))
	stream, numBlocks := cache.EnsureBlockIDs(stream)
	last := make([]int64, numBlocks) // BlockID → previous position + 1
	for i := range stream {
		id := stream[i].BlockID
		if p := last[id]; p != 0 {
			// Distinct blocks touched in (p-1, i) = marked positions in
			// that open interval; each block is marked only at its most
			// recent position.
			out[i] = int64(fw.sum(i-1) - fw.sum(int(p-1)))
			fw.add(int(p-1), -1)
		} else {
			out[i] = Infinite
		}
		fw.add(i, 1)
		last[id] = int64(i) + 1
	}
	return out
}

// Bucket boundaries of the distance histogram, in blocks. The 4 MB and
// 8 MB LLC capacities (65536 and 131072 blocks) sit on bucket edges so
// the histogram reads directly as "fits at 4 MB / fits at 8 MB / fits
// nowhere".
var BucketEdges = []int64{1 << 10, 1 << 13, 1 << 16, 1 << 17, 1 << 19}

// NumBuckets is len(BucketEdges)+2: one bucket below each edge, one above
// the last, and one for cold (infinite) accesses.
const NumBuckets = 7

// BucketLabel names histogram bucket i.
func BucketLabel(i int) string {
	switch {
	case i < 0 || i >= NumBuckets:
		return "?"
	case i == NumBuckets-1:
		return "cold"
	case i == NumBuckets-2:
		return fmt.Sprintf(">=%dK", BucketEdges[len(BucketEdges)-1]>>10)
	case i == 0:
		return fmt.Sprintf("<%dK", BucketEdges[0]>>10)
	default:
		return fmt.Sprintf("<%dK", BucketEdges[i]>>10)
	}
}

// bucketOf maps a distance to its histogram bucket.
func bucketOf(d int64) int {
	if d == Infinite {
		return NumBuckets - 1
	}
	for i, edge := range BucketEdges {
		if d < edge {
			return i
		}
	}
	return NumBuckets - 2
}

// Histogram is a per-class reuse-distance distribution.
type Histogram struct {
	Counts [NumBuckets]uint64
	Total  uint64
}

// Add records one distance.
func (h *Histogram) Add(d int64) {
	h.Counts[bucketOf(d)]++
	h.Total++
}

// Share returns bucket i's fraction of all recorded distances.
func (h *Histogram) Share(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// Profile is the reuse-distance characterization of one stream, split by
// the sharing classification of the access (via oracle-style hints).
type Profile struct {
	All     Histogram
	Shared  Histogram // accesses to blocks with a cross-core future
	Private Histogram
}

// Analyze computes the profile. hints[i], when non-nil, classifies access
// i as shared (oracle.SharedHints supplies it); with nil hints everything
// lands in All and Private.
func Analyze(stream []cache.AccessInfo, hints []bool) (*Profile, error) {
	if hints != nil && len(hints) != len(stream) {
		return nil, fmt.Errorf("reuse: %d hints for %d accesses", len(hints), len(stream))
	}
	p := &Profile{}
	for i, d := range Distances(stream) {
		p.All.Add(d)
		if hints != nil && hints[i] {
			p.Shared.Add(d)
		} else {
			p.Private.Add(d)
		}
	}
	return p, nil
}
