package reuse

import (
	"testing"
	"testing/quick"

	"sharellc/internal/cache"
	"sharellc/internal/rng"
)

func mk(blocks ...uint64) []cache.AccessInfo {
	out := make([]cache.AccessInfo, len(blocks))
	for i, b := range blocks {
		out[i] = cache.AccessInfo{Block: b, Index: int64(i)}
	}
	return out
}

func TestDistancesBasic(t *testing.T) {
	// Stream: A B C A B B
	d := Distances(mk(1, 2, 3, 1, 2, 2))
	want := []int64{Infinite, Infinite, Infinite, 2, 2, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("d[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestDistancesImmediateReuse(t *testing.T) {
	d := Distances(mk(7, 7, 7))
	if d[1] != 0 || d[2] != 0 {
		t.Errorf("immediate reuse distances = %v", d[1:])
	}
}

func TestDistancesEmpty(t *testing.T) {
	if len(Distances(nil)) != 0 {
		t.Error("empty stream produced distances")
	}
}

// referenceDistances is the O(n²) oracle: walk backwards counting
// distinct blocks.
func referenceDistances(stream []cache.AccessInfo) []int64 {
	out := make([]int64, len(stream))
	for i := range stream {
		out[i] = Infinite
		seen := map[uint64]bool{}
		for j := i - 1; j >= 0; j-- {
			if stream[j].Block == stream[i].Block {
				out[i] = int64(len(seen))
				break
			}
			seen[stream[j].Block] = true
		}
	}
	return out
}

func TestDistancesMatchReference(t *testing.T) {
	f := func(seed uint64) bool {
		rnd := rng.New(seed)
		n := 50 + rnd.Intn(300)
		stream := make([]cache.AccessInfo, n)
		for i := range stream {
			stream[i] = cache.AccessInfo{Block: rnd.Uint64n(24), Index: int64(i)}
		}
		got := Distances(stream)
		want := referenceDistances(stream)
		for i := range want {
			if got[i] != want[i] {
				t.Logf("seed %d: d[%d] = %d, want %d", seed, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLRUHitIffDistanceUnderCapacity ties reuse distances to the cache
// model: in a fully-associative LRU cache of capacity C, an access hits
// iff its reuse distance is < C.
func TestLRUHitIffDistanceUnderCapacity(t *testing.T) {
	rnd := rng.New(12)
	const capacity = 16
	stream := make([]cache.AccessInfo, 3000)
	for i := range stream {
		stream[i] = cache.AccessInfo{Block: rnd.Uint64n(40), Index: int64(i)}
	}
	d := Distances(stream)
	// Fully associative = 1 set with `capacity` ways.
	c, err := cache.NewSetAssoc(capacity*64, capacity, cache.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range stream {
		hit := c.Access(a).Hit
		wantHit := d[i] != Infinite && d[i] < capacity
		if hit != wantHit {
			t.Fatalf("access %d (distance %d): hit=%v, want %v", i, d[i], hit, wantHit)
		}
	}
}

func TestBucketLabels(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumBuckets; i++ {
		l := BucketLabel(i)
		if l == "?" || seen[l] {
			t.Errorf("bucket %d label %q invalid or duplicate", i, l)
		}
		seen[l] = true
	}
	if BucketLabel(-1) != "?" || BucketLabel(NumBuckets) != "?" {
		t.Error("out-of-range labels not guarded")
	}
	if BucketLabel(NumBuckets-1) != "cold" {
		t.Error("last bucket not cold")
	}
}

func TestHistogramShares(t *testing.T) {
	var h Histogram
	h.Add(0)        // bucket 0
	h.Add(Infinite) // cold
	h.Add(1 << 16)  // < 1<<17 bucket
	h.Add(1 << 30)  // top bucket
	if h.Total != 4 {
		t.Fatalf("total = %d", h.Total)
	}
	sum := 0.0
	for i := 0; i < NumBuckets; i++ {
		sum += h.Share(i)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %v", sum)
	}
	var empty Histogram
	if empty.Share(0) != 0 {
		t.Error("empty histogram share != 0")
	}
}

func TestAnalyzeSplitsByHints(t *testing.T) {
	stream := mk(1, 2, 1, 2)
	hints := []bool{true, false, true, false}
	p, err := Analyze(stream, hints)
	if err != nil {
		t.Fatal(err)
	}
	if p.All.Total != 4 || p.Shared.Total != 2 || p.Private.Total != 2 {
		t.Errorf("totals = %d/%d/%d", p.All.Total, p.Shared.Total, p.Private.Total)
	}
	if _, err := Analyze(stream, []bool{true}); err == nil {
		t.Error("mismatched hints accepted")
	}
	pNil, err := Analyze(stream, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pNil.Private.Total != 4 || pNil.Shared.Total != 0 {
		t.Error("nil hints not all-private")
	}
}
