package coherence

import (
	"testing"
	"testing/quick"

	"sharellc/internal/rng"
)

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if s.String() != want {
			t.Errorf("%v.String() = %q", uint8(s), s.String())
		}
	}
	if State(9).String() == "" {
		t.Error("unknown state empty")
	}
}

func TestColdLoadGoesExclusive(t *testing.T) {
	d := NewDirectory()
	d.Load(0, 1)
	if st, n := d.StateOf(1); st != Exclusive || n != 1 {
		t.Errorf("state = %v/%d, want E/1", st, n)
	}
	if d.Stats().ColdFills != 1 {
		t.Errorf("cold fills = %d", d.Stats().ColdFills)
	}
	// Silent upgrade: owner's store keeps one sharer, state M.
	d.Store(0, 1)
	if st, n := d.StateOf(1); st != Modified || n != 1 {
		t.Errorf("after owner store: %v/%d, want M/1", st, n)
	}
	if d.Stats().Invalidations != 0 || d.Stats().C2CTransfers != 0 {
		t.Errorf("silent upgrade generated traffic: %+v", d.Stats())
	}
}

func TestRemoteLoadDowngrades(t *testing.T) {
	d := NewDirectory()
	d.Store(0, 1) // M at core 0
	d.Load(1, 1)  // remote read
	if st, n := d.StateOf(1); st != Shared || n != 2 {
		t.Errorf("state = %v/%d, want S/2", st, n)
	}
	s := d.Stats()
	if s.Downgrades != 1 || s.C2CTransfers != 1 {
		t.Errorf("stats = %+v, want 1 downgrade + 1 C2C", s)
	}
	if _, ok := d.LastSharingEvent(1); !ok {
		t.Error("sharing event not recorded")
	}
}

func TestRemoteStoreInvalidates(t *testing.T) {
	d := NewDirectory()
	d.Load(0, 1)
	d.Load(1, 1)
	d.Load(2, 1) // S with 3 sharers
	d.Store(3, 1)
	if st, n := d.StateOf(1); st != Modified || n != 1 {
		t.Errorf("state = %v/%d, want M/1", st, n)
	}
	if d.Stats().Invalidations != 3 {
		t.Errorf("invalidations = %d, want 3", d.Stats().Invalidations)
	}
}

func TestUpgradeMiss(t *testing.T) {
	d := NewDirectory()
	d.Load(0, 1)
	d.Load(1, 1) // S {0,1}
	d.Store(0, 1)
	s := d.Stats()
	if s.UpgradeMisses != 1 {
		t.Errorf("upgrade misses = %d, want 1", s.UpgradeMisses)
	}
	if s.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1 (core 1's copy)", s.Invalidations)
	}
	if st, n := d.StateOf(1); st != Modified || n != 1 {
		t.Errorf("state = %v/%d", st, n)
	}
}

func TestRemoteStoreOnModified(t *testing.T) {
	d := NewDirectory()
	d.Store(0, 1)
	d.Store(1, 1)
	s := d.Stats()
	if s.Invalidations != 1 || s.C2CTransfers != 1 {
		t.Errorf("stats = %+v", s)
	}
	if st, n := d.StateOf(1); st != Modified || n != 1 {
		t.Errorf("state = %v/%d", st, n)
	}
}

func TestEvict(t *testing.T) {
	d := NewDirectory()
	d.Load(0, 1)
	d.Load(1, 1) // S {0,1}
	d.Evict(0, 1)
	if st, n := d.StateOf(1); st != Shared || n != 1 {
		t.Errorf("after evict: %v/%d, want S/1", st, n)
	}
	d.Evict(1, 1)
	if st, n := d.StateOf(1); st != Invalid || n != 0 {
		t.Errorf("after last evict: %v/%d, want I/0", st, n)
	}
	// Evicting an absent copy is a no-op.
	d.Evict(5, 1)
	d.Evict(0, 999)
}

func TestColdStoreNoSpuriousTraffic(t *testing.T) {
	d := NewDirectory()
	d.Store(2, 7)
	s := d.Stats()
	if s.Invalidations != 0 || s.UpgradeMisses != 0 || s.ColdFills != 1 {
		t.Errorf("cold store stats = %+v", s)
	}
}

func TestLastSharingEventAbsent(t *testing.T) {
	d := NewDirectory()
	d.Load(0, 1) // cold, no sharing
	if _, ok := d.LastSharingEvent(1); ok {
		t.Error("cold block reported a sharing event")
	}
	if _, ok := d.LastSharingEvent(999); ok {
		t.Error("unknown block reported a sharing event")
	}
}

// TestInvariantsUnderRandomTraffic is the protocol's main property test:
// after any interleaving of loads, stores and evictions, the MESI
// invariants hold.
func TestInvariantsUnderRandomTraffic(t *testing.T) {
	f := func(seed uint64) bool {
		rnd := rng.New(seed)
		d := NewDirectory()
		for i := 0; i < 5000; i++ {
			core := uint8(rnd.Intn(8))
			block := rnd.Uint64n(64)
			switch rnd.Intn(4) {
			case 0:
				d.Store(core, block)
			case 3:
				d.Evict(core, block)
			default:
				d.Load(core, block)
			}
			if i%257 == 0 {
				if err := d.CheckInvariants(); err != nil {
					t.Log(err)
					return false
				}
			}
		}
		return d.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLoadsStoresCounted(t *testing.T) {
	d := NewDirectory()
	for i := 0; i < 10; i++ {
		d.Load(0, uint64(i))
	}
	for i := 0; i < 5; i++ {
		d.Store(1, uint64(i))
	}
	s := d.Stats()
	if s.Loads != 10 || s.Stores != 5 {
		t.Errorf("counts = %d/%d", s.Loads, s.Stores)
	}
	if d.Clock() != 15 {
		t.Errorf("clock = %d", d.Clock())
	}
}
