// Package coherence models a directory-based MESI protocol over the
// private caches of the CMP. The paper's closing conclusion is that
// fill-time sharing prediction "will require other architectural ...
// features that have strong correlations with active sharing phases of
// the LLC blocks" — and coherence events (downgrades, invalidations,
// cache-to-cache transfers) are exactly such features: they are emitted
// by the same hardware that would host the predictor and they track
// *active* sharing rather than stale address history.
//
// The Directory consumes the load/store event stream, maintains per-block
// MESI state and sharer sets as the directory of an 8-core CMP would, and
// exposes both aggregate statistics (the C1 characterization) and
// per-block queries (the coherence-assisted predictor in
// internal/predictor).
package coherence

import (
	"fmt"
	"math/bits"
)

// State is the directory-visible MESI state of a block.
type State uint8

const (
	// Invalid: no private cache holds the block.
	Invalid State = iota
	// Shared: one or more private caches hold read-only copies.
	Shared
	// Exclusive: exactly one private cache holds a clean copy.
	Exclusive
	// Modified: exactly one private cache holds a dirty copy.
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Stats aggregates protocol traffic.
type Stats struct {
	Loads  uint64
	Stores uint64

	// Invalidations counts remote copies killed by stores.
	Invalidations uint64
	// Downgrades counts M/E → S transitions caused by remote loads.
	Downgrades uint64
	// C2CTransfers counts loads and stores serviced by another core's
	// M or E copy instead of the LLC/memory.
	C2CTransfers uint64
	// UpgradeMisses counts stores by a core that already held the block
	// in Shared state (permission misses, the signature of read-write
	// sharing).
	UpgradeMisses uint64
	// ColdFills counts first-touch installs of a block.
	ColdFills uint64
}

// entry is one block's directory record.
type entry struct {
	state   State
	sharers [2]uint64 // bitmask of cores holding the block
	// lastEvent is the event counter value of the block's most recent
	// cross-core interaction (downgrade, invalidation, upgrade, C2C).
	lastEvent uint64
}

func (e *entry) addSharer(core uint8)      { e.sharers[core>>6] |= 1 << (core & 63) }
func (e *entry) dropSharer(core uint8)     { e.sharers[core>>6] &^= 1 << (core & 63) }
func (e *entry) hasSharer(core uint8) bool { return e.sharers[core>>6]>>(core&63)&1 == 1 }
func (e *entry) sharerCount() int {
	return bits.OnesCount64(e.sharers[0]) + bits.OnesCount64(e.sharers[1])
}

// Directory is the MESI directory. It is not safe for concurrent use.
//
// Entries live in one contiguous slab with the block-number index mapping
// into it, so tracking a new block is a slab append instead of a heap
// allocation per block.
type Directory struct {
	index map[uint64]uint32 // block → slab position + 1
	slab  []entry
	stats Stats
	clock uint64 // event counter, advanced per Load/Store
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{index: make(map[uint64]uint32, 1<<16)}
}

// lookup returns the entry tracking block, or nil if none. The pointer is
// valid only until the next ensure (a slab append may move entries).
func (d *Directory) lookup(block uint64) *entry {
	if i := d.index[block]; i != 0 {
		return &d.slab[i-1]
	}
	return nil
}

// ensure returns the entry tracking block, appending a fresh Invalid one
// to the slab if the block is untracked.
func (d *Directory) ensure(block uint64) *entry {
	if i := d.index[block]; i != 0 {
		return &d.slab[i-1]
	}
	d.slab = append(d.slab, entry{})
	d.index[block] = uint32(len(d.slab))
	return &d.slab[len(d.slab)-1]
}

// Stats returns the aggregate protocol statistics.
func (d *Directory) Stats() Stats { return d.stats }

// Clock returns the number of events processed.
func (d *Directory) Clock() uint64 { return d.clock }

// StateOf reports a block's current state and sharer count.
func (d *Directory) StateOf(block uint64) (State, int) {
	e := d.lookup(block)
	if e == nil {
		return Invalid, 0
	}
	return e.state, e.sharerCount()
}

// LastSharingEvent returns the event-clock value of the block's most
// recent cross-core interaction and whether one has ever occurred.
func (d *Directory) LastSharingEvent(block uint64) (uint64, bool) {
	e := d.lookup(block)
	if e == nil || e.lastEvent == 0 {
		return 0, false
	}
	return e.lastEvent, true
}

// Load processes a read of block by core.
func (d *Directory) Load(core uint8, block uint64) {
	d.clock++
	d.stats.Loads++
	e := d.ensure(block)
	switch e.state {
	case Invalid:
		d.stats.ColdFills++
		e.state = Exclusive
		e.addSharer(core)
	case Shared:
		if !e.hasSharer(core) {
			e.addSharer(core)
			e.lastEvent = d.clock
		}
	case Exclusive, Modified:
		if e.hasSharer(core) {
			return // silent hit in the owner
		}
		// Remote load: owner downgrades, data forwarded cache-to-cache.
		d.stats.Downgrades++
		d.stats.C2CTransfers++
		e.state = Shared
		e.addSharer(core)
		e.lastEvent = d.clock
	}
}

// Store processes a write of block by core.
func (d *Directory) Store(core uint8, block uint64) {
	d.clock++
	d.stats.Stores++
	e := d.ensure(block)
	switch e.state {
	case Invalid:
		d.stats.ColdFills++
	case Modified, Exclusive:
		if e.hasSharer(core) {
			e.state = Modified
			return
		}
		// Remote store: invalidate the owner, transfer ownership.
		d.stats.Invalidations++
		d.stats.C2CTransfers++
		e.sharers = [2]uint64{}
		e.lastEvent = d.clock
	case Shared:
		// Kill all other copies; an existing copy of our own is an
		// upgrade (permission) miss.
		n := e.sharerCount()
		if e.hasSharer(core) {
			d.stats.UpgradeMisses++
			d.stats.Invalidations += uint64(n - 1)
			if n > 1 {
				e.lastEvent = d.clock
			}
		} else {
			d.stats.Invalidations += uint64(n)
			e.lastEvent = d.clock
		}
		e.sharers = [2]uint64{}
	}
	e.state = Modified
	e.addSharer(core)
}

// Evict removes core's copy of block (a private-cache eviction). The
// directory transitions S→S/I and M/E→I as appropriate.
func (d *Directory) Evict(core uint8, block uint64) {
	e := d.lookup(block)
	if e == nil || !e.hasSharer(core) {
		return
	}
	e.dropSharer(core)
	if e.sharerCount() == 0 {
		e.state = Invalid
	} else if e.state != Shared {
		// Cannot happen under MESI (M/E have one sharer), but keep the
		// invariant explicit.
		e.state = Shared
	}
}

// CheckInvariants validates the MESI invariants over every entry and
// returns the first violation, for property tests.
func (d *Directory) CheckInvariants() error {
	for b, i := range d.index {
		e := &d.slab[i-1]
		n := e.sharerCount()
		switch e.state {
		case Invalid:
			if n != 0 {
				return fmt.Errorf("coherence: block %d Invalid with %d sharers", b, n)
			}
		case Shared:
			if n < 1 {
				return fmt.Errorf("coherence: block %d Shared with no sharers", b)
			}
		case Exclusive, Modified:
			if n != 1 {
				return fmt.Errorf("coherence: block %d %v with %d sharers", b, e.state, n)
			}
		}
	}
	return nil
}
