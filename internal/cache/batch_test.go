package cache

import (
	"testing"

	"sharellc/internal/trace"
)

// batchStream builds a dense-ID random stream for the batch probe tests.
func batchStream(n int, blocks uint64, seed uint64) []AccessInfo {
	s := seed
	next := func() uint64 { // xorshift; no package deps
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	stream := make([]AccessInfo, n)
	for i := range stream {
		stream[i] = AccessInfo{
			Block: next() % blocks,
			Core:  uint8(next() % 4),
			Write: next()%5 == 0,
			Index: int64(i),
		}
	}
	AssignBlockIDs(stream)
	return stream
}

// TestReplayBatchMatchesAccessRef drives the same stream through
// AccessRef (the tag-scanning reference) and ReplayBatch in chunks of
// several sizes, comparing every access's outcome — hit flag, line
// index, eviction flag — and the final counters and contents.
func TestReplayBatchMatchesAccessRef(t *testing.T) {
	const ways = 2
	stream := batchStream(5000, 64, 99)
	numBlocks := 0
	for i := range stream {
		if int(stream[i].BlockID) >= numBlocks {
			numBlocks = int(stream[i].BlockID) + 1
		}
	}
	for _, chunk := range []int{1, 3, 16, 333, len(stream)} {
		ref, err := NewSetAssoc(8*trace.BlockSize, ways, NewLRU())
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewSetAssoc(8*trace.BlockSize, ways, NewLRU())
		if err != nil {
			t.Fatal(err)
		}
		active := make([]uint32, numBlocks)
		lineID := make([]uint32, got.Sets()*ways)
		out := make([]uint32, chunk)
		for lo := 0; lo < len(stream); lo += chunk {
			hi := lo + chunk
			if hi > len(stream) {
				hi = len(stream)
			}
			got.ReplayBatch(stream[lo:hi], active, lineID, out[:hi-lo])
			for k := lo; k < hi; k++ {
				want := ref.AccessRef(&stream[k])
				o := out[k-lo]
				li := uint32(want.Set*ways + want.Way)
				if (o&BatchHit != 0) != want.Hit || o&BatchLine != li || (o&BatchEvict != 0) != want.Evicted {
					t.Fatalf("chunk %d, access %d (block %d): outcome %#x, want hit=%v line=%d evict=%v",
						chunk, k, stream[k].Block, o, want.Hit, li, want.Evicted)
				}
			}
		}
		ra, rh, rf, re := ref.Stats()
		ga, gh, gf, ge := got.Stats()
		if ra != ga || rh != gh || rf != gf || re != ge {
			t.Fatalf("chunk %d: stats (%d %d %d %d) != reference (%d %d %d %d)", chunk, ga, gh, gf, ge, ra, rh, rf, re)
		}
		// Residency tables must describe exactly the cache contents.
		for id, li := range active {
			if li == 0 {
				continue
			}
			if int(lineID[li-1]) != id {
				t.Fatalf("chunk %d: active/lineID disagree for BlockID %d", chunk, id)
			}
		}
	}
}

// TestReplayBatchColsMatchesRecords runs the record-walking and
// column-walking probes over the same accesses and demands identical
// outcome words and counters.
func TestReplayBatchColsMatchesRecords(t *testing.T) {
	const ways = 4
	stream := batchStream(4096, 200, 7)
	numBlocks := 0
	blk := make([]uint64, len(stream))
	id := make([]uint32, len(stream))
	for i := range stream {
		blk[i] = stream[i].Block
		id[i] = stream[i].BlockID
		if int(stream[i].BlockID) >= numBlocks {
			numBlocks = int(stream[i].BlockID) + 1
		}
	}
	a, err := NewSetAssoc(32*trace.BlockSize, ways, NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSetAssoc(32*trace.BlockSize, ways, NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	activeA := make([]uint32, numBlocks)
	activeB := make([]uint32, numBlocks)
	lineA := make([]uint32, a.Sets()*ways)
	lineB := make([]uint32, b.Sets()*ways)
	outA := make([]uint32, len(stream))
	outB := make([]uint32, len(stream))
	a.ReplayBatch(stream, activeA, lineA, outA)
	b.ReplayBatchCols(blk, id, stream, activeB, lineB, outB)
	for k := range outA {
		if outA[k] != outB[k] {
			t.Fatalf("access %d: records outcome %#x != columns outcome %#x", k, outA[k], outB[k])
		}
	}
	aa, ah, af, ae := a.Stats()
	ba, bh, bf, be := b.Stats()
	if aa != ba || ah != bh || af != bf || ae != be {
		t.Fatalf("stats diverge: records (%d %d %d %d), columns (%d %d %d %d)", aa, ah, af, ae, ba, bh, bf, be)
	}
}

// BenchmarkBatchKernel isolates the probe phase — ReplayBatchCols over
// pre-decoded columns against an LRU cache in steady state — so future
// SIMD work on the probe loop has a stable, sweep-independent baseline.
func BenchmarkBatchKernel(b *testing.B) {
	const (
		ways      = 16
		sizeBytes = 1 << 20 // 1 MB: 1024 sets x 16 ways
		chunk     = 2048
	)
	stream := batchStream(1<<17, 4*(sizeBytes/trace.BlockSize), 12345)
	numBlocks := 0
	blk := make([]uint64, len(stream))
	id := make([]uint32, len(stream))
	for i := range stream {
		blk[i] = stream[i].Block
		id[i] = stream[i].BlockID
		if int(stream[i].BlockID) >= numBlocks {
			numBlocks = int(stream[i].BlockID) + 1
		}
	}
	c, err := NewSetAssoc(sizeBytes, ways, NewLRU())
	if err != nil {
		b.Fatal(err)
	}
	active := make([]uint32, numBlocks)
	lineID := make([]uint32, c.Sets()*ways)
	out := make([]uint32, chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < len(stream); lo += chunk {
			hi := lo + chunk
			if hi > len(stream) {
				hi = len(stream)
			}
			c.ReplayBatchCols(blk[lo:hi], id[lo:hi], stream[lo:hi], active, lineID, out[:hi-lo])
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(stream)), "ns/access")
}
