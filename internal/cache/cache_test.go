package cache

import (
	"testing"
	"testing/quick"

	"sharellc/internal/trace"
)

// tiny returns a small cache for directed tests: 4 sets x 2 ways = 8 blocks.
func tiny(t *testing.T) *SetAssoc {
	t.Helper()
	c, err := NewSetAssoc(8*trace.BlockSize, 2, NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func ai(block uint64) AccessInfo { return AccessInfo{Block: block} }

func TestGeometryValidation(t *testing.T) {
	cases := []struct {
		size, ways int
		ok         bool
	}{
		{8 * trace.BlockSize, 2, true},
		{4 * MB, 16, true},
		{0, 4, false},
		{4 * MB, 0, false},
		{63, 1, false},                  // not a block multiple
		{3 * trace.BlockSize, 2, false}, // fractional sets
		{6 * trace.BlockSize, 2, false}, // 3 sets: not power of two
		{-4096, 4, false},
	}
	for _, c := range cases {
		_, err := NewSetAssoc(c.size, c.ways, NewLRU())
		if (err == nil) != c.ok {
			t.Errorf("NewSetAssoc(%d, %d): err=%v, want ok=%v", c.size, c.ways, err, c.ok)
		}
	}
	if _, err := NewSetAssoc(4096, 4, nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := tiny(t)
	if r := c.Access(ai(1)); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(ai(1)); !r.Hit {
		t.Error("second access to same block missed")
	}
	if r := c.Access(ai(2)); r.Hit {
		t.Error("different block hit")
	}
}

func TestConflictEvictionLRUOrder(t *testing.T) {
	c := tiny(t) // 4 sets, 2 ways; blocks 0,4,8,12 map to set 0
	c.Access(ai(0))
	c.Access(ai(4))
	c.Access(ai(0)) // 0 is now MRU, 4 is LRU
	r := c.Access(ai(8))
	if r.Hit {
		t.Fatal("fill of third conflicting block hit")
	}
	if !r.Evicted || r.Victim != 4 {
		t.Errorf("expected eviction of block 4, got evicted=%v victim=%d", r.Evicted, r.Victim)
	}
	if !c.Access(ai(0)).Hit {
		t.Error("MRU block 0 was evicted")
	}
}

func TestDirtyTracking(t *testing.T) {
	c := tiny(t)
	c.Access(AccessInfo{Block: 0, Write: true})
	c.Access(ai(4))
	r := c.Access(ai(8)) // evicts block 0 (LRU) which is dirty
	if !r.Evicted || r.Victim != 0 || !r.VictimDirty {
		t.Errorf("expected dirty eviction of block 0, got %+v", r)
	}
	// A clean block evicts clean.
	c2 := tiny(t)
	c2.Access(ai(0))
	c2.Access(ai(4))
	if r := c2.Access(ai(8)); r.VictimDirty {
		t.Error("clean victim reported dirty")
	}
	// Write hit marks dirty.
	c3 := tiny(t)
	c3.Access(ai(0))
	c3.Access(AccessInfo{Block: 0, Write: true})
	c3.Access(ai(4))
	if r := c3.Access(ai(8)); !r.VictimDirty {
		t.Error("write-hit did not mark line dirty")
	}
}

func TestInvalidate(t *testing.T) {
	c := tiny(t)
	c.Access(AccessInfo{Block: 5, Write: true})
	present, dirty := c.Invalidate(5)
	if !present || !dirty {
		t.Errorf("Invalidate(5) = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Probe(5) {
		t.Error("block still present after invalidation")
	}
	if present, _ := c.Invalidate(5); present {
		t.Error("double invalidation reported present")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := tiny(t)
	c.Access(ai(0))
	c.Access(ai(4)) // 0 is LRU
	if !c.Probe(0) || !c.Probe(4) || c.Probe(8) {
		t.Fatal("Probe gave wrong presence")
	}
	// Probing 0 must not promote it: 0 must still be the victim.
	if r := c.Access(ai(8)); r.Victim != 0 {
		t.Errorf("Probe perturbed LRU state: victim = %d, want 0", r.Victim)
	}
}

func TestStatsCounts(t *testing.T) {
	c := tiny(t)
	c.Access(ai(0))
	c.Access(ai(0))
	c.Access(ai(4))
	c.Access(ai(8))
	accesses, hits, fills, evicts := c.Stats()
	if accesses != 4 || hits != 1 || fills != 3 || evicts != 1 {
		t.Errorf("Stats = (%d,%d,%d,%d), want (4,1,3,1)", accesses, hits, fills, evicts)
	}
}

func TestContentsNeverExceedsCapacity(t *testing.T) {
	f := func(blocks []uint64) bool {
		c, err := NewSetAssoc(8*trace.BlockSize, 2, NewLRU())
		if err != nil {
			return false
		}
		for _, b := range blocks {
			c.Access(ai(b % 64))
		}
		return len(c.Contents()) <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a block just accessed is always present immediately afterwards.
func TestAccessedBlockIsResident(t *testing.T) {
	f := func(blocks []uint64) bool {
		c, err := NewSetAssoc(8*trace.BlockSize, 2, NewLRU())
		if err != nil {
			return false
		}
		for _, b := range blocks {
			b %= 256
			c.Access(ai(b))
			if !c.Probe(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: with W ways, cycling over W distinct conflicting blocks under
// LRU always hits after the first round (LRU keeps a working set == assoc).
func TestLRURetainsWorkingSetEqualToAssoc(t *testing.T) {
	c, err := NewSetAssoc(64*trace.BlockSize, 8, NewLRU()) // 8 sets x 8 ways
	if err != nil {
		t.Fatal(err)
	}
	blocks := []uint64{0, 8, 16, 24, 32, 40, 48, 56} // all set 0
	for _, b := range blocks {
		if c.Access(ai(b)).Hit {
			t.Fatal("cold fill hit")
		}
	}
	for round := 0; round < 3; round++ {
		for _, b := range blocks {
			if !c.Access(ai(b)).Hit {
				t.Fatalf("round %d: block %d missed; LRU lost a fitting working set", round, b)
			}
		}
	}
}

// Property: with W ways, cycling over W+1 conflicting blocks under LRU
// never hits (the classic LRU pathological case).
func TestLRUThrashesOnWorkingSetPlusOne(t *testing.T) {
	c, err := NewSetAssoc(16*trace.BlockSize, 2, NewLRU()) // 8 sets x 2 ways
	if err != nil {
		t.Fatal(err)
	}
	blocks := []uint64{0, 8, 16} // all set 0, 3 blocks in 2 ways
	for round := 0; round < 5; round++ {
		for _, b := range blocks {
			if c.Access(ai(b)).Hit {
				t.Fatalf("round %d: block %d hit; LRU should thrash on W+1 cyclic set", round, b)
			}
		}
	}
}

func TestLRUStackPosition(t *testing.T) {
	p := NewLRU()
	p.Attach(1, 4)
	for w := 0; w < 4; w++ {
		p.Fill(0, w, &AccessInfo{})
	}
	// Order of recency now: way3 (MRU) ... way0 (LRU).
	if got := p.StackPosition(0, 3); got != 0 {
		t.Errorf("way 3 stack position = %d, want 0 (MRU)", got)
	}
	if got := p.StackPosition(0, 0); got != 3 {
		t.Errorf("way 0 stack position = %d, want 3 (LRU)", got)
	}
	p.Hit(0, 0, &AccessInfo{})
	if got := p.StackPosition(0, 0); got != 0 {
		t.Errorf("after hit, way 0 stack position = %d, want 0", got)
	}
}

func TestAccessors(t *testing.T) {
	c, err := NewSetAssoc(4*MB, 16, NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	if c.Sets() != 4096 || c.Ways() != 16 {
		t.Errorf("geometry = %d sets x %d ways", c.Sets(), c.Ways())
	}
	if c.SizeBytes() != 4*MB {
		t.Errorf("SizeBytes = %d", c.SizeBytes())
	}
	if c.Policy().Name() != "lru" {
		t.Errorf("Policy().Name() = %q", c.Policy().Name())
	}
	if got := c.SetOf(4096); got != 0 {
		t.Errorf("SetOf(4096) = %d", got)
	}
}

func TestLRUDemote(t *testing.T) {
	p := NewLRU()
	p.Attach(1, 4)
	for w := 0; w < 4; w++ {
		p.Fill(0, w, &AccessInfo{})
	}
	// Way 3 is MRU; demoting it makes it the victim.
	p.Demote(0, 3)
	if v := p.Victim(0, &AccessInfo{}); v != 3 {
		t.Errorf("victim after Demote = %d, want 3", v)
	}
	if p.Name() != "lru" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Ways() != 4 {
		t.Errorf("Ways = %d", p.Ways())
	}
	if p.Stamp(0, 0) == 0 {
		t.Error("Stamp of touched way is zero")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
	if err := Default8MBConfig().Validate(); err != nil {
		t.Errorf("Default8MBConfig invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Error("0-core config validated")
	}
	bad = DefaultConfig()
	bad.L1Size = 100
	if err := bad.Validate(); err == nil {
		t.Error("bogus L1 size validated")
	}
}

func TestConfigWithLLC(t *testing.T) {
	c := DefaultConfig().WithLLC(8*MB, 32)
	if c.LLCSize != 8*MB || c.LLCWays != 32 {
		t.Errorf("WithLLC = %+v", c)
	}
	if DefaultConfig().LLCSize != 4*MB {
		t.Error("WithLLC mutated the receiver")
	}
}
