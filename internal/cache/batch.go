package cache

import (
	"os"
	"sync/atomic"
)

// Batched replay entry points.
//
// AccessRef and FillRef are per-access calls: every access pays the call
// itself, a Result struct moving through registers, and the branchy
// interleaving of tag, validity and policy work. The batch kernel of
// internal/sharing instead presents accesses in chunks and consumes one
// packed outcome word per access, so the probe runs as a single tight
// loop whose only unavoidable per-access calls are the policy's own
// Hit/Victim/Fill notifications. ReplayBatch walks a slice of
// AccessInfo records (the stream-order policy pass of a two-phase
// lane); ReplayBatchCols walks pre-decoded block and BlockID columns
// (the set-sharded walk, whose decode phase builds the columns once per
// shard and reuses them across every lane), touching the full record
// only where the policy contract requires the pointer.
//
// Both variants probe through the caller's residency table instead of
// scanning tags — the same trust the scalar replay places in
// sharing.replayState (see FillRef): active maps BlockID → 1+line index
// for every resident block, lineID is the reverse map the eviction path
// uses to clear the victim's entry, and both must describe exactly this
// cache's contents. Like the scalar fast path, a write hit does not set
// the line dirty bit — dirtiness feeds writeback modelling in the
// private hierarchy, not the LLC policy study.

// Batch outcome word layout: bits 0–29 carry the line index
// (set*ways+way), BatchHit marks a hit, BatchEvict marks a fill that
// displaced a valid line. A fill into an invalid way sets neither flag.
const (
	BatchLine  uint32 = 1<<30 - 1
	BatchHit   uint32 = 1 << 30
	BatchEvict uint32 = 1 << 31
)

// LogByte compresses a batch outcome word into the one-byte-per-access
// outcome log of internal/sharing's two-phase lanes: the way (the line
// index minus setBase, the set's first line) lands in the low six bits,
// and the hit/evict flags shift down from bits 30–31 to bits 6–7.
func LogByte(o uint32, setBase uint32) uint8 {
	return uint8(o&BatchLine-setBase) | uint8(o>>24&0xc0)
}

// BatchKernel is a monomorphic specialization of the ReplayBatchCols
// chunk loop for one concrete (cache, policy) pair: a single call probes
// a whole chunk of pre-decoded columns with the policy's Hit/Victim/Fill
// logic inlined into the loop body instead of dispatched through the
// Policy interface per access. A kernel must perform exactly the state
// transitions of the generic loop — same outcome words, same counter
// advances, same residency-table and policy-state updates in the same
// order — so kernel and generic replays stay bit-identical (the
// TestBatchPolicyVsGeneric differentials hold every kernel to it).
// accs runs in lockstep with the columns; most kernels never touch it
// (their policies ignore the AccessInfo), the exceptions being the
// Write bit on fills and SHiP's fill PC / SHiP-S's hit core.
type BatchKernel func(blk []uint64, id []uint32, accs []AccessInfo, active, lineID, out []uint32)

// BatchPolicy is the optional capability interface of the batch replay
// path. A policy that implements it supplies a BatchKernel bound to the
// cache at construction time: NewSetAssoc performs the type assertion
// once, so the per-access interface dispatch the generic loop pays
// (three non-inlinable dynamic calls in the hottest loop of the repo)
// disappears for the lanes that dominate sweep time. Policies decline by
// returning nil (e.g. for a geometry their specialized victim search
// does not support), falling back to the generic loop.
//
// NewBatchKernel is called after Attach, so the returned closure may
// capture the policy's state slices directly. Wrappers that delegate to
// a base policy (core.Protector) must NOT forward this interface: a
// base kernel would bypass the wrapper's overrides. Holding the base as
// an interface field (not embedding) gives that for free.
type BatchPolicy interface {
	Policy
	NewBatchKernel(c *SetAssoc) BatchKernel
}

// batchKernelsOn gates BatchPolicy specialization globally. Default on;
// SHARELLC_BATCH_POLICY=off (or EnableBatchKernels(false)) forces every
// cache onto the generic interface loop, which CI uses to keep the
// fallback path green and tests use for kernel-vs-generic differentials.
var batchKernelsOn atomic.Bool

func init() {
	batchKernelsOn.Store(os.Getenv("SHARELLC_BATCH_POLICY") != "off")
}

// EnableBatchKernels toggles BatchPolicy specialization for caches
// constructed afterwards, returning the previous setting. Existing
// caches keep the kernel they were built with.
func EnableBatchKernels(on bool) (prev bool) {
	return batchKernelsOn.Swap(on)
}

// HasBatchKernel reports whether this cache's batch replay runs a
// monomorphic kernel (true) or the generic interface loop (false).
func (c *SetAssoc) HasBatchKernel() bool { return c.kernel != nil }

// bindBatchKernel performs the one-time specialization type switch of
// lane setup: called from NewSetAssoc after Attach.
func (c *SetAssoc) bindBatchKernel() {
	if !batchKernelsOn.Load() {
		return
	}
	if bp, ok := c.policy.(BatchPolicy); ok {
		c.kernel = bp.NewBatchKernel(c)
	}
}

// Kernel-support surface: the few pieces of SetAssoc state a
// monomorphic kernel maintains in place of the generic loop. These are
// exported only for BatchKernel implementations (internal/policy); all
// other callers go through the Access/Replay entry points.

// KernelGeom returns the geometry constants a kernel bakes into its
// chunk loop: the set-index mask and the associativity.
func (c *SetAssoc) KernelGeom() (mask uint64, ways int) { return c.mask, c.ways }

// KernelValid exposes the per-set valid-way counts; a count equal to
// Ways() means the set is full and a fill must evict.
func (c *SetAssoc) KernelValid() []uint16 { return c.valid }

// KernelStoreLine records a fill of block into line li, mirroring the
// generic loop's tag update (a write miss fills the line dirty; like the
// generic batch path, write hits do not set the dirty bit).
func (c *SetAssoc) KernelStoreLine(li uint32, block uint64, dirty bool) {
	c.lines[li] = makeLine(block, dirty)
}

// KernelColdWay is the cold half of fillSlot for kernels: the line index
// of the first invalid way of a non-full set, counting the new line into
// the set's valid count. Kernels inline only the full-set victim search
// (the steady state); the filling phase takes this call.
func (c *SetAssoc) KernelColdWay(set int) uint32 {
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if !c.lines[base+w].valid() {
			c.valid[set]++
			return uint32(base + w)
		}
	}
	panic("cache: set valid count below ways but no invalid way")
}

// KernelCommit folds one chunk's counters into the cache's, exactly as
// the generic loop does at the end of its walk.
func (c *SetAssoc) KernelCommit(hits, fills, evicts uint64) {
	c.accesses += hits + fills
	c.hits += hits
	c.fills += fills
	c.evicts += evicts
}

// ReplayBatch presents accs to the cache in one tight loop, writing one
// outcome word per access into out (len(out) must be ≥ len(accs)) and
// maintaining the caller's active/lineID residency tables. Counters
// advance as if each access had gone through AccessRef.
func (c *SetAssoc) ReplayBatch(accs []AccessInfo, active, lineID, out []uint32) {
	pol := c.policy
	ways := c.ways
	mask := c.mask
	var hits, fills, evicts uint64
	for k := range accs {
		a := &accs[k]
		if li := active[a.BlockID]; li != 0 {
			set := int(a.Block & mask)
			pol.Hit(set, int(li-1)-set*ways, a)
			out[k] = (li - 1) | BatchHit
			hits++
			continue
		}
		set := int(a.Block & mask)
		li, o := c.fillSlot(set, a)
		if o != 0 {
			active[lineID[li]] = 0
			evicts++
		}
		c.lines[li] = makeLine(a.Block, a.Write)
		pol.Fill(set, int(li)-set*ways, a)
		lineID[li] = a.BlockID
		active[a.BlockID] = li + 1
		out[k] = li | o
		fills++
	}
	c.accesses += hits + fills
	c.hits += hits
	c.fills += fills
	c.evicts += evicts
}

// ReplayBatchCols is ReplayBatch over pre-decoded columns: blk and id
// carry each access's block number and dense BlockID, and the record in
// accs is touched only by the policy calls (many policies never
// dereference it), so a lane walk streams a few bytes per access
// instead of the full record. blk, id, accs and out run in lockstep.
func (c *SetAssoc) ReplayBatchCols(blk []uint64, id []uint32, accs []AccessInfo, active, lineID, out []uint32) {
	if c.kernel != nil {
		c.kernel(blk, id, accs, active, lineID, out)
		return
	}
	pol := c.policy
	ways := c.ways
	mask := c.mask
	var hits, fills, evicts uint64
	for k := range blk {
		if li := active[id[k]]; li != 0 {
			set := int(blk[k] & mask)
			pol.Hit(set, int(li-1)-set*ways, &accs[k])
			out[k] = (li - 1) | BatchHit
			hits++
			continue
		}
		set := int(blk[k] & mask)
		a := &accs[k]
		li, o := c.fillSlot(set, a)
		if o != 0 {
			active[lineID[li]] = 0
			evicts++
		}
		c.lines[li] = makeLine(a.Block, a.Write)
		pol.Fill(set, int(li)-set*ways, a)
		lineID[li] = id[k]
		active[id[k]] = li + 1
		out[k] = li | o
		fills++
	}
	c.accesses += hits + fills
	c.hits += hits
	c.fills += fills
	c.evicts += evicts
}

// fillSlot picks the line index a fill of set should land in — the
// first invalid way while the set is filling, the policy's victim once
// it is full — returning BatchEvict in o when a valid line is
// displaced. It is the batched twin of FillRef's slot choice and panics
// on the same policy contract violations.
func (c *SetAssoc) fillSlot(set int, a *AccessInfo) (li, o uint32) {
	base := set * c.ways
	if int(c.valid[set]) == c.ways {
		way := c.policy.Victim(set, a)
		if way < 0 || way >= c.ways {
			panic(badVictim(c.policy, way, c.ways))
		}
		return uint32(base + way), BatchEvict
	}
	for w := 0; w < c.ways; w++ {
		if !c.lines[base+w].valid() {
			c.valid[set]++
			return uint32(base + w), 0
		}
	}
	panic("cache: set valid count below ways but no invalid way")
}
