package cache

// Batched replay entry points.
//
// AccessRef and FillRef are per-access calls: every access pays the call
// itself, a Result struct moving through registers, and the branchy
// interleaving of tag, validity and policy work. The batch kernel of
// internal/sharing instead presents accesses in chunks and consumes one
// packed outcome word per access, so the probe runs as a single tight
// loop whose only unavoidable per-access calls are the policy's own
// Hit/Victim/Fill notifications. ReplayBatch walks a slice of
// AccessInfo records (the stream-order policy pass of a two-phase
// lane); ReplayBatchCols walks pre-decoded block and BlockID columns
// (the set-sharded walk, whose decode phase builds the columns once per
// shard and reuses them across every lane), touching the full record
// only where the policy contract requires the pointer.
//
// Both variants probe through the caller's residency table instead of
// scanning tags — the same trust the scalar replay places in
// sharing.replayState (see FillRef): active maps BlockID → 1+line index
// for every resident block, lineID is the reverse map the eviction path
// uses to clear the victim's entry, and both must describe exactly this
// cache's contents. Like the scalar fast path, a write hit does not set
// the line dirty bit — dirtiness feeds writeback modelling in the
// private hierarchy, not the LLC policy study.

// Batch outcome word layout: bits 0–29 carry the line index
// (set*ways+way), BatchHit marks a hit, BatchEvict marks a fill that
// displaced a valid line. A fill into an invalid way sets neither flag.
const (
	BatchLine  uint32 = 1<<30 - 1
	BatchHit   uint32 = 1 << 30
	BatchEvict uint32 = 1 << 31
)

// ReplayBatch presents accs to the cache in one tight loop, writing one
// outcome word per access into out (len(out) must be ≥ len(accs)) and
// maintaining the caller's active/lineID residency tables. Counters
// advance as if each access had gone through AccessRef.
func (c *SetAssoc) ReplayBatch(accs []AccessInfo, active, lineID, out []uint32) {
	pol := c.policy
	ways := c.ways
	mask := c.mask
	var hits, fills, evicts uint64
	for k := range accs {
		a := &accs[k]
		if li := active[a.BlockID]; li != 0 {
			set := int(a.Block & mask)
			pol.Hit(set, int(li-1)-set*ways, a)
			out[k] = (li - 1) | BatchHit
			hits++
			continue
		}
		set := int(a.Block & mask)
		li, o := c.fillSlot(set, a)
		if o != 0 {
			active[lineID[li]] = 0
			evicts++
		}
		c.lines[li] = makeLine(a.Block, a.Write)
		pol.Fill(set, int(li)-set*ways, a)
		lineID[li] = a.BlockID
		active[a.BlockID] = li + 1
		out[k] = li | o
		fills++
	}
	c.accesses += hits + fills
	c.hits += hits
	c.fills += fills
	c.evicts += evicts
}

// ReplayBatchCols is ReplayBatch over pre-decoded columns: blk and id
// carry each access's block number and dense BlockID, and the record in
// accs is touched only by the policy calls (many policies never
// dereference it), so a lane walk streams a few bytes per access
// instead of the full record. blk, id, accs and out run in lockstep.
func (c *SetAssoc) ReplayBatchCols(blk []uint64, id []uint32, accs []AccessInfo, active, lineID, out []uint32) {
	pol := c.policy
	ways := c.ways
	mask := c.mask
	var hits, fills, evicts uint64
	for k := range blk {
		if li := active[id[k]]; li != 0 {
			set := int(blk[k] & mask)
			pol.Hit(set, int(li-1)-set*ways, &accs[k])
			out[k] = (li - 1) | BatchHit
			hits++
			continue
		}
		set := int(blk[k] & mask)
		a := &accs[k]
		li, o := c.fillSlot(set, a)
		if o != 0 {
			active[lineID[li]] = 0
			evicts++
		}
		c.lines[li] = makeLine(a.Block, a.Write)
		pol.Fill(set, int(li)-set*ways, a)
		lineID[li] = id[k]
		active[id[k]] = li + 1
		out[k] = li | o
		fills++
	}
	c.accesses += hits + fills
	c.hits += hits
	c.fills += fills
	c.evicts += evicts
}

// fillSlot picks the line index a fill of set should land in — the
// first invalid way while the set is filling, the policy's victim once
// it is full — returning BatchEvict in o when a valid line is
// displaced. It is the batched twin of FillRef's slot choice and panics
// on the same policy contract violations.
func (c *SetAssoc) fillSlot(set int, a *AccessInfo) (li, o uint32) {
	base := set * c.ways
	if int(c.valid[set]) == c.ways {
		way := c.policy.Victim(set, a)
		if way < 0 || way >= c.ways {
			panic(badVictim(c.policy, way, c.ways))
		}
		return uint32(base + way), BatchEvict
	}
	for w := 0; w < c.ways; w++ {
		if !c.lines[base+w].valid() {
			c.valid[set]++
			return uint32(base + w), 0
		}
	}
	panic("cache: set valid count below ways but no invalid way")
}
