package cache

import (
	"fmt"

	"sharellc/internal/trace"
)

// Hierarchy is the private part of the memory system: per-core L1 and L2
// caches. Accesses that miss in both private levels are the LLC reference
// stream — the input of every replacement-policy experiment.
type Hierarchy struct {
	cfg Config
	l1  []*SetAssoc
	l2  []*SetAssoc

	refs    uint64 // total references presented
	l1Hits  uint64
	l2Hits  uint64
	llcRefs uint64 // references that fell through to the LLC

	// writeback controls dirty-victim modelling: dirty L1 victims are
	// written back into the L2 (possibly cascading an L2 eviction) and
	// dirty L2 victims are reported through OnWriteback as LLC write
	// traffic. Disabled by default — the paper's experiments concern
	// demand references — and enabled via NewHierarchyWriteback.
	writeback  bool
	writebacks uint64
	// OnWriteback, when non-nil and writeback is enabled, receives every
	// dirty block the private hierarchy expels toward the LLC.
	OnWriteback func(block uint64, core uint8)
}

// NewHierarchy builds the private caches described by cfg with demand
// traffic only.
func NewHierarchy(cfg Config) (*Hierarchy, error) {
	return newHierarchy(cfg, false)
}

// NewHierarchyWriteback builds the private caches with dirty-victim
// writeback modelling enabled.
func NewHierarchyWriteback(cfg Config) (*Hierarchy, error) {
	return newHierarchy(cfg, true)
}

func newHierarchy(cfg Config, writeback bool) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg, writeback: writeback}
	for i := 0; i < cfg.Cores; i++ {
		l1, err := NewSetAssoc(cfg.L1Size, cfg.L1Ways, NewLRU())
		if err != nil {
			return nil, fmt.Errorf("cache: building L1[%d]: %w", i, err)
		}
		l2, err := NewSetAssoc(cfg.L2Size, cfg.L2Ways, NewLRU())
		if err != nil {
			return nil, fmt.Errorf("cache: building L2[%d]: %w", i, err)
		}
		h.l1 = append(h.l1, l1)
		h.l2 = append(h.l2, l2)
	}
	return h, nil
}

// Config returns the configuration the hierarchy was built with.
func (h *Hierarchy) Config() Config { return h.cfg }

// Access presents one reference to core a.Core's private caches and
// reports whether it missed both levels (and therefore references the LLC).
func (h *Hierarchy) Access(a trace.Access) (llcRef bool, err error) {
	if int(a.Core) >= h.cfg.Cores {
		return false, fmt.Errorf("cache: access from core %d but hierarchy has %d cores", a.Core, h.cfg.Cores)
	}
	h.refs++
	block := a.Addr.BlockID()
	info := AccessInfo{Block: block, Core: a.Core, PC: a.PC, Write: a.Write}
	l1Res := h.l1[a.Core].Access(info)
	if h.writeback && l1Res.Evicted && l1Res.VictimDirty {
		// Dirty L1 victim written back into the L2; this may in turn
		// displace a dirty L2 line toward the LLC.
		h.l2Write(a.Core, l1Res.Victim)
	}
	if l1Res.Hit {
		h.l1Hits++
		return false, nil
	}
	l2Res := h.l2[a.Core].Access(info)
	if h.writeback && l2Res.Evicted && l2Res.VictimDirty {
		h.emitWriteback(l2Res.Victim, a.Core)
	}
	if l2Res.Hit {
		h.l2Hits++
		return false, nil
	}
	h.llcRefs++
	return true, nil
}

// l2Write installs a written-back L1 victim into the core's L2.
func (h *Hierarchy) l2Write(core uint8, block uint64) {
	res := h.l2[core].Access(AccessInfo{Block: block, Core: core, Write: true})
	if res.Evicted && res.VictimDirty {
		h.emitWriteback(res.Victim, core)
	}
}

// emitWriteback reports one dirty block leaving the private hierarchy.
func (h *Hierarchy) emitWriteback(block uint64, core uint8) {
	h.writebacks++
	if h.OnWriteback != nil {
		h.OnWriteback(block, core)
	}
}

// Writebacks reports how many dirty blocks the hierarchy has expelled
// toward the LLC (always 0 without writeback modelling).
func (h *Hierarchy) Writebacks() uint64 { return h.writebacks }

// Invalidate removes block from every private cache; used by an inclusive
// LLC when it evicts a block (back-invalidation).
func (h *Hierarchy) Invalidate(block uint64) {
	for i := range h.l1 {
		h.l1[i].Invalidate(block)
		h.l2[i].Invalidate(block)
	}
}

// Stats reports reference counters: total references, L1 hits, L2 hits and
// the number of references that reached the LLC.
func (h *Hierarchy) Stats() (refs, l1Hits, l2Hits, llcRefs uint64) {
	return h.refs, h.l1Hits, h.l2Hits, h.llcRefs
}

// streamBuilder accumulates an LLC reference stream in geometrically
// growing segments joined once at the end. A plain append over a
// multi-gigabyte stream re-copies the whole prefix on every capacity
// step — several times the final size in memmove by the time the last
// record lands — where segments write each record exactly once and the
// join copies it exactly once more. Index is assigned in add, so the
// record's stream position is final at creation.
type streamBuilder struct {
	segs [][]AccessInfo
	seg  []AccessInfo
	n    int64
}

func (b *streamBuilder) add(a AccessInfo) {
	if len(b.seg) == cap(b.seg) {
		next := 1 << 15
		if c := 2 * cap(b.seg); c > next {
			next = c
		}
		if b.seg != nil {
			b.segs = append(b.segs, b.seg)
		}
		b.seg = make([]AccessInfo, 0, next)
	}
	a.Index = b.n
	b.n++
	b.seg = append(b.seg, a)
}

func (b *streamBuilder) join() []AccessInfo {
	out := make([]AccessInfo, 0, b.n)
	for _, s := range b.segs {
		out = append(out, s...)
	}
	return append(out, b.seg...)
}

// FilterStream runs the whole trace through a fresh private hierarchy and
// returns the LLC reference stream with Index assigned and NextUse left
// unset (callers that need OPT call AnnotateNextUse).
func FilterStream(r trace.Reader, cfg Config) ([]AccessInfo, *Hierarchy, error) {
	h, err := NewHierarchy(cfg)
	if err != nil {
		return nil, nil, err
	}
	var b streamBuilder
	for {
		a, ok := r.Next()
		if !ok {
			break
		}
		toLLC, err := h.Access(a)
		if err != nil {
			return nil, nil, err
		}
		if toLLC {
			b.add(AccessInfo{
				Block:   a.Addr.BlockID(),
				Core:    a.Core,
				PC:      a.PC,
				Write:   a.Write,
				NextUse: NoNextUse,
			})
		}
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	return b.join(), h, nil
}

// FilterStreamWriteback is FilterStream with dirty-victim writeback
// modelling: dirty blocks expelled by the private hierarchy appear in the
// LLC stream as write accesses (PC 0 — a writeback carries no instruction
// context), interleaved at the point of eviction.
func FilterStreamWriteback(r trace.Reader, cfg Config) ([]AccessInfo, *Hierarchy, error) {
	h, err := NewHierarchyWriteback(cfg)
	if err != nil {
		return nil, nil, err
	}
	var b streamBuilder
	h.OnWriteback = func(block uint64, core uint8) {
		b.add(AccessInfo{
			Block:   block,
			Core:    core,
			Write:   true,
			NextUse: NoNextUse,
		})
	}
	for {
		a, ok := r.Next()
		if !ok {
			break
		}
		toLLC, err := h.Access(a)
		if err != nil {
			return nil, nil, err
		}
		if toLLC {
			b.add(AccessInfo{
				Block:   a.Addr.BlockID(),
				Core:    a.Core,
				PC:      a.PC,
				Write:   a.Write,
				NextUse: NoNextUse,
			})
		}
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	return b.join(), h, nil
}

// AnnotateNextUse assigns dense BlockIDs (AssignBlockIDs) and fills in the
// NextUse field of every access in stream with the index of the next
// access to the same block (NoNextUse if none), returning the number of
// distinct blocks. The backward pass that makes Belady OPT exact indexes a
// flat per-block slice, so the ID assignment is the only hashing the whole
// stream preparation performs.
func AnnotateNextUse(stream []AccessInfo) int {
	numBlocks := AssignBlockIDs(stream)
	next := make([]int64, numBlocks)
	for i := range next {
		next[i] = NoNextUse
	}
	for i := len(stream) - 1; i >= 0; i-- {
		id := stream[i].BlockID
		stream[i].NextUse = next[id]
		next[id] = int64(i)
	}
	return numBlocks
}

// System couples a private hierarchy with an inclusive shared LLC: every
// LLC eviction back-invalidates the block from all private caches. This is
// the full S4 memory system used by integration tests and examples; the
// experiment pipeline uses FilterStream instead so that all policies replay
// an identical LLC stream (see DESIGN.md, key decision 1).
type System struct {
	Hierarchy *Hierarchy
	LLC       *SetAssoc

	llcHits   uint64
	llcMisses uint64
}

// NewSystem builds the full memory system with the given LLC policy.
func NewSystem(cfg Config, llcPolicy Policy) (*System, error) {
	h, err := NewHierarchy(cfg)
	if err != nil {
		return nil, err
	}
	llc, err := NewSetAssoc(cfg.LLCSize, cfg.LLCWays, llcPolicy)
	if err != nil {
		return nil, fmt.Errorf("cache: building LLC: %w", err)
	}
	return &System{Hierarchy: h, LLC: llc}, nil
}

// Access runs one reference through the full hierarchy, maintaining
// inclusion, and reports whether it hit somewhere short of memory.
func (s *System) Access(a trace.Access) (hit bool, err error) {
	toLLC, err := s.Hierarchy.Access(a)
	if err != nil {
		return false, err
	}
	if !toLLC {
		return true, nil
	}
	res := s.LLC.Access(AccessInfo{
		Block: a.Addr.BlockID(),
		Core:  a.Core,
		PC:    a.PC,
		Write: a.Write,
		Index: int64(s.llcHits + s.llcMisses),
	})
	if res.Evicted {
		s.Hierarchy.Invalidate(res.Victim)
	}
	if res.Hit {
		s.llcHits++
		return true, nil
	}
	s.llcMisses++
	return false, nil
}

// LLCStats reports LLC hits and misses observed through Access.
func (s *System) LLCStats() (hits, misses uint64) { return s.llcHits, s.llcMisses }
