package cache

import "sharellc/internal/mem"

// LRU is the classic least-recently-used replacement policy, implemented
// with per-set recency timestamps. It serves as the baseline policy of the
// paper and as the fixed policy of the private cache levels.
//
// LRU lives in package cache (rather than internal/policy) because the
// private hierarchy needs it without depending on the policy catalogue;
// internal/policy re-exports it for the catalogue.
type LRU struct {
	ways  int
	stamp []uint64 // sets*ways recency stamps; larger = more recent
	clock uint64
}

// NewLRU returns an LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements Policy.
func (p *LRU) Name() string { return "lru" }

// Attach implements Policy.
func (p *LRU) Attach(sets, ways int) {
	p.ways = ways
	p.stamp = make([]uint64, sets*ways)
	mem.Hugepages(p.stamp)
	// Start well above zero so Demote's min-1 arithmetic cannot wrap.
	p.clock = 1 << 32
}

// Hit implements Policy.
func (p *LRU) Hit(set, way int, _ *AccessInfo) { p.touch(set, way) }

// Fill implements Policy.
func (p *LRU) Fill(set, way int, _ *AccessInfo) { p.touch(set, way) }

// Victim implements Policy: the way with the smallest stamp.
func (p *LRU) Victim(set int, _ *AccessInfo) int {
	base := set * p.ways
	victim, min := 0, p.stamp[base]
	for w := 1; w < p.ways; w++ {
		if s := p.stamp[base+w]; s < min {
			victim, min = w, s
		}
	}
	return victim
}

func (p *LRU) touch(set, way int) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

// Demote moves way to the LRU position of its set, making it the next
// victim unless re-referenced first (sharing-aware insertion demotion).
func (p *LRU) Demote(set, way int) {
	base := set * p.ways
	min := p.stamp[base]
	for w := 1; w < p.ways; w++ {
		if s := p.stamp[base+w]; s < min {
			min = s
		}
	}
	p.stamp[base+way] = min - 1
}

// PerSetIndependent reports that LRU decisions depend only on the relative
// recency order within each set: the global clock assigns stamps whose
// within-set ordering is unaffected by how accesses to other sets
// interleave, so set-sharded replay is exact.
func (p *LRU) PerSetIndependent() bool { return true }

// minStampWay returns the way of the smallest stamp in the set at base.
// Kept out of the kernel closure on purpose: as a leaf over one slice
// the scan compiles to a tight two-register loop, where the same lines
// inlined into the capture-heavy closure body spill.
//
//go:noinline
func minStampWay(stamp []uint64, base, ways int) int {
	w, min := 0, stamp[base]
	for x := 1; x < ways; x++ {
		if s := stamp[base+x]; s < min {
			w, min = x, s
		}
	}
	return w
}

// NewBatchKernel implements BatchPolicy: the LRU probe with touch and
// the min-stamp victim scan inlined into the chunk loop. The stamp
// array is flat by line index, so the hit path — the vast majority —
// touches only the recency stamp at li-1 and never recomputes the set.
// policy.LRUPolicy inherits this kernel by embedding (it overrides no
// replacement method, only adds victim ranking).
func (p *LRU) NewBatchKernel(c *SetAssoc) BatchKernel {
	mask, ways := c.KernelGeom()
	valid := c.KernelValid()
	stamp := p.stamp
	return func(blk []uint64, id []uint32, accs []AccessInfo, active, lineID, out []uint32) {
		clock := p.clock
		var hits, fills, evicts uint64
		for k := range blk {
			if li := active[id[k]]; li != 0 {
				clock++
				stamp[li-1] = clock
				out[k] = (li - 1) | BatchHit
				hits++
				continue
			}
			set := int(blk[k] & mask)
			var li, o uint32
			if int(valid[set]) == ways {
				base := set * ways
				li, o = uint32(base+minStampWay(stamp, base, ways)), BatchEvict
				active[lineID[li]] = 0
				evicts++
			} else {
				li = c.KernelColdWay(set)
			}
			c.KernelStoreLine(li, blk[k], accs[k].Write)
			clock++
			stamp[li] = clock
			lineID[li] = id[k]
			active[id[k]] = li + 1
			out[k] = li | o
			fills++
		}
		p.clock = clock
		c.KernelCommit(hits, fills, evicts)
	}
}

// Ways returns the associativity this policy was attached with.
func (p *LRU) Ways() int { return p.ways }

// Stamp returns the raw recency stamp of way in set (larger = more
// recent). Exposed so wrappers can rank victims without re-deriving state.
func (p *LRU) Stamp(set, way int) uint64 { return p.stamp[set*p.ways+way] }

// StackPosition returns the recency rank of way in set: 0 = MRU,
// ways-1 = LRU. Exposed for the sharing-awareness characterization, which
// inspects where shared blocks sit in the recency stack.
func (p *LRU) StackPosition(set, way int) int {
	base := set * p.ways
	mine := p.stamp[base+way]
	rank := 0
	for w := 0; w < p.ways; w++ {
		if p.stamp[base+w] > mine {
			rank++
		}
	}
	return rank
}
