// Package cache models the CMP memory system of the paper: per-core
// private L1 and L2 caches and a shared last-level cache (LLC).
//
// The model is functional, not timed: the experiments in the paper compare
// hit/miss volumes across replacement policies, so only placement,
// replacement and eviction are simulated.
//
// The private levels use plain LRU (their replacement policy is not under
// study). The LLC takes a pluggable Policy so that every policy in
// internal/policy, the sharing oracle and the predictors can drive it.
package cache

import (
	"fmt"

	"sharellc/internal/mem"
	"sharellc/internal/trace"
)

// AccessInfo describes one reference presented to the LLC, together with
// the side-channel hints that the policy replay passes attach.
type AccessInfo struct {
	Block uint64 // cache-block number (byte address >> trace.BlockShift)
	Core  uint8  // issuing core
	PC    uint64 // program counter of the triggering instruction
	Write bool   // store vs. load

	// BlockID is the dense per-stream identifier of Block: distinct blocks
	// of one stream get consecutive IDs starting at 0, in first-touch
	// order. It lets replay-side structures (residency trackers, next-use
	// chains, reuse profilers, directories) index flat slices instead of
	// hashing the sparse 64-bit block number on every access. Assigned by
	// AssignBlockIDs (AnnotateNextUse calls it); see EnsureBlockIDs for the
	// convention consumers rely on.
	BlockID uint32

	// Index is the position of this access in the LLC reference stream.
	Index int64

	// NextUse is the stream index of the next access to the same block,
	// or NoNextUse if the block is never referenced again. It is
	// precomputed by the experiment pipeline and consumed only by the
	// Belady OPT policy.
	NextUse int64

	// PredictedShared is the fill-time sharing hint supplied by the
	// oracle or by a realistic predictor. It is meaningful only on the
	// access that triggers a fill and is consumed by the sharing-aware
	// protection wrapper in internal/core.
	PredictedShared bool
}

// NoNextUse marks a block with no future reference in the stream.
const NoNextUse int64 = -1

// Policy is the replacement-policy contract for the LLC. A Policy manages
// per-set ordering state; the cache owns tags and validity.
//
// The cache calls exactly one of Hit or (Victim, Fill) per access: Hit when
// the block is present, otherwise Victim to choose the way to evict from a
// full set (the cache fills invalid ways itself without consulting the
// policy) followed by Fill for the chosen way.
//
// AccessInfo is passed by pointer purely to keep the per-access cost of
// these non-inlinable calls down; the record is read-only and must not
// be retained or mutated past the call.
type Policy interface {
	// Name identifies the policy in reports, e.g. "lru" or "srrip".
	Name() string
	// Attach tells the policy the geometry of the cache it will manage.
	// It is called once before any other method.
	Attach(sets, ways int)
	// Hit records a hit on way in set.
	Hit(set, way int, a *AccessInfo)
	// Victim selects the way to evict from a full set.
	Victim(set int, a *AccessInfo) int
	// Fill records that way in set was filled by a.
	Fill(set, way int, a *AccessInfo)
}

// line packs one way's bookkeeping — block number, validity, dirtiness
// — into a single word, so a whole 16-way set scans out of two cache
// lines instead of the four a padded struct would occupy. Block numbers
// are byte addresses >> trace.BlockShift and therefore never reach the
// two flag bits.
type line uint64

const (
	lineValid line = 1 << 63
	lineDirty line = 1 << 62
)

// makeLine builds a valid line holding block.
func makeLine(block uint64, dirty bool) line {
	ln := line(block) | lineValid
	if dirty {
		ln |= lineDirty
	}
	return ln
}

func (ln line) valid() bool   { return ln&lineValid != 0 }
func (ln line) dirty() bool   { return ln&lineDirty != 0 }
func (ln line) block() uint64 { return uint64(ln &^ (lineValid | lineDirty)) }

// tagOf is the value a valid, clean line holding block compares equal
// to; matching `ln &^ lineDirty == tagOf(block)` tests validity and tag
// in one compare.
func tagOf(block uint64) line { return line(block) | lineValid }

// SetAssoc is a set-associative cache with a pluggable replacement policy.
// It is the building block for both the shared LLC and, with an internal
// LRU policy, the private levels.
type SetAssoc struct {
	sets   int
	ways   int
	mask   uint64
	lines  []line   // sets*ways, row-major by set
	valid  []uint16 // per-set count of valid lines; == ways means full
	policy Policy
	kernel BatchKernel // monomorphic batch probe, nil = generic loop

	// Counters.
	accesses uint64
	hits     uint64
	fills    uint64
	evicts   uint64
}

// Geometry validates a (size, ways) pair and returns the set count
// NewSetAssoc would produce, letting callers reason about sets (e.g. to
// pick a shard count) without building a cache.
func Geometry(sizeBytes, ways int) (sets int, err error) {
	if sizeBytes <= 0 || ways <= 0 {
		return 0, fmt.Errorf("cache: non-positive geometry (size %d, ways %d)", sizeBytes, ways)
	}
	blocks := sizeBytes / trace.BlockSize
	if blocks*trace.BlockSize != sizeBytes {
		return 0, fmt.Errorf("cache: size %d is not a multiple of the block size %d", sizeBytes, trace.BlockSize)
	}
	sets = blocks / ways
	if sets == 0 || sets*ways != blocks {
		return 0, fmt.Errorf("cache: size %d with %d ways leaves a fractional set count", sizeBytes, ways)
	}
	if sets&(sets-1) != 0 {
		return 0, fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return sets, nil
}

// NewSetAssoc builds a cache of sizeBytes capacity and the given
// associativity, managed by policy. sizeBytes must be a multiple of
// ways*trace.BlockSize and the resulting set count must be a power of two.
func NewSetAssoc(sizeBytes, ways int, policy Policy) (*SetAssoc, error) {
	sets, err := Geometry(sizeBytes, ways)
	if err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("cache: nil policy")
	}
	policy.Attach(sets, ways)
	lines := make([]line, sets*ways)
	mem.Hugepages(lines) // tag array is hit at a random set every access
	c := &SetAssoc{
		sets:   sets,
		ways:   ways,
		mask:   uint64(sets - 1),
		lines:  lines,
		valid:  make([]uint16, sets),
		policy: policy,
	}
	c.bindBatchKernel()
	return c, nil
}

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// SizeBytes returns the capacity in bytes.
func (c *SetAssoc) SizeBytes() int { return c.sets * c.ways * trace.BlockSize }

// Policy returns the replacement policy managing this cache.
func (c *SetAssoc) Policy() Policy { return c.policy }

// SetOf returns the set index for a block number.
func (c *SetAssoc) SetOf(block uint64) int { return int(block & c.mask) }

// Result reports the outcome of one Access.
type Result struct {
	Hit         bool
	Set         int
	Way         int
	Evicted     bool   // an existing valid line was displaced
	Victim      uint64 // block number of the displaced line, valid if Evicted
	VictimDirty bool
}

// Probe reports whether block is present without touching replacement
// state or counters.
func (c *SetAssoc) Probe(block uint64) bool {
	set := c.SetOf(block)
	base := set * c.ways
	want := tagOf(block)
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w]&^lineDirty == want {
			return true
		}
	}
	return false
}

// Access presents one reference to the cache: on a miss the block is
// filled (allocate-on-write as well as read), evicting a victim if the set
// is full.
func (c *SetAssoc) Access(a AccessInfo) Result { return c.AccessRef(&a) }

// AccessRef is Access without the argument copy. The replay walks present
// hundreds of millions of stream records per pass and the record is
// read-only to the cache, so hot loops pass a pointer straight into the
// stream slice instead of moving the multi-word struct per call.
func (c *SetAssoc) AccessRef(a *AccessInfo) Result {
	c.accesses++
	set := c.SetOf(a.Block)
	base := set * c.ways
	// One pass over the set finds both the hit way and the first invalid
	// way (the fill target should the lookup miss).
	way := -1
	want := tagOf(a.Block)
	for w := 0; w < c.ways; w++ {
		ln := c.lines[base+w]
		if !ln.valid() {
			if way < 0 {
				way = w
			}
			continue
		}
		if ln&^lineDirty == want {
			c.hits++
			if a.Write {
				c.lines[base+w] = ln | lineDirty
			}
			c.policy.Hit(set, w, a)
			return Result{Hit: true, Set: set, Way: w}
		}
	}
	res := Result{Set: set}
	if way < 0 {
		way = c.victim(set, base, &res, a)
	} else {
		c.valid[set]++
	}
	c.lines[base+way] = makeLine(a.Block, a.Write)
	c.fills++
	c.policy.Fill(set, way, a)
	res.Way = way
	return res
}

// victim runs the eviction half of a fill on a full set: policy choice,
// victim bookkeeping into res, eviction counters.
func (c *SetAssoc) victim(set, base int, res *Result, a *AccessInfo) int {
	way := c.policy.Victim(set, a)
	if way < 0 || way >= c.ways {
		panic(badVictim(c.policy, way, c.ways))
	}
	v := c.lines[base+way]
	res.Evicted = true
	res.Victim = v.block()
	res.VictimDirty = v.dirty()
	c.evicts++
	return way
}

// badVictim is the policy-contract panic message shared by the scalar
// (victim) and batched (fillSlot) eviction paths.
func badVictim(p Policy, way, ways int) string {
	return fmt.Sprintf("cache: policy %s returned victim way %d outside [0,%d)", p.Name(), way, ways)
}

// FillRef is the miss half of AccessRef for callers that already know
// the block is absent: the residency trackers mirror the cache's
// contents exactly (see sharing.replayState), so when their block table
// reports a miss the tag scan would only re-confirm it. Once the set is
// full — the steady state of every replay — the scan is skipped
// entirely and the access goes straight to the victim choice; until
// then only the invalid-way search runs. The fill itself is identical
// to AccessRef's miss path (first invalid way in scan order, else the
// policy's victim).
func (c *SetAssoc) FillRef(a *AccessInfo) Result {
	c.accesses++
	set := c.SetOf(a.Block)
	base := set * c.ways
	res := Result{Set: set}
	var way int
	if int(c.valid[set]) == c.ways {
		way = c.victim(set, base, &res, a)
	} else {
		way = -1
		for w := 0; w < c.ways; w++ {
			if !c.lines[base+w].valid() {
				way = w
				break
			}
		}
		if way < 0 {
			panic("cache: set valid count below ways but no invalid way")
		}
		c.valid[set]++
	}
	c.lines[base+way] = makeLine(a.Block, a.Write)
	c.fills++
	c.policy.Fill(set, way, a)
	res.Way = way
	return res
}

// Invalidate removes block from the cache if present, returning whether it
// was present and whether it was dirty. Used for inclusive-hierarchy
// back-invalidation.
func (c *SetAssoc) Invalidate(block uint64) (present, dirty bool) {
	set := c.SetOf(block)
	base := set * c.ways
	want := tagOf(block)
	for w := 0; w < c.ways; w++ {
		if ln := c.lines[base+w]; ln&^lineDirty == want {
			c.lines[base+w] = 0
			c.valid[set]--
			return true, ln.dirty()
		}
	}
	return false, false
}

// Stats reports access counters since construction.
func (c *SetAssoc) Stats() (accesses, hits, fills, evicts uint64) {
	return c.accesses, c.hits, c.fills, c.evicts
}

// Contents returns the valid block numbers currently cached, mainly for
// tests and debugging.
func (c *SetAssoc) Contents() []uint64 {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid() {
			n++
		}
	}
	out := make([]uint64, 0, n)
	for i := range c.lines {
		if c.lines[i].valid() {
			out = append(out, c.lines[i].block())
		}
	}
	return out
}

// PerSetIndependent reports whether p declares that its replacement
// decisions in one set depend only on the sequence of accesses to that set
// (no cross-set state such as dueling counters, shared RNG draws or global
// prediction tables). Per-set-independent policies may be replayed with the
// stream sharded by set index and produce results identical to a
// sequential replay; see sharing.ReplayParallel.
func PerSetIndependent(p Policy) bool {
	ps, ok := p.(interface{ PerSetIndependent() bool })
	return ok && ps.PerSetIndependent()
}
