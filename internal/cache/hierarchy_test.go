package cache

import (
	"testing"

	"sharellc/internal/trace"
)

// smallCfg returns a deliberately tiny hierarchy so tests exercise
// evictions without megabyte traces: 2 cores, 256 B L1, 512 B L2, 1 KB LLC.
func smallCfg() Config {
	return Config{
		Cores:  2,
		L1Size: 4 * trace.BlockSize, L1Ways: 2,
		L2Size: 8 * trace.BlockSize, L2Ways: 2,
		LLCSize: 16 * trace.BlockSize, LLCWays: 4,
	}
}

func TestHierarchyL1Filtering(t *testing.T) {
	h, err := NewHierarchy(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	a := trace.Access{Core: 0, Addr: 0}
	toLLC, err := h.Access(a)
	if err != nil {
		t.Fatal(err)
	}
	if !toLLC {
		t.Error("cold access did not reach the LLC")
	}
	toLLC, err = h.Access(a)
	if err != nil {
		t.Fatal(err)
	}
	if toLLC {
		t.Error("L1-resident access reached the LLC")
	}
	refs, l1Hits, l2Hits, llcRefs := h.Stats()
	if refs != 2 || l1Hits != 1 || l2Hits != 0 || llcRefs != 1 {
		t.Errorf("Stats = (%d,%d,%d,%d), want (2,1,0,1)", refs, l1Hits, l2Hits, llcRefs)
	}
}

func TestHierarchyL2CatchesL1Victims(t *testing.T) {
	h, err := NewHierarchy(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// L1 has 2 sets x 2 ways. Blocks 0,2,4 conflict in L1 set 0; L2 has
	// 4 sets, so 0,4 conflict in L2 set 0 but 2 maps elsewhere. Touch
	// 0,2,4 then 0 again: 0 was evicted from L1 (by 4) but is in L2.
	seq := []uint64{0, 2, 4, 0}
	wantLLC := []bool{true, true, true, false}
	for i, b := range seq {
		got, err := h.Access(trace.Access{Core: 0, Addr: trace.Addr(b * trace.BlockSize)})
		if err != nil {
			t.Fatal(err)
		}
		if got != wantLLC[i] {
			t.Errorf("access %d (block %d): toLLC=%v, want %v", i, b, got, wantLLC[i])
		}
	}
}

func TestHierarchyPrivatePerCore(t *testing.T) {
	h, err := NewHierarchy(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 warms a block; core 1's access to the same block must still
	// miss the private levels (caches are private, not shared).
	addr := trace.Addr(0)
	if _, err := h.Access(trace.Access{Core: 0, Addr: addr}); err != nil {
		t.Fatal(err)
	}
	toLLC, err := h.Access(trace.Access{Core: 1, Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	if !toLLC {
		t.Error("core 1 hit in core 0's private cache")
	}
}

func TestHierarchyRejectsOutOfRangeCore(t *testing.T) {
	h, err := NewHierarchy(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Access(trace.Access{Core: 2}); err == nil {
		t.Error("core 2 accepted by 2-core hierarchy")
	}
}

func TestFilterStreamIndexesAndContent(t *testing.T) {
	var accs []trace.Access
	// 3 distinct blocks twice each from core 0; tiny L1 keeps them all,
	// so only the 3 cold misses reach the LLC.
	for round := 0; round < 2; round++ {
		for b := uint64(0); b < 3; b++ {
			accs = append(accs, trace.Access{Core: 0, PC: 0x400 + b, Addr: trace.Addr(b * trace.BlockSize)})
		}
	}
	stream, h, err := FilterStream(trace.NewSliceReader(accs), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) != 3 {
		t.Fatalf("LLC stream has %d accesses, want 3 (cold misses only)", len(stream))
	}
	for i, a := range stream {
		if a.Index != int64(i) {
			t.Errorf("stream[%d].Index = %d", i, a.Index)
		}
		if a.Block != uint64(i) {
			t.Errorf("stream[%d].Block = %d, want %d", i, a.Block, i)
		}
		if a.NextUse != NoNextUse {
			t.Errorf("stream[%d].NextUse set before annotation", i)
		}
	}
	if _, _, _, llcRefs := h.Stats(); llcRefs != 3 {
		t.Errorf("hierarchy llcRefs = %d, want 3", llcRefs)
	}
}

func TestAnnotateNextUse(t *testing.T) {
	stream := []AccessInfo{
		{Block: 1, Index: 0},
		{Block: 2, Index: 1},
		{Block: 1, Index: 2},
		{Block: 1, Index: 3},
		{Block: 3, Index: 4},
	}
	AnnotateNextUse(stream)
	want := []int64{2, NoNextUse, 3, NoNextUse, NoNextUse}
	for i, w := range want {
		if stream[i].NextUse != w {
			t.Errorf("stream[%d].NextUse = %d, want %d", i, stream[i].NextUse, w)
		}
	}
}

func TestAnnotateNextUseEmpty(t *testing.T) {
	AnnotateNextUse(nil) // must not panic
}

func TestWritebackDisabledByDefault(t *testing.T) {
	h, err := NewHierarchy(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Dirty a block, then thrash it out of both private levels.
	if _, err := h.Access(trace.Access{Core: 0, Write: true, Addr: 0}); err != nil {
		t.Fatal(err)
	}
	for b := uint64(1); b < 64; b++ {
		if _, err := h.Access(trace.Access{Core: 0, Addr: trace.Addr(b * trace.BlockSize)}); err != nil {
			t.Fatal(err)
		}
	}
	if h.Writebacks() != 0 {
		t.Errorf("default hierarchy emitted %d writebacks", h.Writebacks())
	}
}

func TestWritebackEmitsDirtyVictims(t *testing.T) {
	h, err := NewHierarchyWriteback(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	h.OnWriteback = func(block uint64, core uint8) {
		got = append(got, block)
		if core != 0 {
			t.Errorf("writeback attributed to core %d", core)
		}
	}
	// Dirty block 0, then stream clean blocks through the same sets to
	// expel it from L1 and L2.
	if _, err := h.Access(trace.Access{Core: 0, Write: true, Addr: 0}); err != nil {
		t.Fatal(err)
	}
	for b := uint64(1); b < 64; b++ {
		if _, err := h.Access(trace.Access{Core: 0, Addr: trace.Addr(b * trace.BlockSize)}); err != nil {
			t.Fatal(err)
		}
	}
	if h.Writebacks() == 0 {
		t.Fatal("no writebacks emitted")
	}
	found := false
	for _, b := range got {
		if b == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("dirty block 0 never written back (got %v)", got)
	}
	if uint64(len(got)) != h.Writebacks() {
		t.Errorf("hook fired %d times, counter says %d", len(got), h.Writebacks())
	}
}

func TestCleanVictimsNotWrittenBack(t *testing.T) {
	h, err := NewHierarchyWriteback(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Only reads: nothing is ever dirty, so no writebacks.
	for b := uint64(0); b < 64; b++ {
		if _, err := h.Access(trace.Access{Core: 0, Addr: trace.Addr(b * trace.BlockSize)}); err != nil {
			t.Fatal(err)
		}
	}
	if h.Writebacks() != 0 {
		t.Errorf("read-only stream produced %d writebacks", h.Writebacks())
	}
}

func TestFilterStreamWriteback(t *testing.T) {
	var accs []trace.Access
	accs = append(accs, trace.Access{Core: 0, Write: true, Addr: 0})
	for b := uint64(1); b < 64; b++ {
		accs = append(accs, trace.Access{Core: 0, Addr: trace.Addr(b * trace.BlockSize)})
	}
	stream, h, err := FilterStreamWriteback(trace.NewSliceReader(accs), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if h.Writebacks() == 0 {
		t.Fatal("no writebacks in filtered stream run")
	}
	wbCount := 0
	for i, a := range stream {
		if a.Index != int64(i) {
			t.Fatalf("stream[%d].Index = %d", i, a.Index)
		}
		if a.Write && a.PC == 0 {
			wbCount++
		}
	}
	if uint64(wbCount) < h.Writebacks() {
		t.Errorf("stream contains %d writeback records, hierarchy emitted %d", wbCount, h.Writebacks())
	}
	// Demand-only filtering of the same trace yields a strictly shorter
	// stream.
	demand, _, err := FilterStream(trace.NewSliceReader(accs), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(demand) >= len(stream) {
		t.Errorf("writeback stream (%d) not longer than demand stream (%d)", len(stream), len(demand))
	}
}

func TestSystemInclusionBackInvalidation(t *testing.T) {
	cfg := smallCfg()
	// Shrink the LLC below the sum of private caches to force inclusion
	// victims that are still private-resident: LLC 8 blocks, 2 ways.
	cfg.LLCSize = 8 * trace.BlockSize
	cfg.LLCWays = 2
	sys, err := NewSystem(cfg, NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	// LLC has 4 sets x 2 ways. Blocks 0,4,8 all map to LLC set 0 and to
	// different L1/L2 sets where possible; pushing 3 such blocks through
	// evicts block 0 from the LLC and must also purge it from L1/L2.
	for _, b := range []uint64{0, 4, 8} {
		if _, err := sys.Access(trace.Access{Core: 0, Addr: trace.Addr(b * trace.BlockSize)}); err != nil {
			t.Fatal(err)
		}
	}
	if sys.LLC.Probe(0) {
		t.Fatal("block 0 still in LLC; test premise broken")
	}
	// If inclusion held, the re-access to block 0 must reach the LLC
	// (private copies were back-invalidated) and miss there.
	hit, err := sys.Access(trace.Access{Core: 0, Addr: 0})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("block 0 hit after LLC eviction; back-invalidation failed")
	}
	hits, misses := sys.LLCStats()
	if hits != 0 || misses != 4 {
		t.Errorf("LLCStats = (%d,%d), want (0,4)", hits, misses)
	}
}

func TestSystemLLCHit(t *testing.T) {
	sys, err := NewSystem(smallCfg(), NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 warms a block, core 1 reads it: private miss, LLC hit.
	if _, err := sys.Access(trace.Access{Core: 0, Addr: 0}); err != nil {
		t.Fatal(err)
	}
	hit, err := sys.Access(trace.Access{Core: 1, Addr: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("cross-core LLC hit missed")
	}
	if hits, misses := sys.LLCStats(); hits != 1 || misses != 1 {
		t.Errorf("LLCStats = (%d,%d), want (1,1)", hits, misses)
	}
}

func TestConfigString(t *testing.T) {
	s := DefaultConfig().String()
	if s == "" {
		t.Error("empty config string")
	}
}

func TestHierarchyConfigAccessor(t *testing.T) {
	h, err := NewHierarchy(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if h.Config() != smallCfg() {
		t.Error("Config() does not round-trip")
	}
}

func TestHierarchyRejectsBadConfig(t *testing.T) {
	bad := smallCfg()
	bad.L1Size = 100
	if _, err := NewHierarchy(bad); err == nil {
		t.Error("bad L1 accepted")
	}
	bad = smallCfg()
	bad.L2Size = 100
	if _, err := NewHierarchyWriteback(bad); err == nil {
		t.Error("bad L2 accepted")
	}
	if _, err := NewSystem(bad, NewLRU()); err == nil {
		t.Error("NewSystem accepted bad config")
	}
	ok := smallCfg()
	if _, err := NewSystem(ok, nil); err == nil {
		t.Error("NewSystem accepted nil policy")
	}
}

func TestL1WritebackCascadesThroughL2(t *testing.T) {
	// Force an L1 dirty eviction whose L2 insertion itself displaces a
	// dirty L2 line, exercising the cascade path.
	cfg := Config{
		Cores:  1,
		L1Size: 2 * trace.BlockSize, L1Ways: 2, // 1 set x 2 ways
		L2Size: 2 * trace.BlockSize, L2Ways: 2, // 1 set x 2 ways
		LLCSize: 16 * trace.BlockSize, LLCWays: 4,
	}
	h, err := NewHierarchyWriteback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wbs []uint64
	h.OnWriteback = func(b uint64, _ uint8) { wbs = append(wbs, b) }
	// Dirty three blocks; with 2-way L1 and 2-way L2 the third dirty
	// fill forces a dirty L1 victim into a full dirty L2.
	for b := uint64(0); b < 4; b++ {
		if _, err := h.Access(trace.Access{Core: 0, Write: true, Addr: trace.Addr(b * trace.BlockSize)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(wbs) == 0 {
		t.Error("no cascaded writebacks emitted")
	}
}
