package cache

// Dense block identifiers.
//
// Raw block numbers are sparse 64-bit values, so every structure keyed by
// block — residency trackers, next-use indices, reuse-distance stacks,
// coherence directories — would otherwise pay a hash-map lookup per
// access. An LLC reference stream is fully materialized before any replay
// begins, so the sparse→dense mapping can be built exactly once per
// stream; afterwards every replay pass indexes flat slices.
//
// Convention: a stream either has BlockIDs assigned (distinct blocks ↔
// distinct IDs, IDs in [0, NumBlockIDs)) or is "unassigned" (every
// BlockID still zero, the field's zero value). EnsureBlockIDs tells the
// two apart without a hash pass: an assigned stream with ≥ 2 distinct
// blocks necessarily contains a nonzero ID.

// IDGroupBits sets the granularity of the shard-major ID layout: blocks
// are grouped by their low IDGroupBits block bits (the LLC set-index
// bits that also pick a replay shard — see sharing.PartitionIndex), and
// IDs are dense within each group. Any power-of-two shard count up to
// 1<<IDGroupBits then owns a few contiguous ID ranges, so a shard
// walk's per-block state (residency maps, next-use tables) touches
// dense array slices instead of entries scattered across the whole
// block population — first-touch numbering puts consecutive IDs in
// different shards almost surely, wasting 15/16 of every cache line the
// shard pulls. The sharded replay caps its shard count at 1<<IDGroupBits
// to match (see blockShards in package sharing).
const IDGroupBits = 8

// AssignBlockIDs assigns each distinct block of stream a dense uint32 ID
// and returns the number of distinct blocks. IDs are shard-major: grouped
// by the low IDGroupBits block bits, first-touch order within a group
// (deterministic, like everything in the pipeline). It is the only
// per-stream hashing pass; every replay structure downstream indexes
// flat slices by the IDs it produces.
func AssignBlockIDs(stream []AccessInfo) int {
	ids := make(map[uint64]uint32, 1<<16)
	blocks := make([]uint64, 0, 1<<16) // distinct blocks, first-touch order
	var counts [1 << IDGroupBits]uint32
	for i := range stream {
		b := stream[i].Block
		ord, ok := ids[b]
		if !ok {
			ord = uint32(len(blocks))
			ids[b] = ord
			blocks = append(blocks, b)
			counts[b&(1<<IDGroupBits-1)]++
		}
		stream[i].BlockID = ord // provisional first-touch ordinal
	}
	var next [1 << IDGroupBits]uint32 // group base, then allocation cursor
	sum := uint32(0)
	for g := range next {
		next[g] = sum
		sum += counts[g]
	}
	remap := make([]uint32, len(blocks))
	for ord, b := range blocks {
		g := b & (1<<IDGroupBits - 1)
		remap[ord] = next[g]
		next[g]++
	}
	for i := range stream {
		stream[i].BlockID = remap[stream[i].BlockID]
	}
	return len(blocks)
}

// NumBlockIDs returns 1 + the largest BlockID in stream (0 for an empty
// stream) — the flat-slice length replay structures need. It assumes the
// stream's IDs were assigned by AssignBlockIDs; a subslice of an assigned
// stream merely over-counts, which only wastes slice capacity.
func NumBlockIDs(stream []AccessInfo) int {
	max := uint32(0)
	for i := range stream {
		if id := stream[i].BlockID; id > max {
			max = id
		}
	}
	if len(stream) == 0 {
		return 0
	}
	return int(max) + 1
}

// EnsureBlockIDs returns a stream with BlockIDs assigned plus the
// flat-slice length to index them, copying the stream only when the input
// lacks IDs (so callers holding an annotated stream pay one scan and zero
// allocations, while hand-built streams keep working and are never
// mutated). Detection: an assigned stream with ≥ 2 distinct blocks has a
// nonzero BlockID somewhere; all-zero IDs over ≥ 2 distinct blocks means
// unassigned.
func EnsureBlockIDs(stream []AccessInfo) ([]AccessInfo, int) {
	if len(stream) == 0 {
		return stream, 0
	}
	max := uint32(0)
	first := stream[0].Block
	uniform := true
	for i := range stream {
		if id := stream[i].BlockID; id > max {
			max = id
		}
		if stream[i].Block != first {
			uniform = false
		}
	}
	if max == 0 && !uniform {
		cp := make([]AccessInfo, len(stream))
		copy(cp, stream)
		return cp, AssignBlockIDs(cp)
	}
	return stream, int(max) + 1
}
