package cache

// Dense block identifiers.
//
// Raw block numbers are sparse 64-bit values, so every structure keyed by
// block — residency trackers, next-use indices, reuse-distance stacks,
// coherence directories — would otherwise pay a hash-map lookup per
// access. An LLC reference stream is fully materialized before any replay
// begins, so the sparse→dense mapping can be built exactly once per
// stream; afterwards every replay pass indexes flat slices.
//
// Convention: a stream either has BlockIDs assigned (distinct blocks ↔
// distinct IDs, IDs in [0, NumBlockIDs)) or is "unassigned" (every
// BlockID still zero, the field's zero value). EnsureBlockIDs tells the
// two apart without a hash pass: an assigned stream with ≥ 2 distinct
// blocks necessarily contains a nonzero ID.

// AssignBlockIDs assigns each distinct block of stream a dense uint32 ID
// in first-touch order and returns the number of distinct blocks. It is
// the only per-stream hashing pass; every replay structure downstream
// indexes flat slices by the IDs it produces.
func AssignBlockIDs(stream []AccessInfo) int {
	ids := make(map[uint64]uint32, 1<<16)
	for i := range stream {
		b := stream[i].Block
		id, ok := ids[b]
		if !ok {
			id = uint32(len(ids))
			ids[b] = id
		}
		stream[i].BlockID = id
	}
	return len(ids)
}

// NumBlockIDs returns 1 + the largest BlockID in stream (0 for an empty
// stream) — the flat-slice length replay structures need. It assumes the
// stream's IDs were assigned by AssignBlockIDs; a subslice of an assigned
// stream merely over-counts, which only wastes slice capacity.
func NumBlockIDs(stream []AccessInfo) int {
	max := uint32(0)
	for i := range stream {
		if id := stream[i].BlockID; id > max {
			max = id
		}
	}
	if len(stream) == 0 {
		return 0
	}
	return int(max) + 1
}

// EnsureBlockIDs returns a stream with BlockIDs assigned plus the
// flat-slice length to index them, copying the stream only when the input
// lacks IDs (so callers holding an annotated stream pay one scan and zero
// allocations, while hand-built streams keep working and are never
// mutated). Detection: an assigned stream with ≥ 2 distinct blocks has a
// nonzero BlockID somewhere; all-zero IDs over ≥ 2 distinct blocks means
// unassigned.
func EnsureBlockIDs(stream []AccessInfo) ([]AccessInfo, int) {
	if len(stream) == 0 {
		return stream, 0
	}
	max := uint32(0)
	first := stream[0].Block
	uniform := true
	for i := range stream {
		if id := stream[i].BlockID; id > max {
			max = id
		}
		if stream[i].Block != first {
			uniform = false
		}
	}
	if max == 0 && !uniform {
		cp := make([]AccessInfo, len(stream))
		copy(cp, stream)
		return cp, AssignBlockIDs(cp)
	}
	return stream, int(max) + 1
}
