package cache

import (
	"encoding/binary"
	"fmt"

	"sharellc/internal/trace"
)

// Flat binary encoding of prepared LLC reference streams — the record
// layer of the stream-snapshot format (internal/sim/streamcache owns the
// file framing: magic, key, header, checksum). It extends the trace
// format's delta + zig-zag + varint scheme (internal/trace/codec.go) to
// full AccessInfo records:
//
//	flags      1 byte   bit0 = write, bits1..7 = core
//	blockDelta uvarint  zig-zag delta from the previous record's Block
//	pcDelta    uvarint  zig-zag delta from the previous record's PC
//	blockID    uvarint  dense per-stream block ID
//	nextUse    uvarint  0 = NoNextUse, else NextUse - Index (always > 0)
//
// Index is not stored: prepared streams always have Index == position
// (FilterStream assigns it at append time), so the decoder regenerates
// it. PredictedShared is not stored either: it is a replay-time hint,
// always false in prepared streams (replays annotate local copies).
// Typical records encode in 6-10 bytes instead of the 56-byte in-memory
// struct.

// maxStreamCore is the largest core id the 7-bit flags field can carry;
// it matches the 128-core ceiling of cache.Config and workloads.Model.
const maxStreamCore = 127

// AppendAccessInfos appends the encoded records of stream to dst and
// returns the extended slice. It fails on records the format cannot
// represent (core > 127, a non-positive forward NextUse distance, or a
// replay-time PredictedShared hint) — prepared streams never contain
// these, so an error means the caller is snapshotting the wrong thing.
func AppendAccessInfos(dst []byte, stream []AccessInfo) ([]byte, error) {
	var prevBlock, prevPC uint64
	var buf [1 + 4*binary.MaxVarintLen64]byte
	for i := range stream {
		a := &stream[i]
		if a.Core > maxStreamCore {
			return nil, fmt.Errorf("cache: stream record %d: core %d exceeds maximum %d", i, a.Core, maxStreamCore)
		}
		if a.PredictedShared {
			return nil, fmt.Errorf("cache: stream record %d: PredictedShared set (not a prepared stream)", i)
		}
		nextUse := uint64(0)
		if a.NextUse != NoNextUse {
			if a.NextUse <= a.Index {
				return nil, fmt.Errorf("cache: stream record %d: NextUse %d not after Index %d", i, a.NextUse, a.Index)
			}
			nextUse = uint64(a.NextUse - a.Index)
		}
		flags := byte(a.Core) << 1
		if a.Write {
			flags |= 1
		}
		buf[0] = flags
		n := 1
		n += binary.PutUvarint(buf[n:], trace.Zigzag(int64(a.Block)-int64(prevBlock)))
		n += binary.PutUvarint(buf[n:], trace.Zigzag(int64(a.PC)-int64(prevPC)))
		n += binary.PutUvarint(buf[n:], uint64(a.BlockID))
		n += binary.PutUvarint(buf[n:], nextUse)
		dst = append(dst, buf[:n]...)
		prevBlock, prevPC = a.Block, a.PC
	}
	return dst, nil
}

// uvarintSlow is the out-of-line continuation of uvarintAt for varints
// longer than two bytes (and for truncation/overflow errors, reported as
// next < 0).
func uvarintSlow(data []byte, p int) (uint64, int) {
	// p < 0 propagates a failure from an earlier field in the caller's
	// record; one slow-path check covers the whole chain.
	if p < 0 || p >= len(data) {
		return 0, -1
	}
	v, n := binary.Uvarint(data[p:])
	if n <= 0 {
		return 0, -1
	}
	return v, p + n
}

// uvarintAt decodes one uvarint at offset p, returning the value and the
// offset just past it (negative on malformed input). The one- and
// two-byte cases — the bulk of the stream encoding's deltas and ids —
// are inlined into the caller's loop; everything else takes the
// binary.Uvarint path.
func uvarintAt(data []byte, p int) (uint64, int) {
	if p >= 0 && p+1 < len(data) {
		b0 := data[p]
		if b0 < 0x80 {
			return uint64(b0), p + 1
		}
		if b1 := data[p+1]; b1 < 0x80 {
			return uint64(b0&0x7f) | uint64(b1)<<7, p + 2
		}
	}
	return uvarintSlow(data, p)
}

// DecodeAccessInfos decodes exactly len(dst) records from data into dst
// and returns the number of bytes consumed. Index is regenerated as the
// record position; every other field round-trips bit-identically through
// AppendAccessInfos. The decoder never panics on malformed input — it
// returns an error on truncation, varint overflow or out-of-range values
// (callers checksum the data first, so an error here means the checksum
// was forged or the caller sized dst wrong). The loop is the warm-start
// hot path — a full-size suite decodes tens of millions of records on
// every cache load — hence the manually inlined varint fast path instead
// of the tidier closure over binary.Uvarint.
func DecodeAccessInfos(data []byte, dst []AccessInfo) (int, error) {
	var prevBlock, prevPC uint64
	pos := 0
	for i := range dst {
		if pos >= len(data) {
			return pos, fmt.Errorf("cache: stream record %d: truncated", i)
		}
		flags := data[pos]
		blockDelta, p1 := uvarintAt(data, pos+1)
		pcDelta, p2 := uvarintAt(data, p1)
		blockID, p3 := uvarintAt(data, p2)
		nextUse, p4 := uvarintAt(data, p3)
		// A negative offset poisons every later one, so one check covers
		// all four fields.
		if p4 < 0 {
			return pos, fmt.Errorf("cache: stream record %d: truncated or malformed varint", i)
		}
		pos = p4
		if blockID > 1<<32-1 {
			return pos, fmt.Errorf("cache: stream record %d: block id %d overflows uint32", i, blockID)
		}
		prevBlock = uint64(int64(prevBlock) + trace.Unzigzag(blockDelta))
		prevPC = uint64(int64(prevPC) + trace.Unzigzag(pcDelta))
		next := NoNextUse
		if nextUse != 0 {
			next = int64(i) + int64(nextUse)
			if next <= int64(i) || next >= int64(len(dst)) {
				return pos, fmt.Errorf("cache: stream record %d: next-use %d outside stream", i, next)
			}
		}
		dst[i] = AccessInfo{
			Block:   prevBlock,
			Core:    flags >> 1,
			PC:      prevPC,
			Write:   flags&1 != 0,
			BlockID: uint32(blockID),
			Index:   int64(i),
			NextUse: next,
		}
	}
	return pos, nil
}
