package cache

import "fmt"

// Config describes the simulated CMP memory system. The defaults mirror
// the configuration class used by LLC replacement studies of the paper's
// era: an 8-core CMP with 32 KB 8-way L1 data caches, 256 KB 8-way private
// L2 caches and a shared 16-way LLC evaluated at 4 MB and 8 MB, all with
// 64-byte blocks.
type Config struct {
	Cores   int
	L1Size  int // bytes, per core
	L1Ways  int
	L2Size  int // bytes, per core
	L2Ways  int
	LLCSize int // bytes, shared
	LLCWays int
}

// KB and MB are byte-count helpers for configuration literals.
const (
	KB = 1024
	MB = 1024 * KB
)

// DefaultConfig returns the paper's 4 MB-LLC machine.
func DefaultConfig() Config {
	return Config{
		Cores:   8,
		L1Size:  32 * KB,
		L1Ways:  8,
		L2Size:  256 * KB,
		L2Ways:  8,
		LLCSize: 4 * MB,
		LLCWays: 16,
	}
}

// Default8MBConfig returns the paper's 8 MB-LLC machine.
func Default8MBConfig() Config {
	c := DefaultConfig()
	c.LLCSize = 8 * MB
	return c
}

// WithLLC returns a copy of c with the LLC geometry replaced.
func (c Config) WithLLC(sizeBytes, ways int) Config {
	c.LLCSize = sizeBytes
	c.LLCWays = ways
	return c
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.Cores > 128 {
		return fmt.Errorf("cache: core count %d outside [1,128]", c.Cores)
	}
	check := func(label string, size, ways int) error {
		if _, err := NewSetAssoc(size, ways, NewLRU()); err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		return nil
	}
	if err := check("L1", c.L1Size, c.L1Ways); err != nil {
		return err
	}
	if err := check("L2", c.L2Size, c.L2Ways); err != nil {
		return err
	}
	return check("LLC", c.LLCSize, c.LLCWays)
}

// String renders the configuration as a one-line summary.
func (c Config) String() string {
	return fmt.Sprintf("%d cores, L1 %dKB/%dw, L2 %dKB/%dw, LLC %dMB/%dw",
		c.Cores, c.L1Size/KB, c.L1Ways, c.L2Size/KB, c.L2Ways, c.LLCSize/MB, c.LLCWays)
}
