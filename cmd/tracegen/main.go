// Command tracegen synthesizes a workload's memory trace and writes it to
// disk in the compact binary trace format, so external tools (or repeated
// experiments) can consume identical traces without regenerating them.
//
//	tracegen -workload canneal -o canneal.trc
//	tracegen -workload fft -seed 7 -scale 0.5 -o fft_half.trc
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sharellc/internal/trace"
	"sharellc/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		name   = fs.String("workload", "", "suite workload to synthesize (see -list)")
		out    = fs.String("o", "", "output trace file (default <workload>.trc)")
		seed   = fs.Uint64("seed", 1, "random seed")
		scale  = fs.Float64("scale", 1, "workload scale factor")
		list   = fs.Bool("list", false, "list available workloads and exit")
		format = fs.String("format", "binary", "output format: binary or text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, m := range workloads.Suite() {
			fmt.Printf("%-15s %-8s %s\n", m.Name, m.Suite, m.Description)
		}
		return nil
	}
	if *name == "" {
		return fmt.Errorf("missing -workload (use -list to see choices)")
	}
	m, err := workloads.ByName(*name)
	if err != nil {
		return err
	}
	if *scale != 1 {
		m = m.Scaled(*scale)
	}
	switch *format {
	case "binary", "text":
	default:
		return fmt.Errorf("unknown format %q (want binary or text)", *format)
	}
	path := *out
	if path == "" {
		path = m.Name + ".trc"
	}

	r, err := m.Generate(*seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var count uint64
	switch *format {
	case "binary":
		w := trace.NewWriter(f)
		for {
			a, ok := r.Next()
			if !ok {
				break
			}
			if err := w.Write(a); err != nil {
				f.Close()
				return err
			}
		}
		if err := r.Err(); err != nil {
			f.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		count = w.Count()
	case "text":
		count, err = trace.WriteText(f, r)
		if err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d accesses, %d bytes (%.2f bytes/access)\n",
		path, count, info.Size(), float64(info.Size())/float64(count))
	return nil
}
