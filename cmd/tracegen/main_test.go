package main

import (
	"os"
	"path/filepath"
	"testing"

	"sharellc/internal/trace"
)

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateBinary(t *testing.T) {
	out := filepath.Join(t.TempDir(), "w.trc")
	if err := run([]string{"-workload", "water", "-scale", "0.01", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewFileReader(f)
	if err != nil {
		t.Fatal(err)
	}
	accs, err := trace.Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) == 0 {
		t.Fatal("empty trace written")
	}
}

func TestGenerateText(t *testing.T) {
	out := filepath.Join(t.TempDir(), "w.txt")
	if err := run([]string{"-workload", "water", "-scale", "0.01", "-format", "text", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	accs, err := trace.Collect(trace.NewTextReader(f))
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) == 0 {
		t.Fatal("empty text trace written")
	}
}

func TestDeterministicOutput(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.trc")
	b := filepath.Join(dir, "b.trc")
	for _, out := range []string{a, b} {
		if err := run([]string{"-workload", "water", "-scale", "0.01", "-seed", "9", "-o", out}); err != nil {
			t.Fatal(err)
		}
	}
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Error("same seed produced different trace files")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                                       // missing workload
		{"-workload", "doom"},                    // unknown workload
		{"-workload", "water", "-format", "xml"}, // bad format
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
