// Command sharesimd serves the repository's experiments over HTTP. It
// wraps the same experiment index as cmd/sharesim in a job manager with
// a bounded worker pool, a deduplicating result cache, per-job
// cancellation and Prometheus metrics. See docs/API.md for the
// endpoints and curl examples.
//
// Usage:
//
//	sharesimd -addr :8070 -workers 2 -cache 64 -queue 16 -drain 30s -cachedir auto
//
// SIGINT/SIGTERM begin a graceful shutdown: the listener stops accepting
// connections, queued jobs are cancelled, and running jobs get up to
// -drain to finish before their contexts are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sharellc/internal/server"
	"sharellc/internal/sharing"
	"sharellc/internal/sim/streamcache"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("sharesimd: ")

	var (
		addr     = flag.String("addr", ":8070", "listen address")
		workers  = flag.Int("workers", 2, "concurrent experiment runs")
		cacheN   = flag.Int("cache", 64, "completed results retained in the LRU cache")
		queueN   = flag.Int("queue", 16, "queued jobs accepted before 503")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
		cachedir = flag.String("cachedir", "auto", "stream snapshot directory (auto = user cache dir, off = no snapshots; streams are still shared in-process)")
		memMB    = flag.Int64("stream-mem", 0, "in-process stream cache budget in MB (0 = default, <0 = unlimited)")
		kernel   = flag.String("kernel", "batch", "fused-replay kernel: batch or scalar")
	)
	flag.Parse()

	kern, err := sharing.ParseKernel(*kernel)
	if err != nil {
		log.Fatalf("unknown kernel %q (want batch or scalar)", *kernel)
	}

	// Jobs always share built streams in-process; -cachedir only decides
	// whether they also persist across daemon restarts.
	dir, _ := streamcache.DirFromFlag(*cachedir)
	budget := *memMB
	if budget > 0 {
		budget *= 1 << 20
	}
	streams := streamcache.New(streamcache.Options{Dir: dir, MemBudget: budget})

	srv := server.New(server.Config{
		Workers:     *workers,
		CacheSize:   *cacheN,
		QueueDepth:  *queueN,
		StreamCache: streams,
		Kernel:      kern,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	snapdir := streams.Dir()
	if snapdir == "" {
		snapdir = "off"
	}
	log.Printf("listening on %s (%d workers, cache %d, queue %d, snapshots %s)", *addr, *workers, *cacheN, *queueN, snapdir)

	select {
	case err := <-errCh:
		log.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}

	log.Printf("shutdown signal received; draining for up to %v", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Manager().Shutdown(drainCtx); err != nil {
		log.Printf("job drain: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Print("bye")
}
