// Command sharesimd serves the repository's experiments over HTTP. It
// wraps the same experiment index as cmd/sharesim in a job manager with
// a bounded worker pool, a deduplicating result cache, per-job
// cancellation and Prometheus metrics. See docs/API.md for the
// endpoints and curl examples.
//
// Usage:
//
//	sharesimd -addr :8070 -workers 2 -cache 64 -queue 16 -drain 30s -cachedir auto
//
// Cluster roles (-mode):
//
//	sharesimd -mode coordinator -addr :8070 -advertise http://host:8070
//	sharesimd -mode worker -addr :8071 -coordinator-url http://host:8070 -advertise http://host:8071
//
// A coordinator accepts the same job API as a single daemon but executes
// every job as leased bundles on polling workers, merging partial rows
// into byte-identical tables. Workers serve no job API; they poll the
// coordinator, fetch content-addressed stream snapshots from peers, and
// expose /healthz, /metrics and GET /v1/streams/{hash}.
//
// SIGINT/SIGTERM begin a graceful shutdown: the listener stops accepting
// connections, queued jobs are cancelled, and running jobs get up to
// -drain to finish before their contexts are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"sharellc/internal/cluster"
	"sharellc/internal/server"
	"sharellc/internal/sharing"
	"sharellc/internal/sim/streamcache"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("sharesimd: ")

	var (
		addr     = flag.String("addr", ":8070", "listen address")
		workers  = flag.Int("workers", 2, "concurrent experiment runs (single mode) or bundle slots (worker mode)")
		cacheN   = flag.Int("cache", 64, "completed results retained in the LRU cache")
		queueN   = flag.Int("queue", 16, "queued jobs accepted before 503")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
		cachedir = flag.String("cachedir", "auto", "stream snapshot directory (auto = user cache dir, off = no snapshots; streams are still shared in-process)")
		memMB    = flag.Int64("stream-mem", 0, "in-process stream cache budget in MB (0 = default, <0 = unlimited)")
		diskMB   = flag.Int64("cache-max-bytes", 0, "on-disk snapshot store budget in MB (0 = unlimited); LRU snapshots are evicted past it")
		kernel   = flag.String("kernel", "batch", "fused-replay kernel: batch or scalar")
		tracker  = flag.String("tracker", "soa", "batched residency tracker: soa or struct")
		simdF    = flag.String("simd", "auto", "batched-replay SIMD tier: auto, swar or off")
		pprofOn  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")

		mode     = flag.String("mode", "single", "daemon role: single, coordinator or worker")
		coordURL = flag.String("coordinator-url", "", "coordinator base URL (worker mode, required)")
		selfURL  = flag.String("advertise", "", "this node's reachable base URL, advertised to peers as a snapshot source")
		poll     = flag.Duration("poll", 250*time.Millisecond, "idle wait between lease polls (worker mode)")
		leaseTTL = flag.Duration("lease-ttl", 15*time.Second, "bundle lease TTL before re-queue (coordinator mode)")
	)
	flag.Parse()

	kern, err := sharing.ParseKernel(*kernel)
	if err != nil {
		log.Fatalf("unknown kernel %q (want batch or scalar)", *kernel)
	}
	track, err := sharing.ParseTracker(*tracker)
	if err != nil {
		log.Fatalf("unknown tracker %q (want soa or struct)", *tracker)
	}
	simd, err := sharing.ParseSIMD(*simdF)
	if err != nil {
		log.Fatalf("unknown simd tier %q (want auto, swar or off)", *simdF)
	}
	if *pprofOn != "" {
		// The profiling endpoints live on their own listener, never on
		// the job API's: -pprof is for operators on a trusted interface,
		// and DefaultServeMux is where net/http/pprof registers itself.
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofOn)
			if err := http.ListenAndServe(*pprofOn, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}
	switch *mode {
	case "single", "coordinator", "worker":
	default:
		log.Fatalf("unknown mode %q (want single, coordinator or worker)", *mode)
	}
	if *mode == "worker" && *coordURL == "" {
		log.Fatal("worker mode requires -coordinator-url")
	}

	// Jobs always share built streams in-process; -cachedir only decides
	// whether they also persist across daemon restarts, and
	// -cache-max-bytes bounds that store.
	dir, _ := streamcache.DirFromFlag(*cachedir)
	budget := *memMB
	if budget > 0 {
		budget *= 1 << 20
	}
	diskBudget := *diskMB
	if diskBudget > 0 {
		diskBudget *= 1 << 20
	}
	streams := streamcache.New(streamcache.Options{Dir: dir, MemBudget: budget, DiskBudget: diskBudget})

	var handler http.Handler
	var manager *server.Manager
	var workerDone chan error

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *mode {
	case "worker":
		w, err := cluster.NewWorker(cluster.WorkerConfig{
			CoordinatorURL: *coordURL,
			SelfURL:        *selfURL,
			Cache:          streams,
			Kernel:         kern,
			Tracker:        track,
			SIMD:           simd,
			Slots:          *workers,
			Poll:           *poll,
		})
		if err != nil {
			log.Fatalf("worker: %v", err)
		}
		handler = server.NewWorkerServer(w, streams, kern, track, simd, *workers)
		workerDone = make(chan error, 1)
		go func() { workerDone <- w.Run(ctx) }()
	default:
		cfg := server.Config{
			Workers:     *workers,
			CacheSize:   *cacheN,
			QueueDepth:  *queueN,
			StreamCache: streams,
			Kernel:      kern,
			Tracker:     track,
			SIMD:        simd,
		}
		if *mode == "coordinator" {
			cfg.Coordinator = cluster.NewCoordinator(cluster.CoordinatorConfig{
				Cache:    streams,
				SelfURL:  *selfURL,
				LeaseTTL: *leaseTTL,
			})
		}
		srv := server.New(cfg)
		manager = srv.Manager()
		handler = srv
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	snapdir := streams.Dir()
	if snapdir == "" {
		snapdir = "off"
	}
	log.Printf("listening on %s (%s mode, %d workers, cache %d, queue %d, snapshots %s)",
		*addr, *mode, *workers, *cacheN, *queueN, snapdir)

	select {
	case err := <-errCh:
		log.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}

	log.Printf("shutdown signal received; draining for up to %v", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if manager != nil {
		if err := manager.Shutdown(drainCtx); err != nil {
			log.Printf("job drain: %v", err)
		}
	}
	if workerDone != nil {
		if err := <-workerDone; err != nil && !errors.Is(err, context.Canceled) {
			log.Printf("worker: %v", err)
		}
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Print("bye")
}
