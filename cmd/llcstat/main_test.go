package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"sharellc/internal/trace"
)

// writeTrace writes a small binary trace with cross-core sharing.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(f)
	for i := 0; i < 2000; i++ {
		a := trace.Access{
			Core:  uint8(i % 4),
			Write: i%3 == 0,
			PC:    0x400 + uint64(i%8)*4,
			Addr:  trace.Addr(uint64(i%300) * trace.BlockSize),
		}
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBasicStats(t *testing.T) {
	if err := run([]string{writeTrace(t)}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterMode(t *testing.T) {
	if err := run([]string{"-filter", "-llc", "0.25", writeTrace(t)}); err != nil {
		t.Fatal(err)
	}
}

func TestTextMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.txt")
	var buf bytes.Buffer
	accs := []trace.Access{
		{Core: 0, Addr: 0},
		{Core: 1, Write: true, Addr: 64},
	}
	if _, err := trace.WriteText(&buf, trace.NewSliceReader(accs)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-text", path}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"/nonexistent/file"}); err == nil {
		t.Error("nonexistent file accepted")
	}
	// A text file fed to the binary reader must fail on the magic check.
	path := filepath.Join(t.TempDir(), "bad.trc")
	if err := os.WriteFile(path, []byte("this is not a trace file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}); err == nil {
		t.Error("bad magic accepted")
	}
}
