// Command llcstat inspects a binary trace file: per-core access counts,
// read/write mix, distinct-block footprint, and — with -filter — the LLC
// reference stream that survives the private L1/L2 hierarchy, including
// the residency-level sharing characterization under LRU.
//
//	llcstat canneal.trc
//	llcstat -filter -llc 4 canneal.trc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sharellc/internal/cache"
	"sharellc/internal/policy"
	"sharellc/internal/sharing"
	"sharellc/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("llcstat: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("llcstat", flag.ContinueOnError)
	var (
		filter = fs.Bool("filter", false, "run the trace through the private hierarchy and characterize the LLC stream")
		llcMB  = fs.Float64("llc", 4, "LLC size in MB for -filter")
		ways   = fs.Int("ways", 16, "LLC associativity for -filter")
		text   = fs.Bool("text", false, "input is in the text trace format")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: llcstat [flags] <trace-file>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	var r trace.Reader
	if *text {
		r = trace.NewTextReader(f)
	} else {
		br, err := trace.NewFileReader(f)
		if err != nil {
			return err
		}
		r = br
	}

	var (
		total, writes uint64
		perCore       [128]uint64
		blocks        = make(map[uint64]struct{}, 1<<16)
		accs          []trace.Access
	)
	for {
		a, ok := r.Next()
		if !ok {
			break
		}
		total++
		if a.Write {
			writes++
		}
		perCore[a.Core]++
		blocks[a.Addr.BlockID()] = struct{}{}
		if *filter {
			accs = append(accs, a)
		}
	}
	if err := r.Err(); err != nil {
		return err
	}

	fmt.Printf("accesses:        %d\n", total)
	if total == 0 {
		return nil
	}
	fmt.Printf("writes:          %d (%.1f%%)\n", writes, 100*float64(writes)/float64(total))
	fmt.Printf("distinct blocks: %d (%.1f MB footprint)\n",
		len(blocks), float64(len(blocks))*trace.BlockSize/float64(cache.MB))
	fmt.Printf("cores:")
	for c, n := range perCore {
		if n > 0 {
			fmt.Printf(" %d:%d", c, n)
		}
	}
	fmt.Println()

	if !*filter {
		return nil
	}
	stream, h, err := cache.FilterStream(trace.NewSliceReader(accs), cache.DefaultConfig())
	if err != nil {
		return err
	}
	cache.AssignBlockIDs(stream)
	refs, l1, l2, llcRefs := h.Stats()
	fmt.Printf("\nprivate hierarchy (%s):\n", cache.DefaultConfig())
	fmt.Printf("  L1 hits: %d (%.1f%%), L2 hits: %d (%.1f%%), to LLC: %d (%.1f%%)\n",
		l1, 100*float64(l1)/float64(refs), l2, 100*float64(l2)/float64(refs),
		llcRefs, 100*float64(llcRefs)/float64(refs))

	res, err := sharing.Replay(stream, int(*llcMB*float64(cache.MB)), *ways, policy.NewLRUPolicy(), sharing.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("\nLLC (%gMB, %d-way, LRU):\n", *llcMB, *ways)
	fmt.Printf("  accesses %d, hits %d, misses %d (miss rate %.1f%%)\n",
		res.Accesses, res.Hits, res.Misses, 100*res.MissRate())
	fmt.Printf("  shared hits: %.1f%% of hit volume; shared residencies: %.1f%%; shared blocks: %.1f%%\n",
		100*res.SharedHitFraction(),
		100*float64(res.SharedResidencies)/float64(res.Residencies),
		100*float64(res.DistinctSharedBlocks)/float64(res.DistinctBlocks))
	return nil
}
