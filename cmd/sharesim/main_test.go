package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// runOK executes the CLI entry point with args and returns its stdout.
// All simulation-bearing invocations use -scale 0.02 and a 2-workload
// subset so the whole file runs in a couple of seconds.
func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(&b, args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

// fast prepends the standard scaling flags. The stream cache is off so
// tests never touch (or depend on) the user's snapshot directory.
func fast(args ...string) []string {
	return append([]string{"-quiet", "-scale", "0.02", "-workloads", "canneal,swaptions", "-cachedir", "off"}, args...)
}

func TestConfigTable(t *testing.T) {
	out := runOK(t, "-exp", "config")
	for _, want := range []string{"T1", "cores", "L1D", "LLC", "lru"} {
		if !strings.Contains(out, want) {
			t.Errorf("config table missing %q", want)
		}
	}
}

func TestSuiteTable(t *testing.T) {
	out := runOK(t, "-exp", "suite")
	for _, want := range []string{"canneal", "barnes", "swim", "parsec", "splash2", "specomp"} {
		if !strings.Contains(out, want) {
			t.Errorf("suite table missing %q", want)
		}
	}
}

func TestExperimentsSmoke(t *testing.T) {
	for _, exp := range []string{"f1", "f3", "f9"} {
		out := runOK(t, fast("-exp", exp)...)
		if !strings.Contains(out, "canneal") || !strings.Contains(out, "swaptions") {
			t.Errorf("%s output missing workloads:\n%s", exp, out)
		}
	}
}

func TestExtensionExperimentsSmoke(t *testing.T) {
	out := runOK(t, fast("-exp", "c1")...)
	if !strings.Contains(out, "MESI") {
		t.Errorf("c1 output malformed:\n%s", out)
	}
	out = runOK(t, fast("-exp", "c2", "-llc", "0.25")...)
	if !strings.Contains(out, "cold") {
		t.Errorf("c2 output malformed:\n%s", out)
	}
	out = runOK(t, fast("-exp", "m1", "-llc", "0.25")...)
	if !strings.Contains(out, "mix(") {
		t.Errorf("m1 output malformed:\n%s", out)
	}
	out = runOK(t, fast("-exp", "a4", "-llc", "0.25", "-policies", "lru")...)
	if !strings.Contains(out, "horizon") {
		t.Errorf("a4 output malformed:\n%s", out)
	}
}

func TestMarkdownOutput(t *testing.T) {
	out := runOK(t, "-exp", "config", "-md")
	if !strings.Contains(out, "### T1") || !strings.Contains(out, "|---|") {
		t.Errorf("markdown output malformed:\n%s", out)
	}
}

func TestF5BothSizes(t *testing.T) {
	out := runOK(t, fast("-exp", "f5", "-policies", "lru", "-llc", "0.25")...)
	if strings.Count(out, "oracle study") != 2 {
		t.Errorf("f5 did not emit both LLC sizes:\n%s", out)
	}
	if !strings.Contains(out, "mean miss reduction") {
		t.Error("f5 missing summary note")
	}
}

func TestCSVOutput(t *testing.T) {
	out := runOK(t, fast("-exp", "f1", "-csv")...)
	if !strings.HasPrefix(out, "workload,") {
		t.Errorf("CSV output missing header: %q", out[:40])
	}
	if strings.Contains(out, "==") {
		t.Error("CSV output contains table decoration")
	}
}

func TestStrengthFlag(t *testing.T) {
	out := runOK(t, fast("-exp", "f5", "-policies", "lru", "-llc", "0.25", "-strength", "insert-only")...)
	if !strings.Contains(out, "insert-only") {
		t.Error("strength not reflected in title")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-exp", "nonesuch"},
		{"-strength", "bogus"},
		{"-workloads", "doom", "-exp", "f1"},
		{"-exp", "f4", "-scale", "-1"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(&b, args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	out := runOK(t, fast("-exp", "f1", "-json")...)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("f1 -json emitted %d lines, want 1", len(lines))
	}
	var tbl struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &tbl); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if !strings.Contains(tbl.Title, "F1") {
		t.Errorf("title = %q, want F1 table", tbl.Title)
	}
	if len(tbl.Rows) != 2 || tbl.Rows[0][0] != "canneal" {
		t.Errorf("rows malformed: %v", tbl.Rows)
	}
	if len(tbl.Headers) == 0 || tbl.Headers[0] != "workload" {
		t.Errorf("headers malformed: %v", tbl.Headers)
	}
}

// TestUnknownExperimentUsage is the regression test for the silent-exit
// bug class: an unknown -exp id must fail with a message that names the
// valid ids, never run zero experiments successfully.
func TestUnknownExperimentUsage(t *testing.T) {
	var b strings.Builder
	err := run(&b, []string{"-exp", "f6"})
	if err == nil {
		t.Fatal("run with unknown experiment succeeded")
	}
	for _, want := range []string{"unknown experiment", "f6", "valid ids", "f1", "a5"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if b.Len() != 0 {
		t.Errorf("unknown experiment still produced output: %q", b.String())
	}
}

// TestUnknownWorkloadUsage: an unknown -workloads name must fail up
// front, before any simulation, and list the valid names.
func TestUnknownWorkloadUsage(t *testing.T) {
	var b strings.Builder
	err := run(&b, []string{"-exp", "f1", "-workloads", "canneal,doom"})
	if err == nil {
		t.Fatal("run with unknown workload succeeded")
	}
	for _, want := range []string{"doom", "valid workloads", "canneal", "swaptions"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if b.Len() != 0 {
		t.Errorf("unknown workload still produced output: %q", b.String())
	}
}

func TestBadFlagRejected(t *testing.T) {
	var b strings.Builder
	if err := run(&b, []string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestCachedirWarmRunIdentical: a -cachedir run populates snapshot files
// and a second invocation (a fresh process in spirit: nothing shared but
// the directory) produces byte-identical output from them.
func TestCachedirWarmRunIdentical(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-quiet", "-scale", "0.02", "-workloads", "canneal,swaptions",
		"-cachedir", dir, "-exp", "f1", "-json"}
	cold := runOK(t, args...)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".sllc") {
			snaps++
		}
	}
	if snaps != 2 {
		t.Fatalf("cold run left %d snapshots, want 2", snaps)
	}
	if warm := runOK(t, args...); warm != cold {
		t.Errorf("warm run output differs from cold run:\n%s\nvs\n%s", warm, cold)
	}
}
