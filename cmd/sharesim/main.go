// Command sharesim runs the repository's experiments and prints each as an
// ASCII table (or CSV). One experiment id per invocation, mirroring the
// experiment index in DESIGN.md:
//
//	config  T1: the simulated machine configuration
//	suite   T2: the workload suite and its sharing parameters
//	f1      shared vs. private LLC hit volume (default 4 MB LLC)
//	f2      same at 8 MB
//	f3      sharing-degree distribution
//	f4      policy comparison vs. LRU and Belady OPT
//	f5      oracle study (per-workload rows = F6)
//	f7      fill-time predictor accuracy
//	f8      predictor-driven replacement vs. the oracle ceiling
//	f9      sharing-phase stability (why the predictors fail)
//	c1      coherence-protocol traffic characterization (extension)
//	c2      reuse-distance distributions by sharing class (extension)
//	a1      ablation: protection strength (insert-only vs. full)
//	a2      ablation: predictor table-size sweep
//	a3      ablation: LLC associativity sweep
//	a4      ablation: oracle sharing-horizon sweep
//	a5      ablation: seed robustness of the oracle gain
//	m1      oracle on multiprogrammed mixes (motivating contrast: ~0 gain)
//	all     every experiment above, in order
//
// Examples:
//
//	sharesim -exp f1
//	sharesim -exp f5 -policies lru,srrip,drrip,ship
//	sharesim -exp f4 -llc 8 -scale 0.25 -workloads canneal,fft
//	sharesim -exp f7 -csv > f7.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"sharellc/internal/cache"
	"sharellc/internal/core"
	"sharellc/internal/policy"
	"sharellc/internal/predictor"
	"sharellc/internal/report"
	"sharellc/internal/sim"
	"sharellc/internal/stats"
	"sharellc/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sharesim: ")
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

type options struct {
	exp       string
	llcMB     float64
	ways      int
	scale     float64
	seed      uint64
	prot      core.Options
	policies  []string
	workloads []string
	csv       bool
	md        bool
	quiet     bool
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("sharesim", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "f1", "experiment id (config, suite, f1-f8, a1-a3, all)")
		llcMB    = fs.Float64("llc", 4, "LLC size in MB")
		ways     = fs.Int("ways", 16, "LLC associativity")
		scale    = fs.Float64("scale", 1, "workload scale factor (1 = full size)")
		seed     = fs.Uint64("seed", 1, "master random seed")
		strength = fs.String("strength", "full", "protection strength: full or insert-only")
		skip     = fs.Int("skip-budget", 0, "protected-block skip budget (0 = default, <0 = unlimited)")
		clear    = fs.Bool("clear-on-hit", false, "drop protection once the predicted cross-core hit arrives")
		pols     = fs.String("policies", "lru,nru,srrip,drrip,ship", "comma-separated policies for f5")
		wls      = fs.String("workloads", "", "comma-separated workload subset (default: all)")
		csvOut   = fs.Bool("csv", false, "emit CSV instead of text tables")
		mdOut    = fs.Bool("md", false, "emit markdown instead of text tables")
		quiet    = fs.Bool("quiet", false, "suppress progress messages")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := options{
		exp:   strings.ToLower(*exp),
		llcMB: *llcMB, ways: *ways, scale: *scale, seed: *seed,
		csv: *csvOut, md: *mdOut, quiet: *quiet,
	}
	switch *strength {
	case "full":
		o.prot.Strength = core.Full
	case "insert-only":
		o.prot.Strength = core.InsertOnly
	default:
		return fmt.Errorf("unknown strength %q", *strength)
	}
	o.prot.SkipBudget = *skip
	o.prot.ClearOnFulfil = *clear
	if *pols != "" {
		o.policies = strings.Split(*pols, ",")
	}
	if *wls != "" {
		o.workloads = strings.Split(*wls, ",")
	}
	return dispatch(w, o)
}

// validExperiments lists every experiment id dispatch accepts.
var validExperiments = map[string]bool{
	"config": true, "suite": true, "all": true,
	"f1": true, "f2": true, "f3": true, "f4": true, "f5": true,
	"f7": true, "f8": true, "f9": true,
	"c1": true, "c2": true, "m1": true,
	"a1": true, "a2": true, "a3": true, "a4": true, "a5": true,
}

func dispatch(w io.Writer, o options) error {
	if !validExperiments[o.exp] {
		return fmt.Errorf("unknown experiment %q (want config, suite, f1-f9, c1, c2, m1, a1-a5 or all)", o.exp)
	}
	// Table-only experiments need no simulation.
	switch o.exp {
	case "config":
		return emit(w, o, configTable())
	case "suite":
		return emit(w, o, suiteTable())
	}

	models, err := selectModels(o.workloads)
	if err != nil {
		return err
	}
	cfg := sim.Config{
		Machine: cache.DefaultConfig(),
		Seed:    o.seed,
		Scale:   o.scale,
		Models:  models,
	}
	start := time.Now()
	suite, err := sim.NewSuite(cfg)
	if err != nil {
		return err
	}
	if !o.quiet {
		fmt.Fprintf(os.Stderr, "sharesim: prepared %d workload streams in %v\n",
			len(suite.Streams), time.Since(start).Round(time.Millisecond))
	}
	size := int(o.llcMB * float64(cache.MB))

	exps := []string{o.exp}
	if o.exp == "all" {
		exps = []string{"config", "suite", "f1", "f2", "f3", "f4", "f5", "f7", "f8", "f9", "c1", "c2", "m1", "a1", "a2", "a3", "a4", "a5"}
	}
	for _, e := range exps {
		tables, err := runExperiment(suite, e, size, o)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := emit(w, o, t); err != nil {
				return err
			}
		}
	}
	return nil
}

func runExperiment(suite *sim.Suite, exp string, size int, o options) ([]*report.Table, error) {
	switch exp {
	case "config":
		return []*report.Table{configTable()}, nil
	case "suite":
		return []*report.Table{suiteTable()}, nil
	case "f1":
		rows, err := suite.Characterize(size, o.ways)
		if err != nil {
			return nil, err
		}
		return []*report.Table{sim.CharTable(fmt.Sprintf("F1: shared vs private LLC hits (%s LLC, LRU)", mb(size)), rows)}, nil
	case "f2":
		rows, err := suite.Characterize(2*size, o.ways)
		if err != nil {
			return nil, err
		}
		return []*report.Table{sim.CharTable(fmt.Sprintf("F2: shared vs private LLC hits (%s LLC, LRU)", mb(2*size)), rows)}, nil
	case "f3":
		rows, err := suite.Characterize(size, o.ways)
		if err != nil {
			return nil, err
		}
		return []*report.Table{sim.DegreeTable(fmt.Sprintf("F3: sharing-degree distribution (%s LLC, LRU)", mb(size)), rows)}, nil
	case "f4":
		rows, err := suite.ComparePolicies(size, o.ways, nil)
		if err != nil {
			return nil, err
		}
		return []*report.Table{sim.PolicyTable(fmt.Sprintf("F4: policy comparison (%s LLC)", mb(size)), rows)}, nil
	case "f5":
		var out []*report.Table
		for _, s := range []int{size, 2 * size} {
			rows, err := suite.OracleStudy(s, o.ways, o.policies, o.prot)
			if err != nil {
				return nil, err
			}
			out = append(out, sim.OracleTable(fmt.Sprintf("F5/F6: oracle study (%s LLC, %s)", mb(s), o.prot.Strength), rows))
		}
		return out, nil
	case "f7":
		rows, err := suite.PredictorAccuracy(size, o.ways, predictor.DefaultConfig(), nil)
		if err != nil {
			return nil, err
		}
		return []*report.Table{sim.PredictorTable(fmt.Sprintf("F7: fill-time sharing predictor accuracy (%s LLC, LRU)", mb(size)), rows)}, nil
	case "f8":
		rows, err := suite.PredictorDriven(size, o.ways, predictor.DefaultConfig(), nil, o.prot)
		if err != nil {
			return nil, err
		}
		return []*report.Table{sim.DrivenTable(fmt.Sprintf("F8: predictor-driven replacement (%s LLC, LRU base)", mb(size)), rows)}, nil
	case "c1":
		rows, err := suite.CoherenceCharacterize()
		if err != nil {
			return nil, err
		}
		return []*report.Table{sim.CoherenceTable("C1: coherence-protocol traffic (MESI directory)", rows)}, nil
	case "c2":
		rows, err := suite.ReuseDistances(size)
		if err != nil {
			return nil, err
		}
		return []*report.Table{sim.ReuseTable("C2: reuse-distance distribution by sharing class", rows)}, nil
	case "f9":
		rows, err := suite.SharingPhases(0)
		if err != nil {
			return nil, err
		}
		return []*report.Table{sim.PhaseTable("F9: sharing-phase stability (16 windows)", rows)}, nil
	case "a1":
		var out []*report.Table
		for _, st := range []core.Strength{core.InsertOnly, core.Full} {
			opts := o.prot
			opts.Strength = st
			rows, err := suite.OracleStudy(size, o.ways, []string{"lru", "srrip"}, opts)
			if err != nil {
				return nil, err
			}
			out = append(out, sim.OracleTable(fmt.Sprintf("A1: oracle with %s protection (%s LLC)", st, mb(size)), rows))
		}
		return out, nil
	case "a2":
		var out []*report.Table
		for _, bits := range []int{8, 11, 14, 17} {
			cfg := predictor.DefaultConfig()
			cfg.TableBits = bits
			rows, err := suite.PredictorAccuracy(size, o.ways, cfg, []string{"addr", "pc"})
			if err != nil {
				return nil, err
			}
			out = append(out, sim.PredictorTable(fmt.Sprintf("A2: predictor accuracy with 2^%d-entry tables (%s LLC)", bits, mb(size)), rows))
		}
		return out, nil
	case "m1":
		// Three canonical 8-program multiprogrammed mixes drawn from the
		// suite, scaled like the rest of the run.
		mixNames := [][]string{
			{"swaptions", "blackscholes", "freqmine", "water", "equake", "lu", "bodytrack", "facesim"},
			{"canneal", "swaptions", "ocean", "blackscholes", "fft", "water", "dedup", "freqmine"},
			{"swaptions", "swaptions", "swaptions", "swaptions", "swaptions", "swaptions", "swaptions", "swaptions"},
		}
		var mixes [][]workloads.Model
		for _, names := range mixNames {
			ms, err := selectModels(names)
			if err != nil {
				return nil, err
			}
			for i := range ms {
				if o.scale != 1 {
					ms[i] = ms[i].Scaled(o.scale)
				}
			}
			mixes = append(mixes, ms)
		}
		rows, err := sim.MultiprogrammedOracle(mixes, cache.DefaultConfig(), o.seed, size, o.ways, o.prot)
		if err != nil {
			return nil, err
		}
		return []*report.Table{sim.OracleTable(fmt.Sprintf("M1: oracle on multiprogrammed mixes (%s LLC)", mb(size)), rows)}, nil
	case "a5":
		// Seed robustness: rebuild a suite subset under several seeds and
		// compare the F5 means. Uses its own suites; the prepared one is
		// ignored.
		t := report.NewTable(fmt.Sprintf("A5: oracle gain across seeds (%s LLC, LRU)", mb(size)),
			"seed", "mean-reduction", "workloads")
		sub, err := selectModels([]string{"canneal", "dedup", "barnes", "ocean", "streamcluster", "swaptions"})
		if err != nil {
			return nil, err
		}
		for _, seed := range []uint64{1, 2, 3} {
			cfg := suite.Config
			cfg.Seed = seed
			cfg.Models = sub
			s2, err := sim.NewSuite(cfg)
			if err != nil {
				return nil, err
			}
			rows, err := s2.OracleStudy(size, o.ways, []string{"lru"}, o.prot)
			if err != nil {
				return nil, err
			}
			t.MustRow(fmt.Sprintf("%d", seed), stats.Pct(sim.MeanReduction(rows, "lru")),
				fmt.Sprintf("%d", len(rows)))
		}
		t.Note = "same workload subset regenerated per seed; the headroom is a property of the sharing structure, not of one trace"
		return []*report.Table{t}, nil
	case "a4":
		rows, err := suite.OracleHorizonSweep(size, o.ways, nil, o.prot)
		if err != nil {
			return nil, err
		}
		return []*report.Table{sim.HorizonTable(fmt.Sprintf("A4: oracle gain vs sharing horizon (%s LLC, LRU)", mb(size)), rows)}, nil
	case "a3":
		var out []*report.Table
		for _, w := range []int{8, 16, 32} {
			rows, err := suite.OracleStudy(size, w, []string{"lru"}, o.prot)
			if err != nil {
				return nil, err
			}
			out = append(out, sim.OracleTable(fmt.Sprintf("A3: oracle gain at %d-way associativity (%s LLC)", w, mb(size)), rows))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown experiment %q", exp)
	}
}

func selectModels(names []string) ([]workloads.Model, error) {
	if len(names) == 0 {
		return nil, nil // sim uses the full suite
	}
	var out []workloads.Model
	for _, n := range names {
		m, err := workloads.ByName(strings.TrimSpace(n))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func emit(w io.Writer, o options, t *report.Table) error {
	switch {
	case o.csv:
		return t.RenderCSV(w)
	case o.md:
		return t.RenderMarkdown(w)
	default:
		return t.Render(w)
	}
}

func mb(size int) string {
	return fmt.Sprintf("%gMB", float64(size)/float64(cache.MB))
}

func configTable() *report.Table {
	t := report.NewTable("T1: simulated machine configuration", "component", "value")
	c := cache.DefaultConfig()
	t.MustRow("cores", fmt.Sprintf("%d", c.Cores))
	t.MustRow("L1D (per core)", fmt.Sprintf("%dKB, %d-way, 64B blocks, LRU", c.L1Size/cache.KB, c.L1Ways))
	t.MustRow("L2 (per core)", fmt.Sprintf("%dKB, %d-way, 64B blocks, LRU", c.L2Size/cache.KB, c.L2Ways))
	t.MustRow("LLC (shared)", fmt.Sprintf("4MB and 8MB, %d-way, 64B blocks, policy under study", c.LLCWays))
	t.MustRow("policies", strings.Join(policy.Names(1), ", "))
	t.Note = "functional (miss-count) model; inclusive LLC available via cache.System"
	return t
}

func suiteTable() *report.Table {
	t := report.NewTable("T2: workload suite",
		"workload", "suite", "threads", "refs", "footprint", "sh-RO%", "sh-RW%", "wr%", "description")
	for _, m := range workloads.Suite() {
		t.MustRow(
			m.Name, m.Suite, fmt.Sprintf("%d", m.Threads),
			fmt.Sprintf("%.1fM", float64(m.TotalAccesses())/1e6),
			fmt.Sprintf("%.1fMB", float64(m.FootprintBlocks())*64/float64(cache.MB)),
			stats.Pct(m.FracSharedRO), stats.Pct(m.FracSharedRW), stats.Pct(m.WriteFrac),
			m.Description)
	}
	return t
}
