// Command sharesim runs the repository's experiments and prints each as an
// ASCII table (or CSV, markdown, JSON). One experiment id per invocation,
// mirroring the experiment index in DESIGN.md:
//
//	config  T1: the simulated machine configuration
//	suite   T2: the workload suite and its sharing parameters
//	f1      shared vs. private LLC hit volume (default 4 MB LLC)
//	f2      same at 8 MB
//	f3      sharing-degree distribution
//	f4      policy comparison vs. LRU and Belady OPT
//	f5      oracle study (per-workload rows = F6)
//	f7      fill-time predictor accuracy
//	f8      predictor-driven replacement vs. the oracle ceiling
//	f9      sharing-phase stability (why the predictors fail)
//	c1      coherence-protocol traffic characterization (extension)
//	c2      reuse-distance distributions by sharing class (extension)
//	a1      ablation: protection strength (insert-only vs. full)
//	a2      ablation: predictor table-size sweep
//	a3      ablation: LLC associativity sweep
//	a4      ablation: oracle sharing-horizon sweep
//	a5      ablation: seed robustness of the oracle gain
//	m1      oracle on multiprogrammed mixes (motivating contrast: ~0 gain)
//	all     every experiment above, in order
//
// The catalogue itself lives in sim.Experiments — the same index the
// sharesimd daemon serves — so the CLI and the daemon can never drift.
//
// Examples:
//
//	sharesim -exp f1
//	sharesim -exp f5 -policies lru,srrip,drrip,ship
//	sharesim -exp f4 -llc 8 -scale 0.25 -workloads canneal,fft
//	sharesim -exp f7 -csv > f7.csv
//	sharesim -exp f1 -json   # one JSON object per table (NDJSON)
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"sharellc/internal/cache"
	"sharellc/internal/core"
	"sharellc/internal/report"
	"sharellc/internal/sharing"
	"sharellc/internal/sim"
	"sharellc/internal/sim/streamcache"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sharesim: ")
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

type options struct {
	exp       string
	llcMB     float64
	ways      int
	scale     float64
	seed      uint64
	kernel    sharing.Kernel
	tracker   sharing.Tracker
	simd      sharing.SIMD
	prot      core.Options
	policies  []string
	workloads []string
	csv       bool
	md        bool
	jsonOut   bool
	quiet     bool
	cachedir  string
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("sharesim", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "f1", "experiment id (config, suite, f1-f9, c1, c2, m1, a1-a5, all)")
		llcMB    = fs.Float64("llc", 4, "LLC size in MB")
		ways     = fs.Int("ways", 16, "LLC associativity")
		scale    = fs.Float64("scale", 1, "workload scale factor (1 = full size)")
		seed     = fs.Uint64("seed", 1, "master random seed")
		strength = fs.String("strength", "full", "protection strength: full or insert-only")
		kernel   = fs.String("kernel", "batch", "fused-replay kernel: batch or scalar")
		tracker  = fs.String("tracker", "soa", "batched residency tracker: soa or struct")
		simd     = fs.String("simd", "auto", "batched-replay SIMD tier: auto, swar or off")
		skip     = fs.Int("skip-budget", 0, "protected-block skip budget (0 = default, <0 = unlimited)")
		clear    = fs.Bool("clear-on-hit", false, "drop protection once the predicted cross-core hit arrives")
		pols     = fs.String("policies", "lru,nru,srrip,drrip,ship", "comma-separated policies for f5")
		wls      = fs.String("workloads", "", "comma-separated workload subset (default: all)")
		csvOut   = fs.Bool("csv", false, "emit CSV instead of text tables")
		mdOut    = fs.Bool("md", false, "emit markdown instead of text tables")
		jsonOut  = fs.Bool("json", false, "emit one compact JSON object per table (the daemon's encoding)")
		quiet    = fs.Bool("quiet", false, "suppress progress messages")
		cachedir = fs.String("cachedir", "auto", "stream snapshot directory (auto = user cache dir, off = no stream cache)")
		cpuprof  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprof  = fs.String("memprofile", "", "write a heap profile at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		// Deferred so the profile covers the whole run, including the
		// error paths: runtime.GC first so the snapshot reflects live
		// heap, not collection timing.
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
			f.Close()
		}()
	}
	o := options{
		exp:   strings.ToLower(*exp),
		llcMB: *llcMB, ways: *ways, scale: *scale, seed: *seed,
		csv: *csvOut, md: *mdOut, jsonOut: *jsonOut, quiet: *quiet,
		cachedir: *cachedir,
	}
	switch *strength {
	case "full":
		o.prot.Strength = core.Full
	case "insert-only":
		o.prot.Strength = core.InsertOnly
	default:
		return fmt.Errorf("unknown strength %q (want full or insert-only)", *strength)
	}
	var err error
	if o.kernel, err = sharing.ParseKernel(*kernel); err != nil {
		return fmt.Errorf("unknown kernel %q (want batch or scalar)", *kernel)
	}
	if o.tracker, err = sharing.ParseTracker(*tracker); err != nil {
		return fmt.Errorf("unknown tracker %q (want soa or struct)", *tracker)
	}
	if o.simd, err = sharing.ParseSIMD(*simd); err != nil {
		return fmt.Errorf("unknown simd tier %q (want auto, swar or off)", *simd)
	}
	o.prot.SkipBudget = *skip
	o.prot.ClearOnFulfil = *clear
	if *pols != "" {
		o.policies = strings.Split(*pols, ",")
	}
	if *wls != "" {
		o.workloads = strings.Split(*wls, ",")
	}
	return dispatch(w, o)
}

func dispatch(w io.Writer, o options) error {
	// Resolve the experiment list up front so an unknown id (or workload
	// name, below) exits non-zero with a usage message before any
	// simulation work starts.
	var exps []sim.Experiment
	if o.exp == "all" {
		exps = sim.Experiments()
	} else {
		e, err := sim.ExperimentByID(o.exp)
		if err != nil {
			return fmt.Errorf("%w; see sharesim -h", err)
		}
		exps = []sim.Experiment{e}
	}
	models, err := sim.ModelsByName(o.workloads)
	if err != nil {
		return fmt.Errorf("%w; see sharesim -h", err)
	}

	expOpts := sim.ExpOptions{
		LLCSize:  int(o.llcMB * float64(cache.MB)),
		LLCWays:  o.ways,
		Policies: o.policies,
		Prot:     o.prot,
	}

	var suite *sim.Suite
	needSuite := false
	for _, e := range exps {
		needSuite = needSuite || e.NeedsSuite
	}
	if needSuite {
		cfg := sim.Config{
			Machine: cache.DefaultConfig(),
			Seed:    o.seed,
			Scale:   o.scale,
			Models:  models,
			Kernel:  o.kernel,
			Tracker: o.tracker,
			SIMD:    o.simd,
		}
		var streams *streamcache.Cache
		if dir, ok := streamcache.DirFromFlag(o.cachedir); ok {
			streams = streamcache.New(streamcache.Options{Dir: dir})
			cfg.Streams = streams.Stream
		}
		if !o.quiet {
			// Stream-preparation callbacks arrive concurrently and may be
			// reordered between the counter increment and the print, so
			// only ever advance the carriage-returned progress line.
			var mu sync.Mutex
			best := 0
			cfg.Progress = func(done, total int, label string) {
				mu.Lock()
				defer mu.Unlock()
				if done <= best {
					return
				}
				best = done
				fmt.Fprintf(os.Stderr, "\rsharesim: preparing %d/%d workload streams", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		start := time.Now()
		suite, err = sim.NewSuite(cfg)
		if err != nil {
			return err
		}
		if !o.quiet {
			from := ""
			if streams != nil {
				if st := streams.Stats(); st.DiskHits > 0 {
					from = fmt.Sprintf(" (%d from snapshot cache)", st.DiskHits)
				}
			}
			fmt.Fprintf(os.Stderr, "sharesim: prepared %d workload streams in %v%s\n",
				len(suite.Streams), time.Since(start).Round(time.Millisecond), from)
		}
	}

	for _, e := range exps {
		tables, err := e.Run(suite, expOpts)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := emit(w, o, t); err != nil {
				return err
			}
		}
	}
	return nil
}

func emit(w io.Writer, o options, t *report.Table) error {
	switch {
	case o.jsonOut:
		return t.RenderJSON(w)
	case o.csv:
		return t.RenderCSV(w)
	case o.md:
		return t.RenderMarkdown(w)
	default:
		return t.Render(w)
	}
}
