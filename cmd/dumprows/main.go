// Command dumprows prints experiment rows for a small fixed config so two
// versions of the simulator can be diffed for bit-identical output.
//
// Two higher-level modes ride on the same fixed config:
//
//	dumprows -tables           print canonical table JSON via the experiment index
//	dumprows -cluster 3        run the same request through an in-process
//	                           coordinator with 3 workers and byte-compare
//	                           against the direct run (exit 1 on any diff)
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"sharellc/internal/cache"
	"sharellc/internal/cluster"
	"sharellc/internal/core"
	"sharellc/internal/predictor"
	"sharellc/internal/report"
	"sharellc/internal/sharing"
	"sharellc/internal/sim"
	"sharellc/internal/sim/streamcache"
	"sharellc/internal/workloads"
)

// tinyMachine is the fixed diff-harness config: small enough that the
// full catalogue runs in seconds, large enough that every policy and
// sharing path is exercised.
var tinyMachine = cache.Config{
	Cores:  8,
	L1Size: 2 * cache.KB, L1Ways: 2,
	L2Size: 8 * cache.KB, L2Ways: 4,
	LLCSize: 64 * cache.KB, LLCWays: 8,
}

func main() {
	kernel := flag.String("kernel", "batch", "replay kernel: batch or scalar")
	tracker := flag.String("tracker", "soa", "batched residency tracker: soa or struct")
	simdF := flag.String("simd", "auto", "batched-replay SIMD tier: auto, swar or off")
	tables := flag.Bool("tables", false, "print canonical table JSON instead of raw rows")
	clusterN := flag.Int("cluster", 0, "run through an in-process coordinator with N workers and byte-compare against the direct run")
	exps := flag.String("exps", "all", "comma-separated experiment ids for -tables/-cluster")
	flag.Parse()
	kern, err := sharing.ParseKernel(*kernel)
	if err != nil {
		log.Fatal(err)
	}
	track, err := sharing.ParseTracker(*tracker)
	if err != nil {
		log.Fatal(err)
	}
	simd, err := sharing.ParseSIMD(*simdF)
	if err != nil {
		log.Fatal(err)
	}
	if *clusterN > 0 {
		if err := diffCluster(kern, track, simd, strings.Split(*exps, ","), *clusterN); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *tables {
		out, err := directTables(fixedRequest(strings.Split(*exps, ",")), kern, track, simd)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(renderTables(out))
		return
	}
	dumpRows(kern, track, simd)
}

// fixedRequest is the harness request both execution paths run.
func fixedRequest(exps []string) cluster.Request {
	return cluster.Request{
		Exps:      exps,
		Machine:   &tinyMachine,
		LLCMB:     float64(tinyMachine.LLCSize) / float64(cache.MB),
		Ways:      tinyMachine.LLCWays,
		Seed:      1,
		Scale:     0.05,
		Workloads: []string{"canneal", "streamcluster", "swaptions"},
	}
}

// directTables runs the request through the plain experiment index, the
// way a single daemon or the CLI would.
func directTables(req cluster.Request, kern sharing.Kernel, track sharing.Tracker, simd sharing.SIMD) ([]*report.Table, error) {
	if err := req.Normalize(); err != nil {
		return nil, err
	}
	opts := req.Options()
	var suite *sim.Suite
	var out []*report.Table
	for _, id := range req.Exps {
		exp, err := sim.ExperimentByID(id)
		if err != nil {
			return nil, err
		}
		var s *sim.Suite
		if exp.NeedsSuite {
			if suite == nil {
				models, err := sim.ModelsByName(req.Workloads)
				if err != nil {
					return nil, err
				}
				suite, err = sim.NewSuite(sim.Config{
					Machine: req.MachineConfig(),
					Seed:    req.Seed,
					Scale:   req.Scale,
					Models:  models,
					Kernel:  kern,
					Tracker: track,
				})
				if err != nil {
					return nil, err
				}
			}
			s = suite
		}
		tabs, err := exp.Run(s, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, tabs...)
	}
	return out, nil
}

// diffCluster runs the fixed request both ways — direct and through an
// in-process coordinator with n polling workers over real HTTP — and
// byte-compares the rendered tables.
func diffCluster(kern sharing.Kernel, track sharing.Tracker, simd sharing.SIMD, exps []string, n int) error {
	req := fixedRequest(exps)
	direct, err := directTables(req, kern, track, simd)
	if err != nil {
		return fmt.Errorf("direct run: %w", err)
	}

	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Cache: streamcache.New(streamcache.Options{}),
	})
	cmux := http.NewServeMux()
	coord.Register(cmux)
	cs := httptest.NewServer(cmux)
	defer cs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < n; i++ {
		wmux := http.NewServeMux()
		ws := httptest.NewServer(wmux)
		defer ws.Close()
		w, err := cluster.NewWorker(cluster.WorkerConfig{
			CoordinatorURL: cs.URL,
			SelfURL:        ws.URL,
			Cache:          streamcache.New(streamcache.Options{}),
			Kernel:         kern,
			Tracker:        track,
			SIMD:           simd,
			Poll:           20 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		w.Register(wmux)
		go w.Run(ctx)
	}

	got, err := coord.Run(ctx, req, nil)
	if err != nil {
		return fmt.Errorf("cluster run: %w", err)
	}
	want, have := renderTables(direct), renderTables(got)
	if !bytes.Equal(want, have) {
		wl, hl := strings.Split(string(want), "\n"), strings.Split(string(have), "\n")
		for i := 0; i < len(wl) || i < len(hl); i++ {
			var a, b string
			if i < len(wl) {
				a = wl[i]
			}
			if i < len(hl) {
				b = hl[i]
			}
			if a != b {
				fmt.Fprintf(os.Stderr, "first diff at table %d:\n direct:  %s\n cluster: %s\n", i, a, b)
				break
			}
		}
		return fmt.Errorf("cluster(%d workers) output differs from direct run", n)
	}
	fmt.Printf("cluster(%d workers) output identical to direct run: %d tables, %d bytes\n", n, len(got), len(have))
	return nil
}

// dumpRows is the original raw-row diff dump.
func dumpRows(kern sharing.Kernel, track sharing.Tracker, simd sharing.SIMD) {
	models := make([]workloads.Model, 0, 3)
	for _, name := range []string{"canneal", "streamcluster", "swaptions"} {
		m, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		models = append(models, m)
	}
	cfg := sim.Config{
		Machine: tinyMachine,
		Seed:    1,
		Scale:   0.05,
		Models:  models,
		Kernel:  kern,
		Tracker: track,
		SIMD:    simd,
	}
	s, err := sim.NewSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}
	const size, ways = 64 * cache.KB, 8
	char, err := s.Characterize(size, ways)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range char {
		fmt.Printf("char %+v\n", r)
	}
	pol, err := s.ComparePolicies(size, ways, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range pol {
		fmt.Printf("policy %+v\n", r)
	}
	orc, err := s.OracleStudy(size, ways, []string{"lru", "srrip"}, core.Options{Strength: core.Full})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range orc {
		fmt.Printf("oracle %+v\n", r)
	}
	pred, err := s.PredictorAccuracy(size, ways, predictor.DefaultConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range pred {
		fmt.Printf("pred %+v\n", r)
	}
	drv, err := s.PredictorDriven(size, ways, predictor.DefaultConfig(), []string{"addr", "pc"}, core.Options{Strength: core.Full})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range drv {
		fmt.Printf("driven %+v\n", r)
	}
	reuse, err := s.ReuseDistances(size)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reuse {
		fmt.Printf("reuse %+v\n", r)
	}
	ph, err := s.SharingPhases(8)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range ph {
		fmt.Printf("phase %+v\n", r)
	}
}

// renderTables marshals tables as newline-delimited canonical JSON.
func renderTables(tables []*report.Table) []byte {
	var b bytes.Buffer
	for _, t := range tables {
		if err := t.RenderJSON(&b); err != nil {
			log.Fatal(err)
		}
	}
	return b.Bytes()
}
