// Command dumprows prints experiment rows for a small fixed config so two
// versions of the simulator can be diffed for bit-identical output.
package main

import (
	"flag"
	"fmt"
	"log"

	"sharellc/internal/cache"
	"sharellc/internal/core"
	"sharellc/internal/predictor"
	"sharellc/internal/sharing"
	"sharellc/internal/sim"
	"sharellc/internal/workloads"
)

func main() {
	kernel := flag.String("kernel", "batch", "replay kernel: batch or scalar")
	flag.Parse()
	kern, err := sharing.ParseKernel(*kernel)
	if err != nil {
		log.Fatal(err)
	}
	models := make([]workloads.Model, 0, 3)
	for _, name := range []string{"canneal", "streamcluster", "swaptions"} {
		m, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		models = append(models, m)
	}
	cfg := sim.Config{
		Machine: cache.Config{
			Cores:  8,
			L1Size: 2 * cache.KB, L1Ways: 2,
			L2Size: 8 * cache.KB, L2Ways: 4,
			LLCSize: 64 * cache.KB, LLCWays: 8,
		},
		Seed:   1,
		Scale:  0.05,
		Models: models,
		Kernel: kern,
	}
	s, err := sim.NewSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}
	const size, ways = 64 * cache.KB, 8
	char, err := s.Characterize(size, ways)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range char {
		fmt.Printf("char %+v\n", r)
	}
	pol, err := s.ComparePolicies(size, ways, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range pol {
		fmt.Printf("policy %+v\n", r)
	}
	orc, err := s.OracleStudy(size, ways, []string{"lru", "srrip"}, core.Options{Strength: core.Full})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range orc {
		fmt.Printf("oracle %+v\n", r)
	}
	pred, err := s.PredictorAccuracy(size, ways, predictor.DefaultConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range pred {
		fmt.Printf("pred %+v\n", r)
	}
	drv, err := s.PredictorDriven(size, ways, predictor.DefaultConfig(), []string{"addr", "pc"}, core.Options{Strength: core.Full})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range drv {
		fmt.Printf("driven %+v\n", r)
	}
	reuse, err := s.ReuseDistances(size)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reuse {
		fmt.Printf("reuse %+v\n", r)
	}
	ph, err := s.SharingPhases(8)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range ph {
		fmt.Printf("phase %+v\n", r)
	}
}
